/**
 * @file
 * Perf harness for the reproduction pipeline itself. Times the three
 * layers this repo's hot path is made of — block scheduling,
 * functional emulation, timing simulation — plus the sharded
 * checkpoint-and-replay simulator at jobs 1/2/N and the end-to-end
 * Table-1 protocol at jobs=1 and jobs=N, and writes the numbers to a
 * JSON file so successive PRs have a perf trajectory to compare
 * against. Also expands the whole suite into all five batch-rewrite
 * variant kinds through one COW SectionStore and records the stored
 * bytes per variant against the eager-copy footprint. Exits nonzero
 * if the parallel table output diverges from the serial one, the
 * sharded cycles diverge from the serial simulator, the batch images
 * differ from the eager pipeline's, or the COW store saves less than
 * 3x memory per variant.
 *
 * With --check <baseline.json>, also compares the fresh throughput
 * numbers against the checked-in baseline and exits nonzero when any
 * of them drifts outside the tolerance band (default ±25%) — the
 * perf-regression gate run by ctest. Wall-clock entries are not
 * gated: they scale with the host. Regenerate the baseline with
 * results/regen.sh after an intentional perf change.
 *
 * Usage: perf_pipeline [--machine m] [--scale x] [--jobs n]
 *                      [--out file.json] [--check baseline.json]
 *                      [--tolerance frac] [--trace out.json]
 *
 * --trace records spans over the whole suite (batch stamps, shard
 * replays, pool steals included) and writes Perfetto-loadable JSON.
 * The metrics registry (pool/store/emulator counters) is serialized
 * into a "metrics" section of the output JSON either way.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/common.hh"
#include "src/eel/batch.hh"
#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/exe/section_store.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/resultcache.hh"
#include "src/sim/shard.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

using namespace eel;
using Clock = std::chrono::steady_clock;

namespace {

double
elapsed(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Best wall time of `reps` runs of fn (the usual timing protocol on
 *  a shared host: the minimum is the least-perturbed sample). */
template <class Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        fn();
        best = std::min(best, elapsed(t0));
    }
    return best;
}

/** Pull `"key": <number>` out of a flat JSON object. The baseline
 *  file is written by this binary, so a full parser would be
 *  ceremony; any hand edit that breaks the shape fails loudly. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = text.find(needle);
    if (at == std::string::npos)
        fatal("baseline JSON has no \"%s\" entry", key.c_str());
    return std::stod(text.substr(at + needle.size()));
}

/** Field-for-field equality of two sharded runs — the byte-identity
 *  bar the incremental path must clear. */
bool
runsEqual(const sim::ShardedRun &a, const sim::ShardedRun &b)
{
    return a.cycles == b.cycles &&
           a.result.instructions == b.result.instructions &&
           a.result.exitCode == b.result.exitCode &&
           a.result.output == b.result.output &&
           a.issueHistogram == b.issueHistogram &&
           a.stallBreakdown == b.stallBreakdown &&
           a.stallCycles == b.stallCycles &&
           a.leaderRetires == b.leaderRetires &&
           a.blocksRetired == b.blocksRetired &&
           a.finalState.equalTo(b.finalState, false);
}

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot read %s", path.c_str());
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string machine = "ultrasparc";
    double scale = 0.3;
    unsigned jobs = 0;
    std::string out_path = "BENCH_pipeline.json";
    std::string check_path;
    std::string trace_path;
    double tolerance = 0.25;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--machine")
            machine = value();
        else if (a == "--scale")
            scale = std::stod(value());
        else if (a == "--jobs")
            jobs = static_cast<unsigned>(std::stoul(value()));
        else if (a == "--out")
            out_path = value();
        else if (a == "--check")
            check_path = value();
        else if (a == "--tolerance")
            tolerance = std::stod(value());
        else if (a == "--trace")
            trace_path = value();
        else if (a == "--help") {
            std::printf("options: --machine <name> --scale <x> "
                        "--jobs <n> --out <file.json> "
                        "--check <baseline.json> --tolerance <frac> "
                        "--trace <out.json>\n");
            return 0;
        } else {
            fatal("unknown option '%s'", a.c_str());
        }
    }
    if (jobs == 0)
        jobs = support::ThreadPool::hardwareConcurrency();
    if (!trace_path.empty()) {
        obs::enableTracing();
        obs::setThreadName("main");
    }

    const machine::MachineModel &m =
        machine::MachineModel::builtin(machine);
    auto specs = workload::spec95(machine);

    // --- Schedule throughput: rewrite-with-scheduling over the
    // profiling-instrumented first benchmark, counting basic blocks.
    workload::GenOptions gopts;
    gopts.scale = scale;
    gopts.machine = &m;
    exe::Executable x = workload::generate(specs[0], gopts);
    auto routines = edit::buildRoutines(x);
    qpt::ProfilePlan plan = qpt::makePlan(x, routines);
    size_t blocks = 0;
    for (const auto &r : routines)
        blocks += r.blocks.size();

    edit::EditOptions eopts;
    eopts.schedule = true;
    eopts.model = &m;
    double sched_s = bestOf(3, [&] {
        edit::rewrite(x, routines, plan.plan, eopts);
    });
    double sched_blocks_per_s = double(blocks) / sched_s;

    // --- Simulation throughput over the same executable: the
    // functional emulator alone, then with the timing model fed.
    uint64_t insts = 0;
    double emu_s = bestOf(3, [&] {
        sim::Emulator emu(x);
        insts = emu.run(nullptr).instructions;
    });
    double emu_minst_per_s = double(insts) / emu_s / 1e6;

    uint64_t serial_cycles = 0;
    double timing_s = bestOf(3, [&] {
        serial_cycles = sim::timedRun(x, m).cycles;
    });
    double timing_minst_per_s = double(insts) / timing_s / 1e6;

    // --- Sharded timing simulation (checkpoint-and-replay,
    // sim::runSharded). jobs=1 measures the subsystem's intrinsic
    // overhead — the extra functional capture pass plus per-shard
    // warmups — and is the host-stable number the baseline gates.
    // jobs=2 and jobs=N record scaling, informational only: they
    // measure the host's parallelism more than this code. Merged
    // cycles must equal the serial simulator's exactly.
    sim::ShardOptions sopts;
    uint64_t sharded_cycles = 0;
    sim::ShardStats sstats;
    double sharded1_s = bestOf(3, [&] {
        sim::ShardedRun sr = sim::runSharded(x, m, sopts);
        sharded_cycles = sr.cycles;
        sstats = sr.stats;
    });
    double sharded1_minst_per_s = double(insts) / sharded1_s / 1e6;
    bool cycles_match = sharded_cycles == serial_cycles;
    // Intrinsic overhead of the sharding machinery at jobs=1: the
    // fraction of the run's wall time that is not the timing replay
    // of the shards' own instructions — the functional capture pass
    // plus the per-shard warmup replays (warmup/interval of the
    // replayed stream). This is the number the fan-out has to win
    // back with parallelism before sharding pays at all; on a 1-CPU
    // host jobs=1 therefore *must* lose to the serial simulator by
    // about this fraction.
    double capture_frac =
        sharded1_s > 0 ? sstats.captureSec / sharded1_s : 0;
    double warmup_frac =
        insts ? double(sopts.warmup) * double(sstats.shards > 0
                                                  ? sstats.shards - 1
                                                  : 0) /
                    double(insts)
              : 0;
    double sharded_overhead_frac = capture_frac + warmup_frac;

    support::ThreadPool pool2(2);
    sopts.pool = &pool2;
    double sharded2_s = bestOf(3, [&] {
        cycles_match &= sim::runSharded(x, m, sopts).cycles ==
                        serial_cycles;
    });
    double sharded2_minst_per_s = double(insts) / sharded2_s / 1e6;

    support::ThreadPool poolN(jobs);
    sopts.pool = &poolN;
    double shardedN_s = bestOf(3, [&] {
        cycles_match &= sim::runSharded(x, m, sopts).cycles ==
                        serial_cycles;
    });
    double shardedN_minst_per_s = double(insts) / shardedN_s / 1e6;

    // --- Incremental re-simulation through the content-addressed
    // result cache: a cold sharded run populates it, an identical
    // re-run must come back from the run tier at >= 5x (the claim
    // the subsystem exists for), and a one-byte edit to a text page
    // must re-simulate through the shard tier and still be
    // field-identical to a fresh cold run of the edited image. Both
    // are hard gates; the speedup and hit rate are published, but
    // not added to the +/-25% baseline band (warm wall time is
    // microseconds and would flap).
    sim::ResultCache rescache;
    sim::ShardOptions iopts;
    iopts.pool = &poolN;
    iopts.cache = &rescache;
    auto tc = Clock::now();
    sim::ShardedRun inc_cold = sim::runSharded(x, m, iopts);
    double inc_cold_s = elapsed(tc);
    sim::ShardedRun inc_warm;
    double inc_warm_s = bestOf(3, [&] {
        inc_warm = sim::runSharded(x, m, iopts);
    });
    double incremental_speedup =
        inc_warm_s > 0 ? inc_cold_s / inc_warm_s : 0.0;
    bool incremental_identical =
        inc_warm.stats.cachedRun && runsEqual(inc_warm, inc_cold);

    // The edit: rewrite one nop's imm22 from 0 to 1 — still a write
    // of the hardwired-zero %g0, so the run is architecturally
    // unchanged and only the edited page's content hash moves.
    exe::Executable edited = x;
    size_t edit_word = edited.text.size();
    for (size_t w = 0; w < edited.text.size(); ++w)
        if (edited.text[w] == 0x01000000u) {
            edited.text.set(w, 0x01000001u);
            edit_word = w;
            break;
        }
    if (edit_word == edited.text.size())
        fatal("no nop found to edit in the generated workload");
    sim::ShardedRun inc_edit = sim::runSharded(edited, m, iopts);
    sim::ShardOptions iplain = iopts;
    iplain.cache = nullptr;
    sim::ShardedRun edit_ref = sim::runSharded(edited, m, iplain);
    incremental_identical &= runsEqual(inc_edit, edit_ref);
    sim::ResultCache::Stats rcs = rescache.stats();
    double rescache_hit_rate =
        rcs.lookups ? double(rcs.hits) / double(rcs.lookups) : 0.0;

    // --- Batch rewriting: every SPEC95 stand-in expanded into all
    // five variant kinds through one shared SectionStore, versus the
    // same images with COW sharing severed (the pre-COW memory
    // behaviour). The images must be byte-identical either way; the
    // stored-bytes-per-variant number is the COW payoff and is
    // deterministic at a given scale, so the baseline gates it.
    exe::SectionStore store;
    const std::vector<edit::VariantKind> all_kinds = {
        edit::VariantKind::Identity,
        edit::VariantKind::SlowProfile,
        edit::VariantKind::EdgeProfile,
        edit::VariantKind::Sched,
        edit::VariantKind::Superblock,
    };
    edit::BatchOptions bopts;
    bopts.model = &m;
    bopts.store = &store;
    std::vector<edit::BatchResult> batches;
    bool batch_identical = true;
    size_t eager_flat_bytes = 0, n_images = 0;
    for (const auto &spec : specs) {
        exe::Executable orig = workload::generate(spec, gopts);
        edit::BatchRewriter rw(orig, bopts);
        batches.push_back(rw.rewriteAll(all_kinds));
        edit::BatchResult eager =
            edit::eagerRewriteAll(orig, all_kinds, bopts);
        const edit::BatchResult &batch = batches.back();
        for (size_t k = 0; k < all_kinds.size(); ++k) {
            const exe::Executable &b = batch.variants[k].image;
            const exe::Executable &e = eager.variants[k].image;
            batch_identical &= b.text == e.text && b.data == e.data;
            eager_flat_bytes += 4 * e.text.size() + e.data.size();
            ++n_images;
        }
    }
    std::vector<const exe::Executable *> batch_images;
    for (const edit::BatchResult &b : batches)
        for (const edit::BatchVariant &v : b.variants)
            batch_images.push_back(&v.image);
    exe::ShareStats share = exe::shareStats(batch_images);
    double batch_mb_eager =
        double(eager_flat_bytes) / double(n_images) / 1e6;
    double batch_mb_cow =
        double(share.storedBytes) / double(n_images) / 1e6;
    double batch_reduction =
        batch_mb_cow > 0 ? batch_mb_eager / batch_mb_cow : 0.0;
    batches.clear();

    // --- Pipeline scheduling tier: hidden fraction of the counter
    // overhead on the loop-dominated CFP stand-ins, superblock vs
    // superblock+modulo. Simulated cycles are deterministic at a
    // given scale, so the baseline gates the pipeline number: a
    // drift means the loop analyzer or the modulo scheduler changed
    // what it emits, not that the host got slower. Bit-identity of
    // the pipelined build against the unscheduled one is a hard
    // invariant, same as the batch/incremental checks above.
    std::vector<size_t> fp_indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (specs[i].fp)
            fp_indices.push_back(i);
    support::ThreadPool pipe_pool(jobs);
    std::vector<double> hid_sb(fp_indices.size());
    std::vector<double> hid_pipe(fp_indices.size());
    std::vector<uint8_t> pipe_ok(fp_indices.size(), 0);
    std::vector<uint64_t> fp_cost(fp_indices.size());
    for (size_t k = 0; k < fp_indices.size(); ++k)
        fp_cost[k] = specs[fp_indices[k]].dynTarget;
    pipe_pool.parallelFor(fp_indices.size(), fp_cost, [&](size_t k) {
        exe::Executable orig =
            workload::generate(specs[fp_indices[k]], gopts);
        edit::BatchOptions pb;
        pb.model = &m;
        pb.pool = &pipe_pool;
        edit::BatchRewriter rw(orig, pb);
        edit::BatchResult b =
            rw.rewriteAll({edit::VariantKind::SlowProfile,
                           edit::VariantKind::Superblock,
                           edit::VariantKind::Pipeline});
        uint64_t c_base = sim::timedRun(b.work, m).cycles;
        uint64_t c_inst =
            sim::timedRun(b.variants[0].image, m).cycles;
        uint64_t c_sb = sim::timedRun(b.variants[1].image, m).cycles;
        uint64_t c_pipe =
            sim::timedRun(b.variants[2].image, m).cycles;
        double denom = double(int64_t(c_inst) - int64_t(c_base));
        hid_sb[k] =
            100.0 * double(int64_t(c_inst) - int64_t(c_sb)) / denom;
        hid_pipe[k] = 100.0 *
                      double(int64_t(c_inst) - int64_t(c_pipe)) /
                      denom;
        sim::Emulator e_inst(b.variants[0].image);
        sim::Emulator e_pipe(b.variants[2].image);
        sim::RunResult ri = e_inst.run();
        sim::RunResult rp = e_pipe.run();
        pipe_ok[k] = ri.exited && rp.exited &&
                     ri.exitCode == rp.exitCode &&
                     ri.output == rp.output &&
                     e_inst.snapshot().equalTo(e_pipe.snapshot()) &&
                     qpt::readCounts(e_inst, b.profilePlan) ==
                         qpt::readCounts(e_pipe, b.profilePlan);
    });
    double sb_cfp_hidden = 0, pipe_cfp_hidden = 0;
    bool pipeline_identical = true;
    for (size_t k = 0; k < fp_indices.size(); ++k) {
        sb_cfp_hidden += hid_sb[k];
        pipe_cfp_hidden += hid_pipe[k];
        pipeline_identical &= pipe_ok[k] != 0;
    }
    sb_cfp_hidden /= double(fp_indices.size());
    pipe_cfp_hidden /= double(fp_indices.size());

    // --- End-to-end Table-1 protocol, serial vs parallel.
    bench::TableOptions topts;
    topts.machine = machine;
    topts.scale = scale;

    topts.jobs = 1;
    auto t0 = Clock::now();
    std::vector<bench::Row> serial_rows = bench::runTable(topts);
    double e2e_serial_s = elapsed(t0);

    topts.jobs = jobs;
    t0 = Clock::now();
    std::vector<bench::Row> parallel_rows = bench::runTable(topts);
    double e2e_parallel_s = elapsed(t0);

    std::string serial_tab = bench::formatTable("Table 1",
                                                serial_rows);
    std::string parallel_tab = bench::formatTable("Table 1",
                                                  parallel_rows);
    bool identical = serial_tab == parallel_tab;

    double speedup = e2e_parallel_s > 0
                         ? e2e_serial_s / e2e_parallel_s
                         : 0.0;

    std::printf("machine            %s (scale %g, jobs %u, %u cpus)\n",
                machine.c_str(), scale, jobs,
                support::ThreadPool::hardwareConcurrency());
    std::printf("schedule           %.0f blocks/s (%zu blocks in "
                "%.4fs)\n", sched_blocks_per_s, blocks, sched_s);
    std::printf("emulate            %.1f Minst/s\n", emu_minst_per_s);
    std::printf("timing-sim         %.1f Minst/s\n",
                timing_minst_per_s);
    std::printf("sharded jobs=1     %.1f Minst/s\n",
                sharded1_minst_per_s);
    std::printf("sharded jobs=2     %.1f Minst/s\n",
                sharded2_minst_per_s);
    std::printf("sharded jobs=%-5u %.1f Minst/s\n", jobs,
                shardedN_minst_per_s);
    std::printf("sharded cycles     %s\n",
                cycles_match ? "match serial" : "DIVERGED");
    std::printf("sharded overhead   %.1f%% of jobs=1 wall (capture "
                "%.1f%%, warmup %.1f%%, %zu shards)\n",
                100 * sharded_overhead_frac, 100 * capture_frac,
                100 * warmup_frac, sstats.shards);
    std::printf("incremental regen  %.2fx warm speedup (cold %.3fs, "
                "warm %.4fs), hit rate %.3f, edit reused %zu/%zu "
                "shards\n",
                incremental_speedup, inc_cold_s, inc_warm_s,
                rescache_hit_rate, inc_edit.stats.cachedShards,
                inc_edit.stats.shards);
    std::printf("incremental output %s\n",
                incremental_identical ? "identical" : "DIVERGED");
    std::printf("batch rewrite      %.3f MB/variant cow, %.3f "
                "MB/variant eager (%.2fx, %.0f%% refs shared, %zu "
                "images)\n", batch_mb_cow, batch_mb_eager,
                batch_reduction, 100.0 * share.sharedFrac(),
                n_images);
    std::printf("batch output       %s\n",
                batch_identical ? "identical to eager" : "DIVERGED");
    std::printf("pipeline tier      CFP hidden %.1f%% (superblock "
                "%.1f%%), output %s\n",
                pipe_cfp_hidden, sb_cfp_hidden,
                pipeline_identical ? "identical" : "DIVERGED");
    std::printf("table1 jobs=1      %.3fs\n", e2e_serial_s);
    std::printf("table1 jobs=%-6u %.3fs (%.2fx)\n", jobs,
                e2e_parallel_s, speedup);
    std::printf("parallel output    %s\n",
                identical ? "identical" : "DIVERGED");

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"machine\": \"%s\",\n", machine.c_str());
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 support::ThreadPool::hardwareConcurrency());
    std::fprintf(f, "  \"schedule_blocks_per_s\": %.0f,\n",
                 sched_blocks_per_s);
    std::fprintf(f, "  \"emulate_minst_per_s\": %.2f,\n",
                 emu_minst_per_s);
    std::fprintf(f, "  \"timing_sim_minst_per_s\": %.2f,\n",
                 timing_minst_per_s);
    std::fprintf(f, "  \"sharded_timing_minst_per_s_jobs1\": %.2f,\n",
                 sharded1_minst_per_s);
    std::fprintf(f, "  \"sharded_timing_minst_per_s_jobs2\": %.2f,\n",
                 sharded2_minst_per_s);
    std::fprintf(f, "  \"sharded_timing_jobs\": %u,\n", jobs);
    std::fprintf(f, "  \"sharded_timing_minst_per_s_jobsN\": %.2f,\n",
                 shardedN_minst_per_s);
    std::fprintf(f, "  \"sharded_cycles_match_serial\": %s,\n",
                 cycles_match ? "true" : "false");
    std::fprintf(f, "  \"sharded_timing_overhead_frac\": %.4f,\n",
                 sharded_overhead_frac);
    std::fprintf(f, "  \"incremental_regen_speedup\": %.2f,\n",
                 incremental_speedup);
    std::fprintf(f, "  \"rescache_hit_rate\": %.4f,\n",
                 rescache_hit_rate);
    std::fprintf(f, "  \"incremental_identical\": %s,\n",
                 incremental_identical ? "true" : "false");
    std::fprintf(f, "  \"batch_rewrite_mb_per_variant\": %.4f,\n",
                 batch_mb_cow);
    std::fprintf(f, "  \"batch_rewrite_mb_per_variant_eager\": %.4f,\n",
                 batch_mb_eager);
    std::fprintf(f, "  \"batch_rewrite_mem_reduction\": %.3f,\n",
                 batch_reduction);
    std::fprintf(f, "  \"batch_share_frac\": %.4f,\n",
                 share.sharedFrac());
    std::fprintf(f, "  \"batch_identical\": %s,\n",
                 batch_identical ? "true" : "false");
    std::fprintf(f, "  \"pipeline_cfp_hidden_pct\": %.4f,\n",
                 pipe_cfp_hidden);
    std::fprintf(f, "  \"superblock_cfp_hidden_pct\": %.4f,\n",
                 sb_cfp_hidden);
    std::fprintf(f, "  \"pipeline_identical\": %s,\n",
                 pipeline_identical ? "true" : "false");
    std::fprintf(f, "  \"table1_jobs1_wall_s\": %.4f,\n",
                 e2e_serial_s);
    std::fprintf(f, "  \"table1_jobs\": %u,\n", jobs);
    std::fprintf(f, "  \"table1_jobsN_wall_s\": %.4f,\n",
                 e2e_parallel_s);
    std::fprintf(f, "  \"table1_parallel_speedup\": %.3f,\n", speedup);
    std::fprintf(f, "  \"parallel_output_identical\": %s,\n",
                 identical ? "true" : "false");
    // Namespaced keys ("pool.steals", ...) cannot collide with the
    // flat gate keys jsonNumber() pulls out above.
    std::string metrics = obs::metricsJson("  ");
    std::fprintf(f, "  \"metrics\": %s\n", metrics.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);

    if (!trace_path.empty() && !obs::writeTrace(trace_path))
        fatal("cannot write trace to %s", trace_path.c_str());

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: jobs=%u table output differs from "
                     "jobs=1\n", jobs);
        return 1;
    }
    if (!cycles_match) {
        std::fprintf(stderr,
                     "FAIL: sharded simulation cycles diverged from "
                     "the serial simulator\n");
        return 1;
    }
    if (!batch_identical) {
        std::fprintf(stderr,
                     "FAIL: batch-rewritten images differ from the "
                     "eager-copy pipeline\n");
        return 1;
    }
    if (batch_reduction < 3.0) {
        std::fprintf(stderr,
                     "FAIL: COW batch stores only %.2fx less than "
                     "eager copies (need >= 3x)\n", batch_reduction);
        return 1;
    }
    if (!pipeline_identical) {
        std::fprintf(stderr,
                     "FAIL: a pipelined CFP build diverged from its "
                     "unscheduled instrumentation\n");
        return 1;
    }
    if (!incremental_identical) {
        std::fprintf(stderr,
                     "FAIL: cached/incremental simulation output "
                     "differs from a cold run\n");
        return 1;
    }
    if (incremental_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: warm re-simulation only %.2fx faster "
                     "than cold (need >= 5x)\n",
                     incremental_speedup);
        return 1;
    }

    if (!check_path.empty()) {
        std::string base = readFile(check_path);
        if (base.find("\"" + machine + "\"") == std::string::npos)
            fatal("baseline %s is for a different machine model",
                  check_path.c_str());
        if (jsonNumber(base, "scale") != scale)
            fatal("baseline %s was measured at scale %g, this run "
                  "at %g — not comparable", check_path.c_str(),
                  jsonNumber(base, "scale"), scale);
        struct Gate
        {
            const char *key;
            double fresh;
        } gates[] = {
            {"schedule_blocks_per_s", sched_blocks_per_s},
            {"emulate_minst_per_s", emu_minst_per_s},
            {"timing_sim_minst_per_s", timing_minst_per_s},
            // jobs=1 only: the jobs>1 numbers track the host's idle
            // cores, not this code, and would flap on shared CI.
            {"sharded_timing_minst_per_s_jobs1",
             sharded1_minst_per_s},
            // Deterministic at a given scale: a drift here means the
            // COW layout or the interner changed, not the host.
            {"batch_rewrite_mb_per_variant", batch_mb_cow},
            // Likewise deterministic: the modulo scheduler's CFP
            // payoff, guarded so a scheduler change that quietly
            // stops pipelining (or pipelines worse) fails ctest.
            {"pipeline_cfp_hidden_pct", pipe_cfp_hidden},
        };
        bool bad = false;
        for (const Gate &g : gates) {
            double ref = jsonNumber(base, g.key);
            double ratio = ref > 0 ? g.fresh / ref : 0.0;
            bool ok = ratio >= 1.0 - tolerance &&
                      ratio <= 1.0 + tolerance;
            std::printf("check %-24s %.5g vs baseline %.5g "
                        "(%.2fx) %s\n", g.key, g.fresh, ref, ratio,
                        ok ? "ok" : "OUT OF BAND");
            bad |= !ok;
        }
        if (bad) {
            std::fprintf(stderr,
                         "FAIL: throughput drifted more than %.0f%% "
                         "from %s; investigate, or regenerate the "
                         "baseline (results/regen.sh) if the change "
                         "is intentional\n", tolerance * 100,
                         check_path.c_str());
            return 1;
        }
    }
    return 0;
}
