/**
 * @file
 * Reproduces Table 1: slow profiling instrumentation on the
 * UltraSPARC. Per benchmark: the average dynamic basic block size,
 * un-instrumented time, instrumented-but-unscheduled time, and the
 * time after scheduling original and instrumentation instructions
 * together — plus the fraction of instrumentation overhead hidden.
 *
 * The paper reports ~15% hidden for CINT95 and ~17% for CFP95, the
 * latter dragged down by de-scheduling of the highly optimized FP
 * code (two large negative outliers).
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);
    opts.rescheduleFirst = false;

    std::fprintf(stderr,
                 "table1: machine=%s scale=%.2f (paper: Table 1)\n",
                 opts.machine.c_str(), opts.scale);
    std::vector<Row> rows = runTable(opts);
    std::string title =
        "Table 1: Slow profiling instrumentation on the " +
        opts.machine + " (paper Table 1, UltraSPARC)";
    printTable(title, rows);
    emitOutputs(opts, title, rows);
    return 0;
}
