/**
 * @file
 * Shared driver for the table-reproduction benches: runs the paper's
 * measurement protocol (§4.2) over the 18 synthetic SPEC95 stand-ins
 * and prints rows in the layout of Tables 1-3.
 */

#ifndef EEL_BENCH_COMMON_HH
#define EEL_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "src/machine/model.hh"
#include "src/obs/slotfill.hh"
#include "src/obs/stall.hh"
#include "src/sched/scheduler.hh"
#include "src/sim/resultcache.hh"
#include "src/support/thread_pool.hh"

namespace eel::bench {

struct Row
{
    std::string name;
    bool fp;
    double avgBlockSize;  ///< measured dynamic average
    double uninstSec;
    double uninstRatioToOriginal = 1.0;  ///< Table 2's extra column
    double instSec;
    double instRatio;
    double schedSec;
    double schedRatio;
    double pctHidden;

    /**
     * Stall attribution per image (always collected by the table
     * runs; the invariant breakdown.total() == stallCycles is
     * checked per run). Serial and sharded runs produce identical
     * values for the default perfect-cache config.
     */
    obs::StallBreakdown baseStalls, instStalls, schedStalls;
    uint64_t baseStallCycles = 0;
    uint64_t instStallCycles = 0;
    uint64_t schedStallCycles = 0;
    /** Scheduler slot-fill audit over the scheduled image's rewrite. */
    obs::SlotFillCounts audit;
};

struct TableOptions
{
    std::string machine = "ultrasparc";
    /**
     * Table 2 protocol: EEL first reschedules the benchmark without
     * instrumentation; ratios and hiding are measured against that
     * baseline.
     */
    bool rescheduleFirst = false;
    double scale = 1.0;
    /**
     * Machine model EEL's scheduler uses; empty = same as the
     * hardware. The paper's scheduler was "currently configured for
     * the SPARC version 8 instruction set" (§4.2): on the
     * UltraSPARC it scheduled with older-generation timing, which
     * is why Table 1's floating point results suffer from
     * de-scheduling that Table 2 factors out.
     */
    std::string schedMachine;
    sched::SchedOptions sched;
    /** Restrict to one benchmark by name ("" = all). */
    std::string only;
    /**
     * Worker threads for the edit -> schedule -> simulate pipeline:
     * runTable runs benchmarks concurrently and each rewrite
     * schedules its routines on the same pool. 0 = hardware
     * concurrency, 1 = serial. Results are gathered in suite order,
     * so the printed table is identical for every jobs value.
     */
    unsigned jobs = 0;
    /**
     * Shard each timing simulation every N dynamic instructions and
     * replay the shards on the pool (sim::runSharded). 0 = serial
     * timedRun. Sharded results merge in shard order, so the table
     * is byte-identical either way; this trades one extra functional
     * pass for replays that spread across the jobs. The pool shares
     * work across nesting levels, so the benchmark × shard fan-out
     * saturates the jobs even when few benchmarks remain (or with
     * --only, where the outer level is a single item).
     */
    uint64_t shardInterval = 0;
    /**
     * Content-addressed result cache for the sharded timing runs
     * (sim::ResultCache): "" = off, otherwise the disk-tier
     * directory, persisted across processes so a regeneration after
     * an edit pays only for the shards that execute changed pages.
     * Cached tables are byte-identical to cold ones. Only the
     * sharded path consults it, so set shardInterval too.
     */
    std::string resultCacheDir;
    /** Cache instance to use instead of constructing one from
     *  resultCacheDir (embedding callers; not a CLI flag). */
    sim::ResultCache *cache = nullptr;
    /**
     * Stamp the instrumented and scheduled images through
     * edit::BatchRewriter (one shared analysis pass, COW-shared
     * sections) instead of two independent rewrites. The images are
     * byte-identical either way, so rows don't change.
     */
    bool batch = false;
    /**
     * Observability outputs (all optional). --trace enables span
     * collection for the whole run and writes a Chrome trace_event
     * JSON (load into Perfetto / chrome://tracing); --json mirrors
     * the printed table as structured JSON; --breakdown writes the
     * per-benchmark stall histograms and slot-fill audit as text.
     */
    std::string tracePath;
    std::string jsonPath;
    std::string breakdownPath;
};

/** Parse --machine/--scale/--resched-first/--only/--jobs/
 *  --shard-interval/--result-cache/--trace/--json/--breakdown from
 *  argv. --trace enables tracing immediately. */
TableOptions parseArgs(int argc, char **argv);

/**
 * Run the full measurement for one benchmark spec index. A non-null
 * pool parallelizes the rewrite's per-routine scheduling (it runs
 * inline when already on a pool worker).
 */
Row runBenchmark(const TableOptions &opts, size_t index,
                 support::ThreadPool *pool = nullptr);

/** Run all benchmarks of the suite. */
std::vector<Row> runTable(const TableOptions &opts);

/** Render the table in the paper's layout, with CINT/CFP averages. */
std::string formatTable(const std::string &title,
                        const std::vector<Row> &rows);

/** Print formatTable to stdout. */
void printTable(const std::string &title,
                const std::vector<Row> &rows);

/** Render the per-benchmark stall-reason histograms and slot-fill
 *  audit as text (the --breakdown payload). */
std::string formatBreakdown(const std::string &title,
                            const std::vector<Row> &rows);

/** Render the table as structured JSON (the --json payload). */
std::string tableJson(const std::string &title,
                      const TableOptions &opts,
                      const std::vector<Row> &rows);

/**
 * Write the optional observability outputs of one table run:
 * opts.jsonPath (tableJson), opts.breakdownPath (formatBreakdown),
 * opts.tracePath (obs::writeTrace). No-ops for unset paths.
 */
void emitOutputs(const TableOptions &opts, const std::string &title,
                 const std::vector<Row> &rows);

} // namespace eel::bench

#endif // EEL_BENCH_COMMON_HH
