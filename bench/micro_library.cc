/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths:
 * instruction decode, pipeline_stalls, list scheduling, SADL
 * analysis, and full emulation+timing throughput. These guard the
 * tooling costs — an executable editor that takes minutes to
 * instrument a program would not have shipped in 1996 either.
 */

#include <benchmark/benchmark.h>

#include "src/eel/editor.hh"
#include "src/isa/builder.hh"
#include "src/machine/pipeline.hh"
#include "src/qpt/profiler.hh"
#include "src/sadl/timing.hh"
#include "src/sched/scheduler.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;
namespace b = isa::build;

exe::Executable &
benchProgram()
{
    static exe::Executable x = [] {
        workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[5];
        workload::GenOptions g;
        g.scale = 0.05;
        g.machine = &machine::MachineModel::builtin("ultrasparc");
        return workload::generate(spec, g);
    }();
    return x;
}

void
BM_Decode(benchmark::State &state)
{
    const exe::Executable &x = benchProgram();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(isa::decode(x.text[i]));
        i = (i + 1) % x.text.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

void
BM_Encode(benchmark::State &state)
{
    isa::Instruction in = b::rri(isa::Op::Add, 8, 9, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(isa::encode(in));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Encode);

void
BM_PipelineStalls(benchmark::State &state)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    machine::PipelineState st(m);
    isa::Instruction seq[4] = {
        b::memi(isa::Op::Ld, 8, 16, 0),
        b::rri(isa::Op::Add, 9, 8, 1),
        b::fp3(isa::Op::Fmuld, 4, 0, 2),
        b::memi(isa::Op::St, 9, 16, 4),
    };
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(st.stalls(seq[i & 3]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineStalls);

void
BM_PipelineIssue(benchmark::State &state)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    machine::PipelineState st(m);
    isa::Instruction seq[4] = {
        b::memi(isa::Op::Ld, 8, 16, 0),
        b::rri(isa::Op::Add, 9, 8, 1),
        b::fp3(isa::Op::Fmuld, 4, 0, 2),
        b::memi(isa::Op::St, 9, 16, 4),
    };
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(st.issue(seq[i & 3]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineIssue);

void
BM_ScheduleBlock(benchmark::State &state)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    sched::ListScheduler sch(m);
    sched::InstSeq block;
    auto push = [&](isa::Instruction in, bool instr = false) {
        sched::InstRef r;
        r.inst = in;
        r.isInstrumentation = instr;
        block.push_back(r);
    };
    push(b::sethi(6, 0x500000), true);
    push(b::memi(isa::Op::Ld, 7, 6, 0), true);
    push(b::rri(isa::Op::Add, 7, 7, 1), true);
    push(b::memi(isa::Op::St, 7, 6, 0), true);
    for (int i = 0; i < int(state.range(0)); ++i)
        push(b::rri(isa::Op::Add, 8 + (i % 6), 8 + ((i + 1) % 6), 1));
    push(b::cmpi(9, 0));
    push(b::bicc(isa::cond::ne, 8));
    push(b::nop());
    for (auto _ : state)
        benchmark::DoNotOptimize(sch.scheduleBlock(block));
    state.SetItemsProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_ScheduleBlock)->Arg(4)->Arg(16)->Arg(48);

void
BM_SadlAnalyze(benchmark::State &state)
{
    std::string src(machine::builtinSadlSource("ultrasparc"));
    for (auto _ : state)
        benchmark::DoNotOptimize(sadl::analyze(src));
}
BENCHMARK(BM_SadlAnalyze);

void
BM_EmulatorRun(benchmark::State &state)
{
    const exe::Executable &x = benchProgram();
    for (auto _ : state) {
        sim::Emulator emu(x);
        sim::RunResult r = emu.run();
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.instructions));
    }
}
BENCHMARK(BM_EmulatorRun);

void
BM_TimedRun(benchmark::State &state)
{
    const exe::Executable &x = benchProgram();
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    for (auto _ : state) {
        sim::TimedRun r = sim::timedRun(x, m);
        benchmark::DoNotOptimize(r.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.result.instructions));
    }
}
BENCHMARK(BM_TimedRun);

/** BM_TimedRun with the trace memo pinned off: the difference is
 *  the memo's net win on a loop-dominated stream (key build + apply
 *  per trace vs one issue walk per instruction). */
void
BM_TimedRunNoMemo(benchmark::State &state)
{
    const exe::Executable &x = benchProgram();
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    sim::TimingSim::Config cfg;
    cfg.traceMemo = false;
    for (auto _ : state) {
        sim::TimedRun r = sim::timedRun(x, m, cfg);
        benchmark::DoNotOptimize(r.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.result.instructions));
    }
}
BENCHMARK(BM_TimedRunNoMemo);

// --- Per-engine microbenches. The Minst/s aggregates above mix
// dispatch, hazard checks and bookkeeping; these isolate one engine
// each so a future regression can be attributed below the aggregate.

/** Hold-check-only loop: pipeline_stalls on an unstalled add stream
 *  (the no-stall precondition is the whole cost — no commit, no
 *  walk), per engine. */
void
holdCheckBench(benchmark::State &state, bool simd)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    machine::PipelineState st(m, simd);
    machine::ResolvedVariant rv = machine::ResolvedVariant::resolve(
        m, b::rri(isa::Op::Add, 8, 9, 42));
    for (auto _ : state)
        benchmark::DoNotOptimize(st.stalls(rv));
    state.SetItemsProcessed(state.iterations());
}
void
BM_HoldCheckSimd(benchmark::State &state)
{
    holdCheckBench(state, true);
}
BENCHMARK(BM_HoldCheckSimd);
void
BM_HoldCheckScalar(benchmark::State &state)
{
    holdCheckBench(state, false);
}
BENCHMARK(BM_HoldCheckScalar);

/** Full issue loop (check + commit) per hold engine, on the mixed
 *  stalling stream BM_PipelineIssue uses. */
void
issueEngineBench(benchmark::State &state, bool simd)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    machine::PipelineState st(m, simd);
    isa::Instruction seq[4] = {
        b::memi(isa::Op::Ld, 8, 16, 0),
        b::rri(isa::Op::Add, 9, 8, 1),
        b::fp3(isa::Op::Fmuld, 4, 0, 2),
        b::memi(isa::Op::St, 9, 16, 4),
    };
    machine::ResolvedVariant rvs[4];
    for (int i = 0; i < 4; ++i)
        rvs[i] = machine::ResolvedVariant::resolve(m, seq[i]);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(st.issue(rvs[i & 3]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
void
BM_IssueSimdHold(benchmark::State &state)
{
    issueEngineBench(state, true);
}
BENCHMARK(BM_IssueSimdHold);
void
BM_IssueScalarHold(benchmark::State &state)
{
    issueEngineBench(state, false);
}
BENCHMARK(BM_IssueScalarHold);

/** Dispatch-only loop: functional emulation into a null sink, per
 *  dispatch engine. The two differ only in how the interpreter
 *  reaches the next handler. */
void
dispatchBench(benchmark::State &state,
              sim::Emulator::Config::Dispatch d)
{
    const exe::Executable &x = benchProgram();
    sim::Emulator::Config cfg;
    cfg.dispatch = d;
    auto text = sim::Emulator::decodeText(x);
    for (auto _ : state) {
        sim::Emulator emu(x, cfg, text);
        sim::RunResult r = emu.run();
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.instructions));
    }
}
void
BM_DispatchThreaded(benchmark::State &state)
{
    dispatchBench(state, sim::Emulator::Config::Dispatch::Threaded);
}
BENCHMARK(BM_DispatchThreaded);
void
BM_DispatchSwitch(benchmark::State &state)
{
    dispatchBench(state, sim::Emulator::Config::Dispatch::Switch);
}
BENCHMARK(BM_DispatchSwitch);

void
BM_InstrumentAndSchedule(benchmark::State &state)
{
    const exe::Executable &x = benchProgram();
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    for (auto _ : state) {
        auto routines = edit::buildRoutines(x);
        exe::Executable work = x;
        qpt::ProfilePlan plan = qpt::makePlan(work, routines);
        edit::EditOptions so;
        so.schedule = true;
        so.model = &m;
        exe::Executable out =
            edit::rewrite(work, routines, plan.plan, so);
        benchmark::DoNotOptimize(out.text.size());
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(x.text.size()));
    }
}
BENCHMARK(BM_InstrumentAndSchedule);

} // namespace

BENCHMARK_MAIN();
