/**
 * @file
 * §4 ablation: the paper assumes instrumentation loads and stores do
 * not conflict with the original program's accesses, which "permits
 * instrumentation loads and stores ... more freedom of movement",
 * with an option to restrict it for constrained instrumentation.
 * This bench measures the % of overhead hidden under both policies.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions base = bench::parseArgs(argc, argv);

    std::printf("\nEffect of the instrumentation memory-aliasing "
                "policy on %% hidden (%s)\n",
                base.machine.c_str());
    std::printf("%-14s %22s %22s %9s\n", "Benchmark",
                "separate (paper, %hid)", "conservative (%hid)",
                "delta");

    auto specs = workload::spec95(base.machine);
    // A representative mix: small-block int, mid, and large fp.
    for (size_t i : {0u, 4u, 5u, 10u, 12u, 13u, 16u}) {
        if (!base.only.empty() && specs[i].name != base.only)
            continue;
        bench::TableOptions sep = base;
        sep.sched.alias = sched::AliasPolicy::SeparateInstrumentation;
        bench::TableOptions cons = base;
        cons.sched.alias = sched::AliasPolicy::Conservative;

        bench::Row rs = bench::runBenchmark(sep, i);
        bench::Row rc = bench::runBenchmark(cons, i);
        std::printf("%-14s %21.1f%% %21.1f%% %8.1f\n",
                    rs.name.c_str(), rs.pctHidden, rc.pctHidden,
                    rs.pctHidden - rc.pctHidden);
    }
    std::printf("\nPositive delta: separating instrumentation "
                "memory buys scheduling freedom (paper §4).\n");
    return 0;
}
