/**
 * @file
 * Regenerates the paper's §1 motivation numbers: how much of a
 * superscalar machine's issue bandwidth ordinary programs leave
 * unused. Cvetanovic & Bhandarkar found 2-way Alphas dual-issue only
 * 20-50% of instructions; Diep et al. measured 1.05-1.25 IPC for
 * integer and 1.0-1.9 IPC for fp SPEC benchmarks on a 4-way
 * PowerPC 620. Those empty slots are where instrumentation hides.
 *
 * For each (machine, benchmark) this prints the issue-width
 * histogram — the fraction of cycles in which 0,1,2,... instructions
 * entered the pipeline — and the resulting IPC.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions opts = bench::parseArgs(argc, argv);
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);

    std::printf("\nIssue-width histogram, uninstrumented benchmarks "
                "on the %s (%u-way)\n",
                opts.machine.c_str(), m.issueWidth());
    std::printf("%-14s %8s", "Benchmark", "IPC");
    for (unsigned k = 0; k <= m.issueWidth(); ++k)
        std::printf("  %%cyc@%u", k);
    std::printf("  %%multi-issue\n");

    auto specs = workload::spec95(opts.machine);
    double int_ipc = 0, fp_ipc = 0;
    int n_int = 0, n_fp = 0;
    for (const auto &spec : specs) {
        if (!opts.only.empty() && spec.name != opts.only)
            continue;
        workload::GenOptions gopts;
        gopts.scale = opts.scale;
        gopts.machine = &m;
        exe::Executable x = workload::generate(spec, gopts);
        sim::TimedRun r = sim::timedRun(x, m);

        uint64_t cycles = 0;
        for (uint64_t c : r.issueHistogram)
            cycles += c;
        // Instructions issued in cycles with >= 2 issues.
        uint64_t multi = 0;
        for (size_t k = 2; k < r.issueHistogram.size(); ++k)
            multi += k * r.issueHistogram[k];

        std::printf("%-14s %8.2f", spec.name.c_str(), r.ipc);
        for (unsigned k = 0; k <= m.issueWidth(); ++k) {
            double pct = cycles ? 100.0 * r.issueHistogram[k] /
                                      double(cycles)
                                : 0.0;
            std::printf("  %6.1f", pct);
        }
        std::printf("  %10.1f%%\n",
                    100.0 * double(multi) /
                        double(r.result.instructions));
        (spec.fp ? fp_ipc : int_ipc) += r.ipc;
        (spec.fp ? n_fp : n_int) += 1;
    }
    if (n_int)
        std::printf("\nCINT95 mean IPC: %.2f (paper cites "
                    "1.05-1.25 on a 4-way 620)\n",
                    int_ipc / n_int);
    if (n_fp)
        std::printf("CFP95 mean IPC:  %.2f (paper cites 1.0-1.9)\n",
                    fp_ipc / n_fp);
    return 0;
}
