/**
 * @file
 * §4.1 ablation: "in many programs, most basic blocks are short and
 * so present few opportunities to hide instrumentation." Sweeps the
 * target dynamic block size of an otherwise-fixed synthetic workload
 * and reports the fraction of profiling overhead hidden, showing how
 * hiding grows with block length.
 */

#include <cstdio>
#include <set>

#include "bench/common.hh"
#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions opts = bench::parseArgs(argc, argv);
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);

    std::printf("\n%% of profiling overhead hidden vs. dynamic block "
                "size (%s, fp workload)\n",
                opts.machine.c_str());
    std::printf("%10s %10s %12s %12s %9s\n", "BlockSize", "measured",
                "inst ratio", "sched ratio", "%hidden");

    for (double target : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                          32.0, 48.0}) {
        workload::BenchmarkSpec spec;
        spec.name = "sweep";
        spec.fp = true;
        spec.avgBlockSize = target;
        spec.loadFrac = 0.24;
        spec.storeFrac = 0.10;
        spec.fpFrac = 0.40;
        spec.serialProb = 0.2;
        spec.dynTarget = 400000;
        spec.seed = 12345;

        workload::GenOptions gopts;
        gopts.scale = opts.scale;
        gopts.machine = &m;
        exe::Executable orig = workload::generate(spec, gopts);

        auto routines = edit::buildRoutines(orig);
        exe::Executable work = orig;
        qpt::ProfilePlan plan = qpt::makePlan(work, routines);
        exe::Executable inst = edit::rewrite(work, routines,
                                             plan.plan, {});
        edit::EditOptions so;
        so.schedule = true;
        so.model = &m;
        so.sched = opts.sched;
        exe::Executable sch = edit::rewrite(work, routines,
                                            plan.plan, so);

        auto r0 = sim::timedRun(orig, m);
        auto r1 = sim::timedRun(inst, m);
        auto r2 = sim::timedRun(sch, m);

        // Measured dynamic block size.
        double measured =
            double(r0.result.instructions) /
            double([&] {
                struct S : sim::TraceSink
                {
                    std::set<uint32_t> starts;
                    uint64_t blocks = 0;
                    void
                    retire(uint32_t pc,
                           const isa::Instruction &) override
                    {
                        blocks += starts.count(pc);
                    }
                } s;
                for (const auto &r : routines)
                    for (const auto &blk : r.blocks)
                        s.starts.insert(blk.startAddr);
                sim::Emulator e(orig);
                e.run(&s);
                return s.blocks;
            }());

        double hidden = 100.0 *
                        double(int64_t(r1.cycles) -
                               int64_t(r2.cycles)) /
                        double(int64_t(r1.cycles) -
                               int64_t(r0.cycles));
        std::printf("%10.1f %10.1f %12.2f %12.2f %8.1f%%\n", target,
                    measured, double(r1.cycles) / r0.cycles,
                    double(r2.cycles) / r0.cycles, hidden);
    }
    return 0;
}
