/**
 * @file
 * §1/§5 speculation: "in the future, these results may improve, and
 * scheduling become even more attractive, with ... wider
 * microarchitectures that offer further opportunities to hide
 * instrumentation." Runs the same benchmarks across issue widths
 * 2 (hyperSPARC), 3 (SuperSPARC), 4 (UltraSPARC), and a hypothetical
 * 8-wide machine, reporting the % of profiling overhead hidden.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions base = bench::parseArgs(argc, argv);

    const char *machines[] = {"hypersparc", "supersparc",
                              "ultrasparc", "wide8"};

    std::printf("\n%% of profiling overhead hidden vs. issue width\n");
    std::printf("%-14s", "Benchmark");
    for (const char *m : machines)
        std::printf(" %12s(%u)", m,
                    machine::MachineModel::builtin(m).issueWidth());
    std::printf("\n");

    auto specs = workload::spec95("ultrasparc");
    for (size_t i : {0u, 3u, 5u, 9u, 12u, 13u, 16u}) {
        if (!base.only.empty() && specs[i].name != base.only)
            continue;
        std::printf("%-14s", specs[i].name.c_str());
        for (const char *m : machines) {
            bench::TableOptions opts = base;
            opts.machine = m;
            bench::Row r = bench::runBenchmark(opts, i);
            std::printf("  %6.1f%%(%4.2fx)", r.pctHidden,
                        r.instRatio);
        }
        std::printf("\n");
    }
    std::printf("\n(parenthesized: instrumented/uninstrumented ratio "
                "at that width)\n"
                "Two regimes: long-block fp code keeps a meaningful "
                "overhead at 8-wide and\nscheduling hides nearly all "
                "of it (the paper's hope); short-block integer code's\n"
                "overhead is increasingly absorbed by the hardware "
                "itself, leaving little for\nsoftware scheduling — "
                "foreshadowing why this technique faded on "
                "out-of-order\nmachines.\n");
    return 0;
}
