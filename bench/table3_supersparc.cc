/**
 * @file
 * Reproduces Table 3: slow profiling instrumentation on the 3-way
 * SuperSPARC (50 MHz). The paper reports ~11% of the profiling
 * overhead hidden for CINT95 and ~44% for CFP95 — the narrower
 * machine leaves more stall cycles for instrumentation to hide in.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);
    if (opts.machine == "ultrasparc")
        opts.machine = "supersparc";  // default for this table
    opts.rescheduleFirst = false;

    std::fprintf(stderr,
                 "table3: machine=%s scale=%.2f (paper: Table 3)\n",
                 opts.machine.c_str(), opts.scale);
    std::vector<Row> rows = runTable(opts);
    std::string title =
        "Table 3: Slow profiling instrumentation on the " +
        opts.machine + " (paper Table 3, SuperSPARC)";
    printTable(title, rows);
    emitOutputs(opts, title, rows);
    return 0;
}
