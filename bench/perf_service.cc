/**
 * @file
 * Perf harness for the rewriting service: starts an in-process
 * svc::Server, drives it with the closed-loop multi-connection load
 * generator, and writes latency/throughput/hit-rate numbers to
 * BENCH_service.json so successive PRs have a service-tier
 * trajectory to compare against.
 *
 * Also the correctness gate the service tier must clear to claim it
 * is "the same pipeline behind a socket":
 *
 *   - byte-identity: for every base image and every exercised
 *     rewrite kind, the REWRITE reply must equal a direct
 *     BatchRewriter run of the identical input, byte for byte;
 *   - cache efficacy: the resubmit-heavy mix must achieve >= 80%
 *     page-intern hit rate on measured SUBMIT_XEF requests (that is
 *     what the process-wide SectionStore is for);
 *   - liveness: a non-zero number of requests must complete, and no
 *     request may end in an error status.
 *
 * Exits nonzero when any gate fails.
 *
 * Runs the load twice: the closed loop above (existing flat keys in
 * the JSON), then an open-loop pass at --open-rate requests/second
 * (Poisson arrivals, latency measured from scheduled arrival, so
 * queueing delay counts — the "open_*" keys). --open-rate 0 (the
 * default) self-calibrates to half the closed-loop throughput, which
 * keeps the open-loop system stable while still exercising queueing.
 *
 * Usage: perf_service [--connections n] [--requests n] [--warmup n]
 *                     [--images n] [--scale x] [--machine m]
 *                     [--threads n] [--open-rate r] [--out file.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/eel/batch.hh"
#include "src/exe/executable.hh"
#include "src/machine/model.hh"
#include "src/obs/histogram.hh"
#include "src/obs/metrics.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"
#include "src/svc/client.hh"
#include "src/svc/loadgen.hh"
#include "src/svc/server.hh"

using namespace eel;

namespace {

/** Direct (in-process, no socket) rewrite of `bytes`: the reference
 *  the service's REWRITE replies are compared against. */
std::string
directRewrite(const std::string &bytes, uint8_t kind,
              const machine::MachineModel &model,
              support::ThreadPool &pool)
{
    exe::Executable in = exe::Executable::loadBytes(bytes);
    exe::SectionStore store;  // private: isolate from the server's
    store.intern(in);
    edit::BatchOptions opts;
    opts.model = &model;
    opts.pool = &pool;
    opts.store = &store;
    edit::BatchRewriter rw(in, opts);
    edit::BatchResult res =
        rw.rewriteAll({static_cast<edit::VariantKind>(kind)});
    return res.variants.at(0).image.saveBytes();
}

/** Merged server-side view of the svc.op.* histograms. */
obs::HistogramSnapshot
mergedOps(const std::vector<obs::HistogramSnapshot> &all)
{
    obs::HistogramSnapshot out;
    for (const obs::HistogramSnapshot &h : all) {
        if (h.name.rfind("svc.op.", 0) != 0)
            continue;
        if (out.counts.empty())
            out = h;
        else
            out.merge(h);
    }
    out.name = "svc.op.*";
    return out;
}

const obs::HistogramSnapshot *
findHist(const std::vector<obs::HistogramSnapshot> &all,
         const std::string &name)
{
    for (const obs::HistogramSnapshot &h : all)
        if (h.name == name)
            return &h;
    return nullptr;
}

/** Mean cost of one Histogram::record() in nanoseconds. */
double
recordOverheadNs()
{
    obs::Histogram h("bench.record_overhead");
    const unsigned n = 1u << 20;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < n; ++i)
        h.record(i & 0xffff);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0)
               .count() /
           double(n);
}

} // namespace

int
main(int argc, char **argv)
{
    svc::LoadConfig load;
    svc::ServerConfig scfg;
    std::string out_path = "BENCH_service.json";
    double openRate = 0;  // 0 = half the closed-loop throughput
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after %s", argv[i]);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--connections"))
            load.connections = unsigned(atoi(next()));
        else if (!std::strcmp(argv[i], "--requests"))
            load.requestsPerConn = unsigned(atoi(next()));
        else if (!std::strcmp(argv[i], "--warmup"))
            load.warmupPerConn = unsigned(atoi(next()));
        else if (!std::strcmp(argv[i], "--images"))
            load.imageCount = unsigned(atoi(next()));
        else if (!std::strcmp(argv[i], "--scale"))
            load.imageScale = atof(next());
        else if (!std::strcmp(argv[i], "--machine"))
            load.machine = next();
        else if (!std::strcmp(argv[i], "--threads"))
            scfg.threads = unsigned(atoi(next()));
        else if (!std::strcmp(argv[i], "--open-rate"))
            openRate = atof(next());
        else if (!std::strcmp(argv[i], "--out"))
            out_path = next();
        else
            fatal("unknown flag %s", argv[i]);
    }
    scfg.defaultMachine = load.machine;

    svc::Server server(scfg);
    server.start();
    load.port = server.port();

    // Clean slate so the server-side histograms cover exactly what
    // this process offers (telemetry cross-check below).
    obs::resetHistograms();

    svc::LoadStats stats = svc::runLoad(load);

    // Server-side latency view of the closed-loop run, captured
    // before the open-loop pass adds samples measured on a different
    // clock (open-loop client latency starts at the *scheduled*
    // arrival, so it is not comparable to server-side time).
    obs::HistogramSnapshot closedOps =
        mergedOps(obs::histogramsSnapshot());
    double srvP50Ms = double(closedOps.percentile(0.50)) / 1000.0;
    double srvP99Ms = double(closedOps.percentile(0.99)) / 1000.0;

    // Open-loop pass against the same (now warm) server. Calibrated
    // below saturation by default so the arrival schedule is
    // sustainable and the percentiles measure queueing, not runaway
    // backlog.
    svc::LoadConfig openLoad = load;
    openLoad.mode = svc::LoadConfig::ArrivalMode::Open;
    openLoad.dist = svc::LoadConfig::ArrivalDist::Poisson;
    openLoad.openRate =
        openRate > 0
            ? openRate
            : std::max(10.0, stats.requestsPerSecond * 0.5);
    openLoad.warmupPerConn =
        std::min(load.warmupPerConn, 5u);  // server is already warm
    svc::LoadStats openStats = svc::runLoad(openLoad);

    // Gate 1: the service's rewrites must be byte-identical to a
    // direct BatchRewriter run on the same input. Replies come over
    // the live server (and its caches), the reference from a private
    // pool + store — if COW sharing or concurrency ever corrupted a
    // page, the bytes diverge here.
    bool identical = true;
    {
        const machine::MachineModel &model =
            machine::MachineModel::builtin(load.machine);
        support::ThreadPool refPool(1);
        std::vector<std::string> bases = svc::loadImages(load);
        svc::Client probe = svc::Client::dialTcp(server.port());
        for (const std::string &base : bases) {
            uint64_t id = svc::contentId(base);
            probe.submit(base);
            for (uint8_t kind : load.rewriteKinds) {
                svc::RewriteRequest rr;
                rr.imageId = id;
                rr.kind = kind;
                rr.machine = load.machine;
                auto rep = probe.rewrite(rr);
                if (!rep.ok()) {
                    identical = false;
                    continue;
                }
                std::string ref = directRewrite(base, kind, model,
                                                refPool);
                identical = identical && rep.value.xef == ref;
            }
        }
    }

    std::string statsJson = server.statsJson();
    exe::SectionStore::Stats ss = server.store().stats();
    sim::ResultCache::Stats rcs = server.rescache().stats();
    svc::Server::Counters sctr = server.counters();
    std::vector<obs::HistogramSnapshot> lifeHists =
        obs::histogramsSnapshot();
    std::vector<obs::HistogramSnapshot> winHists =
        obs::histogramsWindow(60);
    server.stop();

    double internHitRate =
        ss.internCalls
            ? double(ss.internHits) / double(ss.internCalls)
            : 0.0;

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"machine\": \"%s\",\n",
                 load.machine.c_str());
    std::fprintf(f, "  \"connections\": %u,\n", load.connections);
    std::fprintf(f, "  \"requests_per_conn\": %u,\n",
                 load.requestsPerConn);
    std::fprintf(f, "  \"completed\": %llu,\n",
                 (unsigned long long)stats.completed);
    std::fprintf(f, "  \"errors\": %llu,\n",
                 (unsigned long long)stats.errors);
    std::fprintf(f, "  \"busy_rejected\": %llu,\n",
                 (unsigned long long)stats.busy);
    std::fprintf(f, "  \"deadline_exceeded\": %llu,\n",
                 (unsigned long long)stats.deadlineExceeded);
    std::fprintf(f, "  \"wall_s\": %.4f,\n", stats.wallSeconds);
    std::fprintf(f, "  \"requests_per_s\": %.1f,\n",
                 stats.requestsPerSecond);
    std::fprintf(f, "  \"p50_ms\": %.3f,\n", stats.p50Ms);
    std::fprintf(f, "  \"p99_ms\": %.3f,\n", stats.p99Ms);
    std::fprintf(f, "  \"p999_ms\": %.3f,\n", stats.p999Ms);
    std::fprintf(f, "  \"submit_page_hit_rate\": %.4f,\n",
                 stats.submitHitRate());
    std::fprintf(f, "  \"open_rate_offered\": %.1f,\n",
                 openLoad.openRate);
    std::fprintf(f, "  \"open_completed\": %llu,\n",
                 (unsigned long long)openStats.completed);
    std::fprintf(f, "  \"open_errors\": %llu,\n",
                 (unsigned long long)openStats.errors);
    std::fprintf(f, "  \"open_requests_per_s\": %.1f,\n",
                 openStats.requestsPerSecond);
    std::fprintf(f, "  \"open_p50_ms\": %.3f,\n", openStats.p50Ms);
    std::fprintf(f, "  \"open_p99_ms\": %.3f,\n", openStats.p99Ms);
    std::fprintf(f, "  \"open_p999_ms\": %.3f,\n",
                 openStats.p999Ms);
    std::fprintf(f, "  \"store_intern_hit_rate\": %.4f,\n",
                 internHitRate);
    std::fprintf(f, "  \"store_live_mb\": %.3f,\n",
                 double(ss.liveBytes) / (1024.0 * 1024.0));
    std::fprintf(f, "  \"store_gc_runs\": %zu,\n", ss.gcRuns);
    std::fprintf(f, "  \"store_gc_reclaimed_pages\": %zu,\n",
                 ss.gcReclaimedPages);
    std::fprintf(f, "  \"rewrite_identical\": %s,\n",
                 identical ? "true" : "false");
    // Server-side telemetry: the closed-loop run as the histograms
    // saw it, per-phase percentiles, and the caches behind SIMULATE.
    std::fprintf(f, "  \"server_p50_ms\": %.3f,\n", srvP50Ms);
    std::fprintf(f, "  \"server_p99_ms\": %.3f,\n", srvP99Ms);
    static const char *phases[] = {"queue",    "decode", "rewrite",
                                   "sim",      "rescache",
                                   "reply"};
    for (const char *ph : phases) {
        const obs::HistogramSnapshot *h =
            findHist(lifeHists, std::string("svc.phase.") + ph);
        std::fprintf(f, "  \"phase_%s_p50_ms\": %.3f,\n", ph,
                     h ? double(h->percentile(0.50)) / 1000.0 : 0.0);
        std::fprintf(f, "  \"phase_%s_p99_ms\": %.3f,\n", ph,
                     h ? double(h->percentile(0.99)) / 1000.0 : 0.0);
    }
    std::fprintf(f, "  \"sim_cache_hits\": %llu,\n",
                 (unsigned long long)sctr.simCacheHits);
    std::fprintf(f, "  \"rescache_lookups\": %llu,\n",
                 (unsigned long long)rcs.lookups);
    std::fprintf(f, "  \"rescache_hits\": %llu,\n",
                 (unsigned long long)rcs.hits);
    std::fprintf(f, "  \"rescache_misses\": %llu,\n",
                 (unsigned long long)rcs.misses);
    std::fprintf(f, "  \"rescache_stores\": %llu,\n",
                 (unsigned long long)rcs.stores);
    std::fprintf(f, "  \"slow_requests\": %llu,\n",
                 (unsigned long long)sctr.slowRequests);
    std::fprintf(f, "  \"op_histograms\": {");
    {
        bool firstOp = true;
        for (const obs::HistogramSnapshot &h : lifeHists) {
            if (h.name.rfind("svc.op.", 0) != 0)
                continue;
            const obs::HistogramSnapshot *w =
                findHist(winHists, h.name);
            std::fprintf(
                f,
                "%s\n    \"%s\": {\"count\": %llu, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"window60s_count\": %llu, "
                "\"window60s_p99_ms\": %.3f}",
                firstOp ? "" : ",", h.name.c_str(),
                (unsigned long long)h.count,
                double(h.percentile(0.50)) / 1000.0,
                double(h.percentile(0.99)) / 1000.0,
                (unsigned long long)(w ? w->count : 0),
                w ? double(w->percentile(0.99)) / 1000.0 : 0.0);
            firstOp = false;
        }
    }
    std::fprintf(f, "\n  },\n");
    std::fprintf(f, "  \"histogram_record_ns\": %.1f,\n",
                 recordOverheadNs());
    std::fprintf(f, "  \"server_stats\": %s,\n", statsJson.c_str());
    std::string metrics = obs::metricsJson("  ");
    std::fprintf(f, "  \"metrics\": %s\n", metrics.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("perf_service: %llu completed, %.1f req/s, "
                "p50 %.2fms p99 %.2fms, submit hit-rate %.3f, "
                "identical=%s -> %s\n",
                (unsigned long long)stats.completed,
                stats.requestsPerSecond, stats.p50Ms, stats.p99Ms,
                stats.submitHitRate(), identical ? "yes" : "no",
                out_path.c_str());
    std::printf("perf_service[open]: offered %.1f req/s, achieved "
                "%.1f, p50 %.2fms p99 %.2fms (queue-time "
                "included)\n",
                openLoad.openRate, openStats.requestsPerSecond,
                openStats.p50Ms, openStats.p99Ms);
    std::printf("perf_service[telemetry]: server-side p50 %.2fms "
                "p99 %.2fms over %llu requests (client p50 %.2fms "
                "p99 %.2fms)\n",
                srvP50Ms, srvP99Ms,
                (unsigned long long)closedOps.count, stats.p50Ms,
                stats.p99Ms);

    // Gates (see file comment).
    int rc = 0;
    if (stats.completed == 0) {
        std::fprintf(stderr, "FAIL: no requests completed\n");
        rc = 1;
    }
    if (stats.errors || openStats.errors) {
        std::fprintf(stderr, "FAIL: %llu requests errored\n",
                     (unsigned long long)(stats.errors +
                                          openStats.errors));
        rc = 1;
    }
    if (openStats.completed == 0) {
        std::fprintf(stderr,
                     "FAIL: no open-loop requests completed\n");
        rc = 1;
    }
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: service rewrite differs from direct "
                     "BatchRewriter output\n");
        rc = 1;
    }
    if (stats.submitHitRate() < 0.8) {
        std::fprintf(stderr,
                     "FAIL: submit page hit-rate %.3f < 0.8\n",
                     stats.submitHitRate());
        rc = 1;
    }
    // Gate: the server-side histograms must have seen the closed
    // loop (warmup + measured + its replies) ...
    if (closedOps.count <
        uint64_t(load.connections) * load.requestsPerConn) {
        std::fprintf(stderr,
                     "FAIL: server histograms saw %llu requests, "
                     "expected >= %llu\n",
                     (unsigned long long)closedOps.count,
                     (unsigned long long)(uint64_t(
                                              load.connections) *
                                          load.requestsPerConn));
        rc = 1;
    }
    // ... and its percentiles must bracket the client-observed ones.
    // Server time is a subset of client time (no socket hops), so it
    // sits below the client's with a floor well above zero; p99 gets
    // extra headroom because the server view also includes warmup's
    // cold-cache requests, which the client percentiles exclude.
    if (srvP50Ms > stats.p50Ms * 1.5 + 1.0 ||
        srvP50Ms < stats.p50Ms * 0.02 - 0.1) {
        std::fprintf(stderr,
                     "FAIL: server p50 %.3fms does not bracket "
                     "client p50 %.3fms\n",
                     srvP50Ms, stats.p50Ms);
        rc = 1;
    }
    if (srvP99Ms > stats.p99Ms * 3.0 + 10.0) {
        std::fprintf(stderr,
                     "FAIL: server p99 %.3fms implausibly above "
                     "client p99 %.3fms\n",
                     srvP99Ms, stats.p99Ms);
        rc = 1;
    }
    return rc;
}
