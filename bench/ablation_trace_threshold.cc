/**
 * @file
 * Ablation: how the trace-formation threshold steers the superblock
 * scheduler's gain/growth trade-off. A low threshold grows long
 * traces through lukewarm branches — more motion freedom, but more
 * tail duplication and more off-trace exits that forfeit the
 * speculated work; a high threshold keeps traces short and cheap.
 * Sweeps the mutual-most-likely threshold over the CINT stand-ins
 * (the short-block codes superblock scheduling exists for) and
 * reports the hidden fraction, static code growth, and the dynamic
 * duplication surcharge at each point. The dynamic column comes from
 * sched::accountGrowth, which charges a tail-duplicated block once
 * even when several relink paths re-enter it — the per-visit count
 * this bench once did double-charged exactly those blocks
 * (tests/sched/test_superblock.cc pins the corrected numbers).
 *
 * The profile run and the Inst/Local measurement builds are shared
 * across the sweep; only the superblock rewrite depends on the
 * threshold.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/eel/editor.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/sched/superblock.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

constexpr double kThresholds[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95};

/** Per-benchmark state independent of the threshold. */
struct Prepared
{
    std::string name;
    exe::Executable work;  ///< base, with counter bss reserved
    std::vector<edit::Routine> routines;
    std::vector<edit::RoutineEdgeCounts> counts;
    edit::InstrumentationPlan plan;
    uint64_t baseCycles = 0;
    uint64_t instCycles = 0;
    uint64_t localCycles = 0;
    size_t localText = 0;
    /** Profiled dynamic instructions (exec-weighted block sizes):
     *  the denominator of the dynamic-growth column. */
    uint64_t dynBase = 0;
};

Prepared
prepare(const bench::TableOptions &opts, size_t index,
        const machine::MachineModel &m, support::ThreadPool *pool)
{
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];
    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);

    Prepared p;
    p.name = spec.name;
    p.routines = edit::buildRoutines(original);

    exe::Executable eprof_x = original;
    qpt::EdgeProfilePlan eplan =
        qpt::makeEdgePlan(eprof_x, p.routines);
    exe::Executable eprof = edit::rewrite(
        eprof_x, p.routines, eplan.plan, edit::EditOptions{});
    sim::Emulator prof_emu(eprof);
    if (!prof_emu.run().exited)
        fatal("%s: profile run did not exit", spec.name.c_str());
    p.counts = qpt::exportEdgeCounts(
        qpt::readEdgeCounts(prof_emu, eplan, p.routines), eplan,
        p.routines);

    p.work = original;
    qpt::ProfilePlan bplan = qpt::makePlan(p.work, p.routines);
    p.plan = std::move(bplan.plan);

    edit::EditOptions local_opts;
    local_opts.schedule = true;
    local_opts.model = &m;
    local_opts.sched = opts.sched;
    local_opts.pool = pool;
    exe::Executable inst = edit::rewrite(
        p.work, p.routines, p.plan, edit::EditOptions{});
    exe::Executable local = edit::rewrite(
        p.work, p.routines, p.plan, local_opts);
    p.baseCycles = sim::timedRun(p.work, m).cycles;
    p.instCycles = sim::timedRun(inst, m).cycles;
    p.localCycles = sim::timedRun(local, m).cycles;
    p.localText = local.text.size();
    for (size_t ri = 0; ri < p.routines.size(); ++ri)
        for (const edit::Block &b : p.routines[ri].blocks)
            p.dynBase += p.counts[ri][b.id].exec * b.insts.size();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);

    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    auto specs = eel::workload::spec95(opts.machine);
    std::vector<size_t> indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (!specs[i].fp &&
            (opts.only.empty() || specs[i].name == opts.only))
            indices.push_back(i);

    std::fprintf(stderr,
                 "ablation_trace_threshold: machine=%s scale=%.2f "
                 "(%zu CINT benchmarks)\n",
                 opts.machine.c_str(), opts.scale, indices.size());

    eel::support::ThreadPool pool(opts.jobs);
    std::vector<Prepared> prep(indices.size());
    std::vector<uint64_t> cost(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        cost[k] = specs[indices[k]].dynTarget;
    pool.parallelFor(indices.size(), cost, [&](size_t k) {
        prep[k] = prepare(opts, indices[k], m, &pool);
    });

    std::printf("\nTrace threshold sweep: superblock scheduling of "
                "profiling instrumentation (%s, CINT)\n",
                opts.machine.c_str());
    std::printf("%-10s %10s %10s %10s %10s %8s\n", "Threshold",
                "%Hid(loc)", "%Hid(sb)", "Growth", "DynGrow",
                "Traces");

    for (double threshold : kThresholds) {
        double hid_local = 0, hid_sb = 0, growth = 0, dyngrow = 0;
        uint64_t traces = 0;
        std::vector<double> hs(prep.size()), gr(prep.size());
        std::vector<double> dg(prep.size());
        std::vector<uint64_t> tr(prep.size());
        pool.parallelFor(prep.size(), cost, [&](size_t k) {
            const Prepared &p = prep[k];
            eel::edit::EditOptions sb_opts;
            sb_opts.schedule = true;
            sb_opts.model = &m;
            sb_opts.sched = opts.sched;
            sb_opts.pool = &pool;
            sb_opts.scope = eel::edit::SchedScope::Superblock;
            sb_opts.superblock.threshold = threshold;
            sb_opts.edgeCounts = &p.counts;
            eel::exe::Executable sb = eel::edit::rewrite(
                p.work, p.routines, p.plan, sb_opts);
            uint64_t sb_cycles = eel::sim::timedRun(sb, m).cycles;
            double denom = double(int64_t(p.instCycles) -
                                  int64_t(p.baseCycles));
            hs[k] = 100.0 *
                    double(int64_t(p.instCycles) -
                           int64_t(sb_cycles)) / denom;
            gr[k] = 100.0 *
                    (double(sb.text.size()) -
                     double(p.localText)) / double(p.localText);
            uint64_t n = 0, dynExtra = 0;
            for (size_t ri = 0; ri < p.routines.size(); ++ri) {
                auto rtraces = eel::sched::formTraces(
                    p.routines[ri], p.counts[ri],
                    sb_opts.superblock);
                n += rtraces.size();
                dynExtra += eel::sched::accountGrowth(
                                p.routines[ri], p.counts[ri],
                                rtraces)
                                .dynExtra;
            }
            tr[k] = n;
            dg[k] = p.dynBase ? 100.0 * double(dynExtra) /
                                    double(p.dynBase)
                              : 0.0;
        });
        for (size_t k = 0; k < prep.size(); ++k) {
            const Prepared &p = prep[k];
            double denom = double(int64_t(p.instCycles) -
                                  int64_t(p.baseCycles));
            hid_local += 100.0 *
                         double(int64_t(p.instCycles) -
                                int64_t(p.localCycles)) / denom;
            hid_sb += hs[k];
            growth += gr[k];
            dyngrow += dg[k];
            traces += tr[k];
        }
        size_t n = prep.size() ? prep.size() : 1;
        std::printf("%-10.2f %9.1f%% %9.1f%% %9.1f%% %9.2f%% "
                    "%8llu\n",
                    threshold, hid_local / double(n),
                    hid_sb / double(n), growth / double(n),
                    dyngrow / double(n),
                    static_cast<unsigned long long>(traces));
    }
    return 0;
}
