/**
 * @file
 * Beyond the paper, tier three: modulo scheduling of profiling
 * instrumentation across loop backedges. The superblock tier
 * (bench/table_superblock) hides overhead along acyclic hot paths,
 * but the loop-dominated CFP codes spend their cycles inside hot
 * single-block loops where a counter's load-add-store chain stalls
 * every iteration and no acyclic scheduler can overlap it with the
 * next one. This bench measures the pipeline tier against the same
 * Inst/Local/Superblock ladder.
 *
 * Protocol, per benchmark:
 *   1. one BatchRewriter analysis pass (internal edge-profile run),
 *      stamping four variants from the same block-counter plan:
 *      Inst (unscheduled), Sched (the paper's local scheduler),
 *      Superblock, and Pipeline (superblock + modulo-scheduled hot
 *      loops);
 *   2. %hidden for each tier against the same Inst/base cycles, and
 *      code growth of Pipeline relative to Superblock (prologues and
 *      unrolled loop bodies are the only delta);
 *   3. loop accounting from the analyzer's own view: accepted
 *      pipeline loops, rotation vs unroll decisions, and the
 *      achieved II against the MII lower bound;
 *   4. a built-in oracle: the Inst and Pipeline builds must exit
 *      with identical architectural state, memory, counter values,
 *      and program output.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/eel/batch.hh"
#include "src/eel/liveness.hh"
#include "src/isa/registers.hh"
#include "src/obs/log.hh"
#include "src/qpt/profiler.hh"
#include "src/sched/pipeline.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

struct PipeRow
{
    std::string name;
    bool fp = false;
    double instRatio = 0;
    double localRatio = 0;
    double sbRatio = 0;
    double pipeRatio = 0;
    double pctHiddenLocal = 0;
    double pctHiddenSb = 0;
    double pctHiddenPipe = 0;
    double growthPct = 0;  ///< Pipeline text vs Superblock text
    size_t loops = 0;      ///< accepted pipeline loops
    size_t rotated = 0;    ///< loops scheduled as prologue+kernel
    size_t unrolled = 0;   ///< loops that took the unroll fallback
    double avgII = 0;      ///< mean achieved II over accepted loops
    double avgMII = 0;     ///< mean MII lower bound over the same
    bool oracleOk = false;
};

PipeRow
runOne(const bench::TableOptions &opts, size_t index,
       support::ThreadPool *pool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];

    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);

    edit::BatchOptions bopts;
    bopts.model = &m;
    bopts.sched = opts.sched;
    bopts.pool = pool;
    edit::BatchRewriter rw(original, bopts);
    edit::BatchResult batch =
        rw.rewriteAll({edit::VariantKind::SlowProfile,
                       edit::VariantKind::Sched,
                       edit::VariantKind::Superblock,
                       edit::VariantKind::Pipeline});
    const exe::Executable &inst = batch.variants[0].image;
    const exe::Executable &local = batch.variants[1].image;
    const exe::Executable &sb = batch.variants[2].image;
    const exe::Executable &pipe = batch.variants[3].image;

    auto r_base = sim::timedRun(batch.work, m);
    auto r_inst = sim::timedRun(inst, m);
    auto r_local = sim::timedRun(local, m);
    auto r_sb = sim::timedRun(sb, m);
    auto r_pipe = sim::timedRun(pipe, m);
    if (r_base.result.output != r_pipe.result.output ||
        r_base.result.exitCode != r_pipe.result.exitCode)
        fatal("%s: pipeline output differs from base",
              spec.name.c_str());

    // Oracle: identical architectural exit state, memory (counters
    // included), output, and exit code.
    sim::Emulator e_inst(inst), e_pipe(pipe);
    sim::RunResult o_inst = e_inst.run();
    sim::RunResult o_pipe = e_pipe.run();
    bool oracle =
        o_inst.exited && o_pipe.exited &&
        o_inst.exitCode == o_pipe.exitCode &&
        o_inst.output == o_pipe.output &&
        e_inst.snapshot().equalTo(e_pipe.snapshot()) &&
        qpt::readCounts(e_inst, batch.profilePlan) ==
            qpt::readCounts(e_pipe, batch.profilePlan);

    PipeRow row;
    row.name = spec.name;
    row.fp = spec.fp;
    double denom = double(int64_t(r_inst.cycles) -
                          int64_t(r_base.cycles));
    row.instRatio = double(r_inst.cycles) / double(r_base.cycles);
    row.localRatio = double(r_local.cycles) / double(r_base.cycles);
    row.sbRatio = double(r_sb.cycles) / double(r_base.cycles);
    row.pipeRatio = double(r_pipe.cycles) / double(r_base.cycles);
    row.pctHiddenLocal = 100.0 *
                         double(int64_t(r_inst.cycles) -
                                int64_t(r_local.cycles)) / denom;
    row.pctHiddenSb = 100.0 *
                      double(int64_t(r_inst.cycles) -
                             int64_t(r_sb.cycles)) / denom;
    row.pctHiddenPipe = 100.0 *
                        double(int64_t(r_inst.cycles) -
                               int64_t(r_pipe.cycles)) / denom;
    row.growthPct = 100.0 *
                    (double(pipe.text.size()) -
                     double(sb.text.size())) /
                    double(sb.text.size());

    // Loop accounting: the same analyzer + scheduler decisions the
    // Pipeline stamp made, replayed per loop so the table can report
    // them (scheduleLoop is deterministic on identical inputs).
    // The editor's never-observed scratch mask is part of those
    // inputs: registers no original instruction reads are dead into
    // every exit, which is what licenses rotating the counter
    // snippet's scratch-register chain.
    std::bitset<32> neverObserved;
    neverObserved.set(isa::reg::g6);
    neverObserved.set(isa::reg::g7);
    for (const edit::Routine &r : batch.routines)
        for (const edit::Block &b : r.blocks)
            for (const sched::InstRef &ref : b.insts)
                for (const auto &u : ref.inst.uses())
                    if (u.reg.tracked() &&
                        u.reg.cls == isa::RegClass::Int)
                        neverObserved.reset(u.reg.idx);
    sched::PipelineOptions popts = bopts.pipeline;
    for (size_t ri = 0; ri < batch.routines.size(); ++ri) {
        const edit::Routine &r = batch.routines[ri];
        auto ploops = sched::findPipelineLoops(
            r, batch.edgeCounts[ri], popts);
        if (ploops.empty())
            continue;
        edit::Liveness live(r);
        for (const sched::PipelineLoop &pl : ploops) {
            const edit::Block &blk = r.blocks[pl.block];
            // The editor's blockCode: counter snippet (marked as
            // instrumentation) prepended to the body.
            sched::InstSeq code;
            if (const sched::InstSeq *snip =
                    batch.profilePlan.plan.find(ri, pl.block)) {
                code = *snip;
                for (sched::InstRef &ref : code)
                    ref.isInstrumentation = true;
            }
            code.insert(code.end(), blk.insts.begin(),
                        blk.insts.end());
            const edit::BlockEdgeCounts &bc =
                batch.edgeCounts[ri][pl.block];
            uint64_t flow = bc.fall + bc.taken;
            sched::LoopSchedule ls = sched::scheduleLoop(
                code,
                live.liveInSet(static_cast<uint32_t>(blk.fallSucc)) &
                    ~neverObserved,
                flow ? double(bc.fall) / double(flow) : 0.0,
                r.blocks[blk.fallSucc].startAddr, m, opts.sched,
                sched::SuperblockOptions{}, popts);
            ++row.loops;
            row.rotated += ls.kind == sched::LoopKind::Rotate;
            row.unrolled += ls.kind == sched::LoopKind::Unroll;
            row.avgII += ls.achievedII;
            row.avgMII += ls.bounds.mii;
        }
    }
    if (row.loops) {
        row.avgII /= double(row.loops);
        row.avgMII /= double(row.loops);
    }
    row.oracleOk = oracle;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);

    std::fprintf(stderr,
                 "table_pipeline: machine=%s scale=%.2f "
                 "(beyond the paper)\n",
                 opts.machine.c_str(), opts.scale);

    auto specs = eel::workload::spec95(opts.machine);
    std::vector<size_t> indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (opts.only.empty() || specs[i].name == opts.only)
            indices.push_back(i);

    eel::support::ThreadPool pool(opts.jobs);
    std::vector<uint64_t> cost(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        cost[k] = specs[indices[k]].dynTarget;
    std::vector<PipeRow> rows(indices.size());
    pool.parallelFor(indices.size(), cost, [&](size_t k) {
        rows[k] = runOne(opts, indices[k], &pool);
        eel::obs::logf(eel::obs::LogLevel::Info, "  %-14s done",
                       rows[k].name.c_str());
    });

    std::printf("\nModulo scheduling vs superblock/local tiers "
                "(%s)\n", opts.machine.c_str());
    std::printf("%-14s %7s %7s %7s %9s %9s %10s %7s %5s %4s %9s "
                "%6s\n",
                "Benchmark", "Inst", "Superbl", "Pipe", "%Hid(sb)",
                "%Hid(pip)", "Growth", "Loops", "Rot", "Unr",
                "II/MII", "Oracle");
    int bad_oracle = 0;
    auto line = [&](const PipeRow &r) {
        char iimii[32] = "-";
        if (r.loops)
            std::snprintf(iimii, sizeof iimii, "%.1f/%.1f",
                          r.avgII, r.avgMII);
        std::printf("%-14s %7.2f %7.2f %7.2f %8.1f%% %8.1f%% "
                    "%9.2f%% %7zu %5zu %4zu %9s %6s\n",
                    r.name.c_str(), r.instRatio, r.sbRatio,
                    r.pipeRatio, r.pctHiddenSb, r.pctHiddenPipe,
                    r.growthPct, r.loops, r.rotated, r.unrolled,
                    iimii, r.oracleOk ? "ok" : "FAIL");
        if (!r.oracleOk)
            ++bad_oracle;
    };
    auto averages = [&](bool fp, const char *label) {
        double hl = 0, hs = 0, hp = 0, g = 0;
        int n = 0;
        for (const PipeRow &r : rows) {
            if (r.fp != fp)
                continue;
            hl += r.pctHiddenLocal;
            hs += r.pctHiddenSb;
            hp += r.pctHiddenPipe;
            g += r.growthPct;
            ++n;
        }
        if (!n)
            return;
        std::printf("%-14s %7s %7s %7s %8.1f%% %8.1f%% %9.2f%%   "
                    "(local tier: %.1f%%)\n",
                    label, "", "", "", hs / n, hp / n, g / n,
                    hl / n);
    };
    for (const PipeRow &r : rows)
        if (!r.fp)
            line(r);
    averages(false, "CINT95 Average");
    for (const PipeRow &r : rows)
        if (r.fp)
            line(r);
    averages(true, "CFP95 Average");

    if (!opts.jsonPath.empty()) {
        std::string j;
        char buf[512];
        auto emit = [&](const char *fmt, auto... a) {
            std::snprintf(buf, sizeof buf, fmt, a...);
            j += buf;
        };
        emit("{\n  \"table\": \"pipeline\",\n"
             "  \"machine\": \"%s\",\n  \"scale\": %.4f,\n"
             "  \"rows\": [\n",
             opts.machine.c_str(), opts.scale);
        for (size_t k = 0; k < rows.size(); ++k) {
            const PipeRow &r = rows[k];
            emit("    {\"name\": \"%s\", \"fp\": %s, "
                 "\"inst_ratio\": %.6f, \"local_ratio\": %.6f, "
                 "\"sb_ratio\": %.6f, \"pipe_ratio\": %.6f, "
                 "\"pct_hidden_local\": %.4f, "
                 "\"pct_hidden_sb\": %.4f, "
                 "\"pct_hidden_pipe\": %.4f, "
                 "\"growth_pct\": %.4f, \"loops\": %zu, "
                 "\"rotated\": %zu, \"unrolled\": %zu, "
                 "\"avg_ii\": %.4f, \"avg_mii\": %.4f, "
                 "\"oracle_ok\": %s}%s\n",
                 r.name.c_str(), r.fp ? "true" : "false",
                 r.instRatio, r.localRatio, r.sbRatio, r.pipeRatio,
                 r.pctHiddenLocal, r.pctHiddenSb, r.pctHiddenPipe,
                 r.growthPct, r.loops, r.rotated, r.unrolled,
                 r.avgII, r.avgMII, r.oracleOk ? "true" : "false",
                 k + 1 < rows.size() ? "," : "");
        }
        double cfp_sb = 0, cfp_pipe = 0;
        int nfp = 0;
        for (const PipeRow &r : rows)
            if (r.fp) {
                cfp_sb += r.pctHiddenSb;
                cfp_pipe += r.pctHiddenPipe;
                ++nfp;
            }
        emit("  ],\n  \"cfp_hidden_sb_pct\": %.4f,\n"
             "  \"cfp_hidden_pipe_pct\": %.4f\n}\n",
             nfp ? cfp_sb / nfp : 0.0, nfp ? cfp_pipe / nfp : 0.0);
        std::FILE *f = std::fopen(opts.jsonPath.c_str(), "w");
        if (!f)
            eel::fatal("cannot open %s for writing",
                       opts.jsonPath.c_str());
        std::fwrite(j.data(), 1, j.size(), f);
        std::fclose(f);
    }

    if (bad_oracle) {
        std::fprintf(stderr, "table_pipeline: %d oracle failure(s)\n",
                     bad_oracle);
        return 1;
    }
    return 0;
}
