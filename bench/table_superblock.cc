/**
 * @file
 * Beyond the paper: profile-guided superblock scheduling. The
 * paper's local scheduler hides instrumentation overhead only within
 * one basic block, which caps what it can do for the short-block
 * CINT codes (Table 1 averages ~4-6 instructions per block). This
 * bench measures how much more overhead a cross-block scheduler
 * hides when traces are formed from a Ball-Larus edge profile and
 * scheduled as superblocks (tail-duplicated, side-entrance-free).
 *
 * Protocol, per benchmark:
 *   1. profile run: edge-instrumented build, counts reconstructed
 *      by flow conservation (qpt::makeEdgePlan / readEdgeCounts);
 *   2. measurement builds from the same block-counter plan:
 *      Inst (unscheduled), Local (the paper's scheduler), and
 *      Superblock (this subsystem, fed the edge profile);
 *   3. %hidden for Local and Superblock against the same Inst/base
 *      cycles, code growth of Superblock relative to Local, and a
 *      built-in oracle: the Inst and Superblock builds must exit
 *      with identical architectural state, memory (counter values
 *      included), and program output.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/eel/editor.hh"
#include "src/obs/log.hh"
#include "src/obs/trace.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

struct SbRow
{
    std::string name;
    bool fp = false;
    double avgBlockSize = 0;
    double instRatio = 0;
    double localRatio = 0;
    double sbRatio = 0;
    double pctHiddenLocal = 0;
    double pctHiddenSb = 0;
    double growthPct = 0;  ///< Superblock text vs Local text
    size_t traces = 0;
    double avgTraceLen = 0;
    bool oracleOk = false;
    /** Stall attribution of the superblock build's timing run. */
    obs::StallBreakdown sbStalls;
    uint64_t sbStallCycles = 0;
    /** Slot-fill audit over the superblock rewrite. */
    obs::SlotFillCounts audit;
};

SbRow
runOne(const bench::TableOptions &opts, size_t index,
       support::ThreadPool *pool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];

    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(original);

    // 1. Edge-profile run.
    exe::Executable eprof_x = original;
    qpt::EdgeProfilePlan eplan = qpt::makeEdgePlan(eprof_x, routines);
    exe::Executable eprof = edit::rewrite(
        eprof_x, routines, eplan.plan, edit::EditOptions{});
    sim::Emulator prof_emu(eprof);
    sim::RunResult prof_res = prof_emu.run();
    if (!prof_res.exited)
        fatal("%s: profile run did not exit", spec.name.c_str());
    auto bcounts = qpt::exportEdgeCounts(
        qpt::readEdgeCounts(prof_emu, eplan, routines), eplan,
        routines);

    // 2. Measurement builds (block-counter instrumentation).
    exe::Executable work = original;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);

    edit::EditOptions local_opts;
    local_opts.schedule = true;
    local_opts.model = &m;
    local_opts.sched = opts.sched;
    local_opts.pool = pool;
    edit::EditOptions sb_opts = local_opts;
    sb_opts.scope = edit::SchedScope::Superblock;
    sb_opts.edgeCounts = &bcounts;
    // Slot-fill audit over the superblock rewrite only, so the
    // columns attribute unfilled slots of the cross-block scheduler.
    obs::SlotFillAudit audit;
    sb_opts.sched.audit = &audit;

    exe::Executable inst = edit::rewrite(
        work, routines, plan.plan, edit::EditOptions{});
    exe::Executable local = edit::rewrite(
        work, routines, plan.plan, local_opts);
    exe::Executable sb = edit::rewrite(
        work, routines, plan.plan, sb_opts);

    sim::TimingSim::Config tcfg;
    tcfg.collectStalls = true;
    auto r_base = sim::timedRun(work, m);
    auto r_inst = sim::timedRun(inst, m);
    auto r_local = sim::timedRun(local, m);
    auto r_sb = sim::timedRun(sb, m, tcfg);
    if (r_sb.stallBreakdown.total() != r_sb.stallCycles)
        fatal("%s: stall histogram sums to %llu but the run counted "
              "%llu stall cycles", spec.name.c_str(),
              (unsigned long long)r_sb.stallBreakdown.total(),
              (unsigned long long)r_sb.stallCycles);
    if (r_base.result.output != r_sb.result.output ||
        r_base.result.exitCode != r_sb.result.exitCode)
        fatal("%s: superblock output differs from base",
              spec.name.c_str());

    // 3. Oracle: identical architectural exit state, memory
    // (counters included), output, and exit code.
    sim::Emulator e_inst(inst), e_sb(sb);
    sim::RunResult o_inst = e_inst.run();
    sim::RunResult o_sb = e_sb.run();
    bool oracle = o_inst.exited && o_sb.exited &&
                  o_inst.exitCode == o_sb.exitCode &&
                  o_inst.output == o_sb.output &&
                  e_inst.snapshot().equalTo(e_sb.snapshot());

    SbRow row;
    row.name = spec.name;
    row.fp = spec.fp;
    double denom = double(int64_t(r_inst.cycles) -
                          int64_t(r_base.cycles));
    row.instRatio = double(r_inst.cycles) / double(r_base.cycles);
    row.localRatio = double(r_local.cycles) / double(r_base.cycles);
    row.sbRatio = double(r_sb.cycles) / double(r_base.cycles);
    row.pctHiddenLocal = 100.0 *
                         double(int64_t(r_inst.cycles) -
                                int64_t(r_local.cycles)) / denom;
    row.pctHiddenSb = 100.0 *
                      double(int64_t(r_inst.cycles) -
                             int64_t(r_sb.cycles)) / denom;
    row.growthPct = 100.0 *
                    (double(sb.text.size()) -
                     double(local.text.size())) /
                    double(local.text.size());
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        auto traces = sched::formTraces(routines[ri], bcounts[ri],
                                        sb_opts.superblock);
        for (const sched::Trace &t : traces) {
            ++row.traces;
            row.avgTraceLen += double(t.blocks.size());
        }
    }
    if (row.traces)
        row.avgTraceLen /= double(row.traces);
    row.oracleOk = oracle;
    row.sbStalls = r_sb.stallBreakdown;
    row.sbStallCycles = r_sb.stallCycles;
    row.audit = audit.snapshot();

    // Average dynamic block size of the base build, for context.
    uint64_t blocks = 0;
    for (const auto &r : routines)
        blocks += r.blocks.size();
    row.avgBlockSize =
        blocks ? double(work.text.size()) / double(blocks) : 0.0;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);

    std::fprintf(stderr,
                 "table_superblock: machine=%s scale=%.2f "
                 "(beyond the paper)\n",
                 opts.machine.c_str(), opts.scale);

    auto specs = eel::workload::spec95(opts.machine);
    std::vector<size_t> indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (opts.only.empty() || specs[i].name == opts.only)
            indices.push_back(i);

    eel::support::ThreadPool pool(opts.jobs);
    std::vector<uint64_t> cost(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        cost[k] = specs[indices[k]].dynTarget;
    std::vector<SbRow> rows(indices.size());
    pool.parallelFor(indices.size(), cost, [&](size_t k) {
        rows[k] = runOne(opts, indices[k], &pool);
        eel::obs::logf(eel::obs::LogLevel::Info, "  %-14s done",
                       rows[k].name.c_str());
    });

    std::printf("\nSuperblock vs local scheduling of profiling "
                "instrumentation (%s)\n",
                opts.machine.c_str());
    std::printf("%-14s %8s %8s %8s %10s %10s %8s %7s %7s %7s\n",
                "Benchmark", "Inst", "Local", "Superbl",
                "%Hid(loc)", "%Hid(sb)", "Growth", "Traces",
                "AvgLen", "Oracle");
    int bad_oracle = 0;
    auto line = [&](const SbRow &r) {
        std::printf("%-14s %8.2f %8.2f %8.2f %9.1f%% %9.1f%% "
                    "%7.1f%% %7zu %7.1f %7s\n",
                    r.name.c_str(), r.instRatio, r.localRatio,
                    r.sbRatio, r.pctHiddenLocal, r.pctHiddenSb,
                    r.growthPct, r.traces, r.avgTraceLen,
                    r.oracleOk ? "ok" : "FAIL");
        if (!r.oracleOk)
            ++bad_oracle;
    };
    auto averages = [&](bool fp, const char *label) {
        double hl = 0, hs = 0, g = 0;
        int n = 0;
        for (const SbRow &r : rows) {
            if (r.fp != fp)
                continue;
            hl += r.pctHiddenLocal;
            hs += r.pctHiddenSb;
            g += r.growthPct;
            ++n;
        }
        if (!n)
            return;
        std::printf("%-14s %8s %8s %8s %9.1f%% %9.1f%% %7.1f%%\n",
                    label, "", "", "", hl / n, hs / n, g / n);
    };
    for (const SbRow &r : rows)
        if (!r.fp)
            line(r);
    averages(false, "CINT95 Average");
    for (const SbRow &r : rows)
        if (r.fp)
            line(r);
    averages(true, "CFP95 Average");

    auto writeFile = [](const std::string &path,
                        const std::string &body) {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            eel::fatal("cannot open %s for writing", path.c_str());
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
    };
    if (!opts.jsonPath.empty()) {
        std::string j;
        char buf[256];
        auto emit = [&](const char *fmt, auto... a) {
            std::snprintf(buf, sizeof buf, fmt, a...);
            j += buf;
        };
        emit("{\n  \"table\": \"superblock\",\n"
             "  \"machine\": \"%s\",\n  \"scale\": %.4f,\n"
             "  \"rows\": [\n",
             opts.machine.c_str(), opts.scale);
        for (size_t k = 0; k < rows.size(); ++k) {
            const SbRow &r = rows[k];
            emit("    {\"name\": \"%s\", \"fp\": %s, "
                 "\"inst_ratio\": %.6f, \"local_ratio\": %.6f, "
                 "\"sb_ratio\": %.6f, \"pct_hidden_local\": %.4f, "
                 "\"pct_hidden_sb\": %.4f, \"growth_pct\": %.4f, "
                 "\"traces\": %zu, \"avg_trace_len\": %.4f, "
                 "\"oracle_ok\": %s,\n",
                 r.name.c_str(), r.fp ? "true" : "false",
                 r.instRatio, r.localRatio, r.sbRatio,
                 r.pctHiddenLocal, r.pctHiddenSb, r.growthPct,
                 r.traces, r.avgTraceLen,
                 r.oracleOk ? "true" : "false");
            j += "     \"sb_stalls\": {";
            for (unsigned i = 0; i < eel::obs::numStallReasons; ++i)
                emit("%s\"%s\": %llu", i ? ", " : "",
                     eel::obs::stallReasonName(
                         eel::obs::StallReason(i)),
                     (unsigned long long)r.sbStalls.cycles[i]);
            emit("}, \"sb_stall_cycles\": %llu,\n",
                 (unsigned long long)r.sbStallCycles);
            j += "     \"slot_audit\": {";
            for (unsigned i = 0; i < eel::obs::numSlotFillReasons;
                 ++i)
                emit("%s\"%s\": %llu", i ? ", " : "",
                     eel::obs::slotFillReasonName(
                         eel::obs::SlotFillReason(i)),
                     (unsigned long long)r.audit.slots[i]);
            j += "}}";
            j += (k + 1 < rows.size()) ? ",\n" : "\n";
        }
        j += "  ]\n}\n";
        writeFile(opts.jsonPath, j);
    }
    if (!opts.breakdownPath.empty()) {
        std::string b = "Stall breakdown: superblock builds (" +
                        opts.machine + ")\n";
        char buf[160];
        for (const SbRow &r : rows) {
            std::snprintf(buf, sizeof buf, "%s: %llu stall cycles\n",
                          r.name.c_str(),
                          (unsigned long long)r.sbStallCycles);
            b += buf;
            for (unsigned i = 0; i < eel::obs::numStallReasons;
                 ++i) {
                std::snprintf(
                    buf, sizeof buf, "  %-16s %12llu\n",
                    eel::obs::stallReasonName(
                        eel::obs::StallReason(i)),
                    (unsigned long long)r.sbStalls.cycles[i]);
                b += buf;
            }
        }
        writeFile(opts.breakdownPath, b);
    }
    if (!opts.tracePath.empty() &&
        !eel::obs::writeTrace(opts.tracePath))
        eel::fatal("cannot write trace to %s",
                   opts.tracePath.c_str());

    if (bad_oracle) {
        std::fprintf(stderr,
                     "table_superblock: %d oracle failure(s)\n",
                     bad_oracle);
        return 1;
    }
    return 0;
}
