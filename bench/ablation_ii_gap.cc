/**
 * @file
 * Ablation: how close the iterative modulo scheduler gets to the
 * exhaustive optimum. Over a corpus of small-bodied generated
 * programs with loop-carried register and memory recurrences (the
 * same family the optimal_ii_crosscheck ctest samples), every
 * accepted pipeline loop small enough for the branch-and-bound
 * search is scheduled both ways under the same redirect-inclusive
 * steady-state metric, and the per-loop gap is tabulated: achieved
 * II vs optimal II vs the certified MII lower bound, plus which
 * kernel shape each search picked (plain / rotated / unrolled).
 *
 * The summary lines are the number EXPERIMENTS.md quotes: the
 * fraction of loops the heuristic schedules optimally and the
 * fraction within the +1 cycle the ctest oracle pins.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/eel/batch.hh"
#include "src/eel/liveness.hh"
#include "src/isa/registers.hh"
#include "src/sched/pipeline.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

constexpr uint64_t kSeeds = 16;

const char *
kindName(sched::LoopKind k)
{
    switch (k) {
    case sched::LoopKind::Rotate: return "rotate";
    case sched::LoopKind::Unroll: return "unroll";
    default: return "plain";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);

    std::fprintf(stderr,
                 "ablation_ii_gap: machine=%s (%llu corpus seeds)\n",
                 opts.machine.c_str(),
                 static_cast<unsigned long long>(kSeeds));

    sched::SchedOptions sopts = opts.sched;
    sched::SuperblockOptions sbopts;
    sched::PipelineOptions popts;

    std::printf("\nHeuristic vs exhaustive-optimal initiation "
                "interval (%s)\n", opts.machine.c_str());
    std::printf("%-6s %-9s %5s %6s %6s %8s %8s %6s %-7s %9s\n",
                "Seed", "Loop", "Insts", "resMII", "MII", "HeurII",
                "OptII", "Gap", "Kind", "Orders");

    size_t loops = 0, at_optimal = 0, within_one = 0, capped = 0;
    double gap_sum = 0, gap_max = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        workload::BenchmarkSpec spec;
        spec.name = "gap" + std::to_string(seed);
        spec.avgBlockSize = 6.0 + 0.15 * static_cast<double>(seed);
        spec.loadFrac = 0.2;
        spec.storeFrac = 0.08;
        spec.serialProb = 0.5;
        spec.recurrenceFrac = seed % 2 ? 0.15 : 0.0;
        spec.memRecurrences = seed % 3 == 0 ? 1 : 0;
        spec.dynTarget = 30000;
        spec.kernels = 2;
        spec.seed = seed;
        workload::GenOptions gopts;
        gopts.machine = &m;
        exe::Executable orig = workload::generate(spec, gopts);

        // One analysis pass for the plan and the edge profile; the
        // loops are scheduled below, outside the editor.
        edit::BatchOptions bopts;
        bopts.model = &m;
        edit::BatchRewriter rw(orig, bopts);
        edit::BatchResult batch =
            rw.rewriteAll({edit::VariantKind::SlowProfile,
                           edit::VariantKind::EdgeProfile});

        // The editor's never-observed scratch mask: registers no
        // original instruction reads are dead into every exit (the
        // counter snippet's scratch chain rotates only under it).
        std::bitset<32> neverObserved;
        neverObserved.set(isa::reg::g6);
        neverObserved.set(isa::reg::g7);
        for (const edit::Routine &r : batch.routines)
            for (const edit::Block &b : r.blocks)
                for (const sched::InstRef &ref : b.insts)
                    for (const auto &u : ref.inst.uses())
                        if (u.reg.tracked() &&
                            u.reg.cls == isa::RegClass::Int)
                            neverObserved.reset(u.reg.idx);

        for (size_t ri = 0; ri < batch.routines.size(); ++ri) {
            const edit::Routine &r = batch.routines[ri];
            auto ploops = sched::findPipelineLoops(
                r, batch.edgeCounts[ri], popts);
            if (ploops.empty())
                continue;
            edit::Liveness live(r);
            for (const sched::PipelineLoop &pl : ploops) {
                const edit::Block &blk = r.blocks[pl.block];
                sched::InstSeq code;
                if (const sched::InstSeq *snip =
                        batch.profilePlan.plan.find(ri, pl.block)) {
                    code = *snip;
                    for (sched::InstRef &ref : code)
                        ref.isInstrumentation = true;
                }
                code.insert(code.end(), blk.insts.begin(),
                            blk.insts.end());
                if (code.size() > popts.oracleMaxInsts + 2)
                    continue;
                std::bitset<32> exitLive =
                    live.liveInSet(
                        static_cast<uint32_t>(blk.fallSucc)) &
                    ~neverObserved;
                sched::OptimalII opt = sched::optimalLoopII(
                    code, exitLive, m, sopts, sbopts, popts);
                if (!opt.applicable)
                    continue;
                if (opt.capped) {
                    ++capped;
                    continue;
                }
                sched::LoopSchedule ls = sched::scheduleLoop(
                    code, exitLive, 1.0 - pl.backedgeProb,
                    r.blocks[blk.fallSucc].startAddr, m, sopts,
                    sbopts, popts);
                double gap = ls.bestKernelII - opt.ii;
                char loc[32];
                std::snprintf(loc, sizeof loc, "r%zu/b%u", ri,
                              pl.block);
                std::printf("%-6llu %-9s %5zu %6.2f %6.2f %8.3f "
                            "%8.3f %6.3f %-7s %9llu\n",
                            static_cast<unsigned long long>(seed),
                            loc, code.size(), ls.bounds.resMII,
                            ls.bounds.mii, ls.bestKernelII, opt.ii,
                            gap, kindName(ls.kind),
                            static_cast<unsigned long long>(
                                opt.ordersTried));
                ++loops;
                gap_sum += gap;
                gap_max = std::max(gap_max, gap);
                if (gap <= 1e-6)
                    ++at_optimal;
                if (gap <= 1.0 + 1e-6)
                    ++within_one;
            }
        }
    }

    if (!loops)
        fatal("corpus produced no searchable loops");
    std::printf("\n%zu loops (+%zu budget-capped, skipped): "
                "%.0f%% at optimal, %.0f%% within +1 cycle, "
                "mean gap %.3f, max gap %.3f\n",
                loops, capped,
                100.0 * double(at_optimal) / double(loops),
                100.0 * double(within_one) / double(loops),
                gap_sum / double(loops), gap_max);
    // The same property optimal_ii_crosscheck pins; a regression
    // here should fail the ablation too, not just the ctest.
    if (within_one != loops) {
        std::fprintf(stderr, "ablation_ii_gap: %zu loop(s) beyond "
                             "optimal+1\n", loops - within_one);
        return 1;
    }
    return 0;
}
