#include "bench/common.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::bench {

TableOptions
parseArgs(int argc, char **argv)
{
    TableOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--machine")
            opts.machine = value();
        else if (a == "--scale")
            opts.scale = std::stod(value());
        else if (a == "--resched-first")
            opts.rescheduleFirst = true;
        else if (a == "--sched-machine")
            opts.schedMachine = value();
        else if (a == "--only")
            opts.only = value();
        else if (a == "--help") {
            std::printf("options: --machine <name> --scale <x> "
                        "--resched-first --only <benchmark>\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s'", a.c_str());
        }
    }
    return opts;
}

namespace {

/** Measured dynamic average basic block size. */
double
measureAvgBlock(const exe::Executable &x,
                const std::vector<edit::Routine> &routines)
{
    struct Sink : sim::TraceSink
    {
        std::set<uint32_t> starts;
        uint64_t blocks = 0, insts = 0;
        void
        retire(uint32_t pc, const isa::Instruction &) override
        {
            ++insts;
            blocks += starts.count(pc);
        }
    } sink;
    for (const auto &r : routines)
        for (const auto &blk : r.blocks)
            sink.starts.insert(blk.startAddr);
    sim::Emulator emu(x);
    emu.run(&sink);
    return sink.blocks ? double(sink.insts) / double(sink.blocks)
                       : 0.0;
}

} // namespace

Row
runBenchmark(const TableOptions &opts, size_t index)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];

    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);

    const machine::MachineModel &sched_model =
        machine::MachineModel::builtin(
            opts.schedMachine.empty() ? opts.machine
                                      : opts.schedMachine);
    edit::EditOptions sched_opts;
    sched_opts.schedule = true;
    sched_opts.model = &sched_model;
    sched_opts.sched = opts.sched;

    // Table 2 protocol: reschedule first, measure against that.
    exe::Executable base = original;
    double base_ratio = 1.0;
    if (opts.rescheduleFirst) {
        auto routines0 = edit::buildRoutines(original);
        base = edit::rewrite(original, routines0,
                             edit::InstrumentationPlan{}, sched_opts);
        auto r_orig = sim::timedRun(original, m);
        auto r_base = sim::timedRun(base, m);
        base_ratio = double(r_base.cycles) / double(r_orig.cycles);
    }

    auto routines = edit::buildRoutines(base);
    exe::Executable work = base;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);

    exe::Executable instrumented =
        edit::rewrite(work, routines, plan.plan, edit::EditOptions{});
    exe::Executable scheduled =
        edit::rewrite(work, routines, plan.plan, sched_opts);

    auto r_base = sim::timedRun(base, m);
    auto r_inst = sim::timedRun(instrumented, m);
    auto r_sched = sim::timedRun(scheduled, m);
    if (r_base.result.output != r_inst.result.output ||
        r_base.result.output != r_sched.result.output)
        fatal("%s: instrumented output differs from original",
              spec.name.c_str());

    Row row;
    row.name = spec.name;
    row.fp = spec.fp;
    row.avgBlockSize = measureAvgBlock(base, routines);
    row.uninstSec = r_base.seconds;
    row.uninstRatioToOriginal = base_ratio;
    row.instSec = r_inst.seconds;
    row.instRatio = double(r_inst.cycles) / double(r_base.cycles);
    row.schedSec = r_sched.seconds;
    row.schedRatio = double(r_sched.cycles) / double(r_base.cycles);
    row.pctHidden = 100.0 *
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_sched.cycles)) /
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_base.cycles));
    return row;
}

std::vector<Row>
runTable(const TableOptions &opts)
{
    std::vector<Row> rows;
    auto specs = workload::spec95(opts.machine);
    for (size_t i = 0; i < specs.size(); ++i) {
        if (!opts.only.empty() && specs[i].name != opts.only)
            continue;
        rows.push_back(runBenchmark(opts, i));
        std::fprintf(stderr, "  %-14s done\n",
                     rows.back().name.c_str());
    }
    return rows;
}

void
printTable(const std::string &title, const std::vector<Row> &rows)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-14s %8s %10s %10s %18s %18s %9s\n", "Benchmark",
                "Avg.BB", "Uninst(s)", "(ratio)", "Inst(s) (ratio)",
                "Sched(s) (ratio)", "%Hidden");

    auto line = [&](const Row &r) {
        std::printf("%-14s %8.1f %10.4f %10.2f %10.4f (%4.2f) "
                    "%10.4f (%4.2f) %8.1f%%\n",
                    r.name.c_str(), r.avgBlockSize, r.uninstSec,
                    r.uninstRatioToOriginal, r.instSec, r.instRatio,
                    r.schedSec, r.schedRatio, r.pctHidden);
    };
    auto averages = [&](bool fp, const char *label) {
        double ir = 0, sr = 0, hid = 0;
        int n = 0;
        for (const Row &r : rows) {
            if (r.fp != fp)
                continue;
            ir += r.instRatio;
            sr += r.schedRatio;
            hid += r.pctHidden;
            ++n;
        }
        if (!n)
            return;
        std::printf("%-14s %8s %10s %10s %10s (%4.2f) %10s (%4.2f) "
                    "%8.1f%%\n",
                    label, "", "", "", "", ir / n, "", sr / n,
                    hid / n);
    };

    for (const Row &r : rows)
        if (!r.fp)
            line(r);
    averages(false, "CINT95 Average");
    for (const Row &r : rows)
        if (r.fp)
            line(r);
    averages(true, "CFP95 Average");
}

} // namespace eel::bench
