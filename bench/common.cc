#include "bench/common.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/eel/batch.hh"
#include "src/eel/editor.hh"
#include "src/obs/log.hh"
#include "src/obs/trace.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/shard.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::bench {

TableOptions
parseArgs(int argc, char **argv)
{
    TableOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--machine")
            opts.machine = value();
        else if (a == "--scale")
            opts.scale = std::stod(value());
        else if (a == "--resched-first")
            opts.rescheduleFirst = true;
        else if (a == "--sched-machine")
            opts.schedMachine = value();
        else if (a == "--only")
            opts.only = value();
        else if (a == "--jobs")
            opts.jobs = static_cast<unsigned>(std::stoul(value()));
        else if (a == "--shard-interval")
            opts.shardInterval = std::stoull(value());
        else if (a == "--result-cache") {
            opts.resultCacheDir = value();
            // The cache serves the sharded path; give it shards to
            // key if the caller didn't pick an interval.
            if (!opts.shardInterval)
                opts.shardInterval = 64 * 1024;
        } else if (a == "--batch")
            opts.batch = true;
        else if (a == "--trace") {
            opts.tracePath = value();
            obs::enableTracing();
            obs::setThreadName("main");
        } else if (a == "--json")
            opts.jsonPath = value();
        else if (a == "--breakdown")
            opts.breakdownPath = value();
        else if (a == "--help") {
            std::printf("options: --machine <name> --scale <x> "
                        "--resched-first --only <benchmark> "
                        "--jobs <n> --shard-interval <insts> "
                        "--result-cache <dir> "
                        "--batch --trace <out.json> "
                        "--json <out.json> --breakdown <out.txt>\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s'", a.c_str());
        }
    }
    return opts;
}

namespace {

/** Measured dynamic average basic block size. */
double
measureAvgBlock(const exe::Executable &x,
                const std::vector<edit::Routine> &routines)
{
    // A dense per-word leader bitmap beats the red-black tree this
    // used to probe: the lookup runs once per retired instruction,
    // and the concrete sink type lets the emulator's templated run
    // loop inline it.
    struct Sink final
    {
        std::vector<uint8_t> leader;  ///< indexed by text word
        uint64_t blocks = 0, insts = 0;
        void
        retire(uint32_t pc, const isa::Instruction &)
        {
            ++insts;
            blocks += leader[(pc - exe::textBase) / 4];
        }
    } sink;
    sink.leader.assign(x.text.size(), 0);
    for (const auto &r : routines)
        for (const auto &blk : r.blocks)
            sink.leader[(blk.startAddr - exe::textBase) / 4] = 1;
    sim::Emulator emu(x);
    emu.run(sink);
    return sink.blocks ? double(sink.insts) / double(sink.blocks)
                       : 0.0;
}

} // namespace

Row
runBenchmark(const TableOptions &opts, size_t index,
             support::ThreadPool *pool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];

    // Timing runs go through the sharded path when requested; the
    // merge is deterministic, so rows don't change (only wall time).
    // A nested parallelFor shares its shards with the whole pool, so
    // the benchmark × shard fan-out saturates the jobs end to end.
    // Stall attribution is always on here (the tables report it);
    // the histogram-sums-to-total invariant is checked per run.
    sim::TimingSim::Config tcfg;
    tcfg.collectStalls = true;
    auto timed = [&](const exe::Executable &xe) {
        sim::TimedRun r;
        if (!opts.shardInterval) {
            r = sim::timedRun(xe, m, tcfg);
        } else {
            sim::ShardOptions sopts;
            sopts.interval = opts.shardInterval;
            sopts.pool = pool;
            sopts.timing = tcfg;
            sopts.cache = opts.cache;
            r = sim::runSharded(xe, m, sopts).toTimedRun();
        }
        if (r.stallBreakdown.total() != r.stallCycles)
            fatal("%s: stall histogram sums to %llu but the run "
                  "counted %llu stall cycles",
                  spec.name.c_str(),
                  (unsigned long long)r.stallBreakdown.total(),
                  (unsigned long long)r.stallCycles);
        return r;
    };

    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);

    const machine::MachineModel &sched_model =
        machine::MachineModel::builtin(
            opts.schedMachine.empty() ? opts.machine
                                      : opts.schedMachine);
    edit::EditOptions sched_opts;
    sched_opts.schedule = true;
    sched_opts.model = &sched_model;
    sched_opts.sched = opts.sched;
    sched_opts.pool = pool;

    // Table 2 protocol: reschedule first, measure against that.
    exe::Executable base = original;
    double base_ratio = 1.0;
    if (opts.rescheduleFirst) {
        auto routines0 = edit::buildRoutines(original);
        base = edit::rewrite(original, routines0,
                             edit::InstrumentationPlan{}, sched_opts);
        auto r_orig = timed(original);
        auto r_base = timed(base);
        base_ratio = double(r_base.cycles) / double(r_orig.cycles);
    }

    // Slot-fill audit over the scheduled (instrumented) rewrite only
    // — the Table 2 baseline reschedule above deliberately runs
    // without it. Atomic sink: per-routine scheduling may fan out
    // across the pool.
    obs::SlotFillAudit audit;
    sched_opts.sched.audit = &audit;

    std::vector<edit::Routine> routines;
    exe::Executable instrumented, scheduled;
    if (opts.batch) {
        edit::BatchOptions bopts;
        bopts.model = &sched_model;
        bopts.sched = opts.sched;
        bopts.sched.audit = &audit;
        bopts.pool = pool;
        edit::BatchRewriter rw(base, bopts);
        edit::BatchResult batch = rw.rewriteAll(
            {edit::VariantKind::SlowProfile, edit::VariantKind::Sched});
        routines = std::move(batch.routines);
        instrumented = std::move(batch.variants[0].image);
        scheduled = std::move(batch.variants[1].image);
    } else {
        routines = edit::buildRoutines(base);
        exe::Executable work = base;
        qpt::ProfilePlan plan = qpt::makePlan(work, routines);
        instrumented = edit::rewrite(work, routines, plan.plan,
                                     edit::EditOptions{});
        scheduled = edit::rewrite(work, routines, plan.plan,
                                  sched_opts);
    }

    auto r_base = timed(base);
    auto r_inst = timed(instrumented);
    auto r_sched = timed(scheduled);
    if (r_base.result.output != r_inst.result.output ||
        r_base.result.output != r_sched.result.output)
        fatal("%s: instrumented output differs from original",
              spec.name.c_str());

    Row row;
    row.name = spec.name;
    row.fp = spec.fp;
    row.avgBlockSize = measureAvgBlock(base, routines);
    row.uninstSec = r_base.seconds;
    row.uninstRatioToOriginal = base_ratio;
    row.instSec = r_inst.seconds;
    row.instRatio = double(r_inst.cycles) / double(r_base.cycles);
    row.schedSec = r_sched.seconds;
    row.schedRatio = double(r_sched.cycles) / double(r_base.cycles);
    row.pctHidden = 100.0 *
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_sched.cycles)) /
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_base.cycles));
    row.baseStalls = r_base.stallBreakdown;
    row.baseStallCycles = r_base.stallCycles;
    row.instStalls = r_inst.stallBreakdown;
    row.instStallCycles = r_inst.stallCycles;
    row.schedStalls = r_sched.stallBreakdown;
    row.schedStallCycles = r_sched.stallCycles;
    row.audit = audit.snapshot();
    return row;
}

std::vector<Row>
runTable(const TableOptions &optsIn)
{
    TableOptions opts = optsIn;
    // --result-cache: one cache for the whole table, disk-backed so
    // the next regeneration starts warm.
    std::unique_ptr<sim::ResultCache> owned;
    if (!opts.cache && !opts.resultCacheDir.empty()) {
        owned = std::make_unique<sim::ResultCache>(
            sim::ResultCache::Config{opts.resultCacheDir, nullptr});
        opts.cache = owned.get();
    }

    auto specs = workload::spec95(opts.machine);
    std::vector<size_t> indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (opts.only.empty() || specs[i].name == opts.only)
            indices.push_back(i);

    support::ThreadPool pool(opts.jobs);

    // Benchmarks run concurrently, dispatched largest dynamic-size
    // first so the long poles (go, compress...) don't become the
    // end-of-batch stragglers; each result lands in its suite slot,
    // so the gathered table is byte-identical to a serial run
    // (progress lines on stderr arrive in completion order).
    std::vector<uint64_t> cost(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        cost[k] = specs[indices[k]].dynTarget;
    std::vector<Row> rows(indices.size());
    pool.parallelFor(indices.size(), cost, [&](size_t k) {
        rows[k] = runBenchmark(opts, indices[k], &pool);
        obs::logf(obs::LogLevel::Info, "  %-14s done",
                  rows[k].name.c_str());
    });
    return rows;
}

std::string
formatTable(const std::string &title, const std::vector<Row> &rows)
{
    std::string out;
    char buf[256];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };

    emit("\n%s\n", title.c_str());
    // The trailing block is the scheduled run's stall composition:
    // each StallReason's share of its total stall cycles.
    emit("%-14s %8s %10s %10s %18s %18s %9s  %5s %5s %5s %5s %5s\n",
         "Benchmark", "Avg.BB", "Uninst(s)", "(ratio)",
         "Inst(s) (ratio)", "Sched(s) (ratio)", "%Hidden", "raw%",
         "waw%", "res%", "icm%", "br%");

    auto pct = [](uint64_t part, uint64_t whole) {
        return whole ? 100.0 * double(part) / double(whole) : 0.0;
    };
    auto line = [&](const Row &r) {
        emit("%-14s %8.1f %10.4f %10.2f %10.4f (%4.2f) "
             "%10.4f (%4.2f) %8.1f%%",
             r.name.c_str(), r.avgBlockSize, r.uninstSec,
             r.uninstRatioToOriginal, r.instSec, r.instRatio,
             r.schedSec, r.schedRatio, r.pctHidden);
        for (unsigned i = 0; i < obs::numStallReasons; ++i)
            emit(" %5.1f",
                 pct(r.schedStalls.cycles[i], r.schedStallCycles));
        emit("\n");
    };
    auto averages = [&](bool fp, const char *label) {
        double ir = 0, sr = 0, hid = 0;
        int n = 0;
        for (const Row &r : rows) {
            if (r.fp != fp)
                continue;
            ir += r.instRatio;
            sr += r.schedRatio;
            hid += r.pctHidden;
            ++n;
        }
        if (!n)
            return;
        emit("%-14s %8s %10s %10s %10s (%4.2f) %10s (%4.2f) "
             "%8.1f%%\n",
             label, "", "", "", "", ir / n, "", sr / n, hid / n);
    };

    for (const Row &r : rows)
        if (!r.fp)
            line(r);
    averages(false, "CINT95 Average");
    for (const Row &r : rows)
        if (r.fp)
            line(r);
    averages(true, "CFP95 Average");
    return out;
}

void
printTable(const std::string &title, const std::vector<Row> &rows)
{
    std::fputs(formatTable(title, rows).c_str(), stdout);
}

std::string
formatBreakdown(const std::string &title, const std::vector<Row> &rows)
{
    std::string out;
    char buf[256];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };

    emit("%s — stall attribution and scheduler slot-fill audit\n",
         title.c_str());
    emit("(cycles per StallReason; each image's histogram sums "
         "exactly to its total stall cycles)\n\n");
    for (const Row &r : rows) {
        emit("%s\n", r.name.c_str());
        struct
        {
            const char *label;
            const obs::StallBreakdown *bd;
            uint64_t total;
        } images[3] = {
            {"uninst", &r.baseStalls, r.baseStallCycles},
            {"inst", &r.instStalls, r.instStallCycles},
            {"sched", &r.schedStalls, r.schedStallCycles},
        };
        for (const auto &img : images) {
            emit("  %-7s total %12llu |", img.label,
                 (unsigned long long)img.total);
            for (unsigned i = 0; i < obs::numStallReasons; ++i)
                emit(" %s %llu",
                     obs::stallReasonName(obs::StallReason(i)),
                     (unsigned long long)img.bd->cycles[i]);
            emit("\n");
        }
        emit("  slot-fill audit: empty slots %llu |",
             (unsigned long long)r.audit.total());
        for (unsigned i = 0; i < obs::numSlotFillReasons; ++i)
            emit(" %s %llu",
                 obs::slotFillReasonName(obs::SlotFillReason(i)),
                 (unsigned long long)r.audit.slots[i]);
        emit("\n\n");
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
appendBreakdownJson(std::string &out, const obs::StallBreakdown &bd,
                    uint64_t total)
{
    char buf[96];
    out += "{";
    for (unsigned i = 0; i < obs::numStallReasons; ++i) {
        std::snprintf(buf, sizeof(buf), "\"%s\": %llu, ",
                      obs::stallReasonName(obs::StallReason(i)),
                      (unsigned long long)bd.cycles[i]);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "\"total\": %llu}",
                  (unsigned long long)total);
    out += buf;
}

} // namespace

std::string
tableJson(const std::string &title, const TableOptions &opts,
          const std::vector<Row> &rows)
{
    std::string out;
    char buf[256];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };

    emit("{\n  \"title\": \"%s\",\n", jsonEscape(title).c_str());
    emit("  \"machine\": \"%s\",\n", opts.machine.c_str());
    emit("  \"scale\": %g,\n", opts.scale);
    out += "  \"rows\": [\n";
    for (size_t k = 0; k < rows.size(); ++k) {
        const Row &r = rows[k];
        emit("    {\"name\": \"%s\", \"fp\": %s, "
             "\"avg_block\": %.4f, \"uninst_sec\": %.6f, "
             "\"uninst_ratio\": %.4f, \"inst_sec\": %.6f, "
             "\"inst_ratio\": %.4f, \"sched_sec\": %.6f, "
             "\"sched_ratio\": %.4f, \"pct_hidden\": %.4f,\n",
             jsonEscape(r.name).c_str(), r.fp ? "true" : "false",
             r.avgBlockSize, r.uninstSec, r.uninstRatioToOriginal,
             r.instSec, r.instRatio, r.schedSec, r.schedRatio,
             r.pctHidden);
        out += "     \"stalls\": {\"uninst\": ";
        appendBreakdownJson(out, r.baseStalls, r.baseStallCycles);
        out += ", \"inst\": ";
        appendBreakdownJson(out, r.instStalls, r.instStallCycles);
        out += ", \"sched\": ";
        appendBreakdownJson(out, r.schedStalls, r.schedStallCycles);
        out += "},\n     \"slot_audit\": {";
        for (unsigned i = 0; i < obs::numSlotFillReasons; ++i) {
            emit("\"%s\": %llu, ",
                 obs::slotFillReasonName(obs::SlotFillReason(i)),
                 (unsigned long long)r.audit.slots[i]);
        }
        emit("\"total\": %llu}}%s\n",
             (unsigned long long)r.audit.total(),
             k + 1 < rows.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

void
emitOutputs(const TableOptions &opts, const std::string &title,
            const std::vector<Row> &rows)
{
    auto writeFile = [](const std::string &path,
                        const std::string &content) {
        FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        std::fwrite(content.data(), 1, content.size(), f);
        std::fclose(f);
    };
    if (!opts.jsonPath.empty())
        writeFile(opts.jsonPath, tableJson(title, opts, rows));
    if (!opts.breakdownPath.empty())
        writeFile(opts.breakdownPath, formatBreakdown(title, rows));
    if (!opts.tracePath.empty() && !obs::writeTrace(opts.tracePath))
        fatal("cannot write trace '%s'", opts.tracePath.c_str());
}

} // namespace eel::bench
