#include "bench/common.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/eel/batch.hh"
#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/shard.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::bench {

TableOptions
parseArgs(int argc, char **argv)
{
    TableOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--machine")
            opts.machine = value();
        else if (a == "--scale")
            opts.scale = std::stod(value());
        else if (a == "--resched-first")
            opts.rescheduleFirst = true;
        else if (a == "--sched-machine")
            opts.schedMachine = value();
        else if (a == "--only")
            opts.only = value();
        else if (a == "--jobs")
            opts.jobs = static_cast<unsigned>(std::stoul(value()));
        else if (a == "--shard-interval")
            opts.shardInterval = std::stoull(value());
        else if (a == "--batch")
            opts.batch = true;
        else if (a == "--help") {
            std::printf("options: --machine <name> --scale <x> "
                        "--resched-first --only <benchmark> "
                        "--jobs <n> --shard-interval <insts> "
                        "--batch\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s'", a.c_str());
        }
    }
    return opts;
}

namespace {

/** Measured dynamic average basic block size. */
double
measureAvgBlock(const exe::Executable &x,
                const std::vector<edit::Routine> &routines)
{
    // A dense per-word leader bitmap beats the red-black tree this
    // used to probe: the lookup runs once per retired instruction,
    // and the concrete sink type lets the emulator's templated run
    // loop inline it.
    struct Sink final
    {
        std::vector<uint8_t> leader;  ///< indexed by text word
        uint64_t blocks = 0, insts = 0;
        void
        retire(uint32_t pc, const isa::Instruction &)
        {
            ++insts;
            blocks += leader[(pc - exe::textBase) / 4];
        }
    } sink;
    sink.leader.assign(x.text.size(), 0);
    for (const auto &r : routines)
        for (const auto &blk : r.blocks)
            sink.leader[(blk.startAddr - exe::textBase) / 4] = 1;
    sim::Emulator emu(x);
    emu.run(sink);
    return sink.blocks ? double(sink.insts) / double(sink.blocks)
                       : 0.0;
}

} // namespace

Row
runBenchmark(const TableOptions &opts, size_t index,
             support::ThreadPool *pool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);
    workload::BenchmarkSpec spec =
        workload::spec95(opts.machine)[index];

    // Timing runs go through the sharded path when requested; the
    // merge is deterministic, so rows don't change (only wall time).
    // parallelFor runs inline from a pool worker, so sharding inside
    // a full-suite run degrades gracefully to the serial path.
    auto timed = [&](const exe::Executable &xe) {
        if (!opts.shardInterval)
            return sim::timedRun(xe, m);
        sim::ShardOptions sopts;
        sopts.interval = opts.shardInterval;
        sopts.pool = pool;
        return sim::runSharded(xe, m, sopts).toTimedRun();
    };

    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable original = workload::generate(spec, gopts);

    const machine::MachineModel &sched_model =
        machine::MachineModel::builtin(
            opts.schedMachine.empty() ? opts.machine
                                      : opts.schedMachine);
    edit::EditOptions sched_opts;
    sched_opts.schedule = true;
    sched_opts.model = &sched_model;
    sched_opts.sched = opts.sched;
    sched_opts.pool = pool;

    // Table 2 protocol: reschedule first, measure against that.
    exe::Executable base = original;
    double base_ratio = 1.0;
    if (opts.rescheduleFirst) {
        auto routines0 = edit::buildRoutines(original);
        base = edit::rewrite(original, routines0,
                             edit::InstrumentationPlan{}, sched_opts);
        auto r_orig = timed(original);
        auto r_base = timed(base);
        base_ratio = double(r_base.cycles) / double(r_orig.cycles);
    }

    std::vector<edit::Routine> routines;
    exe::Executable instrumented, scheduled;
    if (opts.batch) {
        edit::BatchOptions bopts;
        bopts.model = &sched_model;
        bopts.sched = opts.sched;
        bopts.pool = pool;
        edit::BatchRewriter rw(base, bopts);
        edit::BatchResult batch = rw.rewriteAll(
            {edit::VariantKind::SlowProfile, edit::VariantKind::Sched});
        routines = std::move(batch.routines);
        instrumented = std::move(batch.variants[0].image);
        scheduled = std::move(batch.variants[1].image);
    } else {
        routines = edit::buildRoutines(base);
        exe::Executable work = base;
        qpt::ProfilePlan plan = qpt::makePlan(work, routines);
        instrumented = edit::rewrite(work, routines, plan.plan,
                                     edit::EditOptions{});
        scheduled = edit::rewrite(work, routines, plan.plan,
                                  sched_opts);
    }

    auto r_base = timed(base);
    auto r_inst = timed(instrumented);
    auto r_sched = timed(scheduled);
    if (r_base.result.output != r_inst.result.output ||
        r_base.result.output != r_sched.result.output)
        fatal("%s: instrumented output differs from original",
              spec.name.c_str());

    Row row;
    row.name = spec.name;
    row.fp = spec.fp;
    row.avgBlockSize = measureAvgBlock(base, routines);
    row.uninstSec = r_base.seconds;
    row.uninstRatioToOriginal = base_ratio;
    row.instSec = r_inst.seconds;
    row.instRatio = double(r_inst.cycles) / double(r_base.cycles);
    row.schedSec = r_sched.seconds;
    row.schedRatio = double(r_sched.cycles) / double(r_base.cycles);
    row.pctHidden = 100.0 *
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_sched.cycles)) /
                    double(int64_t(r_inst.cycles) -
                           int64_t(r_base.cycles));
    return row;
}

std::vector<Row>
runTable(const TableOptions &opts)
{
    auto specs = workload::spec95(opts.machine);
    std::vector<size_t> indices;
    for (size_t i = 0; i < specs.size(); ++i)
        if (opts.only.empty() || specs[i].name == opts.only)
            indices.push_back(i);

    support::ThreadPool pool(opts.jobs);

    // Benchmarks run concurrently, dispatched largest dynamic-size
    // first so the long poles (go, compress...) don't become the
    // end-of-batch stragglers; each result lands in its suite slot,
    // so the gathered table is byte-identical to a serial run
    // (progress lines on stderr arrive in completion order).
    std::vector<uint64_t> cost(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        cost[k] = specs[indices[k]].dynTarget;
    std::vector<Row> rows(indices.size());
    pool.parallelFor(indices.size(), cost, [&](size_t k) {
        rows[k] = runBenchmark(opts, indices[k], &pool);
        std::fprintf(stderr, "  %-14s done\n", rows[k].name.c_str());
    });
    return rows;
}

std::string
formatTable(const std::string &title, const std::vector<Row> &rows)
{
    std::string out;
    char buf[256];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };

    emit("\n%s\n", title.c_str());
    emit("%-14s %8s %10s %10s %18s %18s %9s\n", "Benchmark",
         "Avg.BB", "Uninst(s)", "(ratio)", "Inst(s) (ratio)",
         "Sched(s) (ratio)", "%Hidden");

    auto line = [&](const Row &r) {
        emit("%-14s %8.1f %10.4f %10.2f %10.4f (%4.2f) "
             "%10.4f (%4.2f) %8.1f%%\n",
             r.name.c_str(), r.avgBlockSize, r.uninstSec,
             r.uninstRatioToOriginal, r.instSec, r.instRatio,
             r.schedSec, r.schedRatio, r.pctHidden);
    };
    auto averages = [&](bool fp, const char *label) {
        double ir = 0, sr = 0, hid = 0;
        int n = 0;
        for (const Row &r : rows) {
            if (r.fp != fp)
                continue;
            ir += r.instRatio;
            sr += r.schedRatio;
            hid += r.pctHidden;
            ++n;
        }
        if (!n)
            return;
        emit("%-14s %8s %10s %10s %10s (%4.2f) %10s (%4.2f) "
             "%8.1f%%\n",
             label, "", "", "", "", ir / n, "", sr / n, hid / n);
    };

    for (const Row &r : rows)
        if (!r.fp)
            line(r);
    averages(false, "CINT95 Average");
    for (const Row &r : rows)
        if (r.fp)
            line(r);
    averages(true, "CFP95 Average");
    return out;
}

void
printTable(const std::string &title, const std::vector<Row> &rows)
{
    std::fputs(formatTable(title, rows).c_str(), stdout);
}

} // namespace eel::bench
