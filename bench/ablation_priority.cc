/**
 * @file
 * §4 ablation: the scheduler's priority is (1) fewest stalls as
 * computed by pipeline_stalls, tie-broken by (2) distance from the
 * end of the block, then (3) original program order. This bench
 * knocks out each component and reports the % of instrumentation
 * overhead hidden, quantifying what each heuristic contributes.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions base = bench::parseArgs(argc, argv);

    struct Mode
    {
        const char *name;
        sched::SchedOptions::Priority priority;
    };
    const Mode modes[] = {
        {"full (paper)", sched::SchedOptions::Priority::Full},
        {"stalls-only", sched::SchedOptions::Priority::StallsOnly},
        {"distance-only",
         sched::SchedOptions::Priority::DistanceOnly},
        {"no-reorder",
         sched::SchedOptions::Priority::OriginalOrder},
    };

    std::printf("\nScheduler-priority ablation: %% of overhead "
                "hidden (%s)\n",
                base.machine.c_str());
    std::printf("%-14s", "Benchmark");
    for (const Mode &mode : modes)
        std::printf(" %14s", mode.name);
    std::printf("\n");

    auto specs = workload::spec95(base.machine);
    for (size_t i : {0u, 3u, 5u, 10u, 13u, 16u}) {
        if (!base.only.empty() && specs[i].name != base.only)
            continue;
        std::printf("%-14s", specs[i].name.c_str());
        for (const Mode &mode : modes) {
            bench::TableOptions opts = base;
            opts.sched.priority = mode.priority;
            bench::Row r = bench::runBenchmark(opts, i);
            std::printf(" %13.1f%%", r.pctHidden);
        }
        std::printf("\n");
    }
    std::printf("\n'no-reorder' inserts instrumentation unscheduled "
                "(0%% hidden by construction);\nthe gap between "
                "columns shows what each heuristic component "
                "contributes.\n");
    return 0;
}
