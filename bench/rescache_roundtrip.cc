/**
 * @file
 * Process-restart gate for the result cache's disk tier.
 *
 * The in-process test (tests/sim/test_resultcache.cc) proves a
 * *fresh ResultCache instance* reloads the tier; this harness proves
 * the stronger claim — a genuinely different process does. Phase one
 * populates a scratch cache directory with a sharded timing run,
 * then exec()s itself with --verify; the child constructs its cache
 * from nothing but the directory, demands the run comes back warm
 * from disk, and compares it field for field against an uncached
 * recompute in the same process. Any divergence, cold rerun, or
 * rejected file is a hard failure.
 *
 * Usage: rescache_roundtrip            (full populate + restart)
 *        rescache_roundtrip --dir D --verify   (child phase)
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/machine/model.hh"
#include "src/sim/resultcache.hh"
#include "src/sim/shard.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

using namespace eel;
namespace fs = std::filesystem;

namespace {

/** Same deterministic workload in both processes: spec95[0] on the
 *  ultrasparc at a scale small enough for a smoke-speed ctest entry
 *  but large enough to shard. */
exe::Executable
makeWorkload()
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    return workload::generate(specs[0], gopts);
}

std::vector<uint8_t>
leaderMap(const exe::Executable &x)
{
    std::vector<uint8_t> leader(x.text.size(), 0);
    for (const auto &r : edit::buildRoutines(x))
        for (const auto &blk : r.blocks)
            leader[(blk.startAddr - exe::textBase) / 4] = 1;
    return leader;
}

sim::ShardOptions
shardOpts(support::ThreadPool &pool,
          const std::vector<uint8_t> &leader,
          sim::ResultCache *cache)
{
    sim::ShardOptions o;
    o.interval = 2000;
    o.pool = &pool;
    o.blockLeader = &leader;
    o.timing.collectStalls = true;
    o.cache = cache;
    return o;
}

bool
runsEqual(const sim::ShardedRun &a, const sim::ShardedRun &b)
{
    return a.cycles == b.cycles &&
           a.result.instructions == b.result.instructions &&
           a.result.exitCode == b.result.exitCode &&
           a.result.output == b.result.output &&
           a.issueHistogram == b.issueHistogram &&
           a.stallBreakdown == b.stallBreakdown &&
           a.stallCycles == b.stallCycles &&
           a.leaderRetires == b.leaderRetires &&
           a.blocksRetired == b.blocksRetired &&
           a.finalState.equalTo(b.finalState, false);
}

int
verifyPhase(const std::string &dir)
{
    const machine::MachineModel &model =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload();
    std::vector<uint8_t> leader = leaderMap(x);
    support::ThreadPool pool(4);

    sim::ResultCache cache({dir, nullptr});
    sim::ResultCache::Stats loaded = cache.stats();
    if (loaded.diskEntriesLoaded == 0 || loaded.diskRejects != 0) {
        std::fprintf(stderr,
                     "FAIL: restart loaded %llu entries, rejected "
                     "%llu\n",
                     (unsigned long long)loaded.diskEntriesLoaded,
                     (unsigned long long)loaded.diskRejects);
        return 1;
    }

    sim::ShardedRun warm =
        sim::runSharded(x, model, shardOpts(pool, leader, &cache));
    if (!warm.stats.cachedRun || cache.stats().diskHits == 0) {
        std::fprintf(stderr,
                     "FAIL: run not served from the disk tier "
                     "(cachedRun=%d diskHits=%llu)\n",
                     int(warm.stats.cachedRun),
                     (unsigned long long)cache.stats().diskHits);
        return 1;
    }

    sim::ShardedRun fresh =
        sim::runSharded(x, model, shardOpts(pool, leader, nullptr));
    if (!runsEqual(warm, fresh)) {
        std::fprintf(stderr,
                     "FAIL: disk-warm run differs from recompute\n");
        return 1;
    }
    std::printf("rescache_roundtrip: verify ok (%llu entries, "
                "%llu cycles)\n",
                (unsigned long long)loaded.diskEntriesLoaded,
                (unsigned long long)warm.cycles);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    bool verify = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--dir") && i + 1 < argc)
            dir = argv[++i];
        else if (!std::strcmp(argv[i], "--verify"))
            verify = true;
        else
            fatal("unknown flag %s", argv[i]);
    }
    if (verify) {
        if (dir.empty())
            fatal("--verify needs --dir");
        return verifyPhase(dir);
    }

    fs::path scratch =
        fs::temp_directory_path() /
        ("eel_rescache_roundtrip." + std::to_string(::getpid()));
    fs::remove_all(scratch);
    dir = scratch.string();

    // Populate phase: one cold sharded run through a disk-backed
    // cache.
    {
        const machine::MachineModel &model =
            machine::MachineModel::builtin("ultrasparc");
        exe::Executable x = makeWorkload();
        std::vector<uint8_t> leader = leaderMap(x);
        support::ThreadPool pool(4);
        sim::ResultCache cache({dir, nullptr});
        sim::ShardedRun cold = sim::runSharded(
            x, model, shardOpts(pool, leader, &cache));
        if (!cold.result.exited || cache.stats().stores == 0) {
            std::fprintf(stderr,
                         "FAIL: populate phase stored nothing\n");
            fs::remove_all(scratch);
            return 1;
        }
    }

    // Restart: a brand-new process inherits only the directory.
    char self[4096];
    ssize_t n =
        ::readlink("/proc/self/exe", self, sizeof self - 1);
    if (n <= 0)
        fatal("readlink /proc/self/exe failed");
    self[n] = 0;

    pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed");
    if (pid == 0) {
        ::execl(self, self, "--dir", dir.c_str(), "--verify",
                (char *)nullptr);
        std::perror("execl");
        _exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    fs::remove_all(scratch);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr,
                     "FAIL: verify child exited with status %d\n",
                     status);
        return 1;
    }
    std::printf("rescache_roundtrip: populate + process restart + "
                "byte-equal warm replay ok\n");
    return 0;
}
