/**
 * @file
 * Ablation: what happens when EEL's scheduler plans with the wrong
 * microarchitecture model. The paper notes its scheduler was
 * "currently configured for the SPARC version 8 instruction set"
 * and anticipates better results from "a more accurate and
 * aggressive instrumentation scheduler" (§1, §4.2). Here every
 * benchmark runs on one machine while EEL schedules with each of
 * the three builtin models.
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions base = bench::parseArgs(argc, argv);

    const char *models[] = {"hypersparc", "supersparc", "ultrasparc"};

    std::printf("\nScheduler machine-model mismatch: %% hidden when "
                "running on the %s\n",
                base.machine.c_str());
    std::printf("%-14s", "Benchmark");
    for (const char *sm : models)
        std::printf(" %16s", sm);
    std::printf("\n");

    auto specs = workload::spec95(base.machine);
    for (size_t i : {0u, 3u, 5u, 9u, 12u, 16u}) {
        if (!base.only.empty() && specs[i].name != base.only)
            continue;
        std::printf("%-14s", specs[i].name.c_str());
        for (const char *sm : models) {
            bench::TableOptions opts = base;
            opts.schedMachine = sm;
            bench::Row r = bench::runBenchmark(opts, i);
            std::printf(" %15.1f%%", r.pctHidden);
        }
        std::printf("\n");
    }
    std::printf("\nScheduling with the matching model should win; "
                "the gap quantifies the paper's\nhope that 'a more "
                "accurate ... instrumentation scheduler' would "
                "improve results.\n");
    return 0;
}
