/**
 * @file
 * QPT2 carried two profilers: the paper instruments with "slow"
 * profiling (a counter in almost every block); the "fast" mode is
 * Ball-Larus edge profiling (citation [2]), which counts only the
 * edges off a spanning tree and reconstructs the rest. This bench
 * compares their overheads, with and without instruction scheduling
 * — showing that scheduling helps both, and that fast profiling's
 * remaining overhead is harder to hide (its counters sit on edges
 * with fewer neighbors to overlap with).
 */

#include <cstdio>

#include "bench/common.hh"
#include "src/eel/editor.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions opts = bench::parseArgs(argc, argv);
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);

    std::printf("\nSlow (block) vs fast (Ball-Larus edge) profiling "
                "on the %s\n",
                opts.machine.c_str());
    std::printf("%-14s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
                "Benchmark", "ctrs/blk", "ctrs/edg",
                "slow", "slow+s", "%hid",
                "fast", "fast+s", "%hid");

    auto specs = workload::spec95(opts.machine);
    for (size_t i : {0u, 3u, 4u, 5u, 9u, 12u, 16u}) {
        if (!opts.only.empty() && specs[i].name != opts.only)
            continue;
        workload::GenOptions gopts;
        gopts.scale = opts.scale;
        gopts.machine = &m;
        exe::Executable orig = workload::generate(specs[i], gopts);
        auto routines = edit::buildRoutines(orig);

        edit::EditOptions so;
        so.schedule = true;
        so.model = &m;
        so.sched = opts.sched;

        exe::Executable sw = orig;
        qpt::ProfilePlan slow = qpt::makePlan(sw, routines);
        exe::Executable slow_p =
            edit::rewrite(sw, routines, slow.plan, {});
        exe::Executable slow_s =
            edit::rewrite(sw, routines, slow.plan, so);

        exe::Executable fw = orig;
        qpt::EdgeProfilePlan fast = qpt::makeEdgePlan(fw, routines);
        exe::Executable fast_p =
            edit::rewrite(fw, routines, fast.plan, {});
        exe::Executable fast_s =
            edit::rewrite(fw, routines, fast.plan, so);

        auto r0 = sim::timedRun(orig, m);
        auto rsp = sim::timedRun(slow_p, m);
        auto rss = sim::timedRun(slow_s, m);
        auto rfp = sim::timedRun(fast_p, m);
        auto rfs = sim::timedRun(fast_s, m);

        auto ratio = [&](const sim::TimedRun &r) {
            return double(r.cycles) / double(r0.cycles);
        };
        auto hidden = [&](const sim::TimedRun &p,
                          const sim::TimedRun &s) {
            return 100.0 *
                   double(int64_t(p.cycles) - int64_t(s.cycles)) /
                   double(int64_t(p.cycles) - int64_t(r0.cycles));
        };
        std::printf("%-14s %8u %8u | %8.2f %8.2f %7.1f%% | %8.2f "
                    "%8.2f %7.1f%%\n",
                    specs[i].name.c_str(), slow.numCounters,
                    fast.numCounters, ratio(rsp), ratio(rss),
                    hidden(rsp, rss), ratio(rfp), ratio(rfs),
                    hidden(rfp, rfs));
    }
    std::printf("\nNote: the generator's large-block benchmarks are "
                "single-block self loops,\nwhose back edge can never "
                "ride a spanning tree (a self loop is invisible to\n"
                "flow conservation), so fast profiling must place a "
                "taken-edge trampoline on\nthe hottest edge. Real "
                "compiled loop nests have multi-block bodies where\n"
                "the hot back edge stays uncounted, which is where "
                "Ball-Larus wins big\n(visible in the small-block "
                "integer rows).\n");
    return 0;
}
