/**
 * @file
 * §4.1 ablation: "scheduling instrumentation does not reduce
 * instruction cache misses caused by instrumentation, since the
 * additional instructions increase the code size regardless of how
 * few stalls the program incurs." Lebeck & Wood's model predicts
 * that instrumentation growing the text by a factor E grows cache
 * misses superlinearly. This bench measures i-cache misses of
 * original vs. instrumented vs. scheduled executables across cache
 * sizes and compares the measured growth against E and E*sqrt(E).
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

int
main(int argc, char **argv)
{
    using namespace eel;
    bench::TableOptions opts = bench::parseArgs(argc, argv);
    const machine::MachineModel &m =
        machine::MachineModel::builtin(opts.machine);

    // A small-block integer benchmark: profiling roughly doubles its
    // text (paper: "2-3x").
    workload::BenchmarkSpec spec = workload::spec95(opts.machine)[4];
    // A realistic static footprint: many distinct kernels so the
    // instrumented text actually contends for the cache.
    spec.kernels = 48;
    workload::GenOptions gopts;
    gopts.scale = opts.scale;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(orig);
    exe::Executable work = orig;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);
    exe::Executable inst = edit::rewrite(work, routines, plan.plan,
                                         {});
    edit::EditOptions so;
    so.schedule = true;
    so.model = &m;
    exe::Executable sch = edit::rewrite(work, routines, plan.plan,
                                        so);

    double expansion = double(inst.text.size()) / orig.text.size();
    std::printf("\nInstruction-cache effect of instrumentation "
                "(%s, %s)\n",
                spec.name.c_str(), opts.machine.c_str());
    std::printf("text expansion E = %.2f (paper: profiling grows "
                "text 2-3x)\n\n",
                expansion);
    std::printf("%10s %12s %12s %12s %10s %8s %10s\n", "cache",
                "orig misses", "inst misses", "sched misses",
                "missX", "E", "E*sqrtE");

    for (uint32_t kb : {1, 2, 4, 8, 16}) {
        sim::TimingSim::Config cfg;
        cfg.useICache = true;
        cfg.icache.bytes = kb * 1024;
        cfg.icache.lineBytes = 32;
        cfg.icache.assoc = 1;

        auto r0 = sim::timedRun(orig, m, cfg);
        auto r1 = sim::timedRun(inst, m, cfg);
        auto r2 = sim::timedRun(sch, m, cfg);
        // Lebeck & Wood's model speaks of miss counts: expansion E
        // grows the misses superlinearly.
        double growth = r0.icacheMisses
                            ? double(r1.icacheMisses) /
                                  double(r0.icacheMisses)
                            : 0.0;
        std::printf("%8uKB %12llu %12llu %12llu %10.2f %8.2f "
                    "%10.2f\n",
                    kb, (unsigned long long)r0.icacheMisses,
                    (unsigned long long)r1.icacheMisses,
                    (unsigned long long)r2.icacheMisses, growth,
                    expansion, expansion * std::sqrt(expansion));
    }
    std::printf("\nScheduling does not reduce the miss growth "
                "(sched column tracks inst column):\nthe extra "
                "instructions occupy cache lines regardless of "
                "stalls (paper §4.1).\n");
    return 0;
}
