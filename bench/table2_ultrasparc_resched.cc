/**
 * @file
 * Reproduces Table 2: slow profiling on the UltraSPARC "with
 * original instructions first rescheduled by EEL". Rescheduling the
 * uninstrumented program first factors out EEL's scheduler quality:
 * the instrumented and scheduled versions are measured against the
 * rescheduled baseline, so % Hidden isolates pure instrumentation
 * hiding. The paper reports CINT ~13% (unchanged) and CFP rising to
 * ~27% with no significant outliers; the Uninst ratio column shows
 * how EEL's reschedule compares to the compiler's schedule
 * (0.87-1.14 in the paper).
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace eel::bench;
    TableOptions opts = parseArgs(argc, argv);
    opts.rescheduleFirst = true;

    std::fprintf(stderr,
                 "table2: machine=%s scale=%.2f resched-first "
                 "(paper: Table 2)\n",
                 opts.machine.c_str(), opts.scale);
    std::vector<Row> rows = runTable(opts);
    std::string title =
        "Table 2: Slow profiling on the " + opts.machine +
        " with original instructions first rescheduled "
        "by EEL (paper Table 2)";
    printTable(title, rows);
    emitOutputs(opts, title, rows);
    return 0;
}
