#!/bin/sh
# Regenerate every result file in this directory (run from the repo
# root). Builds an optimized tree first so published numbers never
# come from a debug build. Scales trade run time for stability; all
# table/ablation outputs are deterministic at a given scale
# (BENCH_pipeline.json records wall times, which vary with the host).
#
# regen.sh --service regenerates only BENCH_service.json (from the
# tier-1 RelWithDebInfo tree, same rationale as BENCH_pipeline.json),
# including the request-scoped telemetry keys: server-side op/phase
# histogram percentiles (server_*/phase_*/op_histograms), result-
# cache counters, and the histogram recording overhead.
set -e

if [ "$1" = "--service" ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build -j
    build/bench/perf_service --connections 4 --requests 100 \
        --warmup 20 --images 4 --out BENCH_service.json
    exit 0
fi
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j
B=build/bench
# Table runs fan out two levels — benchmarks across the pool, each
# timing simulation sharded across whatever the outer level leaves
# idle — and memoize shard results in a disk-backed content-addressed
# cache, so regenerating after an edit pays only for changed pages.
# Both knobs are output-invariant: tables are byte-identical at any
# jobs/interval setting, warm or cold (tests/sim/test_resultcache.cc
# gates it).
TABLE="--shard-interval 65536 --result-cache build/rescache"
# Table 1 also publishes the stall-attribution histograms, the
# scheduler slot-fill audit, and a structured mirror of the table.
$B/table1_ultrasparc --scale 1 $TABLE \
    --breakdown results/stall_breakdown.txt \
    --json results/table1.json > results/table1.txt
$B/table2_ultrasparc_resched --scale 1 $TABLE > results/table2.txt
$B/table3_supersparc --scale 1 $TABLE > results/table3.txt
$B/table1_ultrasparc --machine hypersparc --scale 0.5 $TABLE > results/table1_hypersparc.txt
$B/fig_ilp_histogram --scale 0.5 > results/fig_ilp.txt
$B/ablation_blocksize --scale 1 > results/ablation_blocksize.txt
$B/ablation_aliasing --scale 0.5 > results/ablation_aliasing.txt
$B/ablation_priority --scale 0.5 > results/ablation_priority.txt
$B/ablation_icache --scale 2 > results/ablation_icache.txt
$B/ablation_sched_model --scale 0.5 > results/ablation_sched_model.txt
$B/ablation_fastprof --scale 0.3 > results/ablation_fastprof.txt
$B/ablation_width --scale 0.3 > results/ablation_width.txt
$B/table_superblock --scale 0.5 > results/table_superblock.txt
$B/table_pipeline --scale 0.5 > results/table_pipeline.txt
$B/ablation_trace_threshold --scale 0.3 > results/ablation_trace_threshold.txt
$B/ablation_ii_gap > results/ablation_ii_gap.txt
# The perf_regression ctest gate measures in the default tier-1 tree
# (RelWithDebInfo), so the gated baseline must come from the same
# build type — Release numbers run ~1.8x faster and would trip the
# +/-25% band by construction. Regenerating it last also flips the
# build tree back to the tier-1 default.
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j
$B/perf_pipeline --scale 0.3 --out BENCH_pipeline.json
$B/perf_service --connections 4 --requests 100 --warmup 20 \
    --images 4 --out BENCH_service.json
