#include "src/support/logging.hh"

#include <gtest/gtest.h>

namespace eel {
namespace {

TEST(Logging, StrfmtBasic)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 3, "abc"), "x=3 y=abc");
    EXPECT_EQ(strfmt("%08x", 0x1234u), "00001234");
}

TEST(Logging, StrfmtLongString)
{
    std::string big(10000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), big.size());
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %d", 7), FatalError);
    try {
        fatal("user error %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "user error 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalIsNotPanic)
{
    // The two error classes are distinct so callers can tell user
    // errors from internal bugs.
    EXPECT_THROW(
        {
            try {
                fatal("x");
            } catch (const PanicError &) {
                FAIL() << "fatal() threw PanicError";
            }
        },
        FatalError);
}

} // namespace
} // namespace eel
