#include "src/support/logging.hh"

#include <gtest/gtest.h>

#include <regex>
#include <thread>

#include "src/obs/log.hh"
#include "src/obs/trace.hh"

namespace eel {
namespace {

TEST(Logging, StrfmtBasic)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 3, "abc"), "x=3 y=abc");
    EXPECT_EQ(strfmt("%08x", 0x1234u), "00001234");
}

TEST(Logging, StrfmtLongString)
{
    std::string big(10000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), big.size());
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %d", 7), FatalError);
    try {
        fatal("user error %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "user error 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalIsNotPanic)
{
    // The two error classes are distinct so callers can tell user
    // errors from internal bugs.
    EXPECT_THROW(
        {
            try {
                fatal("x");
            } catch (const PanicError &) {
                FAIL() << "fatal() threw PanicError";
            }
        },
        FatalError);
}

TEST(Logging, LineHasTimestampAndThreadName)
{
    obs::setLogLevel(obs::LogLevel::Info);
    testing::internal::CaptureStderr();
    obs::logf(obs::LogLevel::Info, "stamp check %d", 42);
    std::string line = testing::internal::GetCapturedStderr();
    // 14:02:11.123 info  [<thread>] stamp check 42
    std::regex shape(
        R"(^\d{2}:\d{2}:\d{2}\.\d{3} info  \[[^\]]+\] stamp check 42\n$)");
    EXPECT_TRUE(std::regex_match(line, shape)) << line;
}

TEST(Logging, ThreadNamesDistinguishThreads)
{
    // Unnamed threads get distinct ordinal tags; setThreadName (the
    // trace-layer entry point) renames the log tag too.
    std::string mine = obs::logThreadName();
    std::string other;
    std::thread t([&] { other = obs::logThreadName(); });
    t.join();
    EXPECT_NE(mine, other);

    std::string renamed;
    std::thread t2([&] {
        obs::setThreadName("log-test-worker");
        renamed = obs::logThreadName();
    });
    t2.join();
    EXPECT_EQ(renamed, "log-test-worker");
}

} // namespace
} // namespace eel
