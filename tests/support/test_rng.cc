#include "src/support/rng.hh"

#include <gtest/gtest.h>

namespace eel {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform(0, 1 << 30) == b.uniform(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.uniform(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, GeometricMean)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(4.0, 0));
    EXPECT_NEAR(sum / n, 4.0, 0.3);
}

TEST(Rng, GeometricRespectsMin)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.geometric(3.0, 2), 2);
}

TEST(Rng, GeometricDegenerateMean)
{
    Rng r(17);
    EXPECT_EQ(r.geometric(1.0, 2), 2);
}

TEST(Rng, WeightedPickDistribution)
{
    Rng r(19);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {};
    for (int i = 0; i < 10000; ++i)
        counts[r.weightedPick(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_NEAR(double(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkIndependence)
{
    Rng a(31);
    Rng child = a.fork();
    // The child stream should not replay the parent stream.
    Rng b(31);
    (void)b.fork();
    EXPECT_EQ(child.uniform(0, 1 << 30), Rng(31).fork().uniform(0, 1 << 30));
}

} // namespace
} // namespace eel
