#include "src/support/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using eel::support::ThreadPool;

TEST(ThreadPool, StartupShutdown)
{
    // Construction and destruction must not hang or leak threads,
    // including pools that never run a batch.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
    ThreadPool defaulted;
    EXPECT_GE(defaulted.size(), 1u);
    EXPECT_EQ(defaulted.size(), ThreadPool::hardwareConcurrency());
}

TEST(ThreadPool, ParallelForItemCounts)
{
    ThreadPool pool(4);
    for (size_t n : {size_t(0), size_t(1), size_t(3), size_t(100)}) {
        std::vector<std::atomic<int>> hits(n ? n : 1);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(n, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "item " << i << " of " << n;
    }
}

TEST(ThreadPool, PoolOfOneRunsInline)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(8);
    pool.parallelFor(8, [&](size_t i) {
        ran[i] = std::this_thread::get_id();
    });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, SumAcrossThreads)
{
    ThreadPool pool(4);
    constexpr size_t n = 10000;
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(n, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), uint64_t(n) * (n - 1) / 2);
}

TEST(ThreadPool, ExceptionPropagates)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](size_t i) {
                                      ++ran;
                                      if (i == 7)
                                          throw std::runtime_error(
                                              "item 7");
                                  }),
                 std::runtime_error);
    // The batch drains fully even when an item throws.
    EXPECT_EQ(ran.load(), 16);

    // The pool stays usable after a failed batch.
    std::atomic<int> after{0};
    pool.parallelFor(8, [&](size_t) { ++after; });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, NestedCallsComplete)
{
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(8, [&](size_t) {
        // A nested call from a worker must not deadlock.
        pool.parallelFor(4, [&](size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, NestedCallsShareWork)
{
    // A two-level fan-out whose outer level has fewer items than
    // threads (the table-of-benchmarks × shards shape): the nested
    // calls' items must spill onto the idle workers, not run inline
    // on the two outer callers.
    ThreadPool pool(8);
    std::mutex mu;
    std::set<std::thread::id> innerThreads;
    std::atomic<int> inner{0};
    pool.parallelFor(2, [&](size_t) {
        pool.parallelFor(32, [&](size_t) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            ++inner;
            std::lock_guard<std::mutex> lock(mu);
            innerThreads.insert(std::this_thread::get_id());
        });
    });
    EXPECT_EQ(inner.load(), 64);
    // 64 sleepy items against 2 busy outer threads: the other 6
    // workers have tens of milliseconds to claim one.
    EXPECT_GT(innerThreads.size(), 2u);
}

TEST(ThreadPool, NestedCallDegradesInlineWhenWorkersBlocked)
{
    // The service-daemon shape: every other worker is parked forever
    // inside its outer item, so nobody can help. The nested call
    // must steal its own items back and complete inline rather than
    // wait on a sibling that never returns.
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    std::atomic<bool> release{false};
    std::mutex mu;
    std::condition_variable cv;
    pool.parallelFor(4, [&](size_t i) {
        if (i == 0) {
            pool.parallelFor(8, [&](size_t) { ++inner; });
            {
                std::lock_guard<std::mutex> lock(mu);
                release = true;
            }
            cv.notify_all();
        } else {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return release.load(); });
        }
    });
    EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPool, CostSortedDispatchOrder)
{
    // With a single thread of execution, dispatch order is execution
    // order: largest cost first, index order on ties, and fn still
    // sees original indices.
    ThreadPool pool(1);
    std::vector<uint64_t> cost = {5, 40, 5, 90, 40, 0};
    std::vector<size_t> order;
    pool.parallelFor(cost.size(), cost,
                     [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{3, 1, 4, 0, 2, 5}));
}

TEST(ThreadPool, CostSortedRunsEveryItemOnce)
{
    // Multi-threaded: completion order is nondeterministic, but every
    // item must run exactly once, and an empty batch is a no-op.
    ThreadPool pool(4);
    std::vector<uint64_t> cost(64);
    for (size_t i = 0; i < cost.size(); ++i)
        cost[i] = (i * 7919) % 100;
    std::vector<std::atomic<int>> hits(cost.size());
    pool.parallelFor(cost.size(), cost, [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    pool.parallelFor(0, std::vector<uint64_t>{}, [&](size_t) {
        FAIL() << "empty batch ran an item";
    });
}

TEST(ThreadPool, StealingDrainsLongTail)
{
    // Work-stealing shape: the round-robin deal puts one long item
    // plus a share of tiny ones on each worker's deque, then makes
    // worker 0's share vastly larger. Idle workers must steal the
    // backlog rather than leave it serialized behind slot 0; the
    // check is that all items complete even when one deque starts
    // with nearly all the work (plus the usual exactly-once check).
    ThreadPool pool(4);
    constexpr size_t n = 4096;
    std::vector<std::atomic<int>> hits(n);
    std::vector<uint64_t> cost(n, 1);
    // Cost-sorted dispatch deals descending cost round-robin, so
    // these land spread one-per-deque at the fronts.
    for (size_t i = 0; i < 4; ++i)
        cost[i] = 1000 - i;
    std::atomic<uint64_t> slow{0};
    pool.parallelFor(n, cost, [&](size_t i) {
        ++hits[i];
        if (i < 4) // the "long poles" spin a while
            for (int k = 0; k < 200000; ++k)
                slow.fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    // Unsorted overload too: all of the work lands dealt across the
    // deques up front, and stealing must still drain every item.
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(n, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), uint64_t(n) * (n - 1) / 2);
}

TEST(ThreadPool, ManySmallBatches)
{
    ThreadPool pool(4);
    uint64_t total = 0;
    for (int rep = 0; rep < 200; ++rep) {
        std::atomic<uint64_t> sum{0};
        pool.parallelFor(3, [&](size_t i) { sum += i + 1; });
        total += sum.load();
    }
    EXPECT_EQ(total, 200u * 6u);
}

} // namespace
