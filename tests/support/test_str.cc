#include "src/support/str.hh"

#include <gtest/gtest.h>

namespace eel {
namespace {

TEST(Str, SplitBasic)
{
    auto v = split("a,b,c", ",");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
}

TEST(Str, SplitDropsEmpty)
{
    auto v = split(",,a,,b,,", ",");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
}

TEST(Str, SplitMultipleSeparators)
{
    auto v = split("a b\tc", " \t");
    ASSERT_EQ(v.size(), 3u);
}

TEST(Str, SplitEmptyInput)
{
    EXPECT_TRUE(split("", ",").empty());
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t\na b\n"), "a b");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(Str, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

} // namespace
} // namespace eel
