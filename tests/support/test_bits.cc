#include "src/support/bits.hh"

#include <gtest/gtest.h>

namespace eel {
namespace {

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xffffffff, 31, 0), 0xffffffffu);
    EXPECT_EQ(bits(0x0, 31, 0), 0u);
}

TEST(Bits, ExtractSingleBit)
{
    EXPECT_EQ(bits(0x80000000u, 31, 31), 1u);
    EXPECT_EQ(bits(0x80000000u, 30, 30), 0u);
    EXPECT_EQ(bits(1u, 0, 0), 1u);
}

TEST(Bits, InsertBasic)
{
    EXPECT_EQ(insertBits(0, 31, 28, 0xd), 0xd0000000u);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 31, 0, 0x12345678), 0x12345678u);
}

TEST(Bits, InsertMasksField)
{
    // Field wider than the slot is truncated, not smeared.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bits, InsertExtractRoundTrip)
{
    for (unsigned hi = 0; hi < 32; ++hi) {
        for (unsigned lo = 0; lo <= hi; lo += 3) {
            uint32_t field = 0x5a5a5a5au;
            uint32_t word = insertBits(0xffffffffu, hi, lo, field);
            uint32_t mask = (hi - lo >= 31)
                                ? 0xffffffffu
                                : ((1u << (hi - lo + 1)) - 1);
            EXPECT_EQ(bits(word, hi, lo), field & mask)
                << "hi=" << hi << " lo=" << lo;
        }
    }
}

TEST(Bits, SextPositive)
{
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x0, 13), 0);
    EXPECT_EQ(sext(0xfff, 13), 4095);
}

TEST(Bits, SextNegative)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x1fff, 13), -1);
    EXPECT_EQ(sext(0x1000, 13), -4096);
    EXPECT_EQ(sext(0x3fffff, 22), -1);
}

TEST(Bits, SextIgnoresHighGarbage)
{
    EXPECT_EQ(sext(0xffffff01, 8), 1);
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(0, 13));
    EXPECT_TRUE(fitsSigned(4095, 13));
    EXPECT_TRUE(fitsSigned(-4096, 13));
    EXPECT_FALSE(fitsSigned(4096, 13));
    EXPECT_FALSE(fitsSigned(-4097, 13));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

} // namespace
} // namespace eel
