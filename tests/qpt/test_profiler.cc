#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/qpt/profiler.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::qpt {
namespace {

using edit::Block;
using edit::Routine;

struct ProfSetup
{
    exe::Executable orig;
    exe::Executable work;
    std::vector<Routine> routines;
    ProfilePlan plan;

    explicit ProfSetup(size_t bench_idx, bool skip_opt = true,
                   double scale = 0.02)
    {
        const auto &m = machine::MachineModel::builtin("ultrasparc");
        workload::BenchmarkSpec spec =
            workload::spec95("ultrasparc")[bench_idx];
        workload::GenOptions gopts;
        gopts.scale = scale;
        gopts.machine = &m;
        orig = workload::generate(spec, gopts);
        routines = edit::buildRoutines(orig);
        work = orig;
        ProfileOptions popts;
        popts.skipRedundantBlocks = skip_opt;
        plan = makePlan(work, routines, popts);
    }
};

TEST(Profiler, SnippetIsTheFourInstructionSequence)
{
    sched::InstSeq s = counterSnippet(0x412345 & ~3u, {});
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].inst.op, isa::Op::Sethi);
    EXPECT_EQ(s[1].inst.op, isa::Op::Ld);
    EXPECT_EQ(s[2].inst.op, isa::Op::Add);
    EXPECT_EQ(s[3].inst.op, isa::Op::St);
    for (const sched::InstRef &r : s)
        EXPECT_TRUE(r.isInstrumentation);
    // Scratch registers are the reserved %g6/%g7.
    EXPECT_EQ(s[0].inst.rd, isa::reg::g6);
    EXPECT_EQ(s[1].inst.rd, isa::reg::g7);
}

TEST(Profiler, CountsMatchGroundTruth)
{
    ProfSetup s(0);
    exe::Executable inst = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});

    // Ground truth: trace the ORIGINAL program, counting entries to
    // each block's start address.
    struct BlockCounter : sim::TraceSink
    {
        std::map<uint32_t, uint64_t> hits;
        std::set<uint32_t> starts;
        void
        retire(uint32_t pc, const isa::Instruction &) override
        {
            if (starts.count(pc))
                ++hits[pc];
        }
    } truth;
    for (const Routine &r : s.routines)
        for (const Block &blk : r.blocks)
            truth.starts.insert(blk.startAddr);
    sim::Emulator e0(s.orig);
    e0.run(&truth);

    sim::Emulator e1(inst);
    e1.run();
    auto counts = readCounts(e1, s.plan);

    for (size_t ri = 0; ri < s.routines.size(); ++ri) {
        for (const Block &blk : s.routines[ri].blocks) {
            uint64_t expect = truth.hits.count(blk.startAddr)
                                  ? truth.hits[blk.startAddr]
                                  : 0;
            EXPECT_EQ(counts[ri][blk.id], expect)
                << "routine " << ri << " block " << blk.id;
        }
    }
}

TEST(Profiler, SkipOptimizationReducesCounters)
{
    ProfSetup with(0, true);
    ProfSetup without(0, false);
    EXPECT_LT(with.plan.numCounters, without.plan.numCounters);
    EXPECT_EQ(without.plan.numCounters, without.plan.totalBlocks);
}

TEST(Profiler, SkippedBlocksStillReported)
{
    ProfSetup s(0, true);
    bool any_skipped = false;
    for (size_t ri = 0; ri < s.plan.counterOf.size(); ++ri)
        for (int c : s.plan.counterOf[ri])
            if (c < 0)
                any_skipped = true;
    ASSERT_TRUE(any_skipped);

    exe::Executable inst = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    sim::Emulator e(inst);
    e.run();
    auto counts = readCounts(e, s.plan);
    // Every skipped block must borrow a nonzero-capable partner.
    for (size_t ri = 0; ri < s.plan.counterOf.size(); ++ri) {
        for (size_t bi = 0; bi < s.plan.counterOf[ri].size(); ++bi) {
            if (s.plan.counterOf[ri][bi] >= 0)
                continue;
            auto [pr, pb] = s.plan.partner[ri][bi];
            ASSERT_GE(pr, 0);
            EXPECT_GE(s.plan.counterOf[pr][pb], 0)
                << "partner must be instrumented";
            EXPECT_EQ(counts[ri][bi], counts[pr][pb]);
        }
    }
}

TEST(Profiler, SkipOptimizationCountsStillExact)
{
    // With skipping enabled, reconstructed counts must still match
    // the no-skip instrumentation's counts.
    ProfSetup a(4, true);
    ProfSetup b2(4, false);
    exe::Executable ia =
        edit::rewrite(a.work, a.routines, a.plan.plan, {});
    exe::Executable ib =
        edit::rewrite(b2.work, b2.routines, b2.plan.plan, {});
    sim::Emulator ea(ia), eb(ib);
    ea.run();
    eb.run();
    auto ca = readCounts(ea, a.plan);
    auto cb = readCounts(eb, b2.plan);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t ri = 0; ri < ca.size(); ++ri)
        for (size_t bi = 0; bi < ca[ri].size(); ++bi)
            EXPECT_EQ(ca[ri][bi], cb[ri][bi])
                << "routine " << ri << " block " << bi;
}

TEST(Profiler, CountersLiveInBss)
{
    ProfSetup s(0);
    EXPECT_GE(s.plan.counterBase, s.work.bssBase());
    EXPECT_LE(s.plan.counterBase + 4 * s.plan.numCounters,
              s.work.bssEnd());
    EXPECT_NE(s.work.findSymbol("__qpt_counters"), nullptr);
}

TEST(Profiler, InstrumentationPreservesProgramOutput)
{
    ProfSetup s(2);
    sim::Emulator e0(s.orig);
    std::string golden = e0.run().output;
    exe::Executable inst = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    sim::Emulator e1(inst);
    EXPECT_EQ(e1.run().output, golden);
}

TEST(Profiler, TextGrowthFactorInPaperRange)
{
    // "Profiling increases a program's text size by a factor of
    // 2-3" (§4.1) for small-block integer code.
    ProfSetup s(4);  // 130.li, avg block 2.0
    exe::Executable inst = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    double growth = double(inst.text.size()) / s.orig.text.size();
    EXPECT_GT(growth, 1.8);
    EXPECT_LT(growth, 3.5);
}

TEST(Profiler, ScavengingUsesDeadRegistersAndStaysCorrect)
{
    ProfSetup plain(0, true);
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[0];
    workload::GenOptions gopts;
    gopts.scale = 0.02;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(orig);
    exe::Executable work = orig;
    ProfileOptions popts;
    popts.scavengeRegisters = true;
    ProfilePlan plan = makePlan(work, routines, popts);

    // Some blocks should have found dead registers.
    EXPECT_GT(plan.scavengedBlocks, 0u);
    EXPECT_LE(plan.scavengedBlocks, plan.instrumentedBlocks);

    // And counts must still be exact vs. the reserved-register plan.
    exe::Executable inst = edit::rewrite(work, routines, plan.plan,
                                         {});
    exe::Executable inst0 = edit::rewrite(plain.work, plain.routines,
                                          plain.plan.plan, {});
    sim::Emulator ea(inst), eb(inst0);
    std::string oa = ea.run().output;
    std::string ob = eb.run().output;
    EXPECT_EQ(oa, ob);
    auto ca = readCounts(ea, plan);
    auto cb = readCounts(eb, plain.plan);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t ri = 0; ri < ca.size(); ++ri)
        for (size_t bi = 0; bi < ca[ri].size(); ++bi)
            EXPECT_EQ(ca[ri][bi], cb[ri][bi]);
}

TEST(Profiler, ScavengingSurvivesScheduling)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[9];
    workload::GenOptions gopts;
    gopts.scale = 0.02;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);
    sim::Emulator e0(orig);
    std::string golden = e0.run().output;

    auto routines = edit::buildRoutines(orig);
    exe::Executable work = orig;
    ProfileOptions popts;
    popts.scavengeRegisters = true;
    ProfilePlan plan = makePlan(work, routines, popts);
    edit::EditOptions eo;
    eo.schedule = true;
    eo.model = &m;
    exe::Executable sch = edit::rewrite(work, routines, plan.plan,
                                        eo);
    sim::Emulator e1(sch);
    EXPECT_EQ(e1.run().output, golden);
}

} // namespace
} // namespace eel::qpt
