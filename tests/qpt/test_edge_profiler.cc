#include <gtest/gtest.h>

#include <map>

#include "src/qpt/edge_profiler.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::qpt {
namespace {

using edit::Block;
using edit::Routine;

struct EdgeSetup
{
    exe::Executable orig;
    exe::Executable work;
    std::vector<Routine> routines;
    EdgeProfilePlan plan;

    explicit EdgeSetup(size_t bench_idx, double scale = 0.02)
    {
        const auto &m = machine::MachineModel::builtin("ultrasparc");
        workload::BenchmarkSpec spec =
            workload::spec95("ultrasparc")[bench_idx];
        workload::GenOptions gopts;
        gopts.scale = scale;
        gopts.machine = &m;
        orig = workload::generate(spec, gopts);
        routines = edit::buildRoutines(orig);
        work = orig;
        plan = makeEdgePlan(work, routines);
    }
};

TEST(EdgeProfiler, SpanningTreeSavesCounters)
{
    EdgeSetup s(0);
    EXPECT_GT(s.plan.totalEdges, 0u);
    EXPECT_LT(s.plan.instrumentedEdges, s.plan.totalEdges);
    // The tree has (#nodes - 1) edges per routine, all uncounted.
    uint64_t tree_edges = 0;
    for (size_t ri = 0; ri < s.plan.edges.size(); ++ri)
        for (const Edge &e : s.plan.edges[ri])
            tree_edges += e.counter < 0;
    uint64_t expected = 0;
    for (const Routine &r : s.routines)
        expected += r.blocks.size();  // + virtual node - 1
    EXPECT_EQ(tree_edges, expected);
}

TEST(EdgeProfiler, EntryEdgesNeverInstrumented)
{
    EdgeSetup s(4);
    for (const auto &edges : s.plan.edges) {
        for (const Edge &e : edges) {
            if (e.kind == Edge::Kind::Entry)
                EXPECT_LT(e.counter, 0);
        }
    }
}

TEST(EdgeProfiler, OutputPreserved)
{
    EdgeSetup s(2);
    sim::Emulator e0(s.orig);
    std::string golden = e0.run().output;
    exe::Executable inst = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    sim::Emulator e1(inst);
    EXPECT_EQ(e1.run().output, golden);
}

TEST(EdgeProfiler, BlockCountsMatchSlowProfiling)
{
    for (size_t bench : {0u, 4u, 10u}) {
        EdgeSetup s(bench);
        exe::Executable fast = edit::rewrite(s.work, s.routines,
                                             s.plan.plan, {});
        sim::Emulator ef(fast);
        ef.run();
        auto edge_counts = readEdgeCounts(ef, s.plan, s.routines);
        auto fast_blocks =
            blockCountsFromEdges(edge_counts, s.plan, s.routines);

        // Reference: slow profiling without the skip optimization.
        exe::Executable work2 = s.orig;
        ProfileOptions popts;
        popts.skipRedundantBlocks = false;
        ProfilePlan slow = makePlan(work2, s.routines, popts);
        exe::Executable slow_exe = edit::rewrite(work2, s.routines,
                                                 slow.plan, {});
        sim::Emulator es(slow_exe);
        es.run();
        auto slow_blocks = readCounts(es, slow);

        ASSERT_EQ(fast_blocks.size(), slow_blocks.size());
        for (size_t ri = 0; ri < fast_blocks.size(); ++ri)
            for (size_t bi = 0; bi < fast_blocks[ri].size(); ++bi)
                EXPECT_EQ(fast_blocks[ri][bi], slow_blocks[ri][bi])
                    << "bench " << bench << " routine " << ri
                    << " block " << bi;
    }
}

TEST(EdgeProfiler, EdgeCountsMatchTraceGroundTruth)
{
    EdgeSetup s(0);
    exe::Executable fast = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    sim::Emulator ef(fast);
    ef.run();
    auto edge_counts = readEdgeCounts(ef, s.plan, s.routines);

    // Ground truth from the ORIGINAL binary: count block-to-block
    // transitions.
    std::map<uint32_t, std::pair<size_t, size_t>> blockOfPc;
    for (size_t ri = 0; ri < s.routines.size(); ++ri)
        for (const Block &b : s.routines[ri].blocks)
            for (const sched::InstRef &ref : b.insts)
                blockOfPc[ref.origAddr] = {ri, b.id};
    std::map<uint32_t, bool> isStart;
    for (const auto &r : s.routines)
        for (const Block &b : r.blocks)
            isStart[b.startAddr] = true;

    struct Sink : sim::TraceSink
    {
        std::map<uint32_t, std::pair<size_t, size_t>> *blockOfPc;
        std::map<uint32_t, bool> *isStart;
        std::map<std::tuple<size_t, size_t, size_t>, uint64_t> hits;
        // Last block seen per routine, so that call/return
        // excursions into other routines do not break the edge
        // (transitions that are not CFG edges are filtered by the
        // comparison loop below).
        std::map<size_t, size_t> lastOf;
        void
        retire(uint32_t pc, const isa::Instruction &) override
        {
            auto it = blockOfPc->find(pc);
            if (it == blockOfPc->end())
                return;
            auto [ri, bi] = it->second;
            if (isStart->count(pc)) {
                auto last = lastOf.find(ri);
                if (last != lastOf.end() && last->second != bi)
                    ++hits[{ri, last->second, bi}];
            }
            lastOf[ri] = bi;
        }
    } sink;
    sink.blockOfPc = &blockOfPc;
    sink.isStart = &isStart;
    sim::Emulator e0(s.orig);
    e0.run(&sink);

    for (size_t ri = 0; ri < s.plan.edges.size(); ++ri) {
        const auto &edges = s.plan.edges[ri];
        for (size_t i = 0; i < edges.size(); ++i) {
            const Edge &e = edges[i];
            if (e.from < 0 || e.to < 0)
                continue;  // virtual edges: no direct ground truth
            if (static_cast<size_t>(e.from) == static_cast<size_t>(e.to))
                continue;  // self transitions not visible to the sink
            // Skip parallel taken/fall pairs (ambiguous in a pc
            // trace).
            bool parallel = false;
            for (size_t j = 0; j < edges.size(); ++j)
                if (j != i && edges[j].from == e.from &&
                    edges[j].to == e.to)
                    parallel = true;
            if (parallel)
                continue;
            uint64_t expect = 0;
            auto it = sink.hits.find(
                {ri, static_cast<size_t>(e.from),
                 static_cast<size_t>(e.to)});
            if (it != sink.hits.end())
                expect = it->second;
            EXPECT_EQ(edge_counts[ri][i], expect)
                << "routine " << ri << " edge " << e.from << "->"
                << e.to;
        }
    }
}

TEST(EdgeProfiler, CheaperThanSlowProfiling)
{
    EdgeSetup s(4);  // 130.li: small blocks, every block counted
    exe::Executable fast = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, {});
    exe::Executable work2 = s.orig;
    ProfilePlan slow = makePlan(work2, s.routines);
    exe::Executable slow_exe = edit::rewrite(work2, s.routines,
                                             slow.plan, {});
    sim::Emulator ef(fast), es(slow_exe);
    uint64_t nfast = ef.run().instructions;
    uint64_t nslow = es.run().instructions;
    // Ball-Larus counts fewer events: fewer dynamic instructions.
    EXPECT_LT(nfast, nslow);
}

TEST(EdgeProfiler, WorksWithScheduling)
{
    EdgeSetup s(9);
    sim::Emulator e0(s.orig);
    std::string golden = e0.run().output;
    edit::EditOptions eo;
    eo.schedule = true;
    eo.model = &machine::MachineModel::builtin("ultrasparc");
    exe::Executable fast = edit::rewrite(s.work, s.routines,
                                         s.plan.plan, eo);
    sim::Emulator e1(fast);
    EXPECT_EQ(e1.run().output, golden);

    auto edge_counts = readEdgeCounts(e1, s.plan, s.routines);
    auto blocks = blockCountsFromEdges(edge_counts, s.plan,
                                       s.routines);
    // The kernel loop blocks must show their iteration counts.
    uint64_t max_count = 0;
    for (const auto &rc : blocks)
        for (uint64_t c : rc)
            max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 100u);
}

} // namespace
} // namespace eel::qpt
