#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/isa/builder.hh"
#include "src/qpt/tracer.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::qpt {
namespace {

using edit::Block;
using edit::Routine;

struct TraceSetup
{
    exe::Executable orig;
    exe::Executable work;
    std::vector<Routine> routines;
    TracePlan plan;

    explicit TraceSetup(size_t bench_idx, bool schedule,
                        double scale = 0.005)
    {
        const auto &m = machine::MachineModel::builtin("ultrasparc");
        workload::BenchmarkSpec spec =
            workload::spec95("ultrasparc")[bench_idx];
        workload::GenOptions gopts;
        gopts.scale = scale;
        gopts.machine = &m;
        orig = workload::generate(spec, gopts);
        routines = edit::buildRoutines(orig);
        work = orig;
        plan = makeTracePlan(work, routines);
        edit::EditOptions eo;
        if (schedule) {
            eo.schedule = true;
            eo.model = &m;
        }
        traced = edit::rewrite(work, routines, plan.plan, eo);
    }

    exe::Executable traced;
};

/** Ground truth: the dynamic block-entry sequence of the original. */
std::vector<TraceEvent>
groundTruth(const exe::Executable &x,
            const std::vector<Routine> &routines)
{
    struct Sink : sim::TraceSink
    {
        std::map<uint32_t, TraceEvent> startOf;
        std::vector<TraceEvent> events;
        void
        retire(uint32_t pc, const isa::Instruction &) override
        {
            auto it = startOf.find(pc);
            if (it != startOf.end())
                events.push_back(it->second);
        }
    } sink;
    for (size_t ri = 0; ri < routines.size(); ++ri)
        for (const Block &b : routines[ri].blocks)
            sink.startOf[b.startAddr] =
                TraceEvent{static_cast<uint32_t>(ri), b.id};
    sim::Emulator emu(x);
    emu.run(&sink);
    return sink.events;
}

class Tracer : public ::testing::TestWithParam<bool>
{};

TEST_P(Tracer, ReplaysTheExactBlockSequence)
{
    TraceSetup s(4, GetParam());
    sim::Emulator e0(s.orig);
    std::string golden = e0.run().output;

    sim::Emulator e(s.traced);
    sim::RunResult r = e.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.output, golden);

    std::vector<TraceEvent> trace = readTrace(e, s.plan);
    std::vector<TraceEvent> truth = groundTruth(s.orig, s.routines);
    ASSERT_EQ(trace.size(), truth.size());
    for (size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(trace[i], truth[i]) << "event " << i;
}

INSTANTIATE_TEST_SUITE_P(SchedOnOff, Tracer, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "scheduled"
                                            : "unscheduled";
                         });

TEST(TracerDetail, EveryBlockGetsADistinctId)
{
    TraceSetup s(0, false);
    std::set<uint32_t> ids;
    uint64_t blocks = 0;
    for (const auto &per_routine : s.plan.idOf)
        for (uint32_t id : per_routine) {
            ids.insert(id);
            ++blocks;
        }
    EXPECT_EQ(ids.size(), blocks);
    EXPECT_EQ(s.plan.tracedBlocks, blocks);
}

TEST(TracerDetail, BufferSizedFromMaxEvents)
{
    exe::Executable x;
    x.text.push_back(isa::encode(isa::build::ta(0)));
    x.text.push_back(isa::encode(isa::build::retl()));
    x.text.push_back(isa::encode(isa::build::nop()));
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 12, true});
    auto rs = edit::buildRoutines(x);
    TraceOptions opts;
    opts.maxEvents = 64;
    TracePlan plan = makeTracePlan(x, rs, opts);
    EXPECT_EQ(plan.bufferBytes, 8u + 4 * 64);
    EXPECT_NE(x.findSymbol("__qpt_trace"), nullptr);
}

TEST(TracerDetail, TraceCanRegenerateBlockCounts)
{
    // Block counts derived from the trace must equal direct counts.
    TraceSetup s(2, true);
    sim::Emulator e(s.traced);
    e.run();
    std::vector<TraceEvent> trace = readTrace(e, s.plan);

    std::map<std::pair<uint32_t, uint32_t>, uint64_t> counted;
    for (const TraceEvent &ev : trace)
        ++counted[{ev.routine, ev.block}];

    std::vector<TraceEvent> truth = groundTruth(s.orig, s.routines);
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> expected;
    for (const TraceEvent &ev : truth)
        ++expected[{ev.routine, ev.block}];
    EXPECT_EQ(counted, expected);
}

} // namespace
} // namespace eel::qpt
