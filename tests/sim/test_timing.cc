#include <gtest/gtest.h>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/sim/timing.hh"

namespace eel::sim {
namespace {

namespace b = isa::build;
using isa::Op;
namespace rn = isa::reg;

exe::Executable
loopProgram(int iters, bool dependent)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::l0, iters));
    // loop: 4 adds; subcc; bne loop; delay nop.
    for (int i = 0; i < 4; ++i)
        push(dependent ? b::rri(Op::Add, rn::o1, rn::o1, 1)
                       : b::rri(Op::Add, rn::o1 + i, rn::g1, 1));
    push(b::rri(Op::Subcc, rn::l0, rn::l0, 1));
    push(b::bicc(isa::cond::ne, -5));
    push(b::nop());
    push(b::movi(rn::o0, 0));
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    return x;
}

TEST(TimingSim, DependentCodeIsSlower)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    TimedRun dep = timedRun(loopProgram(500, true), m);
    TimedRun ind = timedRun(loopProgram(500, false), m);
    EXPECT_EQ(dep.result.instructions, ind.result.instructions);
    EXPECT_GT(dep.cycles, ind.cycles);
    EXPECT_GT(ind.ipc, 1.0);
}

TEST(TimingSim, WiderMachineNoSlower)
{
    exe::Executable x = loopProgram(500, false);
    TimedRun u = timedRun(x, machine::MachineModel::builtin(
                                 "ultrasparc"));
    TimedRun h = timedRun(x, machine::MachineModel::builtin(
                                 "hypersparc"));
    EXPECT_LE(u.cycles, h.cycles);
}

TEST(TimingSim, SecondsUseClockRate)
{
    const auto &m = machine::MachineModel::builtin("supersparc");
    TimedRun r = timedRun(loopProgram(100, false), m);
    EXPECT_NEAR(r.seconds, double(r.cycles) / (50.0 * 1e6), 1e-12);
}

TEST(TimingSim, TakenBranchPenaltyCosts)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = loopProgram(500, false);
    TimingSim::Config with;
    with.takenBranchPenalty = 3;
    TimingSim::Config without;
    without.takenBranchPenalty = 0;
    EXPECT_GT(timedRun(x, m, with).cycles,
              timedRun(x, m, without).cycles);
}

TEST(TimingSim, IssueHistogramAccountsEveryCycle)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    TimedRun r = timedRun(loopProgram(200, false), m);
    ASSERT_EQ(r.issueHistogram.size(), m.issueWidth() + 2);
    uint64_t insts = 0, cycles = 0;
    for (size_t k = 0; k < r.issueHistogram.size(); ++k) {
        cycles += r.issueHistogram[k];
        insts += k * r.issueHistogram[k];
    }
    // Every retired instruction appears in some issue bucket.
    EXPECT_EQ(insts, r.result.instructions);
    // Bucketed cycles can slightly undercount the drain but must be
    // close to the total.
    EXPECT_LE(cycles, r.cycles + 2);
    EXPECT_GT(cycles, r.cycles / 2);
}

TEST(TimingSim, IpcBoundedByIssueWidth)
{
    const auto &m = machine::MachineModel::builtin("ultrasparc");
    TimedRun r = timedRun(loopProgram(300, false), m);
    EXPECT_LE(r.ipc, double(m.issueWidth()));
    EXPECT_GT(r.ipc, 0.1);
}

} // namespace
} // namespace eel::sim
