/**
 * @file
 * Determinism oracle for the checkpoint-and-replay sharding: a
 * sharded timing run must reproduce the serial simulator — same
 * architectural state, same per-block dynamic counts, same cycle
 * totals — at every shard interval and jobs value, because the
 * tables built on it are compared byte-for-byte across runs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/machine/model.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/shard.hh"
#include "src/sim/timing.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::sim {
namespace {

exe::Executable
makeWorkload(double scale, size_t specIndex = 0)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = scale;
    gopts.machine = &m;
    return workload::generate(specs[specIndex], gopts);
}

/** Per-text-word block-leader bitmap, as bench/common builds it. */
std::vector<uint8_t>
leaderMap(const exe::Executable &x)
{
    std::vector<uint8_t> leader(x.text.size(), 0);
    for (const auto &r : edit::buildRoutines(x))
        for (const auto &blk : r.blocks)
            leader[(blk.startAddr - exe::textBase) / 4] = 1;
    return leader;
}

/** Serial reference: timing plus per-leader-word retire counts. */
struct SerialRef
{
    TimedRun timed;
    std::vector<uint64_t> leaderRetires;
    uint64_t blocks = 0;
    Emulator::ArchSnapshot finalState;
};

SerialRef
serialReference(const exe::Executable &x,
                const machine::MachineModel &m,
                const std::vector<uint8_t> &leader)
{
    SerialRef ref;
    ref.timed = timedRun(x, m);

    struct Sink final
    {
        const std::vector<uint8_t> *leader;
        std::vector<uint64_t> perWord;
        uint64_t blocks = 0;
        void
        retire(uint32_t pc, const isa::Instruction &)
        {
            uint32_t w = (pc - exe::textBase) / 4;
            if ((*leader)[w]) {
                ++blocks;
                ++perWord[w];
            }
        }
    } sink{&leader, std::vector<uint64_t>(x.text.size(), 0), 0};
    Emulator emu(x);
    emu.run(sink);
    ref.leaderRetires = std::move(sink.perWord);
    ref.blocks = sink.blocks;
    ref.finalState = emu.snapshot();
    return ref;
}

TEST(Shard, MemDeltaRoundtrip)
{
    std::vector<uint8_t> ref(3 * MemDelta::pageBytes + 100, 0);
    std::vector<uint8_t> cur = ref;
    cur[5] = 1;                            // first page
    cur[2 * MemDelta::pageBytes + 7] = 2;  // third page
    cur[3 * MemDelta::pageBytes + 99] = 3; // short tail page

    MemDelta d = MemDelta::diff(ref, cur);
    EXPECT_EQ(d.pages.size(), 3u);

    std::vector<uint8_t> rebuilt = ref;
    d.apply(rebuilt);
    EXPECT_EQ(rebuilt, cur);

    EXPECT_TRUE(MemDelta::diff(ref, ref).pages.empty());
}

TEST(Shard, EmulatorStateResume)
{
    exe::Executable x = makeWorkload(0.05);
    auto text = Emulator::decodeText(x);

    // Reference: one uninterrupted run.
    Emulator whole(x, {}, text);
    RunResult full = whole.run();
    ASSERT_TRUE(full.exited);

    // Stop after 10k instructions, save, and resume in a fresh
    // emulator: the tail must replay identically.
    Emulator part(x, {}, text);
    NullSink null;
    RunResult head = part.run(null, 10000);
    EXPECT_EQ(head.instructions, 10000u);
    EXPECT_FALSE(head.exited);
    Emulator::State state = part.saveState();
    EXPECT_EQ(state.retired, 10000u);

    Emulator resumed(x, {}, text);
    resumed.restoreState(state);
    RunResult tail = resumed.run();
    EXPECT_TRUE(tail.exited);
    EXPECT_EQ(tail.exitCode, full.exitCode);
    EXPECT_EQ(head.instructions + tail.instructions,
              full.instructions);
    EXPECT_EQ(head.output + tail.output, full.output);
    EXPECT_TRUE(resumed.snapshot().equalTo(whole.snapshot(), false));

    // A finished emulator stays finished.
    RunResult again = resumed.run();
    EXPECT_TRUE(again.exited);
    EXPECT_EQ(again.instructions, 0u);
    EXPECT_EQ(again.exitCode, full.exitCode);
}

TEST(Shard, CheckpointsLandOnBoundaries)
{
    exe::Executable x = makeWorkload(0.05);
    CheckpointOptions opts;
    opts.interval = 5000;
    CheckpointLog log = captureCheckpoints(x, opts);
    ASSERT_TRUE(log.functional.exited);
    ASSERT_GE(log.checkpoints.size(), 2u);
    for (size_t k = 0; k < log.checkpoints.size(); ++k) {
        EXPECT_EQ(log.checkpoints[k].state.retired,
                  (k + 1) * opts.interval);
        EXPECT_FALSE(log.checkpoints[k].state.exited);
    }
    EXPECT_GT(log.bytes(), 0u);
}

TEST(Shard, OracleMatchesSerial)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.1);
    std::vector<uint8_t> leader = leaderMap(x);
    SerialRef ref = serialReference(x, m, leader);
    ASSERT_TRUE(ref.timed.result.exited);

    support::ThreadPool pool(4);
    const uint64_t intervals[] = {1000, 64 * 1024,
                                  uint64_t(1) << 40};
    for (uint64_t interval : intervals) {
        for (unsigned jobs : {1u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << "interval " << interval << " jobs "
                         << jobs);
            ShardOptions sopts;
            sopts.interval = interval;
            sopts.pool = jobs > 1 ? &pool : nullptr;
            sopts.blockLeader = &leader;
            ShardedRun sr = runSharded(x, m, sopts);

            // Merged cycles are exact — the boundary-stall warmup
            // reproduces the serial pipeline at every cut.
            EXPECT_EQ(sr.cycles, ref.timed.cycles);
            EXPECT_EQ(sr.result.instructions,
                      ref.timed.result.instructions);
            EXPECT_EQ(sr.result.exitCode,
                      ref.timed.result.exitCode);
            EXPECT_EQ(sr.result.output, ref.timed.result.output);

            // Merged per-block dynamic counts are exact.
            EXPECT_EQ(sr.blocksRetired, ref.blocks);
            EXPECT_EQ(sr.leaderRetires, ref.leaderRetires);

            // The last shard's replay emulator ends in the serial
            // run's architectural state, registers included.
            EXPECT_TRUE(
                sr.finalState.equalTo(ref.finalState, false));

            uint64_t total = ref.timed.result.instructions;
            if (interval >= total)
                EXPECT_EQ(sr.stats.shards, 1u);
            else
                // The run exits inside the last (partial) interval;
                // an exact multiple exits on the boundary itself and
                // produces no trailing checkpoint.
                EXPECT_EQ(sr.stats.shards,
                          total % interval ? total / interval + 1
                                           : total / interval);
        }
    }
}

TEST(Shard, ProfilerCountersMerge)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.05);
    auto routines = edit::buildRoutines(x);
    qpt::ProfilePlan plan = qpt::makePlan(x, routines);
    exe::Executable instrumented = edit::rewrite(
        x, routines, plan.plan, edit::EditOptions{});

    // Serial reference counts, from a live emulator.
    Emulator emu(instrumented);
    emu.run();
    auto serialCounts = qpt::readCounts(emu, plan);

    // Sharded: the counter array arrives merged in the final
    // shard's data image.
    support::ThreadPool pool(4);
    ShardOptions sopts;
    sopts.interval = 3000;
    sopts.pool = &pool;
    ShardedRun sr = runSharded(instrumented, m, sopts);
    EXPECT_GE(sr.stats.shards, 3u);
    EXPECT_EQ(qpt::readCounts(sr.finalState, plan), serialCounts);
}

TEST(Shard, StallBreakdownMatchesSerial)
{
    // Stall attribution shards exactly: the per-reason counters are
    // monotone within a replay, so each shard's warmup prefix
    // subtracts off without residue and the shard-order merge is
    // bit-equal to the serial histogram at every interval.
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.1);

    TimingSim::Config tcfg;
    tcfg.collectStalls = true;
    TimedRun serial = timedRun(x, m, tcfg);
    ASSERT_TRUE(serial.result.exited);
    EXPECT_EQ(serial.stallBreakdown.total(), serial.stallCycles);
    EXPECT_GT(serial.stallCycles, 0u);

    support::ThreadPool pool(4);
    for (uint64_t interval : {uint64_t(2000), uint64_t(64 * 1024)}) {
        for (unsigned jobs : {1u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << "interval " << interval << " jobs "
                         << jobs);
            ShardOptions sopts;
            sopts.interval = interval;
            sopts.pool = jobs > 1 ? &pool : nullptr;
            sopts.timing = tcfg;
            ShardedRun sr = runSharded(x, m, sopts);
            EXPECT_EQ(sr.cycles, serial.cycles);
            EXPECT_EQ(sr.stallCycles, serial.stallCycles);
            EXPECT_TRUE(sr.stallBreakdown == serial.stallBreakdown);
            EXPECT_EQ(sr.stallBreakdown.total(), sr.stallCycles);
        }
    }
}

TEST(Shard, StitchResimsNonConvergingStream)
{
    // The instrumented fpppp stream carries two independently
    // saturated chains (the FP pipe and the profiling counters'
    // memory traffic) that phase-lock differently from a cold start,
    // so no warmup length reproduces the serial pipeline at some
    // cuts — the stall attribution columns exposed this as a ±1
    // cycle / reclassified-stall divergence. The stitch pass must
    // detect the mis-warmed shards via the normalized state key,
    // replay them from the predecessor's handed-off state, and land
    // bit-equal with the serial run.
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    size_t fpppp = specs.size();
    for (size_t i = 0; i < specs.size(); ++i)
        if (specs[i].name == "145.fpppp")
            fpppp = i;
    ASSERT_LT(fpppp, specs.size());
    exe::Executable base = makeWorkload(0.05, fpppp);
    auto routines = edit::buildRoutines(base);
    qpt::ProfilePlan plan = qpt::makePlan(base, routines);
    exe::Executable x = edit::rewrite(base, routines, plan.plan,
                                      edit::EditOptions{});

    TimingSim::Config tcfg;
    tcfg.collectStalls = true;
    TimedRun serial = timedRun(x, m, tcfg);
    ASSERT_TRUE(serial.result.exited);

    support::ThreadPool pool(4);
    bool sawResim = false;
    for (uint64_t interval : {uint64_t(3000), uint64_t(9000)}) {
        for (unsigned jobs : {1u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << "interval " << interval << " jobs "
                         << jobs);
            ShardOptions sopts;
            sopts.interval = interval;
            sopts.pool = jobs > 1 ? &pool : nullptr;
            sopts.timing = tcfg;
            ShardedRun sr = runSharded(x, m, sopts);
            EXPECT_EQ(sr.cycles, serial.cycles);
            EXPECT_EQ(sr.stallCycles, serial.stallCycles);
            EXPECT_TRUE(sr.stallBreakdown == serial.stallBreakdown);
            EXPECT_EQ(sr.stallBreakdown.total(), sr.stallCycles);
            sawResim = sawResim || sr.stats.resims > 0;
        }
    }
    // The whole point of this stream: warmup alone is not enough.
    EXPECT_TRUE(sawResim);
}

TEST(Shard, ParallelJobs4Determinism)
{
    // Two sharded runs on a contended 4-thread pool must agree bit
    // for bit; this is also the tsan_shard ctest's race detector
    // workload (every replay writes its own slot while stealing
    // work from siblings).
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.05);
    std::vector<uint8_t> leader = leaderMap(x);

    support::ThreadPool pool(4);
    ShardOptions sopts;
    sopts.interval = 2000;
    sopts.pool = &pool;
    sopts.blockLeader = &leader;

    ShardedRun a = runSharded(x, m, sopts);
    ShardedRun b = runSharded(x, m, sopts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issueHistogram, b.issueHistogram);
    EXPECT_EQ(a.leaderRetires, b.leaderRetires);
    EXPECT_EQ(a.result.output, b.result.output);
    EXPECT_TRUE(a.finalState.equalTo(b.finalState, false));
    EXPECT_GE(a.stats.shards, 4u);
}

TEST(Shard, ICacheBoundaryErrorWithinBound)
{
    // With the icache enabled, sharding is knowingly approximate:
    // each shard's cache starts with only warmup-deep history, so
    // compulsory misses repeat per shard. The drift must stay
    // within the documented bound.
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.1);

    TimingSim::Config tcfg;
    tcfg.useICache = true;
    TimedRun serial = timedRun(x, m, tcfg);

    support::ThreadPool pool(4);
    ShardOptions sopts;
    sopts.interval = 64 * 1024;
    sopts.pool = &pool;
    sopts.timing = tcfg;
    ShardedRun sr = runSharded(x, m, sopts);

    ASSERT_GE(sr.stats.shards, 2u);
    EXPECT_GE(sr.cycles, serial.cycles);  // misses only add cycles
    uint64_t lines = tcfg.icache.bytes / tcfg.icache.lineBytes;
    uint64_t bound = uint64_t(sr.stats.shards) *
                     (lines + sopts.warmup) *
                     tcfg.icacheMissPenalty;
    EXPECT_LE(sr.cycles - serial.cycles, bound);
    // In practice far tighter; keep a regression tripwire at 1%.
    EXPECT_LE(double(sr.cycles - serial.cycles),
              0.01 * double(serial.cycles));
}

} // namespace
} // namespace eel::sim
