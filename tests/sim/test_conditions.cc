/**
 * @file
 * Parameterized coverage of every SPARC branch condition: each of
 * the 16 Bicc conditions is checked against subcc-produced flags for
 * a matrix of operand pairs, and each of the 16 Fbfcc conditions
 * against fcmps outcomes (<, ==, >, unordered).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/sim/emulator.hh"

namespace eel::sim {
namespace {

namespace b = isa::build;
using isa::Op;
namespace rn = isa::reg;

/** Run: cmp(a, b); b<cond> taken? -> exit code 1/0. */
bool
branchTaken(uint8_t cond_code, int32_t a, int32_t bval)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::o1, a));
    push(b::movi(rn::o2, bval));
    push(b::cmp(rn::o1, rn::o2));
    push(b::bicc(cond_code, 3));
    push(b::nop());
    push(b::movi(rn::o0, 0));  // fallthrough
    push(b::movi(rn::o0, 1));  // target
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    Emulator e(x);
    RunResult r = e.run();
    EXPECT_TRUE(r.exited);
    // Careful: the fallthrough path also runs the target instruction
    // afterwards, so fallthrough ends with %o0 == 1 too. Distinguish
    // by instruction count instead.
    return r.instructions == 7;  // taken path skips one movi
}

/** Expected outcome computed from the V8 definition. */
bool
expectTaken(uint8_t c, int32_t a, int32_t bv)
{
    uint32_t ua = static_cast<uint32_t>(a);
    uint32_t ub = static_cast<uint32_t>(bv);
    uint32_t r = ua - ub;
    bool n = r >> 31;
    bool z = r == 0;
    bool v = ((ua ^ ub) & (ua ^ r)) >> 31;
    bool cy = ua < ub;
    using namespace isa::cond;
    switch (c) {
      case isa::cond::a: return true;
      case isa::cond::n: return false;
      case e: return z;
      case ne: return !z;
      case l: return n != v;
      case ge: return n == v;
      case le: return z || (n != v);
      case g: return !(z || (n != v));
      case leu: return cy || z;
      case gu: return !(cy || z);
      case cs: return cy;
      case cc: return !cy;
      case neg: return n;
      case pos: return !n;
      case vs: return v;
      case vc: return !v;
    }
    return false;
}

class IccConditions : public ::testing::TestWithParam<unsigned>
{};

TEST_P(IccConditions, MatchesV8Semantics)
{
    uint8_t c = static_cast<uint8_t>(GetParam());
    // Values spanning sign/overflow/carry corners (simm13 range).
    const int32_t vals[] = {0, 1, -1, 5, -5, 2047, -2048, 4095,
                            -4096};
    for (int32_t a : vals)
        for (int32_t bv : vals)
            EXPECT_EQ(branchTaken(c, a, bv), expectTaken(c, a, bv))
                << "cond " << isa::condName(c) << " a=" << a
                << " b=" << bv;
}

INSTANTIATE_TEST_SUITE_P(
    All, IccConditions, ::testing::Range(0u, 16u),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return "b" + std::string(isa::condName(
                         static_cast<uint8_t>(info.param)));
    });

/** fcc outcome for a pair: 0 E, 1 L, 2 G, 3 U. */
bool
fbranchTaken(uint8_t cond_code, float a, float bval)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::sethi(rn::l0, exe::dataBase));
    push(b::memi(Op::Ldf, 0, rn::l0, 0));
    push(b::memi(Op::Ldf, 1, rn::l0, 4));
    push(b::fcmp(Op::Fcmps, 0, 1));
    push(b::nop());
    push(b::fbfcc(cond_code, 3));
    push(b::nop());
    push(b::movi(rn::o0, 0));
    push(b::movi(rn::o0, 1));
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    auto pushf = [&](float v) {
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        for (int k = 3; k >= 0; --k)
            x.data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
    };
    pushf(a);
    pushf(bval);
    Emulator e(x);
    RunResult r = e.run();
    EXPECT_TRUE(r.exited);
    return r.instructions == 9;  // taken path skips one movi
}

bool
fexpectTaken(uint8_t c, float a, float bv)
{
    bool u = a != a || bv != bv;
    bool l = !u && a < bv;
    bool g = !u && a > bv;
    bool e = !u && a == bv;
    using namespace isa::fcond;
    switch (c) {
      case isa::fcond::a: return true;
      case isa::fcond::n: return false;
      case isa::fcond::u: return u;
      case isa::fcond::g: return g;
      case ug: return u || g;
      case isa::fcond::l: return l;
      case ul: return u || l;
      case lg: return l || g;
      case ne: return l || g || u;
      case isa::fcond::e: return e;
      case ue: return e || u;
      case ge: return e || g;
      case uge: return e || g || u;
      case le: return e || l;
      case ule: return e || l || u;
      case o: return e || l || g;
    }
    return false;
}

class FccConditions : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FccConditions, MatchesV8Semantics)
{
    uint8_t c = static_cast<uint8_t>(GetParam());
    const float nan = std::numeric_limits<float>::quiet_NaN();
    struct Pair
    {
        float a, b;
    };
    const Pair pairs[] = {{1.0f, 2.0f}, {2.0f, 1.0f}, {1.0f, 1.0f},
                          {nan, 1.0f},  {1.0f, nan},  {nan, nan},
                          {-0.0f, 0.0f}};
    for (const Pair &p : pairs)
        EXPECT_EQ(fbranchTaken(c, p.a, p.b),
                  fexpectTaken(c, p.a, p.b))
            << "cond fb" << isa::fcondName(c) << " a=" << p.a
            << " b=" << p.b;
}

INSTANTIATE_TEST_SUITE_P(
    All, FccConditions, ::testing::Range(0u, 16u),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return "fb" + std::string(isa::fcondName(
                          static_cast<uint8_t>(info.param)));
    });

} // namespace
} // namespace eel::sim
