#include <gtest/gtest.h>

#include <cstring>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/sim/emulator.hh"
#include "src/support/logging.hh"

namespace eel::sim {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

/** Assemble a little program ending with ta 0 and run it. */
struct Prog
{
    exe::Executable x;

    Prog()
    {
        x.entry = exe::textBase;
    }
    void
    push(isa::Instruction in)
    {
        x.text.push_back(isa::encode(in));
    }
    void
    exit0()
    {
        push(b::ta(isa::trap::exit_prog));
        push(b::retl());
        push(b::nop());
    }
    Emulator
    makeEmu()
    {
        x.symbols.push_back(exe::Symbol{
            "main", exe::textBase,
            static_cast<uint32_t>(4 * x.text.size()), true});
        return Emulator(x);
    }
};

TEST(Emulator, ArithmeticAndExitCode)
{
    Prog p;
    p.push(b::movi(rn::o0, 30));
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 12));
    p.exit0();
    Emulator e = p.makeEmu();
    RunResult r = e.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Emulator, G0ReadsZeroIgnoresWrites)
{
    Prog p;
    p.push(b::movi(rn::g0, 99));
    p.push(b::rri(Op::Add, rn::o0, rn::g0, 7));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 7);
}

TEST(Emulator, ConditionCodesSub)
{
    // 5 - 5 -> Z; bne not taken, be taken.
    Prog p;
    p.push(b::movi(rn::o1, 5));
    p.push(b::cmpi(rn::o1, 5));
    p.push(b::bicc(cond::e, 3));    // -> mov 1
    p.push(b::nop());               // delay
    p.push(b::movi(rn::o0, 0));     // skipped
    p.push(b::movi(rn::o0, 1));     // target
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1);
}

TEST(Emulator, SignedComparisons)
{
    // -3 < 2 signed (bl), but not unsigned (blu would differ).
    Prog p;
    p.push(b::movi(rn::o1, -3));
    p.push(b::cmpi(rn::o1, 2));
    p.push(b::bicc(cond::l, 3));
    p.push(b::nop());
    p.push(b::movi(rn::o0, 0));
    p.push(b::movi(rn::o0, 1));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1);
}

TEST(Emulator, UnsignedComparisons)
{
    // 0xfffffffd > 2 unsigned: bgu taken.
    Prog p;
    p.push(b::movi(rn::o1, -3));
    p.push(b::cmpi(rn::o1, 2));
    p.push(b::bicc(cond::gu, 3));
    p.push(b::nop());
    p.push(b::movi(rn::o0, 0));
    p.push(b::movi(rn::o0, 1));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1);
}

TEST(Emulator, DelaySlotExecutesOnTakenBranch)
{
    Prog p;
    p.push(b::movi(rn::o0, 0));
    p.push(b::ba(3));
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 5));  // delay: executes
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 100));  // skipped
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 1));  // target
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 6);
}

TEST(Emulator, AnnulledUntakenBranchSkipsDelay)
{
    Prog p;
    p.push(b::movi(rn::o0, 0));
    p.push(b::cmpi(rn::g0, 1));                   // 0 != 1
    p.push(b::bicc(cond::e, 3, /*annul=*/true));  // untaken, annul
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 100)); // annulled
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 1));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1);
}

TEST(Emulator, BaAnnulAlwaysSkipsDelay)
{
    Prog p;
    p.push(b::movi(rn::o0, 0));
    p.push(b::bicc(cond::a, 2, /*annul=*/true));
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 100)); // annulled
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 3));   // target
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 3);
}

TEST(Emulator, CallAndReturnLeaf)
{
    Prog p;
    // main: call f; delay nop; exit with %o0.
    p.push(b::call(5));                 // f at +5 insts
    p.push(b::nop());
    p.exit0();                          // 3 instructions
    // f (leaf): o0 = 11; retl.
    p.push(b::movi(rn::o0, 11));
    p.push(b::retl());
    p.push(b::nop());
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 11);
}

TEST(Emulator, RegisterWindows)
{
    Prog p;
    // main: o0=5; call f; exit(o0).
    p.push(b::movi(rn::o0, 5));
    p.push(b::call(5));
    p.push(b::nop());
    p.exit0();
    // f: save; i0 += 2 -> restore into caller's o0.
    p.push(b::save(96));
    p.push(b::rri(Op::Add, rn::l5, rn::i0, 2));
    p.push(b::ret());
    p.push(b::rri(Op::Restore, rn::o0, rn::l5, 0));
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 7);
}

TEST(Emulator, WindowOverflowDetected)
{
    // Infinite recursion must hit the window-depth wall, not loop.
    Prog p;
    p.push(b::save(96));
    p.push(b::call(-1));
    p.push(b::nop());
    Emulator::Config cfg;
    cfg.windows = 8;
    p.x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * p.x.text.size()), true});
    Emulator e(p.x, cfg);
    EXPECT_THROW(e.run(), FatalError);
}

TEST(Emulator, MemoryBigEndian)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::memi(Op::Ld, rn::o0, rn::l0, 0));
    p.exit0();
    p.x.data = {0x12, 0x34, 0x56, 0x78};
    Emulator e = p.makeEmu();
    EXPECT_EQ(static_cast<uint32_t>(e.run().exitCode), 0x12345678u);
}

TEST(Emulator, ByteAndHalfLoads)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::memi(Op::Ldsb, rn::o1, rn::l0, 0));  // 0xfe -> -2
    p.push(b::memi(Op::Ldub, rn::o2, rn::l0, 0));  // 0xfe -> 254
    p.push(b::memi(Op::Ldsh, rn::o3, rn::l0, 2));  // 0xff00 -> -256
    p.push(b::rrr(Op::Add, rn::o0, rn::o1, rn::o2));
    p.push(b::rrr(Op::Add, rn::o0, rn::o0, rn::o3));
    p.exit0();
    p.x.data = {0xfe, 0x00, 0xff, 0x00};
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, -2 + 254 - 256);
}

TEST(Emulator, StoreLoadRoundTrip)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::movi(rn::o1, 1234));
    p.push(b::memi(Op::St, rn::o1, rn::l0, 8));
    p.push(b::memi(Op::Ld, rn::o0, rn::l0, 8));
    p.exit0();
    p.x.data.resize(16, 0);
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1234);
}

TEST(Emulator, DoubleWordMemory)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::movi(rn::o2, 7));    // o2/o3 must be an even pair: use o2=10
    p.push(b::movi(rn::o3, 9));
    p.push(b::memi(Op::Std, rn::o2, rn::l0, 8));
    p.push(b::memi(Op::Ldd, rn::o4, rn::l0, 8));
    p.push(b::rrr(Op::Add, rn::o0, rn::o4, rn::o5));
    p.exit0();
    p.x.data.resize(16, 0);
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 16);
}

TEST(Emulator, MisalignedAccessFatal)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::memi(Op::Ld, rn::o0, rn::l0, 2));
    p.exit0();
    p.x.data.resize(16, 0);
    Emulator e = p.makeEmu();
    EXPECT_THROW(e.run(), FatalError);
}

TEST(Emulator, OutOfRangeAccessFatal)
{
    Prog p;
    p.push(b::movi(rn::l0, 0x100));  // nowhere
    p.push(b::memi(Op::Ld, rn::o0, rn::l0, 0));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_THROW(e.run(), FatalError);
}

TEST(Emulator, MulDiv)
{
    Prog p;
    p.push(b::movi(rn::o1, 7));
    p.push(b::movi(rn::o2, 6));
    p.push(b::rrr(Op::Smul, rn::o3, rn::o1, rn::o2));  // 42, Y=0
    p.push(b::rri(Op::Wry, rn::g0, rn::g0, 0));        // Y = 0
    p.push(b::rri(Op::Udiv, rn::o0, rn::o3, 6));       // 7
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 7);
}

TEST(Emulator, MulSetsY)
{
    Prog p;
    p.push(b::sethi(rn::o1, 0x40000000));
    p.push(b::rrr(Op::Umul, rn::o2, rn::o1, rn::o1));
    p.push(b::rrr(Op::Rdy, rn::o0, rn::g0, rn::g0));
    p.exit0();
    Emulator e = p.makeEmu();
    // 0x40000000^2 = 2^60: high word = 0x10000000.
    EXPECT_EQ(static_cast<uint32_t>(e.run().exitCode), 0x10000000u);
}

TEST(Emulator, DivideByZeroFatal)
{
    Prog p;
    p.push(b::rri(Op::Udiv, rn::o0, rn::o1, 0));
    p.exit0();
    Emulator e = p.makeEmu();
    EXPECT_THROW(e.run(), FatalError);
}

TEST(Emulator, FloatingPoint)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::memi(Op::Lddf, 0, rn::l0, 0));   // 1.5
    p.push(b::memi(Op::Lddf, 2, rn::l0, 8));   // 2.25
    p.push(b::fp3(Op::Faddd, 4, 0, 2));        // 3.75
    p.push(b::fp3(Op::Fmuld, 6, 4, 2));        // 8.4375
    p.push(b::fp2(Op::Fdtoi, 8, 6));           // 8
    p.push(b::memi(Op::Stf, 8, rn::l0, 16));
    p.push(b::memi(Op::Ld, rn::o0, rn::l0, 16));
    p.exit0();
    auto pushd = [&](double v) {
        uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, 8);
        for (int k = 7; k >= 0; --k)
            p.x.data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
    };
    pushd(1.5);
    pushd(2.25);
    p.x.data.resize(24, 0);
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 8);
}

TEST(Emulator, FpCompareAndBranch)
{
    Prog p;
    p.push(b::sethi(rn::l0, exe::dataBase));
    p.push(b::memi(Op::Ldf, 0, rn::l0, 0));
    p.push(b::memi(Op::Ldf, 1, rn::l0, 4));
    p.push(b::fcmp(Op::Fcmps, 0, 1));
    p.push(b::nop());  // V8 fcmp/fbfcc separation
    p.push(b::fbfcc(isa::fcond::l, 3));
    p.push(b::nop());
    p.push(b::movi(rn::o0, 0));
    p.push(b::movi(rn::o0, 1));
    p.exit0();
    auto pushf = [&](float v) {
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        for (int k = 3; k >= 0; --k)
            p.x.data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
    };
    pushf(1.0f);
    pushf(2.0f);
    Emulator e = p.makeEmu();
    EXPECT_EQ(e.run().exitCode, 1);  // 1.0 < 2.0
}

TEST(Emulator, TrapOutput)
{
    Prog p;
    p.push(b::movi(rn::o0, -7));
    p.push(b::ta(isa::trap::put_int));
    p.push(b::movi(rn::o0, 'A'));
    p.push(b::ta(isa::trap::put_char));
    p.push(b::movi(rn::o0, 0));
    p.exit0();
    Emulator e = p.makeEmu();
    RunResult r = e.run();
    EXPECT_EQ(r.output, "-7\nA");
}

TEST(Emulator, InstructionLimit)
{
    Prog p;
    p.push(b::ba(0));  // tight infinite loop
    p.push(b::nop());
    p.x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * p.x.text.size()), true});
    Emulator::Config cfg;
    cfg.maxInstructions = 1000;
    Emulator e(p.x, cfg);
    RunResult r = e.run();
    EXPECT_FALSE(r.exited);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(Emulator, TraceSinkSeesRetiredStream)
{
    struct Counter : TraceSink
    {
        uint64_t n = 0;
        void retire(uint32_t, const isa::Instruction &) override
        {
            ++n;
        }
    };
    Prog p;
    p.push(b::movi(rn::o0, 0));
    p.push(b::rri(Op::Add, rn::o0, rn::o0, 1));
    p.exit0();
    Emulator e = p.makeEmu();
    Counter c;
    RunResult r = e.run(&c);
    EXPECT_EQ(c.n, r.instructions);
    EXPECT_EQ(c.n, 3u);  // movi, add, ta
}

} // namespace
} // namespace eel::sim
