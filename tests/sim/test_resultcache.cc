/**
 * @file
 * Correctness gates for the content-addressed result cache: a warm
 * run must be byte-identical to a cold one, a one-byte edit to a hot
 * text page must invalidate exactly the shards that execute that
 * page, and the disk tier must survive a process restart — while any
 * corrupt, truncated, or wrong-version cache file is rejected
 * cleanly and treated as a cold lookup, never trusted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/isa/builder.hh"
#include "src/machine/model.hh"
#include "src/sim/resultcache.hh"
#include "src/sim/shard.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::sim {
namespace {

namespace fs = std::filesystem;

exe::Executable
makeWorkload(double scale)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = scale;
    gopts.machine = &m;
    return workload::generate(specs[0], gopts);
}

std::vector<uint8_t>
leaderMap(const exe::Executable &x)
{
    std::vector<uint8_t> leader(x.text.size(), 0);
    for (const auto &r : edit::buildRoutines(x))
        for (const auto &blk : r.blocks)
            leader[(blk.startAddr - exe::textBase) / 4] = 1;
    return leader;
}

/** Full retired-pc trace of the functional run, for computing which
 *  shards touch which text pages (replay touch = own retires plus
 *  the recorded warmup pcs, which are the trace just before the
 *  cut). */
std::vector<uint32_t>
pcTrace(const exe::Executable &x)
{
    struct Sink final
    {
        std::vector<uint32_t> pcs;
        void
        retire(uint32_t pc, const isa::Instruction &)
        {
            pcs.push_back(pc);
        }
    } sink;
    Emulator emu(x);
    emu.run(sink);
    return sink.pcs;
}

/** The set of shards whose replay touches `page`, mirroring the
 *  replay's marking: shard k marks its own retires plus its warmup
 *  prefix (the last `warmup` retires before its cut). */
std::set<size_t>
shardsTouchingPage(const std::vector<uint32_t> &trace,
                   uint64_t interval, unsigned warmup, uint32_t page)
{
    std::set<size_t> touching;
    size_t shards =
        trace.size() % interval ? trace.size() / interval + 1
                                : std::max<size_t>(
                                      1, trace.size() / interval);
    for (size_t k = 0; k < shards; ++k) {
        uint64_t start = k * interval;
        uint64_t lo = k == 0 ? 0
                             : (start > warmup ? start - warmup : 0);
        uint64_t hi = std::min<uint64_t>(trace.size(),
                                         start + interval);
        for (uint64_t i = lo; i < hi; ++i) {
            if ((trace[i] - exe::textBase) / exe::Chunk::bytes ==
                page) {
                touching.insert(k);
                break;
            }
        }
    }
    return touching;
}

void
expectRunsEqual(const ShardedRun &a, const ShardedRun &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.exitCode, b.result.exitCode);
    EXPECT_EQ(a.result.output, b.result.output);
    EXPECT_EQ(a.issueHistogram, b.issueHistogram);
    EXPECT_TRUE(a.stallBreakdown == b.stallBreakdown);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.leaderRetires, b.leaderRetires);
    EXPECT_EQ(a.blocksRetired, b.blocksRetired);
    EXPECT_TRUE(a.finalState.equalTo(b.finalState, false));
}

/** A scratch directory under /tmp, clean at entry. */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    return dir;
}

struct Fixture
{
    const machine::MachineModel &model =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = makeWorkload(0.05);
    std::vector<uint8_t> leader = leaderMap(x);
    support::ThreadPool pool{4};

    ShardOptions
    opts(ResultCache *cache)
    {
        ShardOptions o;
        o.interval = 2000;
        o.pool = &pool;
        o.blockLeader = &leader;
        o.timing.collectStalls = true;
        o.cache = cache;
        return o;
    }
};

TEST(ResultCache, WarmRunHitsRunTier)
{
    Fixture f;
    ResultCache cache;

    ShardedRun cold = runSharded(f.x, f.model, f.opts(&cache));
    ASSERT_TRUE(cold.result.exited);
    EXPECT_FALSE(cold.stats.cachedRun);
    EXPECT_EQ(cold.stats.cachedShards, 0u);
    EXPECT_GE(cold.stats.shards, 4u);
    EXPECT_GT(cache.stats().stores, 0u);

    ShardedRun warm = runSharded(f.x, f.model, f.opts(&cache));
    EXPECT_TRUE(warm.stats.cachedRun);
    EXPECT_EQ(warm.stats.shards, cold.stats.shards);
    expectRunsEqual(warm, cold);

    ResultCache::Stats st = cache.stats();
    EXPECT_GE(st.runHits, 1u);
    EXPECT_EQ(st.hits, st.runHits + st.shardHits + st.timedHits);
    EXPECT_EQ(st.invalidations, 0u);

    // A run without the cache matches too (the cache changed
    // nothing about the cold path).
    ShardedRun plain = runSharded(f.x, f.model, f.opts(nullptr));
    expectRunsEqual(plain, cold);
}

TEST(ResultCache, ConfigChangeMissesCleanly)
{
    Fixture f;
    ResultCache cache;
    ShardedRun cold = runSharded(f.x, f.model, f.opts(&cache));

    // A different machine model is a different fingerprint: a plain
    // miss (no candidates, so no invalidation), and the results are
    // the other model's own.
    const machine::MachineModel &other =
        machine::MachineModel::builtin("supersparc");
    ShardedRun otherCold = runSharded(f.x, other, f.opts(&cache));
    EXPECT_FALSE(otherCold.stats.cachedRun);
    EXPECT_EQ(otherCold.stats.cachedShards, 0u);
    EXPECT_EQ(cache.stats().invalidations, 0u);
    EXPECT_NE(otherCold.cycles, cold.cycles);

    // And each key now warm-hits independently.
    EXPECT_TRUE(
        runSharded(f.x, f.model, f.opts(&cache)).stats.cachedRun);
    EXPECT_TRUE(
        runSharded(f.x, other, f.opts(&cache)).stats.cachedRun);
}

/**
 * Two phases on two text pages: a counted loop at the top of page 0,
 * then a counted loop at the top of page 1 (the gap is nop padding
 * that never executes). The early shards therefore execute only page
 * 0 and the late shards only page 1, so a page edit has a strict
 * subset of shards to invalidate.
 */
exe::Executable
phasedProgram()
{
    namespace b = isa::build;
    namespace rn = isa::reg;
    namespace cond = isa::cond;
    exe::Executable x;
    x.entry = exe::textBase;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::o1, 4000));                      // w0
    push(b::rri(isa::Op::Subcc, rn::o1, rn::o1, 1));  // w1: A loop
    push(b::bicc(cond::ne, -1));                      // w2 -> w1
    push(b::nop());                                   // w3 delay
    push(b::movi(rn::o2, 1200));                      // w4
    push(b::ba(295));                                 // w5 -> w300
    push(b::nop());                                   // w6 delay
    while (x.text.size() < 300)
        push(b::nop());                               // never runs
    push(b::nop());                                   // w300: page 1
    push(b::rri(isa::Op::Subcc, rn::o2, rn::o2, 1));  // w301: B loop
    push(b::bicc(cond::ne, -2));                      // w302 -> w300
    push(b::nop());                                   // w303 delay
    push(b::movi(rn::o0, 0));
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    return x;
}

TEST(ResultCache, HotPageEditInvalidatesExactlyTouchingShards)
{
    const machine::MachineModel &model =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = phasedProgram();
    std::vector<uint8_t> leader = leaderMap(x);
    support::ThreadPool pool(4);
    ResultCache cache;
    ShardOptions o;
    o.interval = 500;
    o.pool = &pool;
    o.blockLeader = &leader;
    o.timing.collectStalls = true;
    o.cache = &cache;
    ShardOptions uncached = o;
    uncached.cache = nullptr;

    ShardedRun cold = runSharded(x, model, o);
    ASSERT_TRUE(cold.result.exited);
    // The touch accounting below assumes every shard was satisfied
    // by its warmup replay (a stitch resim replays without warmup).
    ASSERT_EQ(cold.stats.resims, 0u);
    size_t shards = cold.stats.shards;
    ASSERT_GE(shards, 8u);

    // The hot nop at the head of the page-1 loop: rewriting its
    // imm22 from 0 to 1 is a one-byte edit that still writes the
    // hardwired-zero %g0. Architecturally inert, so the functional
    // capture — and with it every shard key — is unchanged, and
    // only the page-hash manifests differ.
    const uint32_t editWord = 300;
    ASSERT_EQ(x.text[editWord], 0x01000000u);
    std::vector<uint32_t> trace = pcTrace(x);
    ASSERT_EQ(trace.size(), cold.result.instructions);
    std::set<size_t> touching = shardsTouchingPage(
        trace, o.interval, o.warmup,
        editWord * 4 / exe::Chunk::bytes);
    ASSERT_FALSE(touching.empty());
    ASSERT_LT(touching.size(), shards);

    exe::Executable edited = x;
    edited.text.set(editWord, 0x01000001u);

    ResultCache::Stats before = cache.stats();
    ShardedRun warm = runSharded(edited, model, o);
    ResultCache::Stats after = cache.stats();

    // The whole-image run key misses (one page changed), the shard
    // tier reuses every shard that never executes the edited page,
    // and each shard that does counts exactly one invalidation.
    EXPECT_FALSE(warm.stats.cachedRun);
    EXPECT_EQ(warm.stats.shards, shards);
    EXPECT_EQ(warm.stats.cachedShards, shards - touching.size());
    EXPECT_EQ(after.invalidations - before.invalidations,
              touching.size());

    // The mixed cached/re-run merge is byte-identical to a fresh
    // cold run of the edited image.
    ShardedRun reference = runSharded(edited, model, uncached);
    expectRunsEqual(warm, reference);

    // The edit was inert, so it is also byte-identical to the
    // original image's run.
    expectRunsEqual(warm, cold);

    // Running the edited image again now hits its own run-tier
    // entry, stored by the mixed run.
    EXPECT_TRUE(runSharded(edited, model, o).stats.cachedRun);
}

TEST(ResultCache, DiskTierSurvivesReconstruction)
{
    Fixture f;
    fs::path dir = scratchDir("eel_rescache_disk");

    ShardedRun cold;
    {
        ResultCache cache({dir.string(), nullptr});
        cold = runSharded(f.x, f.model, f.opts(&cache));
        ASSERT_TRUE(cold.result.exited);
        EXPECT_GT(cache.stats().stores, 0u);
    }
    ASSERT_TRUE(fs::exists(dir));
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir))
        files += e.path().extension() == ".rc";
    EXPECT_GT(files, 0u);

    // A fresh instance — a new process, as far as the cache can
    // tell — loads the tier and serves the run warm.
    ResultCache reborn({dir.string(), nullptr});
    ResultCache::Stats st = reborn.stats();
    EXPECT_EQ(st.diskEntriesLoaded, files);
    EXPECT_EQ(st.diskRejects, 0u);

    ShardedRun warm = runSharded(f.x, f.model, f.opts(&reborn));
    EXPECT_TRUE(warm.stats.cachedRun);
    EXPECT_GT(reborn.stats().diskHits, 0u);
    expectRunsEqual(warm, cold);

    fs::remove_all(dir);
}

TEST(ResultCache, CorruptDiskFilesRejectedAndTreatedCold)
{
    Fixture f;
    fs::path dir = scratchDir("eel_rescache_corrupt");

    ShardedRun cold;
    {
        ResultCache cache({dir.string(), nullptr});
        cold = runSharded(f.x, f.model, f.opts(&cache));
    }

    // Damage every entry, rotating through the failure modes the
    // loader must reject: truncation to a stub, bad magic, a future
    // version, a flipped payload byte (checksum mismatch), and a
    // payload cut short (length mismatch).
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() != ".rc")
            continue;
        std::string bytes;
        {
            std::ifstream in(e.path(), std::ios::binary);
            bytes.assign(std::istreambuf_iterator<char>(in), {});
        }
        ASSERT_GT(bytes.size(), 30u);
        switch (files % 5) {
          case 0:
            bytes.resize(3);
            break;
          case 1:
            bytes[0] = 'X';
            break;
          case 2:
            bytes[6] = char(0xff);  // version field
            break;
          case 3:
            bytes[bytes.size() / 2] ^= 0x40;
            break;
          case 4:
            bytes.resize(bytes.size() - 5);
            break;
        }
        std::ofstream out(e.path(),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        ++files;
    }
    ASSERT_GT(files, 0u);
    // Plus a file that was never a cache entry at all.
    std::ofstream(dir / "alien.rc") << "not a cache entry";

    ResultCache reborn({dir.string(), nullptr});
    ResultCache::Stats st = reborn.stats();
    EXPECT_EQ(st.diskEntriesLoaded, 0u);
    EXPECT_EQ(st.diskRejects, files + 1);

    // Cold but correct: corruption costs time, never poisons output.
    ShardedRun rerun = runSharded(f.x, f.model, f.opts(&reborn));
    EXPECT_FALSE(rerun.stats.cachedRun);
    EXPECT_EQ(rerun.stats.cachedShards, 0u);
    expectRunsEqual(rerun, cold);

    fs::remove_all(dir);
}

TEST(ResultCache, TimedTierRoundtripsThroughDisk)
{
    Fixture f;
    fs::path dir = scratchDir("eel_rescache_timed");

    ResultCache::TimedValue v;
    v.instructions = 12345;
    v.cycles = 67890;
    v.exitCode = 7;
    v.exited = true;
    v.output = std::string("hello\0world", 11);

    ResultCache::Key key;
    {
        ResultCache cache({dir.string(), nullptr});
        key = cache.timedKey(f.x, f.model, {}, {});
        ResultCache::TimedValue out;
        EXPECT_FALSE(cache.lookupTimed(key, out));
        cache.storeTimed(key, v);
        ASSERT_TRUE(cache.lookupTimed(key, out));
        EXPECT_EQ(out.output, v.output);

        // The key covers the image: an edited text page misses.
        exe::Executable edited = f.x;
        edited.text.set(0, f.x.text[0] ^ 1u);
        EXPECT_FALSE(cache.lookupTimed(
            cache.timedKey(edited, f.model, {}, {}), out));
        // And so does a different timing config.
        TimingSim::Config icfg;
        icfg.useICache = true;
        EXPECT_FALSE(cache.lookupTimed(
            cache.timedKey(f.x, f.model, icfg, {}), out));
    }

    ResultCache reborn({dir.string(), nullptr});
    ResultCache::TimedValue out;
    ASSERT_TRUE(reborn.lookupTimed(key, out));
    EXPECT_EQ(out.instructions, v.instructions);
    EXPECT_EQ(out.cycles, v.cycles);
    EXPECT_EQ(out.exitCode, v.exitCode);
    EXPECT_EQ(out.exited, v.exited);
    EXPECT_EQ(out.output, v.output);
    EXPECT_EQ(reborn.stats().diskHits, 1u);

    fs::remove_all(dir);
}

} // namespace
} // namespace eel::sim
