#include <gtest/gtest.h>

#include "src/sim/timing.hh"
#include "src/support/logging.hh"

namespace eel::sim {
namespace {

TEST(ICache, ColdMissesThenHits)
{
    ICache c(ICache::Config{1024, 32, 1});
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(4));
    EXPECT_FALSE(c.access(28));
    EXPECT_TRUE(c.access(32));
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.accesses(), 4u);
}

TEST(ICache, DirectMappedConflict)
{
    ICache c(ICache::Config{1024, 32, 1});
    c.access(0);
    c.access(1024);  // same set, different tag: evicts
    EXPECT_TRUE(c.access(0));
    EXPECT_EQ(c.misses(), 3u);
}

TEST(ICache, AssociativityAvoidsConflict)
{
    ICache c(ICache::Config{1024, 32, 2});
    c.access(0);
    c.access(512);  // 2-way: both fit in set 0
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(512));
    EXPECT_EQ(c.misses(), 2u);
}

TEST(ICache, LruReplacement)
{
    ICache c(ICache::Config{64, 32, 2});  // one set, two ways
    c.access(0);
    c.access(64);
    c.access(0);      // touch 0: 64 becomes LRU
    c.access(128);    // evicts 64
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(64));
}

TEST(ICache, MissRate)
{
    ICache c(ICache::Config{1024, 32, 1});
    // Working set fits: only compulsory misses.
    for (int pass = 0; pass < 10; ++pass)
        for (uint32_t a = 0; a < 1024; a += 4)
            c.access(a);
    EXPECT_EQ(c.misses(), 32u);
    EXPECT_NEAR(c.missRate(), 32.0 / (10 * 256), 1e-9);
}

TEST(ICache, BadGeometryRejected)
{
    EXPECT_THROW(ICache(ICache::Config{1000, 32, 1}), FatalError);
    EXPECT_THROW(ICache(ICache::Config{1024, 0, 1}), FatalError);
}

} // namespace
} // namespace eel::sim
