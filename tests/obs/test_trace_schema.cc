/**
 * @file
 * Schema check for the --trace export: runs a scaled-down table with
 * batch rewriting and sharded simulation under tracing, then parses
 * the written file with a strict little JSON parser and validates
 * the Chrome trace_event contract Perfetto relies on — well-formed
 * JSON, every pid/tid named by metadata events, timestamps monotone
 * within each thread — plus the presence of the per-worker span
 * families (batch.stamp.*, shard.replay.*) the ISSUE's acceptance
 * criteria call out. Also checks the metrics registry's JSON
 * fragment parses as an object of numbers. The strict parser lives
 * in tests/json_dom.hh, shared with the service-telemetry tests.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "tests/json_dom.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/workload/spec.hh"

namespace eel {
namespace {

using testjson::JParser;
using testjson::JValue;

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    std::string text;
    if (!f)
        return text;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

TEST(TraceSchema, BenchTraceLoadsAndIsNamedAndMonotone)
{
    obs::enableTracing();
    obs::setThreadName("main");

    // One benchmark, scaled down, through both orchestration modes
    // the acceptance criteria name: batch rewriting (batch.stamp.*
    // spans) and sharded simulation (shard.replay.* spans) on a
    // multi-worker pool.
    bench::TableOptions topts;
    topts.scale = 0.05;
    topts.jobs = 4;
    topts.batch = true;
    topts.shardInterval = 2000;
    topts.only = workload::spec95(topts.machine)[0].name;
    std::vector<bench::Row> rows = bench::runTable(topts);
    ASSERT_EQ(rows.size(), 1u);

    std::string path = ::testing::TempDir() + "trace_schema.json";
    ASSERT_TRUE(obs::writeTrace(path));
    obs::resetTrace();

    std::string text = readFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty());

    JParser parser(text);
    JValue root = parser.parse();
    ASSERT_FALSE(parser.failed) << "trace is not well-formed JSON";
    ASSERT_EQ(root.kind, JValue::Obj);
    const JValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JValue::Arr);
    ASSERT_FALSE(events->arr.empty());

    std::set<double> pids, tids, namedPids, namedTids;
    std::map<double, double> lastTs;  // tid -> last seen ts
    std::set<std::string> spanNames;
    for (const JValue &ev : events->arr) {
        ASSERT_EQ(ev.kind, JValue::Obj);
        const JValue *ph = ev.find("ph");
        const JValue *pid = ev.find("pid");
        const JValue *tid = ev.find("tid");
        const JValue *name = ev.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(tid, nullptr);
        ASSERT_NE(name, nullptr);
        ASSERT_EQ(pid->kind, JValue::Num);
        ASSERT_EQ(tid->kind, JValue::Num);

        if (ph->str == "M") {
            if (name->str == "process_name")
                namedPids.insert(pid->num);
            else if (name->str == "thread_name")
                namedTids.insert(tid->num);
            const JValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            ASSERT_NE(args->find("name"), nullptr);
            continue;
        }

        ASSERT_TRUE(ph->str == "X" || ph->str == "i")
            << "unexpected phase " << ph->str;
        pids.insert(pid->num);
        tids.insert(tid->num);
        const JValue *ts = ev.find("ts");
        ASSERT_NE(ts, nullptr);
        ASSERT_EQ(ts->kind, JValue::Num);
        if (ph->str == "X") {
            const JValue *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr);
            ASSERT_GE(dur->num, 0.0);
            spanNames.insert(name->str);
        }
        auto [it, fresh] = lastTs.emplace(tid->num, ts->num);
        if (!fresh) {
            EXPECT_LE(it->second, ts->num)
                << "timestamps not monotone within tid " << tid->num;
            it->second = ts->num;
        }
    }

    // Every process and thread that emitted events is named.
    for (double pid : pids)
        EXPECT_TRUE(namedPids.count(pid)) << "unnamed pid " << pid;
    for (double tid : tids)
        EXPECT_TRUE(namedTids.count(tid)) << "unnamed tid " << tid;

    // The per-worker phase spans the acceptance criteria require.
    bool sawStamp = false, sawReplay = false;
    for (const std::string &n : spanNames) {
        sawStamp |= n.rfind("batch.stamp.", 0) == 0;
        sawReplay |= n.rfind("shard.replay.", 0) == 0;
    }
    EXPECT_TRUE(sawStamp) << "no batch.stamp.* span recorded";
    EXPECT_TRUE(sawReplay) << "no shard.replay.* span recorded";
    EXPECT_TRUE(spanNames.count("sim.timedRun") ||
                spanNames.count("shard.capture"))
        << "no simulation-phase span recorded";
}

TEST(TraceSchema, MetricsFragmentParses)
{
    // The bench run above populated the registry; the fragment that
    // perf_pipeline embeds as its "metrics" section must be a JSON
    // object of numbers.
    std::string frag = obs::metricsJson("  ");
    JParser parser(frag);
    JValue v = parser.parse();
    ASSERT_FALSE(parser.failed) << "fragment: [" << frag << "]";
    ASSERT_EQ(v.kind, JValue::Obj);
    for (const auto &[name, val] : v.obj) {
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(val.kind, JValue::Num);
    }
}

} // namespace
} // namespace eel
