/**
 * @file
 * The observability layer's own contract: metric shards merge to
 * exact totals under a contended parallelFor, the EEL_LOG override
 * parses, tracing is off by default and records when enabled — and,
 * most important, the disabled paths are inert: the emulator retires
 * the same instruction stream with tracing on, and the timing
 * simulator counts the same cycles with stall collection on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/machine/model.hh"
#include "src/obs/log.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/sim/emulator.hh"
#include "src/sim/timing.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::obs {
namespace {

exe::Executable
smallWorkload()
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    return workload::generate(workload::spec95("ultrasparc")[0],
                              gopts);
}

uint64_t
metricValue(const char *name)
{
    for (const auto &[n, v] : metricsSnapshot())
        if (n == name)
            return v;
    ADD_FAILURE() << "metric " << name << " not registered";
    return 0;
}

TEST(Metrics, ShardsMergeExactlyUnderParallelFor)
{
    resetMetrics();
    support::ThreadPool pool(4);
    const size_t n = 20000;
    pool.parallelFor(n, [](size_t i) {
        static Metric c("test.counter", MetricKind::Counter);
        static Metric g("test.gauge", MetricKind::MaxGauge);
        c.add();
        g.observe(i + 1);
    });
    // Every increment landed in some thread's shard; the merge must
    // recover the exact total (sum) and peak (max) regardless of how
    // stealing scattered the items.
    EXPECT_EQ(metricValue("test.counter"), n);
    EXPECT_EQ(metricValue("test.gauge"), n);
}

TEST(Metrics, SameNameAliasesOneSlot)
{
    resetMetrics();
    Metric a("test.alias", MetricKind::Counter);
    Metric b("test.alias", MetricKind::Counter);
    a.add(2);
    b.add(3);
    EXPECT_EQ(metricValue("test.alias"), 5u);
}

TEST(Metrics, JsonRendersRegisteredNames)
{
    resetMetrics();
    static Metric c("test.json_metric", MetricKind::Counter);
    c.add(7);
    std::string j = metricsJson("  ");
    EXPECT_NE(j.find("\"test.json_metric\": 7"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(Log, ThresholdAndEnvOverride)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));

    ::setenv("EEL_LOG", "debug", 1);
    reloadLogLevelFromEnv();
    EXPECT_TRUE(logEnabled(LogLevel::Debug));

    ::setenv("EEL_LOG", "silent", 1);
    reloadLogLevelFromEnv();
    EXPECT_FALSE(logEnabled(LogLevel::Error));

    ::unsetenv("EEL_LOG");
    reloadLogLevelFromEnv();  // default Info
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
}

TEST(Trace, OffByDefaultRecordsWhenEnabled)
{
    EXPECT_FALSE(tracingEnabled());
    {
        Span inert("test.never");  // must not crash or record
    }

    enableTracing();
    setThreadName("gtest-main");
    {
        Span s("test.span");
        instant("test.instant", "{\"k\":1}");
    }
    std::string path = ::testing::TempDir() + "eel_obs_trace.json";
    ASSERT_TRUE(writeTrace(path));
    resetTrace();
    EXPECT_FALSE(tracingEnabled());

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"test.span\""), std::string::npos);
    EXPECT_NE(text.find("\"test.instant\""), std::string::npos);
    EXPECT_NE(text.find("\"gtest-main\""), std::string::npos);
}

/** FNV-1a over the retired pc stream: any divergence in what the
 *  emulator executes shows up here. */
struct HashSink final
{
    uint64_t h = 14695981039346656037ull;
    void
    retire(uint32_t pc, const isa::Instruction &)
    {
        h ^= pc;
        h *= 1099511628211ull;
    }
};

TEST(DisabledPath, EmulatorStreamIdenticalUnderTracing)
{
    exe::Executable x = smallWorkload();

    HashSink off;
    sim::Emulator e1(x);
    sim::RunResult r1 = e1.run(off);
    ASSERT_TRUE(r1.exited);

    enableTracing();
    HashSink on;
    sim::Emulator e2(x);
    sim::RunResult r2 = e2.run(on);
    resetTrace();

    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_EQ(off.h, on.h);
}

TEST(DisabledPath, TimingIdenticalWithStallCollection)
{
    exe::Executable x = smallWorkload();
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");

    sim::TimedRun plain = sim::timedRun(x, m);
    sim::TimingSim::Config cfg;
    cfg.collectStalls = true;
    sim::TimedRun counted = sim::timedRun(x, m, cfg);

    // Collection is observational: cycle-exact either way, and the
    // histogram it fills sums exactly to the stall total.
    EXPECT_EQ(plain.cycles, counted.cycles);
    EXPECT_EQ(plain.issueHistogram, counted.issueHistogram);
    EXPECT_EQ(counted.stallBreakdown.total(), counted.stallCycles);
    EXPECT_GT(counted.stallCycles, 0u);
    EXPECT_EQ(plain.stallCycles, 0u);  // off path never touched it
}

} // namespace
} // namespace eel::obs
