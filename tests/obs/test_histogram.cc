/**
 * @file
 * Unit tests for the windowed HDR histogram: bucket geometry (exact
 * below kSub, bounded relative error above), percentile
 * conservatism, exact lifetime counts under multi-threaded
 * recording, the time-windowed ring's staleness behaviour (driven by
 * the test-only clock offset, no sleeping), and reset.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/histogram.hh"

namespace eel {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;

/**
 * Copy of the named snapshot, by value on purpose: the snapshot
 * vectors these come from are temporaries, so returning a pointer
 * into the argument would dangle. Flags a test failure (and returns
 * an empty snapshot) if the name was never registered.
 */
HistogramSnapshot
snapOf(std::vector<HistogramSnapshot> all, const std::string &name)
{
    for (HistogramSnapshot &h : all)
        if (h.name == name)
            return std::move(h);
    ADD_FAILURE() << "histogram not registered: " << name;
    return {};
}

TEST(Histogram, BucketGeometryBracketsEveryValue)
{
    // Exhaustive below the linear range, sampled above it.
    for (uint64_t v = 0; v < Histogram::kSub; ++v) {
        unsigned slot = Histogram::slotFor(v);
        EXPECT_EQ(slot, unsigned(v));
        EXPECT_EQ(Histogram::slotLowerBound(slot), v);
        EXPECT_EQ(Histogram::slotUpperBound(slot), v);
    }
    for (uint64_t v = Histogram::kSub; v <= Histogram::kMaxValue;
         v = v + v / 7 + 1) {
        unsigned slot = Histogram::slotFor(v);
        ASSERT_LT(slot, Histogram::kSlots) << v;
        uint64_t lo = Histogram::slotLowerBound(slot);
        uint64_t hi = Histogram::slotUpperBound(slot);
        EXPECT_LE(lo, v) << v;
        EXPECT_GE(hi, v) << v;
        // The HDR promise: bucket width bounded by ~2^-kSubBits of
        // the value, so the upper bound over-reports by < 1/kSub.
        EXPECT_LE(double(hi - lo), double(v) / 16.0) << v;
    }
    // Slot bounds partition the range: each slot starts right after
    // the previous one ends.
    for (unsigned s = 1; s < Histogram::kSlots; ++s)
        EXPECT_EQ(Histogram::slotLowerBound(s),
                  Histogram::slotUpperBound(s - 1) + 1)
            << "slot " << s;
    // Clamp: anything above kMaxValue lands in the top slot.
    EXPECT_EQ(Histogram::slotFor(~0ull), Histogram::kSlots - 1);
}

TEST(Histogram, CountsSumAndPercentilesAreConservative)
{
    obs::resetHistograms();
    Histogram h("test.hist.basic");
    // 1000 values 1..1000: exact count/sum, percentile upper bounds
    // within one bucket (~3.1%) of the true order statistics.
    uint64_t sum = 0;
    for (uint64_t v = 1; v <= 1000; ++v) {
        h.record(v);
        sum += v;
    }
    HistogramSnapshot s =
        snapOf(obs::histogramsSnapshot(), "test.hist.basic");
    EXPECT_EQ(s.count, 1000u);
    EXPECT_EQ(s.sum, sum);
    uint64_t p50 = s.percentile(0.50);
    uint64_t p99 = s.percentile(0.99);
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 500u + 500u / 16u);
    EXPECT_GE(p99, 990u);
    EXPECT_LE(p99, 990u + 990u / 16u);
    EXPECT_GE(s.percentile(1.0), 1000u);
    EXPECT_EQ(s.percentile(0.0), s.percentile(0.001));
}

TEST(Histogram, LifetimeCountsExactAcrossThreads)
{
    obs::resetHistograms();
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 100000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t)
        ts.emplace_back([t] {
            Histogram h("test.hist.mt");
            for (unsigned i = 0; i < kPerThread; ++i)
                h.record((t * kPerThread + i) % 5000);
        });
    for (std::thread &t : ts)
        t.join();
    HistogramSnapshot s =
        snapOf(obs::histogramsSnapshot(), "test.hist.mt");
    // The per-thread shard discipline must lose nothing, including
    // counts from threads that have already exited.
    EXPECT_EQ(s.count, uint64_t(kThreads) * kPerThread);
}

TEST(Histogram, WindowedViewForgetsOldValuesLifetimeDoesNot)
{
    obs::resetHistograms();
    Histogram h("test.hist.win");
    for (int i = 0; i < 100; ++i)
        h.record(7);

    HistogramSnapshot w = snapOf(
        obs::histogramsWindow(Histogram::kWindowSeconds),
        "test.hist.win");
    EXPECT_EQ(w.count, 100u) << "current window must be included";

    // Jump past the whole ring: every stamped window is now stale.
    obs::detail::advanceHistogramClockForTest(
        int64_t(Histogram::kWindows + 1) *
        Histogram::kWindowSeconds);

    w = snapOf(obs::histogramsWindow(60), "test.hist.win");
    EXPECT_EQ(w.count, 0u) << "stale windows must be discarded";

    HistogramSnapshot life =
        snapOf(obs::histogramsSnapshot(), "test.hist.win");
    EXPECT_EQ(life.count, 100u) << "lifetime view must not forget";

    // New records land in a fresh window and dominate the windowed
    // view; the stale slot they recycle stays excluded.
    for (int i = 0; i < 5; ++i)
        h.record(9);
    w = snapOf(obs::histogramsWindow(60), "test.hist.win");
    EXPECT_EQ(w.count, 5u);
    life = snapOf(obs::histogramsSnapshot(), "test.hist.win");
    EXPECT_EQ(life.count, 105u);
}

TEST(Histogram, ResetZeroesEverything)
{
    Histogram h("test.hist.reset");
    h.record(42);
    obs::resetHistograms();
    HistogramSnapshot s =
        snapOf(obs::histogramsSnapshot(), "test.hist.reset");
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    HistogramSnapshot w =
        snapOf(obs::histogramsWindow(60), "test.hist.reset");
    EXPECT_EQ(w.count, 0u);
    // And the histogram keeps working after a reset.
    h.record(1);
    s = snapOf(obs::histogramsSnapshot(), "test.hist.reset");
    EXPECT_EQ(s.count, 1u);
}

TEST(Histogram, SameNameSharesOneRegistration)
{
    obs::resetHistograms();
    Histogram a("test.hist.shared");
    Histogram b("test.hist.shared");
    a.record(3);
    b.record(4);
    std::vector<HistogramSnapshot> all = obs::histogramsSnapshot();
    unsigned seen = 0;
    for (const HistogramSnapshot &h : all)
        if (h.name == "test.hist.shared")
            ++seen;
    EXPECT_EQ(seen, 1u);
    HistogramSnapshot s = snapOf(all, "test.hist.shared");
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.sum, 7u);
}

} // namespace
} // namespace eel
