/**
 * @file
 * Editor edge-instrumentation semantics: a fall-through snippet must
 * execute exactly when control falls through (taken branches skip
 * it), and a taken-edge trampoline exactly when the branch is taken
 * (fall-through never sees it) — with the delay slot still executing
 * on both paths.
 */

#include <gtest/gtest.h>

#include "src/eel/editor.hh"
#include "src/support/logging.hh"
#include "src/isa/builder.hh"
#include "src/sim/emulator.hh"

namespace eel::edit {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

/**
 * A program whose branch direction is controlled by `take`:
 *   b0: cmp %g0, take; be T; delay (o1 += 1)
 *   b1: o2 += 1  (fall path)
 *   T:  exit with counters readable
 */
exe::Executable
diamond(int take)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::cmpi(rn::g0, take));           // Z set iff take == 0
    push(b::bicc(cond::e, 3));             // taken iff take == 0
    push(b::rri(Op::Add, rn::o1, rn::o1, 1));  // delay: both paths
    push(b::rri(Op::Add, rn::o2, rn::o2, 1));  // fall-only
    push(b::rri(Op::Add, rn::o3, rn::o3, 1));  // merge
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    x.addBss("edge_ctr", 8);
    return x;
}

sched::InstSeq
counter(uint32_t addr)
{
    sched::InstSeq seq;
    auto push = [&](isa::Instruction in) {
        sched::InstRef r;
        r.inst = in;
        seq.push_back(r);
    };
    push(b::sethi(rn::g6, addr));
    push(b::memi(Op::Ld, rn::g7, rn::g6,
                 static_cast<int32_t>(addr & 0x3ff)));
    push(b::rri(Op::Add, rn::g7, rn::g7, 1));
    push(b::memi(Op::St, rn::g7, rn::g6,
                 static_cast<int32_t>(addr & 0x3ff)));
    return seq;
}

struct EdgeRun
{
    uint32_t counterValue;
    uint32_t delayHits;  ///< %o1
    uint32_t fallHits;   ///< %o2
    uint32_t mergeHits;  ///< %o3
};

EdgeRun
runWithPlan(int take, bool fall_edge, bool schedule)
{
    exe::Executable x = diamond(take);
    uint32_t ctr = x.findSymbol("edge_ctr")->addr;
    auto rs = buildRoutines(x);

    InstrumentationPlan plan;
    if (fall_edge)
        plan.addFallEdge(0, 0, counter(ctr));
    else
        plan.addTakenEdge(0, 0, counter(ctr));

    EditOptions opts;
    if (schedule) {
        opts.schedule = true;
        opts.model = &machine::MachineModel::builtin("ultrasparc");
    }
    exe::Executable y = rewrite(x, rs, plan, opts);
    sim::Emulator e(y);
    sim::RunResult r = e.run();
    EXPECT_TRUE(r.exited);
    return EdgeRun{e.readWord(ctr), e.reg(rn::o1), e.reg(rn::o2),
                   e.reg(rn::o3)};
}

class EdgeInstrumentation : public ::testing::TestWithParam<bool>
{};

TEST_P(EdgeInstrumentation, FallSnippetRunsOnlyOnFallThrough)
{
    bool sched = GetParam();
    EdgeRun fall = runWithPlan(/*take=*/1, true, sched);
    EXPECT_EQ(fall.counterValue, 1u);
    EXPECT_EQ(fall.fallHits, 1u);
    EXPECT_EQ(fall.delayHits, 1u);
    EXPECT_EQ(fall.mergeHits, 1u);

    EdgeRun taken = runWithPlan(/*take=*/0, true, sched);
    EXPECT_EQ(taken.counterValue, 0u);  // skipped by the branch
    EXPECT_EQ(taken.fallHits, 0u);
    EXPECT_EQ(taken.delayHits, 1u);     // delay runs on both paths
    EXPECT_EQ(taken.mergeHits, 1u);
}

TEST_P(EdgeInstrumentation, TrampolineRunsOnlyOnTaken)
{
    bool sched = GetParam();
    EdgeRun taken = runWithPlan(/*take=*/0, false, sched);
    EXPECT_EQ(taken.counterValue, 1u);
    EXPECT_EQ(taken.fallHits, 0u);
    EXPECT_EQ(taken.delayHits, 1u);
    EXPECT_EQ(taken.mergeHits, 1u);

    EdgeRun fall = runWithPlan(/*take=*/1, false, sched);
    EXPECT_EQ(fall.counterValue, 0u);  // trampoline never entered
    EXPECT_EQ(fall.fallHits, 1u);
    EXPECT_EQ(fall.delayHits, 1u);
    EXPECT_EQ(fall.mergeHits, 1u);
}

INSTANTIATE_TEST_SUITE_P(SchedOnOff, EdgeInstrumentation,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "scheduled"
                                            : "unscheduled";
                         });

TEST(EdgeInstrumentationErrors, FallEdgeWithoutFallThroughRejected)
{
    // A block ending in "ba" has no fall-through edge.
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::ba(2));
    push(b::nop());
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 16, true});
    x.addBss("c", 8);
    auto rs = buildRoutines(x);
    InstrumentationPlan plan;
    plan.addFallEdge(0, 0, counter(x.findSymbol("c")->addr));
    EXPECT_THROW(rewrite(x, rs, plan, {}), eel::FatalError);
}

TEST(EdgeInstrumentationErrors, TakenEdgeOnReturnRejected)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 8, true});
    x.addBss("c", 8);
    auto rs = buildRoutines(x);
    InstrumentationPlan plan;
    plan.addTakenEdge(0, 0, counter(x.findSymbol("c")->addr));
    EXPECT_THROW(rewrite(x, rs, plan, {}), eel::FatalError);
}

TEST(EdgeInstrumentation, LoopBackEdgeTrampolineCountsIterations)
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::l0, 7));                    // block 0
    push(b::rri(Op::Subcc, rn::l0, rn::l0, 1));  // block 1 (loop)
    push(b::bicc(cond::ne, -1));
    push(b::nop());
    push(b::movi(rn::o0, 0));                    // block 2
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    uint32_t ctr = x.addBss("backedge", 8);
    auto rs = buildRoutines(x);

    InstrumentationPlan plan;
    plan.addTakenEdge(0, 1, counter(ctr));
    exe::Executable y = rewrite(x, rs, plan, {});
    sim::Emulator e(y);
    EXPECT_TRUE(e.run().exited);
    // 7 iterations: the back edge is taken 6 times.
    EXPECT_EQ(e.readWord(ctr), 6u);
}

} // namespace
} // namespace eel::edit
