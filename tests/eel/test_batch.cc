/**
 * @file
 * Batch rewriter and COW aliasing tests: the SPEC95 sharing
 * guarantee (≥80% of page references shared across a batch's
 * variants), the eager-path byte-identity, and the aliasing
 * regression — mutating one variant's pages must leave its siblings'
 * and the work image's pages untouched, by pointer and by content.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/eel/batch.hh"
#include "src/exe/section_store.hh"
#include "src/isa/builder.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"
#include "tests/fuzz_spec.hh"

namespace eel::edit {
namespace {

const machine::MachineModel &
m()
{
    return machine::MachineModel::builtin("ultrasparc");
}

exe::Executable
genProgram(uint64_t seed)
{
    workload::GenOptions gopts;
    gopts.machine = &m();
    return workload::generate(tests::randomSpec(seed), gopts);
}

TEST(BatchRewriter, MatchesSingleImageFlow)
{
    // The batch path must reproduce bench/common.cc's two-rewrite
    // flow bit for bit: same analysis inputs, same plan, same images.
    exe::Executable orig = genProgram(7);
    auto routines = buildRoutines(orig);
    exe::Executable work = orig;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);
    exe::Executable inst =
        rewrite(work, routines, plan.plan, EditOptions{});
    EditOptions sopts;
    sopts.schedule = true;
    sopts.model = &m();
    exe::Executable sched = rewrite(work, routines, plan.plan, sopts);

    BatchOptions bopts;
    bopts.model = &m();
    BatchRewriter rw(orig, bopts);
    BatchResult batch = rw.rewriteAll(
        {VariantKind::SlowProfile, VariantKind::Sched});

    EXPECT_TRUE(batch.work.text == work.text);
    EXPECT_EQ(batch.work.bssBytes, work.bssBytes);
    ASSERT_EQ(batch.variants.size(), 2u);
    EXPECT_TRUE(batch.variants[0].image.text == inst.text);
    EXPECT_TRUE(batch.variants[1].image.text == sched.text);
    EXPECT_TRUE(batch.variants[0].image.data == inst.data);
    EXPECT_EQ(batch.profilePlan.counterBase, plan.counterBase);
    EXPECT_EQ(batch.profilePlan.numCounters, plan.numCounters);
}

TEST(BatchRewriter, AliasingRegression)
{
    exe::SectionStore store;
    BatchOptions bopts;
    bopts.model = &m();
    bopts.store = &store;
    exe::Executable orig = genProgram(11);
    BatchRewriter rw(orig, bopts);
    BatchResult batch = rw.rewriteAll({VariantKind::Identity,
                                       VariantKind::SlowProfile,
                                       VariantKind::Sched});

    exe::Executable &mutant = batch.variants[0].image;   // identity
    exe::Executable &sibling = batch.variants[1].image;
    exe::Executable &work = batch.work;

    // Interned state: the identity text and both data sections sit
    // on the work image's pages.
    ASSERT_EQ(mutant.text.chunkRefs(), work.text.chunkRefs());
    ASSERT_EQ(mutant.data.chunkRefs(), work.data.chunkRefs());
    ASSERT_EQ(sibling.data.chunkRefs(), work.data.chunkRefs());

    exe::ChunkPtr shared_text = work.text.chunkRefs()[0];
    exe::ChunkPtr shared_data = work.data.chunkRefs()[0];
    long text_uses = shared_text.use_count();
    long data_uses = shared_data.use_count();
    std::vector<uint32_t> work_text = work.text.flat();
    std::vector<uint8_t> work_data = work.data.flat();
    std::vector<uint8_t> sib_data = sibling.data.flat();

    uint32_t old_word = mutant.text[0];
    mutant.text.set(0, isa::encode(isa::build::nop()));
    mutant.data.set(3, static_cast<uint8_t>(~mutant.data[3]));

    // The mutant got private copies of the touched pages...
    EXPECT_NE(mutant.text.chunkRefs()[0], shared_text);
    EXPECT_NE(mutant.data.chunkRefs()[0], shared_data);
    EXPECT_NE(mutant.text[0], old_word);
    // ...the shared pages lost exactly one reference (our handle
    // keeps them at +1)...
    EXPECT_EQ(shared_text.use_count(), text_uses - 1);
    EXPECT_EQ(shared_data.use_count(), data_uses - 1);
    // ...and the sibling and work images are untouched, by pointer
    // and by content.
    EXPECT_EQ(work.text.chunkRefs()[0], shared_text);
    EXPECT_EQ(work.data.chunkRefs()[0], shared_data);
    EXPECT_EQ(sibling.data.chunkRefs()[0], shared_data);
    EXPECT_EQ(work.text.flat(), work_text);
    EXPECT_EQ(work.data.flat(), work_data);
    EXPECT_EQ(sibling.data.flat(), sib_data);
    // Untouched pages of the mutant still alias the work image.
    if (mutant.data.chunkRefs().size() > 1)
        EXPECT_EQ(mutant.data.chunkRefs()[1],
                  work.data.chunkRefs()[1]);
}

TEST(BatchRewriter, Spec95BatchSharesAtLeast80Percent)
{
    // The acceptance bar: batch-rewriting every SPEC95 stand-in into
    // identity + slow-profile + scheduled + superblock variants must
    // leave ≥80% of page references pointing at shared pages, per
    // benchmark and across the whole suite's shared store.
    exe::SectionStore store;
    BatchOptions bopts;
    bopts.model = &m();
    bopts.store = &store;

    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.machine = &m();
    gopts.scale = 0.02;

    size_t suite_total = 0, suite_shared = 0;
    // Results stay alive across the loop — a real batch holds its
    // variants simultaneously; that is what the store's live-chunk
    // accounting and the memory claim are about.
    std::vector<BatchResult> results;
    for (auto &spec : specs) {
        SCOPED_TRACE(spec.name);
        exe::Executable orig = workload::generate(spec, gopts);
        BatchRewriter rw(orig, bopts);
        results.push_back(rw.rewriteAll({VariantKind::Identity,
                                         VariantKind::SlowProfile,
                                         VariantKind::Sched,
                                         VariantKind::Superblock}));
        const BatchResult &batch = results.back();
        std::vector<const exe::Executable *> images = {&batch.work};
        for (const BatchVariant &v : batch.variants)
            images.push_back(&v.image);
        exe::ShareStats ss = exe::shareStats(images);
        EXPECT_GE(ss.sharedFrac(), 0.8)
            << "shared " << ss.sharedRefs << "/" << ss.totalRefs;
        // Memory: the batch stores the suite in far fewer bytes
        // than five flat images.
        EXPECT_GE(ss.reduction(), 3.0);
        suite_total += ss.totalRefs;
        suite_shared += ss.sharedRefs;
        for (const BatchVariant &v : batch.variants)
            EXPECT_EQ(v.image.data.chunkRefs(),
                      batch.work.data.chunkRefs());
    }
    EXPECT_GE(double(suite_shared) / double(suite_total), 0.8);

    exe::SectionStore::Stats st = store.stats();
    EXPECT_GT(st.internHits, 0u);
    EXPECT_GT(st.liveChunks, 0u);
}

} // namespace
} // namespace eel::edit
