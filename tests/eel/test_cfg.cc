#include <gtest/gtest.h>

#include "src/eel/cfg.hh"
#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::edit {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

exe::Executable
assemble(const std::vector<isa::Instruction> &insts,
         std::vector<exe::Symbol> syms = {})
{
    exe::Executable x;
    for (const isa::Instruction &in : insts)
        x.text.push_back(isa::encode(in));
    if (syms.empty())
        syms.push_back(exe::Symbol{
            "main", exe::textBase,
            static_cast<uint32_t>(4 * insts.size()), true});
    x.symbols = std::move(syms);
    x.entry = exe::textBase;
    return x;
}

TEST(Cfg, StraightLineRoutine)
{
    // One block: body, return, delay.
    exe::Executable x = assemble({
        b::movi(rn::o0, 1),
        b::rri(Op::Add, rn::o0, rn::o0, 1),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    ASSERT_EQ(rs.size(), 1u);
    ASSERT_EQ(rs[0].blocks.size(), 1u);
    const Block &blk = rs[0].blocks[0];
    EXPECT_EQ(blk.insts.size(), 4u);
    EXPECT_TRUE(blk.hasCti);
    EXPECT_TRUE(blk.endsInReturn);
    EXPECT_EQ(blk.takenSucc, -1);
    EXPECT_EQ(blk.fallSucc, -1);
}

TEST(Cfg, DiamondControlFlow)
{
    //   0: cmp; be L; delay          (block 0)
    //   3: add                       (block 1, falls to L)
    //   4: L: add; retl; nop         (block 2)
    exe::Executable x = assemble({
        b::cmpi(rn::o0, 0),
        b::bicc(cond::e, 3),
        b::nop(),
        b::rri(Op::Add, rn::o1, rn::o1, 1),
        b::rri(Op::Add, rn::o2, rn::o2, 1),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 3u);
    const Block &b0 = rs[0].blocks[0];
    EXPECT_EQ(b0.takenSucc, 2);
    EXPECT_EQ(b0.fallSucc, 1);
    const Block &b1 = rs[0].blocks[1];
    EXPECT_FALSE(b1.hasCti);
    EXPECT_EQ(b1.fallSucc, 2);
    const Block &b2 = rs[0].blocks[2];
    ASSERT_EQ(b2.preds.size(), 2u);
}

TEST(Cfg, BackEdgeLoop)
{
    exe::Executable x = assemble({
        b::movi(rn::l0, 10),                 // block 0
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),  // block 1 (loop)
        b::bicc(cond::ne, -1),
        b::nop(),
        b::retl(),                           // block 2
        b::nop(),
    });
    auto rs = buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 3u);
    EXPECT_EQ(rs[0].blocks[1].takenSucc, 1);  // self loop
    EXPECT_EQ(rs[0].blocks[1].fallSucc, 2);
}

TEST(Cfg, BranchAlwaysHasNoFallthrough)
{
    exe::Executable x = assemble({
        b::ba(2),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    const Block &b0 = rs[0].blocks[0];
    EXPECT_EQ(b0.takenSucc, 1);
    EXPECT_EQ(b0.fallSucc, -1);
}

TEST(Cfg, CallBlockRecordsTarget)
{
    exe::Executable x = assemble(
        {
            b::call(4),      // f at +16 bytes
            b::nop(),
            b::retl(),
            b::nop(),
            // f:
            b::retl(),
            b::nop(),
        },
        {exe::Symbol{"main", exe::textBase, 16, true},
         exe::Symbol{"f", exe::textBase + 16, 8, true}});
    auto rs = buildRoutines(x);
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_EQ(rs[0].name, "main");
    const Block &b0 = rs[0].blocks[0];
    EXPECT_EQ(b0.callTarget, exe::textBase + 16);
    EXPECT_EQ(b0.fallSucc, 1);
}

TEST(Cfg, DelaySlotBelongsToCtiBlock)
{
    exe::Executable x = assemble({
        b::cmpi(rn::o0, 0),
        b::bicc(cond::ne, 4),
        b::rri(Op::Add, rn::o1, rn::o1, 1),  // delay
        b::rri(Op::Add, rn::o2, rn::o2, 1),  // next block
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    const Block &b0 = rs[0].blocks[0];
    ASSERT_EQ(b0.insts.size(), 3u);
    EXPECT_EQ(b0.cti().op, isa::Op::Bicc);
    EXPECT_EQ(b0.insts.back().inst.rd, rn::o1);
}

TEST(Cfg, BranchIntoDelaySlotRejected)
{
    exe::Executable x = assemble({
        b::ba(2),
        b::nop(),     // delay; also branch target below
        b::bicc(cond::ne, -1),  // targets the delay slot
        b::nop(),
        b::retl(),
        b::nop(),
    });
    EXPECT_THROW(buildRoutines(x), FatalError);
}

TEST(Cfg, BranchEscapingRoutineRejected)
{
    exe::Executable x = assemble({
        b::ba(100),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    EXPECT_THROW(buildRoutines(x), FatalError);
}

TEST(Cfg, CtiWithoutDelayRejected)
{
    exe::Executable x = assemble({
        b::nop(),
        b::retl(),
    });
    EXPECT_THROW(buildRoutines(x), FatalError);
}

TEST(Cfg, FallingOffEndRejected)
{
    exe::Executable x = assemble({
        b::nop(),
        b::nop(),
    });
    EXPECT_THROW(buildRoutines(x), FatalError);
}

TEST(Cfg, TextGapRejected)
{
    exe::Executable x = assemble(
        {b::retl(), b::nop(), b::retl(), b::nop()},
        {exe::Symbol{"main", exe::textBase, 8, true},
         // gap: second function starts late
         exe::Symbol{"f", exe::textBase + 12, 4, true}});
    EXPECT_THROW(buildRoutines(x), FatalError);
}

TEST(Cfg, SplitEdgeInsertsSyntheticBlock)
{
    // Diamond head: b0 = [cmp, be, nop] with taken -> b2 and
    // fall -> b1; splitting the fall edge must leave a fresh block
    // between b0 and b1 and rewire b1's pred list.
    exe::Executable x = assemble({
        b::cmpi(rn::o0, 0),
        b::bicc(cond::e, 3),
        b::nop(),
        b::rri(Op::Add, rn::o1, rn::o1, 1),
        b::rri(Op::Add, rn::o2, rn::o2, 1),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    Routine &r = rs[0];
    ASSERT_EQ(r.blocks.size(), 3u);
    ASSERT_EQ(r.blocks[0].fallSucc, 1);
    ASSERT_EQ(r.blocks[0].takenSucc, 2);

    RoutineEdgeCounts counts(3);
    counts[0] = {10, 5, 15};  // fall, taken, exec
    counts[1] = {10, 0, 10};
    counts[2] = {0, 0, 15};

    uint32_t mid = splitEdge(r, 0, &counts);

    ASSERT_EQ(mid, 3u);
    ASSERT_EQ(r.blocks.size(), 4u);
    EXPECT_EQ(r.blocks[0].fallSucc, 3);
    EXPECT_EQ(r.blocks[0].takenSucc, 2);  // taken edge untouched
    EXPECT_EQ(r.blocks[3].fallSucc, 1);
    EXPECT_EQ(r.blocks[3].startAddr, 0u);
    EXPECT_TRUE(r.blocks[3].insts.empty());
    ASSERT_EQ(r.blocks[3].preds.size(), 1u);
    EXPECT_EQ(r.blocks[3].preds[0], 0u);
    // b1's pred on the split path is now the synthetic block.
    ASSERT_EQ(r.blocks[1].preds.size(), 1u);
    EXPECT_EQ(r.blocks[1].preds[0], 3u);

    // Flow conservation: the split edge's count rides both halves.
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0].fall, 10u);
    EXPECT_EQ(counts[3].exec, 10u);
    EXPECT_EQ(counts[3].fall, 10u);
}

TEST(Cfg, SplitEdgeRejectsBadBlocks)
{
    exe::Executable x = assemble({
        b::movi(rn::o0, 1),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    // Out of range, and a return block with no fall-through edge.
    EXPECT_THROW(splitEdge(rs[0], 7), FatalError);
    EXPECT_THROW(splitEdge(rs[0], 0), FatalError);
}

TEST(Cfg, DumpRoutineMentionsBlocksAndEdges)
{
    exe::Executable x = assemble({
        b::cmpi(rn::o0, 0),
        b::bicc(cond::e, 3),
        b::nop(),
        b::rri(Op::Add, rn::o1, rn::o1, 1),
        b::rri(Op::Add, rn::o2, rn::o2, 1),
        b::retl(),
        b::nop(),
    });
    auto rs = buildRoutines(x);
    std::string dump = dumpRoutine(rs[0]);
    EXPECT_NE(dump.find("routine main"), std::string::npos);
    EXPECT_NE(dump.find("taken->2"), std::string::npos);
    EXPECT_NE(dump.find("returns"), std::string::npos);
}

} // namespace
} // namespace eel::edit
