#include <gtest/gtest.h>

#include "src/eel/editor.hh"
#include "src/support/logging.hh"
#include "src/isa/builder.hh"
#include "src/sim/emulator.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::edit {
namespace {

namespace b = isa::build;
using isa::Op;
namespace rn = isa::reg;

exe::Executable
loopExe()
{
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::l0, 5));                  // block 0
    push(b::movi(rn::o0, 0));
    push(b::rri(Op::Add, rn::o0, rn::o0, 3));  // block 1 (loop)
    push(b::rri(Op::Subcc, rn::l0, rn::l0, 1));
    push(b::bicc(isa::cond::ne, -2));
    push(b::nop());
    push(b::ta(isa::trap::exit_prog));         // block 2
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    return x;
}

sched::InstSeq
markerSnippet(uint32_t addr)
{
    sched::InstSeq seq;
    auto push = [&](isa::Instruction in) {
        sched::InstRef r;
        r.inst = in;
        r.isInstrumentation = true;
        seq.push_back(r);
    };
    push(b::sethi(rn::g6, addr));
    push(b::memi(Op::Ld, rn::g7, rn::g6,
                 static_cast<int32_t>(addr & 0x3ff)));
    push(b::rri(Op::Add, rn::g7, rn::g7, 1));
    push(b::memi(Op::St, rn::g7, rn::g6,
                 static_cast<int32_t>(addr & 0x3ff)));
    return seq;
}

TEST(Editor, IdentityRewritePreservesBehaviour)
{
    exe::Executable x = loopExe();
    auto rs = buildRoutines(x);
    exe::Executable y =
        rewrite(x, rs, InstrumentationPlan{}, EditOptions{});
    EXPECT_EQ(y.text.size(), x.text.size());
    sim::Emulator ea(x), eb(y);
    EXPECT_EQ(ea.run().exitCode, 15);
    EXPECT_EQ(eb.run().exitCode, 15);
}

TEST(Editor, InsertedSnippetCountsLoopIterations)
{
    exe::Executable x = loopExe();
    x.addBss("ctr", 8);
    uint32_t ctr = x.findSymbol("ctr")->addr;
    auto rs = buildRoutines(x);

    InstrumentationPlan plan;
    plan.add(0, 1, markerSnippet(ctr));  // the loop block
    exe::Executable y = rewrite(x, rs, plan, EditOptions{});
    EXPECT_EQ(y.text.size(), x.text.size() + 4);

    sim::Emulator e(y);
    EXPECT_EQ(e.run().exitCode, 15);
    EXPECT_EQ(e.readWord(ctr), 5u);
}

TEST(Editor, ScheduledRewriteStillCorrect)
{
    exe::Executable x = loopExe();
    x.addBss("ctr", 8);
    uint32_t ctr = x.findSymbol("ctr")->addr;
    auto rs = buildRoutines(x);

    InstrumentationPlan plan;
    plan.add(0, 1, markerSnippet(ctr));
    EditOptions opts;
    opts.schedule = true;
    opts.model = &machine::MachineModel::builtin("ultrasparc");
    exe::Executable y = rewrite(x, rs, plan, opts);

    sim::Emulator e(y);
    EXPECT_EQ(e.run().exitCode, 15);
    EXPECT_EQ(e.readWord(ctr), 5u);
}

TEST(Editor, BranchDisplacementsRetargeted)
{
    // Growing block 0 forces the back edge to span more bytes.
    exe::Executable x = loopExe();
    auto rs = buildRoutines(x);
    InstrumentationPlan plan;
    sched::InstSeq pad;
    for (int i = 0; i < 6; ++i) {
        sched::InstRef r;
        r.inst = b::nop();
        r.isInstrumentation = true;
        pad.push_back(r);
    }
    plan.add(0, 0, pad);
    exe::Executable y = rewrite(x, rs, plan, EditOptions{});
    sim::Emulator e(y);
    EXPECT_EQ(e.run().exitCode, 15);
}

TEST(Editor, EntryPointFollowsMain)
{
    exe::Executable x = loopExe();
    auto rs = buildRoutines(x);
    InstrumentationPlan plan;
    sched::InstSeq pad;
    sched::InstRef r;
    r.inst = b::nop();
    r.isInstrumentation = true;
    pad.push_back(r);
    plan.add(0, 0, pad);
    exe::Executable y = rewrite(x, rs, plan, EditOptions{});
    EXPECT_EQ(y.entry, exe::textBase);  // main is first
    EXPECT_EQ(y.findSymbol("main")->size, 4 * y.text.size());
}

TEST(Editor, SchedulingWithoutModelRejected)
{
    exe::Executable x = loopExe();
    auto rs = buildRoutines(x);
    EditOptions opts;
    opts.schedule = true;
    EXPECT_THROW(rewrite(x, rs, InstrumentationPlan{}, opts),
                 eel::FatalError);
}

TEST(Editor, CrossRoutineCallsRetargeted)
{
    // A generated program has main calling kernels; rewriting with
    // padding moves every function.
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[0];
    workload::GenOptions gopts;
    gopts.scale = 0.01;
    gopts.machine = &machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = workload::generate(spec, gopts);
    sim::Emulator e0(x);
    std::string golden = e0.run().output;

    auto rs = buildRoutines(x);
    InstrumentationPlan plan;
    for (size_t ri = 0; ri < rs.size(); ++ri) {
        for (const Block &blk : rs[ri].blocks) {
            sched::InstSeq pad;
            sched::InstRef r;
            r.inst = b::nop();
            r.isInstrumentation = true;
            pad.push_back(r);
            plan.add(ri, blk.id, pad);
        }
    }
    exe::Executable y = rewrite(x, rs, plan, EditOptions{});
    EXPECT_GT(y.text.size(), x.text.size());
    sim::Emulator e1(y);
    EXPECT_EQ(e1.run().output, golden);
}

TEST(Editor, RescheduleOnlyPreservesBehaviour)
{
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[9];
    workload::GenOptions gopts;
    gopts.scale = 0.01;
    gopts.machine = &machine::MachineModel::builtin("ultrasparc");
    exe::Executable x = workload::generate(spec, gopts);
    sim::Emulator e0(x);
    std::string golden = e0.run().output;

    auto rs = buildRoutines(x);
    EditOptions opts;
    opts.schedule = true;
    opts.model = &machine::MachineModel::builtin("ultrasparc");
    exe::Executable y =
        rewrite(x, rs, InstrumentationPlan{}, opts);
    sim::Emulator e1(y);
    EXPECT_EQ(e1.run().output, golden);
}

} // namespace
} // namespace eel::edit
