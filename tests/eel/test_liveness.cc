#include <gtest/gtest.h>

#include "src/eel/liveness.hh"
#include "src/isa/builder.hh"

namespace eel::edit {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

Routine
analyze(const std::vector<isa::Instruction> &insts)
{
    exe::Executable x;
    for (const isa::Instruction &in : insts)
        x.text.push_back(isa::encode(in));
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "f", exe::textBase,
        static_cast<uint32_t>(4 * insts.size()), true});
    return buildRoutines(x)[0];
}

TEST(Liveness, ReadBeforeWriteIsLive)
{
    Routine r = analyze({
        b::rri(Op::Add, rn::o0, rn::o1, 1),  // reads %o1
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    EXPECT_TRUE(lv.liveIn(0, rn::o1));
}

TEST(Liveness, WriteBeforeReadIsDead)
{
    Routine r = analyze({
        b::movi(rn::o3, 7),                      // writes %o3
        b::rri(Op::Add, rn::o0, rn::o3, 1),      // then reads it
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    EXPECT_FALSE(lv.liveIn(0, rn::o3));
    EXPECT_TRUE(lv.deadAt(0)[rn::o3]);
}

TEST(Liveness, ReturnExposesUnwrittenRegisters)
{
    // %o4 is never touched: it must be assumed live (the caller may
    // read it after a leaf return).
    Routine r = analyze({
        b::movi(rn::o0, 1),
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    EXPECT_TRUE(lv.liveIn(0, rn::o4));
    EXPECT_FALSE(lv.deadAt(0)[rn::o4]);
}

TEST(Liveness, LiveOnOnePathIsLiveAtJoinPoint)
{
    //  b0: cmp; be b2; delay
    //  b1: uses %o2          (fall)
    //  b2: writes %o2; ret
    Routine r = analyze({
        b::cmpi(rn::o0, 0),
        b::bicc(cond::e, 3),                 // -> the movi below
        b::nop(),
        b::rri(Op::Add, rn::o1, rn::o2, 1),  // b1 reads %o2
        b::movi(rn::o2, 5),                  // b2 writes %o2
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    // At b0's entry %o2 may flow to the read in b1.
    EXPECT_TRUE(lv.liveIn(0, rn::o2));
    // At b2's entry it is overwritten before any use...
    EXPECT_FALSE(lv.liveIn(2, rn::o2));
    // ...but at b1 it is read immediately.
    EXPECT_TRUE(lv.liveIn(1, rn::o2));
}

TEST(Liveness, LoopCarriedRegisterStaysLive)
{
    // loop: %l0 decremented and tested every iteration.
    Routine r = analyze({
        b::movi(rn::l0, 10),
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::ne, -1),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    EXPECT_TRUE(lv.liveIn(1, rn::l0));   // loop block
    EXPECT_FALSE(lv.liveIn(0, rn::l0));  // entry writes it first
}

TEST(Liveness, CallMakesEverythingLiveBefore)
{
    Routine r = analyze({
        b::movi(rn::o3, 1),   // even a just-written register...
        b::call(2),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    // ...%o4 (untouched) is live at entry because the callee may
    // observe it; %o3 is dead (written before the call).
    EXPECT_TRUE(lv.liveIn(0, rn::o4));
    EXPECT_FALSE(lv.liveIn(0, rn::o3));
}

TEST(Liveness, NeverTouchRegistersNotScavengeable)
{
    Routine r = analyze({
        b::movi(rn::o3, 1),
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    auto dead = lv.deadAt(0);
    EXPECT_FALSE(dead[rn::g0]);
    EXPECT_FALSE(dead[rn::sp]);
    EXPECT_FALSE(dead[rn::fp]);
    EXPECT_FALSE(dead[rn::o7]);
    EXPECT_FALSE(dead[rn::i7]);
}

TEST(Liveness, PickFindsDistinctRegisters)
{
    Routine r = analyze({
        b::movi(rn::o2, 1),
        b::movi(rn::o3, 2),
        b::rrr(Op::Add, rn::o0, rn::o2, rn::o3),
        b::retl(),
        b::nop(),
    });
    Liveness lv(r);
    uint8_t regs[2] = {0, 0};
    ASSERT_EQ(lv.pick(0, 2, regs), 2u);
    EXPECT_NE(regs[0], regs[1]);
    EXPECT_FALSE(lv.liveIn(0, regs[0]));
    EXPECT_FALSE(lv.liveIn(0, regs[1]));
}

TEST(Liveness, SaveBlockScavengesNothing)
{
    // The window rotation makes every register suspect.
    Routine r = analyze({
        b::save(96),
        b::movi(rn::l0, 1),
        b::ret(),
        b::restore(),
    });
    Liveness lv(r);
    EXPECT_EQ(lv.deadAt(0).count(), 0u);
}

} // namespace
} // namespace eel::edit
