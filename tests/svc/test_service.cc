/**
 * @file
 * Service-tier tests: protocol fuzzing (a hostile byte stream must
 * get a clean error reply or a clean hangup, never a crash),
 * deadline enforcement (an over-budget SIMULATE is cancelled at a
 * slice boundary and answered within tolerance), admission control,
 * graceful drain, the daemon binary's SIGTERM path, and a
 * multi-threaded mixed-op suite that doubles as the tsan_service
 * race check over the shared SectionStore.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <random>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/support/logging.hh"
#include "src/svc/client.hh"
#include "src/svc/server.hh"

namespace eel::svc {
namespace {

namespace b = isa::build;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** A well-formed program that exits immediately. */
std::string
tinyXef()
{
    exe::Executable x;
    x.text.push_back(isa::encode(b::movi(8, 0)));
    x.text.push_back(isa::encode(b::ta(isa::trap::exit_prog)));
    x.text.push_back(isa::encode(b::retl()));
    x.text.push_back(isa::encode(b::nop()));
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 16, true});
    x.data = {1, 2, 3, 4};
    return x.saveBytes();
}

/** A well-formed program that never exits (tight ba loop). */
std::string
loopXef()
{
    exe::Executable x;
    x.text.push_back(isa::encode(b::ba(0)));
    x.text.push_back(isa::encode(b::nop()));
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 8, true});
    return x.saveBytes();
}

/** Raw frame bytes: len | seq | op | body. */
std::string
rawFrame(uint32_t seq, uint8_t op, const std::string &body)
{
    std::string out;
    putU32(out, static_cast<uint32_t>(5 + body.size()));
    putU32(out, seq);
    putU8(out, op);
    out += body;
    return out;
}

ServerConfig
testConfig()
{
    ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.threads = 2;
    cfg.maxFrameBytes = 1 << 20;  // fuzz oversized prefixes cheaply
    return cfg;
}

TEST(ServiceProtocol, SubmitRewriteSimulateStats)
{
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());

    std::string bytes = tinyXef();
    auto sub = c.submit(bytes);
    ASSERT_TRUE(sub.ok()) << sub.message;
    EXPECT_EQ(sub.value.imageId, contentId(bytes));
    EXPECT_GT(sub.value.pages, 0u);

    // Resubmit: every page already canonical.
    auto sub2 = c.submit(bytes);
    ASSERT_TRUE(sub2.ok());
    EXPECT_EQ(sub2.value.pageHits, sub2.value.pages);

    RewriteRequest rr;
    rr.imageId = sub.value.imageId;
    rr.kind = 0;  // Identity
    auto rw = c.rewrite(rr);
    ASSERT_TRUE(rw.ok()) << rw.message;
    EXPECT_FALSE(rw.value.cached);
    // Identity output is a loadable image with the same text.
    exe::Executable out = exe::Executable::loadBytes(rw.value.xef);
    exe::Executable in = exe::Executable::loadBytes(bytes);
    ASSERT_EQ(out.text.size(), in.text.size());
    for (size_t i = 0; i < in.text.size(); ++i)
        EXPECT_EQ(out.text[i], in.text[i]);

    // Same ask again: served from the rewrite cache, same bytes.
    auto rw2 = c.rewrite(rr);
    ASSERT_TRUE(rw2.ok());
    EXPECT_TRUE(rw2.value.cached);
    EXPECT_EQ(rw2.value.xef, rw.value.xef);

    SimulateRequest sr;
    sr.imageId = sub.value.imageId;
    sr.timing = 1;
    auto sim = c.simulate(sr);
    ASSERT_TRUE(sim.ok()) << sim.message;
    EXPECT_TRUE(sim.value.exited);
    EXPECT_EQ(sim.value.exitCode, 0u);
    EXPECT_GT(sim.value.instructions, 0u);
    EXPECT_GT(sim.value.cycles, 0u);

    auto st = c.stats();
    ASSERT_TRUE(st.ok());
    EXPECT_NE(st.value.find("\"submits\":"), std::string::npos);
    EXPECT_NE(st.value.find("\"gc_reclaimed_pages\":"),
              std::string::npos);

    server.stop();
}

TEST(ServiceProtocol, UnknownImageAndBadArguments)
{
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());

    RewriteRequest rr;
    rr.imageId = 0xdeadbeef;
    EXPECT_EQ(c.rewrite(rr).status, Status::BadImage);

    SimulateRequest sr;
    sr.imageId = 0xdeadbeef;
    EXPECT_EQ(c.simulate(sr).status, Status::BadImage);

    // Unknown machine on a known image: BadRequest, not a crash.
    std::string bytes = tinyXef();
    auto sub = c.submit(bytes);
    ASSERT_TRUE(sub.ok());
    rr.imageId = sub.value.imageId;
    rr.machine = "pdp11";
    EXPECT_EQ(c.rewrite(rr).status, Status::BadRequest);

    // Unknown rewrite kind.
    rr.machine.clear();
    rr.kind = 99;
    EXPECT_EQ(c.rewrite(rr).status, Status::BadRequest);

    server.stop();
}

TEST(ServiceProtocol, MalformedXefGetsCleanErrorReply)
{
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());

    // Garbage payload.
    Frame rep;
    ASSERT_TRUE(c.sendRawExpectReply(
        rawFrame(1, uint8_t(Op::SubmitXef), "this is not an xef"),
        rep));
    EXPECT_NE(rep.code, uint8_t(Status::Ok));

    // Truncations of a valid container at every kind of boundary.
    std::string good = tinyXef();
    for (size_t cut :
         {size_t(0), size_t(3), size_t(9), good.size() / 2,
          good.size() - 1}) {
        Client c2 = Client::dialTcp(server.port());
        Frame r2;
        ASSERT_TRUE(c2.sendRawExpectReply(
            rawFrame(1, uint8_t(Op::SubmitXef), good.substr(0, cut)),
            r2));
        EXPECT_NE(r2.code, uint8_t(Status::Ok)) << "cut=" << cut;
    }

    // The server survived all of it.
    EXPECT_TRUE(c.submit(good).ok());
    server.stop();
}

TEST(ServiceProtocol, FuzzFramingNeverCrashes)
{
    Server server(testConfig());
    server.start();

    auto expectAlive = [&] {
        Client probe = Client::dialTcp(server.port());
        EXPECT_TRUE(probe.stats().ok());
    };

    {
        // Oversized length prefix: rejected before allocation.
        Client c = Client::dialTcp(server.port());
        std::string raw;
        putU32(raw, 0xffffffffu);
        Frame rep;
        if (c.sendRawExpectReply(raw, rep))
            EXPECT_EQ(rep.code, uint8_t(Status::BadFrame));
    }
    {
        // Length below the frame header.
        Client c = Client::dialTcp(server.port());
        std::string raw;
        putU32(raw, 2);
        putU32(raw, 1);
        Frame rep;
        if (c.sendRawExpectReply(raw, rep))
            EXPECT_EQ(rep.code, uint8_t(Status::BadFrame));
    }
    {
        // Truncated frame: length promises more than is sent.
        Client c = Client::dialTcp(server.port());
        std::string raw;
        putU32(raw, 100);
        raw += "short";
        c.connection().writeRaw(raw);
        c.connection().close();  // server sees mid-frame EOF
    }
    {
        // Garbage opcode with a plausible frame.
        Client c = Client::dialTcp(server.port());
        Frame rep;
        ASSERT_TRUE(c.sendRawExpectReply(rawFrame(7, 0xee, "x"),
                                         rep));
        EXPECT_EQ(rep.code, uint8_t(Status::BadRequest));
        EXPECT_EQ(rep.seq, 7u);
    }
    {
        // Truncated request body (Rewrite needs 17+ bytes).
        Client c = Client::dialTcp(server.port());
        Frame rep;
        ASSERT_TRUE(c.sendRawExpectReply(
            rawFrame(9, uint8_t(Op::Rewrite), "abc"), rep));
        EXPECT_EQ(rep.code, uint8_t(Status::BadFrame));
    }
    expectAlive();

    // Seeded random garbage bursts on fresh connections. Half-close
    // after writing: if the garbage read as a partial frame, the
    // server sees mid-frame EOF (clean BadFrame) rather than waiting
    // for bytes that never come.
    std::mt19937_64 rng(12345);
    for (int round = 0; round < 50; ++round) {
        Conn c = connectTcp(server.port());
        std::string raw;
        size_t n = 1 + rng() % 64;
        for (size_t i = 0; i < n; ++i)
            raw.push_back(static_cast<char>(rng()));
        try {
            c.writeRaw(raw);
            c.shutdownWrite();
            Frame rep;
            while (c.readFrame(rep)) {
            }  // drain whatever replies came back
        } catch (const FatalError &) {
            // Server hung up on us mid-stream: also a clean outcome.
        }
    }
    expectAlive();

    server.stop();
}

TEST(ServiceDeadline, OverBudgetSimulateIsCancelled)
{
    ServerConfig cfg = testConfig();
    cfg.sliceInstructions = 16 * 1024;
    Server server(cfg);
    server.start();
    Client c = Client::dialTcp(server.port());

    auto sub = c.submit(loopXef());
    ASSERT_TRUE(sub.ok());

    const uint32_t deadlineMs = 150;
    SimulateRequest sr;
    sr.imageId = sub.value.imageId;
    sr.timing = 1;
    sr.deadlineMs = deadlineMs;
    // No instruction limit: only the deadline can stop this run.

    Clock::time_point t0 = Clock::now();
    auto rep = c.simulate(sr);
    double tookMs = msSince(t0);

    EXPECT_EQ(rep.status, Status::DeadlineExceeded);
    // Partial progress is reported, and the run clearly didn't exit.
    EXPECT_GT(rep.value.instructions, 0u);
    EXPECT_FALSE(rep.value.exited);
    // Answered within tolerance: cancellation happens at the next
    // slice boundary, so the overshoot is bounded by slice cost plus
    // scheduling noise, not by the (infinite) program.
    EXPECT_LT(tookMs, deadlineMs + 2000.0);

    // The worker is free again.
    EXPECT_TRUE(c.submit(tinyXef()).ok());
    server.stop();
}

TEST(ServiceDeadline, QueuedPastDeadlineIsRejected)
{
    // One worker, queue of one: a job stuck behind a slow sim whose
    // own deadline expires while it queues is answered
    // DeadlineExceeded at dequeue, without running.
    ServerConfig cfg = testConfig();
    cfg.threads = 1;
    cfg.queueCapacity = 4;
    Server server(cfg);
    server.start();

    Client a = Client::dialTcp(server.port());
    auto sub = a.submit(loopXef());
    ASSERT_TRUE(sub.ok());

    SimulateRequest slow;
    slow.imageId = sub.value.imageId;
    slow.deadlineMs = 600;
    std::thread holder([&] {
        Client h = Client::dialTcp(server.port());
        h.simulate(slow);  // occupies the only worker ~600ms
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    SimulateRequest starved = slow;
    starved.deadlineMs = 50;  // expires while queued
    auto rep = a.simulate(starved);
    EXPECT_EQ(rep.status, Status::DeadlineExceeded);
    holder.join();
    server.stop();
}

TEST(ServiceAdmission, QueueFullGetsBusy)
{
    ServerConfig cfg = testConfig();
    cfg.threads = 1;
    cfg.queueCapacity = 1;
    Server server(cfg);
    server.start();

    Client a = Client::dialTcp(server.port());
    auto sub = a.submit(loopXef());
    ASSERT_TRUE(sub.ok());

    SimulateRequest slow;
    slow.imageId = sub.value.imageId;
    slow.deadlineMs = 800;
    std::thread holder([&] {
        Client h = Client::dialTcp(server.port());
        h.simulate(slow);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Pipeline two requests on one connection: the first fills the
    // queue, the second must be rejected Busy immediately.
    Client b2 = Client::dialTcp(server.port());
    SimulateRequest queued = slow;
    queued.deadlineMs = 1000;
    b2.connection().writeFrame(
        Frame{1, uint8_t(Op::Simulate), queued.encode()});
    b2.connection().writeFrame(
        Frame{2, uint8_t(Op::Simulate), queued.encode()});

    // The Busy reply for seq 2 overtakes the queued seq 1.
    Frame first;
    ASSERT_TRUE(b2.connection().readFrame(first));
    EXPECT_EQ(first.seq, 2u);
    EXPECT_EQ(first.code, uint8_t(Status::Busy));

    Frame second;
    ASSERT_TRUE(b2.connection().readFrame(second));
    EXPECT_EQ(second.seq, 1u);

    holder.join();
    server.stop();
    Server::Counters ctr = server.counters();
    EXPECT_GE(ctr.busyRejected, 1u);
}

TEST(ServiceDrain, InFlightCompletesNewRequestsRejected)
{
    ServerConfig cfg = testConfig();
    cfg.threads = 1;
    Server server(cfg);
    server.start();

    Client a = Client::dialTcp(server.port());
    auto sub = a.submit(loopXef());
    ASSERT_TRUE(sub.ok());

    // ~300ms of work in flight when the drain starts.
    SimulateRequest sr;
    sr.imageId = sub.value.imageId;
    sr.limit = 20u * 1000 * 1000;
    sr.deadlineMs = 30000;
    Client worker = Client::dialTcp(server.port());
    std::thread inflight([&] {
        auto rep = worker.simulate(sr);
        // Admitted before the drain: must be fully answered.
        EXPECT_EQ(rep.status, Status::Ok);
        EXPECT_EQ(rep.value.instructions, sr.limit);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.beginDrain();
    // New request on a live connection: Draining, not silence.
    auto rejected = a.submit(tinyXef());
    EXPECT_EQ(rejected.status, Status::Draining);

    inflight.join();
    server.stop();
    EXPECT_GE(server.counters().drainRejected, 1u);
}

TEST(ServiceDaemon, SigtermDrainsAndExitsZero)
{
    const char *path = EEL_SVCD_PATH;
    int outPipe[2];
    ASSERT_EQ(::pipe(outPipe), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(outPipe[1], 1);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::execl(path, path, "--port", "0", "--threads", "2",
                static_cast<char *>(nullptr));
        _exit(127);  // exec failed
    }
    ::close(outPipe[1]);

    // Parse "listening port=N" off the daemon's stdout.
    FILE *out = ::fdopen(outPipe[0], "r");
    ASSERT_NE(out, nullptr);
    unsigned port = 0;
    char line[256];
    while (std::fgets(line, sizeof line, out))
        if (std::sscanf(line, "listening port=%u", &port) == 1)
            break;
    ASSERT_GT(port, 0u) << "daemon never reported its port";

    // A real request round-trips against the daemon process.
    {
        Client c = Client::dialTcp(static_cast<uint16_t>(port));
        auto sub = c.submit(tinyXef());
        ASSERT_TRUE(sub.ok()) << sub.message;
        RewriteRequest rr;
        rr.imageId = sub.value.imageId;
        rr.kind = 0;
        EXPECT_TRUE(c.rewrite(rr).ok());
    }

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    std::fclose(out);
}

TEST(ServiceConcurrency, MixedOpsFourClientThreads)
{
    // Four client threads hammer one server with a mixed op stream
    // over shared images: the race check for the process-wide
    // SectionStore, registries, and reply paths (run under tsan by
    // the tsan_service ctest entry).
    Server server(testConfig());
    server.start();

    std::string tiny = tinyXef();
    uint64_t tinyId = contentId(tiny);
    {
        Client seed = Client::dialTcp(server.port());
        ASSERT_TRUE(seed.submit(tiny).ok());
    }

    std::vector<std::thread> clients;
    std::vector<int> failures(4, 0);
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            Client c = Client::dialTcp(server.port());
            std::mt19937_64 rng(1000 + t);
            for (int i = 0; i < 30; ++i) {
                Status st = Status::Ok;
                switch (rng() % 4) {
                  case 0:
                    st = c.submit(tiny).status;
                    break;
                  case 1: {
                    RewriteRequest rr;
                    rr.imageId = tinyId;
                    rr.kind = (rng() % 2) ? 3 : 0;  // Sched/Identity
                    st = c.rewrite(rr).status;
                    break;
                  }
                  case 2: {
                    SimulateRequest sr;
                    sr.imageId = tinyId;
                    sr.timing = rng() % 2;
                    st = c.simulate(sr).status;
                    break;
                  }
                  case 3:
                    st = c.stats().status;
                    break;
                }
                if (st != Status::Ok)
                    ++failures[t];
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(failures[t], 0) << "client " << t;

    Server::Counters ctr = server.counters();
    EXPECT_EQ(ctr.requests, 4u * 30u + 1u);
    EXPECT_EQ(ctr.errors, 0u);
    server.stop();
}

TEST(ServiceConcurrency, ConcurrentSimulateCacheHits)
{
    // Many client threads issue timed SIMULATEs of the same two
    // images concurrently: the race check for the result cache's
    // shared tiers (run under tsan by the tsan_service ctest
    // entry), plus the semantic gate — every cached reply must
    // equal the cold one, and an edited image must never be served
    // the base image's timing.
    Server server(testConfig());
    server.start();

    std::string tiny = tinyXef();
    exe::Executable ed = exe::Executable::loadBytes(tiny);
    // One text-word edit (swap the delay nop for an architecturally
    // different encoding is overkill here — a data edit already
    // changes the content-addressed key).
    ed.data.set(0, static_cast<uint8_t>(ed.data[0] ^ 0xff));
    std::string edited = ed.saveBytes();
    uint64_t ids[2] = {contentId(tiny), contentId(edited)};

    SimulateRequest sr;
    sr.timing = 1;
    SimulateReply ref[2];
    {
        Client seed = Client::dialTcp(server.port());
        ASSERT_TRUE(seed.submit(tiny).ok());
        ASSERT_TRUE(seed.submit(edited).ok());
        for (int k = 0; k < 2; ++k) {
            sr.imageId = ids[k];
            auto r = seed.simulate(sr);
            ASSERT_TRUE(r.ok());
            ref[k] = r.value;
        }
    }

    constexpr unsigned kThreads = 4, kIters = 25;
    std::vector<std::thread> clients;
    std::vector<int> failures(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            Client c = Client::dialTcp(server.port());
            SimulateRequest req;
            req.timing = 1;
            for (unsigned i = 0; i < kIters; ++i) {
                int k = (i + t) % 2;
                req.imageId = ids[k];
                auto r = c.simulate(req);
                if (!r.ok() ||
                    r.value.cycles != ref[k].cycles ||
                    r.value.instructions != ref[k].instructions ||
                    r.value.exitCode != ref[k].exitCode ||
                    r.value.exited != ref[k].exited)
                    ++failures[t];
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[t], 0) << "client " << t;

    // The seed pass populated both keys, so every threaded request
    // was answerable from the cache.
    Server::Counters ctr = server.counters();
    EXPECT_GE(ctr.simCacheHits, uint64_t(kThreads) * kIters);
    EXPECT_EQ(ctr.errors, 0u);
    server.stop();
}

} // namespace
} // namespace eel::svc
