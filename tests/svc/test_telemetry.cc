/**
 * @file
 * Request-scoped telemetry tests: the wire trace-context extension
 * (tagged clients round-trip all four ops; untagged "old" clients
 * get byte-identical replies; truncated prefixes and flagged garbage
 * ops get clean errors), parented span emission under --trace, the
 * STATS latency block, the HTTP gateway (/metrics exposition, /stats
 * validated with the strict JSON parser, /requests/slow, and the
 * reject paths: 400/404/405/431 without crashing), the daemon's
 * --trace flush on SIGTERM (fork/exec), and a concurrency suite
 * (histogram hammer + HTTP scrapes under load) that doubles as the
 * tsan_telemetry race check.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/obs/histogram.hh"
#include "src/obs/trace.hh"
#include "src/support/logging.hh"
#include "src/svc/client.hh"
#include "src/svc/server.hh"
#include "tests/json_dom.hh"

namespace eel::svc {
namespace {

namespace b = isa::build;
using testjson::JParser;
using testjson::JValue;

/** A well-formed program that exits immediately. */
std::string
tinyXef()
{
    exe::Executable x;
    x.text.push_back(isa::encode(b::movi(8, 0)));
    x.text.push_back(isa::encode(b::ta(isa::trap::exit_prog)));
    x.text.push_back(isa::encode(b::retl()));
    x.text.push_back(isa::encode(b::nop()));
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{"main", exe::textBase, 16, true});
    x.data = {5, 6, 7, 8};
    return x.saveBytes();
}

ServerConfig
testConfig()
{
    ServerConfig cfg;
    cfg.threads = 2;
    cfg.defaultDeadlineMs = 10000;
    return cfg;
}

/** Raw frame bytes: len | seq | code | body. */
std::string
rawFrame(uint32_t seq, uint8_t code, const std::string &body)
{
    std::string out;
    putU32(out, static_cast<uint32_t>(5 + body.size()));
    putU32(out, seq);
    putU8(out, code);
    out += body;
    return out;
}

/** One raw HTTP exchange: connect, send `request`, read to EOF. */
std::string
httpExchange(uint16_t port, const std::string &request)
{
    Conn c = connectTcp(port);
    c.writeRaw(request);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(c.fd(), buf, sizeof buf, 0)) > 0)
        resp.append(buf, static_cast<size_t>(n));
    return resp;
}

std::string
httpGet(uint16_t port, const std::string &target)
{
    return httpExchange(port, "GET " + target +
                                  " HTTP/1.1\r\n"
                                  "Host: localhost\r\n\r\n");
}

int
httpStatus(const std::string &resp)
{
    int code = 0;
    std::sscanf(resp.c_str(), "HTTP/1.1 %d", &code);
    return code;
}

std::string
httpBody(const std::string &resp)
{
    size_t at = resp.find("\r\n\r\n");
    return at == std::string::npos ? std::string()
                                   : resp.substr(at + 4);
}

/**
 * Histogram and slow-ring records land *after* the reply frame is
 * written (replyTimed finishes the timeline last), so a scrape
 * issued the instant a client call returns can race the recording
 * worker. Poll with a bounded retry budget instead of sleeping.
 */
bool
eventually(const std::function<bool()> &pred)
{
    for (int i = 0; i < 400; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    std::string text;
    if (!f)
        return text;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

TEST(Telemetry, TaggedAndUntaggedClientsGetIdenticalReplies)
{
    Server server(testConfig());
    server.start();
    std::string tiny = tinyXef();
    uint64_t id = contentId(tiny);

    // "Old" client: no trace context, the pre-extension wire format.
    Client legacy = Client::dialTcp(server.port());
    // New client: every request tagged (sampling off — sampling only
    // affects span emission, never the reply).
    Client tagged = Client::dialTcp(server.port());
    TraceContext tc;
    tc.traceId = 0xabcdef0123456789ull;
    tagged.setTraceContext(tc);

    auto ls = legacy.submit(tiny);
    auto ts = tagged.submit(tiny);
    ASSERT_TRUE(ls.ok()) << ls.message;
    ASSERT_TRUE(ts.ok()) << ts.message;
    EXPECT_EQ(ls.value.imageId, ts.value.imageId);
    EXPECT_EQ(ls.value.pages, ts.value.pages);

    RewriteRequest rr;
    rr.imageId = id;
    rr.kind = 0;
    auto lr = legacy.rewrite(rr);
    auto tr = tagged.rewrite(rr);
    ASSERT_TRUE(lr.ok()) << lr.message;
    ASSERT_TRUE(tr.ok()) << tr.message;
    EXPECT_EQ(lr.value.xef, tr.value.xef)
        << "tagged rewrite must be byte-identical to untagged";

    SimulateRequest sr;
    sr.imageId = id;
    sr.timing = 1;
    sr.limit = 1000;
    auto lsim = legacy.simulate(sr);
    auto tsim = tagged.simulate(sr);
    ASSERT_TRUE(lsim.ok()) << lsim.message;
    ASSERT_TRUE(tsim.ok()) << tsim.message;
    EXPECT_EQ(lsim.value.instructions, tsim.value.instructions);
    EXPECT_EQ(lsim.value.cycles, tsim.value.cycles);
    EXPECT_EQ(lsim.value.exitCode, tsim.value.exitCode);

    auto lst = legacy.stats();
    auto tst = tagged.stats();
    EXPECT_TRUE(lst.ok());
    EXPECT_TRUE(tst.ok());

    // After clearTraceContext the frames are legacy again.
    tagged.clearTraceContext();
    EXPECT_TRUE(tagged.submit(tiny).ok());
    server.stop();
}

TEST(Telemetry, TruncatedTraceContextIsBadFrameNotHangup)
{
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());

    // Flagged SubmitXef whose body is shorter than the 9-byte
    // trace-context prefix: clean BadFrame on the right seq, and the
    // stream stays synchronized (framing itself was fine).
    Frame rep;
    ASSERT_TRUE(c.sendRawExpectReply(
        rawFrame(7, uint8_t(Op::SubmitXef) | kTraceContextFlag,
                 "abc"),
        rep));
    EXPECT_EQ(rep.seq, 7u);
    EXPECT_EQ(static_cast<Status>(rep.code), Status::BadFrame);

    // The same connection still serves a real request.
    EXPECT_TRUE(c.submit(tinyXef()).ok());
    server.stop();
}

TEST(Telemetry, FlaggedGarbageOpKeepsUnknownOpReply)
{
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());

    // 0xee has the flag bit set but masks to an invalid op (0x6e):
    // the pre-extension behaviour (BadRequest, seq echoed, nothing
    // consumed as a prefix) must be preserved.
    Frame rep;
    ASSERT_TRUE(c.sendRawExpectReply(rawFrame(9, 0xee, "body"),
                                     rep));
    EXPECT_EQ(rep.seq, 9u);
    EXPECT_EQ(static_cast<Status>(rep.code), Status::BadRequest);
    server.stop();
}

TEST(Telemetry, SampledRequestsEmitParentedSpans)
{
    obs::resetTrace();
    obs::enableTracing();

    const uint64_t traceId = 0x1122334455667788ull;
    {
        Server server(testConfig());
        server.start();
        Client c = Client::dialTcp(server.port());
        TraceContext tc;
        tc.traceId = traceId;
        tc.flags = TraceContext::kSampled;
        c.setTraceContext(tc);
        auto sub = c.submit(tinyXef());
        ASSERT_TRUE(sub.ok()) << sub.message;
        RewriteRequest rr;
        rr.imageId = sub.value.imageId;
        rr.kind = 0;
        ASSERT_TRUE(c.rewrite(rr).ok());

        // An unsampled tagged request must stay silent.
        tc.traceId = 0x9999999999999999ull;
        tc.flags = 0;
        c.setTraceContext(tc);
        ASSERT_TRUE(c.submit(tinyXef()).ok());
        server.stop();

        std::string path =
            ::testing::TempDir() + "svc_telemetry_trace.json";
        ASSERT_TRUE(obs::writeTrace(path));
        obs::resetTrace();

        std::string text = readFile(path);
        std::remove(path.c_str());
        JParser parser(text);
        JValue root = parser.parse();
        ASSERT_FALSE(parser.failed);
        const JValue *events = root.find("traceEvents");
        ASSERT_NE(events, nullptr);

        // Want: a parent svc.request.* span carrying our trace id,
        // and svc.phase.* children with the same id nested inside
        // the parent's [ts, ts+dur] on the same tid.
        char want[32];
        std::snprintf(want, sizeof want, "%016llx",
                      static_cast<unsigned long long>(traceId));
        struct SpanRec
        {
            double ts, dur, tid;
        };
        std::vector<SpanRec> parents;
        std::vector<SpanRec> phases;
        bool sawUnsampled = false;
        for (const JValue &ev : events->arr) {
            const JValue *ph = ev.find("ph");
            const JValue *name = ev.find("name");
            if (!ph || ph->str != "X" || !name)
                continue;
            const JValue *args = ev.find("args");
            const JValue *tid = ev.find("tid");
            const JValue *ts = ev.find("ts");
            const JValue *dur = ev.find("dur");
            std::string idStr;
            if (args) {
                const JValue *tidv = args->find("trace_id");
                if (tidv)
                    idStr = tidv->str;
            }
            if (idStr == "9999999999999999")
                sawUnsampled = true;
            if (idStr != want)
                continue;
            ASSERT_NE(ts, nullptr);
            ASSERT_NE(dur, nullptr);
            ASSERT_NE(tid, nullptr);
            SpanRec rec{ts->num, dur->num, tid->num};
            if (name->str.rfind("svc.request.", 0) == 0)
                parents.push_back(rec);
            else if (name->str.rfind("svc.phase.", 0) == 0)
                phases.push_back(rec);
        }
        EXPECT_FALSE(sawUnsampled)
            << "unsampled tagged request emitted spans";
        ASSERT_EQ(parents.size(), 2u)
            << "one parent span per sampled request";
        ASSERT_FALSE(phases.empty());
        for (const SpanRec &phase : phases) {
            bool contained = false;
            for (const SpanRec &par : parents)
                contained |= par.tid == phase.tid &&
                             phase.ts >= par.ts &&
                             phase.ts + phase.dur <=
                                 par.ts + par.dur + 1;
            EXPECT_TRUE(contained)
                << "phase span not nested in its request span";
        }
    }
}

TEST(Telemetry, StatsCarriesLatencyBlock)
{
    obs::resetHistograms();
    Server server(testConfig());
    server.start();
    Client c = Client::dialTcp(server.port());
    ASSERT_TRUE(c.submit(tinyXef()).ok());

    std::string body;
    ASSERT_TRUE(eventually([&] {
        auto st = c.stats();
        if (!st.ok())
            return false;
        body = st.value;
        return body.find("svc.op.submit_xef") != std::string::npos;
    })) << "submit never appeared in the latency block";

    JParser parser(body);
    JValue root = parser.parse();
    ASSERT_FALSE(parser.failed) << body;
    const JValue *lat = root.find("latency");
    ASSERT_NE(lat, nullptr);
    ASSERT_EQ(lat->kind, JValue::Obj);
    const JValue *sub = lat->find("svc.op.submit_xef");
    ASSERT_NE(sub, nullptr);
    const JValue *count = sub->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_GE(count->num, 1.0);
    const JValue *win = sub->find("window60s");
    ASSERT_NE(win, nullptr);
    ASSERT_NE(win->find("p99_us"), nullptr);
    // The submit we just made is in the current window.
    EXPECT_GE(win->find("count")->num, 1.0);
    server.stop();
}

ServerConfig
httpConfig()
{
    ServerConfig cfg = testConfig();
    cfg.httpEnabled = true;
    cfg.httpPort = 0;
    return cfg;
}

TEST(HttpGateway, MetricsExposition)
{
    obs::resetHistograms();
    Server server(httpConfig());
    server.start();
    ASSERT_GT(server.httpPort(), 0);
    Client c = Client::dialTcp(server.port());
    ASSERT_TRUE(c.submit(tinyXef()).ok());

    std::string body;
    ASSERT_TRUE(eventually([&] {
        std::string resp = httpGet(server.httpPort(), "/metrics");
        if (httpStatus(resp) != 200)
            return false;
        body = httpBody(resp);
        return body.find("eel_svc_op_submit_xef_seconds_count") !=
               std::string::npos;
    })) << "submit histogram never appeared in /metrics:\n"
        << body.substr(0, 400);
    EXPECT_NE(body.find("# TYPE eel_svc_requests_total counter"),
              std::string::npos)
        << body.substr(0, 400);
    EXPECT_NE(body.find("eel_svc_submits_total 1"),
              std::string::npos);
    // The op histogram as a Prometheus histogram in seconds.
    EXPECT_NE(body.find("eel_svc_op_submit_xef_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
    server.stop();
}

TEST(HttpGateway, StatsAndSlowRequestsParseStrictly)
{
    obs::resetHistograms();
    ServerConfig cfg = httpConfig();
    cfg.slowRequestMs = 0;  // every request is "slow": ring fills
    Server server(cfg);
    server.start();
    Client c = Client::dialTcp(server.port());
    ASSERT_TRUE(c.submit(tinyXef()).ok());

    std::string resp = httpGet(server.httpPort(), "/stats");
    EXPECT_EQ(httpStatus(resp), 200);
    {
        // JParser keeps pointers into its argument: needs a named
        // string, not a temporary.
        std::string body = httpBody(resp);
        JParser parser(body);
        JValue root = parser.parse();
        ASSERT_FALSE(parser.failed) << body;
        ASSERT_NE(root.find("latency"), nullptr);
        ASSERT_NE(root.find("rescache"), nullptr);
        const JValue *http = root.find("http_requests");
        ASSERT_NE(http, nullptr);
        EXPECT_GE(http->num, 1.0);
    }

    ASSERT_TRUE(eventually([&] {
        resp = httpGet(server.httpPort(), "/requests/slow");
        return httpStatus(resp) == 200 &&
               httpBody(resp).find("trace_id") != std::string::npos;
    })) << "slow ring never filled: " << httpBody(resp);
    {
        std::string body = httpBody(resp);
        JParser parser(body);
        JValue root = parser.parse();
        ASSERT_FALSE(parser.failed) << body;
        const JValue *reqs = root.find("requests");
        ASSERT_NE(reqs, nullptr);
        ASSERT_EQ(reqs->kind, JValue::Arr);
        ASSERT_FALSE(reqs->arr.empty());
        const JValue &entry = reqs->arr.front();
        ASSERT_NE(entry.find("trace_id"), nullptr);
        ASSERT_NE(entry.find("op"), nullptr);
        ASSERT_NE(entry.find("total_ms"), nullptr);
    }
    server.stop();
}

TEST(HttpGateway, RejectsWithoutCrashing)
{
    Server server(httpConfig());
    server.start();
    uint16_t port = server.httpPort();

    EXPECT_EQ(httpStatus(httpGet(port, "/nope")), 404);
    EXPECT_EQ(httpStatus(httpExchange(
                  port, "POST /metrics HTTP/1.1\r\n\r\n")),
              405);
    EXPECT_EQ(httpStatus(httpExchange(
                  port, "GARBAGE WITHOUT STRUCTURE\r\n\r\n")),
              400);
    // Malformed header line.
    EXPECT_EQ(httpStatus(httpExchange(
                  port, "GET /metrics HTTP/1.1\r\n"
                        "no-colon-here\r\n\r\n")),
              400);
    // Oversized header block: rejected once the cap is passed, even
    // though no terminator ever arrives.
    {
        std::string big = "GET /metrics HTTP/1.1\r\n";
        big += "X-Pad: " + std::string(32 * 1024, 'a') + "\r\n";
        EXPECT_EQ(httpStatus(httpExchange(port, big)), 431);
    }
    // Binary garbage, then hangup: the gateway must survive.
    {
        Conn c = connectTcp(port);
        std::string junk;
        for (int i = 0; i < 256; ++i)
            junk.push_back(static_cast<char>(i));
        c.writeRaw(junk);
    }
    // Still serving after all of the above.
    EXPECT_EQ(httpStatus(httpGet(port, "/metrics")), 200);
    server.stop();
}

TEST(TelemetryConcurrency, HistogramHammerWhileSnapshotting)
{
    obs::resetHistograms();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&stop] {
            obs::Histogram h("tsan.hammer");
            // Raw 64-bit LCG values exercise every slot including
            // the clamp-to-top path.
            uint64_t v = 1;
            while (!stop.load(std::memory_order_relaxed))
                h.record(v = v * 2862933555777941757ull + 3037ull);
        });
    for (int i = 0; i < 200; ++i) {
        obs::histogramsSnapshot();
        obs::histogramsWindow(60);
    }
    stop.store(true);
    for (std::thread &t : writers)
        t.join();
    SUCCEED();
}

TEST(TelemetryConcurrency, ScrapesDuringLoad)
{
    obs::resetHistograms();
    Server server(httpConfig());
    server.start();
    std::string tiny = tinyXef();
    {
        Client seed = Client::dialTcp(server.port());
        ASSERT_TRUE(seed.submit(tiny).ok());
    }
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t)
        threads.emplace_back([&, t] {
            Client c = Client::dialTcp(server.port());
            TraceContext tc;
            tc.traceId = 0x1000 + t;
            c.setTraceContext(tc);
            for (int i = 0; i < 25; ++i) {
                if (!c.submit(tiny).ok())
                    ++failures;
                if (!c.stats().ok())
                    ++failures;
            }
        });
    for (int t = 0; t < 2; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 15; ++i) {
                if (httpStatus(httpGet(server.httpPort(),
                                       "/metrics")) != 200)
                    ++failures;
                if (httpStatus(httpGet(server.httpPort(),
                                       "/stats")) != 200)
                    ++failures;
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    server.stop();
}

TEST(TelemetryDaemon, TraceFlushedOnSigterm)
{
    const char *path = EEL_SVCD_PATH;
    std::string traceFile =
        ::testing::TempDir() + "eelsvcd_sigterm_trace.json";
    std::remove(traceFile.c_str());

    int outPipe[2];
    ASSERT_EQ(::pipe(outPipe), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(outPipe[1], 1);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::execl(path, path, "--port", "0", "--threads", "2",
                "--http", "0", "--trace", traceFile.c_str(),
                static_cast<char *>(nullptr));
        _exit(127);  // exec failed
    }
    ::close(outPipe[1]);

    FILE *out = ::fdopen(outPipe[0], "r");
    ASSERT_NE(out, nullptr);
    unsigned port = 0, httpPort = 0;
    char line[256];
    while (std::fgets(line, sizeof line, out)) {
        std::sscanf(line, "listening port=%u", &port);
        if (std::sscanf(line, "http port=%u", &httpPort) == 1)
            break;
    }
    ASSERT_GT(port, 0u) << "daemon never reported its port";
    ASSERT_GT(httpPort, 0u) << "daemon never reported its http port";

    // A sampled tagged request the flushed trace must contain.
    {
        Client c = Client::dialTcp(static_cast<uint16_t>(port));
        TraceContext tc;
        tc.traceId = 0xfeedface12345678ull;
        tc.flags = TraceContext::kSampled;
        c.setTraceContext(tc);
        auto sub = c.submit(tinyXef());
        ASSERT_TRUE(sub.ok()) << sub.message;
        // And the gateway answers inside the daemon too.
        EXPECT_EQ(httpStatus(httpGet(
                      static_cast<uint16_t>(httpPort), "/stats")),
                  200);
    }

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    std::fclose(out);

    // The drain-then-flush contract: the trace file exists, parses,
    // and holds the request's parent span with our trace id.
    std::string text = readFile(traceFile);
    std::remove(traceFile.c_str());
    ASSERT_FALSE(text.empty());
    JParser parser(text);
    JValue root = parser.parse();
    ASSERT_FALSE(parser.failed) << "daemon trace is not valid JSON";
    const JValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawRequestSpan = false;
    for (const JValue &ev : events->arr) {
        const JValue *name = ev.find("name");
        const JValue *args = ev.find("args");
        if (!name || name->str.rfind("svc.request.", 0) != 0)
            continue;
        if (args) {
            const JValue *tid = args->find("trace_id");
            if (tid && tid->str == "feedface12345678")
                sawRequestSpan = true;
        }
    }
    EXPECT_TRUE(sawRequestSpan)
        << "SIGTERM flush lost the request span";
}

} // namespace
} // namespace eel::svc
