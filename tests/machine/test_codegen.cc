#include <gtest/gtest.h>

#include "src/machine/spawn_codegen.hh"

namespace eel::machine {
namespace {

TEST(SpawnCodegen, EmitsCompilableLookingTables)
{
    const MachineModel &m = MachineModel::builtin("hypersparc");
    std::string cpp = generateCpp(m);
    EXPECT_NE(cpp.find("namespace spawn_generated"),
              std::string::npos);
    EXPECT_NE(cpp.find("kUnitCapacity"), std::string::npos);
    EXPECT_NE(cpp.find("kGroupCycles"), std::string::npos);
    // One acquire table per group.
    EXPECT_NE(cpp.find("kAcquire_0"), std::string::npos);
    // Annotation provenance comments survive.
    EXPECT_NE(cpp.find("{{GRP"), std::string::npos);
}

TEST(SpawnCodegen, MentionsEveryMnemonic)
{
    const MachineModel &m = MachineModel::builtin("ultrasparc");
    std::string cpp = generateCpp(m);
    for (const char *mn : {"add", "ld", "fdivd", "bicc", "save"})
        EXPECT_NE(cpp.find(std::string("// ") + mn + " ["),
                  std::string::npos)
            << mn;
}

TEST(SpawnCodegen, DescribeModelListsUnits)
{
    const MachineModel &m = MachineModel::builtin("supersparc");
    std::string report = describeModel(m);
    EXPECT_NE(report.find("machine supersparc"), std::string::npos);
    EXPECT_NE(report.find("issue width 3"), std::string::npos);
    EXPECT_NE(report.find("Group=3"), std::string::npos);
    EXPECT_NE(report.find("latency"), std::string::npos);
}

TEST(SpawnCodegen, DescribeModelShowsReadWriteCycles)
{
    std::string report =
        describeModel(MachineModel::builtin("hypersparc"));
    EXPECT_NE(report.find("read R[rs1]"), std::string::npos);
    EXPECT_NE(report.find("write R[rd]"), std::string::npos);
    EXPECT_NE(report.find("(ready"), std::string::npos);
}

} // namespace
} // namespace eel::machine
