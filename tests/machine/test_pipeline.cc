#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/machine/pipeline.hh"

namespace eel::machine {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;

const MachineModel &ultra() { return MachineModel::builtin("ultrasparc"); }
const MachineModel &super() { return MachineModel::builtin("supersparc"); }
const MachineModel &hyper() { return MachineModel::builtin("hypersparc"); }

TEST(PipelineStalls, IndependentInstructionNoStall)
{
    PipelineState st(ultra());
    st.issue(b::rri(Op::Add, 8, 1, 1));
    EXPECT_EQ(st.stalls(b::rri(Op::Sub, 9, 2, 1)), 0u);
}

TEST(PipelineStalls, RawDependenceStalls)
{
    PipelineState st(ultra());
    st.issue(b::rri(Op::Add, 8, 1, 1));
    EXPECT_EQ(st.stalls(b::rri(Op::Sub, 9, 8, 1)), 1u);
}

TEST(PipelineStalls, SethiConsumerCanCoIssue)
{
    // "the sethi instruction produces a value which is available at
    // the end of cycle 0, and can be used by another instruction
    // issued in the same cycle" (§3.1).
    PipelineState st(ultra());
    st.issue(b::sethi(8, 0x40000));
    EXPECT_EQ(st.stalls(b::rri(Op::Or, 8, 8, 0x123)), 0u);
}

TEST(PipelineStalls, LoadUseLatencyUltra)
{
    // UltraSPARC: two dead cycles between a load and its use.
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    EXPECT_EQ(st.stalls(b::rri(Op::Add, 9, 8, 1)), 3u);
}

TEST(PipelineStalls, LoadUseLatencySuper)
{
    // SuperSPARC: one dead cycle.
    PipelineState st(super());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    EXPECT_EQ(st.stalls(b::rri(Op::Add, 9, 8, 1)), 2u);
}

TEST(PipelineStalls, CmpBranchCoIssue)
{
    PipelineState st(ultra());
    st.issue(b::cmpi(8, 0));
    EXPECT_EQ(st.stalls(b::bicc(cond::ne, 4)), 0u);
}

TEST(PipelineStalls, StructuralHazardSingleLsu)
{
    // One memory op per cycle on every modeled machine.
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    EXPECT_GE(st.stalls(b::memi(Op::Ld, 9, 2, 0)), 1u);
}

TEST(PipelineStalls, HyperSparcStoresHoldLsuTwoCycles)
{
    // §4.1: "stores on the hyperSPARC use the LSU for 2 cycles and
    // loads use it for 1 cycle".
    PipelineState hs(hyper());
    hs.issue(b::memi(Op::St, 8, 1, 0));
    unsigned after_store = hs.stalls(b::memi(Op::Ld, 9, 2, 0));

    PipelineState hl(hyper());
    hl.issue(b::memi(Op::Ld, 8, 1, 0));
    unsigned after_load = hl.stalls(b::memi(Op::Ld, 9, 2, 0));
    EXPECT_EQ(after_load + 1, after_store);
}

TEST(PipelineStalls, PureFunction)
{
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    isa::Instruction use = b::rri(Op::Add, 9, 8, 1);
    unsigned s1 = st.stalls(use);
    unsigned s2 = st.stalls(use);
    EXPECT_EQ(s1, s2);
}

TEST(PipelineStalls, WawOrdering)
{
    PipelineState st(ultra());
    st.issue(b::rri(Op::Add, 8, 1, 1));
    // A second write to %o0 must not retire its write first.
    isa::Instruction w2 = b::rri(Op::Or, 8, 2, 1);
    unsigned s = st.stalls(w2);
    auto r = st.issue(w2);
    EXPECT_EQ(r.stalls, s);
}

TEST(PipelineIssue, GroupLimitCapsCoIssue)
{
    // Only issueWidth() instructions may enter per cycle (checked on
    // the hyperSPARC, whose only co-issue limit for nops is Group).
    const MachineModel &m = hyper();
    PipelineState st(m);
    uint64_t first = st.issue(b::nop()).startCycle;
    unsigned same = 1;
    for (int i = 0; i < 10; ++i) {
        if (st.issue(b::nop()).startCycle == first)
            ++same;
    }
    EXPECT_EQ(same, m.issueWidth());
}

TEST(PipelineIssue, UltraMixedBundleFillsTheGroup)
{
    // The UltraSPARC sustains four per cycle only for mixed bundles:
    // two IEU-class ops plus a memory op plus a floating point op.
    PipelineState st(ultra());
    uint64_t c0 = st.issue(b::rri(Op::Add, 8, 1, 1)).startCycle;
    EXPECT_EQ(st.issue(b::rri(Op::Sub, 9, 2, 1)).startCycle, c0);
    EXPECT_EQ(st.issue(b::memi(Op::Lddf, 4, 16, 0)).startCycle, c0);
    EXPECT_EQ(st.issue(b::fp3(Op::Faddd, 8, 0, 2)).startCycle, c0);
    // A fifth instruction cannot join the group.
    EXPECT_GT(st.issue(b::fp3(Op::Fmuld, 10, 0, 2)).startCycle, c0);
}

TEST(PipelineIssue, UltraIntegerCodeCapsAtTwo)
{
    // "for purely integer codes, the UltraSPARC can launch at most
    // two instructions in parallel" (§4).
    PipelineState st(ultra());
    uint64_t c0 = st.issue(b::rri(Op::Add, 8, 1, 1)).startCycle;
    EXPECT_EQ(st.issue(b::rri(Op::Sub, 9, 2, 1)).startCycle, c0);
    EXPECT_GT(st.issue(b::rri(Op::Or, 10, 3, 1)).startCycle, c0);
}

TEST(PipelineIssue, FrontierMonotone)
{
    PipelineState st(ultra());
    uint64_t prev = 0;
    for (int i = 0; i < 50; ++i) {
        auto r = st.issue(b::rri(Op::Add, 8, 8, 1));
        EXPECT_GE(r.startCycle, prev);
        prev = r.startCycle;
    }
}

TEST(PipelineIssue, FetchBubbleDelaysNextIssue)
{
    PipelineState st(ultra());
    st.issue(b::nop());
    uint64_t before = st.frontier();
    st.fetchBubble(3);
    EXPECT_EQ(st.frontier(), before + 3);
    auto r = st.issue(b::nop());
    EXPECT_GE(r.startCycle, before + 3);
}

TEST(PipelineIssue, ResetClearsHistory)
{
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    st.reset();
    EXPECT_EQ(st.frontier(), 0u);
    EXPECT_EQ(st.stalls(b::rri(Op::Add, 9, 8, 1)), 0u);
}

TEST(SequenceCycles, DependentChainSerializes)
{
    std::vector<isa::Instruction> dep, indep;
    for (int i = 0; i < 16; ++i) {
        dep.push_back(b::rri(Op::Add, 8, 8, 1));
        indep.push_back(b::rri(Op::Add, 8 + (i % 6), 1, i));
    }
    EXPECT_GT(sequenceCycles(ultra(), dep),
              sequenceCycles(ultra(), indep) + 4);
}

TEST(SequenceCycles, WiderMachineIsFaster)
{
    std::vector<isa::Instruction> seq;
    for (int i = 0; i < 32; ++i)
        seq.push_back(b::rri(Op::Add, 8 + (i % 6), 1, i));
    EXPECT_LE(sequenceCycles(ultra(), seq),
              sequenceCycles(hyper(), seq));
}

TEST(SequenceCycles, FpDivideDominates)
{
    std::vector<isa::Instruction> seq = {
        b::fp3(Op::Fdivd, 4, 0, 2),
        b::fp3(Op::Faddd, 6, 4, 2),  // depends on the divide
    };
    EXPECT_GE(sequenceCycles(ultra(), seq), 22u);
}

TEST(SequenceCycles, EmptySequence)
{
    EXPECT_EQ(sequenceCycles(ultra(), {}), 0u);
}

machine::ResolvedVariant
rv(const MachineModel &m, const isa::Instruction &inst)
{
    return ResolvedVariant::resolve(m, inst);
}

TEST(StallAttribution, RawDependenceCharged)
{
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    obs::StallBreakdown bd;
    isa::Instruction use = b::rri(Op::Add, 9, 8, 1);
    unsigned s = st.stalls(rv(ultra(), use), &bd);
    EXPECT_EQ(s, 3u);
    EXPECT_EQ(bd.total(), s);
    EXPECT_EQ(bd.cycles[unsigned(obs::StallReason::RawDep)], s);
}

TEST(StallAttribution, StructuralHazardCharged)
{
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    obs::StallBreakdown bd;
    isa::Instruction ld2 = b::memi(Op::Ld, 9, 2, 0);
    unsigned s = st.stalls(rv(ultra(), ld2), &bd);
    EXPECT_GE(s, 1u);
    EXPECT_EQ(bd.total(), s);
    EXPECT_GE(bd.cycles[unsigned(obs::StallReason::Resource)], 1u);
}

TEST(StallAttribution, WawOrderingCharged)
{
    // A second write to f4 behind an in-flight divide must wait for
    // the divide's writeback: WAW, not a resource or RAW hazard (the
    // add runs on a different unit and reads only f0/f2).
    PipelineState st(ultra());
    st.issue(b::fp3(Op::Fdivd, 4, 0, 2));
    obs::StallBreakdown bd;
    isa::Instruction w2 = b::fp3(Op::Faddd, 4, 0, 2);
    unsigned s = st.stalls(rv(ultra(), w2), &bd);
    EXPECT_GE(s, 1u);
    EXPECT_EQ(bd.total(), s);
    EXPECT_GE(bd.cycles[unsigned(obs::StallReason::WarWawDep)], 1u);
}

TEST(StallAttribution, NullChannelSameCount)
{
    // Attribution is observational: the count with the out-channel
    // equals the count without it, and no-stall picks charge nothing.
    PipelineState st(ultra());
    st.issue(b::memi(Op::Ld, 8, 1, 0));
    isa::Instruction use = b::rri(Op::Add, 9, 8, 1);
    obs::StallBreakdown bd;
    EXPECT_EQ(st.stalls(rv(ultra(), use), &bd),
              st.stalls(rv(ultra(), use)));
    obs::StallBreakdown none;
    EXPECT_EQ(st.stalls(rv(ultra(), b::rri(Op::Sub, 9, 2, 1)),
                        &none), 0u);
    EXPECT_EQ(none.total(), 0u);
}

TEST(StallAttribution, IssueAccumulatesAcrossSequence)
{
    // Over a whole sequence the histogram sums exactly to the total
    // stall cycles issue() reports — the invariant the benches check
    // per run.
    PipelineState st(ultra());
    obs::StallBreakdown bd;
    uint64_t total = 0;
    std::vector<isa::Instruction> seq = {
        b::memi(Op::Ld, 8, 16, 0),
        b::rri(Op::Add, 9, 8, 1),
        b::memi(Op::Ld, 10, 9, 0),
        b::memi(Op::St, 10, 16, 4),
        b::fp3(Op::Fdivd, 4, 0, 2),
        b::fp3(Op::Faddd, 4, 0, 2),
    };
    for (const isa::Instruction &inst : seq)
        total += st.issue(rv(ultra(), inst), &bd).stalls;
    EXPECT_GT(total, 0u);
    EXPECT_EQ(bd.total(), total);
}

TEST(PipelineSnapshot, RestoreContinuesExactly)
{
    // A restored state must be indistinguishable from the original:
    // issue a prefix, snapshot, issue a suffix twice — once live,
    // once after restore — and demand identical issue results and
    // stall attribution.
    std::vector<isa::Instruction> prefix = {
        b::memi(Op::Ld, 8, 1, 0),
        b::fp3(Op::Fdivd, 4, 0, 2),
        b::rri(Op::Add, 9, 8, 1),
    };
    std::vector<isa::Instruction> suffix = {
        b::fp3(Op::Faddd, 6, 4, 2),
        b::memi(Op::Ld, 10, 9, 4),
        b::rri(Op::Sub, 11, 10, 2),
    };
    PipelineState st(ultra());
    for (const auto &in : prefix)
        st.issue(in);
    PipelineState::Snapshot snap = st.snapshot();

    std::vector<PipelineState::IssueResult> live;
    obs::StallBreakdown liveBd;
    for (const auto &in : suffix)
        live.push_back(st.issue(rv(ultra(), in), &liveBd));

    PipelineState st2(ultra());
    st2.restore(snap);
    obs::StallBreakdown restoredBd;
    for (size_t i = 0; i < suffix.size(); ++i) {
        auto r = st2.issue(rv(ultra(), suffix[i]), &restoredBd);
        EXPECT_EQ(r.startCycle, live[i].startCycle) << i;
        EXPECT_EQ(r.doneCycle, live[i].doneCycle) << i;
        EXPECT_EQ(r.stalls, live[i].stalls) << i;
    }
    EXPECT_TRUE(restoredBd == liveBd);
}

TEST(PipelineSnapshot, NormalizedKeyIsTranslationInvariant)
{
    // The same instruction history issued from two different cycle
    // origins (one pipeline starts with a fetch bubble) must produce
    // equal normalized keys — that equality is what the sharded
    // stitch pass uses to accept a warmup-reconstructed state.
    std::vector<isa::Instruction> seq = {
        b::memi(Op::Ld, 8, 1, 0),
        b::fp3(Op::Fdivd, 4, 0, 2),
        b::rri(Op::Add, 9, 8, 1),
        b::fp3(Op::Faddd, 6, 4, 2),
    };
    PipelineState a(ultra()), bst(ultra());
    bst.fetchBubble(13);
    for (const auto &in : seq) {
        a.issue(in);
        bst.issue(in);
    }
    std::vector<uint64_t> ka, kb;
    a.appendNormalizedKey(ka);
    bst.appendNormalizedKey(kb);
    EXPECT_EQ(ka, kb);

    // And a genuinely different history must not collide: the
    // divide's pending write keeps its key distinct.
    PipelineState c(ultra());
    for (const auto &in : seq)
        c.issue(in);
    c.issue(b::fp3(Op::Fdivd, 12, 6, 2));
    std::vector<uint64_t> kc;
    c.appendNormalizedKey(kc);
    EXPECT_NE(ka, kc);
}

TEST(PipelineStalls, QptSnippetLatency)
{
    // The paper's 4-instruction profiling sequence "can execute in 4
    // cycles on both SuperSPARC and UltraSPARC" (§4.2). Measured as
    // the steady-state cost of back-to-back snippets, which excludes
    // the one-time pipeline drain.
    auto per_snippet = [](const MachineModel &m) {
        std::vector<isa::Instruction> seq;
        const int n = 50;
        for (int i = 0; i < n; ++i) {
            seq.push_back(b::sethi(6, 0x400000 + 1024 * i));
            seq.push_back(b::memi(Op::Ld, 7, 6, 0));
            seq.push_back(b::rri(Op::Add, 7, 7, 1));
            seq.push_back(b::memi(Op::St, 7, 6, 0));
        }
        return double(sequenceCycles(m, seq)) / n;
    };
    EXPECT_NEAR(per_snippet(super()), 4.0, 0.25);
    EXPECT_LE(per_snippet(ultra()), 4.0);
}

} // namespace
} // namespace eel::machine
