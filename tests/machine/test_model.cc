#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/machine/model.hh"
#include "src/support/logging.hh"

namespace eel::machine {
namespace {

namespace b = isa::build;
using isa::Op;

class Builtins : public ::testing::TestWithParam<const char *>
{};

TEST_P(Builtins, LoadsAndCoversEveryOpcode)
{
    const MachineModel &m = MachineModel::builtin(GetParam());
    for (unsigned i = 1; i < isa::numOps; ++i) {
        isa::Op op = static_cast<isa::Op>(i);
        EXPECT_FALSE(m.variantsFor(op).empty())
            << "no timing for " << isa::opName(op);
    }
}

TEST_P(Builtins, EveryConcreteInstructionResolves)
{
    const MachineModel &m = MachineModel::builtin(GetParam());
    // Both immediate and register forms must match a variant.
    EXPECT_NO_THROW(m.variant(b::rri(Op::Add, 1, 2, 3)));
    EXPECT_NO_THROW(m.variant(b::rrr(Op::Add, 1, 2, 3)));
    EXPECT_NO_THROW(m.variant(b::memi(Op::Ld, 1, 2, 0)));
    EXPECT_NO_THROW(m.variant(b::memr(Op::Stdf, 2, 1, 3)));
    EXPECT_NO_THROW(m.variant(b::bicc(isa::cond::ne, 4)));
    EXPECT_NO_THROW(m.variant(b::ta(0)));
    EXPECT_NO_THROW(m.variant(b::fp3(Op::Fmuld, 4, 0, 2)));
}

TEST_P(Builtins, VariantSelectionFollowsIflag)
{
    const MachineModel &m = MachineModel::builtin(GetParam());
    const Variant &imm = m.variant(b::rri(Op::Add, 1, 2, 3));
    const Variant &rrr = m.variant(b::rrr(Op::Add, 1, 2, 3));
    EXPECT_LT(imm.reads.size(), rrr.reads.size());
}

INSTANTIATE_TEST_SUITE_P(All, Builtins,
                         ::testing::Values("hypersparc", "supersparc",
                                           "ultrasparc"));

TEST(Model, IssueWidthsMatchTheMachines)
{
    EXPECT_EQ(MachineModel::builtin("hypersparc").issueWidth(), 2u);
    EXPECT_EQ(MachineModel::builtin("supersparc").issueWidth(), 3u);
    EXPECT_EQ(MachineModel::builtin("ultrasparc").issueWidth(), 4u);
}

TEST(Model, ClockRatesMatchThePaper)
{
    EXPECT_DOUBLE_EQ(MachineModel::builtin("supersparc").clockMhz(),
                     50.0);
    EXPECT_DOUBLE_EQ(MachineModel::builtin("ultrasparc").clockMhz(),
                     167.0);
}

TEST(Model, UnknownBuiltinRejected)
{
    EXPECT_THROW(MachineModel::builtin("pentium"), FatalError);
}

TEST(Model, BuiltinIsCached)
{
    const MachineModel &a = MachineModel::builtin("ultrasparc");
    const MachineModel &b2 = MachineModel::builtin("ultrasparc");
    EXPECT_EQ(&a, &b2);
}

TEST(Model, RegAccessResolution)
{
    const MachineModel &m = MachineModel::builtin("ultrasparc");
    isa::Instruction add = b::rrr(Op::Add, 7, 5, 6);
    const Variant &v = m.variant(add);
    bool saw_rs1 = false, saw_rs2 = false;
    for (const RegAccess &a : v.reads) {
        if (a.reg(add) == isa::intReg(5))
            saw_rs1 = true;
        if (a.reg(add) == isa::intReg(6))
            saw_rs2 = true;
    }
    EXPECT_TRUE(saw_rs1);
    EXPECT_TRUE(saw_rs2);
    ASSERT_FALSE(v.writes.empty());
    EXPECT_EQ(v.writes[0].reg(add), isa::intReg(7));
}

TEST(Model, CallWritesO7ThroughConstantIndex)
{
    const MachineModel &m = MachineModel::builtin("ultrasparc");
    isa::Instruction call = b::call(4);
    const Variant &v = m.variant(call);
    ASSERT_EQ(v.writes.size(), 1u);
    EXPECT_EQ(v.writes[0].reg(call), isa::intReg(isa::reg::o7));
}

TEST(Model, DoubleFpReadsArePairs)
{
    const MachineModel &m = MachineModel::builtin("supersparc");
    isa::Instruction fa = b::fp3(Op::Faddd, 4, 0, 2);
    const Variant &v = m.variant(fa);
    for (const RegAccess &a : v.reads)
        EXPECT_TRUE(a.pair);
    for (const RegAccess &a : v.writes)
        EXPECT_TRUE(a.pair);
    EXPECT_EQ(v.writes[0].pairReg(fa), isa::fpReg(5));
}

TEST(Model, SubccWritesIccWithEarlyValue)
{
    const MachineModel &m = MachineModel::builtin("ultrasparc");
    isa::Instruction cmp = b::cmpi(5, 0);
    const Variant &v = m.variant(cmp);
    bool saw_icc = false;
    for (const RegAccess &a : v.writes) {
        if (a.cls == isa::RegClass::Icc) {
            saw_icc = true;
            EXPECT_EQ(a.valueReady, 1u);
        }
    }
    EXPECT_TRUE(saw_icc);
}

TEST(Model, FromSadlRejectsIncompleteDescriptions)
{
    EXPECT_THROW(MachineModel::fromSadl(
                     "unit Group 2\nregister untyped{32} R[32]",
                     "tiny", 100.0),
                 FatalError);
}

TEST(Model, MaxLatencyCoversDivides)
{
    // fdivd dominates; the window must accommodate it.
    EXPECT_GE(MachineModel::builtin("ultrasparc").maxLatency(), 20u);
}

} // namespace
} // namespace eel::machine
