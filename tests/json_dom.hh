/**
 * @file
 * Minimal strict JSON DOM shared by tests that validate the JSON the
 * code under test emits (trace exports, the service's STATS body,
 * the HTTP gateway's /stats and /requests/slow). Strict on purpose:
 * a parse failure is a bug in the emitter, so there is no recovery,
 * just `failed`. No escapes beyond \" \\ \/ \b \f \n \r \t \uXXXX
 * (kept verbatim), which is all the emitters produce.
 *
 * Header-only and test-only — production code never parses JSON.
 */

#ifndef EEL_TESTS_JSON_DOM_HH
#define EEL_TESTS_JSON_DOM_HH

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace eel::testjson {

struct JValue
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JValue> arr;
    std::vector<std::pair<std::string, JValue>> obj;

    const JValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

struct JParser
{
    const char *p;
    const char *end;
    bool failed = false;

    explicit JParser(const std::string &s)
        : p(s.data()), end(s.data() + s.size()) {}
    // The parser aliases the argument's buffer; a temporary would
    // dangle before the first value() call.
    explicit JParser(std::string &&) = delete;

    void
    ws()
    {
        while (p < end && std::isspace((unsigned char)*p))
            ++p;
    }

    bool
    eat(char c)
    {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        failed = true;
        return false;
    }

    JValue
    value()
    {
        ws();
        if (failed || p >= end) {
            failed = true;
            return {};
        }
        JValue v;
        char c = *p;
        if (c == '{') {
            ++p;
            v.kind = JValue::Obj;
            ws();
            if (p < end && *p == '}') {
                ++p;
                return v;
            }
            do {
                ws();
                JValue key = string();
                if (!eat(':'))
                    return v;
                v.obj.emplace_back(key.str, value());
                ws();
            } while (!failed && p < end && *p == ',' && ++p);
            eat('}');
        } else if (c == '[') {
            ++p;
            v.kind = JValue::Arr;
            ws();
            if (p < end && *p == ']') {
                ++p;
                return v;
            }
            do {
                v.arr.push_back(value());
                ws();
            } while (!failed && p < end && *p == ',' && ++p);
            eat(']');
        } else if (c == '"') {
            v = string();
        } else if (c == 't' && end - p >= 4 &&
                   std::string(p, 4) == "true") {
            v.kind = JValue::Bool;
            v.b = true;
            p += 4;
        } else if (c == 'f' && end - p >= 5 &&
                   std::string(p, 5) == "false") {
            v.kind = JValue::Bool;
            p += 5;
        } else if (c == 'n' && end - p >= 4 &&
                   std::string(p, 4) == "null") {
            p += 4;
        } else if (c == '-' || std::isdigit((unsigned char)c)) {
            v.kind = JValue::Num;
            char *after = nullptr;
            v.num = std::strtod(p, &after);
            if (after == p)
                failed = true;
            p = after;
        } else {
            failed = true;
        }
        return v;
    }

    JValue
    string()
    {
        JValue v;
        if (!eat('"'))
            return v;
        v.kind = JValue::Str;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                if (p + 1 >= end) {
                    failed = true;
                    return v;
                }
                v.str += *p++;
            }
            v.str += *p++;
        }
        eat('"');
        return v;
    }

    JValue
    parse()
    {
        JValue v = value();
        ws();
        if (p != end)
            failed = true;
        return v;
    }
};

} // namespace eel::testjson

#endif // EEL_TESTS_JSON_DOM_HH
