#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::exe {
namespace {

namespace b = isa::build;

Executable
tiny()
{
    Executable x;
    x.text.push_back(isa::encode(b::movi(8, 0)));
    x.text.push_back(isa::encode(b::ta(isa::trap::exit_prog)));
    x.text.push_back(isa::encode(b::retl()));
    x.text.push_back(isa::encode(b::nop()));
    x.entry = textBase;
    x.symbols.push_back(Symbol{"main", textBase, 16, true});
    x.data = {1, 2, 3, 4};
    x.bssBytes = 64;
    return x;
}

TEST(Executable, AddressArithmetic)
{
    Executable x = tiny();
    EXPECT_EQ(x.textEnd(), textBase + 16);
    EXPECT_TRUE(x.inText(textBase));
    EXPECT_TRUE(x.inText(textBase + 12));
    EXPECT_FALSE(x.inText(textBase + 16));
    EXPECT_FALSE(x.inText(textBase + 2));  // misaligned
    EXPECT_FALSE(x.inText(0));
    EXPECT_EQ(x.textIndex(textBase + 8), 2u);
    EXPECT_EQ(x.word(textBase + 8), x.text[2]);
}

TEST(Executable, DataLayout)
{
    Executable x = tiny();
    EXPECT_EQ(x.dataEnd(), dataBase + 4);
    EXPECT_GE(x.bssBase(), x.dataEnd());
    EXPECT_EQ(x.bssBase() % 8, 0u);
    EXPECT_EQ(x.bssEnd(), x.bssBase() + 64);
}

TEST(Executable, AddBssAllocatesAlignedSymbols)
{
    Executable x = tiny();
    uint32_t end0 = x.bssEnd();
    uint32_t a = x.addBss("ctrs", 12);
    EXPECT_GE(a, end0);
    EXPECT_EQ(a % 8, 0u);
    const Symbol *s = x.findSymbol("ctrs");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->addr, a);
    EXPECT_EQ(s->size, 12u);
    EXPECT_FALSE(s->isFunc);
    uint32_t a2 = x.addBss("more", 8);
    EXPECT_GE(a2, a + 12);
}

TEST(Executable, SymbolLookup)
{
    Executable x = tiny();
    EXPECT_NE(x.findSymbol("main"), nullptr);
    EXPECT_EQ(x.findSymbol("nope"), nullptr);
}

TEST(Executable, SaveLoadRoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "eel_test.xef")
            .string();
    Executable x = tiny();
    x.addBss("ctrs", 24);
    x.save(path);
    Executable y = Executable::load(path);
    EXPECT_EQ(y.text, x.text);
    EXPECT_EQ(y.data, x.data);
    EXPECT_EQ(y.bssBytes, x.bssBytes);
    EXPECT_EQ(y.entry, x.entry);
    ASSERT_EQ(y.symbols.size(), x.symbols.size());
    EXPECT_EQ(y.symbols[0].name, "main");
    EXPECT_TRUE(y.symbols[0].isFunc);
    EXPECT_EQ(y.symbols[1].name, "ctrs");
    std::remove(path.c_str());
}

TEST(Executable, LoadRejectsGarbage)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "eel_bad.xef")
            .string();
    FILE *f = fopen(path.c_str(), "wb");
    fputs("not an xef file at all", f);
    fclose(f);
    EXPECT_THROW(Executable::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Executable, LoadRejectsMissingFile)
{
    EXPECT_THROW(Executable::load("/nonexistent/file.xef"),
                 FatalError);
}

namespace {

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Write the first `keep` bytes of src to a new file. */
std::string
truncateTo(const std::string &src, size_t keep, const char *name)
{
    std::ifstream is(src, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    std::string path = tmpPath(name);
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(
                 std::min(keep, bytes.size())));
    return path;
}

} // namespace

TEST(Executable, LoadRejectsTruncation)
{
    // Cutting the container at every byte boundary must produce a
    // clean rejection — never a crash, never a silently short image.
    std::string path = tmpPath("eel_trunc_src.xef");
    Executable x = tiny();
    x.addBss("ctrs", 24);
    x.save(path);
    size_t full = std::filesystem::file_size(path);
    for (size_t keep = 0; keep < full; keep += 3) {
        std::string cut =
            truncateTo(path, keep, "eel_trunc_cut.xef");
        EXPECT_THROW(Executable::load(cut), FatalError)
            << "accepted a file truncated to " << keep << " of "
            << full << " bytes";
        std::remove(cut.c_str());
    }
    std::remove(path.c_str());
}

TEST(Executable, LoadRejectsHugeSectionCounts)
{
    // A corrupt header claiming a huge data section or symbol table
    // must be rejected before any allocation is attempted.
    auto writeHeader = [](const char *name, uint32_t ntext,
                          uint32_t nd) {
        std::string path = tmpPath(name);
        std::ofstream os(path, std::ios::binary);
        os.write("XEF1", 4);
        auto put = [&](uint32_t v) {
            char b[4] = {static_cast<char>(v),
                         static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
            os.write(b, 4);
        };
        put(textBase);  // entry
        put(ntext);
        // Counts must be rejected before their payload is read, so
        // only emit a few real words regardless of the claim.
        for (uint32_t i = 0; i < std::min(ntext, 4u); ++i)
            put(0x01000000);  // nop
        put(nd);
        return path;
    };
    std::string big_text =
        writeHeader("eel_hugetext.xef", 0xffffffffu, 0);
    EXPECT_THROW(Executable::load(big_text), FatalError);
    std::remove(big_text.c_str());
    std::string big_data =
        writeHeader("eel_hugedata.xef", 1, 0xfffffff0u);
    EXPECT_THROW(Executable::load(big_data), FatalError);
    std::remove(big_data.c_str());
}

TEST(Executable, ValidateRejectsSymbolPastTextEnd)
{
    Executable x = tiny();
    x.symbols.push_back(
        Symbol{"ghost", x.textEnd() + 64, 8, true});
    EXPECT_THROW(x.validate(), FatalError);

    // The same image round-tripped through the container must be
    // rejected by the loader, not handed to the editor.
    std::string path = tmpPath("eel_ghost.xef");
    x.save(path);
    EXPECT_THROW(Executable::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Executable, ValidateRejectsFunctionOverrunningText)
{
    Executable x = tiny();
    // Starts inside text but claims bytes past textEnd().
    x.symbols.push_back(
        Symbol{"overrun", textBase + 8, 1024, true});
    EXPECT_THROW(x.validate(), FatalError);
}

TEST(Executable, ValidateRejectsEntryOutsideText)
{
    Executable x = tiny();
    x.entry = x.textEnd() + 16;
    EXPECT_THROW(x.validate(), FatalError);
    std::string path = tmpPath("eel_badentry.xef");
    x.save(path);
    EXPECT_THROW(Executable::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Executable, ValidateRejectsDataBssOverlap)
{
    Executable x = tiny();  // 4 data bytes, so dataEnd = dataBase+4
    // A symbol claiming storage across the data/bss boundary means
    // the two sections overlap.
    x.symbols.push_back(Symbol{"straddle", dataBase + 2, 16, false});
    EXPECT_THROW(x.validate(), FatalError);

    std::string path = tmpPath("eel_overlap.xef");
    x.save(path);
    EXPECT_THROW(Executable::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Executable, ValidateRejectsDataSymbolPastBssEnd)
{
    Executable x = tiny();
    x.symbols.push_back(
        Symbol{"beyond", x.bssEnd() + 8, 4, false});
    EXPECT_THROW(x.validate(), FatalError);
}

TEST(Executable, ValidateAcceptsWellFormedImage)
{
    Executable x = tiny();
    x.addBss("ctrs", 24);
    x.validate();  // must not throw
}

TEST(Executable, DisassembleShowsSymbolsAndInstructions)
{
    Executable x = tiny();
    std::string s = x.disassembleText();
    EXPECT_NE(s.find("main:"), std::string::npos);
    EXPECT_NE(s.find("ta 0"), std::string::npos);
    EXPECT_NE(s.find("retl"), std::string::npos);
    EXPECT_NE(s.find("010000:"), std::string::npos);
}

} // namespace
} // namespace eel::exe
