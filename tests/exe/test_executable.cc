#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/exe/executable.hh"
#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::exe {
namespace {

namespace b = isa::build;

Executable
tiny()
{
    Executable x;
    x.text.push_back(isa::encode(b::movi(8, 0)));
    x.text.push_back(isa::encode(b::ta(isa::trap::exit_prog)));
    x.text.push_back(isa::encode(b::retl()));
    x.text.push_back(isa::encode(b::nop()));
    x.entry = textBase;
    x.symbols.push_back(Symbol{"main", textBase, 16, true});
    x.data = {1, 2, 3, 4};
    x.bssBytes = 64;
    return x;
}

TEST(Executable, AddressArithmetic)
{
    Executable x = tiny();
    EXPECT_EQ(x.textEnd(), textBase + 16);
    EXPECT_TRUE(x.inText(textBase));
    EXPECT_TRUE(x.inText(textBase + 12));
    EXPECT_FALSE(x.inText(textBase + 16));
    EXPECT_FALSE(x.inText(textBase + 2));  // misaligned
    EXPECT_FALSE(x.inText(0));
    EXPECT_EQ(x.textIndex(textBase + 8), 2u);
    EXPECT_EQ(x.word(textBase + 8), x.text[2]);
}

TEST(Executable, DataLayout)
{
    Executable x = tiny();
    EXPECT_EQ(x.dataEnd(), dataBase + 4);
    EXPECT_GE(x.bssBase(), x.dataEnd());
    EXPECT_EQ(x.bssBase() % 8, 0u);
    EXPECT_EQ(x.bssEnd(), x.bssBase() + 64);
}

TEST(Executable, AddBssAllocatesAlignedSymbols)
{
    Executable x = tiny();
    uint32_t end0 = x.bssEnd();
    uint32_t a = x.addBss("ctrs", 12);
    EXPECT_GE(a, end0);
    EXPECT_EQ(a % 8, 0u);
    const Symbol *s = x.findSymbol("ctrs");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->addr, a);
    EXPECT_EQ(s->size, 12u);
    EXPECT_FALSE(s->isFunc);
    uint32_t a2 = x.addBss("more", 8);
    EXPECT_GE(a2, a + 12);
}

TEST(Executable, SymbolLookup)
{
    Executable x = tiny();
    EXPECT_NE(x.findSymbol("main"), nullptr);
    EXPECT_EQ(x.findSymbol("nope"), nullptr);
}

TEST(Executable, SaveLoadRoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "eel_test.xef")
            .string();
    Executable x = tiny();
    x.addBss("ctrs", 24);
    x.save(path);
    Executable y = Executable::load(path);
    EXPECT_EQ(y.text, x.text);
    EXPECT_EQ(y.data, x.data);
    EXPECT_EQ(y.bssBytes, x.bssBytes);
    EXPECT_EQ(y.entry, x.entry);
    ASSERT_EQ(y.symbols.size(), x.symbols.size());
    EXPECT_EQ(y.symbols[0].name, "main");
    EXPECT_TRUE(y.symbols[0].isFunc);
    EXPECT_EQ(y.symbols[1].name, "ctrs");
    std::remove(path.c_str());
}

TEST(Executable, LoadRejectsGarbage)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "eel_bad.xef")
            .string();
    FILE *f = fopen(path.c_str(), "wb");
    fputs("not an xef file at all", f);
    fclose(f);
    EXPECT_THROW(Executable::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Executable, LoadRejectsMissingFile)
{
    EXPECT_THROW(Executable::load("/nonexistent/file.xef"),
                 FatalError);
}

TEST(Executable, DisassembleShowsSymbolsAndInstructions)
{
    Executable x = tiny();
    std::string s = x.disassembleText();
    EXPECT_NE(s.find("main:"), std::string::npos);
    EXPECT_NE(s.find("ta 0"), std::string::npos);
    EXPECT_NE(s.find("retl"), std::string::npos);
    EXPECT_NE(s.find("010000:"), std::string::npos);
}

} // namespace
} // namespace eel::exe
