#include <gtest/gtest.h>

#include <string>

#include "src/exe/executable.hh"
#include "src/exe/section_store.hh"
#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::exe {
namespace {

namespace b = isa::build;

Executable
program(unsigned words, uint8_t fill)
{
    Executable x;
    x.text.push_back(isa::encode(b::movi(8, 0)));
    x.text.push_back(isa::encode(b::ta(isa::trap::exit_prog)));
    x.text.push_back(isa::encode(b::retl()));
    x.text.push_back(isa::encode(b::nop()));
    // Every page gets unique content (word = position hash + fill),
    // so intern hits measure cross-image sharing, not accidental
    // duplicate pages inside one image.
    while (x.text.size() < words)
        x.text.push_back(
            static_cast<uint32_t>(x.text.size()) * 2654435761u +
            fill);
    x.entry = textBase;
    x.symbols.push_back(
        Symbol{"main", textBase,
               4 * static_cast<uint32_t>(x.text.size()), true});
    // The (i >> 8) term keeps successive 1 KiB pages from holding
    // identical bytes (a plain i & 0xff pattern repeats per page and
    // would self-intern).
    for (unsigned i = 0; i < 2048; ++i)
        x.data.push_back(
            static_cast<uint8_t>((i + 31 * (i >> 8)) ^ fill));
    return x;
}

TEST(StoreGc, SweepsDeadIndexEntriesWhenImagesDie)
{
    SectionStore store;
    {
        Executable x = program(2048, 1);
        store.intern(x);
        SectionStore::Stats s = store.stats();
        EXPECT_GT(s.tableEntries, 0u);
        EXPECT_EQ(s.tableEntries, s.liveChunks);
        // Image alive: nothing to reclaim.
        EXPECT_EQ(store.gc(), 0u);
    }
    // Pages are weakly held, so they died with the image — but the
    // index entries survive until gc() sweeps them.
    SectionStore::Stats before = store.stats();
    EXPECT_EQ(before.liveChunks, 0u);
    EXPECT_GT(before.tableEntries, 0u);

    size_t swept = store.gc();
    SectionStore::Stats after = store.stats();
    EXPECT_EQ(swept, before.tableEntries);
    EXPECT_EQ(after.tableEntries, 0u);
    EXPECT_EQ(after.gcRuns, 2u);  // the no-op run above counted too
    EXPECT_EQ(after.gcReclaimedPages, swept);
}

TEST(StoreGc, KeepsLiveEntriesAndReusesThem)
{
    SectionStore store;
    Executable keep = program(2048, 2);
    store.intern(keep);
    {
        Executable dead = program(2048, 3);
        store.intern(dead);
    }
    size_t live = store.stats().liveChunks;
    EXPECT_GT(store.gc(), 0u);
    EXPECT_EQ(store.stats().tableEntries, live);

    // A clone of the survivor still interns onto the same chunks.
    Executable again = program(2048, 2);
    SectionStore::InternCounts ic = store.internCounted(again);
    EXPECT_EQ(ic.hits, ic.pages);
}

TEST(StoreGc, WatermarkTriggersAutomaticSweep)
{
    SectionStore store;
    store.setGcWatermark(8);
    // Churn dead images through the store; without GC the index
    // would grow without bound, with the watermark it stays near it.
    for (uint8_t i = 0; i < 24; ++i) {
        Executable x = program(2048, i);
        store.intern(x);
    }
    SectionStore::Stats s = store.stats();
    EXPECT_GT(s.gcRuns, 0u);
    EXPECT_GT(s.gcReclaimedPages, 0u);
    EXPECT_LE(s.tableEntries, 8u + 8u);  // watermark + one image
}

TEST(StoreGc, InternCountedReportsHitsForResubmit)
{
    SectionStore store;
    Executable first = program(2048, 7);
    SectionStore::InternCounts cold = store.internCounted(first);
    EXPECT_GT(cold.pages, 0u);
    EXPECT_EQ(cold.hits, 0u);

    Executable second = program(2048, 7);
    SectionStore::InternCounts warm = store.internCounted(second);
    EXPECT_EQ(warm.pages, cold.pages);
    EXPECT_EQ(warm.hits, warm.pages);
}

TEST(StoreGc, ContentHashMemoizesByLiveIdentity)
{
    SectionStore store;
    auto chunk = std::make_shared<Chunk>();
    chunk->mem.fill(0x11);
    ChunkPtr held = chunk;

    uint64_t h = store.contentHash(held);
    EXPECT_EQ(h, pageContentHash(*held));
    EXPECT_EQ(store.contentHash(held), h);  // memo hit
    EXPECT_EQ(store.stats().hashEntries, 1u);

    // Kill the page, then allocate a different-content page. If the
    // allocator recycles the address (same-size block, so it
    // usually does), the memo's witness has expired and the store
    // must re-hash the new bytes — a pointer-keyed memo would serve
    // the dead page's hash to a live result-cache key.
    const Chunk *addr = held.get();
    chunk.reset();
    held.reset();
    auto next = std::make_shared<Chunk>();
    next->mem.fill(0x22);
    ChunkPtr reborn = next;
    uint64_t h2 = store.contentHash(reborn);
    EXPECT_EQ(h2, pageContentHash(*reborn));
    EXPECT_NE(h2, h);
    if (reborn.get() != addr)
        // Allocator did not recycle; the hazard path wasn't hit,
        // but the invariant above still held.
        SUCCEED();
}

TEST(StoreGc, GcSweepsHashMemoWithoutInflatingReclaimCount)
{
    SectionStore store;
    {
        Executable x = program(2048, 4);
        store.intern(x);
        for (const ChunkPtr &c : x.text.chunkRefs())
            store.contentHash(c);
        EXPECT_EQ(store.stats().hashEntries,
                  x.text.chunkRefs().size());
    }
    SectionStore::Stats before = store.stats();
    EXPECT_GT(before.hashEntries, 0u);

    // gc sweeps expired hash memos alongside the intern index, but
    // only index entries count as reclaimed pages.
    size_t swept = store.gc();
    SectionStore::Stats after = store.stats();
    EXPECT_EQ(swept, before.tableEntries);
    EXPECT_EQ(after.hashEntries, 0u);
    EXPECT_EQ(after.gcReclaimedPages, before.tableEntries);
}

TEST(StoreGc, SaveLoadBytesRoundTrip)
{
    Executable x = program(512, 9);
    std::string bytes = x.saveBytes();
    Executable y = Executable::loadBytes(bytes);
    ASSERT_EQ(y.text.size(), x.text.size());
    for (size_t i = 0; i < x.text.size(); ++i)
        ASSERT_EQ(y.text[i], x.text[i]);
    ASSERT_EQ(y.data.size(), x.data.size());
    for (size_t i = 0; i < x.data.size(); ++i)
        ASSERT_EQ(y.data[i], x.data[i]);
    EXPECT_EQ(y.bssBytes, x.bssBytes);
    EXPECT_EQ(y.entry, x.entry);
    ASSERT_EQ(y.symbols.size(), x.symbols.size());
    EXPECT_EQ(y.symbols[0].name, x.symbols[0].name);
    // And the byte form is stable: save(load(b)) == b.
    EXPECT_EQ(y.saveBytes(), bytes);
}

TEST(StoreGc, LoadBytesRejectsGarbage)
{
    EXPECT_THROW(Executable::loadBytes("not an xef container"),
                 FatalError);
    std::string bytes = program(512, 9).saveBytes();
    for (size_t cut : {size_t(4), bytes.size() / 2,
                       bytes.size() - 3})
        EXPECT_THROW(Executable::loadBytes(bytes.substr(0, cut)),
                     FatalError);
}

} // namespace
} // namespace eel::exe
