/**
 * @file
 * Shared helper for the randomized differential tests: maps a fuzz
 * seed to a workload::BenchmarkSpec whose shape (block size, mix,
 * ILP, footprint) varies with the seed. Tests print the seed on
 * failure, so any generated program can be reproduced by number.
 */

#ifndef EEL_TESTS_FUZZ_SPEC_HH
#define EEL_TESTS_FUZZ_SPEC_HH

#include <string>

#include "src/isa/instruction.hh"
#include "src/support/rng.hh"
#include "src/workload/spec.hh"

namespace eel::tests {

inline workload::BenchmarkSpec
randomSpec(uint64_t seed)
{
    // Decorrelate neighbouring seeds before handing them to the
    // generator's own Rng.
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
    workload::BenchmarkSpec s;
    s.name = "fuzz" + std::to_string(seed);
    s.fp = rng.chance(0.4);
    s.avgBlockSize = 2.0 + 0.1 * rng.uniform(0, 60);
    s.loadFrac = 0.10 + 0.01 * rng.uniform(0, 20);
    s.storeFrac = 0.05 + 0.01 * rng.uniform(0, 10);
    s.fpFrac = s.fp ? 0.20 + 0.01 * rng.uniform(0, 30) : 0.0;
    s.serialProb = 0.20 + 0.01 * rng.uniform(0, 60);
    s.dynTarget = 8000 + 1000 * rng.uniform(0, 24);
    s.kernels = 1 + static_cast<unsigned>(rng.uniform(0, 2));
    // Loop-carried dependence shapes: most seeds get register
    // recurrences through accumulators, some also a load-modify-
    // store memory recurrence — so the differential harness
    // exercises the modulo scheduler's recMII edges and the alias
    // cases that keep stores out of the rotated stage.
    double rec_frac = 0.01 * rng.uniform(0, 30);
    s.recurrenceFrac = rng.chance(0.6) ? rec_frac : 0.0;
    unsigned mem_rec = static_cast<unsigned>(rng.uniform(1, 2));
    s.memRecurrences = rng.chance(0.4) ? mem_rec : 0;
    s.seed = seed + 1;
    return s;
}

/** Order-sensitive hash of the retired-pc stream: two runs retire
 *  the same architectural trace iff the hashes match (FNV-1a). */
struct TraceHashSink final
{
    uint64_t h = 0xcbf29ce484222325ull;
    void
    retire(uint32_t pc, const isa::Instruction &)
    {
        h ^= pc;
        h *= 0x100000001b3ull;
    }
};

} // namespace eel::tests

#endif // EEL_TESTS_FUZZ_SPEC_HH
