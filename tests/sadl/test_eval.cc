#include <gtest/gtest.h>

#include "src/sadl/timing.hh"
#include "src/support/logging.hh"

namespace eel::sadl {
namespace {

const char *prologue = R"(
unit Group 2
val multi is AR Group, ()
val single is AR Group 2, ()
unit ALU 1, ALUr 2, ALUw 1
register untyped{32} R[32]
alias signed{32} R4r[i] is AR ALUr, R[i]
alias signed{32} R4w[i] is AR ALUw, R[i]
)";

const Timing &
timingOf(const Description &d, const std::string &mnemonic,
         size_t variant = 0)
{
    size_t seen = 0;
    for (const Timing &t : d.timings)
        if (t.mnemonic == mnemonic && seen++ == variant)
            return t;
    throw std::runtime_error("no such timing: " + mnemonic);
}

TEST(Eval, UnitDeclarations)
{
    Description d = analyze(prologue);
    ASSERT_EQ(d.units.size(), 4u);
    EXPECT_EQ(d.units[0].name, "Group");
    EXPECT_EQ(d.units[0].count, 2u);
    EXPECT_EQ(d.unitIndex("ALUw"), 3);
    EXPECT_EQ(d.unitIndex("bogus"), -1);
}

TEST(Eval, SimpleSemTiming)
{
    Description d = analyze(std::string(prologue) +
        "sem foo is multi, D 1, s:=R4r[rs1], "
        "A ALU, x:=add32 s s, D 1, R ALU, R4w[rd]:=x");
    const Timing &t = timingOf(d, "foo");
    EXPECT_EQ(t.latency, 3u);
    ASSERT_EQ(t.reads.size(), 1u);
    EXPECT_EQ(t.reads[0].cycle, 1);
    EXPECT_EQ(t.reads[0].field, Field::Rs1);
    ASSERT_EQ(t.writes.size(), 1u);
    EXPECT_EQ(t.writes[0].cycle, 2);
    EXPECT_EQ(t.writes[0].valueReady, 1);
    EXPECT_EQ(t.writes[0].field, Field::Rd);
}

TEST(Eval, SethiStyleValueReadyAtCycleZero)
{
    Description d = analyze(std::string(prologue) +
        "sem foo is multi, x:=val32 #imm22, D 1, R4w[rd]:=x");
    const Timing &t = timingOf(d, "foo");
    EXPECT_EQ(t.writes[0].valueReady, 0);
    EXPECT_EQ(t.writes[0].cycle, 1);
    EXPECT_EQ(t.latency, 2u);
}

TEST(Eval, ConditionalForksVariants)
{
    Description d = analyze(std::string(prologue) +
        "val src2 is iflag=1 ? #simm13 : R4r[rs2]\n"
        "sem foo is multi, D 1, s:=src2, A ALU, x:=add32 s s, "
        "D 1, R ALU, R4w[rd]:=x");
    // Two variants: immediate and register.
    int n = 0;
    for (const Timing &t : d.timings)
        if (t.mnemonic == "foo")
            ++n;
    EXPECT_EQ(n, 2);
    const Timing &imm = timingOf(d, "foo", 0);
    const Timing &rreg = timingOf(d, "foo", 1);
    ASSERT_EQ(imm.conds.size(), 1u);
    EXPECT_EQ(imm.conds[0].field, Field::Iflag);
    EXPECT_TRUE(imm.conds[0].mustEqual);
    EXPECT_FALSE(rreg.conds[0].mustEqual);
    EXPECT_EQ(imm.reads.size(), 0u);
    EXPECT_EQ(rreg.reads.size(), 1u);
    EXPECT_EQ(rreg.reads[0].field, Field::Rs2);
}

TEST(Eval, GroupsShareIdenticalTiming)
{
    Description d = analyze(std::string(prologue) +
        "val op is \\o. multi, D 1, s:=R4r[rs1], A ALU, "
        "x:=o s s, D 1, R ALU, R4w[rd]:=x\n"
        "sem [ a1 a2 ] is op @ [ add32 sub32 ]\n"
        "sem b1 is single, D 1");
    EXPECT_EQ(timingOf(d, "a1").group, timingOf(d, "a2").group);
    EXPECT_NE(timingOf(d, "a1").group, timingOf(d, "b1").group);
}

TEST(Eval, ValMacroReplaysEffectsPerReference)
{
    // "multi" acquires Group each time it is referenced; two sems
    // each get their own acquire.
    Description d = analyze(std::string(prologue) +
        "sem s1 is multi, D 1\nsem s2 is multi, D 1");
    for (const char *m : {"s1", "s2"}) {
        const Timing &t = timingOf(d, m);
        ASSERT_EQ(t.acquire.size(), t.latency);
        ASSERT_FALSE(t.acquire[0].empty());
        EXPECT_EQ(d.units[t.acquire[0][0].unit].name, "Group");
    }
}

TEST(Eval, ARReleasesAfterDelay)
{
    Description d = analyze(std::string(prologue) +
        "sem s1 is AR ALU 1 2, D 3");
    const Timing &t = timingOf(d, "s1");
    EXPECT_EQ(t.latency, 4u);
    ASSERT_FALSE(t.acquire[0].empty());
    // Release scheduled at cycle 2.
    ASSERT_GT(t.release.size(), 2u);
    EXPECT_FALSE(t.release[2].empty());
}

TEST(Eval, PairAccessThroughWideAlias)
{
    Description d = analyze(std::string(prologue) +
        "alias signed{64} R8r[i] is AR ALUr 2, R[i]\n"
        "sem s1 is multi, D 1, s:=R8r[rs1], D 1");
    const Timing &t = timingOf(d, "s1");
    ASSERT_EQ(t.reads.size(), 1u);
    EXPECT_TRUE(t.reads[0].pair);
}

TEST(Eval, ConstantRegisterIndex)
{
    Description d = analyze(std::string(prologue) +
        "sem s1 is multi, x:=val32 #disp, D 1, R4w[15]:=x");
    const Timing &t = timingOf(d, "s1");
    ASSERT_EQ(t.writes.size(), 1u);
    EXPECT_EQ(t.writes[0].field, Field::None);
    EXPECT_EQ(t.writes[0].constIdx, 15);
}

TEST(Eval, UnbalancedUnitsRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) + "sem s1 is A ALU, D 1"),
        FatalError);
}

TEST(Eval, UnknownNameRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) + "sem s1 is froznak 3"),
        FatalError);
}

TEST(Eval, UnknownUnitRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) + "sem s1 is AR Bogus, D 1"),
        FatalError);
}

TEST(Eval, ZipLengthMismatchRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) +
                "sem [ a b ] is (\\o. D 1) @ [ add32 ]"),
        FatalError);
}

TEST(Eval, MultiNameValBindsListElements)
{
    Description d = analyze(std::string(prologue) +
        "val [ p q ] is (\\o. \\a. A ALU, x:=o a a, D 1, R ALU, x) "
        "@ [ add32 sub32 ]\n"
        "sem s1 is multi, D 1, s:=R4r[rs1], R4w[rd]:=p s\n"
        "sem s2 is multi, D 1, s:=R4r[rs1], R4w[rd]:=q s");
    // Both sems evaluate: each writes rd with a 1-cycle ALU value.
    EXPECT_EQ(timingOf(d, "s1").writes.size(), 1u);
    EXPECT_EQ(timingOf(d, "s2").writes.size(), 1u);
    EXPECT_EQ(timingOf(d, "s1").group, timingOf(d, "s2").group);
}

TEST(Eval, LatencyIncludesTrailingEvents)
{
    // A read in the final cycle extends the latency past the last D.
    Description d = analyze(std::string(prologue) +
        "sem s1 is multi, D 2, c:=R4r[rs1]");
    EXPECT_EQ(timingOf(d, "s1").latency, 3u);
}

TEST(Eval, NestedConditionalsProduceFourVariants)
{
    Description d = analyze(std::string(prologue) +
        "val a is iflag=1 ? #simm13 : R4r[rs2]\n"
        "val b is rd=0 ? a : R4r[rs1]\n"
        "sem foo is multi, D 1, s:=b, D 1");
    int n = 0;
    for (const Timing &t : d.timings)
        if (t.mnemonic == "foo")
            ++n;
    // rd==0 forks, and only its taken arm forks again on iflag:
    // three reachable variants.
    EXPECT_EQ(n, 3);
    // Each variant's conditions start with the rd test.
    for (const Timing &t : d.timings) {
        if (t.mnemonic != "foo")
            continue;
        ASSERT_FALSE(t.conds.empty());
        EXPECT_EQ(t.conds[0].field, Field::Rd);
    }
}

TEST(Eval, ConcreteConditionDoesNotFork)
{
    Description d = analyze(std::string(prologue) +
        "sem foo is multi, D 1, s:=(1=1 ? R4r[rs1] : R4r[rs2]), D 1");
    int n = 0;
    for (const Timing &t : d.timings)
        if (t.mnemonic == "foo")
            ++n;
    EXPECT_EQ(n, 1);
    EXPECT_EQ(timingOf(d, "foo").reads[0].field, Field::Rs1);
}

TEST(Eval, ReleaseNeverExtendsLatencyPastClamp)
{
    // AR with a delay beyond the last D: the release is clamped to
    // the retire slot.
    Description d = analyze(std::string(prologue) +
        "sem foo is AR ALU 1 7, D 2");
    const Timing &t = timingOf(d, "foo");
    ASSERT_EQ(t.release.size(), t.latency + 1);
    bool found = false;
    for (const auto &ev : t.release[t.latency])
        found |= d.units[ev.unit].name == "ALU";
    EXPECT_TRUE(found);
}

TEST(Eval, DuplicateUnitRejected)
{
    EXPECT_THROW(analyze("unit A1 1\nunit A1 2"), FatalError);
}

TEST(Eval, SemOfUnknownAliasRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) + "sem s1 is Bogus[rs1]"),
        FatalError);
}

TEST(Eval, ListIndexingByConstant)
{
    Description d = analyze(std::string(prologue) +
        "val ops is [ add32 sub32 ]\n"
        "sem s1 is multi, D 1, s:=R4r[rs1], "
        "R4w[rd]:=(ops[1]) s s");
    EXPECT_EQ(timingOf(d, "s1").writes.size(), 1u);
}

TEST(Eval, ApplyingANumberRejected)
{
    EXPECT_THROW(
        analyze(std::string(prologue) + "sem s1 is 3 4"),
        FatalError);
}

} // namespace
} // namespace eel::sadl
