/**
 * @file
 * Fidelity test for the paper's Figure 2: analyzing the figure's
 * hyperSPARC description must reproduce exactly the inferences the
 * paper states Spawn draws from it (§3.1): add/sub/sra "can be dual
 * issued, execute in 3 cycles, read their operands in cycle 1,
 * produce a value at the end of cycle 1 that subsequent instructions
 * can use, and update the register file in cycle 2."
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/sadl/timing.hh"

namespace eel::sadl {
namespace {

class Fig2 : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        std::ifstream f(std::string(EEL_SOURCE_DIR) +
                        "/machines/hypersparc_fig2.sadl");
        ASSERT_TRUE(f.is_open());
        std::stringstream ss;
        ss << f.rdbuf();
        desc = new Description(analyze(ss.str()));
    }
    static void
    TearDownTestSuite()
    {
        delete desc;
        desc = nullptr;
    }

    static std::vector<const Timing *>
    variantsOf(const std::string &mnemonic)
    {
        std::vector<const Timing *> out;
        for (const Timing &t : desc->timings)
            if (t.mnemonic == mnemonic)
                out.push_back(&t);
        return out;
    }

    static Description *desc;
};

Description *Fig2::desc = nullptr;

TEST_F(Fig2, DeclaresTheFiguresResources)
{
    EXPECT_EQ(desc->unitIndex("Group"), 0);
    EXPECT_EQ(desc->units[0].count, 2u);  // 2-way superscalar
    EXPECT_GE(desc->unitIndex("ALU"), 0);
    EXPECT_GE(desc->unitIndex("ALUr"), 0);
    EXPECT_GE(desc->unitIndex("ALUw"), 0);
    EXPECT_GE(desc->unitIndex("LSU"), 0);
    ASSERT_EQ(desc->regFiles.size(), 1u);
    EXPECT_EQ(desc->regFiles[0].name, "R");
    EXPECT_EQ(desc->regFiles[0].size, 32u);
    EXPECT_EQ(desc->regFiles[0].bits, 32u);
}

TEST_F(Fig2, ThreeInstructionsTwoVariantsEach)
{
    for (const char *m : {"add", "sub", "sra"})
        EXPECT_EQ(variantsOf(m).size(), 2u) << m;
}

TEST_F(Fig2, ExecuteInThreeCycles)
{
    for (const char *m : {"add", "sub", "sra"})
        for (const Timing *t : variantsOf(m))
            EXPECT_EQ(t->latency, 3u) << m;
}

TEST_F(Fig2, CanBeDualIssued)
{
    // One Group slot of two acquired in cycle 0, released in cycle 1.
    for (const Timing *t : variantsOf("add")) {
        ASSERT_FALSE(t->acquire[0].empty());
        const UnitEvent &e = t->acquire[0][0];
        EXPECT_EQ(desc->units[e.unit].name, "Group");
        EXPECT_EQ(e.num, 1u);
        bool released_at_1 = false;
        for (const UnitEvent &r : t->release[1])
            if (r.unit == e.unit)
                released_at_1 = true;
        EXPECT_TRUE(released_at_1);
    }
}

TEST_F(Fig2, ReadOperandsInCycleOne)
{
    for (const Timing *t : variantsOf("add"))
        for (const RegAccess &r : t->reads)
            EXPECT_EQ(r.cycle, 1u);
}

TEST_F(Fig2, ValueAvailableAtEndOfCycleOne)
{
    for (const Timing *t : variantsOf("add")) {
        ASSERT_EQ(t->writes.size(), 1u);
        EXPECT_EQ(t->writes[0].valueReady, 1u);
    }
}

TEST_F(Fig2, RegisterFileUpdatedInCycleTwo)
{
    for (const Timing *t : variantsOf("add"))
        EXPECT_EQ(t->writes[0].cycle, 2u);
}

TEST_F(Fig2, ImmediateVariantReadsOneOperand)
{
    auto vars = variantsOf("sub");
    const Timing *imm = nullptr;
    const Timing *rreg = nullptr;
    for (const Timing *t : vars) {
        ASSERT_EQ(t->conds.size(), 1u);
        (t->conds[0].mustEqual ? imm : rreg) = t;
    }
    ASSERT_TRUE(imm && rreg);
    EXPECT_EQ(imm->reads.size(), 1u);   // rs1 only
    EXPECT_EQ(rreg->reads.size(), 2u);  // rs1 and rs2
}

TEST_F(Fig2, AddAndSubShareATimingGroup)
{
    // Spawn groups instructions with identical timing to save space.
    auto a = variantsOf("add"), s = variantsOf("sub");
    EXPECT_EQ(a[0]->group, s[0]->group);
    EXPECT_EQ(a[1]->group, s[1]->group);
}

TEST_F(Fig2, ShiftUsesTheSameAluTiming)
{
    // In the figure sra flows through the same ALU macro shape.
    auto a = variantsOf("add"), r = variantsOf("sra");
    EXPECT_EQ(a[0]->latency, r[0]->latency);
}

} // namespace
} // namespace eel::sadl
