#include <gtest/gtest.h>

#include "src/sadl/parser.hh"
#include "src/support/logging.hh"

namespace eel::sadl {
namespace {

TEST(Parser, UnitDecl)
{
    Program p = parse("unit Group 2\nunit ALU 1, ALUr 2, ALUw 1");
    ASSERT_EQ(p.decls.size(), 2u);
    EXPECT_EQ(p.decls[0].kind, DeclKind::Unit);
    EXPECT_EQ(p.decls[0].names[0], "Group");
    EXPECT_EQ(p.decls[0].counts[0], 2);
    ASSERT_EQ(p.decls[1].names.size(), 3u);
    EXPECT_EQ(p.decls[1].names[2], "ALUw");
    EXPECT_EQ(p.decls[1].counts[2], 1);
}

TEST(Parser, RegisterDecl)
{
    Program p = parse("register untyped{32} R[32]");
    const Decl &d = p.decls[0];
    EXPECT_EQ(d.kind, DeclKind::Register);
    EXPECT_EQ(d.names[0], "R");
    EXPECT_EQ(d.typeBits, 32);
    EXPECT_EQ(d.arraySize, 32);
}

TEST(Parser, AliasDecl)
{
    Program p = parse(
        "unit ALUr 2\nregister untyped{32} R[32]\n"
        "alias signed{32} R4r[i] is AR ALUr, R[i]");
    const Decl &d = p.decls[2];
    EXPECT_EQ(d.kind, DeclKind::Alias);
    EXPECT_EQ(d.names[0], "R4r");
    EXPECT_EQ(d.param, "i");
    EXPECT_EQ(d.typeBits, 32);
    ASSERT_TRUE(d.body);
    EXPECT_EQ(d.body->kind, ExprKind::Seq);
}

TEST(Parser, ValWithNameList)
{
    Program p = parse("val [ + - ] is (\\op. op) @ [ add32 sub32 ]");
    const Decl &d = p.decls[0];
    ASSERT_EQ(d.names.size(), 2u);
    EXPECT_EQ(d.names[0], "+");
    EXPECT_EQ(d.names[1], "-");
    EXPECT_EQ(d.body->kind, ExprKind::Zip);
}

TEST(Parser, LambdaBodyExtendsThroughCommas)
{
    Program p = parse("val f is \\a. D 1, a");
    const Decl &d = p.decls[0];
    ASSERT_EQ(d.body->kind, ExprKind::Lambda);
    EXPECT_EQ(d.body->kids[0]->kind, ExprKind::Seq);
}

TEST(Parser, ConditionalAndEquality)
{
    Program p = parse("val s is iflag=1 ? a : b");
    const Decl &d = p.decls[0];
    ASSERT_EQ(d.body->kind, ExprKind::CondExpr);
    EXPECT_EQ(d.body->kids[0]->kind, ExprKind::EqTest);
}

TEST(Parser, CommandArguments)
{
    Program p = parse("val x is AR Group 2 1, ()");
    const auto &seq = p.decls[0].body;
    ASSERT_EQ(seq->kind, ExprKind::Seq);
    const auto &ar = seq->kids[0];
    EXPECT_EQ(ar->kind, ExprKind::CmdAR);
    EXPECT_EQ(ar->name, "Group");
    EXPECT_EQ(ar->number, 2);
    EXPECT_EQ(ar->number2, 1);
}

TEST(Parser, CommandDefaultArguments)
{
    Program p = parse("val x is A ALU, D, R ALU");
    const auto &seq = p.decls[0].body;
    EXPECT_EQ(seq->kids[0]->kind, ExprKind::CmdA);
    EXPECT_FALSE(seq->kids[0]->hasNumber);
    EXPECT_EQ(seq->kids[1]->kind, ExprKind::CmdD);
    EXPECT_EQ(seq->kids[2]->kind, ExprKind::CmdR);
}

TEST(Parser, RAsRegisterFileIndexing)
{
    // "R[i]" must parse as indexing the register file named R, not
    // as a release command.
    Program p = parse("register untyped{32} R[32]\nval x is R[rs1]");
    EXPECT_EQ(p.decls[1].body->kind, ExprKind::Index);
}

TEST(Parser, ApplicationIsLeftAssociative)
{
    Program p = parse("val x is f a b");
    const auto &e = p.decls[0].body;
    ASSERT_EQ(e->kind, ExprKind::Apply);
    EXPECT_EQ(e->kids[0]->kind, ExprKind::Apply);
    EXPECT_EQ(e->kids[1]->kind, ExprKind::Name);
    EXPECT_EQ(e->kids[1]->name, "b");
}

TEST(Parser, AssignTargets)
{
    Program p = parse("val x is a := f 1, R4w := 2");
    EXPECT_EQ(p.decls[0].body->kind, ExprKind::Seq);
    EXPECT_EQ(p.decls[0].body->kids[0]->kind, ExprKind::Assign);
}

TEST(Parser, AssignToNumberRejected)
{
    EXPECT_THROW(parse("val x is 1 := 2"), FatalError);
}

TEST(Parser, UnitValue)
{
    Program p = parse("val x is ()");
    EXPECT_EQ(p.decls[0].body->kind, ExprKind::UnitVal);
}

TEST(Parser, ListOfPrimaries)
{
    Program p = parse("val x is [ a b (f c) 3 ]");
    const auto &e = p.decls[0].body;
    ASSERT_EQ(e->kind, ExprKind::List);
    ASSERT_EQ(e->kids.size(), 4u);
    EXPECT_EQ(e->kids[2]->kind, ExprKind::Apply);
    EXPECT_EQ(e->kids[3]->kind, ExprKind::Number);
}

TEST(Parser, MissingIsRejected)
{
    EXPECT_THROW(parse("val x 3"), FatalError);
}

TEST(Parser, GarbageDeclRejected)
{
    EXPECT_THROW(parse("frobnicate x is 3"), FatalError);
}

} // namespace
} // namespace eel::sadl
