#include <gtest/gtest.h>

#include "src/sadl/lexer.hh"
#include "src/support/logging.hh"

namespace eel::sadl {
namespace {

std::vector<Tok>
kinds(const std::string &src)
{
    std::vector<Tok> out;
    for (const Token &t : tokenize(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, Keywords)
{
    auto v = kinds("unit val alias register sem is");
    ASSERT_EQ(v.size(), 7u);
    EXPECT_EQ(v[0], Tok::KwUnit);
    EXPECT_EQ(v[1], Tok::KwVal);
    EXPECT_EQ(v[2], Tok::KwAlias);
    EXPECT_EQ(v[3], Tok::KwRegister);
    EXPECT_EQ(v[4], Tok::KwSem);
    EXPECT_EQ(v[5], Tok::KwIs);
    EXPECT_EQ(v[6], Tok::End);
}

TEST(Lexer, CommandLettersAreIdentifiers)
{
    // A/R/AR/D are contextual; the lexer produces plain identifiers.
    auto toks = tokenize("A R AR D");
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "A");
    EXPECT_EQ(toks[2].kind, Tok::Ident);
    EXPECT_EQ(toks[2].text, "AR");
}

TEST(Lexer, OperatorIdentifiers)
{
    auto toks = tokenize("+ - & | ^ << >>");
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(toks[i].kind, Tok::OpIdent) << i;
    EXPECT_EQ(toks[5].text, "<<");
    EXPECT_EQ(toks[6].text, ">>");
}

TEST(Lexer, AssignVsColon)
{
    auto toks = tokenize("x := y ? a : b");
    EXPECT_EQ(toks[1].kind, Tok::Assign);
    EXPECT_EQ(toks[5].kind, Tok::Colon);
}

TEST(Lexer, Immediates)
{
    auto toks = tokenize("#simm13 #imm22");
    EXPECT_EQ(toks[0].kind, Tok::Immediate);
    EXPECT_EQ(toks[0].text, "simm13");
    EXPECT_EQ(toks[1].text, "imm22");
}

TEST(Lexer, BareHashIsError)
{
    EXPECT_THROW(tokenize("# foo"), FatalError);
}

TEST(Lexer, Numbers)
{
    auto toks = tokenize("0 42 4095");
    EXPECT_EQ(toks[0].value, 0);
    EXPECT_EQ(toks[1].value, 42);
    EXPECT_EQ(toks[2].value, 4095);
}

TEST(Lexer, CommentsAndLines)
{
    auto toks = tokenize("a // comment with := and ?\nb");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, Lambda)
{
    auto toks = tokenize("\\op.\\a. x");
    EXPECT_EQ(toks[0].kind, Tok::Lambda);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[2].kind, Tok::Dot);
}

TEST(Lexer, Punctuation)
{
    auto v = kinds("( ) [ ] { } , @");
    EXPECT_EQ(v[0], Tok::LParen);
    EXPECT_EQ(v[1], Tok::RParen);
    EXPECT_EQ(v[2], Tok::LBracket);
    EXPECT_EQ(v[3], Tok::RBracket);
    EXPECT_EQ(v[4], Tok::LBrace);
    EXPECT_EQ(v[5], Tok::RBrace);
    EXPECT_EQ(v[6], Tok::Comma);
    EXPECT_EQ(v[7], Tok::At);
}

TEST(Lexer, UnexpectedCharacter)
{
    EXPECT_THROW(tokenize("a $ b"), FatalError);
}

} // namespace
} // namespace eel::sadl
