#include <gtest/gtest.h>

#include <algorithm>

#include "src/isa/builder.hh"
#include "src/isa/instruction.hh"

namespace eel::isa {
namespace {

bool
usesReg(const Instruction &in, RegId r)
{
    auto u = in.uses();
    return std::any_of(u.begin(), u.end(),
                       [&](const auto &a) { return a.reg == r; });
}

bool
defsReg(const Instruction &in, RegId r)
{
    auto d = in.defs();
    return std::any_of(d.begin(), d.end(),
                       [&](const auto &a) { return a.reg == r; });
}

TEST(DefUse, AddRegReg)
{
    Instruction in = build::rrr(Op::Add, 3, 1, 2);
    EXPECT_TRUE(usesReg(in, intReg(1)));
    EXPECT_TRUE(usesReg(in, intReg(2)));
    EXPECT_FALSE(usesReg(in, intReg(3)));
    EXPECT_TRUE(defsReg(in, intReg(3)));
    EXPECT_FALSE(defsReg(in, iccReg()));
}

TEST(DefUse, AddImmediateHasNoRs2Use)
{
    Instruction in = build::rri(Op::Add, 3, 1, 42);
    EXPECT_TRUE(usesReg(in, intReg(1)));
    EXPECT_EQ(in.uses().n, 1);
}

TEST(DefUse, SubccDefsIcc)
{
    Instruction in = build::cmp(1, 2);
    EXPECT_TRUE(defsReg(in, iccReg()));
    // rd is %g0: untracked but still listed as slot Rd.
    EXPECT_TRUE(usesReg(in, intReg(1)));
}

TEST(DefUse, BranchUsesIcc)
{
    EXPECT_TRUE(usesReg(build::bicc(cond::ne, 4), iccReg()));
    EXPECT_TRUE(usesReg(build::bicc(cond::g, 4), iccReg()));
}

TEST(DefUse, AlwaysAndNeverBranchesDoNotUseIcc)
{
    EXPECT_FALSE(usesReg(build::ba(4), iccReg()));
    EXPECT_FALSE(usesReg(build::bicc(cond::n, 4), iccReg()));
}

TEST(DefUse, FpBranchUsesFcc)
{
    EXPECT_TRUE(usesReg(build::fbfcc(fcond::l, 4), fccReg()));
    EXPECT_FALSE(usesReg(build::fbfcc(fcond::a, 4), fccReg()));
}

TEST(DefUse, LoadDefsRdUsesAddress)
{
    Instruction in = build::memr(Op::Ld, 5, 1, 2);
    EXPECT_TRUE(usesReg(in, intReg(1)));
    EXPECT_TRUE(usesReg(in, intReg(2)));
    EXPECT_TRUE(defsReg(in, intReg(5)));
    EXPECT_FALSE(usesReg(in, intReg(5)));
}

TEST(DefUse, StoreUsesRdAsData)
{
    Instruction in = build::memi(Op::St, 5, 1, 8);
    EXPECT_TRUE(usesReg(in, intReg(5)));
    EXPECT_TRUE(usesReg(in, intReg(1)));
    EXPECT_EQ(in.defs().n, 0);
}

TEST(DefUse, LddDefsPair)
{
    Instruction in = build::memi(Op::Ldd, 4, 1, 0);
    EXPECT_TRUE(defsReg(in, intReg(4)));
    EXPECT_TRUE(defsReg(in, intReg(5)));
}

TEST(DefUse, StdUsesPair)
{
    Instruction in = build::memi(Op::Std, 4, 1, 0);
    EXPECT_TRUE(usesReg(in, intReg(4)));
    EXPECT_TRUE(usesReg(in, intReg(5)));
}

TEST(DefUse, FpDoubleUsesPairs)
{
    Instruction in = build::fp3(Op::Faddd, 4, 0, 2);
    EXPECT_TRUE(usesReg(in, fpReg(0)));
    EXPECT_TRUE(usesReg(in, fpReg(1)));
    EXPECT_TRUE(usesReg(in, fpReg(2)));
    EXPECT_TRUE(usesReg(in, fpReg(3)));
    EXPECT_TRUE(defsReg(in, fpReg(4)));
    EXPECT_TRUE(defsReg(in, fpReg(5)));
}

TEST(DefUse, FpUnaryReadsOnlyRs2)
{
    Instruction in = build::fp2(Op::Fmovs, 3, 7);
    EXPECT_TRUE(usesReg(in, fpReg(7)));
    EXPECT_EQ(in.uses().n, 1);
    EXPECT_TRUE(defsReg(in, fpReg(3)));
}

TEST(DefUse, FcmpDefsFccNotFrd)
{
    Instruction in = build::fcmp(Op::Fcmps, 1, 2);
    EXPECT_TRUE(defsReg(in, fccReg()));
    EXPECT_FALSE(defsReg(in, fpReg(0)));
}

TEST(DefUse, MulDefsY)
{
    Instruction in = build::rrr(Op::Umul, 3, 1, 2);
    EXPECT_TRUE(defsReg(in, yReg()));
    EXPECT_TRUE(defsReg(in, intReg(3)));
}

TEST(DefUse, DivUsesY)
{
    Instruction in = build::rrr(Op::Udiv, 3, 1, 2);
    EXPECT_TRUE(usesReg(in, yReg()));
}

TEST(DefUse, CallDefsO7)
{
    EXPECT_TRUE(defsReg(build::call(16), intReg(reg::o7)));
}

TEST(DefUse, RetUsesI7)
{
    EXPECT_TRUE(usesReg(build::ret(), intReg(reg::i7)));
}

TEST(DefUse, SethiDefsRdOnly)
{
    Instruction in = build::sethi(9, 0x1000);
    EXPECT_TRUE(defsReg(in, intReg(9)));
    EXPECT_EQ(in.uses().n, 0);
}

TEST(DefUse, NopTouchesNothing)
{
    EXPECT_EQ(build::nop().uses().n, 0);
    EXPECT_EQ(build::nop().defs().n, 0);
}

TEST(DefUse, G0IsUntracked)
{
    // %g0 appears in access lists but is marked untracked.
    Instruction in = build::rrr(Op::Add, 0, 0, 0);
    for (const auto &a : in.defs())
        EXPECT_FALSE(a.reg.tracked());
}

} // namespace
} // namespace eel::isa
