#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/isa/instruction.hh"

namespace eel::isa {
namespace {

TEST(Disasm, Alu)
{
    EXPECT_EQ(disassemble(build::rrr(Op::Add, 10, 9, 8)),
              "add %o1, %o0, %o2");
    EXPECT_EQ(disassemble(build::rri(Op::Sub, 1, 2, -4)),
              "sub %g2, -4, %g1");
}

TEST(Disasm, Sethi)
{
    EXPECT_EQ(disassemble(build::sethi(9, 0x12345400)),
              "sethi %hi(0x12345400), %o1");
}

TEST(Disasm, Nop)
{
    EXPECT_EQ(disassemble(build::nop()), "nop");
}

TEST(Disasm, Memory)
{
    EXPECT_EQ(disassemble(build::memi(Op::Ld, 8, 16, 8)),
              "ld [%l0 + 8], %o0");
    EXPECT_EQ(disassemble(build::memi(Op::St, 8, 16, 0)),
              "st %o0, [%l0]");
    EXPECT_EQ(disassemble(build::memr(Op::Lddf, 2, 17, 18)),
              "lddf [%l1 + %l2], %f2");
}

TEST(Disasm, BranchRelative)
{
    EXPECT_EQ(disassemble(build::bicc(cond::ne, 4)), "bne .+16");
    EXPECT_EQ(disassemble(build::bicc(cond::e, -2, true)),
              "be,a .-8");
    EXPECT_EQ(disassemble(build::ba(0)), "ba .+0");
}

TEST(Disasm, BranchAbsoluteWithPc)
{
    EXPECT_EQ(disassemble(build::bicc(cond::ne, 4), 0x10000),
              "bne 0x10010");
    EXPECT_EQ(disassemble(build::call(-4), 0x10020), "call 0x10010");
}

TEST(Disasm, ReturnIdioms)
{
    EXPECT_EQ(disassemble(build::ret()), "ret");
    EXPECT_EQ(disassemble(build::retl()), "retl");
    Instruction j = build::rri(Op::Jmpl, 15, 9, 0);
    EXPECT_EQ(disassemble(j), "jmpl %o1 + 0, %o7");
}

TEST(Disasm, Fp)
{
    EXPECT_EQ(disassemble(build::fp3(Op::Faddd, 4, 0, 2)),
              "faddd %f0, %f2, %f4");
    EXPECT_EQ(disassemble(build::fp2(Op::Fmovs, 3, 7)),
              "fmovs %f7, %f3");
    EXPECT_EQ(disassemble(build::fcmp(Op::Fcmps, 1, 2)),
              "fcmps %f1, %f2");
}

TEST(Disasm, Trap)
{
    EXPECT_EQ(disassemble(build::ta(0)), "ta 0");
}

TEST(Disasm, RegisterNames)
{
    EXPECT_EQ(regName(intReg(0)), "%g0");
    EXPECT_EQ(regName(intReg(14)), "%o6");
    EXPECT_EQ(regName(intReg(30)), "%i6");
    EXPECT_EQ(regName(fpReg(31)), "%f31");
    EXPECT_EQ(regName(iccReg()), "%icc");
    EXPECT_EQ(regName(yReg()), "%y");
}

} // namespace
} // namespace eel::isa
