#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/isa/instruction.hh"
#include "src/support/logging.hh"
#include "src/support/rng.hh"

namespace eel::isa {
namespace {

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    if (a.op != b.op)
        return false;
    const OpInfo &inf = opInfo(a.op);
    switch (inf.format) {
      case Format::F1Call:
        return a.disp == b.disp;
      case Format::F2Sethi:
        return a.op == Op::Nop ||
               (a.rd == b.rd && a.imm22 == b.imm22);
      case Format::F2Branch:
        return a.cond == b.cond && a.annul == b.annul &&
               a.disp == b.disp;
      case Format::F3Fp:
        return a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2;
      case Format::F3Trap:
        return a.cond == b.cond && a.rs1 == b.rs1 &&
               a.simm13 == b.simm13;
      case Format::F3Arith:
      case Format::F3Mem:
        if (a.rd != b.rd || a.rs1 != b.rs1 || a.iflag != b.iflag)
            return false;
        return a.iflag ? a.simm13 == b.simm13 : a.rs2 == b.rs2;
    }
    return false;
}

/** Build a random valid instruction of the given opcode. */
Instruction
randomInstruction(Op op, eel::Rng &rng)
{
    Instruction in;
    in.op = op;
    const OpInfo &inf = opInfo(op);
    switch (inf.format) {
      case Format::F1Call:
        in.disp = static_cast<int32_t>(
            rng.uniform(-(1 << 29), (1 << 29) - 1));
        break;
      case Format::F2Sethi:
        if (op == Op::Sethi) {
            in.rd = static_cast<uint8_t>(rng.uniform(0, 31));
            in.imm22 = static_cast<uint32_t>(
                rng.uniform(0, (1 << 22) - 1));
            if (in.rd == 0 && in.imm22 == 0)
                in.imm22 = 1;  // would canonicalize to nop
        }
        break;
      case Format::F2Branch:
        in.cond = static_cast<uint8_t>(rng.uniform(0, 15));
        in.annul = rng.chance(0.3);
        in.disp = static_cast<int32_t>(
            rng.uniform(-(1 << 21), (1 << 21) - 1));
        break;
      case Format::F3Fp:
        in.rd = static_cast<uint8_t>(rng.uniform(0, 31));
        in.rs1 = static_cast<uint8_t>(rng.uniform(0, 31));
        in.rs2 = static_cast<uint8_t>(rng.uniform(0, 31));
        break;
      case Format::F3Trap:
        in.cond = static_cast<uint8_t>(rng.uniform(0, 15));
        in.rs1 = static_cast<uint8_t>(rng.uniform(0, 31));
        in.simm13 = static_cast<int32_t>(rng.uniform(0, 127));
        break;
      case Format::F3Arith:
      case Format::F3Mem:
        in.rd = static_cast<uint8_t>(rng.uniform(0, 31));
        in.rs1 = static_cast<uint8_t>(rng.uniform(0, 31));
        in.iflag = rng.chance(0.5);
        if (in.iflag)
            in.simm13 = static_cast<int32_t>(
                rng.uniform(-4096, 4095));
        else
            in.rs2 = static_cast<uint8_t>(rng.uniform(0, 31));
        break;
    }
    return in;
}

/** Encode/decode round trip, parameterized over every opcode. */
class RoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RoundTrip, RandomInstances)
{
    Op op = static_cast<Op>(GetParam());
    eel::Rng rng(GetParam() * 7919 + 1);
    for (int i = 0; i < 200; ++i) {
        Instruction in = randomInstruction(op, rng);
        uint32_t word = encode(in);
        Instruction back = decode(word);
        ASSERT_TRUE(sameInstruction(in, back))
            << disassemble(in) << " != " << disassemble(back)
            << " (word " << std::hex << word << ")";
        // Re-encoding must be stable.
        EXPECT_EQ(encode(back), word);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTrip,
    ::testing::Range(1u, numOps),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(opName(static_cast<Op>(info.param)));
    });

TEST(Decode, NopIsCanonical)
{
    Instruction nop = build::nop();
    uint32_t w = encode(nop);
    EXPECT_EQ(decode(w).op, Op::Nop);
}

TEST(Decode, SethiNonzeroIsNotNop)
{
    Instruction s = build::sethi(0, 1 << 10);
    EXPECT_EQ(decode(encode(s)).op, Op::Sethi);
}

TEST(Decode, GarbageIsInvalid)
{
    // op=0, op2=7 is not a defined format-2 opcode.
    EXPECT_EQ(decode(0x01c00000u).op, Op::Invalid);
    // op=2, op3=0x3f undefined in the subset.
    EXPECT_EQ(decode(0x81f80000u).op, Op::Invalid);
}

TEST(Encode, RejectsOutOfRangeImmediates)
{
    Instruction in = build::rri(Op::Add, 1, 2, 0);
    in.simm13 = 5000;
    EXPECT_THROW(encode(in), FatalError);
    in.simm13 = -5000;
    EXPECT_THROW(encode(in), FatalError);
}

TEST(Encode, RejectsFarBranch)
{
    Instruction in = build::ba(1 << 22);
    EXPECT_THROW(encode(in), FatalError);
}

TEST(Encode, KnownBitPatterns)
{
    // add %g1, %g2, %g3 == 0x86004002 (SPARC V8 manual encoding).
    EXPECT_EQ(encode(build::rrr(Op::Add, 3, 1, 2)), 0x86004002u);
    // or %g0, 5, %g1 == mov 5, %g1 == 0x82102005.
    EXPECT_EQ(encode(build::movi(1, 5)), 0x82102005u);
    // sethi %hi(0x40000), %g1: imm22 = 0x100 -> 0x03000100.
    EXPECT_EQ(encode(build::sethi(1, 0x40000)), 0x03000100u);
    // nop == sethi 0, %g0 == 0x01000000.
    EXPECT_EQ(encode(build::nop()), 0x01000000u);
    // ret == jmpl %i7+8, %g0 == 0x81c7e008.
    EXPECT_EQ(encode(build::ret()), 0x81c7e008u);
    // restore %g0, %g0, %g0 == 0x81e80000.
    EXPECT_EQ(encode(build::restore()), 0x81e80000u);
}

} // namespace
} // namespace eel::isa
