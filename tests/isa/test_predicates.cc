#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/isa/instruction.hh"

namespace eel::isa {
namespace {

TEST(Predicates, CtiClassification)
{
    EXPECT_TRUE(build::ba(4).isCti());
    EXPECT_TRUE(build::call(4).isCti());
    EXPECT_TRUE(build::ret().isCti());
    EXPECT_TRUE(build::fbfcc(fcond::e, 4).isCti());
    EXPECT_FALSE(build::nop().isCti());
    EXPECT_FALSE(build::ta(0).isCti());
    EXPECT_FALSE(build::rrr(Op::Add, 1, 2, 3).isCti());
}

TEST(Predicates, BranchKinds)
{
    EXPECT_TRUE(build::ba(4).isAlwaysBranch());
    EXPECT_FALSE(build::ba(4).isNeverBranch());
    EXPECT_TRUE(build::bicc(cond::n, 4).isNeverBranch());
    EXPECT_FALSE(build::bicc(cond::ne, 4).isAlwaysBranch());
    EXPECT_FALSE(build::call(4).isBranch());
}

TEST(Predicates, FallsThrough)
{
    EXPECT_TRUE(build::bicc(cond::ne, 4).fallsThrough());
    EXPECT_FALSE(build::ba(4).fallsThrough());
    EXPECT_TRUE(build::call(4).fallsThrough());
    EXPECT_FALSE(build::ret().fallsThrough());
    EXPECT_FALSE(build::retl().fallsThrough());
    EXPECT_FALSE(build::ta(isa::trap::exit_prog).fallsThrough());
}

TEST(Predicates, ReturnsAndCalls)
{
    EXPECT_TRUE(build::ret().isReturn());
    EXPECT_TRUE(build::retl().isReturn());
    EXPECT_FALSE(build::call(4).isReturn());
    EXPECT_TRUE(build::call(4).isCall());
    // jmpl linking through %o7 is an indirect call.
    EXPECT_TRUE(build::rri(Op::Jmpl, reg::o7, 9, 0).isCall());
    EXPECT_FALSE(build::ret().isCall());
}

TEST(Predicates, MemoryOps)
{
    EXPECT_TRUE(build::memi(Op::Ld, 1, 2, 0).isLoad());
    EXPECT_FALSE(build::memi(Op::Ld, 1, 2, 0).isStore());
    EXPECT_TRUE(build::memi(Op::Stdf, 0, 2, 0).isStore());
    EXPECT_TRUE(build::memi(Op::Stdf, 0, 2, 0).isMem());
    EXPECT_FALSE(build::rrr(Op::Add, 1, 2, 3).isMem());
}

TEST(Predicates, Barriers)
{
    EXPECT_TRUE(build::save(96).isBarrier());
    EXPECT_TRUE(build::restore().isBarrier());
    EXPECT_TRUE(build::ta(0).isBarrier());
    EXPECT_FALSE(build::memi(Op::Ld, 1, 2, 0).isBarrier());
    EXPECT_FALSE(build::ba(4).isBarrier());
}

TEST(Predicates, OpNameRoundTrip)
{
    for (unsigned i = 1; i < numOps; ++i) {
        Op op = static_cast<Op>(i);
        auto back = opFromName(opName(op));
        ASSERT_TRUE(back.has_value()) << opName(op);
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opFromName("bogus").has_value());
}

TEST(Predicates, MemBytes)
{
    EXPECT_EQ(opInfo(Op::Ld).memBytes, 4);
    EXPECT_EQ(opInfo(Op::Ldub).memBytes, 1);
    EXPECT_EQ(opInfo(Op::Lduh).memBytes, 2);
    EXPECT_EQ(opInfo(Op::Stdf).memBytes, 8);
    EXPECT_EQ(opInfo(Op::Add).memBytes, 0);
}

} // namespace
} // namespace eel::isa
