/**
 * @file
 * Property tests: scheduling must preserve semantics.
 *
 * Two layers. Random straight-line blocks are executed before and
 * after scheduling (on every machine model and alias policy) and the
 * complete architectural state — integer registers, fp registers,
 * and the touched memory — must match. On top of that, a
 * generator-driven loop pushes 64 seeded random whole programs
 * through the batch rewriter's scheduled and superblock variants
 * (COW-shared sections, store-interned) and requires each to stay
 * emulator-identical to the unscheduled instrumented build: same
 * output, same exit code, same per-block execution counts. Failures
 * print the seed.
 */

#include <gtest/gtest.h>

#include "src/eel/batch.hh"
#include "src/exe/executable.hh"
#include "src/exe/section_store.hh"
#include "src/isa/builder.hh"
#include "src/sched/scheduler.hh"
#include "src/sim/emulator.hh"
#include "src/support/rng.hh"
#include "src/workload/generator.hh"
#include "tests/fuzz_spec.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using isa::Op;

/** Random straight-line block over %o0-%o5, %l5-%l7, memory. */
InstSeq
randomBlock(eel::Rng &rng, size_t len)
{
    static constexpr uint8_t pool[] = {8, 9, 10, 11, 12, 13,
                                       21, 22, 23};
    auto reg = [&] { return pool[rng.uniform(0, 8)]; };
    InstSeq out;
    for (size_t i = 0; i < len; ++i) {
        InstRef r;
        r.isInstrumentation = rng.chance(0.3);
        // Instrumentation memory accesses use a disjoint address
        // range, upholding the paper's aliasing assumption (§4) —
        // otherwise reordering them past original accesses would
        // legitimately change results.
        int32_t mem_base = r.isInstrumentation ? 128 : 0;
        switch (rng.uniform(0, 9)) {
          case 0:
            r.inst = b::memi(Op::Ld, reg(), 16,
                             mem_base + 4 * rng.uniform(0, 31));
            break;
          case 1:
            r.inst = b::memi(Op::St, reg(), 16,
                             mem_base + 4 * rng.uniform(0, 31));
            break;
          case 2:
            r.inst = b::fp3(rng.chance(0.5) ? Op::Faddd : Op::Fmuld,
                            2 * rng.uniform(0, 5),
                            2 * rng.uniform(0, 5),
                            2 * rng.uniform(0, 5));
            break;
          case 3:
            r.inst = b::rri(Op::Sll, reg(), reg(),
                            rng.uniform(1, 7));
            break;
          case 4:
            r.inst = b::cmpi(reg(), rng.uniform(-10, 10));
            break;
          case 5:
            r.inst = b::sethi(reg(), rng.uniform(0, 1 << 20) << 10);
            break;
          default:
            r.inst = b::rrr(rng.chance(0.5) ? Op::Add : Op::Xor,
                            reg(), reg(), reg());
        }
        out.push_back(r);
    }
    return out;
}

struct FinalState
{
    uint32_t iregs[32];
    uint32_t fregs[32];
    std::vector<uint32_t> mem;

    bool operator==(const FinalState &) const = default;
};

FinalState
runBlock(const InstSeq &block)
{
    exe::Executable x;
    // Prologue: point %l0 at the data region, init work registers.
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::sethi(16, exe::dataBase));
    for (uint8_t r : {8, 9, 10, 11, 12, 13, 21, 22, 23})
        push(b::rri(Op::Or, r, 0, 64 + r));
    for (unsigned p = 0; p < 6; ++p)
        push(b::memi(Op::Lddf, 2 * p, 16, 8 * p));
    for (const InstRef &r : block)
        push(r.inst);
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});
    x.entry = exe::textBase;
    // 256 bytes of patterned data.
    for (int i = 0; i < 256; ++i)
        x.data.push_back(static_cast<uint8_t>(i * 37 + 11));

    sim::Emulator emu(x);
    sim::RunResult res = emu.run();
    EXPECT_TRUE(res.exited);

    FinalState fs;
    for (unsigned r = 0; r < 32; ++r)
        fs.iregs[r] = emu.reg(r);
    for (unsigned r = 0; r < 32; ++r)
        fs.fregs[r] = emu.fpreg(r);
    for (uint32_t a = 0; a < 256; a += 4)
        fs.mem.push_back(emu.readWord(exe::dataBase + a));
    return fs;
}

struct Param
{
    const char *machine;
    AliasPolicy alias;
};

class SchedulePreservesSemantics
    : public ::testing::TestWithParam<Param>
{};

TEST_P(SchedulePreservesSemantics, RandomBlocks)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(GetParam().machine);
    SchedOptions opts;
    opts.alias = GetParam().alias;
    ListScheduler sched(m, opts);

    eel::Rng rng(0xEE1);
    for (int trial = 0; trial < 60; ++trial) {
        InstSeq block = randomBlock(rng, rng.uniform(1, 24));
        InstSeq scheduled = sched.scheduleBlock(block);
        ASSERT_EQ(runBlock(block), runBlock(scheduled))
            << "machine " << GetParam().machine << " trial "
            << trial;
    }
}

/**
 * Whole-program layer: scheduled (local) and superblock variants of
 * 64 seeded generator programs, built through the COW store, must be
 * emulator-identical to the unscheduled instrumented variant.
 */
TEST(SchedulePreservesSemantics, GeneratorProgramsThroughCowStore)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    for (uint64_t seed = 100; seed < 164; ++seed) {
        SCOPED_TRACE("generator seed " + std::to_string(seed));
        workload::GenOptions gopts;
        gopts.machine = &m;
        exe::Executable orig =
            workload::generate(eel::tests::randomSpec(seed), gopts);

        exe::SectionStore store;
        edit::BatchOptions bopts;
        bopts.model = &m;
        bopts.store = &store;
        edit::BatchRewriter rw(orig, bopts);
        edit::BatchResult batch =
            rw.rewriteAll({edit::VariantKind::SlowProfile,
                           edit::VariantKind::Sched,
                           edit::VariantKind::Superblock,
                           edit::VariantKind::Pipeline});

        sim::Emulator unsched(
            batch.variants[0].image, sim::Emulator::Config{},
            sim::Emulator::decodeText(batch.variants[0].image,
                                      store));
        sim::Emulator local(
            batch.variants[1].image, sim::Emulator::Config{},
            sim::Emulator::decodeText(batch.variants[1].image,
                                      store));
        sim::Emulator sblock(
            batch.variants[2].image, sim::Emulator::Config{},
            sim::Emulator::decodeText(batch.variants[2].image,
                                      store));
        sim::Emulator pipe(
            batch.variants[3].image, sim::Emulator::Config{},
            sim::Emulator::decodeText(batch.variants[3].image,
                                      store));
        sim::RunResult ru = unsched.run();
        sim::RunResult rl = local.run();
        sim::RunResult rs = sblock.run();
        sim::RunResult rp = pipe.run();
        ASSERT_TRUE(ru.exited);
        ASSERT_TRUE(rl.exited);
        ASSERT_TRUE(rs.exited);
        ASSERT_TRUE(rp.exited);
        EXPECT_EQ(rl.exitCode, ru.exitCode);
        EXPECT_EQ(rs.exitCode, ru.exitCode);
        EXPECT_EQ(rp.exitCode, ru.exitCode);
        EXPECT_EQ(rl.output, ru.output);
        EXPECT_EQ(rs.output, ru.output);
        EXPECT_EQ(rp.output, ru.output);
        EXPECT_TRUE(local.snapshot().equalTo(unsched.snapshot()));
        EXPECT_TRUE(sblock.snapshot().equalTo(unsched.snapshot()));
        EXPECT_TRUE(pipe.snapshot().equalTo(unsched.snapshot()));
        // Identical dynamic behaviour at block granularity: every
        // original block executed the same number of times.
        auto base_counts = qpt::readCounts(unsched, batch.profilePlan);
        EXPECT_EQ(qpt::readCounts(local, batch.profilePlan),
                  base_counts);
        EXPECT_EQ(qpt::readCounts(sblock, batch.profilePlan),
                  base_counts);
        EXPECT_EQ(qpt::readCounts(pipe, batch.profilePlan),
                  base_counts);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SchedulePreservesSemantics,
    ::testing::Values(
        Param{"hypersparc", AliasPolicy::SeparateInstrumentation},
        Param{"supersparc", AliasPolicy::SeparateInstrumentation},
        Param{"ultrasparc", AliasPolicy::SeparateInstrumentation},
        Param{"ultrasparc", AliasPolicy::Conservative}),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::string(info.param.machine) +
               (info.param.alias == AliasPolicy::Conservative
                    ? "_conservative"
                    : "_separate");
    });

} // namespace
} // namespace eel::sched
