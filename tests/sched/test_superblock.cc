/**
 * @file
 * Superblock scheduling tests. Two layers:
 *
 *  - Speculation legality on hand-built segments: an instruction
 *    that writes a register live into a side exit's target must
 *    never move above that exit; stores and possibly-faulting loads
 *    never speculate at all; a hot exit (exitProb) blocks body
 *    hoists even when they would be legal.
 *
 *  - End-to-end oracle on CINT-shaped workloads: rewriting with
 *    tail-duplicated superblocks must leave program behaviour
 *    untouched — identical emulator output, identical architectural
 *    exit state, and an identical dynamic execution trace at block
 *    granularity (per-block counter values; instruction-level order
 *    inside a block legitimately differs under scheduling).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/eel/editor.hh"
#include "src/isa/builder.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/qpt/profiler.hh"
#include "src/sched/superblock.hh"
#include "src/sim/emulator.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;

InstRef
ref(isa::Instruction in)
{
    InstRef r;
    r.inst = in;
    return r;
}

const machine::MachineModel &
m()
{
    return machine::MachineModel::builtin("ultrasparc");
}

/** Index of the first instruction in `seq` encoding like `in`, or
 *  -1. */
int
find(const InstSeq &seq, const isa::Instruction &in)
{
    uint32_t word = isa::encode(in);
    for (size_t i = 0; i < seq.size(); ++i)
        if (isa::encode(seq[i].inst) == word)
            return static_cast<int>(i);
    return -1;
}

/** Two-segment trace: seg0 = [body..., bne, nop] with a CondExit
 *  boundary, seg1 = tail. */
std::vector<SbSegment>
twoSegments(InstSeq seg0_body, InstSeq seg1,
            std::bitset<32> exit_live, double exit_prob,
            bool annul = false)
{
    std::vector<SbSegment> segs(2);
    segs[0].insts = std::move(seg0_body);
    segs[0].insts.push_back(ref(b::bicc(cond::ne, 8, annul)));
    segs[0].insts.push_back(ref(b::nop()));
    segs[0].ctiPos = static_cast<int>(segs[0].insts.size()) - 2;
    segs[0].boundary = BoundaryKind::CondExit;
    segs[0].exitLive = exit_live;
    segs[0].exitProb = exit_prob;
    segs[1].insts = std::move(seg1);
    return segs;
}

TEST(Superblock, LiveOutOnSideExitNeverHoisted)
{
    // seg0 ends in a load-use stall the scheduler wants to fill;
    // seg1's first instruction would fill it but writes %o2, which
    // is live into the side exit's target.
    isa::Instruction clobber = b::rri(Op::Add, 10, 10, 1);  // %o2
    std::bitset<32> live;
    live.set(10);
    auto segs = twoSegments(
        {ref(b::memi(Op::Ld, 8, 16, 0)),
         ref(b::rri(Op::Subcc, 0, 8, 5))},
        {ref(clobber), ref(b::memi(Op::St, 10, 16, 8))},
        live, 0.0);

    SuperblockStats stats;
    InstSeq out = scheduleSuperblock(segs, m(), {}, {}, &stats);

    int cti = find(out, b::bicc(cond::ne, 8));
    int at = find(out, clobber);
    ASSERT_GE(cti, 0);
    ASSERT_GE(at, 0);
    // Above the branch AND in its delay slot both execute on the
    // side-exit path; the clobber must sit strictly below the slot.
    EXPECT_GT(at, cti + 1);
    EXPECT_EQ(stats.hoisted, 0u);
}

TEST(Superblock, StoresAndPlainLoadsNeverSpeculate)
{
    isa::Instruction store = b::memi(Op::St, 9, 16, 8);
    isa::Instruction load = b::memi(Op::Ld, 11, 16, 12);
    auto segs = twoSegments(
        {ref(b::memi(Op::Ld, 8, 16, 0)),
         ref(b::rri(Op::Subcc, 0, 8, 5))},
        {ref(store), ref(load),
         ref(b::rri(Op::Add, 12, 11, 1))},
        std::bitset<32>(), 0.0);

    InstSeq out = scheduleSuperblock(segs, m(), {}, {});

    int cti = find(out, b::bicc(cond::ne, 8));
    ASSERT_GE(cti, 0);
    EXPECT_GT(find(out, store), cti + 1);
    EXPECT_GT(find(out, load), cti + 1);
}

TEST(Superblock, SafeLoadHoistsIntoStallAboveColdExit)
{
    // An instrumentation load with a memory tag is the only
    // zero-stall candidate for the bubble behind seg0's load; the
    // exit is cold, so it may cross. The branch annuls, putting the
    // delay slot off-limits to refilling — the load must land in the
    // body, strictly above the exit.
    InstRef counter = ref(b::memi(Op::Ld, 7, 6, 0));  // %g7 = [%g6]
    counter.isInstrumentation = true;
    counter.memTag = 1;
    auto segs = twoSegments(
        {ref(b::memi(Op::Ld, 8, 16, 0)),
         ref(b::rri(Op::Subcc, 0, 8, 5))},
        {counter, ref(b::rri(Op::Add, 7, 7, 1))},
        std::bitset<32>(), 0.0, /*annul=*/true);

    SuperblockStats stats;
    InstSeq out = scheduleSuperblock(segs, m(), {}, {}, &stats);

    int cti = find(out, b::bicc(cond::ne, 8, true));
    int at = find(out, counter.inst);
    ASSERT_GE(cti, 0);
    ASSERT_GE(at, 0);
    EXPECT_LT(at, cti);
    EXPECT_GE(stats.hoisted, 1u);
}

TEST(Superblock, HoistedFillerMigratesIntoDelaySlot)
{
    // Same shape, but the branch does not annul: the delay slot
    // executes on both paths, so the counter does the most good
    // parked there — the original nop is deleted and the sequence
    // shrinks by one.
    InstRef counter = ref(b::memi(Op::Ld, 7, 6, 0));
    counter.isInstrumentation = true;
    counter.memTag = 1;
    auto segs = twoSegments(
        {ref(b::memi(Op::Ld, 8, 16, 0)),
         ref(b::rri(Op::Subcc, 0, 8, 5))},
        {counter, ref(b::rri(Op::Add, 7, 7, 1))},
        std::bitset<32>(), 0.0);
    size_t in_count = segs[0].insts.size() + segs[1].insts.size();

    SuperblockStats stats;
    InstSeq out = scheduleSuperblock(segs, m(), {}, {}, &stats);

    int cti = find(out, b::bicc(cond::ne, 8));
    int at = find(out, counter.inst);
    ASSERT_GE(cti, 0);
    EXPECT_EQ(at, cti + 1);
    EXPECT_EQ(stats.delaysFilled, 1u);
    EXPECT_EQ(out.size(), in_count - 1);  // the nop is gone
}

TEST(Superblock, HotExitBlocksBodyHoists)
{
    // Same bubble, but the exit is taken half the time: hoisting
    // would execute seg1's work for nothing on every exit, so the
    // body before the branch must hold only seg0's instructions.
    InstRef counter = ref(b::memi(Op::Ld, 7, 6, 0));
    counter.isInstrumentation = true;
    counter.memTag = 1;
    InstSeq seg0_body = {ref(b::memi(Op::Ld, 8, 16, 0)),
                         ref(b::rri(Op::Subcc, 0, 8, 5))};
    auto segs = twoSegments(seg0_body,
                            {counter, ref(b::rri(Op::Add, 7, 7, 1))},
                            std::bitset<32>(), 0.5);

    SuperblockStats stats;
    InstSeq out = scheduleSuperblock(segs, m(), {}, {}, &stats);

    int cti = find(out, b::bicc(cond::ne, 8));
    ASSERT_GE(cti, 0);
    for (int i = 0; i < cti; ++i) {
        uint32_t w = isa::encode(out[i].inst);
        bool from_seg0 = false;
        for (const InstRef &s : seg0_body)
            from_seg0 |= isa::encode(s.inst) == w;
        EXPECT_TRUE(from_seg0)
            << "seg1 instruction hoisted above a 50% exit at " << i;
    }
    EXPECT_EQ(stats.hoisted, 0u);
}

TEST(Superblock, FormTracesInvariants)
{
    // Over a real profiled workload: traces partition their blocks
    // (each block in at most one trace), every trace has >= 2
    // blocks, and a routine's entry block only appears as a head.
    const machine::MachineModel &mm = m();
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[0];
    workload::GenOptions gopts;
    gopts.scale = 0.01;
    gopts.machine = &mm;
    exe::Executable x = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(x);

    exe::Executable prof_x = x;
    auto eplan = qpt::makeEdgePlan(prof_x, routines);
    exe::Executable prof =
        edit::rewrite(prof_x, routines, eplan.plan, {});
    sim::Emulator emu(prof);
    emu.run();
    auto counts = qpt::exportEdgeCounts(
        qpt::readEdgeCounts(emu, eplan, routines), eplan, routines);

    size_t total_traces = 0;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        const edit::Routine &r = routines[ri];
        auto traces = formTraces(r, counts[ri], {});
        std::vector<int> seen(r.blocks.size(), 0);
        int entry = -1;
        for (const edit::Block &bb : r.blocks)
            if (bb.startAddr == r.entry)
                entry = static_cast<int>(bb.id);
        for (const Trace &t : traces) {
            EXPECT_GE(t.blocks.size(), 2u);
            EXPECT_EQ(t.blocks.size(), t.viaTaken.size());
            EXPECT_LE(t.dupFrom, t.blocks.size());
            for (size_t p = 0; p < t.blocks.size(); ++p) {
                ++seen[t.blocks[p]];
                if (p > 0) {
                    EXPECT_NE(static_cast<int>(t.blocks[p]), entry);
                }
            }
        }
        for (int c : seen)
            EXPECT_LE(c, 1);
        total_traces += traces.size();
    }
    EXPECT_GT(total_traces, 0u);
}

/** Full pipeline at a given scale: edge-profile, then rewrite with
 *  block counters under local and superblock scheduling, run all
 *  three, and compare behaviour. */
void
oracleFor(size_t bench, double scale)
{
    const machine::MachineModel &mm = m();
    workload::BenchmarkSpec spec =
        workload::spec95("ultrasparc")[bench];
    workload::GenOptions gopts;
    gopts.scale = scale;
    gopts.machine = &mm;
    exe::Executable orig = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(orig);

    exe::Executable eprof_x = orig;
    auto eplan = qpt::makeEdgePlan(eprof_x, routines);
    exe::Executable eprof =
        edit::rewrite(eprof_x, routines, eplan.plan, {});
    sim::Emulator prof_emu(eprof);
    prof_emu.run();
    auto bcounts = qpt::exportEdgeCounts(
        qpt::readEdgeCounts(prof_emu, eplan, routines), eplan,
        routines);

    exe::Executable work = orig;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);

    edit::EditOptions sopts;
    sopts.schedule = true;
    sopts.model = &mm;
    sopts.scope = edit::SchedScope::Superblock;
    sopts.edgeCounts = &bcounts;

    exe::Executable inst =
        edit::rewrite(work, routines, plan.plan, {});
    exe::Executable sb =
        edit::rewrite(work, routines, plan.plan, sopts);

    sim::Emulator ei(inst), es(sb);
    sim::RunResult ri = ei.run();
    sim::RunResult rs = es.run();

    // Identical observable behaviour...
    ASSERT_TRUE(ri.exited);
    ASSERT_TRUE(rs.exited);
    EXPECT_EQ(ri.exitCode, rs.exitCode);
    EXPECT_EQ(ri.output, rs.output);
    // ...identical architectural exit state (scratch and return
    // addresses excepted: code addresses differ between layouts)...
    EXPECT_TRUE(es.snapshot().equalTo(ei.snapshot(), true));
    // ...and an identical dynamic trace at block granularity: every
    // original block's counter — including tail-duplicated ones,
    // whose hot and cold copies both carry the snippet — accumulates
    // the same count under both layouts.
    EXPECT_EQ(qpt::readCounts(ei, plan), qpt::readCounts(es, plan));
}

TEST(Superblock, OracleGo) { oracleFor(0, 0.02); }
TEST(Superblock, OracleGcc) { oracleFor(2, 0.02); }
TEST(Superblock, OracleCompress) { oracleFor(3, 0.02); }

/**
 * Regression: a block sitting in the duplicated range of more than
 * one trace (two relink paths re-enter it) is charged exactly once —
 * one static copy, one stub, one cold-side dynamic term. The old
 * per-visit accounting in the trace-threshold ablation counted it
 * per trace, double-counting both columns.
 */
TEST(TraceGrowth, SharedDupBlockChargedOnce)
{
    // b2 -taken-> b4 (trace A) and b3 -fall-> b4 (trace B): both
    // traces tail-duplicate b4, whose fall-through leaves to b5.
    edit::Routine r;
    auto addBlock = [&](size_t ninsts, int taken, int fall) {
        edit::Block blk;
        blk.id = static_cast<uint32_t>(r.blocks.size());
        blk.takenSucc = taken;
        blk.fallSucc = fall;
        for (size_t i = 0; i < ninsts; ++i)
            blk.insts.push_back(ref(b::nop()));
        r.blocks.push_back(std::move(blk));
    };
    addBlock(1, 2, 1);   // b0
    addBlock(1, -1, 3);  // b1
    addBlock(3, 4, 5);   // b2
    addBlock(2, -1, 4);  // b3
    addBlock(4, -1, 5);  // b4 (shared tail)
    addBlock(2, -1, -1); // b5

    edit::RoutineEdgeCounts counts(6);
    counts[0] = {.fall = 40, .taken = 60, .exec = 100};
    counts[1] = {.fall = 40, .taken = 0, .exec = 40};
    counts[2] = {.fall = 6, .taken = 54, .exec = 60};
    counts[3] = {.fall = 40, .taken = 0, .exec = 40};
    counts[4] = {.fall = 94, .taken = 0, .exec = 94};
    counts[5] = {.fall = 0, .taken = 0, .exec = 100};

    Trace a;
    a.blocks = {2, 4};
    a.viaTaken = {0, 1};
    a.dupFrom = 1;
    Trace bt;
    bt.blocks = {3, 4};
    bt.viaTaken = {0, 0};
    bt.dupFrom = 1;

    TraceGrowth g = accountGrowth(r, counts, {a, bt});
    // One 4-instruction copy of b4, not two.
    EXPECT_EQ(g.dupInsts, 4u);
    // b4's cold-copy stub once, plus trace A's hot bottom stub
    // (its backedge-inverted layout is not contiguous); trace B's
    // hot copy falls through to b5 naturally.
    EXPECT_EQ(g.stubInsts, 4u);
    // Cold side of b4: 94 - 54 on-trace arrivals = 40 executions,
    // all falling (2 insts each) = 80; trace A's hot bottom stub:
    // min(94, 54) executions falling = 108.
    EXPECT_EQ(g.dynExtra, 188u);
}

/**
 * Regression: pin the growth accounting on a known profiled seed, so
 * a reintroduced double-count (or any silent change in what gets
 * charged) shows up as a concrete number shift rather than a quiet
 * ablation drift.
 */
TEST(TraceGrowth, PinnedOnKnownSeed)
{
    const machine::MachineModel &mm = m();
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[0];
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &mm;
    exe::Executable x = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(x);

    exe::Executable prof_x = x;
    auto eplan = qpt::makeEdgePlan(prof_x, routines);
    exe::Executable prof =
        edit::rewrite(prof_x, routines, eplan.plan, {});
    sim::Emulator emu(prof);
    ASSERT_TRUE(emu.run().exited);
    auto counts = qpt::exportEdgeCounts(
        qpt::readEdgeCounts(emu, eplan, routines), eplan, routines);

    // A 0.8 threshold keeps traces short enough that some suffixes
    // carry side entrances (the 0.5 default absorbs the side paths
    // into the trace instead, and nothing gets duplicated here).
    SuperblockOptions so;
    so.threshold = 0.8;
    TraceGrowth total;
    uint64_t dynBase = 0;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        auto traces = formTraces(routines[ri], counts[ri], so);
        TraceGrowth g = accountGrowth(routines[ri], counts[ri],
                                      traces);
        total.dupInsts += g.dupInsts;
        total.stubInsts += g.stubInsts;
        total.dynExtra += g.dynExtra;
        for (const edit::Block &blk : routines[ri].blocks)
            dynBase += counts[ri][blk.id].exec * blk.insts.size();
    }
    // The workload generator, the profile run, and trace formation
    // are all deterministic, so the totals are exact: a per-visit
    // recount (or any silent accounting change) shifts them.
    EXPECT_EQ(total.dupInsts, 9u);
    EXPECT_EQ(total.stubInsts, 18u);
    EXPECT_EQ(total.dynExtra, 4236u);
    ASSERT_GT(dynBase, 0u);
    EXPECT_LT(double(total.dynExtra), 0.05 * double(dynBase));
}

} // namespace
} // namespace eel::sched
