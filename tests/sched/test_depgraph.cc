#include <gtest/gtest.h>

#include "src/isa/builder.hh"
#include "src/sched/depgraph.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using isa::Op;

InstRef
ref(isa::Instruction in, bool instr = false, int32_t tag = -1,
    int64_t off = 0)
{
    InstRef r;
    r.inst = in;
    r.isInstrumentation = instr;
    r.memTag = tag;
    r.memOff = off;
    return r;
}

const machine::MachineModel &m()
{
    return machine::MachineModel::builtin("ultrasparc");
}

TEST(DepGraph, RawEdge)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 1, 1)),
                   ref(b::rri(Op::Sub, 9, 8, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
    EXPECT_EQ(g.numPreds(1), 1u);
}

TEST(DepGraph, NoEdgeBetweenIndependent)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 1, 1)),
                   ref(b::rri(Op::Sub, 9, 2, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(DepGraph, WarEdge)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 9, 1)),   // reads %o1
                   ref(b::rri(Op::Or, 9, 1, 1))};   // writes %o1
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(DepGraph, WawEdge)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 1, 1)),
                   ref(b::rri(Op::Or, 8, 2, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(DepGraph, IccDependence)
{
    InstSeq seq = {ref(b::cmpi(8, 0)),
                   ref(b::rri(Op::Add, 9, 1, 1)),
                   ref(b::rrr(Op::Subcc, 0, 9, 10))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    // Two icc writers are WAW-ordered; the add is independent.
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(DepGraph, OriginalMemoryOpsConservativelyAlias)
{
    // §4: "the scheduler conservatively assumes that loads and
    // stores from the original code access the same address."
    InstSeq seq = {ref(b::memi(Op::St, 8, 16, 0)),
                   ref(b::memi(Op::Ld, 9, 17, 512))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(DepGraph, LoadsDoNotAliasLoads)
{
    InstSeq seq = {ref(b::memi(Op::Ld, 8, 16, 0)),
                   ref(b::memi(Op::Ld, 9, 17, 0))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(DepGraph, InstrumentationMemoryIsSeparate)
{
    // §4: instrumentation loads and stores are assumed not to
    // conflict with the original ones...
    InstSeq seq = {ref(b::memi(Op::St, 8, 16, 0)),
                   ref(b::memi(Op::Ld, 7, 6, 0), true)};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_FALSE(g.hasEdge(0, 1));
    // ...but alias each other.
    InstSeq seq2 = {ref(b::memi(Op::St, 7, 6, 0), true),
                    ref(b::memi(Op::Ld, 7, 6, 0), true)};
    DepGraph g2(seq2, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g2.hasEdge(0, 1));
}

TEST(DepGraph, ConservativePolicyRestrictsInstrumentation)
{
    // The restrictive option for constrained instrumentation (§4).
    InstSeq seq = {ref(b::memi(Op::St, 8, 16, 0)),
                   ref(b::memi(Op::Ld, 7, 6, 0), true)};
    DepGraph g(seq, m(), AliasPolicy::Conservative);
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(DepGraph, OracleDisambiguatesByTagAndOffset)
{
    // Different tags never alias.
    InstSeq a = {ref(b::memi(Op::St, 8, 16, 0), false, 1, 0),
                 ref(b::memi(Op::Ld, 9, 17, 0), false, 2, 0)};
    EXPECT_FALSE(
        DepGraph(a, m(), AliasPolicy::Oracle).hasEdge(0, 1));
    // Same tag, disjoint offsets: no alias.
    InstSeq b2 = {ref(b::memi(Op::St, 8, 16, 0), false, 1, 0),
                  ref(b::memi(Op::Ld, 9, 16, 8), false, 1, 8)};
    EXPECT_FALSE(
        DepGraph(b2, m(), AliasPolicy::Oracle).hasEdge(0, 1));
    // Same tag, overlapping: alias.
    InstSeq c = {ref(b::memi(Op::St, 8, 16, 0), false, 1, 0),
                 ref(b::memi(Op::Ld, 9, 16, 0), false, 1, 0)};
    EXPECT_TRUE(
        DepGraph(c, m(), AliasPolicy::Oracle).hasEdge(0, 1));
    // Unknown tag falls back to conservative.
    InstSeq d = {ref(b::memi(Op::St, 8, 16, 0)),
                 ref(b::memi(Op::Ld, 9, 16, 8), false, 1, 8)};
    EXPECT_TRUE(
        DepGraph(d, m(), AliasPolicy::Oracle).hasEdge(0, 1));
}

TEST(DepGraph, OracleDoubleWordOverlap)
{
    // An 8-byte store at offset 0 overlaps a 4-byte load at 4.
    InstSeq seq = {ref(b::memi(Op::Std, 8, 16, 0), false, 1, 0),
                   ref(b::memi(Op::Ld, 9, 16, 4), false, 1, 4)};
    EXPECT_TRUE(
        DepGraph(seq, m(), AliasPolicy::Oracle).hasEdge(0, 1));
}

TEST(DepGraph, BarrierOrdersEverything)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 1, 1)),
                   ref(b::restore()),
                   ref(b::rri(Op::Add, 9, 2, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 2));
}

TEST(DepGraph, DistanceToEndGrowsAlongChains)
{
    InstSeq seq = {ref(b::rri(Op::Add, 8, 1, 1)),
                   ref(b::rri(Op::Add, 9, 8, 1)),
                   ref(b::rri(Op::Add, 10, 9, 1)),
                   ref(b::rri(Op::Add, 11, 2, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    auto dist = g.distanceToEnd();
    EXPECT_GT(dist[0], dist[1]);
    EXPECT_GT(dist[1], dist[2]);
    EXPECT_LT(dist[3], dist[0]);  // off the critical path
}

TEST(DepGraph, RawEdgeWeightReflectsLoadLatency)
{
    InstSeq seq = {ref(b::memi(Op::Ld, 8, 16, 0)),
                   ref(b::rri(Op::Add, 9, 8, 1))};
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    ASSERT_EQ(g.edges().size(), 1u);
    // UltraSPARC load: value ready in cycle 3, consumer reads in
    // cycle 1 -> separation 3.
    EXPECT_EQ(g.edges()[0].minDist, 3);
}

TEST(DepGraph, G0NeverCreatesDependence)
{
    InstSeq seq = {ref(b::cmpi(8, 0)),              // rd = %g0
                   ref(b::rri(Op::Add, 9, 0, 1))};  // reads %g0
    DepGraph g(seq, m(), AliasPolicy::SeparateInstrumentation);
    EXPECT_FALSE(g.hasEdge(0, 1));
}

} // namespace
} // namespace eel::sched
