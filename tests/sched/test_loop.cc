/**
 * @file
 * Unit tests for the natural-loop analyzer behind the modulo
 * scheduler: nesting, header merging, irreducible-region rejection,
 * dominators, and profile-driven hot-loop ranking. CFGs are built
 * the honest way — assembled text through buildRoutines — so the
 * analyzer is tested against exactly the Routine shapes the editor
 * hands it.
 */

#include <gtest/gtest.h>

#include "src/eel/cfg.hh"
#include "src/isa/builder.hh"
#include "src/sched/loop.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using edit::Block;
using edit::Routine;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

exe::Executable
assemble(const std::vector<isa::Instruction> &insts)
{
    exe::Executable x;
    for (const isa::Instruction &in : insts)
        x.text.push_back(isa::encode(in));
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * insts.size()), true});
    x.entry = exe::textBase;
    return x;
}

TEST(LoopAnalyzer, SelfLoop)
{
    //   b0: movi
    //   b1: subcc; bne b1; nop      (self loop)
    //   b2: retl; nop
    exe::Executable x = assemble({
        b::movi(rn::l0, 10),
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::ne, -1),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = edit::buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 3u);
    LoopAnalyzer la(rs[0]);
    EXPECT_TRUE(la.reducible());
    ASSERT_EQ(la.loops().size(), 1u);
    const Loop &l = la.loops()[0];
    EXPECT_EQ(l.header, 1u);
    EXPECT_EQ(l.blocks, std::vector<uint32_t>{1});
    EXPECT_EQ(l.latches, std::vector<uint32_t>{1});
    ASSERT_EQ(l.exits.size(), 1u);
    EXPECT_EQ(l.exits[0], (std::pair<uint32_t, uint32_t>{1, 2}));
    EXPECT_TRUE(l.innermost);
    EXPECT_EQ(l.depth, 1u);
    EXPECT_EQ(l.parent, -1);
}

TEST(LoopAnalyzer, NestedLoops)
{
    //   b0: movi                    (preheader)
    //   b1: movi                    (outer header)
    //   b2: subcc; bne b2; nop      (inner loop)
    //   b3: subcc; bne b1; nop      (outer latch)
    //   b4: retl; nop
    exe::Executable x = assemble({
        b::movi(rn::l0, 4),
        b::movi(rn::l1, 4),
        b::rri(Op::Subcc, rn::l1, rn::l1, 1),
        b::bicc(cond::ne, -1),
        b::nop(),
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::ne, -5),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = edit::buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 5u);
    LoopAnalyzer la(rs[0]);
    EXPECT_TRUE(la.reducible());
    ASSERT_EQ(la.loops().size(), 2u);

    int inner = -1, outer = -1;
    for (int i = 0; i < 2; ++i)
        (la.loops()[i].header == 2 ? inner : outer) = i;
    ASSERT_GE(inner, 0);
    ASSERT_GE(outer, 0);
    const Loop &li = la.loops()[inner];
    const Loop &lo = la.loops()[outer];
    EXPECT_EQ(li.blocks, std::vector<uint32_t>{2});
    EXPECT_EQ(lo.blocks, (std::vector<uint32_t>{1, 2, 3}));
    EXPECT_EQ(li.parent, outer);
    EXPECT_EQ(li.depth, 2u);
    EXPECT_TRUE(li.innermost);
    EXPECT_EQ(lo.parent, -1);
    EXPECT_EQ(lo.depth, 1u);
    EXPECT_FALSE(lo.innermost);

    // Dominator spot checks: the outer header dominates everything
    // in the loop, the inner header only itself (of the loop blocks).
    EXPECT_TRUE(la.dominates(1, 2));
    EXPECT_TRUE(la.dominates(1, 3));
    EXPECT_FALSE(la.dominates(2, 1));
    EXPECT_EQ(la.immediateDominator(2), 1);
    EXPECT_EQ(la.immediateDominator(3), 2);
    EXPECT_EQ(la.immediateDominator(0), -1);
}

TEST(LoopAnalyzer, SharedHeaderMergesLoops)
{
    //   b0: subcc; be X; nop        (header; side exit)
    //   b1: bne b0; nop             (latch 1)
    //   b2: bne b0; nop             (latch 2)
    //   b3: X: retl; nop
    exe::Executable x = assemble({
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::e, 6),
        b::nop(),
        b::bicc(cond::ne, -3),
        b::nop(),
        b::bicc(cond::ne, -5),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = edit::buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 4u);
    LoopAnalyzer la(rs[0]);
    EXPECT_TRUE(la.reducible());
    // Two backedges into one header make ONE natural loop.
    ASSERT_EQ(la.loops().size(), 1u);
    const Loop &l = la.loops()[0];
    EXPECT_EQ(l.header, 0u);
    EXPECT_EQ(l.blocks, (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_EQ(l.latches, (std::vector<uint32_t>{1, 2}));
    EXPECT_TRUE(l.innermost);
}

TEST(LoopAnalyzer, IrreducibleRegionRejected)
{
    // Two-entry cycle B <-> C (entered at B via fall-through and at
    // C via the taken edge) — no unique header, so neither block may
    // be reported as a loop member. A disjoint self-loop after the
    // region must still be found.
    //
    //   b0: subcc; be C; nop
    //   b1: B: bne C; nop           (falls into C too)
    //   b2: C: bne B; nop
    //   b3: X: subcc; bne X; nop    (reducible self-loop)
    //   b4: retl; nop
    exe::Executable x = assemble({
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::e, 4),
        b::nop(),
        b::bicc(cond::ne, 2),
        b::nop(),
        b::bicc(cond::ne, -2),
        b::nop(),
        b::rri(Op::Subcc, rn::l1, rn::l1, 1),
        b::bicc(cond::ne, -1),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = edit::buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 5u);
    LoopAnalyzer la(rs[0]);
    EXPECT_FALSE(la.reducible());
    EXPECT_TRUE(la.inIrreducibleRegion(1));
    EXPECT_TRUE(la.inIrreducibleRegion(2));
    EXPECT_FALSE(la.inIrreducibleRegion(0));
    EXPECT_FALSE(la.inIrreducibleRegion(3));
    // Only the clean self-loop survives.
    ASSERT_EQ(la.loops().size(), 1u);
    EXPECT_EQ(la.loops()[0].header, 3u);
    EXPECT_EQ(la.loops()[0].blocks, std::vector<uint32_t>{3});
}

TEST(LoopAnalyzer, HotLoopsRankByBackedgeCount)
{
    // The nested-loop CFG with a synthetic profile: outer runs 4
    // iterations once, inner runs 5 iterations per outer pass.
    exe::Executable x = assemble({
        b::movi(rn::l0, 4),
        b::movi(rn::l1, 4),
        b::rri(Op::Subcc, rn::l1, rn::l1, 1),
        b::bicc(cond::ne, -1),
        b::nop(),
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::ne, -5),
        b::nop(),
        b::retl(),
        b::nop(),
    });
    auto rs = edit::buildRoutines(x);
    LoopAnalyzer la(rs[0]);
    ASSERT_EQ(la.loops().size(), 2u);

    edit::RoutineEdgeCounts counts(rs[0].blocks.size());
    counts[0] = {.fall = 1, .taken = 0, .exec = 1};
    counts[1] = {.fall = 4, .taken = 0, .exec = 4};
    counts[2] = {.fall = 4, .taken = 16, .exec = 20};  // inner
    counts[3] = {.fall = 1, .taken = 3, .exec = 4};    // outer latch
    counts[4] = {.fall = 0, .taken = 0, .exec = 1};

    auto hot = la.hotLoops(counts);
    ASSERT_EQ(hot.size(), 2u);
    // Inner (header b2) first: 16 backedge executions vs 3.
    EXPECT_EQ(la.loops()[hot[0].loop].header, 2u);
    EXPECT_EQ(hot[0].backedgeCount, 16u);
    EXPECT_EQ(hot[0].entryCount, 4u);
    EXPECT_DOUBLE_EQ(hot[0].avgTrip, 5.0);
    EXPECT_EQ(la.loops()[hot[1].loop].header, 1u);
    EXPECT_EQ(hot[1].backedgeCount, 3u);
    EXPECT_EQ(hot[1].entryCount, 1u);
    EXPECT_DOUBLE_EQ(hot[1].avgTrip, 4.0);

    // The floor drops the cold outer loop.
    auto floored = la.hotLoops(counts, 10);
    ASSERT_EQ(floored.size(), 1u);
    EXPECT_EQ(la.loops()[floored[0].loop].header, 2u);
}

} // namespace
} // namespace eel::sched
