/**
 * @file
 * Modulo-scheduler tests, in three layers:
 *
 *  - unit: MII bounds and loop selection on crafted bodies, and the
 *    rotation search actually hiding a loop-carried load-use stall;
 *  - oracle: the exhaustive branch-and-bound kernel search on small
 *    crafted loops — heuristic never beats it, both respect MII;
 *  - crosscheck (registered as ctest `optimal_ii_crosscheck`): every
 *    small loop of a generator corpus is scheduled heuristically and
 *    exhaustively; the heuristic's best kernel II must stay within
 *    +1 cycle of optimal, and both whole-program builds must stay
 *    emulator-bit-identical to the unscheduled instrumented build.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/eel/batch.hh"
#include "src/eel/liveness.hh"
#include "src/exe/section_store.hh"
#include "src/isa/builder.hh"
#include "src/machine/model.hh"
#include "src/sched/pipeline.hh"
#include "src/sim/emulator.hh"
#include "src/workload/generator.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;
namespace rn = isa::reg;

/** Tagged refs model counter-snippet memory: known-valid address,
 *  instrumentation-owned — the shape speculation (and therefore
 *  rotation) is licensed for. */
InstRef
ref(isa::Instruction inst, int32_t tag = -1, int64_t off = 0)
{
    InstRef r;
    r.inst = inst;
    r.memTag = tag;
    r.memOff = off;
    r.isInstrumentation = tag >= 0;
    return r;
}

/** [body..., cti, delay] of a counted loop branching to itself. */
InstSeq
countedLoop(std::vector<InstRef> body)
{
    InstSeq code = std::move(body);
    code.push_back(ref(b::rri(Op::Subcc, rn::l0, rn::l0, 1)));
    code.push_back(ref(b::bicc(cond::ne, 0)));
    code.push_back(ref(b::nop()));
    return code;
}

const machine::MachineModel &
ultra()
{
    return machine::MachineModel::builtin("ultrasparc");
}

TEST(LoopBounds, ResourceBoundCoversIssueWidth)
{
    // Eight independent adds: no recurrence beyond the counter, so
    // MII is the resource bound, at least ceil(n / issue width).
    std::vector<InstRef> body;
    for (int i = 0; i < 8; ++i)
        body.push_back(
            ref(b::rri(Op::Add, rn::o0 + (i % 4), rn::l1, i)));
    InstSeq code = countedLoop(std::move(body));
    LoopBounds lb = loopBounds(code, ultra(),
                               AliasPolicy::SeparateInstrumentation);
    unsigned width = ultra().issueWidth();
    unsigned n = static_cast<unsigned>(code.size());
    EXPECT_GE(lb.resMII + 1e-9,
              static_cast<double>(n) / width);
    EXPECT_DOUBLE_EQ(lb.mii, std::max(lb.resMII, lb.recMII));
}

TEST(LoopBounds, RecurrenceChainRaisesRecMII)
{
    // acc = ((acc+1)+1)+1 every iteration: a three-add dependence
    // cycle of distance 1, so recMII covers the chain's latency —
    // strictly above the one-add loop's bound.
    std::vector<InstRef> chain3 = {
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
    };
    std::vector<InstRef> chain1 = {
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
    };
    LoopBounds l3 =
        loopBounds(countedLoop(chain3), ultra(),
                   AliasPolicy::SeparateInstrumentation);
    LoopBounds l1 =
        loopBounds(countedLoop(chain1), ultra(),
                   AliasPolicy::SeparateInstrumentation);
    EXPECT_GT(l3.recMII, l1.recMII);
    EXPECT_GE(l3.recMII + 1e-6, 3.0);
}

TEST(ScheduleLoop, RotationHidesLoadUseStall)
{
    // ld -> add -> add -> add is a dependence chain the local
    // scheduler cannot break: nothing else in the iteration
    // overlaps it, and after each backedge redirect the reload
    // stalls its consumers in a freshly empty issue window.
    // Rotating the chain's head across the backedge splits the
    // chain over two kernel repetitions, so the load's latency
    // drains behind the previous iteration's tail and the redirect
    // bubble. The load carries a memory tag (a counter-style
    // known-valid address), making it speculation-legal.
    std::vector<InstRef> body = {
        ref(b::memi(Op::Ld, rn::o0, rn::l1, 0), /*tag=*/7, 0),
        ref(b::rri(Op::Add, rn::o1, rn::o0, 1)),
        ref(b::rri(Op::Add, rn::o2, rn::o1, 1)),
        ref(b::rri(Op::Add, rn::o3, rn::o2, 1)),
    };
    InstSeq code = countedLoop(std::move(body));

    std::bitset<32> exitLive;
    exitLive.set(rn::l0);  // only the counter survives the loop
    SchedOptions sopts;
    SuperblockOptions sbopts;
    PipelineOptions popts;
    popts.allowUnroll = false;  // isolate the rotation-vs-plain race

    LoopSchedule ls = scheduleLoop(code, exitLive, /*exitProb=*/0.05,
                                   /*exitOldAddr=*/0x1000, ultra(),
                                   sopts, sbopts, popts);
    // The plain schedule of this loop stalls on the chain; some
    // rotation must beat it (costs are redirect-inclusive, so the
    // plain baseline is measured the same way).
    EXPECT_EQ(ls.kind, LoopKind::Rotate);
    EXPECT_GE(ls.rotated, 1u);
    EXPECT_EQ(ls.prologue.size(), ls.rotated);
    EXPECT_GE(ls.achievedII + 1e-9, ls.bounds.resMII);

    InstSeq plain = ListScheduler(ultra(), sopts).scheduleBlock(code);
    double plainCost =
        steadyStateII(ultra(), plain, ultra().branchPenalty());
    EXPECT_LT(ls.achievedII, plainCost - 1e-9);

    // The kernel plus prologue preserve the instruction multiset:
    // every original instruction appears exactly once in the kernel
    // (the prologue re-executes the rotated set once, up front).
    size_t kernel_real = 0;
    for (const InstRef &kr : ls.kernel)
        if (kr.inst.op != Op::Nop)
            ++kernel_real;
    size_t code_real = 0;
    for (const InstRef &cr : code)
        if (cr.inst.op != Op::Nop)
            ++code_real;
    EXPECT_EQ(kernel_real, code_real);
}

TEST(ScheduleLoop, ExitLiveRegisterBlocksRotation)
{
    // Same loop, but every written register is live at the exit:
    // nothing may execute one extra time, so rotation is impossible
    // and the loop stays Plain (unroll disabled).
    std::vector<InstRef> body = {
        ref(b::memi(Op::Ld, rn::o0, rn::l1, 0), /*tag=*/7, 0),
        ref(b::rri(Op::Add, rn::o1, rn::o0, 1)),
        ref(b::rri(Op::Add, rn::o2, rn::o1, 1)),
    };
    InstSeq code = countedLoop(std::move(body));
    std::bitset<32> exitLive;
    exitLive.set(rn::l0);
    exitLive.set(rn::o0);
    exitLive.set(rn::o1);
    exitLive.set(rn::o2);
    SchedOptions sopts;
    SuperblockOptions sbopts;
    PipelineOptions popts;
    popts.allowUnroll = false;
    LoopSchedule ls = scheduleLoop(code, exitLive, 0.05, 0x1000,
                                   ultra(), sopts, sbopts, popts);
    EXPECT_EQ(ls.kind, LoopKind::Plain);
    EXPECT_EQ(ls.rotated, 0u);
}

TEST(ScheduleLoop, StoreNeverRotates)
{
    // A store in the body (the shape every counter snippet has) must
    // stay in S0 whatever else rotates.
    std::vector<InstRef> body = {
        ref(b::memi(Op::Ld, rn::o0, rn::l1, 0), /*tag=*/7, 0),
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
        ref(b::memi(Op::St, rn::o0, rn::l1, 0), /*tag=*/7, 0),
        ref(b::rri(Op::Add, rn::o1, rn::o2, 1)),
    };
    InstSeq code = countedLoop(std::move(body));
    std::bitset<32> exitLive;
    exitLive.set(rn::l0);
    SchedOptions sopts;
    SuperblockOptions sbopts;
    PipelineOptions popts;
    popts.allowUnroll = false;
    LoopSchedule ls = scheduleLoop(code, exitLive, 0.05, 0x1000,
                                   ultra(), sopts, sbopts, popts);
    // Whatever the kind, no store may appear in the prologue (the
    // rotated set executes once speculatively).
    for (const InstRef &pr : ls.prologue)
        EXPECT_FALSE(pr.inst.isStore());
}

TEST(OptimalII, NeverWorseThanHeuristicOnCraftedLoops)
{
    SchedOptions sopts;
    SuperblockOptions sbopts;
    PipelineOptions popts;
    popts.allowUnroll = false;

    std::vector<InstSeq> loops;
    loops.push_back(countedLoop({
        ref(b::memi(Op::Ld, rn::o0, rn::l1, 0), 7, 0),
        ref(b::rri(Op::Add, rn::o1, rn::o0, 1)),
        ref(b::rri(Op::Add, rn::o2, rn::o1, 1)),
    }));
    loops.push_back(countedLoop({
        ref(b::memi(Op::Ld, rn::o0, rn::l1, 0), 7, 0),
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
        ref(b::memi(Op::St, rn::o0, rn::l1, 0), 7, 0),
    }));
    loops.push_back(countedLoop({
        ref(b::rri(Op::Add, rn::o0, rn::o0, 1)),
        ref(b::rri(Op::Xor, rn::o1, rn::o0, 3)),
        ref(b::rri(Op::Sub, rn::o2, rn::o1, 1)),
        ref(b::rri(Op::Add, rn::o3, rn::o3, 1)),
    }));

    std::bitset<32> exitLive;
    exitLive.set(rn::l0);
    for (size_t i = 0; i < loops.size(); ++i) {
        SCOPED_TRACE("crafted loop " + std::to_string(i));
        OptimalII opt = optimalLoopII(loops[i], exitLive, ultra(),
                                      sopts, sbopts, popts);
        ASSERT_TRUE(opt.applicable);
        EXPECT_FALSE(opt.capped);
        EXPECT_GT(opt.ordersTried, 0u);

        LoopSchedule ls =
            scheduleLoop(loops[i], exitLive, 0.05, 0x1000, ultra(),
                         sopts, sbopts, popts);
        LoopBounds lb = loopBounds(loops[i], ultra(), sopts.alias);
        // Optimal respects the CERTIFIED lower bound (resMII — the
        // recurrence estimate may sit above real kernels, see
        // LoopBounds) and the heuristic never beats optimal (its
        // kernels are inside the searched space).
        EXPECT_GE(opt.ii + 1e-9, lb.resMII);
        EXPECT_GE(ls.bestKernelII + 1e-9, opt.ii);
    }
}

TEST(FindPipelineLoops, SelectsHotSelfLoopOnly)
{
    // kernel-shaped routine: preheader, hot self-loop, exit.
    exe::Executable x;
    std::vector<isa::Instruction> insts = {
        b::movi(rn::l0, 100),
        b::rri(Op::Add, rn::o0, rn::o0, 1),
        b::rri(Op::Subcc, rn::l0, rn::l0, 1),
        b::bicc(cond::ne, -2),
        b::nop(),
        b::retl(),
        b::nop(),
    };
    for (const isa::Instruction &in : insts)
        x.text.push_back(isa::encode(in));
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * insts.size()), true});
    x.entry = exe::textBase;
    auto rs = edit::buildRoutines(x);
    ASSERT_EQ(rs[0].blocks.size(), 3u);

    edit::RoutineEdgeCounts counts(3);
    counts[0] = {.fall = 1, .taken = 0, .exec = 1};
    counts[1] = {.fall = 1, .taken = 99, .exec = 100};
    counts[2] = {.fall = 0, .taken = 0, .exec = 1};

    PipelineOptions popts;
    auto loops = findPipelineLoops(rs[0], counts, popts);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].block, 1u);
    EXPECT_EQ(loops[0].execCount, 100u);
    EXPECT_NEAR(loops[0].backedgeProb, 0.99, 1e-9);

    // Cold profile: below minCount, nothing selected.
    edit::RoutineEdgeCounts cold(3);
    cold[1] = {.fall = 1, .taken = 9, .exec = 10};
    EXPECT_TRUE(findPipelineLoops(rs[0], cold, popts).empty());

    // Mostly-exiting loop: backedge probability under the floor.
    edit::RoutineEdgeCounts lukewarm(3);
    lukewarm[1] = {.fall = 60, .taken = 60, .exec = 120};
    EXPECT_TRUE(
        findPipelineLoops(rs[0], lukewarm, popts).empty());
}

/**
 * The ctest oracle `optimal_ii_crosscheck` (OptimalCrosscheck.*):
 * a corpus of small-bodied generator programs, every selected loop
 * scheduled both ways, the heuristic pinned to within +1 cycle of
 * the exhaustive optimum — and the whole-program heuristic and
 * oracle pipeline builds bit-identical to the unscheduled build.
 */
TEST(OptimalCrosscheck, HeuristicWithinOneCycleOfOptimal)
{
    const machine::MachineModel &m = ultra();
    SchedOptions sopts;
    SuperblockOptions sbopts;
    PipelineOptions popts;

    unsigned loops_checked = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE("corpus seed " + std::to_string(seed));
        workload::BenchmarkSpec spec;
        spec.name = "xchk" + std::to_string(seed);
        spec.avgBlockSize = 6.0 + 0.15 * static_cast<double>(seed);
        spec.loadFrac = 0.2;
        spec.storeFrac = 0.08;
        spec.serialProb = 0.5;
        spec.recurrenceFrac = seed % 2 ? 0.15 : 0.0;
        spec.memRecurrences = seed % 3 == 0 ? 1 : 0;
        spec.dynTarget = 30000;
        spec.kernels = 2;
        spec.seed = seed;
        workload::GenOptions gopts;
        gopts.machine = &m;
        exe::Executable orig = workload::generate(spec, gopts);

        edit::BatchOptions bopts;
        bopts.model = &m;
        edit::BatchRewriter rw(orig, bopts);
        edit::BatchResult batch =
            rw.rewriteAll({edit::VariantKind::SlowProfile,
                           edit::VariantKind::Pipeline});

        // Oracle-kernel build of the very same input.
        edit::BatchOptions obopts = bopts;
        obopts.pipeline.oracle = true;
        edit::BatchRewriter orw(orig, obopts);
        edit::BatchResult obatch =
            orw.rewriteAll({edit::VariantKind::SlowProfile,
                            edit::VariantKind::Pipeline});

        // Whole-program bit-identity of both builds.
        sim::Emulator base(batch.variants[0].image);
        sim::Emulator heur(batch.variants[1].image);
        sim::Emulator orac(obatch.variants[1].image);
        sim::RunResult rb = base.run();
        sim::RunResult rh = heur.run();
        sim::RunResult ro = orac.run();
        ASSERT_TRUE(rb.exited);
        ASSERT_TRUE(rh.exited);
        ASSERT_TRUE(ro.exited);
        EXPECT_EQ(rh.exitCode, rb.exitCode);
        EXPECT_EQ(ro.exitCode, rb.exitCode);
        EXPECT_EQ(rh.output, rb.output);
        EXPECT_EQ(ro.output, rb.output);
        EXPECT_TRUE(heur.snapshot().equalTo(base.snapshot()));
        EXPECT_TRUE(orac.snapshot().equalTo(base.snapshot()));
        auto base_counts = qpt::readCounts(base, batch.profilePlan);
        EXPECT_EQ(qpt::readCounts(heur, batch.profilePlan),
                  base_counts);
        EXPECT_EQ(qpt::readCounts(orac, obatch.profilePlan),
                  base_counts);

        // Per-loop II pinning against the exhaustive bound.
        for (size_t ri = 0; ri < batch.routines.size(); ++ri) {
            const edit::Routine &r = batch.routines[ri];
            edit::Liveness live(r);
            auto ploops = findPipelineLoops(
                r, batch.edgeCounts[ri], popts);
            for (const PipelineLoop &pl : ploops) {
                const edit::Block &blk = r.blocks[pl.block];
                if (blk.insts.size() > popts.oracleMaxInsts + 2)
                    continue;
                std::bitset<32> exitLive =
                    live.liveInSet(
                        static_cast<uint32_t>(blk.fallSucc));
                OptimalII opt =
                    optimalLoopII(blk.insts, exitLive, m, sopts,
                                  sbopts, popts);
                if (!opt.applicable || opt.capped)
                    continue;
                LoopSchedule ls = scheduleLoop(
                    blk.insts, exitLive, 1.0 - pl.backedgeProb,
                    r.blocks[blk.fallSucc].startAddr, m, sopts,
                    sbopts, popts);
                EXPECT_LE(ls.bestKernelII, opt.ii + 1.0 + 1e-6)
                    << "routine " << ri << " block " << pl.block;
                EXPECT_GE(ls.bestKernelII + 1e-9, opt.ii)
                    << "heuristic beat the exhaustive search: "
                       "routine "
                    << ri << " block " << pl.block;
                ++loops_checked;
            }
        }
    }
    // The corpus must actually exercise the oracle.
    EXPECT_GE(loops_checked, 5u);
}

} // namespace
} // namespace eel::sched
