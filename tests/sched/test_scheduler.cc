#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/isa/builder.hh"
#include "src/machine/pipeline.hh"
#include "src/sched/scheduler.hh"

namespace eel::sched {
namespace {

namespace b = isa::build;
using isa::Op;
namespace cond = isa::cond;

InstRef
ref(isa::Instruction in, bool instr = false)
{
    InstRef r;
    r.inst = in;
    r.isInstrumentation = instr;
    return r;
}

const machine::MachineModel &m()
{
    return machine::MachineModel::builtin("ultrasparc");
}

std::vector<uint32_t>
encodeAll(const InstSeq &seq)
{
    std::vector<uint32_t> out;
    for (const InstRef &r : seq)
        out.push_back(isa::encode(r.inst));
    return out;
}

/** Same multiset of instruction words? */
bool
samePopulation(const InstSeq &a, const InstSeq &b2)
{
    auto x = encodeAll(a), y = encodeAll(b2);
    std::sort(x.begin(), x.end());
    std::sort(y.begin(), y.end());
    return x == y;
}

TEST(Scheduler, PreservesInstructionPopulation)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::memi(Op::Ld, 8, 16, 0)),
        ref(b::rri(Op::Add, 9, 8, 1)),
        ref(b::rri(Op::Add, 10, 1, 1)),
        ref(b::memi(Op::St, 9, 16, 4)),
        ref(b::cmpi(10, 5)),
        ref(b::bicc(cond::ne, 8)),
        ref(b::nop()),
    };
    InstSeq out = s.scheduleBlock(block);
    EXPECT_TRUE(samePopulation(block, out));
}

TEST(Scheduler, RespectsDependences)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::rri(Op::Add, 9, 8, 1)),
        ref(b::rri(Op::Add, 10, 9, 1)),
    };
    InstSeq out = s.scheduleBlock(block);
    // A pure chain cannot be reordered.
    EXPECT_EQ(encodeAll(out), encodeAll(block));
}

TEST(Scheduler, HidesIndependentWorkInLoadShadow)
{
    // ld; use; indep  ->  the independent op should move between the
    // load and its use.
    ListScheduler s(m());
    InstSeq block = {
        ref(b::memi(Op::Ld, 8, 16, 0)),
        ref(b::rri(Op::Add, 9, 8, 1)),
        ref(b::rri(Op::Add, 10, 1, 1)),
        ref(b::rri(Op::Add, 11, 10, 1)),
    };
    InstSeq out = s.scheduleBlock(block);
    std::vector<isa::Instruction> before, after;
    for (const InstRef &r : block)
        before.push_back(r.inst);
    for (const InstRef &r : out)
        after.push_back(r.inst);
    EXPECT_LE(machine::sequenceCycles(m(), after),
              machine::sequenceCycles(m(), before));
    // The dependent add must still follow the load.
    size_t ld_pos = 0, use_pos = 0;
    for (size_t i = 0; i < out.size(); ++i) {
        if (out[i].inst.op == Op::Ld)
            ld_pos = i;
        if (out[i].inst.op == Op::Add && out[i].inst.rs1 == 8)
            use_pos = i;
    }
    EXPECT_LT(ld_pos, use_pos);
}

TEST(Scheduler, BranchStaysAtEnd)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::cmpi(8, 3)),
        ref(b::bicc(cond::e, 4)),
        ref(b::rri(Op::Add, 9, 2, 1)),  // delay slot
    };
    InstSeq out = s.scheduleBlock(block);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[2].inst.op, Op::Bicc);
    // cmp must precede the branch.
    bool cmp_before = false;
    for (size_t i = 0; i < 2; ++i)
        if (out[i].inst.op == Op::Subcc)
            cmp_before = true;
    EXPECT_TRUE(cmp_before);
}

TEST(Scheduler, DelaySlotFilledWithLegalInstruction)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::memi(Op::St, 8, 16, 0)),
        ref(b::cmpi(9, 0)),
        ref(b::bicc(cond::ne, 8)),
        ref(b::nop()),
    };
    InstSeq out = s.scheduleBlock(block);
    const isa::Instruction &delay = out.back().inst;
    // The filler must not feed the branch's condition.
    EXPECT_FALSE(delay.op == Op::Subcc);
    EXPECT_TRUE(out[out.size() - 2].inst.isBranch());
}

TEST(Scheduler, CmpCannotFillItsOwnBranchDelay)
{
    // If the only candidate writes icc, the slot gets a nop.
    ListScheduler s(m());
    InstSeq block = {
        ref(b::cmpi(9, 0)),
        ref(b::bicc(cond::ne, 8)),
    };
    InstSeq out = s.scheduleBlock(block);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].inst.op, Op::Subcc);
    EXPECT_EQ(out[1].inst.op, Op::Bicc);
    EXPECT_EQ(out[2].inst.op, Op::Nop);
}

TEST(Scheduler, RestoreRidesReturnDelaySlot)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 18, 17, 1)),
        ref(b::ret()),
        ref(b::rri(Op::Restore, 8, 21, 0)),
    };
    InstSeq out = s.scheduleBlock(block);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].inst.op, Op::Jmpl);
    EXPECT_EQ(out[2].inst.op, Op::Restore);
}

TEST(Scheduler, AnnulledDelaySlotIsPinned)
{
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::bicc(cond::ne, 8, /*annul=*/true)),
        ref(b::rri(Op::Add, 9, 2, 1)),  // conditional delay
    };
    InstSeq out = s.scheduleBlock(block);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].inst.op, Op::Bicc);
    EXPECT_EQ(out[2].inst.rd, 9);  // original delay kept in place
}

TEST(Scheduler, OriginalOrderPolicyIsIdentity)
{
    SchedOptions opts;
    opts.priority = SchedOptions::Priority::OriginalOrder;
    ListScheduler s(m(), opts);
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::memi(Op::Ld, 9, 16, 0)),
        ref(b::rri(Op::Add, 10, 2, 1)),
    };
    InstSeq out = s.scheduleBlock(block);
    EXPECT_EQ(encodeAll(out), encodeAll(block));
}

TEST(Scheduler, TieBreakPrefersOriginalOrder)
{
    // Two fully independent identical-cost ops keep program order
    // "under the assumption that the instructions were previously
    // scheduled" (§4).
    ListScheduler s(m());
    InstSeq block = {
        ref(b::rri(Op::Add, 8, 1, 1)),
        ref(b::rri(Op::Add, 9, 2, 1)),
    };
    InstSeq out = s.scheduleBlock(block);
    EXPECT_EQ(out[0].inst.rd, 8);
    EXPECT_EQ(out[1].inst.rd, 9);
}

TEST(Scheduler, InstrumentationMovesIntoStallCycles)
{
    // The core claim: a counter snippet scheduled into a block with
    // stalls costs less than prepending it.
    InstSeq snippet = {
        ref(b::sethi(6, 0x500000), true),
        ref(b::memi(Op::Ld, 7, 6, 0), true),
        ref(b::rri(Op::Add, 7, 7, 1), true),
        ref(b::memi(Op::St, 7, 6, 0), true),
    };
    // A pointer-chasing body: serial load-use chain with stall
    // cycles for the snippet to hide in.
    InstSeq body = {
        ref(b::memi(Op::Ld, 8, 16, 0)),
        ref(b::memi(Op::Ld, 9, 8, 0)),
        ref(b::memi(Op::Ld, 10, 9, 0)),
        ref(b::rri(Op::Add, 11, 10, 1)),
        ref(b::memi(Op::St, 11, 16, 8)),
    };
    InstSeq naive = snippet;
    naive.insert(naive.end(), body.begin(), body.end());

    ListScheduler s(m());
    InstSeq scheduled = s.scheduleBlock(naive);
    std::vector<isa::Instruction> nv, sv;
    for (const InstRef &r : naive)
        nv.push_back(r.inst);
    for (const InstRef &r : scheduled)
        sv.push_back(r.inst);
    EXPECT_LT(machine::sequenceCycles(m(), sv),
              machine::sequenceCycles(m(), nv));
}

TEST(Scheduler, AuditDoesNotChangeSchedule)
{
    // The slot-fill audit is observational: the same block schedules
    // to the same instruction sequence with the sink attached.
    InstSeq block = {
        ref(b::sethi(6, 0x500000), true),
        ref(b::memi(Op::Ld, 7, 6, 0), true),
        ref(b::rri(Op::Add, 7, 7, 1), true),
        ref(b::memi(Op::St, 7, 6, 0), true),
        ref(b::memi(Op::Ld, 8, 16, 0)),
        ref(b::memi(Op::Ld, 9, 8, 0)),
        ref(b::memi(Op::Ld, 10, 9, 0)),
        ref(b::rri(Op::Add, 11, 10, 1)),
        ref(b::memi(Op::St, 11, 16, 8)),
    };
    ListScheduler plain(m());
    InstSeq expect = plain.scheduleBlock(block);

    obs::SlotFillAudit audit;
    SchedOptions opts;
    opts.audit = &audit;
    ListScheduler audited(m(), opts);
    InstSeq out = audited.scheduleBlock(block);
    EXPECT_EQ(encodeAll(out), encodeAll(expect));
    // The pointer-chasing chain stalls even in the best schedule, so
    // the audit must have classified some empty slots.
    EXPECT_GT(audit.snapshot().total(), 0u);
}

TEST(Scheduler, AuditWithoutInstrumentationIsNoReadyInst)
{
    // A block containing no instrumentation can only ever report
    // "nothing left to fill with".
    obs::SlotFillAudit audit;
    SchedOptions opts;
    opts.audit = &audit;
    ListScheduler s(m(), opts);
    InstSeq block = {
        ref(b::memi(Op::Ld, 8, 16, 0)),
        ref(b::memi(Op::Ld, 9, 8, 0)),
        ref(b::rri(Op::Add, 10, 9, 1)),
    };
    s.scheduleBlock(block);
    obs::SlotFillCounts c = audit.snapshot();
    EXPECT_GT(c.total(), 0u);
    EXPECT_EQ(c.total(),
              c.slots[unsigned(obs::SlotFillReason::NoReadyInst)]);
}

TEST(Scheduler, EmptyBlock)
{
    ListScheduler s(m());
    EXPECT_TRUE(s.scheduleBlock({}).empty());
}

TEST(Scheduler, BareCtiGetsNopDelay)
{
    ListScheduler s(m());
    InstSeq block = {ref(b::ba(4))};
    InstSeq out = s.scheduleBlock(block);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].inst.op, Op::Bicc);
    EXPECT_EQ(out[1].inst.op, Op::Nop);
}

} // namespace
} // namespace eel::sched
