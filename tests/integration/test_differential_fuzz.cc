/**
 * @file
 * Randomized differential harness for the COW batch-rewriting path.
 *
 * COW aliasing bugs are silent data corruption: a page that two
 * variants believe they own privately, mutated by one, changes the
 * other's code or data without any crash. So every seed drives one
 * generated program through BOTH pipelines —
 *
 *   batch: one BatchRewriter analysis pass, all variant kinds
 *          (identity, slow-profile, edge-profile, locally scheduled,
 *          superblock — i.e. every SchedScope), sections COW-shared
 *          and interned in a SectionStore;
 *   eager: the same variants with sharing severed (private pages),
 *          the pre-COW editor's memory behaviour
 *
 * — and requires byte-identical images, bit-identical emulated
 * architectural traces (retired-pc hash + full final state), and
 * bit-identical qpt counters between the two, plus identical
 * program output against the original. Shared-chunk statistics are
 * asserted so the sharing the batch path exists for provably
 * happened.
 *
 * The same seeds also drive the simulator-engine differential: the
 * direct-threaded and token-switch interpreters must retire the
 * identical architectural trace, and every timing-engine combination
 * (SIMD vs scalar hold checks, trace memo on vs off, either
 * dispatch) must reproduce the portable reference stack's cycles,
 * issue histogram and per-reason stall attribution bit for bit. In a
 * build without the optional engines the fast combos degrade to the
 * reference and the oracle still runs (the `portable` preset does
 * exactly that, keeping the fallback paths honest).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/eel/batch.hh"
#include "src/exe/section_store.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/emulator.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "tests/fuzz_spec.hh"

namespace eel {
namespace {

using edit::VariantKind;

const std::vector<VariantKind> kAllKinds = {
    VariantKind::Identity,   VariantKind::SlowProfile,
    VariantKind::EdgeProfile, VariantKind::Sched,
    VariantKind::Superblock, VariantKind::Pipeline,
};

struct VariantRun
{
    std::unique_ptr<sim::Emulator> emu;
    sim::RunResult result;
    uint64_t traceHash = 0;
};

VariantRun
runImage(const exe::Executable &x, exe::SectionStore *store)
{
    VariantRun vr;
    if (store)
        vr.emu = std::make_unique<sim::Emulator>(
            x, sim::Emulator::Config{},
            sim::Emulator::decodeText(x, *store));
    else
        vr.emu = std::make_unique<sim::Emulator>(x);
    tests::TraceHashSink sink;
    vr.result = vr.emu->run(sink);
    vr.traceHash = sink.h;
    return vr;
}

sim::TimedRun
timeWithEngines(const exe::Executable &x,
                const machine::MachineModel &m,
                sim::Emulator::Config::Dispatch dispatch, bool simd,
                bool memo)
{
    sim::TimingSim::Config tc;
    tc.collectStalls = true;
    tc.simdHold = simd;
    tc.traceMemo = memo;
    sim::Emulator::Config ec;
    ec.dispatch = dispatch;
    return sim::timedRun(x, m, tc, ec);
}

void
engineDifferential(const exe::Executable &x,
                   const machine::MachineModel &m)
{
    using Dispatch = sim::Emulator::Config::Dispatch;

    // Functional dispatch differential: both interpreter engines
    // retire the identical architectural trace and land in the
    // identical machine state (scratch registers included — same
    // image, so even those must agree).
    sim::Emulator::Config swCfg, thCfg;
    swCfg.dispatch = Dispatch::Switch;
    thCfg.dispatch = Dispatch::Threaded;
    sim::Emulator swEmu(x, swCfg), thEmu(x, thCfg);
    tests::TraceHashSink swSink, thSink;
    sim::RunResult swRes = swEmu.run(swSink);
    sim::RunResult thRes = thEmu.run(thSink);
    ASSERT_TRUE(swRes.exited);
    ASSERT_TRUE(thRes.exited);
    EXPECT_EQ(swSink.h, thSink.h);
    EXPECT_EQ(swRes.instructions, thRes.instructions);
    EXPECT_EQ(swRes.exitCode, thRes.exitCode);
    EXPECT_EQ(swRes.output, thRes.output);
    EXPECT_TRUE(thEmu.snapshot().equalTo(swEmu.snapshot(),
                                         /*ignoreScratch=*/false));

    // Timing-engine differential: the reference is the portable
    // stack (token-switch dispatch, scalar hold walk, no memo);
    // every accelerated combination must reproduce it bit for bit —
    // cycles, issue-width histogram, stall total AND per-reason
    // attribution.
    sim::TimedRun ref =
        timeWithEngines(x, m, Dispatch::Switch, false, false);
    EXPECT_EQ(ref.stallBreakdown.total(), ref.stallCycles);
    const struct
    {
        Dispatch d;
        bool simd, memo;
        const char *name;
    } combos[] = {
        {Dispatch::Threaded, false, false, "threaded"},
        {Dispatch::Switch, true, false, "simd"},
        {Dispatch::Switch, false, true, "memo"},
        {Dispatch::Threaded, true, true, "threaded+simd+memo"},
    };
    for (const auto &c : combos) {
        SCOPED_TRACE(c.name);
        sim::TimedRun got = timeWithEngines(x, m, c.d, c.simd, c.memo);
        EXPECT_EQ(got.cycles, ref.cycles);
        EXPECT_EQ(got.issueHistogram, ref.issueHistogram);
        EXPECT_EQ(got.stallCycles, ref.stallCycles);
        EXPECT_TRUE(got.stallBreakdown == ref.stallBreakdown);
        EXPECT_EQ(got.result.instructions, ref.result.instructions);
        EXPECT_EQ(got.result.exitCode, ref.result.exitCode);
        EXPECT_EQ(got.result.output, ref.result.output);
    }
}

void
fuzzSeed(uint64_t seed)
{
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    workload::GenOptions gopts;
    gopts.machine = &m;
    exe::Executable orig =
        workload::generate(tests::randomSpec(seed), gopts);

    exe::SectionStore store;
    edit::BatchOptions bopts;
    bopts.model = &m;
    bopts.store = &store;

    edit::BatchRewriter rw(orig, bopts);
    edit::BatchResult batch = rw.rewriteAll(kAllKinds);
    edit::BatchResult eager =
        edit::eagerRewriteAll(orig, kAllKinds, bopts);

    // --- Byte identity: the COW path must be invisible in output.
    ASSERT_EQ(batch.variants.size(), kAllKinds.size());
    ASSERT_EQ(eager.variants.size(), kAllKinds.size());
    EXPECT_TRUE(batch.work.text == eager.work.text);
    EXPECT_TRUE(batch.work.data == eager.work.data);
    for (size_t k = 0; k < kAllKinds.size(); ++k) {
        SCOPED_TRACE("variant " + std::to_string(k));
        const exe::Executable &b = batch.variants[k].image;
        const exe::Executable &e = eager.variants[k].image;
        ASSERT_TRUE(b.text == e.text);
        ASSERT_TRUE(b.data == e.data);
        EXPECT_EQ(b.entry, e.entry);
        EXPECT_EQ(b.bssBytes, e.bssBytes);
    }

    // The identity variant reproduces the input bit for bit, and the
    // work image is the input plus counter bss.
    EXPECT_TRUE(batch.variants[0].image.text == orig.text);
    EXPECT_TRUE(batch.work.text == orig.text);

    // --- Behaviour: every variant runs to the original's answer;
    // batch and eager builds of a variant retire identical traces
    // and identical full final state (same layout, so even scratch
    // registers must agree).
    VariantRun r0 = runImage(orig, nullptr);
    ASSERT_TRUE(r0.result.exited);

    std::vector<VariantRun> bruns, eruns;
    for (size_t k = 0; k < kAllKinds.size(); ++k) {
        SCOPED_TRACE("variant " + std::to_string(k));
        bruns.push_back(runImage(batch.variants[k].image, &store));
        eruns.push_back(runImage(eager.variants[k].image, nullptr));
        const VariantRun &b = bruns.back();
        const VariantRun &e = eruns.back();
        ASSERT_TRUE(b.result.exited);
        ASSERT_TRUE(e.result.exited);
        EXPECT_EQ(b.traceHash, e.traceHash);
        EXPECT_EQ(b.result.instructions, e.result.instructions);
        EXPECT_TRUE(b.emu->snapshot().equalTo(e.emu->snapshot(),
                                              /*ignoreScratch=*/false));
        EXPECT_EQ(b.result.exitCode, r0.result.exitCode);
        EXPECT_EQ(b.result.output, r0.result.output);
    }

    // --- qpt counters: the three counter-carrying variants agree on
    // every block count, batch equals eager, and the edge profile
    // reconstructs the same block counts.
    auto counts = [&](const VariantRun &vr,
                      const qpt::ProfilePlan &plan) {
        return qpt::readCounts(*vr.emu, plan);
    };
    auto slow = counts(bruns[1], batch.profilePlan);
    EXPECT_EQ(slow, counts(bruns[3], batch.profilePlan));
    EXPECT_EQ(slow, counts(bruns[4], batch.profilePlan));
    EXPECT_EQ(slow, counts(bruns[5], batch.profilePlan));
    EXPECT_EQ(slow, counts(eruns[1], eager.profilePlan));
    auto edge_counts = qpt::readEdgeCounts(*bruns[2].emu,
                                           batch.edgePlan,
                                           batch.routines);
    EXPECT_EQ(qpt::blockCountsFromEdges(edge_counts, batch.edgePlan,
                                        batch.routines),
              slow);

    // --- Sharing proof: across the work image and all six
    // variants, at least 80% of page references resolve to shared
    // pages, and every variant's data pages are the work image's
    // pages by pointer identity.
    std::vector<const exe::Executable *> images = {&batch.work};
    for (const edit::BatchVariant &v : batch.variants)
        images.push_back(&v.image);
    exe::ShareStats ss = exe::shareStats(images);
    EXPECT_GE(ss.sharedFrac(), 0.8)
        << "shared " << ss.sharedRefs << "/" << ss.totalRefs
        << " refs over " << ss.uniqueChunks << " pages";
    for (const edit::BatchVariant &v : batch.variants)
        EXPECT_EQ(v.image.data.chunkRefs(),
                  batch.work.data.chunkRefs());
    // Identity text interned onto the work image's text pages...
    EXPECT_EQ(batch.variants[0].image.text.chunkRefs(),
              batch.work.text.chunkRefs());
    // ...so the two share one memoized decode in the store.
    EXPECT_EQ(
        sim::Emulator::decodeText(batch.variants[0].image, store).get(),
        sim::Emulator::decodeText(batch.work, store).get());

    // --- Simulator engines: every dispatch/hold/memo combination is
    // bit-equal on the original program and on the locally scheduled
    // variant (different code layout, same seeds).
    engineDifferential(orig, m);
    engineDifferential(batch.variants[3].image, m);
}

// 64 seeds, split so a failure narrows to a quarter of the space
// before the SCOPED_TRACE seed pins it exactly.
TEST(DifferentialFuzz, Seeds00To15)
{
    for (uint64_t s = 0; s < 16; ++s)
        fuzzSeed(s);
}
TEST(DifferentialFuzz, Seeds16To31)
{
    for (uint64_t s = 16; s < 32; ++s)
        fuzzSeed(s);
}
TEST(DifferentialFuzz, Seeds32To47)
{
    for (uint64_t s = 32; s < 48; ++s)
        fuzzSeed(s);
}
TEST(DifferentialFuzz, Seeds48To63)
{
    for (uint64_t s = 48; s < 64; ++s)
        fuzzSeed(s);
}

} // namespace
} // namespace eel
