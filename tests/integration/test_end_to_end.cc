/**
 * @file
 * Integration tests: the full Figure-3 pipeline — generate a
 * benchmark, profile it with QPT slow profiling, schedule the
 * instrumentation, and measure — exercising every module together.
 * These pin the qualitative claims the benches then quantify.
 */

#include <gtest/gtest.h>

#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel {
namespace {

struct Measurement
{
    std::string output;
    uint64_t uninst;
    uint64_t inst;
    uint64_t sched;

    double
    hidden() const
    {
        return double(inst - sched) / double(inst - uninst);
    }
};

Measurement
measure(const char *machine_name, size_t bench, double scale)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(machine_name);
    workload::BenchmarkSpec spec =
        workload::spec95(machine_name)[bench];
    workload::GenOptions gopts;
    gopts.scale = scale;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);

    auto routines = edit::buildRoutines(orig);
    exe::Executable work = orig;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);

    edit::EditOptions plain;
    exe::Executable inst =
        edit::rewrite(work, routines, plan.plan, plain);
    edit::EditOptions sched;
    sched.schedule = true;
    sched.model = &m;
    exe::Executable schd =
        edit::rewrite(work, routines, plan.plan, sched);

    Measurement out;
    auto r0 = sim::timedRun(orig, m);
    auto r1 = sim::timedRun(inst, m);
    auto r2 = sim::timedRun(schd, m);
    EXPECT_EQ(r0.result.output, r1.result.output);
    EXPECT_EQ(r0.result.output, r2.result.output);
    out.output = r0.result.output;
    out.uninst = r0.cycles;
    out.inst = r1.cycles;
    out.sched = r2.cycles;
    return out;
}

TEST(EndToEnd, InstrumentationCostsAndSchedulingHides)
{
    for (const char *mach : {"supersparc", "ultrasparc"}) {
        Measurement r = measure(mach, 3 /* 129.compress */, 0.05);
        EXPECT_GT(r.inst, r.uninst) << mach;
        EXPECT_LE(r.sched, r.inst) << mach;
        EXPECT_GT(r.hidden(), 0.0) << mach;
        EXPECT_LT(r.hidden(), 1.0) << mach;
    }
}

TEST(EndToEnd, IntOverheadRoughlyDoubles)
{
    // Paper Table 1: SPECINT instrumented/uninstrumented is about
    // 1.5x-2.8x. Allow a generous band.
    Measurement r = measure("ultrasparc", 4 /* 130.li */, 0.05);
    double ratio = double(r.inst) / double(r.uninst);
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 4.5);
}

TEST(EndToEnd, FpOverheadIsSmall)
{
    // Paper Table 1: SPECFP instrumented ratio is ~1.0-1.4.
    Measurement r = measure("ultrasparc", 9 /* 102.swim */, 0.05);
    double ratio = double(r.inst) / double(r.uninst);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.6);
}

TEST(EndToEnd, SchedulingNeverChangesResults)
{
    for (size_t bench : {0u, 5u, 9u, 13u, 16u}) {
        Measurement r = measure("ultrasparc", bench, 0.02);
        EXPECT_FALSE(r.output.empty());
    }
}

TEST(EndToEnd, RescheduleFirstVariant)
{
    // The Table 2 protocol: reschedule the uninstrumented program
    // first, then measure hiding against that baseline.
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    workload::BenchmarkSpec spec = workload::spec95("ultrasparc")[10];
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(orig);

    edit::EditOptions resched;
    resched.schedule = true;
    resched.model = &m;
    exe::Executable base = edit::rewrite(
        orig, routines, edit::InstrumentationPlan{}, resched);

    // Instrument the rescheduled binary.
    auto routines2 = edit::buildRoutines(base);
    exe::Executable work = base;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines2);
    exe::Executable inst =
        edit::rewrite(work, routines2, plan.plan, {});
    exe::Executable schd =
        edit::rewrite(work, routines2, plan.plan, resched);

    auto r0 = sim::timedRun(base, m);
    auto r1 = sim::timedRun(inst, m);
    auto r2 = sim::timedRun(schd, m);
    ASSERT_EQ(r0.result.output, r1.result.output);
    ASSERT_EQ(r0.result.output, r2.result.output);
    EXPECT_GT(r1.cycles, r0.cycles);
    EXPECT_LE(r2.cycles, r1.cycles);
}

TEST(EndToEnd, ProfileThenEditThenReprofileIsStable)
{
    // Editing an already-edited executable must still work: the
    // instrumented binary is a valid EEL input.
    const machine::MachineModel &m =
        machine::MachineModel::builtin("supersparc");
    workload::BenchmarkSpec spec =
        workload::spec95("supersparc")[2];
    workload::GenOptions gopts;
    gopts.scale = 0.02;
    gopts.machine = &m;
    exe::Executable orig = workload::generate(spec, gopts);
    auto routines = edit::buildRoutines(orig);
    exe::Executable work = orig;
    qpt::ProfilePlan plan = qpt::makePlan(work, routines);
    exe::Executable inst =
        edit::rewrite(work, routines, plan.plan, {});

    // Round two: rebuild the CFG of the instrumented binary and
    // reschedule it.
    auto routines2 = edit::buildRoutines(inst);
    edit::EditOptions opts;
    opts.schedule = true;
    opts.model = &m;
    exe::Executable again = edit::rewrite(
        inst, routines2, edit::InstrumentationPlan{}, opts);

    sim::Emulator e0(orig), e1(again);
    EXPECT_EQ(e0.run().output, e1.run().output);
}

} // namespace
} // namespace eel
