/**
 * @file
 * The parallel pipeline must be a pure speedup: scheduling routines
 * on a pool and running the table benchmarks concurrently has to
 * produce bit-identical executables and byte-identical tables.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "src/eel/batch.hh"
#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/machine/model.hh"
#include "src/qpt/profiler.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

TEST(ParallelDeterminism, RewriteIdenticalWithPool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    exe::Executable x = workload::generate(specs[0], gopts);
    auto routines = edit::buildRoutines(x);
    qpt::ProfilePlan plan = qpt::makePlan(x, routines);

    edit::EditOptions opts;
    opts.schedule = true;
    opts.model = &m;
    exe::Executable serial = edit::rewrite(x, routines, plan.plan,
                                           opts);

    support::ThreadPool pool(8);
    opts.pool = &pool;
    exe::Executable parallel = edit::rewrite(x, routines, plan.plan,
                                             opts);

    ASSERT_EQ(serial.text.size(), parallel.text.size());
    EXPECT_EQ(serial.text, parallel.text);
    EXPECT_EQ(serial.entry, parallel.entry);
}

/**
 * The pipelined variant under the batch pool: modulo scheduling runs
 * inside the parallel buildRoutine pass, so a pooled batch must
 * stamp byte-identical images to a serial one (this is also the
 * tsan preset's window onto the new scheduler: `tsan_pipeline`).
 */
TEST(ParallelDeterminism, PipelineBatchIdenticalWithPool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    exe::Executable x = workload::generate(specs[1], gopts);

    const std::vector<edit::VariantKind> kinds = {
        edit::VariantKind::SlowProfile,
        edit::VariantKind::Superblock,
        edit::VariantKind::Pipeline,
    };
    edit::BatchOptions bopts;
    bopts.model = &m;
    edit::BatchRewriter serial_rw(x, bopts);
    edit::BatchResult serial = serial_rw.rewriteAll(kinds);

    support::ThreadPool pool(8);
    bopts.pool = &pool;
    edit::BatchRewriter pooled_rw(x, bopts);
    edit::BatchResult pooled = pooled_rw.rewriteAll(kinds);

    ASSERT_EQ(serial.variants.size(), pooled.variants.size());
    for (size_t k = 0; k < kinds.size(); ++k) {
        SCOPED_TRACE("variant " + std::to_string(k));
        EXPECT_TRUE(serial.variants[k].image.text ==
                    pooled.variants[k].image.text);
        EXPECT_EQ(serial.variants[k].image.entry,
                  pooled.variants[k].image.entry);
    }
}

TEST(ParallelDeterminism, TableIdenticalAcrossJobs)
{
    bench::TableOptions opts;
    opts.machine = "ultrasparc";
    opts.scale = 0.03;

    opts.jobs = 1;
    std::vector<bench::Row> serial = bench::runTable(opts);
    opts.jobs = 8;
    std::vector<bench::Row> parallel = bench::runTable(opts);

    std::string a = bench::formatTable("Table 1", serial);
    std::string b = bench::formatTable("Table 1", parallel);
    EXPECT_EQ(a, b);
}

} // namespace
