/**
 * @file
 * The parallel pipeline must be a pure speedup: scheduling routines
 * on a pool and running the table benchmarks concurrently has to
 * produce bit-identical executables and byte-identical tables.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "src/eel/cfg.hh"
#include "src/eel/editor.hh"
#include "src/machine/model.hh"
#include "src/qpt/profiler.hh"
#include "src/support/thread_pool.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace {

using namespace eel;

TEST(ParallelDeterminism, RewriteIdenticalWithPool)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin("ultrasparc");
    auto specs = workload::spec95("ultrasparc");
    workload::GenOptions gopts;
    gopts.scale = 0.05;
    gopts.machine = &m;
    exe::Executable x = workload::generate(specs[0], gopts);
    auto routines = edit::buildRoutines(x);
    qpt::ProfilePlan plan = qpt::makePlan(x, routines);

    edit::EditOptions opts;
    opts.schedule = true;
    opts.model = &m;
    exe::Executable serial = edit::rewrite(x, routines, plan.plan,
                                           opts);

    support::ThreadPool pool(8);
    opts.pool = &pool;
    exe::Executable parallel = edit::rewrite(x, routines, plan.plan,
                                             opts);

    ASSERT_EQ(serial.text.size(), parallel.text.size());
    EXPECT_EQ(serial.text, parallel.text);
    EXPECT_EQ(serial.entry, parallel.entry);
}

TEST(ParallelDeterminism, TableIdenticalAcrossJobs)
{
    bench::TableOptions opts;
    opts.machine = "ultrasparc";
    opts.scale = 0.03;

    opts.jobs = 1;
    std::vector<bench::Row> serial = bench::runTable(opts);
    opts.jobs = 8;
    std::vector<bench::Row> parallel = bench::runTable(opts);

    std::string a = bench::formatTable("Table 1", serial);
    std::string b = bench::formatTable("Table 1", parallel);
    EXPECT_EQ(a, b);
}

} // namespace
