#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/eel/cfg.hh"
#include "src/sim/emulator.hh"
#include "src/sim/timing.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::workload {
namespace {

const machine::MachineModel &m()
{
    return machine::MachineModel::builtin("ultrasparc");
}

GenOptions
opts(double scale = 0.02)
{
    GenOptions g;
    g.scale = scale;
    g.machine = &m();
    return g;
}

TEST(Spec95, CoversAllEighteenBenchmarks)
{
    auto specs = spec95("ultrasparc");
    ASSERT_EQ(specs.size(), 18u);
    int fp = 0;
    for (const BenchmarkSpec &s : specs)
        fp += s.fp;
    EXPECT_EQ(fp, 10);
    EXPECT_EQ(specs[0].name, "099.go");
    EXPECT_EQ(specs[17].name, "146.wave5");
}

TEST(Spec95, BlockSizesFollowThePaperPerMachine)
{
    auto ultra = spec95("ultrasparc");
    auto super = spec95("supersparc");
    // Table 1 vs Table 3 values.
    EXPECT_DOUBLE_EQ(ultra[9].avgBlockSize, 49.0);   // 102.swim
    EXPECT_DOUBLE_EQ(super[9].avgBlockSize, 66.1);
    EXPECT_DOUBLE_EQ(ultra[4].avgBlockSize, 2.0);    // 130.li
    EXPECT_DOUBLE_EQ(ultra[16].avgBlockSize, 33.9);  // 145.fpppp
}

TEST(Generator, Deterministic)
{
    BenchmarkSpec spec = spec95("ultrasparc")[0];
    exe::Executable a = generate(spec, opts());
    exe::Executable b = generate(spec, opts());
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.data, b.data);
}

TEST(Generator, ProgramsRunAndExitCleanly)
{
    for (size_t i : {0u, 4u, 9u, 16u}) {
        BenchmarkSpec spec = spec95("ultrasparc")[i];
        exe::Executable x = generate(spec, opts());
        sim::Emulator emu(x);
        sim::RunResult r = emu.run();
        EXPECT_TRUE(r.exited) << spec.name;
        EXPECT_EQ(r.exitCode, 0) << spec.name;
        EXPECT_FALSE(r.output.empty()) << spec.name;
    }
}

TEST(Generator, CfgBuildsCleanly)
{
    for (size_t i : {1u, 10u}) {
        BenchmarkSpec spec = spec95("ultrasparc")[i];
        exe::Executable x = generate(spec, opts());
        auto rs = edit::buildRoutines(x);
        EXPECT_EQ(rs.size(), 4u) << "default 3 kernels + main";
        EXPECT_EQ(rs.back().name, "main");
    }
}

TEST(Generator, ScaleControlsDynamicLength)
{
    BenchmarkSpec spec = spec95("ultrasparc")[3];
    exe::Executable small = generate(spec, opts(0.02));
    exe::Executable big = generate(spec, opts(0.08));
    sim::Emulator es(small), eb(big);
    uint64_t ns = es.run().instructions;
    uint64_t nb = eb.run().instructions;
    EXPECT_GT(nb, 2 * ns);
    EXPECT_LT(nb, 8 * ns);
}

TEST(Generator, ReservedRegistersNeverTouched)
{
    // Instrumentation scratch (%g5-%g7) must stay free.
    for (size_t i : {0u, 9u}) {
        BenchmarkSpec spec = spec95("ultrasparc")[i];
        exe::Executable x = generate(spec, opts());
        auto reserved = [](isa::RegId r) {
            return r.cls == isa::RegClass::Int && r.idx >= 5 &&
                   r.idx <= 7;
        };
        for (uint32_t w : x.text) {
            isa::Instruction in = isa::decode(w);
            for (const auto &a : in.uses())
                EXPECT_FALSE(reserved(a.reg))
                    << isa::disassemble(in);
            for (const auto &a : in.defs())
                EXPECT_FALSE(reserved(a.reg))
                    << isa::disassemble(in);
        }
    }
}

/** Dynamic average basic block size measured by tracing. */
double
measuredAvgBlockSize(const exe::Executable &x)
{
    auto rs = edit::buildRoutines(x);
    struct Sink : sim::TraceSink
    {
        std::set<uint32_t> starts;
        uint64_t blocks = 0;
        uint64_t insts = 0;
        void
        retire(uint32_t pc, const isa::Instruction &) override
        {
            ++insts;
            if (starts.count(pc))
                ++blocks;
        }
    } sink;
    for (const auto &r : rs)
        for (const auto &blk : r.blocks)
            sink.starts.insert(blk.startAddr);
    sim::Emulator emu(x);
    emu.run(&sink);
    return double(sink.insts) / double(sink.blocks);
}

class BlockSizeFidelity
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(BlockSizeFidelity, MatchesSpecWithinTolerance)
{
    BenchmarkSpec spec = spec95("ultrasparc")[GetParam()];
    exe::Executable x = generate(spec, opts());
    double measured = measuredAvgBlockSize(x);
    // Within 35% relative or 1.0 absolute of the paper's value.
    double tol = std::max(1.0, 0.35 * spec.avgBlockSize);
    EXPECT_NEAR(measured, spec.avgBlockSize, tol)
        << spec.name << " target " << spec.avgBlockSize;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, BlockSizeFidelity,
    ::testing::Values(0, 3, 4, 5, 8, 9, 11, 12, 16),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string n =
            spec95("ultrasparc")[info.param].name;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(Generator, OracleScheduleIsNoSlower)
{
    BenchmarkSpec spec = spec95("ultrasparc")[9];  // swim, fp
    GenOptions with = opts(0.02);
    GenOptions without = opts(0.02);
    without.oracleSchedule = false;
    exe::Executable a = generate(spec, with);
    exe::Executable b = generate(spec, without);
    auto ra = sim::timedRun(a, m());
    auto rb = sim::timedRun(b, m());
    // Same computation either way.
    EXPECT_EQ(ra.result.output, rb.result.output);
    EXPECT_LE(ra.cycles, rb.cycles);
}

TEST(Generator, FpBenchmarksUseFpInstructions)
{
    exe::Executable fp = generate(spec95("ultrasparc")[9], opts());
    exe::Executable iq = generate(spec95("ultrasparc")[0], opts());
    auto countFp = [](const exe::Executable &x) {
        int n = 0;
        for (uint32_t w : x.text) {
            isa::Instruction in = isa::decode(w);
            if (in.info().format == isa::Format::F3Fp ||
                in.info().isFpMem)
                ++n;
        }
        return n;
    };
    EXPECT_GT(countFp(fp), 20);
    EXPECT_EQ(countFp(iq), 0);
}

TEST(Generator, KernelCountControlsStaticFootprint)
{
    BenchmarkSpec spec = spec95("ultrasparc")[4];
    exe::Executable small = generate(spec, opts());
    spec.kernels = 12;
    exe::Executable big = generate(spec, opts());
    EXPECT_GT(big.text.size(), 2 * small.text.size());
    // And it still runs to completion.
    sim::Emulator e(big);
    EXPECT_TRUE(e.run().exited);
    // 12 kernels + main.
    EXPECT_EQ(edit::buildRoutines(big).size(), 13u);
}

} // namespace
} // namespace eel::workload
