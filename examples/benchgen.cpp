/**
 * @file
 * benchgen — generate the synthetic SPEC95 stand-in executables as
 * .xef files, for use with profile_tool and sched_viewer.
 *
 *   benchgen list [--machine M]
 *       Show the benchmark suite and its parameters.
 *
 *   benchgen <benchmark> <out.xef> [--machine M] [--scale X]
 *            [--no-oracle]
 *       Generate one benchmark (e.g. "102.swim").
 */

#include <cstdio>
#include <string>

#include "src/machine/model.hh"
#include "src/support/logging.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

using namespace eel;

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: benchgen <list|benchmark> [out.xef] "
                  "[--machine M] [--scale X] [--no-oracle]");
        std::string cmd = argv[1];
        std::string out;
        std::string machine = "ultrasparc";
        double scale = 1.0;
        bool oracle = true;
        for (int i = 2; i < argc; ++i) {
            std::string s = argv[i];
            if (s == "--machine" && i + 1 < argc)
                machine = argv[++i];
            else if (s == "--scale" && i + 1 < argc)
                scale = std::stod(argv[++i]);
            else if (s == "--no-oracle")
                oracle = false;
            else if (out.empty() && s[0] != '-')
                out = s;
            else
                fatal("unknown option '%s'", s.c_str());
        }

        auto specs = workload::spec95(machine);
        if (cmd == "list") {
            std::printf("%-14s %5s %8s %7s %7s %7s\n", "benchmark",
                        "fp", "avg.bb", "load%", "store%", "fp%");
            for (const auto &s : specs)
                std::printf("%-14s %5s %8.1f %6.0f%% %6.0f%% "
                            "%6.0f%%\n",
                            s.name.c_str(), s.fp ? "yes" : "no",
                            s.avgBlockSize, 100 * s.loadFrac,
                            100 * s.storeFrac, 100 * s.fpFrac);
            return 0;
        }

        const workload::BenchmarkSpec *spec = nullptr;
        for (const auto &s : specs)
            if (s.name == cmd)
                spec = &s;
        if (!spec)
            fatal("unknown benchmark '%s' (try: benchgen list)",
                  cmd.c_str());
        if (out.empty())
            fatal("missing output path");

        workload::GenOptions gopts;
        gopts.scale = scale;
        gopts.oracleSchedule = oracle;
        gopts.machine = &machine::MachineModel::builtin(machine);
        exe::Executable x = workload::generate(*spec, gopts);
        x.save(out);
        std::fprintf(stderr,
                     "%s: %zu text words, %zu data bytes -> %s\n",
                     spec->name.c_str(), x.text.size(),
                     x.data.size(), out.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "benchgen: %s\n", e.what());
        return 1;
    }
}
