/**
 * @file
 * machine_report — inspect what Spawn derives from a SADL machine
 * description: unit capacities, timing groups, and per-instruction
 * reservation tables with register read/write cycles.
 *
 *   machine_report <hypersparc|supersparc|ultrasparc>
 *   machine_report <file.sadl> [clock-mhz]
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/machine/spawn_codegen.hh"
#include "src/support/logging.hh"

using namespace eel;

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: machine_report <builtin-name | file.sadl> "
                  "[clock-mhz]");
        std::string name = argv[1];

        if (name == "hypersparc" || name == "supersparc" ||
            name == "ultrasparc") {
            const machine::MachineModel &m =
                machine::MachineModel::builtin(name);
            std::printf("%s", machine::describeModel(m).c_str());
            return 0;
        }

        std::ifstream f(name);
        if (!f)
            fatal("cannot open '%s'", name.c_str());
        std::stringstream ss;
        ss << f.rdbuf();
        double mhz = argc > 2 ? std::stod(argv[2]) : 100.0;
        machine::MachineModel m = machine::MachineModel::fromSadl(
            ss.str(), name, mhz);
        std::printf("%s", machine::describeModel(m).c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "machine_report: %s\n", e.what());
        return 1;
    }
}
