/**
 * @file
 * Quickstart: the whole toolchain on a ten-instruction program.
 *
 *  1. assemble a tiny loop into an executable image,
 *  2. let EEL analyze it into routines and basic blocks,
 *  3. insert a QPT-style counter into the loop block,
 *  4. rewrite twice — unscheduled and scheduled — and
 *  5. run all three versions, comparing results and cycle counts.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "src/eel/editor.hh"
#include "src/isa/builder.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"

using namespace eel;
namespace b = isa::build;
using isa::Op;
namespace rn = isa::reg;

int
main()
{
    // --- 1. assemble: sum the first 100 integers, print, exit ---
    exe::Executable x;
    auto push = [&](isa::Instruction in) {
        x.text.push_back(isa::encode(in));
    };
    push(b::movi(rn::l0, 100));                 // i = 100
    push(b::movi(rn::o0, 0));                   // sum = 0
    // loop:
    push(b::rrr(Op::Add, rn::o0, rn::o0, rn::l0));  // sum += i
    push(b::rri(Op::Subcc, rn::l0, rn::l0, 1));     // --i
    push(b::bicc(isa::cond::ne, -2));               // bne loop
    push(b::nop());                                  // delay
    push(b::ta(isa::trap::put_int));            // print sum
    push(b::movi(rn::o0, 0));
    push(b::ta(isa::trap::exit_prog));
    push(b::retl());
    push(b::nop());
    x.entry = exe::textBase;
    x.symbols.push_back(exe::Symbol{
        "main", exe::textBase,
        static_cast<uint32_t>(4 * x.text.size()), true});

    std::printf("== original program ==\n%s\n",
                x.disassembleText().c_str());

    // --- 2. analyze ---
    std::vector<edit::Routine> routines = edit::buildRoutines(x);
    std::printf("== control flow ==\n%s\n",
                edit::dumpRoutine(routines[0]).c_str());

    // --- 3. instrument the loop block with a counter ---
    uint32_t counter = x.addBss("loop_counter", 4);
    edit::InstrumentationPlan plan;
    int loop_block = routines[0].blockAt(x.entry + 8);
    plan.add(0, loop_block, qpt::counterSnippet(counter, {}));

    // --- 4. rewrite, unscheduled and scheduled ---
    const machine::MachineModel &ultra =
        machine::MachineModel::builtin("ultrasparc");
    exe::Executable unscheduled =
        edit::rewrite(x, routines, plan, edit::EditOptions{});
    edit::EditOptions so;
    so.schedule = true;
    so.model = &ultra;
    exe::Executable scheduled = edit::rewrite(x, routines, plan, so);

    std::printf("== instrumented + scheduled ==\n%s\n",
                scheduled.disassembleText().c_str());

    // --- 5. run all three on the UltraSPARC model ---
    sim::TimedRun r0 = sim::timedRun(x, ultra);
    sim::TimedRun r1 = sim::timedRun(unscheduled, ultra);
    sim::TimedRun r2 = sim::timedRun(scheduled, ultra);

    std::printf("== results ==\n");
    std::printf("all print %s", r0.result.output.c_str());
    std::printf("uninstrumented: %8llu cycles\n",
                (unsigned long long)r0.cycles);
    std::printf("instrumented:   %8llu cycles (%.2fx)\n",
                (unsigned long long)r1.cycles,
                double(r1.cycles) / r0.cycles);
    std::printf("scheduled:      %8llu cycles (%.2fx)\n",
                (unsigned long long)r2.cycles,
                double(r2.cycles) / r0.cycles);
    double hidden = 100.0 * double(r1.cycles - r2.cycles) /
                    double(r1.cycles - r0.cycles);
    std::printf("scheduling hid %.1f%% of the instrumentation "
                "overhead\n",
                hidden);

    sim::Emulator emu(scheduled);
    emu.run();
    std::printf("loop counter after the run: %u (loop ran 100 "
                "times)\n",
                emu.readWord(counter));
    return 0;
}
