/**
 * @file
 * profile_tool — the complete QPT-style profiler of the paper's
 * Figure 3 as a command-line tool.
 *
 *   profile_tool instrument <in.xef> <out.xef> [--machine M]
 *                [--no-schedule] [--no-skip]
 *       Insert block counters (scheduled by default) and write the
 *       edited executable.
 *
 *   profile_tool run <in.xef> [--machine M] [--top N]
 *       Instrument in memory, run on the machine model, and print
 *       the hottest basic blocks with their execution counts,
 *       plus the overhead summary.
 *
 *   profile_tool disasm <in.xef>
 *       Disassemble an executable.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"

using namespace eel;

namespace {

struct Args
{
    std::string command;
    std::string input;
    std::string output;
    std::string machine = "ultrasparc";
    bool schedule = true;
    bool skip = true;
    int top = 10;
};

Args
parse(int argc, char **argv)
{
    Args a;
    if (argc < 3)
        fatal("usage: profile_tool <instrument|run|disasm> <in.xef> "
              "[out.xef] [--machine M] [--no-schedule] [--no-skip] "
              "[--top N]");
    a.command = argv[1];
    a.input = argv[2];
    for (int i = 3; i < argc; ++i) {
        std::string s = argv[i];
        if (s == "--machine" && i + 1 < argc)
            a.machine = argv[++i];
        else if (s == "--no-schedule")
            a.schedule = false;
        else if (s == "--no-skip")
            a.skip = false;
        else if (s == "--top" && i + 1 < argc)
            a.top = std::stoi(argv[++i]);
        else if (a.output.empty() && s[0] != '-')
            a.output = s;
        else
            fatal("unknown option '%s'", s.c_str());
    }
    return a;
}

struct Instrumented
{
    exe::Executable out;
    std::vector<edit::Routine> routines;
    qpt::ProfilePlan plan;
};

Instrumented
instrument(const exe::Executable &in, const Args &a)
{
    Instrumented r;
    r.routines = edit::buildRoutines(in);
    exe::Executable work = in;
    qpt::ProfileOptions popts;
    popts.skipRedundantBlocks = a.skip;
    r.plan = qpt::makePlan(work, r.routines, popts);

    edit::EditOptions eopts;
    if (a.schedule) {
        eopts.schedule = true;
        eopts.model = &machine::MachineModel::builtin(a.machine);
    }
    r.out = edit::rewrite(work, r.routines, r.plan.plan, eopts);
    std::fprintf(stderr,
                 "instrumented %llu of %llu blocks (%u counters), "
                 "text %zu -> %zu words%s\n",
                 (unsigned long long)r.plan.instrumentedBlocks,
                 (unsigned long long)r.plan.totalBlocks,
                 r.plan.numCounters, in.text.size(),
                 r.out.text.size(),
                 a.schedule ? ", scheduled" : "");
    return r;
}

int
cmdRun(const exe::Executable &in, const Args &a)
{
    const machine::MachineModel &m =
        machine::MachineModel::builtin(a.machine);
    Instrumented inst = instrument(in, a);

    sim::Emulator emu(inst.out);
    sim::TimingSim timing(m);
    sim::RunResult res = emu.run(&timing);
    if (!res.exited)
        fatal("program did not exit");
    auto counts = qpt::readCounts(emu, inst.plan);

    sim::TimedRun base = sim::timedRun(in, m);
    std::printf("program output:\n%s", res.output.c_str());
    std::printf("\nuninstrumented: %llu cycles; instrumented: %llu "
                "cycles (%.2fx)\n",
                (unsigned long long)base.cycles,
                (unsigned long long)timing.cycles(),
                double(timing.cycles()) / double(base.cycles));

    struct Hot
    {
        uint64_t count;
        std::string routine;
        uint32_t block;
        uint32_t addr;
        size_t insts;
    };
    std::vector<Hot> hot;
    for (size_t ri = 0; ri < inst.routines.size(); ++ri)
        for (const edit::Block &blk : inst.routines[ri].blocks)
            hot.push_back(Hot{counts[ri][blk.id],
                              inst.routines[ri].name, blk.id,
                              blk.startAddr, blk.insts.size()});
    std::sort(hot.begin(), hot.end(),
              [](const Hot &x, const Hot &y) {
                  return x.count > y.count;
              });

    std::printf("\nhottest blocks:\n");
    std::printf("%12s  %-12s %6s %10s %6s\n", "count", "routine",
                "block", "addr", "insts");
    for (int i = 0; i < a.top && i < static_cast<int>(hot.size());
         ++i)
        std::printf("%12llu  %-12s %6u %#10x %6zu\n",
                    (unsigned long long)hot[i].count,
                    hot[i].routine.c_str(), hot[i].block,
                    hot[i].addr, hot[i].insts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args a = parse(argc, argv);
        exe::Executable in = exe::Executable::load(a.input);

        if (a.command == "disasm") {
            std::printf("%s", in.disassembleText().c_str());
            return 0;
        }
        if (a.command == "instrument") {
            if (a.output.empty())
                fatal("instrument needs an output path");
            Instrumented r = instrument(in, a);
            r.out.save(a.output);
            return 0;
        }
        if (a.command == "run")
            return cmdRun(in, a);
        fatal("unknown command '%s'", a.command.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "profile_tool: %s\n", e.what());
        return 1;
    }
}
