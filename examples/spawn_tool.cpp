/**
 * @file
 * spawn_tool — the code-generating flow of the paper's Figure 1:
 * translate a SADL architecture description into the C++ timing
 * tables that, in the original system, Spawn spliced into EEL's
 * machine-dependent source by replacing {{...}} annotations
 * (Appendix A).
 *
 *   spawn_tool <builtin-name | file.sadl> [out.cc]
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/machine/spawn_codegen.hh"
#include "src/support/logging.hh"

using namespace eel;

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: spawn_tool <builtin-name | file.sadl> "
                  "[out.cc]");
        std::string name = argv[1];

        std::string cpp;
        if (name == "hypersparc" || name == "supersparc" ||
            name == "ultrasparc") {
            cpp = machine::generateCpp(
                machine::MachineModel::builtin(name));
        } else {
            std::ifstream f(name);
            if (!f)
                fatal("cannot open '%s'", name.c_str());
            std::stringstream ss;
            ss << f.rdbuf();
            machine::MachineModel m =
                machine::MachineModel::fromSadl(ss.str(), name,
                                                100.0);
            cpp = machine::generateCpp(m);
        }

        if (argc > 2) {
            std::ofstream out(argv[2]);
            if (!out)
                fatal("cannot write '%s'", argv[2]);
            out << cpp;
            std::fprintf(stderr, "wrote %zu bytes to %s\n",
                         cpp.size(), argv[2]);
        } else {
            std::printf("%s", cpp.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "spawn_tool: %s\n", e.what());
        return 1;
    }
}
