/**
 * @file
 * sched_viewer — visualize what the scheduler does to each basic
 * block of an executable: the original order, the scheduled order
 * (optionally with a QPT counter snippet mixed in), and the issue
 * cycle of every instruction under the machine model, so the hidden
 * stall slots are visible.
 *
 *   sched_viewer <in.xef> [--machine M] [--instrument]
 *                [--routine NAME] [--max-blocks N]
 */

#include <cstdio>
#include <string>

#include "src/eel/cfg.hh"
#include "src/machine/pipeline.hh"
#include "src/qpt/profiler.hh"
#include "src/sched/scheduler.hh"
#include "src/support/logging.hh"

using namespace eel;

namespace {

void
showSequence(const char *title, const sched::InstSeq &seq,
             const machine::MachineModel &m)
{
    machine::PipelineState st(m);
    std::printf("  %s\n", title);
    uint64_t done = 0;
    for (const sched::InstRef &ref : seq) {
        auto r = st.issue(ref.inst);
        std::printf("    cycle %3llu%s  %c %s\n",
                    (unsigned long long)r.startCycle,
                    r.stalls ? "*" : " ",
                    ref.isInstrumentation ? '+' : ' ',
                    isa::disassemble(ref.inst).c_str());
        done = std::max(done, r.doneCycle);
    }
    std::printf("    -- %llu cycles\n", (unsigned long long)done);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: sched_viewer <in.xef> [--machine M] "
                  "[--instrument] [--routine NAME] "
                  "[--max-blocks N]");
        std::string machine_name = "ultrasparc";
        std::string routine_filter;
        bool add_counters = false;
        int max_blocks = 4;
        for (int i = 2; i < argc; ++i) {
            std::string s = argv[i];
            if (s == "--machine" && i + 1 < argc)
                machine_name = argv[++i];
            else if (s == "--instrument")
                add_counters = true;
            else if (s == "--routine" && i + 1 < argc)
                routine_filter = argv[++i];
            else if (s == "--max-blocks" && i + 1 < argc)
                max_blocks = std::stoi(argv[++i]);
            else
                fatal("unknown option '%s'", s.c_str());
        }

        exe::Executable x = exe::Executable::load(argv[1]);
        const machine::MachineModel &m =
            machine::MachineModel::builtin(machine_name);
        sched::ListScheduler scheduler(m);

        auto routines = edit::buildRoutines(x);
        int shown = 0;
        for (const edit::Routine &r : routines) {
            if (!routine_filter.empty() && r.name != routine_filter)
                continue;
            for (const edit::Block &blk : r.blocks) {
                if (blk.insts.size() < 3)
                    continue;
                if (shown++ >= max_blocks)
                    return 0;
                std::printf("\n%s block %u @ 0x%x "
                            "(%zu instructions)\n",
                            r.name.c_str(), blk.id, blk.startAddr,
                            blk.insts.size());
                sched::InstSeq input = blk.insts;
                if (add_counters) {
                    sched::InstSeq snip =
                        qpt::counterSnippet(x.bssEnd(), {});
                    input.insert(input.begin(), snip.begin(),
                                 snip.end());
                }
                showSequence(add_counters
                                 ? "original + counter (unscheduled)"
                                 : "original order",
                             input, m);
                showSequence("scheduled",
                             scheduler.scheduleBlock(input), m);
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sched_viewer: %s\n", e.what());
        return 1;
    }
}
