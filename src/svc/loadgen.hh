/**
 * @file
 * Load generator for the rewriting service, closed- or open-loop.
 *
 * Closed loop (default): N connections each run an independent
 * request loop — issue one request, wait for its reply, optionally
 * think (exponential delay), repeat — so offered load is bounded by
 * service rate times N, the classic closed-loop shape (and why its
 * p99 understates an open-loop system's under the same mean load;
 * see EXPERIMENTS.md).
 *
 * Open loop: requests arrive on a fixed schedule (Poisson or
 * uniform inter-arrivals at openRate req/s split across the
 * connections) regardless of how fast replies come back, and each
 * latency is measured from the request's *scheduled* arrival time —
 * so when the server falls behind, the time a request spends stuck
 * behind its connection's previous one counts against it. That is
 * the coordinated-omission-free measurement a closed loop can't
 * give.
 *
 * The request mix models a build farm's edit/rebuild cycle over a
 * working set of workload::Generator programs:
 *
 *   - resubmit: SUBMIT_XEF of a base image already submitted during
 *     warmup — the page-intern hit path a content-addressed store
 *     exists for;
 *   - edit: SUBMIT_XEF of a variant with one data byte changed —
 *     nearly all pages still intern onto the base image's;
 *   - rewrite / simulate: work requests against submitted images.
 *
 * Latencies are recorded per completed request after a warmup phase
 * that also seeds the server's caches; results report p50/p99/p999,
 * throughput, and the page-intern hit rate the mix achieved.
 */

#ifndef EEL_SVC_LOADGEN_HH
#define EEL_SVC_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eel::svc {

struct LoadConfig
{
    uint16_t port = 0;         ///< TCP (unixPath empty)
    std::string unixPath;

    unsigned connections = 4;
    /** Measured requests per connection (after warmup). */
    unsigned requestsPerConn = 200;
    /** Unmeasured requests per connection that also populate the
     *  server's image registry and rewrite cache. */
    unsigned warmupPerConn = 20;

    /** Mean exponential think time between requests; 0 = none.
     *  Closed loop only — open-loop pacing comes from the arrival
     *  schedule. */
    double thinkMeanMs = 0.0;

    enum class ArrivalMode { Closed, Open };
    enum class ArrivalDist { Poisson, Uniform };
    ArrivalMode mode = ArrivalMode::Closed;
    /** Open loop: total offered rate in requests/second, divided
     *  evenly across the connections. Must be > 0 in open mode. */
    double openRate = 200.0;
    /** Open loop: inter-arrival distribution. Poisson (exponential
     *  gaps) models independent clients; Uniform (fixed gaps) is the
     *  deterministic worst-case-free baseline. */
    ArrivalDist dist = ArrivalDist::Poisson;

    // Mix, normalized over the four weights.
    double resubmitWeight = 0.45;
    double editWeight = 0.15;
    double rewriteWeight = 0.25;
    double simulateWeight = 0.15;

    /** Base images from workload::Generator (spec95 prefix). */
    unsigned imageCount = 4;
    /** Scale on each spec's dynamic-instruction target; keep small —
     *  simulate requests run the image. */
    double imageScale = 0.02;
    /** Distinct edited variants per base image. */
    unsigned editVariants = 3;

    /** Rewrite kinds cycled by rewrite requests (edit::VariantKind
     *  values); default Identity + Sched. */
    std::vector<uint8_t> rewriteKinds = {0, 3};
    uint64_t simulateLimit = 200000;
    uint32_t deadlineMs = 30000;
    std::string machine = "ultrasparc";
    uint64_t seed = 1;

    /** Tag every request with a generated trace context (the wire
     *  extension), marking roughly 1-in-traceSampleEvery sampled so
     *  a traced server emits spans for a sliver of the load, not all
     *  of it. false = legacy untagged frames. */
    bool tagRequests = true;
    unsigned traceSampleEvery = 64;
};

struct LoadStats
{
    uint64_t completed = 0;  ///< measured Ok (or DeadlineExceeded)
    uint64_t errors = 0;     ///< every other status
    uint64_t busy = 0;
    uint64_t deadlineExceeded = 0;

    double wallSeconds = 0;
    double requestsPerSecond = 0;
    double p50Ms = 0, p99Ms = 0, p999Ms = 0;

    /** SUBMIT_XEF page accounting over the measured phase. */
    uint64_t submitPages = 0;
    uint64_t submitPageHits = 0;
    double
    submitHitRate() const
    {
        return submitPages
                   ? double(submitPageHits) / double(submitPages)
                   : 0.0;
    }
};

/** Run the closed loop against a started server. Blocks. */
LoadStats runLoad(const LoadConfig &cfg);

/** The base images the generator would submit (exposed so harnesses
 *  can replay the same inputs against a direct BatchRewriter for the
 *  byte-identity check). */
std::vector<std::string> loadImages(const LoadConfig &cfg);

} // namespace eel::svc

#endif // EEL_SVC_LOADGEN_HH
