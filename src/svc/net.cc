#include "src/svc/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/support/logging.hh"

namespace eel::svc {

namespace {

/** Read exactly n bytes; returns bytes read (short only at EOF). */
size_t
readFull(int fd, char *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, buf + got, n - got, 0);
        if (r == 0)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fatal("svc: recv: %s", std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return got;
}

void
writeFull(int fd, const char *buf, size_t n)
{
    size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE here
        // instead of killing the process with SIGPIPE.
        ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fatal("svc: send: %s", std::strerror(errno));
        }
        sent += static_cast<size_t>(r);
    }
}

void
putU32le(char *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint32_t
getU32le(const char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i]))
             << (8 * i);
    return v;
}

} // namespace

Conn &
Conn::operator=(Conn &&o) noexcept
{
    if (this != &o) {
        close();
        _fd = o._fd;
        o._fd = -1;
    }
    return *this;
}

void
Conn::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

void
Conn::shutdownWrite()
{
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_WR);
}

bool
Conn::readFrame(Frame &out, uint32_t maxBytes)
{
    char hdr[4];
    size_t got = readFull(_fd, hdr, 4);
    if (got == 0)
        return false;  // clean EOF between frames
    if (got < 4)
        fatal("svc: connection closed mid-length-prefix");
    uint32_t len = getU32le(hdr);
    // length counts seq (4) + code (1) + body.
    if (len < 5)
        fatal("svc: frame length %u below header size", len);
    if (len > maxBytes)
        fatal("svc: frame length %u exceeds limit %u", len, maxBytes);

    char meta[5];
    if (readFull(_fd, meta, 5) < 5)
        fatal("svc: connection closed mid-frame");
    out.seq = getU32le(meta);
    out.code = static_cast<uint8_t>(meta[4]);
    out.body.resize(len - 5);
    if (!out.body.empty() &&
        readFull(_fd, out.body.data(), out.body.size()) <
            out.body.size())
        fatal("svc: connection closed mid-frame");
    return true;
}

void
Conn::writeFrame(const Frame &f)
{
    std::string buf;
    buf.resize(9);
    putU32le(buf.data(), static_cast<uint32_t>(5 + f.body.size()));
    putU32le(buf.data() + 4, f.seq);
    buf[8] = static_cast<char>(f.code);
    buf += f.body;
    std::lock_guard<std::mutex> lock(writeMu);
    writeFull(_fd, buf.data(), buf.size());
}

void
Conn::writeRaw(const std::string &bytes)
{
    std::lock_guard<std::mutex> lock(writeMu);
    writeFull(_fd, bytes.data(), bytes.size());
}

Conn
connectTcp(uint16_t port, const std::string &host)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("svc: socket: %s", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("svc: bad address '%s'", host.c_str());
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int e = errno;
        ::close(fd);
        fatal("svc: connect %s:%u: %s", host.c_str(), port,
              std::strerror(e));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Conn(fd);
}

Conn
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("svc: socket: %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        fatal("svc: unix path too long: %s", path.c_str());
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int e = errno;
        ::close(fd);
        fatal("svc: connect %s: %s", path.c_str(), std::strerror(e));
    }
    return Conn(fd);
}

Listener::~Listener()
{
    if (listenFd >= 0)
        ::close(listenFd);
    if (wakeR >= 0)
        ::close(wakeR);
    if (wakeW >= 0)
        ::close(wakeW);
    if (!unixPath.empty())
        ::unlink(unixPath.c_str());
}

void
Listener::openWakePipe()
{
    int p[2];
    if (::pipe(p) != 0)
        fatal("svc: pipe: %s", std::strerror(errno));
    wakeR = p[0];
    wakeW = p[1];
}

void
Listener::listenTcp(uint16_t port)
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("svc: socket: %s", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("svc: bind port %u: %s", port, std::strerror(errno));
    if (::listen(listenFd, 64) != 0)
        fatal("svc: listen: %s", std::strerror(errno));
    socklen_t alen = sizeof addr;
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &alen) != 0)
        fatal("svc: getsockname: %s", std::strerror(errno));
    _port = ntohs(addr.sin_port);
    openWakePipe();
}

void
Listener::listenUnix(const std::string &path)
{
    ::unlink(path.c_str());
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("svc: socket: %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        fatal("svc: unix path too long: %s", path.c_str());
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("svc: bind %s: %s", path.c_str(), std::strerror(errno));
    if (::listen(listenFd, 64) != 0)
        fatal("svc: listen: %s", std::strerror(errno));
    unixPath = path;
    openWakePipe();
}

Conn
Listener::accept()
{
    for (;;) {
        pollfd fds[2];
        fds[0] = {listenFd, POLLIN, 0};
        fds[1] = {wakeR, POLLIN, 0};
        int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("svc: poll: %s", std::strerror(errno));
        }
        if (fds[1].revents)
            return Conn();  // woken for shutdown
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            fatal("svc: accept: %s", std::strerror(errno));
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return Conn(fd);
    }
}

void
Listener::wake()
{
    if (wakeW >= 0) {
        char c = 0;
        // Best-effort: a full pipe already guarantees a wakeup.
        ssize_t ignored = ::write(wakeW, &c, 1);
        (void)ignored;
    }
}

} // namespace eel::svc
