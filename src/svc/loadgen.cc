#include "src/svc/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>

#include "src/exe/executable.hh"
#include "src/machine/model.hh"
#include "src/obs/trace.hh"
#include "src/support/logging.hh"
#include "src/svc/client.hh"
#include "src/workload/generator.hh"
#include "src/workload/spec.hh"

namespace eel::svc {

using Clock = std::chrono::steady_clock;

namespace {

std::string
editedVariant(const std::string &base, unsigned variant)
{
    exe::Executable x = exe::Executable::loadBytes(base, "loadgen");
    if (x.data.empty())
        x.data.push_back(0);
    size_t i = (variant * 131u) % x.data.size();
    x.data.set(i, static_cast<uint8_t>(x.data[i] ^ (variant + 1)));
    return x.saveBytes();
}

struct PerConn
{
    Clock::time_point measuredStart, end;
    std::vector<double> latenciesMs;
    uint64_t completed = 0;
    uint64_t errors = 0;
    uint64_t busy = 0;
    uint64_t deadline = 0;
    uint64_t submitPages = 0;
    uint64_t submitPageHits = 0;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    double idx = p * double(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - double(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

} // namespace

std::vector<std::string>
loadImages(const LoadConfig &cfg)
{
    const machine::MachineModel &model =
        machine::MachineModel::builtin(cfg.machine);
    std::vector<workload::BenchmarkSpec> specs =
        workload::spec95(cfg.machine);
    std::vector<std::string> out;
    for (unsigned i = 0; i < cfg.imageCount; ++i) {
        workload::BenchmarkSpec spec =
            specs[i % specs.size()];
        spec.seed = cfg.seed + i;
        workload::GenOptions gopts;
        gopts.scale = cfg.imageScale;
        gopts.machine = &model;
        out.push_back(
            workload::generate(spec, gopts).saveBytes());
    }
    return out;
}

LoadStats
runLoad(const LoadConfig &cfg)
{
    const std::vector<std::string> bases = loadImages(cfg);

    // Edited variants are derived once, up front: the measured loop
    // should time the service, not variant synthesis.
    std::vector<std::vector<std::string>> edits(bases.size());
    for (size_t b = 0; b < bases.size(); ++b)
        for (unsigned v = 0; v < cfg.editVariants; ++v)
            edits[b].push_back(editedVariant(bases[b], v));

    std::vector<uint64_t> baseIds(bases.size());
    for (size_t b = 0; b < bases.size(); ++b)
        baseIds[b] = contentId(bases[b]);

    const double wSum = cfg.resubmitWeight + cfg.editWeight +
                        cfg.rewriteWeight + cfg.simulateWeight;
    if (wSum <= 0)
        fatal("loadgen: request mix weights sum to zero");
    const bool open = cfg.mode == LoadConfig::ArrivalMode::Open;
    if (open && cfg.openRate <= 0)
        fatal("loadgen: open-loop mode needs openRate > 0");
    // Per-connection share of the offered rate, as a mean gap in ms.
    const double meanGapMs =
        open ? 1000.0 * double(cfg.connections) / cfg.openRate : 0;

    std::vector<PerConn> per(cfg.connections);
    std::vector<std::thread> threads;
    Clock::time_point t0;

    auto connMain = [&](unsigned ci) {
        obs::setThreadName("loadgen-" + std::to_string(ci));
        PerConn &me = per[ci];
        Client client =
            cfg.unixPath.empty()
                ? Client::dialTcp(cfg.port)
                : Client::dialUnix(cfg.unixPath);
        std::mt19937_64 rng(cfg.seed * 7919 + ci);
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        std::exponential_distribution<double> think(
            cfg.thinkMeanMs > 0 ? 1.0 / cfg.thinkMeanMs : 1.0);
        std::exponential_distribution<double> arrival(
            meanGapMs > 0 ? 1.0 / meanGapMs : 1.0);

        // Warmup seeds every base image so measured resubmits hit.
        for (size_t b = 0; b < bases.size(); ++b)
            client.submit(bases[b]);

        // Open-loop arrival schedule, built lazily off the measured
        // phase's start. Warmup always runs closed-loop: its job is
        // seeding caches, not offering calibrated load.
        Clock::time_point scheduleBase;
        double nextArrivalMs = 0;

        const unsigned total =
            cfg.warmupPerConn + cfg.requestsPerConn;
        for (unsigned i = 0; i < total; ++i) {
            const bool measured = i >= cfg.warmupPerConn;
            if (i == cfg.warmupPerConn) {
                me.measuredStart = Clock::now();
                scheduleBase = me.measuredStart;
                nextArrivalMs = 0;
            }
            const size_t b = rng() % bases.size();
            double roll = uni(rng) * wSum;
            if (cfg.tagRequests) {
                TraceContext tc;
                tc.traceId = rng() | 1;  // never the untagged 0
                if (cfg.traceSampleEvery &&
                    rng() % cfg.traceSampleEvery == 0)
                    tc.flags = TraceContext::kSampled;
                client.setTraceContext(tc);
            }

            Status st = Status::Ok;
            Clock::time_point start;
            if (open && measured) {
                nextArrivalMs +=
                    cfg.dist == LoadConfig::ArrivalDist::Poisson
                        ? arrival(rng)
                        : meanGapMs;
                Clock::time_point scheduled =
                    scheduleBase +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            nextArrivalMs));
                // If the reply stream has fallen behind the
                // schedule this is a no-op and `start` predates the
                // send — exactly the queueing delay an open-loop
                // latency must include.
                std::this_thread::sleep_until(scheduled);
                start = scheduled;
            } else {
                start = Clock::now();
            }
            if (roll < cfg.resubmitWeight) {
                auto r = client.submit(bases[b]);
                st = r.status;
                if (measured && r.ok()) {
                    me.submitPages += r.value.pages;
                    me.submitPageHits += r.value.pageHits;
                }
            } else if (roll < cfg.resubmitWeight + cfg.editWeight) {
                const std::vector<std::string> &ev = edits[b];
                auto r = client.submit(ev[rng() % ev.size()]);
                st = r.status;
                if (measured && r.ok()) {
                    me.submitPages += r.value.pages;
                    me.submitPageHits += r.value.pageHits;
                }
            } else if (roll < cfg.resubmitWeight + cfg.editWeight +
                                  cfg.rewriteWeight) {
                RewriteRequest rr;
                rr.imageId = baseIds[b];
                rr.kind = cfg.rewriteKinds
                              [rng() % cfg.rewriteKinds.size()];
                rr.deadlineMs = cfg.deadlineMs;
                rr.machine = cfg.machine;
                st = client.rewrite(rr).status;
            } else {
                SimulateRequest sr;
                sr.imageId = baseIds[b];
                sr.timing = 1;
                sr.limit = cfg.simulateLimit;
                sr.deadlineMs = cfg.deadlineMs;
                sr.machine = cfg.machine;
                st = client.simulate(sr).status;
            }
            double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();

            if (measured) {
                switch (st) {
                  case Status::Ok:
                    ++me.completed;
                    me.latenciesMs.push_back(ms);
                    break;
                  case Status::DeadlineExceeded:
                    ++me.completed;
                    ++me.deadline;
                    me.latenciesMs.push_back(ms);
                    break;
                  case Status::Busy:
                    ++me.busy;
                    break;
                  default:
                    ++me.errors;
                    break;
                }
            }
            if (!open && cfg.thinkMeanMs > 0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        think(rng)));
            }
        }
        me.end = Clock::now();
    };

    t0 = Clock::now();
    for (unsigned c = 0; c < cfg.connections; ++c)
        threads.emplace_back(connMain, c);
    for (std::thread &t : threads)
        t.join();

    // Measured wall excludes each connection's warmup: first
    // measured-request start to last completion.
    Clock::time_point wallStart = t0;
    Clock::time_point wallEnd = t0;
    bool first = true;
    for (const PerConn &p : per) {
        if (p.measuredStart == Clock::time_point{})
            continue;
        if (first || p.measuredStart < wallStart)
            wallStart = p.measuredStart;
        if (first || p.end > wallEnd)
            wallEnd = p.end;
        first = false;
    }
    double wall =
        std::chrono::duration<double>(wallEnd - wallStart).count();

    LoadStats out;
    std::vector<double> all;
    for (const PerConn &p : per) {
        out.completed += p.completed;
        out.errors += p.errors;
        out.busy += p.busy;
        out.deadlineExceeded += p.deadline;
        out.submitPages += p.submitPages;
        out.submitPageHits += p.submitPageHits;
        all.insert(all.end(), p.latenciesMs.begin(),
                   p.latenciesMs.end());
    }
    std::sort(all.begin(), all.end());
    out.wallSeconds = wall;
    out.requestsPerSecond =
        wall > 0 ? double(out.completed) / wall : 0;
    out.p50Ms = percentile(all, 0.50);
    out.p99Ms = percentile(all, 0.99);
    out.p999Ms = percentile(all, 0.999);
    return out;
}

} // namespace eel::svc
