#include "src/svc/server.hh"

#include <algorithm>
#include <sys/socket.h>

#include "src/eel/batch.hh"
#include "src/machine/model.hh"
#include "src/obs/histogram.hh"
#include "src/obs/http.hh"
#include "src/obs/log.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/sim/timing.hh"
#include "src/support/logging.hh"

namespace eel::svc {

using Clock = std::chrono::steady_clock;
using TL = obs::RequestTimeline;

namespace {

obs::Metric &
mRequests()
{
    static obs::Metric m("svc.requests", obs::MetricKind::Counter);
    return m;
}

obs::Metric &
mRewriteCacheHits()
{
    static obs::Metric m("svc.rewrite_cache_hits",
                         obs::MetricKind::Counter);
    return m;
}

obs::Metric &
mQueueDepth()
{
    static obs::Metric m("svc.queue_depth",
                         obs::MetricKind::MaxGauge);
    return m;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::SubmitXef: return "submit_xef";
      case Op::Rewrite: return "rewrite";
      case Op::Simulate: return "simulate";
      case Op::Stats: return "stats";
    }
    return "?";
}

/** Whole-request latency, one histogram per op (ticks = us). */
obs::Histogram &
opHistogram(uint8_t code)
{
    static obs::Histogram submit("svc.op.submit_xef");
    static obs::Histogram rewrite("svc.op.rewrite");
    static obs::Histogram simulate("svc.op.simulate");
    static obs::Histogram stats("svc.op.stats");
    switch (static_cast<Op>(code)) {
      case Op::SubmitXef: return submit;
      case Op::Rewrite: return rewrite;
      case Op::Simulate: return simulate;
      case Op::Stats: break;
    }
    return stats;
}

/** Per-phase duration across all ops (ticks = us). */
obs::Histogram &
phaseHistogram(TL::Phase p)
{
    static obs::Histogram queue("svc.phase.queue");
    static obs::Histogram decode("svc.phase.decode");
    static obs::Histogram rewrite("svc.phase.rewrite");
    static obs::Histogram sim("svc.phase.sim");
    static obs::Histogram rescache("svc.phase.rescache");
    static obs::Histogram replyWrite("svc.phase.reply");
    switch (p) {
      case TL::Queue: return queue;
      case TL::Decode: return decode;
      case TL::Rewrite: return rewrite;
      case TL::Sim: return sim;
      case TL::CacheLookup: return rescache;
      case TL::Reply: break;
      case TL::kPhases: break;
    }
    return replyWrite;
}

} // namespace

struct Server::ConnState
{
    Conn conn;
    explicit ConnState(Conn c) : conn(std::move(c)) {}
};

struct Server::Job
{
    std::shared_ptr<ConnState> cs;
    Frame frame;
    Clock::time_point deadline;
    obs::RequestTimeline tl;
};

Server::Server(ServerConfig cfg)
    : cfg(cfg),
      _rescache(sim::ResultCache::Config{cfg.resultCacheDir,
                                         &_store}),
      _pool(cfg.threads)
{
    _store.setGcWatermark(cfg.storeGcWatermark);
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (cfg.unixPath.empty())
        listener.listenTcp(cfg.tcpPort);
    else
        listener.listenUnix(cfg.unixPath);
    started = true;
    acceptor = std::thread([this] {
        obs::setThreadName("svc-accept");
        acceptLoop();
    });
    dispatcher = std::thread([this] {
        obs::setThreadName("svc-dispatch");
        // One loop per pool thread of execution: every compute
        // thread drains the queue until drain/stop empties it.
        _pool.parallelFor(_pool.size(), [this](size_t) {
            workerLoop();
        });
    });
    if (cfg.httpEnabled) {
        httpListener.listenTcp(cfg.httpPort);
        httpAcceptor = std::thread([this] {
            obs::setThreadName("svc-http");
            httpLoop();
        });
        obs::logf(obs::LogLevel::Info, "svc: http port=%u",
                  unsigned(httpListener.port()));
    }
    if (cfg.unixPath.empty())
        obs::logf(obs::LogLevel::Info,
                  "svc: listening port=%u threads=%u queue=%zu",
                  unsigned(port()), _pool.size(),
                  cfg.queueCapacity);
    else
        obs::logf(obs::LogLevel::Info,
                  "svc: listening unix=%s threads=%u queue=%zu",
                  cfg.unixPath.c_str(), _pool.size(),
                  cfg.queueCapacity);
}

void
Server::beginDrain()
{
    if (!draining.exchange(true)) {
        obs::logf(obs::LogLevel::Info, "svc: draining");
        listener.wake();
        qcv.notify_all();
    }
}

void
Server::stop()
{
    if (!started || stopped)
        return;
    beginDrain();
    // The dispatcher returns once every worker loop has seen
    // "draining and queue empty" — i.e. all admitted work is done
    // and answered.
    if (dispatcher.joinable())
        dispatcher.join();
    stopping.store(true);
    httpListener.wake();
    if (httpAcceptor.joinable())
        httpAcceptor.join();
    {
        // Shut the sockets down (not close — readers own the fds)
        // so readers blocked in recv() wake with EOF.
        std::lock_guard<std::mutex> lock(connMu);
        for (auto &w : conns)
            if (auto cs = w.lock())
                if (cs->conn.ok())
                    ::shutdown(cs->conn.fd(), SHUT_RDWR);
    }
    for (std::thread &t : readers)
        if (t.joinable())
            t.join();
    if (acceptor.joinable())
        acceptor.join();
    stopped = true;
    obs::logf(obs::LogLevel::Info, "svc: stopped");
}

void
Server::acceptLoop()
{
    for (;;) {
        Conn c = listener.accept();
        if (!c.ok() || draining.load())
            return;
        auto cs = std::make_shared<ConnState>(std::move(c));
        std::lock_guard<std::mutex> lock(connMu);
        {
            std::lock_guard<std::mutex> clock(ctrMu);
            ++ctr.accepted;
        }
        // Prune registry slots of connections that fully wound down.
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const std::weak_ptr<ConnState>
                                          &w) {
                                       return w.expired();
                                   }),
                    conns.end());
        conns.push_back(cs);
        readers.emplace_back([this, cs] {
            obs::setThreadName("svc-conn");
            readerLoop(cs);
        });
    }
}

void
Server::reply(ConnState &cs, uint32_t seq, Status st,
              std::string body)
{
    Frame f;
    f.seq = seq;
    f.code = static_cast<uint8_t>(st);
    f.body = std::move(body);
    try {
        cs.conn.writeFrame(f);
    } catch (const FatalError &e) {
        // Peer went away; the reader will notice on its next read.
        obs::logf(obs::LogLevel::Debug, "svc: reply dropped: %s",
                  e.what());
    }
}

void
Server::readerLoop(std::shared_ptr<ConnState> cs)
{
    for (;;) {
        Frame f;
        try {
            if (!cs->conn.readFrame(f, cfg.maxFrameBytes))
                break;  // clean EOF
        } catch (const FatalError &e) {
            // Malformed framing: we may not even know the seq, so
            // answer seq 0 and hang up — the stream is unsynchronized.
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.badFrames;
            }
            obs::logf(obs::LogLevel::Warn, "svc: bad frame: %s",
                      e.what());
            reply(*cs, 0, Status::BadFrame, e.what());
            break;
        }

        obs::RequestTimeline tl;
        tl.tsAccept = obs::nowNs();
        if (f.code & kTraceContextFlag) {
            // Trace-context extension: strip the 9-byte prefix only
            // when the masked code is a real op; any other flagged
            // code falls through to the unknown-op reply unchanged,
            // so pre-extension garbage keeps its old answer.
            uint8_t op = f.code & uint8_t(~kTraceContextFlag);
            if (op >= uint8_t(Op::SubmitXef) &&
                op <= uint8_t(Op::Stats)) {
                try {
                    TraceContext tc =
                        TraceContext::stripPrefix(f.body);
                    tl.traceId = tc.traceId;
                    tl.sampled = tc.sampled();
                    f.code = op;
                } catch (const FatalError &e) {
                    // Framing was fine, the prefix wasn't: answer on
                    // this seq and keep the connection.
                    {
                        std::lock_guard<std::mutex> lock(ctrMu);
                        ++ctr.badFrames;
                    }
                    reply(*cs, f.seq, Status::BadFrame, e.what());
                    continue;
                }
            }
        }

        if (f.code < uint8_t(Op::SubmitXef) ||
            f.code > uint8_t(Op::Stats)) {
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.badFrames;
            reply(*cs, f.seq, Status::BadRequest,
                  strfmt("unknown op %u", unsigned(f.code)));
            continue;
        }
        tl.seq = f.seq;
        tl.op = opName(static_cast<Op>(f.code));
        if (draining.load()) {
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.drainRejected;
            reply(*cs, f.seq, Status::Draining,
                  "server is draining");
            continue;
        }

        // Pull the deadline out of the body without a full decode:
        // it binds from arrival, so queueing delay counts against it.
        uint32_t wantMs = 0;
        try {
            if (f.code == uint8_t(Op::Rewrite))
                wantMs = RewriteRequest::decode(f.body).deadlineMs;
            else if (f.code == uint8_t(Op::Simulate))
                wantMs = SimulateRequest::decode(f.body).deadlineMs;
        } catch (const FatalError &) {
            // Let the worker produce the BadFrame reply.
        }
        if (wantMs == 0)
            wantMs = cfg.defaultDeadlineMs;
        wantMs = std::min(wantMs, cfg.maxDeadlineMs);

        Job job;
        job.cs = cs;
        job.frame = std::move(f);
        job.deadline =
            Clock::now() + std::chrono::milliseconds(wantMs);
        job.tl = std::move(tl);
        job.tl.begin(TL::Queue);
        {
            std::lock_guard<std::mutex> lock(qmu);
            if (queue.size() >= cfg.queueCapacity) {
                std::lock_guard<std::mutex> clock(ctrMu);
                ++ctr.busyRejected;
                reply(*cs, job.frame.seq, Status::Busy,
                      "admission queue full");
                continue;
            }
            queue.push_back(std::move(job));
            mQueueDepth().observe(queue.size());
        }
        {
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.requests;
        }
        mRequests().add(1);
        qcv.notify_one();
    }
    // Do not close here: queued jobs from this connection may still
    // hold the ConnState and write their replies. The fd closes with
    // the last strong reference.
}

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(qmu);
            qcv.wait(lock, [this] {
                return !queue.empty() || draining.load();
            });
            if (queue.empty()) {
                if (draining.load())
                    return;
                continue;
            }
            job = std::move(queue.front());
            queue.pop_front();
        }
        try {
            process(job);
        } catch (const std::exception &e) {
            // Never let a request abort the pool batch.
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.errors;
            }
            obs::logf(obs::LogLevel::Error,
                      "svc: request failed: %s", e.what());
            replyTimed(job, Status::ServerError, e.what());
        }
    }
}

void
Server::process(Job &job)
{
    job.tl.end(TL::Queue);
    const Frame &f = job.frame;

    if (Clock::now() >= job.deadline &&
        f.code != uint8_t(Op::Stats)) {
        {
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.deadlineExpired;
        }
        // SIMULATE's DeadlineExceeded body is always a SimulateReply
        // (here: zero progress), so clients decode it uniformly.
        replyTimed(
            job, Status::DeadlineExceeded,
            f.code == uint8_t(Op::Simulate)
                ? SimulateReply{}.encode()
                : std::string("deadline expired before execution"));
        return;
    }

    Status st = Status::Ok;
    std::string body;
    try {
        switch (static_cast<Op>(f.code)) {
          case Op::SubmitXef:
            body = handleSubmit(f, job.tl);
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.submits;
            }
            break;
          case Op::Rewrite:
            body = handleRewrite(f, st, job.tl);
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.rewrites;
            }
            break;
          case Op::Simulate:
            body = handleSimulate(f, job.deadline, st, job.tl);
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.simulates;
            }
            break;
          case Op::Stats:
            body = statsJson();
            {
                std::lock_guard<std::mutex> lock(ctrMu);
                ++ctr.statsCalls;
            }
            break;
        }
    } catch (const FatalError &e) {
        // Body decode failures and bad arguments land here; the
        // message tells the client what was wrong.
        std::string what = e.what();
        bool frameShaped = what.find("wire:") != std::string::npos;
        bool imageShaped = what.find("xef") != std::string::npos ||
                           what.find("payload") != std::string::npos;
        st = frameShaped ? Status::BadFrame
             : imageShaped ? Status::BadImage
                           : Status::BadRequest;
        body = std::move(what);
        std::lock_guard<std::mutex> lock(ctrMu);
        ++ctr.badFrames;
    }
    if (st == Status::DeadlineExceeded) {
        std::lock_guard<std::mutex> lock(ctrMu);
        ++ctr.deadlineExpired;
    }
    replyTimed(job, st, std::move(body));
}

void
Server::replyTimed(Job &job, Status st, std::string body)
{
    job.tl.status = statusName(st);
    job.tl.begin(TL::Reply);
    reply(*job.cs, job.frame.seq, st, std::move(body));
    job.tl.end(TL::Reply);
    job.tl.tsDone = obs::nowNs();
    finishTimeline(job.tl, job.frame.code);
}

void
Server::finishTimeline(obs::RequestTimeline &tl, uint8_t opCode)
{
    opHistogram(opCode).record(tl.totalNs() / 1000);
    for (unsigned p = 0; p < TL::kPhases; ++p)
        if (tl.phase[p].set())
            phaseHistogram(static_cast<TL::Phase>(p))
                .record(tl.phase[p].ns() / 1000);
    tl.emitTrace();
    if (tl.totalNs() / 1000000 >=
        static_cast<uint64_t>(cfg.slowRequestMs)) {
        {
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.slowRequests;
        }
        std::lock_guard<std::mutex> lock(slowMu);
        slowRing.push_back(tl.json());
        while (slowRing.size() > cfg.slowRingSize)
            slowRing.pop_front();
    }
}

std::string
Server::handleSubmit(const Frame &req, obs::RequestTimeline &tl)
{
    // loadBytes throws FatalError mentioning "payload" on malformed
    // containers — mapped to BadImage by the caller.
    tl.begin(TL::Decode);
    exe::Executable x = exe::Executable::loadBytes(req.body);
    exe::SectionStore::InternCounts ic = _store.internCounted(x);
    tl.end(TL::Decode);

    SubmitReply r;
    r.imageId = contentId(req.body);
    r.pages = static_cast<uint32_t>(ic.pages);
    r.pageHits = static_cast<uint32_t>(ic.hits);

    auto image =
        std::make_shared<const exe::Executable>(std::move(x));
    std::lock_guard<std::mutex> lock(regMu);
    auto it = images.find(r.imageId);
    if (it != images.end()) {
        imageLru.erase(it->second.lru);
        imageLru.push_front(r.imageId);
        it->second.lru = imageLru.begin();
        it->second.image = std::move(image);
    } else {
        imageLru.push_front(r.imageId);
        images.emplace(r.imageId,
                       ImageEntry{std::move(image),
                                  imageLru.begin()});
        if (images.size() > cfg.maxImages) {
            images.erase(imageLru.back());
            imageLru.pop_back();
        }
    }
    return r.encode();
}

std::shared_ptr<const exe::Executable>
Server::findImage(uint64_t id)
{
    std::lock_guard<std::mutex> lock(regMu);
    auto it = images.find(id);
    if (it == images.end())
        return nullptr;
    imageLru.erase(it->second.lru);
    imageLru.push_front(id);
    it->second.lru = imageLru.begin();
    return it->second.image;
}

std::string
Server::handleRewrite(const Frame &req, Status &st,
                      obs::RequestTimeline &tl)
{
    RewriteRequest r = RewriteRequest::decode(req.body);
    auto image = findImage(r.imageId);
    if (!image) {
        st = Status::BadImage;
        return strfmt("unknown image id %llx",
                      static_cast<unsigned long long>(r.imageId));
    }
    if (r.kind > uint8_t(edit::VariantKind::Superblock))
        fatal("unknown rewrite kind %u", unsigned(r.kind));
    std::string machineName =
        r.machine.empty() ? cfg.defaultMachine : r.machine;
    // Throws FatalError ("unknown builtin machine") -> BadRequest.
    const machine::MachineModel &model =
        machine::MachineModel::builtin(machineName);

    std::string key;
    putU64(key, r.imageId);
    putU8(key, r.kind);
    key += machineName;
    tl.begin(TL::CacheLookup);
    {
        std::lock_guard<std::mutex> lock(regMu);
        auto it = rewrites.find(key);
        if (it != rewrites.end()) {
            rewriteLru.erase(it->second.lru);
            rewriteLru.push_front(key);
            it->second.lru = rewriteLru.begin();
            {
                std::lock_guard<std::mutex> clock(ctrMu);
                ++ctr.rewriteCacheHits;
            }
            mRewriteCacheHits().add(1);
            RewriteReply rep;
            rep.cached = 1;
            rep.xef = *it->second.xef;
            tl.end(TL::CacheLookup);
            return rep.encode();
        }
    }
    tl.end(TL::CacheLookup);

    tl.begin(TL::Rewrite);
    edit::BatchOptions opts;
    opts.model = &model;
    opts.pool = &_pool;  // reentrant: runs inline on this worker
    opts.store = &_store;
    edit::BatchRewriter rewriter(*image, opts);
    edit::BatchResult res = rewriter.rewriteAll(
        {static_cast<edit::VariantKind>(r.kind)});
    tl.end(TL::Rewrite);

    RewriteReply rep;
    rep.cached = 0;
    rep.xef = res.variants.at(0).image.saveBytes();

    auto cached = std::make_shared<const std::string>(rep.xef);
    std::lock_guard<std::mutex> lock(regMu);
    if (rewrites.find(key) == rewrites.end()) {
        rewriteLru.push_front(key);
        rewrites.emplace(key, RewriteEntry{std::move(cached),
                                           rewriteLru.begin()});
        if (rewrites.size() > cfg.maxRewriteCache) {
            rewrites.erase(rewriteLru.back());
            rewriteLru.pop_back();
        }
    }
    return rep.encode();
}

std::string
Server::handleSimulate(const Frame &req,
                       Clock::time_point deadline, Status &st,
                       obs::RequestTimeline &tl)
{
    SimulateRequest r = SimulateRequest::decode(req.body);
    auto image = findImage(r.imageId);
    if (!image) {
        st = Status::BadImage;
        return strfmt("unknown image id %llx",
                      static_cast<unsigned long long>(r.imageId));
    }
    std::string machineName =
        r.machine.empty() ? cfg.defaultMachine : r.machine;
    const machine::MachineModel &model =
        machine::MachineModel::builtin(machineName);

    sim::RunBudget budget;
    budget.cancel = [deadline] {
        return Clock::now() >= deadline;
    };
    budget.sliceInstructions = cfg.sliceInstructions;
    budget.decodeStore = &_store;

    sim::Emulator::Config ecfg;
    if (r.limit)
        ecfg.maxInstructions = r.limit;

    SimulateReply rep;
    if (r.timing) {
        // Content-addressed: the key covers the image's text pages,
        // the machine fingerprint, and ecfg (so different limits
        // never collide). A hit is a finished run by construction —
        // cancelled runs are never stored — so it can't owe a
        // DeadlineExceeded.
        tl.begin(TL::CacheLookup);
        sim::ResultCache::Key key =
            _rescache.timedKey(*image, model, {}, ecfg);
        sim::ResultCache::TimedValue tv;
        bool hit = _rescache.lookupTimed(key, tv);
        tl.end(TL::CacheLookup);
        if (hit) {
            rep.instructions = tv.instructions;
            rep.cycles = tv.cycles;
            rep.exitCode = static_cast<uint32_t>(tv.exitCode);
            rep.exited = tv.exited;
            std::lock_guard<std::mutex> lock(ctrMu);
            ++ctr.simCacheHits;
        } else {
            tl.begin(TL::Sim);
            sim::TimedRun run =
                sim::timedRun(*image, model, budget, {}, ecfg);
            tl.end(TL::Sim);
            rep.instructions = run.result.instructions;
            rep.cycles = run.cycles;
            rep.exitCode =
                static_cast<uint32_t>(run.result.exitCode);
            rep.exited = run.result.exited;
            if (run.cancelled) {
                // Partial progress is deadline-dependent, not
                // content-dependent: caching it would replay one
                // client's timeout to everyone else.
                st = Status::DeadlineExceeded;
            } else {
                tv.instructions = run.result.instructions;
                tv.cycles = run.cycles;
                tv.exitCode = run.result.exitCode;
                tv.exited = run.result.exited;
                tv.output = run.result.output;
                _rescache.storeTimed(key, tv);
            }
        }
    } else {
        // Functional-only: same slicing, no pipeline model.
        tl.begin(TL::Sim);
        sim::Emulator emu(*image, ecfg,
                          sim::Emulator::decodeText(*image, _store));
        sim::NullSink sink;
        const uint64_t cap = ecfg.maxInstructions;
        while (!emu.finished() && emu.retired() < cap) {
            uint64_t step = std::min(budget.sliceInstructions,
                                     cap - emu.retired());
            sim::RunResult rr = emu.run(sink, step);
            rep.instructions += rr.instructions;
            if (emu.finished()) {
                rep.exited = true;
                rep.exitCode = static_cast<uint32_t>(rr.exitCode);
                break;
            }
            if (budget.cancel()) {
                st = Status::DeadlineExceeded;
                break;
            }
        }
        tl.end(TL::Sim);
    }
    return rep.encode();
}

Server::Counters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(ctrMu);
    return ctr;
}

std::string
Server::latencyJson()
{
    std::vector<obs::HistogramSnapshot> life =
        obs::histogramsSnapshot();
    std::vector<obs::HistogramSnapshot> win =
        obs::histogramsWindow(60);
    std::string out = "{";
    for (size_t i = 0; i < life.size(); ++i) {
        const obs::HistogramSnapshot &h = life[i];
        const obs::HistogramSnapshot *w =
            i < win.size() && win[i].name == h.name ? &win[i]
                                                    : nullptr;
        if (i)
            out += ',';
        out += strfmt(
            "\"%s\":{\"unit\":\"%s\",\"count\":%llu,"
            "\"p50_us\":%llu,\"p99_us\":%llu,"
            "\"window60s\":{\"count\":%llu,\"p50_us\":%llu,"
            "\"p99_us\":%llu}}",
            h.name.c_str(), h.unit.c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.percentile(0.50)),
            static_cast<unsigned long long>(h.percentile(0.99)),
            static_cast<unsigned long long>(w ? w->count : 0),
            static_cast<unsigned long long>(
                w ? w->percentile(0.50) : 0),
            static_cast<unsigned long long>(
                w ? w->percentile(0.99) : 0));
    }
    out += '}';
    return out;
}

std::string
Server::slowRequestsJson()
{
    std::string out =
        strfmt("{\"threshold_ms\":%u,\"requests\":[",
               unsigned(cfg.slowRequestMs));
    {
        std::lock_guard<std::mutex> lock(slowMu);
        for (size_t i = 0; i < slowRing.size(); ++i) {
            if (i)
                out += ',';
            out += slowRing[i];
        }
    }
    out += "]}";
    return out;
}

std::string
Server::statsJson()
{
    Counters c = counters();
    exe::SectionStore::Stats ss = _store.stats();
    sim::ResultCache::Stats rc = _rescache.stats();
    size_t nImages, nRewrites;
    {
        std::lock_guard<std::mutex> lock(regMu);
        nImages = images.size();
        nRewrites = rewrites.size();
    }
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(qmu);
        depth = queue.size();
    }
    std::string js = strfmt(
        "{\"accepted\":%llu,\"requests\":%llu,\"submits\":%llu,"
        "\"rewrites\":%llu,\"simulates\":%llu,\"stats\":%llu,"
        "\"bad_frames\":%llu,\"busy_rejected\":%llu,"
        "\"drain_rejected\":%llu,\"deadline_expired\":%llu,"
        "\"rewrite_cache_hits\":%llu,\"sim_cache_hits\":%llu,"
        "\"errors\":%llu,"
        "\"queue_depth\":%zu,\"images\":%zu,\"rewrite_cache\":%zu,"
        "\"store\":{\"intern_calls\":%zu,\"intern_hits\":%zu,"
        "\"live_chunks\":%zu,\"live_bytes\":%zu,"
        "\"table_entries\":%zu,\"view_entries\":%zu,"
        "\"gc_runs\":%zu,\"gc_reclaimed_pages\":%zu},"
        "\"rescache\":{\"lookups\":%llu,\"hits\":%llu,"
        "\"disk_hits\":%llu,\"misses\":%llu,"
        "\"invalidations\":%llu,\"stores\":%llu,"
        "\"disk_loaded\":%llu,\"disk_rejects\":%llu}}",
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.submits),
        static_cast<unsigned long long>(c.rewrites),
        static_cast<unsigned long long>(c.simulates),
        static_cast<unsigned long long>(c.statsCalls),
        static_cast<unsigned long long>(c.badFrames),
        static_cast<unsigned long long>(c.busyRejected),
        static_cast<unsigned long long>(c.drainRejected),
        static_cast<unsigned long long>(c.deadlineExpired),
        static_cast<unsigned long long>(c.rewriteCacheHits),
        static_cast<unsigned long long>(c.simCacheHits),
        static_cast<unsigned long long>(c.errors), depth, nImages,
        nRewrites, ss.internCalls, ss.internHits, ss.liveChunks,
        ss.liveBytes, ss.tableEntries, ss.viewEntries, ss.gcRuns,
        ss.gcReclaimedPages,
        static_cast<unsigned long long>(rc.lookups),
        static_cast<unsigned long long>(rc.hits),
        static_cast<unsigned long long>(rc.diskHits),
        static_cast<unsigned long long>(rc.misses),
        static_cast<unsigned long long>(rc.invalidations),
        static_cast<unsigned long long>(rc.stores),
        static_cast<unsigned long long>(rc.diskEntriesLoaded),
        static_cast<unsigned long long>(rc.diskRejects));
    // Splice the telemetry block in before the closing brace so the
    // strfmt above stays readable.
    js.pop_back();
    js += strfmt(",\"http_requests\":%llu,\"slow_requests\":%llu,"
                 "\"latency\":",
                 static_cast<unsigned long long>(c.httpRequests),
                 static_cast<unsigned long long>(c.slowRequests));
    js += latencyJson();
    js += '}';
    return js;
}

// --- HTTP telemetry gateway ----------------------------------------

void
Server::httpLoop()
{
    for (;;) {
        Conn c = httpListener.accept();
        if (!c.ok() || stopping.load())
            return;
        // Serve inline: scrapes are rare and tiny, so one at a time
        // keeps the thread count flat, and the receive timeout below
        // bounds how long a stalled peer can hold the gateway.
        serveHttp(std::move(c));
    }
}

void
Server::serveHttp(Conn c)
{
    struct timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(c.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    auto send = [&c](const std::string &resp) {
        try {
            c.writeRaw(resp);
        } catch (const FatalError &) {
            // Peer hung up first; nothing to do.
        }
    };

    std::string buf;
    obs::http::Request req;
    size_t consumed = 0;
    for (;;) {
        obs::http::ParseResult pr =
            obs::http::parseRequest(buf, req, consumed);
        if (pr == obs::http::ParseResult::Ok)
            break;
        if (pr == obs::http::ParseResult::Bad) {
            send(obs::http::response(400, "text/plain",
                                     "bad request\n"));
            return;
        }
        if (pr == obs::http::ParseResult::TooLarge) {
            send(obs::http::response(431, "text/plain",
                                     "header block too large\n"));
            return;
        }
        char tmp[4096];
        ssize_t n = ::recv(c.fd(), tmp, sizeof tmp, 0);
        if (n <= 0)
            return;  // EOF or timeout mid-request: nothing to answer
        buf.append(tmp, static_cast<size_t>(n));
    }
    {
        std::lock_guard<std::mutex> lock(ctrMu);
        ++ctr.httpRequests;
    }
    if (req.method != "GET") {
        send(obs::http::response(405, "text/plain",
                                 "method not allowed\n"));
        return;
    }
    std::string target = req.target.substr(0, req.target.find('?'));
    if (target == "/metrics")
        send(obs::http::response(
            200, "text/plain; version=0.0.4",
            obs::http::prometheusText(httpMetricsExtra())));
    else if (target == "/stats")
        send(obs::http::response(200, "application/json",
                                 statsJson()));
    else if (target == "/requests/slow")
        send(obs::http::response(200, "application/json",
                                 slowRequestsJson()));
    else
        send(obs::http::response(404, "text/plain", "not found\n"));
}

std::string
Server::httpMetricsExtra()
{
    Counters c = counters();
    std::string out;
    auto line = [&out](const char *name, uint64_t v) {
        out += strfmt("# TYPE %s counter\n%s %llu\n", name, name,
                      static_cast<unsigned long long>(v));
    };
    line("eel_svc_accepted_total", c.accepted);
    line("eel_svc_requests_total", c.requests);
    line("eel_svc_submits_total", c.submits);
    line("eel_svc_rewrites_total", c.rewrites);
    line("eel_svc_simulates_total", c.simulates);
    line("eel_svc_bad_frames_total", c.badFrames);
    line("eel_svc_busy_rejected_total", c.busyRejected);
    line("eel_svc_deadline_expired_total", c.deadlineExpired);
    line("eel_svc_rewrite_cache_hits_total", c.rewriteCacheHits);
    line("eel_svc_sim_cache_hits_total", c.simCacheHits);
    line("eel_svc_errors_total", c.errors);
    line("eel_svc_http_requests_total", c.httpRequests);
    line("eel_svc_slow_requests_total", c.slowRequests);
    return out;
}

} // namespace eel::svc
