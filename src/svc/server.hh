/**
 * @file
 * The rewriting service: a persistent daemon that keeps one
 * process-wide exe::SectionStore hot across requests.
 *
 * Threading model
 *
 *     acceptor ──> reader (one per connection)
 *                     │  bounded admission queue (Busy when full)
 *                     v
 *     dispatcher ──> pool.parallelFor(N, workerLoop)
 *
 * The acceptor and per-connection readers are plain threads (they
 * block on sockets); compute runs on the existing support::ThreadPool.
 * The dispatcher thread submits one parallelFor batch of N worker
 * loops, so all N pool threads of execution drain the queue
 * concurrently, and a BatchRewriter invoked by a worker reenters the
 * same pool inline (parallelFor is reentrant) rather than
 * deadlocking on it.
 *
 * Requests carry a deadline. It is checked when a job is dequeued
 * (queueing delay counts against the budget) and, for SIMULATE, at
 * every simulation slice boundary via sim::RunBudget — so an
 * over-budget run is cancelled within one slice and answered with
 * DeadlineExceeded plus the partial progress, instead of holding a
 * worker hostage.
 *
 * Shared state: one SectionStore interns every submitted image and
 * every rewrite output, so resubmits and common pages across clients
 * collapse to the same chunks; an LRU image registry bounds how many
 * decoded images are held; an LRU rewrite cache replays
 * byte-identical results for repeated (image, kind, machine) asks.
 *
 * Drain: beginDrain() stops accepting connections, answers new
 * requests with Draining, lets queued and in-flight work finish, and
 * leaves replies flowing; stop() then tears the threads down. The
 * daemon binary wires SIGTERM to exactly this pair.
 */

#ifndef EEL_SVC_SERVER_HH
#define EEL_SVC_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/exe/executable.hh"
#include "src/exe/section_store.hh"
#include "src/obs/timeline.hh"
#include "src/sim/resultcache.hh"
#include "src/support/thread_pool.hh"
#include "src/svc/net.hh"
#include "src/svc/wire.hh"

namespace eel::svc {

struct ServerConfig
{
    /** TCP port to listen on (0 = ephemeral, see Server::port()).
     *  Ignored when unixPath is set. */
    uint16_t tcpPort = 0;
    /** When non-empty, listen on this unix socket instead of TCP. */
    std::string unixPath;

    /** Pool threads of execution (0 = one per hardware thread). */
    unsigned threads = 0;
    /** Admission queue depth; a frame arriving past it is answered
     *  Busy immediately instead of growing latency unboundedly. */
    size_t queueCapacity = 64;
    /** Decoded images kept in the LRU registry. */
    size_t maxImages = 256;
    /** (image, kind, machine) rewrite results kept. */
    size_t maxRewriteCache = 256;
    uint32_t maxFrameBytes = kMaxFrameBytes;

    /** Deadline applied when a request carries none. */
    uint32_t defaultDeadlineMs = 10000;
    /** Ceiling clamped onto any requested deadline. */
    uint32_t maxDeadlineMs = 60000;
    /** Instructions between SIMULATE cancellation checks. */
    uint64_t sliceInstructions = 64 * 1024;
    /** Store index GC watermark (0 = manual GC only). */
    size_t storeGcWatermark = 1 << 16;

    std::string defaultMachine = "ultrasparc";

    /** Disk tier for the timing-result cache: "" keeps the cache
     *  in-memory only; a directory persists SIMULATE results across
     *  daemon restarts (sim::ResultCache's versioned, checksummed
     *  format — stale or corrupt files are re-derived, not trusted). */
    std::string resultCacheDir;

    /** Telemetry HTTP gateway: when enabled, a second listener
     *  serves GET /metrics (Prometheus text), /stats (the STATS
     *  JSON) and /requests/slow (the flight recorder). */
    bool httpEnabled = false;
    uint16_t httpPort = 0;  ///< 0 = ephemeral, see Server::httpPort()

    /** Requests whose total latency reaches this land their timeline
     *  in the slow-request ring served at /requests/slow. */
    uint32_t slowRequestMs = 50;
    size_t slowRingSize = 64;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();  ///< calls stop()

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, then launch acceptor + dispatcher. */
    void start();

    /** Bound TCP port (valid after start(); 0 for unix sockets). */
    uint16_t port() const { return listener.port(); }

    /** Bound port of the HTTP telemetry gateway (0 unless
     *  cfg.httpEnabled and start() has run). */
    uint16_t httpPort() const { return httpListener.port(); }

    /** Stop accepting; new requests get Draining; queued and
     *  in-flight work completes and is answered. Idempotent. */
    void beginDrain();

    /** beginDrain(), wait for the queue to empty, then close
     *  connections and join every thread. Idempotent. */
    void stop();

    /** The process-wide content-addressed store (shared with tests
     *  and the in-process load harness). */
    exe::SectionStore &store() { return _store; }
    support::ThreadPool &pool() { return _pool; }
    /** The timing-result cache behind SIMULATE (tests, harnesses). */
    sim::ResultCache &rescache() { return _rescache; }

    struct Counters
    {
        uint64_t accepted = 0;       ///< connections
        uint64_t requests = 0;       ///< frames admitted to the queue
        uint64_t submits = 0;
        uint64_t rewrites = 0;
        uint64_t simulates = 0;
        uint64_t statsCalls = 0;
        uint64_t badFrames = 0;
        uint64_t busyRejected = 0;
        uint64_t drainRejected = 0;
        uint64_t deadlineExpired = 0;
        uint64_t rewriteCacheHits = 0;
        /** Timed SIMULATE requests answered from the result cache
         *  (content-addressed: resubmitting an edited image misses,
         *  resubmitting identical bytes hits across connections). */
        uint64_t simCacheHits = 0;
        uint64_t errors = 0;         ///< ServerError replies
        uint64_t httpRequests = 0;   ///< gateway requests parsed
        uint64_t slowRequests = 0;   ///< timelines past slowRequestMs
    };
    Counters counters() const;

    /** The STATS reply body (also handy for tests). Includes the
     *  "latency" block: lifetime and last-minute p50/p99 of every
     *  registered histogram. */
    std::string statsJson();

    /** The /requests/slow body: ring of slow-request timelines. */
    std::string slowRequestsJson();

  private:
    struct ConnState;
    struct Job;

    void acceptLoop();
    void readerLoop(std::shared_ptr<ConnState> cs);
    void workerLoop();
    void process(Job &job);

    void reply(ConnState &cs, uint32_t seq, Status st,
               std::string body);
    /** reply() plus timeline bookkeeping: stamps the Reply phase and
     *  tsDone, records histograms, emits spans, feeds the slow ring. */
    void replyTimed(Job &job, Status st, std::string body);
    void finishTimeline(obs::RequestTimeline &tl, uint8_t opCode);

    void httpLoop();
    void serveHttp(Conn c);
    std::string httpMetricsExtra();
    std::string latencyJson();

    std::string handleSubmit(const Frame &req,
                             obs::RequestTimeline &tl);
    std::string handleRewrite(const Frame &req, Status &st,
                              obs::RequestTimeline &tl);
    std::string handleSimulate(const Frame &req,
                               std::chrono::steady_clock::time_point
                                   deadline,
                               Status &st, obs::RequestTimeline &tl);

    std::shared_ptr<const exe::Executable> findImage(uint64_t id);

    ServerConfig cfg;
    exe::SectionStore _store;
    /** Cross-request SIMULATE result cache. Declared after _store:
     *  it memoizes page hashes through it. */
    sim::ResultCache _rescache;
    support::ThreadPool _pool;
    Listener listener;
    Listener httpListener;

    std::thread acceptor;
    std::thread dispatcher;
    std::thread httpAcceptor;
    /** Weak registry: the reader thread and any queued jobs hold the
     *  strong refs, so a connection's fd closes exactly when the
     *  last reply that could use it is done — never while a worker
     *  might write to a recycled descriptor. */
    std::mutex connMu;
    std::vector<std::weak_ptr<ConnState>> conns;
    std::vector<std::thread> readers;

    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<Job> queue;

    std::atomic<bool> draining{false};
    std::atomic<bool> stopping{false};
    bool started = false;
    bool stopped = false;

    // Image registry + rewrite cache, both LRU, both under regMu.
    struct ImageEntry
    {
        std::shared_ptr<const exe::Executable> image;
        std::list<uint64_t>::iterator lru;
    };
    struct RewriteEntry
    {
        std::shared_ptr<const std::string> xef;
        std::list<std::string>::iterator lru;
    };
    std::mutex regMu;
    std::unordered_map<uint64_t, ImageEntry> images;
    std::list<uint64_t> imageLru;  ///< front = most recent
    std::unordered_map<std::string, RewriteEntry> rewrites;
    std::list<std::string> rewriteLru;

    mutable std::mutex ctrMu;
    Counters ctr;

    /** Flight recorder: JSON timelines of the slowest requests,
     *  bounded at cfg.slowRingSize (oldest evicted first). */
    std::mutex slowMu;
    std::deque<std::string> slowRing;
};

} // namespace eel::svc

#endif // EEL_SVC_SERVER_HH
