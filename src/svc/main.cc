/**
 * @file
 * eelsvcd — the rewriting service daemon.
 *
 * Runs a svc::Server in the foreground, prints the bound endpoint on
 * stdout (so a parent that started us on an ephemeral port can find
 * it), and drains gracefully on SIGTERM/SIGINT: the signal handler
 * writes to a self-pipe, the main thread wakes, stops accepting,
 * finishes in-flight requests, answers them, and exits 0.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "src/obs/log.hh"
#include "src/obs/trace.hh"
#include "src/svc/server.hh"

namespace {

int gSignalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    char c = 0;
    // write() is async-signal-safe; best-effort (a full pipe means a
    // wakeup is already pending).
    ssize_t ignored = ::write(gSignalPipe[1], &c, 1);
    (void)ignored;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--unix PATH] [--threads N]\n"
        "          [--queue N] [--machine NAME] [--deadline-ms N]\n"
        "          [--result-cache DIR] [--http N] [--trace FILE]\n"
        "  --port N         TCP port (default 0 = ephemeral)\n"
        "  --unix PATH      listen on a unix socket instead\n"
        "  --threads N      pool threads (default: hardware)\n"
        "  --queue N        admission queue depth (default 64)\n"
        "  --machine NAME   default machine model\n"
        "  --deadline-ms N  default per-request deadline\n"
        "  --result-cache DIR  persist timed SIMULATE results to\n"
        "                   DIR so they survive daemon restarts\n"
        "  --http N         serve /metrics, /stats, /requests/slow\n"
        "                   on this port (0 = ephemeral)\n"
        "  --trace FILE     record request spans; written as a\n"
        "                   Chrome trace on graceful shutdown\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eel;

    svc::ServerConfig cfg;
    std::string traceFile;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--port")
            cfg.tcpPort = static_cast<uint16_t>(atoi(next()));
        else if (a == "--unix")
            cfg.unixPath = next();
        else if (a == "--threads")
            cfg.threads = static_cast<unsigned>(atoi(next()));
        else if (a == "--queue")
            cfg.queueCapacity =
                static_cast<size_t>(atoll(next()));
        else if (a == "--machine")
            cfg.defaultMachine = next();
        else if (a == "--deadline-ms")
            cfg.defaultDeadlineMs =
                static_cast<uint32_t>(atoi(next()));
        else if (a == "--result-cache")
            cfg.resultCacheDir = next();
        else if (a == "--http") {
            cfg.httpEnabled = true;
            cfg.httpPort = static_cast<uint16_t>(atoi(next()));
        } else if (a == "--trace")
            traceFile = next();
        else {
            usage(argv[0]);
            return 2;
        }
    }

    if (::pipe(gSignalPipe) != 0) {
        std::perror("pipe");
        return 1;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    obs::setThreadName("svcd-main");
    if (!traceFile.empty())
        obs::enableTracing();
    svc::Server server(cfg);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "eelsvcd: %s\n", e.what());
        return 1;
    }

    // Parseable by whoever spawned us (tests, scripts).
    if (cfg.unixPath.empty())
        std::printf("listening port=%u\n", unsigned(server.port()));
    else
        std::printf("listening unix=%s\n", cfg.unixPath.c_str());
    if (cfg.httpEnabled)
        std::printf("http port=%u\n", unsigned(server.httpPort()));
    std::fflush(stdout);

    char c;
    while (::read(gSignalPipe[0], &c, 1) < 0 && errno == EINTR) {
    }
    obs::logf(obs::LogLevel::Info, "svcd: signal received");
    server.stop();  // drains, answers in-flight, joins
    // Flush spans only after stop(): the drain guarantees every
    // worker (and its per-thread trace buffer) has quiesced, so the
    // file holds the complete request history.
    if (!traceFile.empty())
        obs::writeTrace(traceFile);
    return 0;
}
