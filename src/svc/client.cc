#include "src/svc/client.hh"

#include "src/support/logging.hh"

namespace eel::svc {

Frame
Client::call(Op op, std::string body)
{
    Frame req;
    req.seq = nextSeq++;
    req.code = static_cast<uint8_t>(op);
    req.body = std::move(body);
    if (hasTraceCtx) {
        req.code |= kTraceContextFlag;
        req.body.insert(0, traceCtx.encodePrefix());
    }
    conn.writeFrame(req);
    Frame rep;
    if (!conn.readFrame(rep))
        fatal("svc: server closed connection mid-call");
    if (rep.seq != req.seq)
        fatal("svc: reply seq %u for request seq %u", rep.seq,
              req.seq);
    return rep;
}

namespace {

/** SimulateReply (the partial-progress body) also rides on
 *  DeadlineExceeded replies; everything else decodes only on Ok. */
template <class Body>
bool
decodableStatus(Status st)
{
    return st == Status::Ok;
}

template <>
bool
decodableStatus<SimulateReply>(Status st)
{
    return st == Status::Ok || st == Status::DeadlineExceeded;
}

template <class Body>
Client::Reply<Body>
parse(Frame rep)
{
    Client::Reply<Body> out;
    out.status = static_cast<Status>(rep.code);
    if (decodableStatus<Body>(out.status))
        out.value = Body::decode(rep.body);
    else
        out.message = std::move(rep.body);
    return out;
}

} // namespace

Client::Reply<SubmitReply>
Client::submit(const std::string &xefBytes)
{
    return parse<SubmitReply>(call(Op::SubmitXef, xefBytes));
}

Client::Reply<RewriteReply>
Client::rewrite(const RewriteRequest &req)
{
    return parse<RewriteReply>(call(Op::Rewrite, req.encode()));
}

Client::Reply<SimulateReply>
Client::simulate(const SimulateRequest &req)
{
    return parse<SimulateReply>(call(Op::Simulate, req.encode()));
}

Client::Reply<std::string>
Client::stats()
{
    Frame rep = call(Op::Stats, {});
    Reply<std::string> out;
    out.status = static_cast<Status>(rep.code);
    if (out.status == Status::Ok)
        out.value = std::move(rep.body);
    else
        out.message = std::move(rep.body);
    return out;
}

bool
Client::sendRawExpectReply(const std::string &bytes, Frame &out)
{
    try {
        conn.writeRaw(bytes);
        return conn.readFrame(out);
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace eel::svc
