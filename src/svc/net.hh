/**
 * @file
 * Minimal blocking socket layer for the service: a framed connection
 * (read/write one wire Frame), TCP and unix-socket dialers, and a
 * listener whose accept loop can be woken for shutdown.
 *
 * Everything here is blocking; concurrency lives in the server (one
 * reader thread per connection). Writes are protected by a per-Conn
 * mutex so worker threads can reply on a connection while its reader
 * blocks in readFrame. SIGPIPE is avoided with MSG_NOSIGNAL rather
 * than a process-wide handler, so embedding the server in a test
 * binary does not disturb signal state.
 */

#ifndef EEL_SVC_NET_HH
#define EEL_SVC_NET_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "src/svc/wire.hh"

namespace eel::svc {

/** One framed byte-stream connection. Movable, closes on destruct. */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : _fd(fd) {}
    ~Conn() { close(); }

    Conn(Conn &&o) noexcept : _fd(o._fd) { o._fd = -1; }
    Conn &operator=(Conn &&o) noexcept;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    bool ok() const { return _fd >= 0; }
    int fd() const { return _fd; }
    void close();

    /** Half-close the write side (peer sees EOF; reads still work).
     *  Lets a test send a partial frame and still collect the
     *  server's reaction without either side blocking. */
    void shutdownWrite();

    /**
     * Read one frame. Returns false on clean EOF at a frame
     * boundary; throws FatalError on a malformed length prefix
     * (0, < header, or > maxBytes), mid-frame EOF, or socket error.
     */
    bool readFrame(Frame &out, uint32_t maxBytes = kMaxFrameBytes);

    /** Write one frame (atomic w.r.t. other writers on this Conn);
     *  throws FatalError on error. */
    void writeFrame(const Frame &f);

    /** Send raw bytes verbatim — for protocol tests that need to
     *  produce deliberately broken frames. */
    void writeRaw(const std::string &bytes);

  private:
    int _fd = -1;
    std::mutex writeMu;
};

/** Connect to a TCP endpoint (IPv4 loopback unless host is given). */
Conn connectTcp(uint16_t port, const std::string &host = "127.0.0.1");

/** Connect to a unix-domain socket path. */
Conn connectUnix(const std::string &path);

/**
 * A listening socket plus a self-pipe, so accept() blocks in poll()
 * on both and wake() interrupts it from another thread. TCP bind to
 * port 0 picks an ephemeral port, reported by port().
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind + listen on 127.0.0.1:port (0 = ephemeral). */
    void listenTcp(uint16_t port);
    /** Bind + listen on a unix socket path (unlinked first). */
    void listenUnix(const std::string &path);

    uint16_t port() const { return _port; }

    /** Block until a connection arrives (returned ok()) or wake()
     *  is called (returned !ok()). */
    Conn accept();

    /** Unblock a pending or future accept(); idempotent. */
    void wake();

  private:
    void openWakePipe();

    int listenFd = -1;
    int wakeR = -1;
    int wakeW = -1;
    uint16_t _port = 0;
    std::string unixPath;  ///< unlinked on destruct
};

} // namespace eel::svc

#endif // EEL_SVC_NET_HH
