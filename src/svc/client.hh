/**
 * @file
 * Blocking typed client for the rewriting service. One Client per
 * connection; calls are synchronous (send one frame, read one
 * reply), which is exactly what the closed-loop load generator
 * wants. Errors from the server come back as Reply::status plus a
 * message; transport errors throw FatalError.
 */

#ifndef EEL_SVC_CLIENT_HH
#define EEL_SVC_CLIENT_HH

#include <cstdint>
#include <string>

#include "src/svc/net.hh"
#include "src/svc/wire.hh"

namespace eel::svc {

class Client
{
  public:
    explicit Client(Conn conn) : conn(std::move(conn)) {}

    static Client dialTcp(uint16_t port,
                          const std::string &host = "127.0.0.1")
    {
        return Client(connectTcp(port, host));
    }
    static Client dialUnix(const std::string &path)
    {
        return Client(connectUnix(path));
    }

    template <class Body> struct Reply
    {
        Status status = Status::Ok;
        Body value;           ///< decoded only when present
        std::string message;  ///< error text for non-Ok statuses

        bool ok() const { return status == Status::Ok; }
    };

    Reply<SubmitReply> submit(const std::string &xefBytes);
    Reply<RewriteReply> rewrite(const RewriteRequest &req);
    Reply<SimulateReply> simulate(const SimulateRequest &req);
    /** STATS; value is the server's JSON text. */
    Reply<std::string> stats();

    /**
     * Escape hatch for protocol tests: send arbitrary bytes, then
     * try to read one reply frame. Returns false on EOF/error
     * instead of throwing, since broken input often (rightly) gets
     * the connection dropped.
     */
    bool sendRawExpectReply(const std::string &bytes, Frame &out);

    /** Tag every subsequent request with this trace context (the
     *  wire extension: flagged op byte + 9-byte body prefix).
     *  Re-call per request to rotate ids; clearTraceContext()
     *  reverts to the legacy untagged frames. */
    void setTraceContext(const TraceContext &tc)
    {
        traceCtx = tc;
        hasTraceCtx = true;
    }
    void clearTraceContext() { hasTraceCtx = false; }

    Conn &connection() { return conn; }

  private:
    Frame call(Op op, std::string body);

    Conn conn;
    uint32_t nextSeq = 1;
    TraceContext traceCtx;
    bool hasTraceCtx = false;
};

} // namespace eel::svc

#endif // EEL_SVC_CLIENT_HH
