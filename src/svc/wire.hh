/**
 * @file
 * Wire format of the rewriting service: length-prefixed binary
 * frames over a byte stream (TCP or unix socket).
 *
 * Every frame is
 *
 *     u32 length | u32 seq | u8 code | body[length - 5]
 *
 * with all integers little-endian and `length` counting everything
 * after itself (so a frame occupies length + 4 bytes on the wire).
 * `seq` is chosen by the client and echoed in the reply, so a client
 * may pipeline requests on one connection and match replies out of
 * order. `code` is an Op in requests and a Status in replies; a
 * request op may carry kTraceContextFlag, in which case a 9-byte
 * trace-context prefix (see TraceContext) precedes the body.
 *
 * Request bodies:
 *   SubmitXef   xef container bytes (exe::Executable::saveBytes)
 *   Rewrite     u64 imageId | u8 kind | u32 deadlineMs | str machine
 *   Simulate    u64 imageId | u8 timing | u32 deadlineMs |
 *               u64 limit | str machine
 *   Stats       (empty)
 *
 * Reply bodies (status Ok unless noted):
 *   SubmitXef   u64 imageId | u32 pages | u32 pageHits
 *   Rewrite     u8 cached | xef container bytes
 *   Simulate    u64 instructions | u64 cycles | u32 exitCode |
 *               u8 exited   (also the body of a DeadlineExceeded
 *               reply, describing the partial run)
 *   Stats       JSON text
 *   any error   human-readable message text
 *
 * str is u32 byteCount | bytes. Decoding reads through a Cursor that
 * throws FatalError on underrun, so a truncated or garbage body
 * becomes a clean BadFrame reply, never an out-of-bounds read.
 */

#ifndef EEL_SVC_WIRE_HH
#define EEL_SVC_WIRE_HH

#include <cstdint>
#include <string>

namespace eel::svc {

/** Frames a peer may not exceed (either direction). A full XEF image
 *  plus headroom; an honest client never gets near it, and a hostile
 *  length prefix is rejected before any allocation. */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class Op : uint8_t {
    SubmitXef = 1,  ///< intern an image, get its content id
    Rewrite = 2,    ///< stamp one variant of a submitted image
    Simulate = 3,   ///< emulate / time a submitted image
    Stats = 4,      ///< server + store counters as JSON
};

/**
 * Trace-context extension: a client that wants its requests
 * correlated with server-side telemetry sets kTraceContextFlag on
 * the op byte and prefixes the body with
 *
 *     u64 traceId | u8 flags        (flags bit 0 = sampled)
 *
 * Version negotiation is per-frame: the flag bit was outside the
 * valid op range before this extension, so an old client (which
 * never sets it) round-trips byte-identically through a new server,
 * and a new client talking to an old server gets a clean
 * BadRequest "unknown op" it can downgrade on. The server strips
 * the prefix before the op handlers run; replies are unchanged
 * (the client already knows its own ids).
 */
constexpr uint8_t kTraceContextFlag = 0x80;

struct TraceContext
{
    uint64_t traceId = 0;  ///< client-generated; 0 = untagged
    uint8_t flags = 0;

    static constexpr uint8_t kSampled = 1;  ///< emit server spans
    bool sampled() const { return flags & kSampled; }

    static constexpr size_t kWireBytes = 9;

    /** The 9-byte body prefix. */
    std::string encodePrefix() const;
    /** Strip and decode the prefix from `body` in place; throws
     *  FatalError ("wire: ...") on underrun. */
    static TraceContext stripPrefix(std::string &body);
};

enum class Status : uint8_t {
    Ok = 0,
    BadFrame = 1,          ///< unparseable frame or body
    BadRequest = 2,        ///< unknown op / invalid arguments
    BadImage = 3,          ///< malformed XEF or unknown image id
    Busy = 4,              ///< admission queue full, retry later
    DeadlineExceeded = 5,  ///< cancelled at the deadline
    Draining = 6,          ///< server is shutting down
    ServerError = 7,       ///< internal failure
};

const char *statusName(Status s);

/** One decoded frame (request or reply). */
struct Frame
{
    uint32_t seq = 0;
    uint8_t code = 0;  ///< Op or Status
    std::string body;
};

// --- body encoding -------------------------------------------------

void putU8(std::string &out, uint8_t v);
void putU32(std::string &out, uint32_t v);
void putU64(std::string &out, uint64_t v);
void putStr(std::string &out, const std::string &s);

/** Bounded body reader; every getter throws FatalError on underrun
 *  (and putStr's length prefix is checked against the remainder). */
struct Cursor
{
    const std::string &s;
    size_t at = 0;

    explicit Cursor(const std::string &s) : s(s) {}

    uint8_t getU8();
    uint32_t getU32();
    uint64_t getU64();
    std::string getStr();
    /** Everything not yet consumed (e.g. a trailing xef payload). */
    std::string rest();
    bool atEnd() const { return at == s.size(); }
    /** Throw BadFrame-shaped FatalError unless fully consumed. */
    void expectEnd() const;
};

// --- typed request / reply bodies ---------------------------------

struct SubmitReply
{
    uint64_t imageId = 0;
    uint32_t pages = 0;
    uint32_t pageHits = 0;

    std::string encode() const;
    static SubmitReply decode(const std::string &body);
};

struct RewriteRequest
{
    uint64_t imageId = 0;
    uint8_t kind = 0;  ///< edit::VariantKind
    uint32_t deadlineMs = 0;  ///< 0 = server default
    std::string machine;      ///< "" = server default

    std::string encode() const;
    static RewriteRequest decode(const std::string &body);
};

struct RewriteReply
{
    uint8_t cached = 0;  ///< served from the rewrite result cache
    std::string xef;

    std::string encode() const;
    static RewriteReply decode(const std::string &body);
};

struct SimulateRequest
{
    uint64_t imageId = 0;
    uint8_t timing = 1;       ///< 0 = functional emulation only
    uint32_t deadlineMs = 0;  ///< 0 = server default
    uint64_t limit = 0;       ///< max instructions, 0 = unbounded
    std::string machine;      ///< "" = server default

    std::string encode() const;
    static SimulateRequest decode(const std::string &body);
};

struct SimulateReply
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;  ///< 0 for functional-only runs
    uint32_t exitCode = 0;
    uint8_t exited = 0;

    std::string encode() const;
    static SimulateReply decode(const std::string &body);
};

/** Content id of a submitted image: FNV-1a over the container
 *  bytes, so identical resubmits address the same registry entry. */
uint64_t contentId(const std::string &bytes);

} // namespace eel::svc

#endif // EEL_SVC_WIRE_HH
