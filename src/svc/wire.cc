#include "src/svc/wire.hh"

#include "src/support/logging.hh"

namespace eel::svc {

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "ok";
      case Status::BadFrame: return "bad-frame";
      case Status::BadRequest: return "bad-request";
      case Status::BadImage: return "bad-image";
      case Status::Busy: return "busy";
      case Status::DeadlineExceeded: return "deadline-exceeded";
      case Status::Draining: return "draining";
      case Status::ServerError: return "server-error";
    }
    return "?";
}

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

uint8_t
Cursor::getU8()
{
    if (at + 1 > s.size())
        fatal("wire: truncated body (u8 at %zu of %zu)", at, s.size());
    return static_cast<uint8_t>(s[at++]);
}

uint32_t
Cursor::getU32()
{
    if (at + 4 > s.size())
        fatal("wire: truncated body (u32 at %zu of %zu)", at,
              s.size());
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<uint8_t>(s[at + i]))
             << (8 * i);
    at += 4;
    return v;
}

uint64_t
Cursor::getU64()
{
    if (at + 8 > s.size())
        fatal("wire: truncated body (u64 at %zu of %zu)", at,
              s.size());
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<uint8_t>(s[at + i]))
             << (8 * i);
    at += 8;
    return v;
}

std::string
Cursor::getStr()
{
    uint32_t n = getU32();
    if (at + n > s.size())
        fatal("wire: string length %u exceeds remaining %zu bytes",
              n, s.size() - at);
    std::string v = s.substr(at, n);
    at += n;
    return v;
}

std::string
Cursor::rest()
{
    std::string v = s.substr(at);
    at = s.size();
    return v;
}

void
Cursor::expectEnd() const
{
    if (at != s.size())
        fatal("wire: %zu trailing bytes after body", s.size() - at);
}

std::string
TraceContext::encodePrefix() const
{
    std::string out;
    putU64(out, traceId);
    putU8(out, flags);
    return out;
}

TraceContext
TraceContext::stripPrefix(std::string &body)
{
    if (body.size() < kWireBytes)
        fatal("wire: truncated trace-context prefix (%zu of %zu "
              "bytes)",
              body.size(), kWireBytes);
    Cursor c(body);
    TraceContext tc;
    tc.traceId = c.getU64();
    tc.flags = c.getU8();
    body.erase(0, kWireBytes);
    return tc;
}

std::string
SubmitReply::encode() const
{
    std::string out;
    putU64(out, imageId);
    putU32(out, pages);
    putU32(out, pageHits);
    return out;
}

SubmitReply
SubmitReply::decode(const std::string &body)
{
    Cursor c(body);
    SubmitReply r;
    r.imageId = c.getU64();
    r.pages = c.getU32();
    r.pageHits = c.getU32();
    c.expectEnd();
    return r;
}

std::string
RewriteRequest::encode() const
{
    std::string out;
    putU64(out, imageId);
    putU8(out, kind);
    putU32(out, deadlineMs);
    putStr(out, machine);
    return out;
}

RewriteRequest
RewriteRequest::decode(const std::string &body)
{
    Cursor c(body);
    RewriteRequest r;
    r.imageId = c.getU64();
    r.kind = c.getU8();
    r.deadlineMs = c.getU32();
    r.machine = c.getStr();
    c.expectEnd();
    return r;
}

std::string
RewriteReply::encode() const
{
    std::string out;
    putU8(out, cached);
    out += xef;
    return out;
}

RewriteReply
RewriteReply::decode(const std::string &body)
{
    Cursor c(body);
    RewriteReply r;
    r.cached = c.getU8();
    r.xef = c.rest();
    return r;
}

std::string
SimulateRequest::encode() const
{
    std::string out;
    putU64(out, imageId);
    putU8(out, timing);
    putU32(out, deadlineMs);
    putU64(out, limit);
    putStr(out, machine);
    return out;
}

SimulateRequest
SimulateRequest::decode(const std::string &body)
{
    Cursor c(body);
    SimulateRequest r;
    r.imageId = c.getU64();
    r.timing = c.getU8();
    r.deadlineMs = c.getU32();
    r.limit = c.getU64();
    r.machine = c.getStr();
    c.expectEnd();
    return r;
}

std::string
SimulateReply::encode() const
{
    std::string out;
    putU64(out, instructions);
    putU64(out, cycles);
    putU32(out, exitCode);
    putU8(out, exited);
    return out;
}

SimulateReply
SimulateReply::decode(const std::string &body)
{
    Cursor c(body);
    SimulateReply r;
    r.instructions = c.getU64();
    r.cycles = c.getU64();
    r.exitCode = c.getU32();
    r.exited = c.getU8();
    c.expectEnd();
    return r;
}

uint64_t
contentId(const std::string &bytes)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char ch : bytes) {
        h ^= static_cast<uint8_t>(ch);
        h *= 0x100000001b3ull;
    }
    // Reserve 0 as "no image" so registries can use it as a sentinel.
    return h ? h : 1;
}

} // namespace eel::svc
