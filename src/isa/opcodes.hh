/**
 * @file
 * Opcode enumeration and static per-opcode properties for the SPARC V8
 * subset. One enumerator per mnemonic; conditional branches are a
 * single opcode (Bicc / Fbfcc) with the condition held in an
 * instruction field, mirroring the hardware encoding.
 */

#ifndef EEL_ISA_OPCODES_HH
#define EEL_ISA_OPCODES_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace eel::isa {

enum class Op : uint8_t {
    Invalid,

    // ALU (format 3, op=2)
    Add, Addcc, Sub, Subcc, And, Andcc, Or, Orcc, Xor, Xorcc,
    Sll, Srl, Sra,
    Umul, Smul, Udiv, Sdiv,
    Rdy, Wry,
    Save, Restore,
    Jmpl,
    Ticc,

    // Format 2
    Sethi, Nop, Bicc, Fbfcc,

    // Format 1
    Call,

    // Memory (format 3, op=3)
    Ld, Ldub, Ldsb, Lduh, Ldsh, Ldd,
    St, Stb, Sth, Std,
    Ldf, Lddf, Stf, Stdf,

    // Floating point (FPop1/FPop2)
    Fadds, Faddd, Fsubs, Fsubd, Fmuls, Fmuld, Fdivs, Fdivd,
    Fsqrts, Fsqrtd,
    Fmovs, Fnegs, Fabss,
    Fitos, Fitod, Fstoi, Fdtoi, Fstod, Fdtos,
    Fcmps, Fcmpd,

    NumOps
};

constexpr unsigned numOps = static_cast<unsigned>(Op::NumOps);

/** Instruction encoding formats (SPARC V8 manual terminology). */
enum class Format : uint8_t {
    F1Call,     ///< op=1: 30-bit word displacement
    F2Sethi,    ///< op=0, op2=4: rd, imm22
    F2Branch,   ///< op=0, op2=2 or 6: a, cond, disp22
    F3Arith,    ///< op=2: rd, op3, rs1, i, simm13/rs2
    F3Fp,       ///< op=2, op3=0x34/0x35: rd, rs1, opf, rs2
    F3Mem,      ///< op=3: rd, op3, rs1, i, simm13/rs2
    F3Trap,     ///< op=2, op3=0x3a: cond, rs1, i, imm7
};

/** Branch condition codes (Bicc cond field). */
namespace cond {
constexpr uint8_t n = 0, e = 1, le = 2, l = 3, leu = 4, cs = 5,
                  neg = 6, vs = 7, a = 8, ne = 9, g = 10, ge = 11,
                  gu = 12, cc = 13, pos = 14, vc = 15;
} // namespace cond

/** Floating point branch conditions (Fbfcc cond field). */
namespace fcond {
constexpr uint8_t n = 0, ne = 1, lg = 2, ul = 3, l = 4, ug = 5,
                  g = 6, u = 7, a = 8, e = 9, ue = 10, ge = 11,
                  uge = 12, le = 13, ule = 14, o = 15;
} // namespace fcond

/** Software trap numbers understood by the emulator (Ticc imm7). */
namespace trap {
constexpr uint8_t exit_prog = 0;  ///< exit; status in %o0
constexpr uint8_t put_int = 1;    ///< print %o0 as an integer
constexpr uint8_t put_char = 2;   ///< print low byte of %o0
constexpr uint8_t sink = 3;       ///< consume %o0 (keep value live)
} // namespace trap

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;   ///< lower-case mnemonic (SADL name)
    Format format;
    uint8_t op3;            ///< format 3 op3 field (or 0)
    uint16_t opf;           ///< FPop opf field (or 0)

    bool writesIcc;         ///< sets the integer condition codes
    bool readsIcc;
    bool writesFcc;
    bool readsFcc;
    bool writesY;
    bool readsY;
    bool isLoad;
    bool isStore;
    bool isFpMem;           ///< memory op on the fp register file
    bool isDouble;          ///< accesses an even/odd fp or int pair
    bool isCti;             ///< control transfer (has a delay slot)
    bool isBarrier;         ///< never reordered (save/restore/trap/rdy/wry)
    uint8_t memBytes;       ///< access size for memory ops, else 0
};

/** Look up the static properties of op. */
const OpInfo &opInfo(Op op);

/** Mnemonic string for op. */
std::string_view opName(Op op);

/** Reverse lookup used by SADL sem bindings; nullopt if unknown. */
std::optional<Op> opFromName(std::string_view name);

/** Printable name of a Bicc condition, e.g. "ne". */
std::string_view condName(uint8_t c);
/** Printable name of an Fbfcc condition. */
std::string_view fcondName(uint8_t c);

} // namespace eel::isa

#endif // EEL_ISA_OPCODES_HH
