#include "src/isa/opcodes.hh"

#include <array>
#include <map>

#include "src/support/logging.hh"

namespace eel::isa {

namespace {

// Shorthand flags for the table below.
struct F
{
    bool wIcc = false, rIcc = false, wFcc = false, rFcc = false;
    bool wY = false, rY = false;
    bool load = false, store = false, fpMem = false, dbl = false;
    bool cti = false, barrier = false;
    uint8_t bytes = 0;
};

constexpr OpInfo
mk(const char *name, Format fmt, uint8_t op3, uint16_t opf, F f)
{
    return OpInfo{name, fmt, op3, opf,
                  f.wIcc, f.rIcc, f.wFcc, f.rFcc, f.wY, f.rY,
                  f.load, f.store, f.fpMem, f.dbl, f.cti, f.barrier,
                  f.bytes};
}

const std::array<OpInfo, numOps> opTable = [] {
    std::array<OpInfo, numOps> t{};
    auto set = [&](Op op, OpInfo info) {
        t[static_cast<unsigned>(op)] = info;
    };

    set(Op::Invalid, mk("invalid", Format::F3Arith, 0, 0, {}));

    set(Op::Add,   mk("add",   Format::F3Arith, 0x00, 0, {}));
    set(Op::Addcc, mk("addcc", Format::F3Arith, 0x10, 0, {.wIcc = true}));
    set(Op::Sub,   mk("sub",   Format::F3Arith, 0x04, 0, {}));
    set(Op::Subcc, mk("subcc", Format::F3Arith, 0x14, 0, {.wIcc = true}));
    set(Op::And,   mk("and",   Format::F3Arith, 0x01, 0, {}));
    set(Op::Andcc, mk("andcc", Format::F3Arith, 0x11, 0, {.wIcc = true}));
    set(Op::Or,    mk("or",    Format::F3Arith, 0x02, 0, {}));
    set(Op::Orcc,  mk("orcc",  Format::F3Arith, 0x12, 0, {.wIcc = true}));
    set(Op::Xor,   mk("xor",   Format::F3Arith, 0x03, 0, {}));
    set(Op::Xorcc, mk("xorcc", Format::F3Arith, 0x13, 0, {.wIcc = true}));
    set(Op::Sll,   mk("sll",   Format::F3Arith, 0x25, 0, {}));
    set(Op::Srl,   mk("srl",   Format::F3Arith, 0x26, 0, {}));
    set(Op::Sra,   mk("sra",   Format::F3Arith, 0x27, 0, {}));
    set(Op::Umul,  mk("umul",  Format::F3Arith, 0x0a, 0, {.wY = true}));
    set(Op::Smul,  mk("smul",  Format::F3Arith, 0x0b, 0, {.wY = true}));
    set(Op::Udiv,  mk("udiv",  Format::F3Arith, 0x0e, 0, {.rY = true}));
    set(Op::Sdiv,  mk("sdiv",  Format::F3Arith, 0x0f, 0, {.rY = true}));
    set(Op::Rdy,   mk("rdy",   Format::F3Arith, 0x28, 0,
                      {.rY = true, .barrier = true}));
    set(Op::Wry,   mk("wry",   Format::F3Arith, 0x30, 0,
                      {.wY = true, .barrier = true}));
    set(Op::Save,  mk("save",  Format::F3Arith, 0x3c, 0,
                      {.barrier = true}));
    set(Op::Restore, mk("restore", Format::F3Arith, 0x3d, 0,
                        {.barrier = true}));
    set(Op::Jmpl,  mk("jmpl",  Format::F3Arith, 0x38, 0, {.cti = true}));
    set(Op::Ticc,  mk("ticc",  Format::F3Trap,  0x3a, 0,
                      {.rIcc = true, .barrier = true}));

    set(Op::Sethi, mk("sethi", Format::F2Sethi, 0, 0, {}));
    set(Op::Nop,   mk("nop",   Format::F2Sethi, 0, 0, {}));
    set(Op::Bicc,  mk("bicc",  Format::F2Branch, 0, 0,
                      {.rIcc = true, .cti = true}));
    set(Op::Fbfcc, mk("fbfcc", Format::F2Branch, 0, 0,
                      {.rFcc = true, .cti = true}));
    set(Op::Call,  mk("call",  Format::F1Call, 0, 0, {.cti = true}));

    set(Op::Ld,   mk("ld",   Format::F3Mem, 0x00, 0,
                     {.load = true, .bytes = 4}));
    set(Op::Ldub, mk("ldub", Format::F3Mem, 0x01, 0,
                     {.load = true, .bytes = 1}));
    set(Op::Lduh, mk("lduh", Format::F3Mem, 0x02, 0,
                     {.load = true, .bytes = 2}));
    set(Op::Ldd,  mk("ldd",  Format::F3Mem, 0x03, 0,
                     {.load = true, .dbl = true, .bytes = 8}));
    set(Op::Ldsb, mk("ldsb", Format::F3Mem, 0x09, 0,
                     {.load = true, .bytes = 1}));
    set(Op::Ldsh, mk("ldsh", Format::F3Mem, 0x0a, 0,
                     {.load = true, .bytes = 2}));
    set(Op::St,   mk("st",   Format::F3Mem, 0x04, 0,
                     {.store = true, .bytes = 4}));
    set(Op::Stb,  mk("stb",  Format::F3Mem, 0x05, 0,
                     {.store = true, .bytes = 1}));
    set(Op::Sth,  mk("sth",  Format::F3Mem, 0x06, 0,
                     {.store = true, .bytes = 2}));
    set(Op::Std,  mk("std",  Format::F3Mem, 0x07, 0,
                     {.store = true, .dbl = true, .bytes = 8}));
    set(Op::Ldf,  mk("ldf",  Format::F3Mem, 0x20, 0,
                     {.load = true, .fpMem = true, .bytes = 4}));
    set(Op::Lddf, mk("lddf", Format::F3Mem, 0x23, 0,
                     {.load = true, .fpMem = true, .dbl = true,
                      .bytes = 8}));
    set(Op::Stf,  mk("stf",  Format::F3Mem, 0x24, 0,
                     {.store = true, .fpMem = true, .bytes = 4}));
    set(Op::Stdf, mk("stdf", Format::F3Mem, 0x27, 0,
                     {.store = true, .fpMem = true, .dbl = true,
                      .bytes = 8}));

    set(Op::Fadds, mk("fadds", Format::F3Fp, 0x34, 0x41, {}));
    set(Op::Faddd, mk("faddd", Format::F3Fp, 0x34, 0x42, {.dbl = true}));
    set(Op::Fsubs, mk("fsubs", Format::F3Fp, 0x34, 0x45, {}));
    set(Op::Fsubd, mk("fsubd", Format::F3Fp, 0x34, 0x46, {.dbl = true}));
    set(Op::Fmuls, mk("fmuls", Format::F3Fp, 0x34, 0x49, {}));
    set(Op::Fmuld, mk("fmuld", Format::F3Fp, 0x34, 0x4a, {.dbl = true}));
    set(Op::Fdivs, mk("fdivs", Format::F3Fp, 0x34, 0x4d, {}));
    set(Op::Fdivd, mk("fdivd", Format::F3Fp, 0x34, 0x4e, {.dbl = true}));
    set(Op::Fsqrts, mk("fsqrts", Format::F3Fp, 0x34, 0x29, {}));
    set(Op::Fsqrtd, mk("fsqrtd", Format::F3Fp, 0x34, 0x2a,
                       {.dbl = true}));
    set(Op::Fmovs, mk("fmovs", Format::F3Fp, 0x34, 0x01, {}));
    set(Op::Fnegs, mk("fnegs", Format::F3Fp, 0x34, 0x05, {}));
    set(Op::Fabss, mk("fabss", Format::F3Fp, 0x34, 0x09, {}));
    set(Op::Fitos, mk("fitos", Format::F3Fp, 0x34, 0xc4, {}));
    set(Op::Fitod, mk("fitod", Format::F3Fp, 0x34, 0xc8, {}));
    set(Op::Fstoi, mk("fstoi", Format::F3Fp, 0x34, 0xd1, {}));
    set(Op::Fdtoi, mk("fdtoi", Format::F3Fp, 0x34, 0xd2, {}));
    set(Op::Fstod, mk("fstod", Format::F3Fp, 0x34, 0xc9, {}));
    set(Op::Fdtos, mk("fdtos", Format::F3Fp, 0x34, 0xc6, {}));
    set(Op::Fcmps, mk("fcmps", Format::F3Fp, 0x35, 0x51,
                      {.wFcc = true}));
    set(Op::Fcmpd, mk("fcmpd", Format::F3Fp, 0x35, 0x52,
                      {.wFcc = true, .dbl = true}));
    return t;
}();

const std::map<std::string, Op, std::less<>> &
nameMap()
{
    static const std::map<std::string, Op, std::less<>> m = [] {
        std::map<std::string, Op, std::less<>> out;
        for (unsigned i = 1; i < numOps; ++i) {
            Op op = static_cast<Op>(i);
            out.emplace(std::string(opTable[i].mnemonic), op);
        }
        return out;
    }();
    return m;
}

constexpr const char *condNames[16] = {
    "n", "e", "le", "l", "leu", "cs", "neg", "vs",
    "a", "ne", "g", "ge", "gu", "cc", "pos", "vc"};

constexpr const char *fcondNames[16] = {
    "n", "ne", "lg", "ul", "l", "ug", "g", "u",
    "a", "e", "ue", "ge", "uge", "le", "ule", "o"};

} // namespace

const OpInfo &
opInfo(Op op)
{
    unsigned i = static_cast<unsigned>(op);
    if (i >= numOps)
        panic("opInfo: bad opcode %u", i);
    return opTable[i];
}

std::string_view
opName(Op op)
{
    return opInfo(op).mnemonic;
}

std::optional<Op>
opFromName(std::string_view name)
{
    const auto &m = nameMap();
    auto it = m.find(name);
    if (it == m.end())
        return std::nullopt;
    return it->second;
}

std::string_view
condName(uint8_t c)
{
    return condNames[c & 0xf];
}

std::string_view
fcondName(uint8_t c)
{
    return fcondNames[c & 0xf];
}

} // namespace eel::isa
