/**
 * @file
 * Decoded instruction representation, def/use analysis, and the
 * binary encoder/decoder for the SPARC V8 subset.
 */

#ifndef EEL_ISA_INSTRUCTION_HH
#define EEL_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "src/isa/opcodes.hh"
#include "src/isa/registers.hh"

namespace eel::isa {

/**
 * Operand slots: where in the encoding a register reference lives.
 * The machine model records timing per slot; at lookup time a slot is
 * resolved against a concrete instruction to yield a RegId.
 */
enum class Slot : uint8_t {
    None,
    Rs1,      ///< integer rs1
    Rs2,      ///< integer rs2 (only when iflag == 0)
    Rd,       ///< integer rd
    RdPair,   ///< integer rd|1 (second word of ldd/std)
    Frs1,     ///< fp rs1
    Frs2,     ///< fp rs2
    Frd,      ///< fp rd
    FrdPair,  ///< fp rd|1
    Frs1Pair,
    Frs2Pair,
    Icc,
    Fcc,
    Y,
};

/**
 * A decoded machine instruction. All fields are kept in a flat
 * struct: a 1996-era RISC editing library lives and dies by how
 * cheaply it can sling these around.
 */
struct Instruction
{
    Op op = Op::Invalid;
    uint8_t rd = 0;       ///< destination register number
    uint8_t rs1 = 0;      ///< first source register number
    uint8_t rs2 = 0;      ///< second source (valid when !iflag)
    bool iflag = false;   ///< immediate form (simm13 instead of rs2)
    int32_t simm13 = 0;   ///< sign-extended 13-bit immediate
    uint32_t imm22 = 0;   ///< sethi immediate (already left-aligned? no:
                          ///< raw 22-bit field, value is imm22 << 10)
    int32_t disp = 0;     ///< branch/call displacement in *instructions*
    uint8_t cond = 0;     ///< Bicc/Fbfcc/Ticc condition
    bool annul = false;   ///< branch annul bit

    const OpInfo &info() const { return opInfo(op); }

    // --- Predicates -----------------------------------------------------

    /** Control transfer instruction (owns the following delay slot). */
    bool isCti() const { return info().isCti; }
    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    /** Never reordered by the scheduler. */
    bool isBarrier() const { return info().isBarrier; }
    /** Conditional or unconditional PC-relative branch. */
    bool isBranch() const { return op == Op::Bicc || op == Op::Fbfcc; }
    /** Unconditional taken branch (ba / fba). */
    bool
    isAlwaysBranch() const
    {
        return isBranch() && cond == cond::a;
    }
    /** Branch-never (effectively a nop with a delay slot). */
    bool
    isNeverBranch() const
    {
        return isBranch() && cond == cond::n;
    }
    /** jmpl with rd==%g0 and rs1 in {%i7,%o7}: a return. */
    bool
    isReturn() const
    {
        return op == Op::Jmpl && rd == reg::g0 &&
               (rs1 == reg::i7 || rs1 == reg::o7);
    }
    /** Any call: direct call or jmpl that links through %o7. */
    bool
    isCall() const
    {
        return op == Op::Call || (op == Op::Jmpl && rd == reg::o7);
    }
    /** Instruction that can fall through to the next one. */
    bool
    fallsThrough() const
    {
        if (op == Op::Ticc && cond == cond::a)
            return false;
        if (isReturn())
            return false;
        if (isAlwaysBranch())
            return false;
        return true;
    }

    // --- Register def/use -----------------------------------------------

    /** A short fixed-capacity list of (slot, register) pairs. */
    struct Access
    {
        Slot slot;
        RegId reg;
    };
    struct AccessList
    {
        uint8_t n = 0;
        Access a[6];

        void
        push(Slot s, RegId r)
        {
            a[n++] = Access{s, r};
        }
        const Access *begin() const { return a; }
        const Access *end() const { return a + n; }
    };

    /** Registers (and cc/Y) read by this instruction. */
    AccessList uses() const;
    /** Registers (and cc/Y) written by this instruction. */
    AccessList defs() const;

    /** Resolve an operand slot to the concrete register it names. */
    RegId slotReg(Slot s) const;
};

static_assert(sizeof(Instruction) <= 24, "keep Instruction small");

/**
 * Encode inst to its 32-bit binary form.
 * Fatal if a field is out of range (e.g. branch displacement too far).
 */
uint32_t encode(const Instruction &inst);

/**
 * Decode a 32-bit word. Returns an instruction with op == Op::Invalid
 * if the word is not a valid encoding in the supported subset.
 */
Instruction decode(uint32_t word);

/** Disassemble into SPARC syntax, e.g. "add %o1, 4, %o2". */
std::string disassemble(const Instruction &inst);

/** Disassemble with pc so branch/call targets print absolutely. */
std::string disassemble(const Instruction &inst, uint32_t pc);

} // namespace eel::isa

#endif // EEL_ISA_INSTRUCTION_HH
