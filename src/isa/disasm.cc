#include "src/isa/instruction.hh"

#include "src/support/logging.hh"

namespace eel::isa {

namespace {

std::string
rn(uint8_t i)
{
    return regName(intReg(i));
}

std::string
fn(uint8_t i)
{
    return regName(fpReg(i));
}

/** Format the address operand "[%rs1 + %rs2]" or "[%rs1 + imm]". */
std::string
addr(const Instruction &in)
{
    if (in.iflag) {
        if (in.simm13 == 0)
            return strfmt("[%s]", rn(in.rs1).c_str());
        return strfmt("[%s + %d]", rn(in.rs1).c_str(), in.simm13);
    }
    return strfmt("[%s + %s]", rn(in.rs1).c_str(), rn(in.rs2).c_str());
}

std::string
src2(const Instruction &in)
{
    return in.iflag ? strfmt("%d", in.simm13) : rn(in.rs2);
}

std::string
target(const Instruction &in, uint32_t pc, bool have_pc)
{
    int32_t byte_off = in.disp * 4;
    if (have_pc)
        return strfmt("0x%x", pc + static_cast<uint32_t>(byte_off));
    if (byte_off >= 0)
        return strfmt(".+%d", byte_off);
    return strfmt(".%d", byte_off);
}

std::string
disasmImpl(const Instruction &in, uint32_t pc, bool have_pc)
{
    const OpInfo &inf = in.info();
    switch (in.op) {
      case Op::Invalid:
        return "<invalid>";
      case Op::Nop:
        return "nop";
      case Op::Sethi:
        return strfmt("sethi %%hi(0x%x), %s", in.imm22 << 10,
                      rn(in.rd).c_str());
      case Op::Call:
        return strfmt("call %s", target(in, pc, have_pc).c_str());
      case Op::Bicc:
        return strfmt("b%s%s %s",
                      std::string(condName(in.cond)).c_str(),
                      in.annul ? ",a" : "",
                      target(in, pc, have_pc).c_str());
      case Op::Fbfcc:
        return strfmt("fb%s%s %s",
                      std::string(fcondName(in.cond)).c_str(),
                      in.annul ? ",a" : "",
                      target(in, pc, have_pc).c_str());
      case Op::Jmpl:
        if (in.isReturn() && in.simm13 == 8 && in.iflag)
            return in.rs1 == reg::i7 ? "ret" : "retl";
        return strfmt("jmpl %s + %s, %s", rn(in.rs1).c_str(),
                      src2(in).c_str(), rn(in.rd).c_str());
      case Op::Ticc:
        return strfmt("t%s %d",
                      std::string(condName(in.cond)).c_str(),
                      in.simm13);
      case Op::Rdy:
        return strfmt("rd %%y, %s", rn(in.rd).c_str());
      case Op::Wry:
        return strfmt("wr %s, %s, %%y", rn(in.rs1).c_str(),
                      src2(in).c_str());
      case Op::Fcmps:
      case Op::Fcmpd:
        return strfmt("%s %s, %s",
                      std::string(opName(in.op)).c_str(),
                      fn(in.rs1).c_str(), fn(in.rs2).c_str());
      default:
        break;
    }

    if (inf.format == Format::F3Mem) {
        std::string r = inf.isFpMem ? fn(in.rd) : rn(in.rd);
        if (inf.isLoad)
            return strfmt("%s %s, %s",
                          std::string(opName(in.op)).c_str(),
                          addr(in).c_str(), r.c_str());
        return strfmt("%s %s, %s", std::string(opName(in.op)).c_str(),
                      r.c_str(), addr(in).c_str());
    }
    if (inf.format == Format::F3Fp) {
        // Unary fp ops print only rs2.
        Instruction::AccessList u = in.uses();
        bool unary = true;
        for (const auto &acc : u)
            if (acc.slot == Slot::Frs1)
                unary = false;
        if (unary)
            return strfmt("%s %s, %s",
                          std::string(opName(in.op)).c_str(),
                          fn(in.rs2).c_str(), fn(in.rd).c_str());
        return strfmt("%s %s, %s, %s",
                      std::string(opName(in.op)).c_str(),
                      fn(in.rs1).c_str(), fn(in.rs2).c_str(),
                      fn(in.rd).c_str());
    }
    // Remaining format 3 arithmetic.
    return strfmt("%s %s, %s, %s", std::string(opName(in.op)).c_str(),
                  rn(in.rs1).c_str(), src2(in).c_str(),
                  rn(in.rd).c_str());
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    return disasmImpl(inst, 0, false);
}

std::string
disassemble(const Instruction &inst, uint32_t pc)
{
    return disasmImpl(inst, pc, true);
}

} // namespace eel::isa
