/**
 * @file
 * Architectural register identifiers for the SPARC V8 subset.
 *
 * Integer registers are the usual windowed set seen by one routine:
 * %g0-%g7 (0-7), %o0-%o7 (8-15), %l0-%l7 (16-23), %i0-%i7 (24-31).
 * %g0 reads as zero and ignores writes. Floating point registers are
 * %f0-%f31 (single precision; doubles occupy an even/odd pair).
 * The integer condition codes (icc), floating point condition codes
 * (fcc), and the Y multiply/divide register are modeled as individual
 * registers so dependence analysis can track them uniformly.
 */

#ifndef EEL_ISA_REGISTERS_HH
#define EEL_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

namespace eel::isa {

/** Register file classes. */
enum class RegClass : uint8_t {
    None,   ///< no register (e.g. unused slot)
    Int,    ///< integer registers %g/%o/%l/%i, index 0-31
    Fp,     ///< floating point registers %f0-%f31
    Icc,    ///< integer condition codes (single register, index 0)
    Fcc,    ///< floating point condition codes (single register)
    Y,      ///< the Y register (single register)
};

/** A single architectural register: class plus index. */
struct RegId
{
    RegClass cls = RegClass::None;
    uint8_t idx = 0;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, uint8_t i) : cls(c), idx(i) {}

    constexpr bool operator==(const RegId &o) const = default;

    /** True for a real register (and not the hardwired zero %g0). */
    constexpr bool
    tracked() const
    {
        return cls != RegClass::None &&
               !(cls == RegClass::Int && idx == 0);
    }

    /**
     * Dense index for table lookups: 0-31 int, 32-63 fp, 64 icc,
     * 65 fcc, 66 y. RegClass::None maps to numRegIds - 1 (unused).
     */
    constexpr unsigned
    flat() const
    {
        switch (cls) {
          case RegClass::Int: return idx;
          case RegClass::Fp:  return 32 + idx;
          case RegClass::Icc: return 64;
          case RegClass::Fcc: return 65;
          case RegClass::Y:   return 66;
          default:            return 67;
        }
    }
};

/** Number of distinct flat register indices (see RegId::flat). */
constexpr unsigned numRegIds = 68;

constexpr RegId intReg(uint8_t i) { return RegId(RegClass::Int, i); }
constexpr RegId fpReg(uint8_t i) { return RegId(RegClass::Fp, i); }
constexpr RegId iccReg() { return RegId(RegClass::Icc, 0); }
constexpr RegId fccReg() { return RegId(RegClass::Fcc, 0); }
constexpr RegId yReg() { return RegId(RegClass::Y, 0); }

/** Conventional integer register numbers. */
namespace reg {
constexpr uint8_t g0 = 0, g1 = 1, g2 = 2, g3 = 3, g4 = 4, g5 = 5,
                  g6 = 6, g7 = 7;
constexpr uint8_t o0 = 8, o1 = 9, o2 = 10, o3 = 11, o4 = 12, o5 = 13,
                  sp = 14, o7 = 15;
constexpr uint8_t l0 = 16, l1 = 17, l2 = 18, l3 = 19, l4 = 20, l5 = 21,
                  l6 = 22, l7 = 23;
constexpr uint8_t i0 = 24, i1 = 25, i2 = 26, i3 = 27, i4 = 28, i5 = 29,
                  fp = 30, i7 = 31;
} // namespace reg

/** Printable name, e.g. "%o3", "%f10", "%icc". */
std::string regName(RegId r);

} // namespace eel::isa

#endif // EEL_ISA_REGISTERS_HH
