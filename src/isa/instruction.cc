#include "src/isa/instruction.hh"

#include <array>

#include "src/support/bits.hh"
#include "src/support/logging.hh"

namespace eel::isa {

namespace {

// Reverse decode tables, built once from the OpInfo table.
struct DecodeTables
{
    std::array<Op, 64> arith;   // op=2 op3 -> Op
    std::array<Op, 64> mem;     // op=3 op3 -> Op
    std::array<Op, 512> fpop1;  // op3=0x34 opf -> Op
    std::array<Op, 512> fpop2;  // op3=0x35 opf -> Op

    DecodeTables()
    {
        arith.fill(Op::Invalid);
        mem.fill(Op::Invalid);
        fpop1.fill(Op::Invalid);
        fpop2.fill(Op::Invalid);
        for (unsigned i = 1; i < numOps; ++i) {
            Op op = static_cast<Op>(i);
            const OpInfo &info = opInfo(op);
            switch (info.format) {
              case Format::F3Arith:
              case Format::F3Trap:
                arith[info.op3] = op;
                break;
              case Format::F3Mem:
                mem[info.op3] = op;
                break;
              case Format::F3Fp:
                if (info.op3 == 0x34)
                    fpop1[info.opf] = op;
                else
                    fpop2[info.opf] = op;
                break;
              default:
                break;
            }
        }
    }
};

const DecodeTables &
tables()
{
    static const DecodeTables t;
    return t;
}

bool
fpUnarySrc2Only(Op op)
{
    switch (op) {
      case Op::Fmovs: case Op::Fnegs: case Op::Fabss:
      case Op::Fsqrts: case Op::Fsqrtd:
      case Op::Fitos: case Op::Fitod: case Op::Fstoi: case Op::Fdtoi:
      case Op::Fstod: case Op::Fdtos:
        return true;
      default:
        return false;
    }
}

/** True if the fp op reads a double-precision source pair. */
bool
fpSrcDouble(Op op)
{
    switch (op) {
      case Op::Faddd: case Op::Fsubd: case Op::Fmuld: case Op::Fdivd:
      case Op::Fsqrtd: case Op::Fdtoi: case Op::Fdtos: case Op::Fcmpd:
        return true;
      default:
        return false;
    }
}

/** True if the fp op writes a double-precision destination pair. */
bool
fpDstDouble(Op op)
{
    switch (op) {
      case Op::Faddd: case Op::Fsubd: case Op::Fmuld: case Op::Fdivd:
      case Op::Fsqrtd: case Op::Fitod: case Op::Fstod:
        return true;
      default:
        return false;
    }
}

} // namespace

RegId
Instruction::slotReg(Slot s) const
{
    switch (s) {
      case Slot::Rs1:      return intReg(rs1);
      case Slot::Rs2:      return intReg(rs2);
      case Slot::Rd:       return intReg(rd);
      case Slot::RdPair:   return intReg(rd | 1);
      case Slot::Frs1:     return fpReg(rs1);
      case Slot::Frs2:     return fpReg(rs2);
      case Slot::Frd:      return fpReg(rd);
      case Slot::FrdPair:  return fpReg(rd | 1);
      case Slot::Frs1Pair: return fpReg(rs1 | 1);
      case Slot::Frs2Pair: return fpReg(rs2 | 1);
      case Slot::Icc:      return iccReg();
      case Slot::Fcc:      return fccReg();
      case Slot::Y:        return yReg();
      default:             return RegId();
    }
}

Instruction::AccessList
Instruction::uses() const
{
    AccessList out;
    const OpInfo &inf = info();
    switch (inf.format) {
      case Format::F3Arith:
        if (op == Op::Rdy)
            break;  // only reads Y, added below
        out.push(Slot::Rs1, intReg(rs1));
        if (!iflag)
            out.push(Slot::Rs2, intReg(rs2));
        break;
      case Format::F3Mem:
        out.push(Slot::Rs1, intReg(rs1));
        if (!iflag)
            out.push(Slot::Rs2, intReg(rs2));
        if (inf.isStore) {
            if (inf.isFpMem) {
                out.push(Slot::Frd, fpReg(rd));
                if (inf.isDouble)
                    out.push(Slot::FrdPair, fpReg(rd | 1));
            } else {
                out.push(Slot::Rd, intReg(rd));
                if (inf.isDouble)
                    out.push(Slot::RdPair, intReg(rd | 1));
            }
        }
        break;
      case Format::F3Fp:
        if (!fpUnarySrc2Only(op)) {
            out.push(Slot::Frs1, fpReg(rs1));
            if (fpSrcDouble(op))
                out.push(Slot::Frs1Pair, fpReg(rs1 | 1));
        }
        out.push(Slot::Frs2, fpReg(rs2));
        if (fpSrcDouble(op))
            out.push(Slot::Frs2Pair, fpReg(rs2 | 1));
        break;
      case Format::F3Trap:
        // The emulator's software traps read %o0.
        out.push(Slot::None, intReg(reg::o0));
        break;
      case Format::F2Branch:
      case Format::F2Sethi:
      case Format::F1Call:
        break;
    }
    if (inf.readsIcc && !(isBranch() && (cond == cond::a ||
                                         cond == cond::n)) &&
        !(op == Op::Ticc && (cond == cond::a || cond == cond::n)))
        out.push(Slot::Icc, iccReg());
    if (inf.readsFcc && !(op == Op::Fbfcc && (cond == fcond::a ||
                                              cond == fcond::n)))
        out.push(Slot::Fcc, fccReg());
    if (inf.readsY)
        out.push(Slot::Y, yReg());
    return out;
}

Instruction::AccessList
Instruction::defs() const
{
    AccessList out;
    const OpInfo &inf = info();
    switch (inf.format) {
      case Format::F3Arith:
        if (op != Op::Wry)
            out.push(Slot::Rd, intReg(rd));
        break;
      case Format::F3Mem:
        if (inf.isLoad) {
            if (inf.isFpMem) {
                out.push(Slot::Frd, fpReg(rd));
                if (inf.isDouble)
                    out.push(Slot::FrdPair, fpReg(rd | 1));
            } else {
                out.push(Slot::Rd, intReg(rd));
                if (inf.isDouble)
                    out.push(Slot::RdPair, intReg(rd | 1));
            }
        }
        break;
      case Format::F3Fp:
        if (op != Op::Fcmps && op != Op::Fcmpd) {
            out.push(Slot::Frd, fpReg(rd));
            if (fpDstDouble(op))
                out.push(Slot::FrdPair, fpReg(rd | 1));
        }
        break;
      case Format::F2Sethi:
        if (op == Op::Sethi)
            out.push(Slot::Rd, intReg(rd));
        break;
      case Format::F1Call:
        out.push(Slot::Rd, intReg(reg::o7));
        break;
      case Format::F2Branch:
      case Format::F3Trap:
        break;
    }
    if (inf.writesIcc)
        out.push(Slot::Icc, iccReg());
    if (inf.writesFcc)
        out.push(Slot::Fcc, fccReg());
    if (inf.writesY)
        out.push(Slot::Y, yReg());
    return out;
}

uint32_t
encode(const Instruction &inst)
{
    const OpInfo &inf = inst.info();
    uint32_t w = 0;
    switch (inf.format) {
      case Format::F1Call:
        w = insertBits(0, 31, 30, 1);
        if (!fitsSigned(inst.disp, 30))
            fatal("call displacement out of range: %d", inst.disp);
        w = insertBits(w, 29, 0, static_cast<uint32_t>(inst.disp));
        return w;
      case Format::F2Sethi:
        w = insertBits(0, 31, 30, 0);
        w = insertBits(w, 24, 22, 4);
        if (inst.op == Op::Nop)
            return w;
        w = insertBits(w, 29, 25, inst.rd);
        if (inst.imm22 >= (1u << 22))
            fatal("sethi imm22 out of range: 0x%x", inst.imm22);
        w = insertBits(w, 21, 0, inst.imm22);
        return w;
      case Format::F2Branch:
        w = insertBits(0, 31, 30, 0);
        w = insertBits(w, 29, 29, inst.annul ? 1 : 0);
        w = insertBits(w, 28, 25, inst.cond);
        w = insertBits(w, 24, 22, inst.op == Op::Bicc ? 2 : 6);
        if (!fitsSigned(inst.disp, 22))
            fatal("branch displacement out of range: %d", inst.disp);
        w = insertBits(w, 21, 0, static_cast<uint32_t>(inst.disp));
        return w;
      case Format::F3Arith:
      case Format::F3Mem:
        w = insertBits(0, 31, 30,
                       inf.format == Format::F3Arith ? 2 : 3);
        w = insertBits(w, 29, 25, inst.rd);
        w = insertBits(w, 24, 19, inf.op3);
        w = insertBits(w, 18, 14, inst.rs1);
        if (inst.iflag) {
            w = insertBits(w, 13, 13, 1);
            if (!fitsSigned(inst.simm13, 13))
                fatal("simm13 out of range: %d", inst.simm13);
            w = insertBits(w, 12, 0, static_cast<uint32_t>(inst.simm13));
        } else {
            w = insertBits(w, 4, 0, inst.rs2);
        }
        return w;
      case Format::F3Fp:
        w = insertBits(0, 31, 30, 2);
        w = insertBits(w, 29, 25, inst.rd);
        w = insertBits(w, 24, 19, inf.op3);
        w = insertBits(w, 18, 14, inst.rs1);
        w = insertBits(w, 13, 5, inf.opf);
        w = insertBits(w, 4, 0, inst.rs2);
        return w;
      case Format::F3Trap:
        w = insertBits(0, 31, 30, 2);
        w = insertBits(w, 28, 25, inst.cond);
        w = insertBits(w, 24, 19, inf.op3);
        w = insertBits(w, 18, 14, inst.rs1);
        w = insertBits(w, 13, 13, 1);
        w = insertBits(w, 6, 0, static_cast<uint32_t>(inst.simm13));
        return w;
    }
    panic("encode: unhandled format");
}

Instruction
decode(uint32_t word)
{
    const DecodeTables &t = tables();
    Instruction inst;
    unsigned op = bits(word, 31, 30);
    switch (op) {
      case 1:
        inst.op = Op::Call;
        inst.disp = sext(bits(word, 29, 0), 30);
        return inst;
      case 0: {
        unsigned op2 = bits(word, 24, 22);
        if (op2 == 4) {
            inst.rd = bits(word, 29, 25);
            inst.imm22 = bits(word, 21, 0);
            inst.op = (inst.rd == 0 && inst.imm22 == 0) ? Op::Nop
                                                        : Op::Sethi;
            return inst;
        }
        if (op2 == 2 || op2 == 6) {
            inst.op = (op2 == 2) ? Op::Bicc : Op::Fbfcc;
            inst.annul = bits(word, 29, 29);
            inst.cond = bits(word, 28, 25);
            inst.disp = sext(bits(word, 21, 0), 22);
            return inst;
        }
        return Instruction{};
      }
      case 2: {
        unsigned op3 = bits(word, 24, 19);
        if (op3 == 0x34 || op3 == 0x35) {
            unsigned opf = bits(word, 13, 5);
            inst.op = (op3 == 0x34) ? t.fpop1[opf] : t.fpop2[opf];
            inst.rd = bits(word, 29, 25);
            inst.rs1 = bits(word, 18, 14);
            inst.rs2 = bits(word, 4, 0);
            return inst;
        }
        if (op3 == 0x3a) {
            inst.op = Op::Ticc;
            inst.cond = bits(word, 28, 25);
            inst.rs1 = bits(word, 18, 14);
            inst.simm13 = static_cast<int32_t>(bits(word, 6, 0));
            return inst;
        }
        inst.op = t.arith[op3];
        if (inst.op == Op::Invalid)
            return Instruction{};
        inst.rd = bits(word, 29, 25);
        inst.rs1 = bits(word, 18, 14);
        inst.iflag = bits(word, 13, 13);
        if (inst.iflag)
            inst.simm13 = sext(bits(word, 12, 0), 13);
        else
            inst.rs2 = bits(word, 4, 0);
        return inst;
      }
      case 3: {
        unsigned op3 = bits(word, 24, 19);
        inst.op = t.mem[op3];
        if (inst.op == Op::Invalid)
            return Instruction{};
        inst.rd = bits(word, 29, 25);
        inst.rs1 = bits(word, 18, 14);
        inst.iflag = bits(word, 13, 13);
        if (inst.iflag)
            inst.simm13 = sext(bits(word, 12, 0), 13);
        else
            inst.rs2 = bits(word, 4, 0);
        return inst;
      }
    }
    return Instruction{};
}

} // namespace eel::isa
