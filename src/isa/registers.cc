#include "src/isa/registers.hh"

#include "src/support/logging.hh"

namespace eel::isa {

std::string
regName(RegId r)
{
    switch (r.cls) {
      case RegClass::Int: {
        static const char *groups = "goli";
        return strfmt("%%%c%u", groups[r.idx / 8], r.idx % 8);
      }
      case RegClass::Fp:
        return strfmt("%%f%u", r.idx);
      case RegClass::Icc:
        return "%icc";
      case RegClass::Fcc:
        return "%fcc";
      case RegClass::Y:
        return "%y";
      default:
        return "%none";
    }
}

} // namespace eel::isa
