/**
 * @file
 * Convenience constructors for instructions, used by tests, the
 * workload generator, and instrumentation snippets. All functions
 * return fully-populated Instruction values ready for encode().
 */

#ifndef EEL_ISA_BUILDER_HH
#define EEL_ISA_BUILDER_HH

#include "src/isa/instruction.hh"

namespace eel::isa::build {

/** Three-register ALU op: op rd, rs1, rs2. */
inline Instruction
rrr(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    return in;
}

/** Register-immediate ALU op: op rd, rs1, simm13. */
inline Instruction
rri(Op op, uint8_t rd, uint8_t rs1, int32_t imm)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.iflag = true;
    in.simm13 = imm;
    return in;
}

inline Instruction
nop()
{
    Instruction in;
    in.op = Op::Nop;
    return in;
}

/** sethi %hi(value), rd — value's low 10 bits are discarded. */
inline Instruction
sethi(uint8_t rd, uint32_t value)
{
    Instruction in;
    in.op = Op::Sethi;
    in.rd = rd;
    in.imm22 = value >> 10;
    return in;
}

/** mov imm, rd (or %g0 + imm). */
inline Instruction
movi(uint8_t rd, int32_t imm)
{
    return rri(Op::Or, rd, 0, imm);
}

/** mov rs, rd. */
inline Instruction
mov(uint8_t rd, uint8_t rs)
{
    return rrr(Op::Or, rd, 0, rs);
}

/** Load/store with register+immediate address. */
inline Instruction
memi(Op op, uint8_t rd, uint8_t rs1, int32_t imm)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.iflag = true;
    in.simm13 = imm;
    return in;
}

/** Load/store with register+register address. */
inline Instruction
memr(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    Instruction in;
    in.op = op;
    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;
    return in;
}

/** Conditional branch; disp in instructions. */
inline Instruction
bicc(uint8_t cond_code, int32_t disp_insts, bool annul = false)
{
    Instruction in;
    in.op = Op::Bicc;
    in.cond = cond_code;
    in.disp = disp_insts;
    in.annul = annul;
    return in;
}

inline Instruction
fbfcc(uint8_t cond_code, int32_t disp_insts, bool annul = false)
{
    Instruction in;
    in.op = Op::Fbfcc;
    in.cond = cond_code;
    in.disp = disp_insts;
    in.annul = annul;
    return in;
}

inline Instruction
ba(int32_t disp_insts)
{
    return bicc(cond::a, disp_insts);
}

inline Instruction
call(int32_t disp_insts)
{
    Instruction in;
    in.op = Op::Call;
    in.disp = disp_insts;
    return in;
}

/** ret: jmpl %i7 + 8, %g0. */
inline Instruction
ret()
{
    return rri(Op::Jmpl, reg::g0, reg::i7, 8);
}

/** retl: jmpl %o7 + 8, %g0 (leaf return). */
inline Instruction
retl()
{
    return rri(Op::Jmpl, reg::g0, reg::o7, 8);
}

/** save %sp, -frame, %sp. */
inline Instruction
save(int32_t frame_bytes)
{
    return rri(Op::Save, reg::sp, reg::sp, -frame_bytes);
}

inline Instruction
restore()
{
    return rrr(Op::Restore, reg::g0, reg::g0, reg::g0);
}

/** cmp rs1, rs2 == subcc rs1, rs2, %g0. */
inline Instruction
cmp(uint8_t rs1, uint8_t rs2)
{
    return rrr(Op::Subcc, reg::g0, rs1, rs2);
}

inline Instruction
cmpi(uint8_t rs1, int32_t imm)
{
    return rri(Op::Subcc, reg::g0, rs1, imm);
}

/** Floating point binary op: op frd, frs1, frs2. */
inline Instruction
fp3(Op op, uint8_t frd, uint8_t frs1, uint8_t frs2)
{
    Instruction in;
    in.op = op;
    in.rd = frd;
    in.rs1 = frs1;
    in.rs2 = frs2;
    return in;
}

/** Floating point unary op: op frd, frs2. */
inline Instruction
fp2(Op op, uint8_t frd, uint8_t frs2)
{
    Instruction in;
    in.op = op;
    in.rd = frd;
    in.rs2 = frs2;
    return in;
}

/** fcmps/fcmpd frs1, frs2. */
inline Instruction
fcmp(Op op, uint8_t frs1, uint8_t frs2)
{
    Instruction in;
    in.op = op;
    in.rs1 = frs1;
    in.rs2 = frs2;
    return in;
}

/** Software trap: ta number. */
inline Instruction
ta(int32_t number)
{
    Instruction in;
    in.op = Op::Ticc;
    in.cond = cond::a;
    in.iflag = true;
    in.simm13 = number;
    return in;
}

} // namespace eel::isa::build

#endif // EEL_ISA_BUILDER_HH
