#include "src/qpt/tracer.hh"

#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::qpt {

using edit::Block;
using edit::Routine;

namespace {

sched::InstSeq
traceSnippet(uint32_t buf, uint32_t id, const TraceOptions &opts)
{
    using namespace isa::build;
    int32_t lo = static_cast<int32_t>(buf & 0x3ff);
    sched::InstSeq seq;
    auto push = [&](isa::Instruction inst) {
        sched::InstRef ref;
        ref.inst = inst;
        ref.isInstrumentation = true;
        seq.push_back(ref);
    };
    push(sethi(opts.scratch1, buf));
    push(memi(isa::Op::Ld, opts.scratch2, opts.scratch1, lo));
    if (id < 4096) {
        push(rri(isa::Op::Or, opts.scratch3, isa::reg::g0,
                 static_cast<int32_t>(id)));
    } else {
        push(sethi(opts.scratch3, id));
        push(rri(isa::Op::Or, opts.scratch3, opts.scratch3,
                 static_cast<int32_t>(id & 0x3ff)));
    }
    // The cursor is an absolute-offset from the buffer base, so the
    // sethi'd base plus cursor addresses the slot directly. The low
    // bits of buf are folded into the initial cursor value instead.
    push(memr(isa::Op::St, opts.scratch3, opts.scratch1,
              opts.scratch2));
    push(rri(isa::Op::Add, opts.scratch2, opts.scratch2, 4));
    push(memi(isa::Op::St, opts.scratch2, opts.scratch1, lo));
    return seq;
}

} // namespace

TracePlan
makeTracePlan(exe::Executable &x,
              const std::vector<Routine> &routines,
              const TraceOptions &opts)
{
    TracePlan out;
    out.idOf.resize(routines.size());

    out.bufferBytes = 8 + 4 * opts.maxEvents;
    out.bufferBase = x.addBss("__qpt_trace", out.bufferBytes);

    // The cursor lives in word 0 of the buffer and is an offset from
    // the sethi'd (1KB-aligned-down) base, so a store through
    // [base + cursor] lands in the buffer directly. bss is
    // zero-initialized, so the program's entry block gets three extra
    // seed instructions that set the cursor to %lo(buf) + 4 (the
    // first data slot) before its own trace record — making traced
    // executables fully self-contained.
    // Locate the program's entry block for cursor seeding.
    size_t entry_ri = routines.size();
    int entry_bi = -1;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        if (routines[ri].entry == x.entry) {
            entry_ri = ri;
            entry_bi = routines[ri].blockAt(x.entry);
        }
    }
    if (entry_bi < 0)
        fatal("tracer: no routine starts at the entry point");

    uint32_t id = 0;
    int32_t lo = static_cast<int32_t>(out.bufferBase & 0x3ff);
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        out.idOf[ri].assign(routines[ri].blocks.size(), 0);
        for (const Block &b : routines[ri].blocks) {
            out.idOf[ri][b.id] = id;
            sched::InstSeq snip =
                traceSnippet(out.bufferBase, id, opts);
            if (ri == entry_ri &&
                b.id == static_cast<uint32_t>(entry_bi)) {
                // Seed the cursor before the entry block's record.
                using namespace isa::build;
                sched::InstSeq seed;
                auto push = [&](isa::Instruction inst) {
                    sched::InstRef ref;
                    ref.inst = inst;
                    ref.isInstrumentation = true;
                    seed.push_back(ref);
                };
                push(sethi(opts.scratch1, out.bufferBase));
                push(rri(isa::Op::Or, opts.scratch2, isa::reg::g0,
                         lo + 4));
                push(memi(isa::Op::St, opts.scratch2, opts.scratch1,
                          lo));
                seed.insert(seed.end(), snip.begin(), snip.end());
                snip = std::move(seed);
            }
            out.plan.add(ri, b.id, std::move(snip));
            ++id;
            ++out.tracedBlocks;
        }
    }
    return out;
}

std::vector<TraceEvent>
readTrace(const sim::Emulator &emu, const TracePlan &plan)
{
    // The cursor is an offset from the sethi'd base (buffer address
    // with its low 10 bits cleared).
    uint32_t lo = plan.bufferBase & 0x3ff;
    uint32_t cursor = emu.readWord(plan.bufferBase);
    if (cursor < lo + 4)
        fatal("trace buffer cursor missing: the traced program did "
              "not run its entry block");
    uint32_t first = plan.bufferBase + 4;
    uint32_t end = (plan.bufferBase - lo) + cursor;

    // Invert (routine, block) -> id.
    std::vector<TraceEvent> byId;
    for (size_t ri = 0; ri < plan.idOf.size(); ++ri)
        for (size_t bi = 0; bi < plan.idOf[ri].size(); ++bi) {
            uint32_t id = plan.idOf[ri][bi];
            if (id >= byId.size())
                byId.resize(id + 1);
            byId[id] = TraceEvent{static_cast<uint32_t>(ri),
                                  static_cast<uint32_t>(bi)};
        }

    std::vector<TraceEvent> out;
    for (uint32_t a = first; a < end; a += 4) {
        uint32_t id = emu.readWord(a);
        if (id >= byId.size())
            fatal("trace buffer corrupt: block id %u out of range",
                  id);
        out.push_back(byId[id]);
    }
    return out;
}

} // namespace eel::qpt
