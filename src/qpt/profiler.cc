#include "src/qpt/profiler.hh"

#include "src/eel/liveness.hh"

#include <memory>

#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::qpt {

using edit::Block;
using edit::Routine;

sched::InstSeq
counterSnippet(uint32_t addr, const ProfileOptions &opts)
{
    using namespace isa::build;
    int32_t lo = static_cast<int32_t>(addr & 0x3ff);
    sched::InstSeq seq;
    auto push = [&](isa::Instruction inst, bool is_mem = false) {
        sched::InstRef ref;
        ref.inst = inst;
        ref.isInstrumentation = true;
        if (is_mem) {
            // Tag the counter access with its (unique) address so
            // the dependence graph can prove two blocks' counters
            // independent — the load side of a later block's
            // counter may then hoist past an earlier block's store
            // (sched::DepGraph, superblock scheduling). The tag
            // also marks the load as known-valid, i.e. safe to
            // speculate above a side exit.
            ref.memTag = static_cast<int32_t>(addr);
        }
        seq.push_back(ref);
    };
    push(sethi(opts.scratch1, addr));
    push(memi(isa::Op::Ld, opts.scratch2, opts.scratch1, lo), true);
    push(rri(isa::Op::Add, opts.scratch2, opts.scratch2, 1));
    push(memi(isa::Op::St, opts.scratch2, opts.scratch1, lo), true);
    return seq;
}

namespace {

/** Unique successor of b within its routine, or -1. */
int
uniqueSucc(const Block &b)
{
    int s = -1;
    if (b.takenSucc >= 0)
        s = b.takenSucc;
    if (b.fallSucc >= 0) {
        if (s >= 0 && s != b.fallSucc)
            return -1;
        s = b.fallSucc;
    }
    return s;
}

} // namespace

ProfilePlan
makePlan(exe::Executable &x, const std::vector<Routine> &routines,
         const ProfileOptions &opts)
{
    ProfilePlan out;
    out.counterOf.resize(routines.size());
    out.partner.resize(routines.size());

    // Decide which blocks can skip instrumentation. A block may
    // borrow the count of a partner that is itself instrumented;
    // once a block serves as a partner it is locked in.
    std::vector<std::vector<bool>> skipped(routines.size());
    std::vector<std::vector<bool>> locked(routines.size());
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        skipped[ri].assign(routines[ri].blocks.size(), false);
        locked[ri].assign(routines[ri].blocks.size(), false);
        out.partner[ri].assign(routines[ri].blocks.size(), {-1, -1});
    }

    if (opts.skipRedundantBlocks) {
        for (size_t ri = 0; ri < routines.size(); ++ri) {
            const Routine &r = routines[ri];
            for (const Block &b : r.blocks) {
                if (locked[ri][b.id])
                    continue;
                // A routine's entry block has an invisible
                // predecessor (its callers), so it can neither skip
                // via its intra-routine predecessor nor serve as a
                // "single-entry successor".
                bool is_entry = b.startAddr == r.entry;
                // Single instrumented single-exit predecessor.
                if (!is_entry && b.preds.size() == 1) {
                    uint32_t p = b.preds[0];
                    if (!skipped[ri][p] &&
                        uniqueSucc(r.blocks[p]) ==
                            static_cast<int>(b.id)) {
                        skipped[ri][b.id] = true;
                        locked[ri][p] = true;
                        out.partner[ri][b.id] = {
                            static_cast<int>(ri),
                            static_cast<int>(p)};
                        continue;
                    }
                }
                // Single instrumented single-entry successor.
                int s = uniqueSucc(b);
                if (s >= 0 && !skipped[ri][s] &&
                    r.blocks[s].startAddr != r.entry &&
                    r.blocks[s].preds.size() == 1) {
                    skipped[ri][b.id] = true;
                    locked[ri][s] = true;
                    out.partner[ri][b.id] = {static_cast<int>(ri), s};
                }
            }
        }
    }

    // Count instrumented blocks and reserve the counter array.
    uint32_t n = 0;
    for (size_t ri = 0; ri < routines.size(); ++ri)
        for (const Block &b : routines[ri].blocks)
            if (!skipped[ri][b.id])
                ++n, (void)b;
    out.numCounters = n;
    out.counterBase = x.addBss("__qpt_counters", 4 * n);

    uint32_t idx = 0;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        const Routine &r = routines[ri];
        out.counterOf[ri].assign(r.blocks.size(), -1);
        out.totalBlocks += r.blocks.size();
        std::unique_ptr<edit::Liveness> live;
        if (opts.scavengeRegisters)
            live = std::make_unique<edit::Liveness>(r);
        for (const Block &b : r.blocks) {
            if (skipped[ri][b.id])
                continue;
            out.counterOf[ri][b.id] = static_cast<int>(idx);
            uint32_t addr = out.counterBase + 4 * idx;
            ProfileOptions block_opts = opts;
            if (live) {
                uint8_t dead[2];
                if (live->pick(b.id, 2, dead) == 2) {
                    block_opts.scratch1 = dead[0];
                    block_opts.scratch2 = dead[1];
                    ++out.scavengedBlocks;
                }
            }
            out.plan.add(ri, b.id, counterSnippet(addr, block_opts));
            ++idx;
            ++out.instrumentedBlocks;
        }
    }
    return out;
}

namespace {

/** Shared by the emulator- and snapshot-backed readers. */
template <class ReadWord>
std::vector<std::vector<uint64_t>>
readCountsWith(const ReadWord &readWord, const ProfilePlan &plan)
{
    std::vector<std::vector<uint64_t>> counts(plan.counterOf.size());
    for (size_t ri = 0; ri < plan.counterOf.size(); ++ri) {
        counts[ri].assign(plan.counterOf[ri].size(), 0);
        for (size_t bi = 0; bi < plan.counterOf[ri].size(); ++bi) {
            int c = plan.counterOf[ri][bi];
            if (c >= 0)
                counts[ri][bi] =
                    readWord(plan.counterBase + 4 * c);
        }
    }
    // Skipped blocks borrow their partner's count (partners are
    // always instrumented, so one hop suffices).
    for (size_t ri = 0; ri < plan.counterOf.size(); ++ri) {
        for (size_t bi = 0; bi < plan.counterOf[ri].size(); ++bi) {
            if (plan.counterOf[ri][bi] >= 0)
                continue;
            auto [pr, pb] = plan.partner[ri][bi];
            if (pr >= 0)
                counts[ri][bi] = counts[pr][pb];
        }
    }
    return counts;
}

} // namespace

std::vector<std::vector<uint64_t>>
readCounts(const sim::Emulator &emu, const ProfilePlan &plan)
{
    return readCountsWith(
        [&](uint32_t addr) { return emu.readWord(addr); }, plan);
}

std::vector<std::vector<uint64_t>>
readCounts(const sim::Emulator::ArchSnapshot &state,
           const ProfilePlan &plan)
{
    // The counter array lives in bss, i.e. inside the data image.
    return readCountsWith(
        [&](uint32_t addr) -> uint64_t {
            size_t off = addr - exe::dataBase;
            if (off + 4 > state.dataMem.size())
                fatal("qpt: counter at 0x%x outside snapshot", addr);
            return (uint32_t(state.dataMem[off]) << 24) |
                   (uint32_t(state.dataMem[off + 1]) << 16) |
                   (uint32_t(state.dataMem[off + 2]) << 8) |
                   uint32_t(state.dataMem[off + 3]);
        },
        plan);
}

} // namespace eel::qpt
