#include "src/qpt/edge_profiler.hh"

#include <algorithm>
#include <numeric>

#include "src/support/logging.hh"

namespace eel::qpt {

using edit::Block;
using edit::Routine;

namespace {

/** Union-find over the routine's blocks plus the virtual node. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }
    size_t
    find(size_t x)
    {
        while (parent[x] != x)
            x = parent[x] = parent[parent[x]];
        return x;
    }
    bool
    unite(size_t a, size_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent[a] = b;
        return true;
    }

  private:
    std::vector<size_t> parent;
};

/** Enumerate a routine's edges, virtual edges included. */
std::vector<Edge>
enumerateEdges(const Routine &r)
{
    std::vector<Edge> out;
    int entry = r.blockAt(r.entry);
    out.push_back(Edge{Edge::Kind::Entry, -1, entry, -1});
    for (const Block &b : r.blocks) {
        if (b.takenSucc >= 0)
            out.push_back(Edge{Edge::Kind::Taken,
                               static_cast<int>(b.id), b.takenSucc,
                               -1});
        if (b.fallSucc >= 0)
            out.push_back(Edge{Edge::Kind::Fall,
                               static_cast<int>(b.id), b.fallSucc,
                               -1});
        if (b.takenSucc < 0 && b.fallSucc < 0)
            out.push_back(Edge{Edge::Kind::Return,
                               static_cast<int>(b.id), -1, -1});
    }
    return out;
}

/**
 * Preference for keeping an edge on the (uninstrumented) tree.
 * Ball-Larus places counters to minimize expected cost using a
 * maximum spanning tree over edge frequencies; lacking a prior
 * profile we use the classic static estimate that loop back edges
 * are hot, keeping them uncounted whenever possible.
 */
int
treePreference(const Edge &e)
{
    if (e.kind == Edge::Kind::Entry)
        return 0;  // must be on the tree
    bool back = e.to >= 0 && e.from >= 0 && e.to <= e.from;
    if (back)
        return 1;  // presumed hot: keep on the tree
    switch (e.kind) {
      case Edge::Kind::Return: return 2;  // block placement is cheap
      case Edge::Kind::Fall: return 3;
      case Edge::Kind::Taken: return 4;   // trampolines cost most
      default: return 5;
    }
}

} // namespace

EdgeProfilePlan
makeEdgePlan(exe::Executable &x,
             const std::vector<Routine> &routines,
             const ProfileOptions &opts)
{
    EdgeProfilePlan out;
    out.edges.resize(routines.size());

    // First pass: spanning trees and counter numbering.
    uint32_t next_counter = 0;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        const Routine &r = routines[ri];
        std::vector<Edge> edges = enumerateEdges(r);
        const size_t virt = r.blocks.size();

        std::vector<size_t> order(edges.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return treePreference(edges[a]) <
                                    treePreference(edges[b]);
                         });

        UnionFind uf(virt + 1);
        auto node = [&](int b) {
            return b < 0 ? virt : static_cast<size_t>(b);
        };
        for (size_t i : order) {
            Edge &e = edges[i];
            if (uf.unite(node(e.from), node(e.to)))
                continue;  // stays on the tree, no counter
            if (e.kind == Edge::Kind::Entry)
                panic("edge profiler: entry edge not on the tree");
            e.counter = static_cast<int>(next_counter++);
            ++out.instrumentedEdges;
        }
        out.totalEdges += edges.size();
        out.edges[ri] = std::move(edges);
    }

    out.numCounters = next_counter;
    out.counterBase = x.addBss("__qpt_edge_counters",
                               4 * next_counter);

    // Second pass: place the counters.
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        for (const Edge &e : out.edges[ri]) {
            if (e.counter < 0)
                continue;
            uint32_t addr = out.counterBase + 4 * e.counter;
            sched::InstSeq snip = counterSnippet(addr, opts);
            switch (e.kind) {
              case Edge::Kind::Fall:
                out.plan.addFallEdge(ri, e.from, std::move(snip));
                break;
              case Edge::Kind::Taken:
                out.plan.addTakenEdge(ri, e.from, std::move(snip));
                break;
              case Edge::Kind::Return:
                // A return block's only out-edge is the return, so a
                // block counter measures the edge exactly.
                out.plan.add(ri, e.from, std::move(snip));
                break;
              case Edge::Kind::Entry:
                panic("edge profiler: entry edge instrumented");
            }
        }
    }
    return out;
}

std::vector<std::vector<uint64_t>>
readEdgeCounts(const sim::Emulator &emu, const EdgeProfilePlan &plan,
               const std::vector<Routine> &routines)
{
    std::vector<std::vector<uint64_t>> out(plan.edges.size());
    for (size_t ri = 0; ri < plan.edges.size(); ++ri) {
        const std::vector<Edge> &edges = plan.edges[ri];
        const size_t virt = routines[ri].blocks.size();
        std::vector<uint64_t> counts(edges.size(), 0);
        std::vector<bool> known(edges.size(), false);

        for (size_t i = 0; i < edges.size(); ++i) {
            if (edges[i].counter >= 0) {
                counts[i] = emu.readWord(
                    plan.counterBase + 4 * edges[i].counter);
                known[i] = true;
            }
        }

        // Leaf elimination over the spanning tree: any node with a
        // single unknown incident edge determines it by flow
        // conservation (inflow == outflow).
        auto node = [&](int b) {
            return b < 0 ? virt : static_cast<size_t>(b);
        };
        bool progress = true;
        while (progress) {
            progress = false;
            for (size_t v = 0; v <= virt; ++v) {
                int unknown = -1;
                int64_t balance = 0;  // inflow - outflow over known
                int n_unknown = 0;
                for (size_t i = 0; i < edges.size(); ++i) {
                    bool in = node(edges[i].to) == v;
                    bool outg = node(edges[i].from) == v;
                    if (!in && !outg)
                        continue;
                    if (!known[i]) {
                        ++n_unknown;
                        unknown = static_cast<int>(i);
                        // In == out for self loops: never unknown-
                        // solvable from this node alone, but a self
                        // loop is never a tree edge either.
                        continue;
                    }
                    if (in)
                        balance += static_cast<int64_t>(counts[i]);
                    if (outg)
                        balance -= static_cast<int64_t>(counts[i]);
                }
                if (n_unknown == 1) {
                    bool in = node(edges[unknown].to) == v;
                    int64_t c = in ? -balance : balance;
                    if (c < 0)
                        c = 0;  // main's trap exit (see header)
                    counts[unknown] = static_cast<uint64_t>(c);
                    known[unknown] = true;
                    progress = true;
                }
            }
        }
        for (size_t i = 0; i < edges.size(); ++i)
            if (!known[i])
                panic("edge profiler: unsolvable tree edge in "
                      "routine %zu", ri);
        out[ri] = std::move(counts);
    }
    return out;
}

std::vector<std::vector<uint64_t>>
blockCountsFromEdges(
    const std::vector<std::vector<uint64_t>> &edge_counts,
    const EdgeProfilePlan &plan,
    const std::vector<Routine> &routines)
{
    std::vector<std::vector<uint64_t>> out(routines.size());
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        out[ri].assign(routines[ri].blocks.size(), 0);
        const std::vector<Edge> &edges = plan.edges[ri];
        for (size_t i = 0; i < edges.size(); ++i)
            if (edges[i].to >= 0)
                out[ri][edges[i].to] += edge_counts[ri][i];
    }
    return out;
}

std::vector<edit::RoutineEdgeCounts>
exportEdgeCounts(const std::vector<std::vector<uint64_t>> &edge_counts,
                 const EdgeProfilePlan &plan,
                 const std::vector<edit::Routine> &routines)
{
    std::vector<edit::RoutineEdgeCounts> out(routines.size());
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        out[ri].assign(routines[ri].blocks.size(),
                       edit::BlockEdgeCounts{});
        const std::vector<Edge> &edges = plan.edges[ri];
        for (size_t i = 0; i < edges.size(); ++i) {
            uint64_t c = edge_counts[ri][i];
            const Edge &e = edges[i];
            if (e.from >= 0) {
                if (e.kind == Edge::Kind::Fall)
                    out[ri][e.from].fall += c;
                else if (e.kind == Edge::Kind::Taken)
                    out[ri][e.from].taken += c;
            }
            if (e.to >= 0)
                out[ri][e.to].exec += c;
        }
    }
    return out;
}

} // namespace eel::qpt
