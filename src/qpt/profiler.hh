/**
 * @file
 * QPT2-style slow profiling (paper §4.2): insert a four-instruction
 * sequence — set immediate, load, add, store — into most basic
 * blocks, counting block executions in a counter array added to the
 * executable. Blocks with a single instrumented single-exit
 * predecessor or a single instrumented single-entry successor are
 * not instrumented; their counts are reconstructed from the partner
 * block after the run.
 *
 * The counter sequence uses the reserved scratch registers %g6/%g7,
 * which generated workloads never touch (machines/README.md).
 */

#ifndef EEL_QPT_PROFILER_HH
#define EEL_QPT_PROFILER_HH

#include <vector>

#include "src/eel/editor.hh"
#include "src/sim/emulator.hh"

namespace eel::qpt {

struct ProfileOptions
{
    /** Apply the redundant-block optimization described in §4.2. */
    bool skipRedundantBlocks = true;
    /**
     * Scavenge dead registers per block (edit::Liveness) instead of
     * always using the reserved scratch pair, as the original qpt
     * did. Blocks with fewer than two dead registers fall back to
     * scratch1/scratch2.
     */
    bool scavengeRegisters = false;
    uint8_t scratch1 = isa::reg::g6;
    uint8_t scratch2 = isa::reg::g7;
};

/** Where each block's count lives after instrumentation. */
struct ProfilePlan
{
    edit::InstrumentationPlan plan;
    uint32_t counterBase = 0;
    uint32_t numCounters = 0;
    /**
     * counterOf[routine][block]: counter index, or -1 when skipped.
     * partner[routine][block]: the (routine, block) whose count
     * equals this block's when skipped.
     */
    std::vector<std::vector<int>> counterOf;
    std::vector<std::vector<std::pair<int, int>>> partner;
    uint64_t instrumentedBlocks = 0;
    uint64_t totalBlocks = 0;
    /** Blocks whose snippet uses scavenged (dead) registers. */
    uint64_t scavengedBlocks = 0;
};

/**
 * Build the instrumentation plan. Adds the counter array to x's bss
 * (so call this on the executable that will be rewritten).
 */
ProfilePlan makePlan(exe::Executable &x,
                     const std::vector<edit::Routine> &routines,
                     const ProfileOptions &opts = {});

/**
 * Read the per-block execution counts out of a finished emulator,
 * reconstructing skipped blocks from their partners.
 */
std::vector<std::vector<uint64_t>>
readCounts(const sim::Emulator &emu, const ProfilePlan &plan);

/**
 * As above, but from a captured architectural snapshot — the form a
 * sharded run hands back (sim::ShardedRun::finalState), where the
 * counter array is part of the merged data image rather than a live
 * emulator.
 */
std::vector<std::vector<uint64_t>>
readCounts(const sim::Emulator::ArchSnapshot &state,
           const ProfilePlan &plan);

/** The 4-instruction counter snippet for a counter at addr. */
sched::InstSeq counterSnippet(uint32_t addr, const ProfileOptions &opts);

} // namespace eel::qpt

#endif // EEL_QPT_PROFILER_HH
