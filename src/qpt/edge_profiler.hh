/**
 * @file
 * QPT2's "fast" profiling: Ball-Larus edge profiling (the paper's
 * citation [2], Ball & Larus, "Optimally Profiling and Tracing
 * Programs", TOPLAS 1994). Instead of counting every basic block,
 * counters are placed only on the edges *not* on a spanning tree of
 * each routine's CFG (closed with a virtual node connecting the
 * entry and every return); the remaining edge counts — and from
 * them, all block counts — are reconstructed by flow conservation
 * after the run.
 *
 * Edge placement uses the editor's edge instrumentation: counters on
 * fall-through edges are laid out between the blocks; counters on
 * taken edges become branch trampolines; counters on the virtual
 * entry/return edges degenerate to block placements.
 */

#ifndef EEL_QPT_EDGE_PROFILER_HH
#define EEL_QPT_EDGE_PROFILER_HH

#include <vector>

#include "src/eel/editor.hh"
#include "src/qpt/profiler.hh"
#include "src/sim/emulator.hh"

namespace eel::qpt {

/** One CFG edge of a routine, plus the virtual entry/exit edges. */
struct Edge
{
    enum class Kind : uint8_t { Fall, Taken, Entry, Return };
    Kind kind;
    int from;     ///< block id (-1 = virtual node for Entry)
    int to;       ///< block id (-1 = virtual node for Return)
    int counter;  ///< counter index, or -1 when on the spanning tree
};

struct EdgeProfilePlan
{
    edit::InstrumentationPlan plan;
    uint32_t counterBase = 0;
    uint32_t numCounters = 0;
    std::vector<std::vector<Edge>> edges;  ///< per routine
    uint64_t totalEdges = 0;
    uint64_t instrumentedEdges = 0;
};

/**
 * Build the edge-profiling plan: spanning trees, counter placement,
 * and the instrumentation plan. Adds the counter array to x's bss.
 */
EdgeProfilePlan
makeEdgePlan(exe::Executable &x,
             const std::vector<edit::Routine> &routines,
             const ProfileOptions &opts = {});

/** Reconstructed counts for every edge, tree edges included. */
std::vector<std::vector<uint64_t>>
readEdgeCounts(const sim::Emulator &emu, const EdgeProfilePlan &plan,
               const std::vector<edit::Routine> &routines);

/** Per-block execution counts derived from the edge counts. */
std::vector<std::vector<uint64_t>>
blockCountsFromEdges(const std::vector<std::vector<uint64_t>> &edge_counts,
                     const EdgeProfilePlan &plan,
                     const std::vector<edit::Routine> &routines);

/**
 * Fold reconstructed edge counts into the per-block form trace
 * formation consumes (edit::BlockEdgeCounts: fall / taken / exec
 * per block, indexed by routine and block id).
 */
std::vector<edit::RoutineEdgeCounts>
exportEdgeCounts(const std::vector<std::vector<uint64_t>> &edge_counts,
                 const EdgeProfilePlan &plan,
                 const std::vector<edit::Routine> &routines);

} // namespace eel::qpt

#endif // EEL_QPT_EDGE_PROFILER_HH
