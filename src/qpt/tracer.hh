/**
 * @file
 * Program tracing — the capability qpt is named for (citation [9],
 * Larus, "Efficient Program Tracing", IEEE Computer 1993). Every
 * instrumented block appends its id to an in-memory trace buffer;
 * after the run the buffer replays the program's dynamic basic-block
 * sequence, from which the full instruction and address trace can be
 * regenerated.
 *
 * The per-block snippet is six instructions using the reserved
 * scratch registers %g5-%g7:
 *
 *     sethi %hi(buf), %g6
 *     ld    [%g6 + %lo(buf)], %g7    ! current offset (word 0)
 *     or    %g0, id, %g5             ! block id (sethi/or if large)
 *     st    %g5, [%g6 + %g7]         ! append
 *     add   %g7, 4, %g7
 *     st    %g7, [%g6 + %lo(buf)]
 *
 * Like the original qpt, tracing pairs naturally with the scheduler:
 * the snippet is ordinary straight-line code the editor can
 * interleave with the block.
 */

#ifndef EEL_QPT_TRACER_HH
#define EEL_QPT_TRACER_HH

#include <vector>

#include "src/eel/editor.hh"
#include "src/sim/emulator.hh"

namespace eel::qpt {

struct TraceOptions
{
    /** Maximum trace entries; the buffer is sized for this. Runs
     *  that would overflow it abort with a memory fault rather than
     *  silently wrapping. */
    uint32_t maxEvents = 1u << 20;
    uint8_t scratch1 = isa::reg::g6;  ///< buffer base
    uint8_t scratch2 = isa::reg::g7;  ///< offset cursor
    uint8_t scratch3 = isa::reg::g5;  ///< block id
};

struct TracePlan
{
    edit::InstrumentationPlan plan;
    uint32_t bufferBase = 0;
    uint32_t bufferBytes = 0;
    /** Global block id of (routine, block): id = idOf[ri][bi]. */
    std::vector<std::vector<uint32_t>> idOf;
    uint64_t tracedBlocks = 0;
};

/** One replayed trace event. */
struct TraceEvent
{
    uint32_t routine;
    uint32_t block;

    bool operator==(const TraceEvent &) const = default;
};

/**
 * Build the tracing plan: one snippet per block, a buffer in bss.
 * Adds the buffer to x (call on the executable to be rewritten).
 */
TracePlan makeTracePlan(exe::Executable &x,
                        const std::vector<edit::Routine> &routines,
                        const TraceOptions &opts = {});

/** Replay the recorded block sequence from a finished emulator. */
std::vector<TraceEvent>
readTrace(const sim::Emulator &emu, const TracePlan &plan);

} // namespace eel::qpt

#endif // EEL_QPT_TRACER_HH
