/**
 * @file
 * Deterministic random number generation for workload synthesis.
 * All randomness in the repository flows through Rng so experiments
 * are reproducible run-to-run.
 */

#ifndef EEL_SUPPORT_RNG_HH
#define EEL_SUPPORT_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace eel {

/** Seeded pseudo-random source with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniform(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine);
    }

    /** Uniform real in [0, 1). */
    double real01() { return std::uniform_real_distribution<>()(engine); }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return real01() < p; }

    /** Geometric-ish draw with the given mean, at least min_val. */
    int64_t
    geometric(double mean, int64_t min_val)
    {
        if (mean <= double(min_val))
            return min_val;
        double p = 1.0 / (mean - double(min_val) + 1.0);
        std::geometric_distribution<int64_t> d(p);
        return min_val + d(engine);
    }

    /** Pick a random element index given weights. */
    size_t weightedPick(const std::vector<double> &weights);

    /** Split off an independent child stream. */
    Rng
    fork()
    {
        return Rng(std::uniform_int_distribution<uint64_t>()(engine));
    }

    std::mt19937_64 engine;
};

} // namespace eel

#endif // EEL_SUPPORT_RNG_HH
