/**
 * @file
 * Small string utilities shared across the repository.
 */

#ifndef EEL_SUPPORT_STR_HH
#define EEL_SUPPORT_STR_HH

#include <string>
#include <string_view>
#include <vector>

namespace eel {

/** Split s on any character in seps, dropping empty pieces. */
std::vector<std::string> split(std::string_view s, std::string_view seps);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** True if s starts with prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Join pieces with sep. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

} // namespace eel

#endif // EEL_SUPPORT_STR_HH
