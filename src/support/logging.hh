/**
 * @file
 * Status and error reporting in the gem5 tradition: inform/warn for
 * status, fatal for user errors, panic for internal invariant
 * violations.
 *
 * inform()/warn() are thin shims over the leveled obs logger
 * (src/obs/log.hh): they emit at Info/Warn and honor the EEL_LOG
 * environment override, so EEL_LOG=warn silences status chatter and
 * EEL_LOG=silent mutes everything. New code should call obs::logf()
 * directly (it adds Debug and Error levels); this header stays for
 * the existing call sites and for fatal/panic/strfmt.
 */

#ifndef EEL_SUPPORT_LOGGING_HH
#define EEL_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace eel {

/** Exception thrown by fatal(): the user asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that is the user's fault (bad input file, invalid
 * option) by throwing FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that should never happen regardless of input —
 * an internal bug — by throwing PanicError.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace eel

#endif // EEL_SUPPORT_LOGGING_HH
