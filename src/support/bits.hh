/**
 * @file
 * Bit-manipulation helpers for fixed-width instruction encodings.
 */

#ifndef EEL_SUPPORT_BITS_HH
#define EEL_SUPPORT_BITS_HH

#include <cstdint>

namespace eel {

/** Extract bits [hi:lo] (inclusive, hi >= lo) of val. */
constexpr uint32_t
bits(uint32_t val, unsigned hi, unsigned lo)
{
    uint32_t mask = (hi - lo >= 31) ? 0xffffffffu
                                    : ((1u << (hi - lo + 1)) - 1u);
    return (val >> lo) & mask;
}

/** Insert the low (hi-lo+1) bits of field into bits [hi:lo] of base. */
constexpr uint32_t
insertBits(uint32_t base, unsigned hi, unsigned lo, uint32_t field)
{
    uint32_t mask = (hi - lo >= 31) ? 0xffffffffu
                                    : ((1u << (hi - lo + 1)) - 1u);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low nbits of val to 32 bits. */
constexpr int32_t
sext(uint32_t val, unsigned nbits)
{
    uint32_t m = 1u << (nbits - 1);
    uint32_t x = val & ((nbits >= 32) ? 0xffffffffu : ((1u << nbits) - 1u));
    return static_cast<int32_t>((x ^ m) - m);
}

/** True if val fits in a signed nbits-wide immediate. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    int64_t lim = int64_t(1) << (nbits - 1);
    return val >= -lim && val < lim;
}

} // namespace eel

#endif // EEL_SUPPORT_BITS_HH
