#include "src/support/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <string>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"

namespace eel::support {

namespace {

/** The pool (if any) whose worker is running the current thread. */
thread_local const ThreadPool *currentPool = nullptr;

} // namespace

/**
 * One parallelFor invocation. Heap-allocated and held by shared_ptr
 * so a worker that wakes late — after the batch drained and a new
 * one was published — still sees its own queues (it then finds
 * every deque empty and exits without touching the stale functor).
 *
 * Items are dealt round-robin across one deque per thread slot.
 * Each slot is owned by exactly one thread (the submitting caller is
 * slot 0, workers are 1..n-1), which pops from the front; a thread
 * whose deque is empty steals the back half of a victim's. The
 * per-deque mutex is uncontended except during steals, and items
 * are coarse (a routine to schedule, a benchmark to run, a shard to
 * replay), so lock cost is noise against item cost.
 */
struct ThreadPool::Batch
{
    struct Queue
    {
        std::mutex mu;
        std::deque<size_t> items;
    };

    const std::function<void(size_t)> *fn = nullptr;
    size_t n = 0;
    unsigned nQueues = 0;
    std::unique_ptr<Queue[]> queues;
    std::atomic<size_t> finishedItems{0};
    std::exception_ptr firstError;
    std::mutex errorMu;
};

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads(threads ? threads : hardwareConcurrency())
{
    workers.reserve(nThreads - 1);
    for (unsigned i = 1; i < nThreads; ++i)
        workers.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerMain(unsigned slot)
{
    currentPool = this;
    obs::setThreadName("pool-worker-" + std::to_string(slot));
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            batch = current;
        }
        if (batch)
            runBatch(*batch, slot);
    }
}

void
ThreadPool::runBatch(Batch &batch, unsigned slot)
{
    Batch::Queue &own = batch.queues[slot];
    for (;;) {
        size_t item = 0;
        bool have = false;
        {
            std::lock_guard<std::mutex> lock(own.mu);
            if (!own.items.empty()) {
                item = own.items.front();
                own.items.pop_front();
                have = true;
            }
        }
        if (!have) {
            // Steal the back half of the first non-empty victim,
            // preserving the victim's dispatch order within the
            // stolen span. Never hold two queue locks at once.
            std::deque<size_t> loot;
            for (unsigned off = 1;
                 off < batch.nQueues && loot.empty(); ++off) {
                Batch::Queue &victim =
                    batch.queues[(slot + off) % batch.nQueues];
                std::lock_guard<std::mutex> lock(victim.mu);
                size_t take = (victim.items.size() + 1) / 2;
                while (take--) {
                    loot.push_front(victim.items.back());
                    victim.items.pop_back();
                }
            }
            if (loot.empty())
                break;
            // Work-stealing visibility: one counter tick per steal
            // plus (when tracing) an instant event on the thief's
            // track, so Perfetto shows where the pool rebalanced.
            static obs::Metric mSteals("pool.steals",
                                       obs::MetricKind::Counter);
            static obs::Metric mStolen("pool.stolen_items",
                                       obs::MetricKind::Counter);
            mSteals.add();
            mStolen.add(loot.size());
            if (obs::tracingEnabled())
                obs::instant("pool.steal",
                             "{\"items\":" +
                                 std::to_string(loot.size()) + "}");
            item = loot.front();
            loot.pop_front();
            if (!loot.empty()) {
                std::lock_guard<std::mutex> lock(own.mu);
                own.items.insert(own.items.end(), loot.begin(),
                                 loot.end());
            }
        }
        try {
            (*batch.fn)(item);
        } catch (...) {
            std::lock_guard<std::mutex> lock(batch.errorMu);
            if (!batch.firstError)
                batch.firstError = std::current_exception();
        }
        // Count items as they finish so the caller can tell a fully
        // drained batch from one still in flight.
        if (batch.finishedItems.fetch_add(
                1, std::memory_order_acq_rel) + 1 == batch.n) {
            std::lock_guard<std::mutex> lock(mu);
            done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    // Inline paths: a pool of one, a single item, or a nested call
    // from one of our own workers (whose siblings may all be busy in
    // the enclosing batch — waiting on them could deadlock).
    if (nThreads == 1 || n == 1 || currentPool == this) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu);
    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->n = n;
    batch->nQueues = nThreads;
    batch->queues = std::make_unique<Batch::Queue[]>(nThreads);
    // Deal round-robin: with the cost-sorted overload's descending
    // dispatch order this hands every slot a long pole up front, and
    // each slot consumes its deque in dispatch order.
    for (size_t i = 0; i < n; ++i)
        batch->queues[i % nThreads].items.push_back(i);
    static obs::Metric mBatches("pool.batches",
                                obs::MetricKind::Counter);
    static obs::Metric mItems("pool.items",
                              obs::MetricKind::Counter);
    static obs::Metric mDepth("pool.max_deque_depth",
                              obs::MetricKind::MaxGauge);
    mBatches.add();
    mItems.add(n);
    mDepth.observe((n + nThreads - 1) / nThreads);
    {
        std::lock_guard<std::mutex> lock(mu);
        current = batch;
        ++generation;
    }
    wake.notify_all();

    // The caller is a pool thread too; mark it so a nested
    // parallelFor from one of its items runs inline instead of
    // re-locking submitMu on this same thread.
    const ThreadPool *prev = currentPool;
    currentPool = this;
    runBatch(*batch, 0);
    currentPool = prev;

    {
        std::unique_lock<std::mutex> lock(mu);
        done.wait(lock, [&] {
            return batch->finishedItems.load(
                       std::memory_order_acquire) == n;
        });
        current.reset();
    }
    if (batch->firstError)
        std::rethrow_exception(batch->firstError);
}

void
ThreadPool::parallelFor(size_t n, const std::vector<uint64_t> &cost,
                        const std::function<void(size_t)> &fn)
{
    if (cost.size() != n) {
        parallelFor(n, fn);
        return;
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return cost[a] > cost[b];
                     });
    parallelFor(n, [&](size_t k) { fn(order[k]); });
}

} // namespace eel::support
