#include "src/support/thread_pool.hh"

#include <algorithm>
#include <memory>

namespace eel::support {

namespace {

/** The pool (if any) whose worker is running the current thread. */
thread_local const ThreadPool *currentPool = nullptr;

} // namespace

/**
 * One parallelFor invocation. Heap-allocated and held by shared_ptr
 * so a worker that wakes late — after the batch drained and a new
 * one was published — still sees its own counters (it then finds
 * every item claimed and exits without touching the stale functor).
 */
struct ThreadPool::Batch
{
    const std::function<void(size_t)> *fn;
    size_t n;
    std::atomic<size_t> nextItem{0};
    std::atomic<size_t> finishedItems{0};
    std::exception_ptr firstError;
    std::mutex errorMu;
};

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads(threads ? threads : hardwareConcurrency())
{
    workers.reserve(nThreads - 1);
    for (unsigned i = 1; i < nThreads; ++i)
        workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerMain()
{
    currentPool = this;
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            batch = current;
        }
        if (batch)
            runBatch(*batch);
    }
}

void
ThreadPool::runBatch(Batch &batch)
{
    for (;;) {
        size_t i =
            batch.nextItem.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.n)
            break;
        try {
            (*batch.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(batch.errorMu);
            if (!batch.firstError)
                batch.firstError = std::current_exception();
        }
        // Count items as they finish so the caller can tell a fully
        // drained batch from one still in flight.
        if (batch.finishedItems.fetch_add(
                1, std::memory_order_acq_rel) + 1 == batch.n) {
            std::lock_guard<std::mutex> lock(mu);
            done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    // Inline paths: a pool of one, a single item, or a nested call
    // from one of our own workers (whose siblings may all be busy in
    // the enclosing batch — waiting on them could deadlock).
    if (nThreads == 1 || n == 1 || currentPool == this) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu);
    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->n = n;
    {
        std::lock_guard<std::mutex> lock(mu);
        current = batch;
        ++generation;
    }
    wake.notify_all();

    // The caller is a pool thread too; mark it so a nested
    // parallelFor from one of its items runs inline instead of
    // re-locking submitMu on this same thread.
    const ThreadPool *prev = currentPool;
    currentPool = this;
    runBatch(*batch);
    currentPool = prev;

    {
        std::unique_lock<std::mutex> lock(mu);
        done.wait(lock, [&] {
            return batch->finishedItems.load(
                       std::memory_order_acquire) == n;
        });
        current.reset();
    }
    if (batch->firstError)
        std::rethrow_exception(batch->firstError);
}

void
ThreadPool::parallelFor(size_t n, const std::vector<uint64_t> &cost,
                        const std::function<void(size_t)> &fn)
{
    if (cost.size() != n) {
        parallelFor(n, fn);
        return;
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return cost[a] > cost[b];
                     });
    parallelFor(n, [&](size_t k) { fn(order[k]); });
}

} // namespace eel::support
