#include "src/support/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <string>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"

namespace eel::support {

namespace {

/** The pool (if any) whose worker is running the current thread. */
thread_local const ThreadPool *currentPool = nullptr;

} // namespace

/**
 * One top-level parallelFor invocation plus any nested calls made
 * from inside its items. Heap-allocated and held by shared_ptr so a
 * worker that wakes late — after the batch drained and a new one was
 * published — still sees its own queues (it then finds every deque
 * empty and exits without touching a stale functor).
 *
 * Work items are Tasks: (context, index) pairs, where a Ctx is one
 * parallelFor call — the root call that created the batch, or a
 * nested call injected by a running item. Tasks are dealt
 * round-robin across one deque per thread slot. Each slot is owned
 * by exactly one thread (the submitting caller is slot 0, workers
 * are 1..n-1), which pops from the front; a thread whose deque is
 * empty steals from another's. The per-deque mutex is uncontended
 * except during steals, and items are coarse (a routine to schedule,
 * a benchmark to run, a shard to replay), so lock cost is noise
 * against item cost.
 *
 * Parking: a thread with nothing to run sleeps on parkCv until the
 * batch's event counter moves — a task enqueue (new work to scan
 * for) or a context completion (its waiter can return). The counter
 * is read before each scan, so a wakeup between scan and sleep is
 * never lost.
 */
struct ThreadPool::Batch
{
    /** One parallelFor call: its functor, item count, and drain
     *  bookkeeping. The root Ctx lives in the Batch; nested Ctxs
     *  live on their caller's stack, which is safe because every
     *  task of a Ctx finishes before its call returns, and a
     *  finishing executor touches only the Batch afterwards. */
    struct Ctx
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        std::atomic<size_t> finished{0};
        std::exception_ptr firstError;
        std::mutex errorMu;
    };

    struct Task
    {
        Ctx *ctx = nullptr;
        size_t idx = 0;
    };

    struct Queue
    {
        std::mutex mu;
        std::deque<Task> items;
    };

    Ctx root;
    unsigned nQueues = 0;
    std::unique_ptr<Queue[]> queues;

    std::mutex parkMu;
    std::condition_variable parkCv;
    uint64_t events = 0;  ///< guarded by parkMu

    void
    bumpEvents()
    {
        {
            std::lock_guard<std::mutex> lock(parkMu);
            ++events;
        }
        parkCv.notify_all();
    }

    /** Deal tasks for ctx round-robin, first slot `start`. */
    void
    enqueue(Ctx &ctx, unsigned start)
    {
        for (size_t i = 0; i < ctx.n; ++i) {
            Queue &q = queues[(start + i) % nQueues];
            std::lock_guard<std::mutex> lock(q.mu);
            q.items.push_back(Task{&ctx, i});
        }
        bumpEvents();
    }

    /** Run one claimed task; record its error and count it done. */
    void
    execute(const Task &t)
    {
        try {
            (*t.ctx->fn)(t.idx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(t.ctx->errorMu);
            if (!t.ctx->firstError)
                t.ctx->firstError = std::current_exception();
        }
        // After this fetch_add the ctx's waiter may wake and destroy
        // the (stack-resident, nested) ctx, so touch only the Batch
        // past here.
        if (t.ctx->finished.fetch_add(1, std::memory_order_acq_rel) +
                1 == t.ctx->n)
            bumpEvents();
    }

    /**
     * Work loop: claim and run tasks until `ctx` has fully drained.
     * Top-level threads (only = nullptr) run anything; a nested
     * caller passes only = &its ctx and claims nothing but its own
     * tasks — taking a sibling's could mean running (and blocking
     * in) an unrelated outer item while this call's work is done.
     */
    void
    helpRun(unsigned slot, Ctx &ctx, const Ctx *only)
    {
        static obs::Metric mSteals("pool.steals",
                                   obs::MetricKind::Counter);
        static obs::Metric mStolen("pool.stolen_items",
                                   obs::MetricKind::Counter);
        Queue &own = queues[slot];
        for (;;) {
            uint64_t seen;
            {
                std::lock_guard<std::mutex> lock(parkMu);
                seen = events;
            }

            Task task;
            bool have = false;
            {
                std::lock_guard<std::mutex> lock(own.mu);
                auto it = own.items.begin();
                if (only)
                    it = std::find_if(own.items.begin(),
                                      own.items.end(),
                                      [&](const Task &t) {
                                          return t.ctx == only;
                                      });
                if (it != own.items.end()) {
                    task = *it;
                    own.items.erase(it);
                    have = true;
                }
            }
            if (!have) {
                // Steal: a top-level thread takes the back half of
                // the first non-empty victim (preserving the
                // victim's dispatch order); a nested caller takes
                // every one of its own tasks back from all victims.
                std::deque<Task> loot;
                for (unsigned off = 1; off < nQueues; ++off) {
                    Queue &victim = queues[(slot + off) % nQueues];
                    std::lock_guard<std::mutex> lock(victim.mu);
                    if (only) {
                        for (auto it = victim.items.begin();
                             it != victim.items.end();) {
                            if (it->ctx == only) {
                                loot.push_back(*it);
                                it = victim.items.erase(it);
                            } else {
                                ++it;
                            }
                        }
                    } else if (loot.empty()) {
                        size_t take = (victim.items.size() + 1) / 2;
                        while (take--) {
                            loot.push_front(victim.items.back());
                            victim.items.pop_back();
                        }
                        if (!loot.empty())
                            break;
                    }
                }
                if (!loot.empty()) {
                    // Work-stealing visibility: one counter tick per
                    // steal plus (when tracing) an instant event on
                    // the thief's track, so Perfetto shows where the
                    // pool rebalanced.
                    mSteals.add();
                    mStolen.add(loot.size());
                    if (obs::tracingEnabled())
                        obs::instant(
                            "pool.steal",
                            "{\"items\":" +
                                std::to_string(loot.size()) + "}");
                    task = loot.front();
                    loot.pop_front();
                    have = true;
                    if (!loot.empty()) {
                        std::lock_guard<std::mutex> lock(own.mu);
                        own.items.insert(own.items.end(),
                                         loot.begin(), loot.end());
                    }
                }
            }
            if (have) {
                execute(task);
                continue;
            }
            if (ctx.finished.load(std::memory_order_acquire) ==
                ctx.n)
                return;
            // Nothing runnable and ctx still in flight: its last
            // tasks are running on other threads. Park until any
            // enqueue or completion moves the event counter.
            std::unique_lock<std::mutex> lock(parkMu);
            parkCv.wait(lock, [&] {
                return events != seen ||
                       ctx.finished.load(
                           std::memory_order_acquire) == ctx.n;
            });
        }
    }
};

thread_local ThreadPool::Batch *ThreadPool::currentBatch = nullptr;
thread_local unsigned ThreadPool::currentSlot = 0;

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : nThreads(threads ? threads : hardwareConcurrency())
{
    workers.reserve(nThreads - 1);
    for (unsigned i = 1; i < nThreads; ++i)
        workers.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerMain(unsigned slot)
{
    currentPool = this;
    obs::setThreadName("pool-worker-" + std::to_string(slot));
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            batch = current;
        }
        if (batch)
            runBatch(*batch, slot);
    }
}

void
ThreadPool::runBatch(Batch &batch, unsigned slot)
{
    // Save/restore: a root call on pool B from inside pool A's item
    // lands here with A's batch in the thread-locals, and A's item
    // continues after B's batch drains.
    Batch *prevBatch = currentBatch;
    unsigned prevSlot = currentSlot;
    currentBatch = &batch;
    currentSlot = slot;
    // Workers serve the whole batch — root tasks and any nested
    // injections — until the root call has fully drained.
    batch.helpRun(slot, batch.root, nullptr);
    currentBatch = prevBatch;
    currentSlot = prevSlot;
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (nThreads == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Nested call from inside a live batch of this pool: share the
    // items with the pool instead of running them all inline. The
    // helpRun filter (`only`) keeps this deadlock-free even when
    // every sibling worker is parked inside a never-returning outer
    // item — the caller steals its own tasks back and runs them.
    if (currentPool == this && currentBatch) {
        Batch &batch = *currentBatch;
        Batch::Ctx ctx;
        ctx.fn = &fn;
        ctx.n = n;
        batch.enqueue(ctx, currentSlot);
        batch.helpRun(currentSlot, ctx, &ctx);
        if (ctx.firstError)
            std::rethrow_exception(ctx.firstError);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu);
    auto batch = std::make_shared<Batch>();
    batch->root.fn = &fn;
    batch->root.n = n;
    batch->nQueues = nThreads;
    batch->queues = std::make_unique<Batch::Queue[]>(nThreads);
    // Deal round-robin: with the cost-sorted overload's descending
    // dispatch order this hands every slot a long pole up front, and
    // each slot consumes its deque in dispatch order.
    for (size_t i = 0; i < n; ++i)
        batch->queues[i % nThreads].items.push_back(
            Batch::Task{&batch->root, i});
    static obs::Metric mBatches("pool.batches",
                                obs::MetricKind::Counter);
    static obs::Metric mItems("pool.items",
                              obs::MetricKind::Counter);
    static obs::Metric mDepth("pool.max_deque_depth",
                              obs::MetricKind::MaxGauge);
    mBatches.add();
    mItems.add(n);
    mDepth.observe((n + nThreads - 1) / nThreads);
    {
        std::lock_guard<std::mutex> lock(mu);
        current = batch;
        ++generation;
    }
    wake.notify_all();

    // The caller is a pool thread too; mark it so a nested
    // parallelFor from one of its items injects into this batch.
    const ThreadPool *prevPool = currentPool;
    currentPool = this;
    runBatch(*batch, 0);
    currentPool = prevPool;

    // runBatch returns only when root has drained (helpRun's exit
    // condition), so the batch is complete here; workers parked in
    // it have been woken by the final completion event and will exit
    // on their own.
    {
        std::lock_guard<std::mutex> lock(mu);
        current.reset();
    }
    if (batch->root.firstError)
        std::rethrow_exception(batch->root.firstError);
}

void
ThreadPool::parallelFor(size_t n, const std::vector<uint64_t> &cost,
                        const std::function<void(size_t)> &fn)
{
    if (cost.size() != n) {
        parallelFor(n, fn);
        return;
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return cost[a] > cost[b];
                     });
    parallelFor(n, [&](size_t k) { fn(order[k]); });
}

} // namespace eel::support
