/**
 * @file
 * Fixed-size worker pool with a single primitive: parallelFor(n, fn).
 *
 * Built for the reproduction pipeline's fan-out points — the editor
 * scheduling independent routines, the table driver running
 * independent benchmarks, and the sharded simulator replaying
 * checkpoint segments — where work items are coarse and results are
 * gathered by index, so determinism is preserved no matter how items
 * interleave. The caller participates in the batch, so a pool of
 * size N uses exactly N threads of execution.
 *
 * Items are dealt round-robin into one deque per thread of
 * execution; each thread drains its own deque from the front and,
 * when empty, steals the back half of another's. Long-tailed item
 * mixes therefore rebalance without every claim bouncing one shared
 * atomic counter between cores.
 *
 * parallelFor is reentrant: a call made from inside a pool worker
 * (e.g. the editor called from a table-driver task) runs its items
 * inline on that worker instead of deadlocking on the shared queue.
 */

#ifndef EEL_SUPPORT_THREAD_POOL_HH
#define EEL_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eel::support {

class ThreadPool
{
  public:
    /**
     * A pool of `threads` threads of execution (0 = one per hardware
     * thread). The constructing thread counts as one: size() == N
     * spawns N - 1 workers, and size() == 1 spawns none and runs
     * every batch inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads of execution, caller included (>= 1). */
    unsigned size() const { return nThreads; }

    /**
     * Run fn(i) for every i in [0, n), distributing items across the
     * pool, and block until all have finished. Items are claimed
     * dynamically, so per-item cost may vary freely. If any item
     * throws, the first exception (in completion order) is rethrown
     * here after the batch drains; the pool remains usable.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Cost-sorted variant: items are dispatched largest-cost first
     * (cost[i] estimates item i's work; stable on ties, so equal
     * costs keep index order). Starting the long poles early
     * minimizes the end-of-batch straggler tail when per-item cost
     * is wildly uneven — e.g. a benchmark table whose rows differ by
     * an order of magnitude in dynamic instruction count. fn still
     * receives the original item index.
     */
    void parallelFor(size_t n, const std::vector<uint64_t> &cost,
                     const std::function<void(size_t)> &fn);

    /** std::thread::hardware_concurrency, floored at 1. */
    static unsigned hardwareConcurrency();

  private:
    struct Batch;

    void workerMain(unsigned slot);
    void runBatch(Batch &batch, unsigned slot);

    unsigned nThreads;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake;  ///< workers: a new batch is up
    std::condition_variable done;  ///< caller: the batch drained
    bool stopping = false;
    uint64_t generation = 0;
    std::shared_ptr<Batch> current;  ///< guarded by mu

    /** Serializes concurrent top-level parallelFor calls. */
    std::mutex submitMu;
};

} // namespace eel::support

#endif // EEL_SUPPORT_THREAD_POOL_HH
