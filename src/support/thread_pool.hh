/**
 * @file
 * Fixed-size worker pool with a single primitive: parallelFor(n, fn).
 *
 * Built for the reproduction pipeline's fan-out points — the editor
 * scheduling independent routines, the table driver running
 * independent benchmarks, and the sharded simulator replaying
 * checkpoint segments — where work items are coarse and results are
 * gathered by index, so determinism is preserved no matter how items
 * interleave. The caller participates in the batch, so a pool of
 * size N uses exactly N threads of execution.
 *
 * Items are dealt round-robin into one deque per thread of
 * execution; each thread drains its own deque from the front and,
 * when empty, steals the back half of another's. Long-tailed item
 * mixes therefore rebalance without every claim bouncing one shared
 * atomic counter between cores.
 *
 * parallelFor is reentrant, and a nested call shares its items with
 * the pool instead of deadlocking on the shared queue: the nested
 * caller deals its items into the live batch's deques, and any
 * worker that drains its own deque picks them up, so a two-level
 * fan-out (a table of benchmarks, each sharding its simulation)
 * saturates the pool end to end even when the outer level has fewer
 * items than threads. While its items are in flight the nested
 * caller only executes work belonging to its own call (it steals its
 * own items back, never a sibling's blocked item), so a nested call
 * completes even when every other worker is parked inside a
 * never-returning outer item — it just degrades to running inline.
 */

#ifndef EEL_SUPPORT_THREAD_POOL_HH
#define EEL_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eel::support {

class ThreadPool
{
  public:
    /**
     * A pool of `threads` threads of execution (0 = one per hardware
     * thread). The constructing thread counts as one: size() == N
     * spawns N - 1 workers, and size() == 1 spawns none and runs
     * every batch inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads of execution, caller included (>= 1). */
    unsigned size() const { return nThreads; }

    /**
     * Run fn(i) for every i in [0, n), distributing items across the
     * pool, and block until all have finished. Items are claimed
     * dynamically, so per-item cost may vary freely. If any item
     * throws, the first exception (in completion order) is rethrown
     * here after the batch drains; the pool remains usable.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Cost-sorted variant: items are dispatched largest-cost first
     * (cost[i] estimates item i's work; stable on ties, so equal
     * costs keep index order). Starting the long poles early
     * minimizes the end-of-batch straggler tail when per-item cost
     * is wildly uneven — e.g. a benchmark table whose rows differ by
     * an order of magnitude in dynamic instruction count. fn still
     * receives the original item index.
     */
    void parallelFor(size_t n, const std::vector<uint64_t> &cost,
                     const std::function<void(size_t)> &fn);

    /** std::thread::hardware_concurrency, floored at 1. */
    static unsigned hardwareConcurrency();

  private:
    struct Batch;

    void workerMain(unsigned slot);
    void runBatch(Batch &batch, unsigned slot);

    /** The live batch (and slot) this thread participates in, so a
     *  nested parallelFor can inject into it. */
    static thread_local Batch *currentBatch;
    static thread_local unsigned currentSlot;

    unsigned nThreads;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake;  ///< workers: a new batch is up
    bool stopping = false;
    uint64_t generation = 0;
    std::shared_ptr<Batch> current;  ///< guarded by mu

    /** Serializes concurrent top-level parallelFor calls. */
    std::mutex submitMu;
};

} // namespace eel::support

#endif // EEL_SUPPORT_THREAD_POOL_HH
