#include "src/support/rng.hh"

#include "src/support/logging.hh"

namespace eel {

size_t
Rng::weightedPick(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        panic("weightedPick: non-positive total weight");
    double x = real01() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace eel
