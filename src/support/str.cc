#include "src/support/str.hh"

#include <cctype>

namespace eel {

std::vector<std::string>
split(std::string_view s, std::string_view seps)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (seps.find(c) != std::string_view::npos) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

} // namespace eel
