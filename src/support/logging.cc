#include "src/support/logging.hh"

#include <cstdio>
#include <vector>

#include "src/obs/log.hh"

namespace eel {

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    obs::logf(obs::LogLevel::Info, "%s", s.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    obs::logf(obs::LogLevel::Warn, "%s", s.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(s);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw PanicError(s);
}

} // namespace eel
