/**
 * @file
 * The code-generating half of Spawn (paper Figure 1): given a machine
 * model, emit the C++ timing tables that in the original system were
 * spliced into EEL's machine-dependent source by replacing {{...}}
 * annotations. Our runtime consumes MachineModel directly; this
 * generator exists to reproduce the paper's toolflow (the spawn_tool
 * example) and to let users inspect what Spawn derived.
 */

#ifndef EEL_MACHINE_SPAWN_CODEGEN_HH
#define EEL_MACHINE_SPAWN_CODEGEN_HH

#include <string>

#include "src/machine/model.hh"

namespace eel::machine {

/**
 * Emit a self-contained C++ translation unit with static timing
 * tables for the model: unit capacities, per-group cycle counts and
 * acquire/release tables, and per-variant register access timing.
 */
std::string generateCpp(const MachineModel &model);

/**
 * Render a human-readable report of the model: one block per opcode
 * variant with latency, group id, unit reservation table, and
 * register read/write cycles. Used by the machine_report example.
 */
std::string describeModel(const MachineModel &model);

} // namespace eel::machine

#endif // EEL_MACHINE_SPAWN_CODEGEN_HH
