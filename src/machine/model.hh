/**
 * @file
 * MachineModel: the bridge from a SADL description to the ISA. Spawn
 * extracts timing records keyed by mnemonic (src/sadl); this module
 * resolves them against decoded instructions — mapping register-file
 * names to architectural register classes and encoding fields to
 * operand slots — and selects the right conditional variant per
 * instruction.
 */

#ifndef EEL_MACHINE_MODEL_HH
#define EEL_MACHINE_MODEL_HH

#include <string>
#include <string_view>
#include <vector>

#include "src/isa/instruction.hh"
#include "src/sadl/timing.hh"

namespace eel::machine {

/** A register access resolved to an architectural register class. */
struct RegAccess
{
    isa::RegClass cls;
    sadl::Field field;    ///< Rs1/Rs2/Rd, or None for constIdx
    uint8_t constIdx;
    bool pair;            ///< also touches register index|1
    uint8_t cycle;        ///< pipeline cycle of the access
    uint8_t valueReady;   ///< writes: cycle the value was computed in

    /** The concrete register this access touches for inst. */
    isa::RegId reg(const isa::Instruction &inst) const;
    /** The second register of a pair access (call only if pair). */
    isa::RegId pairReg(const isa::Instruction &inst) const;
};

/**
 * A span of pipeline cycles during which a variant holds copies of a
 * unit: [from, to) in pipeline-cycle indices. Precomputed from the
 * acquire/release tables so committing an instruction's usage is a
 * handful of range updates instead of a unit x cycle sweep.
 */
struct UnitHold
{
    uint16_t unit;
    uint8_t from;
    uint8_t to;
    int16_t num;
};

/** Timing for one conditional variant of an instruction. */
struct Variant
{
    std::vector<sadl::VariantCond> conds;
    unsigned group = 0;    ///< Spawn timing group id
    unsigned latency = 1;  ///< cycles through the pipeline

    /// acquire[c]: unit events in pipeline cycle c (size == latency);
    /// release[c]: size == latency + 1.
    std::vector<std::vector<sadl::UnitEvent>> acquire;
    std::vector<std::vector<sadl::UnitEvent>> release;

    std::vector<RegAccess> reads;
    std::vector<RegAccess> writes;

    /// Constant-level unit occupancy segments (see UnitHold).
    std::vector<UnitHold> holds;

    /// Vectorizable restatement of `holds`, one padded int16 row per
    /// pipeline cycle (stride = paddedUnits(num_units), see
    /// src/machine/holdvec.hh). Row k covers pipeline cycle k for
    /// k < holdRows (the last cycle any hold covers, so latency-long
    /// variants with short holds pay only for the held prefix).
    /// holdMin[k*stride + u] is the free count unit u must show for
    /// the instruction to pass cycle k's structural check, INT16_MIN
    /// where nothing is held (a lane that can never block);
    /// holdUse[k*stride + u] is the number of copies of u occupied
    /// during cycle k, 0 where none. The segments are non-overlapping
    /// per unit, so both are exact per-cycle restatements usable as
    /// one vector compare/subtract per cycle.
    std::vector<int16_t> holdMin;
    std::vector<int16_t> holdUse;
    unsigned holdStride = 0;
    unsigned holdRows = 0;

    /// Flattened copies of acquire/release for the per-retire hot
    /// loop: cycle c's events are evFlat[evOff[c] .. evOff[c+1]),
    /// one contiguous array instead of a vector-of-vectors walk.
    std::vector<sadl::UnitEvent> acquireFlat;
    std::vector<uint16_t> acquireOff;  ///< size latency + 1
    std::vector<sadl::UnitEvent> releaseFlat;
    std::vector<uint16_t> releaseOff;  ///< size latency + 2

    /** True if every variant condition holds for inst. */
    bool matches(const isa::Instruction &inst) const;

    /** Derive holds from the acquire/release tables. */
    void buildHolds(unsigned num_units);

    /** Derive the flattened event tables from acquire/release. */
    void buildFlat();
};

/**
 * A complete microarchitecture model derived from a SADL description.
 *
 * Description conventions (documented in machines/README):
 *  - the superscalar issue limit is a unit named "Group";
 *  - register files R, F, ICC, FCC, Y map to the architectural
 *    integer, floating point, condition code, and Y registers;
 *  - every mnemonic of the ISA must have a sem binding.
 */
class MachineModel
{
  public:
    /**
     * Build a model from SADL source. Fatal if the description does
     * not cover every opcode of the ISA or violates the conventions
     * above.
     */
    static MachineModel fromSadl(const std::string &source,
                                 std::string name, double clock_mhz);

    /**
     * The three builtin processor models. Valid names: "hypersparc",
     * "supersparc", "ultrasparc". Fatal on unknown names.
     */
    static const MachineModel &builtin(std::string_view name);

    /** Timing variant for a decoded instruction. */
    const Variant &variant(const isa::Instruction &inst) const;

    const std::string &name() const { return _name; }
    double clockMhz() const { return _clockMhz; }
    /**
     * Fetch-redirect cost of a taken control transfer on the real
     * machine. Not part of the SADL description — the Spawn models
     * cover only the execution pipelines (§3.2) — so the scheduler
     * never sees it; the timing simulator charges it, reproducing
     * the paper's model-vs-hardware gap.
     */
    unsigned branchPenalty() const { return _branchPenalty; }
    void setBranchPenalty(unsigned n) { _branchPenalty = n; }
    /** Superscalar width: capacity of the "Group" unit. */
    unsigned issueWidth() const { return _issueWidth; }
    unsigned numUnits() const { return _unitCaps.size(); }
    unsigned unitCapacity(unsigned u) const { return _unitCaps[u]; }
    const std::string &unitName(unsigned u) const
    {
        return _unitNames[u];
    }
    /** Longest variant latency; bounds the pipeline window. */
    unsigned maxLatency() const { return _maxLatency; }
    unsigned numGroups() const { return _numGroups; }

    /** All variants for an opcode (used by the spawn code generator). */
    const std::vector<Variant> &variantsFor(isa::Op op) const
    {
        return byOp[static_cast<unsigned>(op)];
    }

  private:
    std::string _name;
    double _clockMhz = 0;
    unsigned _issueWidth = 1;
    unsigned _maxLatency = 1;
    unsigned _branchPenalty = 1;
    unsigned _numGroups = 0;
    std::vector<unsigned> _unitCaps;
    std::vector<std::string> _unitNames;
    std::vector<std::vector<Variant>> byOp;
};

/** SADL source text of the builtin descriptions (also installed as
 *  machines/<name>.sadl). */
std::string_view builtinSadlSource(std::string_view name);

} // namespace eel::machine

#endif // EEL_MACHINE_MODEL_HH
