#include "src/machine/pipeline.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/metrics.hh"
#include "src/support/logging.hh"

namespace eel::machine {

ResolvedVariant
ResolvedVariant::resolve(const Variant &v, const isa::Instruction &inst)
{
    ResolvedVariant rv;
    rv.variant = &v;
    auto pushRead = [&](isa::RegId r, uint8_t cycle) {
        if (!r.tracked())
            return;
        if (rv.nReads >= maxAccesses)
            panic("ResolvedVariant: too many reads");
        rv.reads[rv.nReads++] =
            Read{static_cast<uint16_t>(r.flat()), cycle};
    };
    auto pushWrite = [&](isa::RegId r, uint8_t cycle, uint8_t ready) {
        if (!r.tracked())
            return;
        if (rv.nWrites >= maxAccesses)
            panic("ResolvedVariant: too many writes");
        rv.writes[rv.nWrites++] =
            Write{static_cast<uint16_t>(r.flat()), cycle, ready};
    };
    for (const RegAccess &a : v.reads) {
        pushRead(a.reg(inst), a.cycle);
        if (a.pair)
            pushRead(a.pairReg(inst), a.cycle);
    }
    for (const RegAccess &a : v.writes) {
        pushWrite(a.reg(inst), a.cycle, a.valueReady);
        if (a.pair)
            pushWrite(a.pairReg(inst), a.cycle, a.valueReady);
    }
    return rv;
}

ResolvedVariant
ResolvedVariant::resolve(const MachineModel &model,
                         const isa::Instruction &inst)
{
    return resolve(model.variant(inst), inst);
}

PipelineState::PipelineState(const MachineModel &model, bool simd_holds)
    : _model(model), numUnits(model.numUnits()),
      rowStride(paddedUnits(model.numUnits())), simdHold(simd_holds)
{
    // Rows are padded to the vector lane width; pad lanes stay zero
    // in capInit (and therefore in every re-initialized slot), which
    // the row primitives rely on being inert.
    capInit.assign(rowStride, 0);
    for (unsigned u = 0; u < numUnits; ++u)
        capInit[u] = static_cast<int16_t>(model.unitCapacity(u));
    slotStamp.assign(windowSize, ~uint64_t(0));
    slotFree.assign(static_cast<size_t>(windowSize) * rowStride, 0);
    lastRead.assign(isa::numRegIds, 0);
    lastWrite.assign(isa::numRegIds, 0);
    writeAvail.assign(isa::numRegIds, 0);
    scratchTrace.assign(numUnits, 0);
    scratchAbsFor.assign(model.maxLatency() + 1, 0);
}

void
PipelineState::reset()
{
    std::fill(slotStamp.begin(), slotStamp.end(), ~uint64_t(0));
    std::fill(lastRead.begin(), lastRead.end(), 0);
    std::fill(lastWrite.begin(), lastWrite.end(), 0);
    std::fill(writeAvail.begin(), writeAvail.end(), 0);
    maxStamped = 0;
    frontierCycle = 0;
}

PipelineState::Snapshot
PipelineState::snapshot() const
{
    return Snapshot{slotStamp, slotFree, lastRead, lastWrite,
                    writeAvail, frontierCycle};
}

void
PipelineState::restore(const Snapshot &s)
{
    if (s.slotFree.size() != slotFree.size() ||
        s.lastRead.size() != lastRead.size())
        panic("PipelineState::restore: snapshot from a different "
              "machine model");
    slotStamp = s.slotStamp;
    slotFree = s.slotFree;
    lastRead = s.lastRead;
    lastWrite = s.lastWrite;
    writeAvail = s.writeAvail;
    frontierCycle = s.frontierCycle;
    maxStamped = 0;
    for (uint64_t stamp : slotStamp)
        if (stamp != ~uint64_t(0) && stamp > maxStamped)
            maxStamped = stamp;
}

void
PipelineState::captureRebased(RebasedPipe &out) const
{
    out.clear();
    const uint64_t d = frontierCycle;

    // Live rows, ascending by cycle. The canonicalization matches
    // appendNormalizedKey(): dead rows (frontier passed them) and
    // full-capacity rows (bit-identical to a lazy re-init) are
    // dropped. The scan walks cycles, not slots, so it touches
    // [d, maxStamped] instead of the whole ring.
    const uint64_t top =
        std::min(maxStamped, d + windowSize - 1);
    for (uint64_t c = d; c <= top; ++c) {
        const unsigned slot = static_cast<unsigned>(c % windowSize);
        if (slotStamp[slot] != c)
            continue;
        const int16_t *row = &slotFree[size_t(slot) * rowStride];
        if (std::memcmp(row, capInit.data(),
                        numUnits * sizeof(int16_t)) == 0)
            continue;
        out.rowAt.push_back(c - d);
        out.rowFree.insert(out.rowFree.end(), row, row + rowStride);
    }

    // Registers with any value that can still bind, as the same
    // canonical rebased triples appendNormalizedKey() emits (see the
    // inertness thresholds there), but sparse: inert-everywhere
    // registers are omitted entirely.
    for (uint32_t r = 0; r < lastRead.size(); ++r) {
        const uint64_t lr = lastRead[r] > d + 1 ? lastRead[r] - d : 0;
        const uint64_t lw = lastWrite[r] > d ? lastWrite[r] - d : 0;
        const uint64_t wa = writeAvail[r] > d ? writeAvail[r] - d : 0;
        if (!(lr | lw | wa))
            continue;
        out.regs.push_back(r);
        out.regVals.push_back(lr);
        out.regVals.push_back(lw);
        out.regVals.push_back(wa);
    }
}

void
PipelineState::applyRebased(const RebasedPipe &p, uint64_t frontierDelta)
{
    const uint64_t d1 = frontierCycle + frontierDelta;

    // Rows: every live non-capacity row of the target state is
    // written outright. Current rows the new frontier passed are dead
    // by construction; current rows at cycles >= d1 either recur in p
    // (rows only lose capacity, so a live row stays live) or were
    // full-capacity on both sides, which lazy re-init reproduces.
    const int16_t *free = p.rowFree.data();
    for (size_t i = 0; i < p.rowAt.size(); ++i, free += rowStride) {
        const uint64_t c = d1 + p.rowAt[i];
        const unsigned slot = static_cast<unsigned>(c % windowSize);
        slotStamp[slot] = c;
        std::memcpy(&slotFree[size_t(slot) * rowStride], free,
                    rowStride * sizeof(int16_t));
        if (c > maxStamped)
            maxStamped = c;
    }

    // Registers: listed ones get their exact rebased values; a zero
    // component (inert in the target) leaves the current value, which
    // was inert at the old frontier and stays inert at the newer one.
    // Unlisted registers were inert-everywhere in the target and are
    // left untouched for the same reason.
    const uint64_t *v = p.regVals.data();
    for (size_t i = 0; i < p.regs.size(); ++i, v += 3) {
        const uint32_t r = p.regs[i];
        if (v[0])
            lastRead[r] = v[0] + d1;
        if (v[1])
            lastWrite[r] = v[1] + d1;
        if (v[2])
            writeAvail[r] = v[2] + d1;
    }

    frontierCycle = d1;
}

void
PipelineState::appendNormalizedKey(std::vector<uint64_t> &out) const
{
    const uint64_t d = frontierCycle;

    // Unit ring: future instructions enter at cycles >= d (simulate()
    // starts at the frontier and abs only advances), so rows stamped
    // before d are dead. Live rows equal to full capacity are
    // indistinguishable from untouched slots (initSlot would recreate
    // them bit-identically) and are dropped to canonicalize. The rest
    // are emitted rebased to d, in ascending cycle order.
    std::vector<std::pair<uint64_t, unsigned>> live;
    for (unsigned s = 0; s < windowSize; ++s) {
        uint64_t stamp = slotStamp[s];
        if (stamp == ~uint64_t(0) || stamp < d)
            continue;
        if (std::memcmp(&slotFree[s * rowStride], capInit.data(),
                        numUnits * sizeof(int16_t)) == 0)
            continue;
        live.emplace_back(stamp - d, s);
    }
    std::sort(live.begin(), live.end());
    out.push_back(live.size());
    for (const auto &[at, s] : live) {
        out.push_back(at);
        for (unsigned u = 0; u < numUnits; ++u)
            out.push_back(static_cast<uint16_t>(
                slotFree[s * rowStride + u]));
    }

    // Register history, rebased to d with inert values mapped to 0.
    // A value is inert when the hazard check it feeds can no longer
    // fire for any abs >= d: RAW needs abs < writeAvail (inert <= d),
    // WAW needs abs < lastWrite (inert <= d), WAR needs abs + 1 <
    // lastRead (inert <= d + 1). commit() only max()es these upward
    // with values > d, so an inert value also never influences later
    // state.
    for (size_t r = 0; r < lastRead.size(); ++r) {
        out.push_back(lastRead[r] > d + 1 ? lastRead[r] - d : 0);
        out.push_back(lastWrite[r] > d ? lastWrite[r] - d : 0);
        out.push_back(writeAvail[r] > d ? writeAvail[r] - d : 0);
    }
}

void
PipelineState::initSlot(uint64_t c, unsigned slot) const
{
    slotStamp[slot] = c;
    std::memcpy(&slotFree[slot * rowStride], capInit.data(),
                rowStride * sizeof(int16_t));
    if (c > maxStamped)
        maxStamped = c;
}

int16_t *
PipelineState::rowFor(uint64_t c) const
{
    unsigned slot = static_cast<unsigned>(c % windowSize);
    if (slotStamp[slot] != c)
        initSlot(c, slot);
    return &slotFree[slot * rowStride];
}

void
PipelineState::flushSimdMetrics() const
{
    static obs::Metric mBlocks("simd.hold_blocks",
                               obs::MetricKind::Counter);
    static obs::Metric mClean("simd.clean_issues",
                              obs::MetricKind::Counter);
    if (_simdBlocks)
        mBlocks.add(_simdBlocks);
    if (_fastIssues)
        mClean.add(_fastIssues);
    _simdBlocks = 0;
    _fastIssues = 0;
}

namespace {

/** Debug-build assertion that the scratch buffers are not in use;
 *  see the scratchBusy member comment. */
struct ScratchGuard
{
    explicit ScratchGuard(bool &busy) : _busy(busy)
    {
        assert(!_busy && "PipelineState scratch used reentrantly "
                         "(shared across threads?)");
        _busy = true;
    }
    ~ScratchGuard() { _busy = false; }
    bool &_busy;
};

} // namespace

unsigned
PipelineState::simulate(uint64_t entry_cycle, const ResolvedVariant &rv,
                        std::vector<uint64_t> &abs_for,
                        obs::StallBreakdown *why) const
{
#ifndef NDEBUG
    ScratchGuard guard(scratchBusy);
#endif
    const Variant &v = *rv.variant;

    // Every used slot of abs_for is written below; the scratch the
    // callers pass is pre-sized to maxLatency + 1 in the constructor,
    // so this grow triggers only for foreign buffers.
    if (abs_for.size() < v.latency + 1)
        abs_for.resize(v.latency + 1);

    // Fast path: most dynamic instructions advance unstalled, and
    // that case has a closed-form precondition — every hazard check
    // of the walk below, evaluated at abs = entry_cycle + cycle. The
    // structural condition is phrased over the constant-level hold
    // segments (free >= level across the segment), which is at least
    // as strict as the walk's per-event check, so passing here
    // guarantees the walk would advance every cycle. Failing just
    // falls through to the exact walk.
    {
        bool clean = true;
        for (unsigned i = 0; i < rv.nReads && clean; ++i) {
            const ResolvedVariant::Read &a = rv.reads[i];
            clean = entry_cycle + a.cycle >= writeAvail[a.reg];
        }
        for (unsigned i = 0; i < rv.nWrites && clean; ++i) {
            const ResolvedVariant::Write &a = rv.writes[i];
            clean = entry_cycle + a.cycle + 1 >= lastRead[a.reg] &&
                    entry_cycle + a.cycle >= lastWrite[a.reg];
        }
        uint64_t row_cycle = ~uint64_t(0);
        const int16_t *row = nullptr;
        for (const UnitHold &h : v.holds) {
            if (!clean)
                break;
            for (uint64_t c = entry_cycle + h.from;
                 c < entry_cycle + h.to; ++c) {
                if (c != row_cycle) {
                    row = rowFor(c);
                    row_cycle = c;
                }
                if (row[h.unit] < h.num) {
                    clean = false;
                    break;
                }
            }
        }
        if (clean) {
            for (unsigned k = 0; k <= v.latency; ++k)
                abs_for[k] = entry_cycle + k;
            return 0;
        }
    }

    // trace[] — the appendix's record of resources this instruction
    // itself holds while it walks down the pipeline. All-zero on
    // entry; the touched entries are re-zeroed before returning
    // (the panic path below aborts the whole run, so it may leave
    // them dirty).
    int *const trace = scratchTrace.data();

    const sadl::UnitEvent *const acq = v.acquireFlat.data();
    const sadl::UnitEvent *const rel = v.releaseFlat.data();
    const uint16_t *const acqOff = v.acquireOff.data();
    const uint16_t *const relOff = v.releaseOff.data();

    unsigned stalls = 0;
    unsigned mi_cycle = 0;
    uint64_t abs = entry_cycle;

    while (mi_cycle < v.latency) {
        bool advance = true;
        // Which ordered hazard check blocked this cycle. Exactly one
        // fails per non-advancing cycle (the checks short-circuit),
        // so the per-reason counts sum to the stall total.
        obs::StallReason blocked = obs::StallReason::Resource;

        // Structural hazards: every unit this pipeline cycle acquires
        // must have enough free copies beyond what we already hold.
        // The free-count row for abs is resolved once per cycle.
        if (acqOff[mi_cycle] != acqOff[mi_cycle + 1]) {
            const int16_t *row = rowFor(abs);
            for (unsigned e = acqOff[mi_cycle];
                 e < acqOff[mi_cycle + 1]; ++e) {
                if (row[acq[e].unit] - trace[acq[e].unit] <
                    static_cast<int>(acq[e].num)) {
                    advance = false;
                    break;
                }
            }
        }

        // RAW hazards: a register read in this pipeline cycle must
        // not precede the producing value's availability.
        if (advance) {
            for (unsigned i = 0; i < rv.nReads; ++i) {
                const ResolvedVariant::Read &a = rv.reads[i];
                if (a.cycle == mi_cycle && abs < writeAvail[a.reg]) {
                    advance = false;
                    blocked = obs::StallReason::RawDep;
                    break;
                }
            }
        }

        // WAR and WAW hazards on this pipeline cycle's writes.
        if (advance) {
            for (unsigned i = 0; i < rv.nWrites; ++i) {
                const ResolvedVariant::Write &a = rv.writes[i];
                if (a.cycle != mi_cycle)
                    continue;
                // lastRead/lastWrite hold "cycle + 1" (0 = never).
                // WAR: the write may share the final read's cycle.
                // WAW: writes to a register stay strictly ordered.
                if (abs + 1 < lastRead[a.reg] ||
                    abs < lastWrite[a.reg]) {
                    advance = false;
                    blocked = obs::StallReason::WarWawDep;
                    break;
                }
            }
        }

        if (advance) {
            abs_for[mi_cycle] = abs;
            for (unsigned e = acqOff[mi_cycle];
                 e < acqOff[mi_cycle + 1]; ++e)
                trace[acq[e].unit] += acq[e].num;
            ++mi_cycle;
            for (unsigned e = relOff[mi_cycle];
                 e < relOff[mi_cycle + 1]; ++e)
                trace[rel[e].unit] -= rel[e].num;
        } else {
            ++stalls;
            if (why)
                why->add(blocked);
        }
        ++abs;
        if (abs - entry_cycle > windowSize / 2)
            panic("pipeline_stalls: runaway stall (group %u)",
                  v.group);
    }
    abs_for[v.latency] = abs;

    // Restore the all-zero trace invariant: only units named in the
    // event tables can have been touched.
    for (unsigned e = 0; e < acqOff[v.latency]; ++e)
        trace[acq[e].unit] = 0;
    for (unsigned e = 0; e < relOff[v.latency + 1]; ++e)
        trace[rel[e].unit] = 0;
    return stalls;
}

unsigned
PipelineState::stalls(const isa::Instruction &inst) const
{
    return stallsAt(frontierCycle, inst);
}

unsigned
PipelineState::stallsAt(uint64_t cycle,
                        const isa::Instruction &inst) const
{
    return stallsAt(cycle, ResolvedVariant::resolve(_model, inst));
}

PipelineState::IssueResult
PipelineState::issue(const isa::Instruction &inst)
{
    return issue(ResolvedVariant::resolve(_model, inst));
}

PipelineState::IssueResult
PipelineState::issueSlow(const ResolvedVariant &rv,
                         obs::StallBreakdown *why)
{
    unsigned s = simulate(frontierCycle, rv, scratchAbsFor, why);
    commit(rv, scratchAbsFor);
    return IssueResult{scratchAbsFor[0],
                       scratchAbsFor[rv.variant->latency], s};
}

void
PipelineState::commit(const ResolvedVariant &rv,
                      const std::vector<uint64_t> &abs_for)
{
    const Variant &v = *rv.variant;

    // Fold this instruction's unit usage into the per-cycle free
    // counts using the precomputed constant-level hold segments.
    // Releases at pipeline cycle k take effect at abs_for[k]
    // (releases apply before acquires within a cycle, §3.1).
    // Consecutive holds usually start on the same cycle, so the
    // free-count row is re-resolved only when the cycle changes.
    uint64_t row_cycle = ~uint64_t(0);
    int16_t *row = nullptr;
    for (const UnitHold &h : v.holds) {
        uint64_t from = abs_for[h.from];
        uint64_t to = abs_for[h.to];
        for (uint64_t c = from; c < to; ++c) {
            if (c != row_cycle) {
                row = rowFor(c);
                row_cycle = c;
            }
            row[h.unit] = static_cast<int16_t>(row[h.unit] - h.num);
        }
    }

    // Register history.
    for (unsigned i = 0; i < rv.nReads; ++i) {
        const ResolvedVariant::Read &a = rv.reads[i];
        uint64_t c = abs_for[a.cycle] + 1;
        lastRead[a.reg] = std::max(lastRead[a.reg], c);
    }
    for (unsigned i = 0; i < rv.nWrites; ++i) {
        const ResolvedVariant::Write &a = rv.writes[i];
        uint64_t wb = abs_for[a.cycle] + 1;
        uint64_t avail = abs_for[a.ready] + 1;
        lastWrite[a.reg] = std::max(lastWrite[a.reg], wb);
        writeAvail[a.reg] = std::max(writeAvail[a.reg], avail);
    }

    // In-order issue: the next instruction cannot enter earlier than
    // this one did.
    frontierCycle = abs_for[0];
}

uint64_t
sequenceCycles(const MachineModel &model,
               std::span<const isa::Instruction> insts)
{
    PipelineState state(model);
    uint64_t done = 0;
    for (const isa::Instruction &in : insts)
        done = std::max(done, state.issue(in).doneCycle);
    return done;
}

uint64_t
sequenceIssueSpan(const MachineModel &model,
                  std::span<const isa::Instruction> insts)
{
    PipelineState state(model);
    uint64_t last = 0;
    for (const isa::Instruction &in : insts)
        last = state.issue(in).startCycle;
    return insts.empty() ? 0 : last + 1;
}

} // namespace eel::machine
