#include "src/machine/pipeline.hh"

#include <algorithm>

#include "src/support/logging.hh"

namespace eel::machine {

PipelineState::PipelineState(const MachineModel &model)
    : _model(model), numUnits(model.numUnits())
{
    slotStamp.assign(windowSize, ~uint64_t(0));
    slotFree.assign(windowSize * numUnits, 0);
    lastRead.assign(isa::numRegIds, 0);
    lastWrite.assign(isa::numRegIds, 0);
    writeAvail.assign(isa::numRegIds, 0);
}

void
PipelineState::reset()
{
    std::fill(slotStamp.begin(), slotStamp.end(), ~uint64_t(0));
    std::fill(lastRead.begin(), lastRead.end(), 0);
    std::fill(lastWrite.begin(), lastWrite.end(), 0);
    std::fill(writeAvail.begin(), writeAvail.end(), 0);
    frontierCycle = 0;
}

int
PipelineState::freeUnits(uint64_t c, unsigned unit) const
{
    unsigned slot = static_cast<unsigned>(c % windowSize);
    if (slotStamp[slot] != c) {
        slotStamp[slot] = c;
        for (unsigned u = 0; u < numUnits; ++u)
            slotFree[slot * numUnits + u] =
                static_cast<int16_t>(_model.unitCapacity(u));
    }
    return slotFree[slot * numUnits + unit];
}

void
PipelineState::takeUnits(uint64_t c, unsigned unit, int n)
{
    freeUnits(c, unit);  // ensure the slot is initialized
    unsigned slot = static_cast<unsigned>(c % windowSize);
    slotFree[slot * numUnits + unit] =
        static_cast<int16_t>(slotFree[slot * numUnits + unit] - n);
}

unsigned
PipelineState::simulate(uint64_t entry_cycle,
                        const isa::Instruction &inst, const Variant &v,
                        std::vector<uint64_t> &abs_for) const
{
    abs_for.assign(v.latency + 1, 0);

    // trace[] — the appendix's record of resources this instruction
    // itself holds while it walks down the pipeline.
    scratchTrace.assign(numUnits, 0);
    std::vector<int> &trace = scratchTrace;

    unsigned stalls = 0;
    unsigned mi_cycle = 0;
    uint64_t abs = entry_cycle;

    while (mi_cycle < v.latency) {
        bool advance = true;

        // Structural hazards: every unit this pipeline cycle acquires
        // must have enough free copies beyond what we already hold.
        for (const sadl::UnitEvent &e : v.acquire[mi_cycle]) {
            if (freeUnits(abs, e.unit) - trace[e.unit] <
                static_cast<int>(e.num)) {
                advance = false;
                break;
            }
        }

        // RAW hazards: a register read in this pipeline cycle must
        // not precede the producing value's availability.
        if (advance) {
            for (const RegAccess &a : v.reads) {
                if (a.cycle != mi_cycle)
                    continue;
                isa::RegId r = a.reg(inst);
                if (r.tracked() && abs < writeAvail[r.flat()]) {
                    advance = false;
                    break;
                }
                if (a.pair) {
                    isa::RegId p = a.pairReg(inst);
                    if (p.tracked() && abs < writeAvail[p.flat()]) {
                        advance = false;
                        break;
                    }
                }
            }
        }

        // WAR and WAW hazards on this pipeline cycle's writes.
        if (advance) {
            for (const RegAccess &a : v.writes) {
                if (a.cycle != mi_cycle)
                    continue;
                auto conflicts = [&](isa::RegId r) {
                    if (!r.tracked())
                        return false;
                    // lastRead/lastWrite hold "cycle + 1" (0 = never).
                    // WAR: the write may share the final read's cycle.
                    // WAW: writes to a register stay strictly ordered.
                    return abs + 1 < lastRead[r.flat()] ||
                           abs < lastWrite[r.flat()];
                };
                if (conflicts(a.reg(inst)) ||
                    (a.pair && conflicts(a.pairReg(inst)))) {
                    advance = false;
                    break;
                }
            }
        }

        if (advance) {
            abs_for[mi_cycle] = abs;
            for (const sadl::UnitEvent &e : v.acquire[mi_cycle])
                trace[e.unit] += e.num;
            ++mi_cycle;
            for (const sadl::UnitEvent &e : v.release[mi_cycle])
                trace[e.unit] -= e.num;
        } else {
            ++stalls;
        }
        ++abs;
        if (abs - entry_cycle > windowSize / 2)
            panic("pipeline_stalls: runaway stall on '%s'",
                  isa::disassemble(inst).c_str());
    }
    abs_for[v.latency] = abs;
    return stalls;
}

unsigned
PipelineState::stalls(const isa::Instruction &inst) const
{
    return stallsAt(frontierCycle, inst);
}

unsigned
PipelineState::stallsAt(uint64_t cycle,
                        const isa::Instruction &inst) const
{
    const Variant &v = _model.variant(inst);
    return simulate(cycle, inst, v, scratchAbsFor);
}

PipelineState::IssueResult
PipelineState::issue(const isa::Instruction &inst)
{
    const Variant &v = _model.variant(inst);
    unsigned s = simulate(frontierCycle, inst, v, scratchAbsFor);
    commit(inst, v, scratchAbsFor);
    return IssueResult{scratchAbsFor[0], scratchAbsFor[v.latency], s};
}

void
PipelineState::commit(const isa::Instruction &inst, const Variant &v,
                      const std::vector<uint64_t> &abs_for)
{
    // Fold this instruction's unit usage into the per-cycle free
    // counts using the precomputed constant-level hold segments.
    // Releases at pipeline cycle k take effect at abs_for[k]
    // (releases apply before acquires within a cycle, §3.1).
    for (const UnitHold &h : v.holds) {
        uint64_t from = abs_for[h.from];
        uint64_t to = abs_for[h.to];
        for (uint64_t c = from; c < to; ++c)
            takeUnits(c, h.unit, h.num);
    }

    // Register history.
    auto touchRead = [&](isa::RegId r, uint64_t c) {
        if (r.tracked())
            lastRead[r.flat()] = std::max(lastRead[r.flat()], c + 1);
    };
    auto touchWrite = [&](isa::RegId r, uint64_t wb, uint64_t avail) {
        if (!r.tracked())
            return;
        lastWrite[r.flat()] = std::max(lastWrite[r.flat()], wb + 1);
        writeAvail[r.flat()] = std::max(writeAvail[r.flat()], avail);
    };
    for (const RegAccess &a : v.reads) {
        touchRead(a.reg(inst), abs_for[a.cycle]);
        if (a.pair)
            touchRead(a.pairReg(inst), abs_for[a.cycle]);
    }
    for (const RegAccess &a : v.writes) {
        uint64_t wb = abs_for[a.cycle];
        uint64_t avail = abs_for[a.valueReady] + 1;
        touchWrite(a.reg(inst), wb, avail);
        if (a.pair)
            touchWrite(a.pairReg(inst), wb, avail);
    }

    // In-order issue: the next instruction cannot enter earlier than
    // this one did.
    frontierCycle = abs_for[0];
}

uint64_t
sequenceCycles(const MachineModel &model,
               std::span<const isa::Instruction> insts)
{
    PipelineState state(model);
    uint64_t done = 0;
    for (const isa::Instruction &in : insts)
        done = std::max(done, state.issue(in).doneCycle);
    return done;
}

uint64_t
sequenceIssueSpan(const MachineModel &model,
                  std::span<const isa::Instruction> insts)
{
    PipelineState state(model);
    uint64_t last = 0;
    for (const isa::Instruction &in : insts)
        last = state.issue(in).startCycle;
    return insts.empty() ? 0 : last + 1;
}

} // namespace eel::machine
