/**
 * @file
 * Pipeline state tracking and the pipeline_stalls computation of the
 * paper's Appendix A.
 *
 * PipelineState models an in-order superscalar execution pipeline as
 * seen by a straight-line instruction sequence: per-cycle free unit
 * counts (structural hazards), and per-register last-read, last-write
 * and value-available cycles (RAW/WAR/WAW hazards). The key operation
 * is stalls(): "the number of cycles that the next instruction must
 * wait before entering the execution pipeline" (§3.2).
 */

#ifndef EEL_MACHINE_PIPELINE_HH
#define EEL_MACHINE_PIPELINE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/isa/instruction.hh"
#include "src/machine/model.hh"

namespace eel::machine {

/**
 * Not thread-safe: stalls() is logically const but reuses internal
 * scratch buffers; use one PipelineState per thread.
 */
class PipelineState
{
  public:
    explicit PipelineState(const MachineModel &model);

    /** Forget all history; the pipeline is empty at cycle 0. */
    void reset();

    /**
     * pipeline_stalls (Appendix A): how many stall cycles inst incurs
     * if it enters the pipeline at the in-order issue frontier.
     * Counts both entry stalls and mid-pipeline stalls, exactly as
     * the appendix loop does. Does not modify register/unit history.
     */
    unsigned stalls(const isa::Instruction &inst) const;

    /** As stalls(), but entering at an explicit cycle >= frontier. */
    unsigned stallsAt(uint64_t cycle,
                      const isa::Instruction &inst) const;

    struct IssueResult
    {
        uint64_t startCycle;  ///< cycle the instruction entered
        uint64_t doneCycle;   ///< cycle it left the pipeline
        unsigned stalls;      ///< total stall cycles (appendix metric)
    };

    /** Issue inst in order: compute stalls, commit its effects. */
    IssueResult issue(const isa::Instruction &inst);

    /**
     * Model a fetch bubble (e.g. a taken-branch redirect): the next
     * instruction cannot enter before frontier() + n. Spawn models
     * only the execution pipelines (§3.2), so the scheduler never
     * calls this; the timing simulator does.
     */
    void fetchBubble(unsigned n) { frontierCycle += n; }

    /** Cycle at which the next instruction would enter unstalled. */
    uint64_t frontier() const { return frontierCycle; }

    const MachineModel &model() const { return _model; }

  private:
    struct Trace;

    /**
     * Core of Appendix A: walk inst through its pipeline cycles from
     * entry_cycle, counting stalls. abs_for[k] receives the absolute
     * cycle at which pipeline cycle k executed (size latency + 1).
     */
    unsigned simulate(uint64_t entry_cycle,
                      const isa::Instruction &inst,
                      const Variant &v,
                      std::vector<uint64_t> &abs_for) const;

    void commit(const isa::Instruction &inst, const Variant &v,
                const std::vector<uint64_t> &abs_for);

    /** Free copies of unit at absolute cycle c (lazy slot reinit). */
    int freeUnits(uint64_t c, unsigned unit) const;
    void takeUnits(uint64_t c, unsigned unit, int n);

    const MachineModel &_model;
    unsigned numUnits;

    // Ring buffer of per-cycle free unit counts. Slots are stamped
    // with the absolute cycle they represent and re-initialized to
    // full capacity on first touch of a new cycle.
    static constexpr unsigned windowSize = 256;
    mutable std::vector<uint64_t> slotStamp;   // windowSize
    mutable std::vector<int16_t> slotFree;     // windowSize * numUnits

    // Register history, indexed by RegId::flat(). Values are
    // "absolute cycle + 1" so 0 means "never".
    std::vector<uint64_t> lastRead;
    std::vector<uint64_t> lastWrite;
    std::vector<uint64_t> writeAvail;  // first cycle a read may occur

    // Scratch buffers reused across simulate() calls (performance:
    // one pipeline_stalls evaluation per dynamic instruction).
    mutable std::vector<int> scratchTrace;
    mutable std::vector<uint64_t> scratchAbsFor;

    uint64_t frontierCycle = 0;
};

/**
 * Schedule-length evaluation: total cycles a straight-line sequence
 * occupies from an empty pipeline (issue cycle of the last
 * instruction + 1). Used to compare schedules.
 */
uint64_t sequenceCycles(const MachineModel &model,
                        std::span<const isa::Instruction> insts);

/**
 * Issue span of a straight-line sequence: the cycle after the last
 * instruction enters the pipeline, from an empty pipeline. This is
 * the "executes in N cycles" number the paper quotes for the
 * profiling snippet (§4.2) — it excludes the writeback drain.
 */
uint64_t sequenceIssueSpan(const MachineModel &model,
                           std::span<const isa::Instruction> insts);

} // namespace eel::machine

#endif // EEL_MACHINE_PIPELINE_HH
