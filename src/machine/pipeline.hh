/**
 * @file
 * Pipeline state tracking and the pipeline_stalls computation of the
 * paper's Appendix A.
 *
 * PipelineState models an in-order superscalar execution pipeline as
 * seen by a straight-line instruction sequence: per-cycle free unit
 * counts (structural hazards), and per-register last-read, last-write
 * and value-available cycles (RAW/WAR/WAW hazards). The key operation
 * is stalls(): "the number of cycles that the next instruction must
 * wait before entering the execution pipeline" (§3.2).
 */

#ifndef EEL_MACHINE_PIPELINE_HH
#define EEL_MACHINE_PIPELINE_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/isa/instruction.hh"
#include "src/machine/holdvec.hh"
#include "src/machine/model.hh"
#include "src/obs/stall.hh"

namespace eel::machine {

/**
 * A timing variant with its register accesses resolved against one
 * concrete instruction: flat register ids (pair accesses expanded),
 * fixed-capacity arrays, no per-use field decoding. Resolving once
 * per *static* instruction and issuing by plan is the timing
 * simulator's fast path — the per-retire variant match plus three
 * RegAccess::reg resolutions were the hottest lookups in the
 * pipeline (one pipeline_stalls evaluation per dynamic instruction).
 */
struct ResolvedVariant
{
    struct Read
    {
        uint16_t reg;    ///< RegId::flat()
        uint8_t cycle;
    };
    struct Write
    {
        uint16_t reg;
        uint8_t cycle;   ///< writeback pipeline cycle
        uint8_t ready;   ///< cycle the value was computed in
    };
    static constexpr unsigned maxAccesses = 12;

    const Variant *variant = nullptr;  ///< null = unresolved slot
    uint8_t nReads = 0;
    uint8_t nWrites = 0;
    Read reads[maxAccesses];
    Write writes[maxAccesses];

    /** Resolve v's register accesses against inst. */
    static ResolvedVariant resolve(const Variant &v,
                                   const isa::Instruction &inst);
    /** Resolve model.variant(inst) against inst. */
    static ResolvedVariant resolve(const MachineModel &model,
                                   const isa::Instruction &inst);
};

/**
 * Not thread-safe: stalls() is logically const but reuses explicit
 * mutable scratch buffers (scratchTrace/scratchAbsFor below); use
 * one PipelineState per thread. Debug builds assert on reentrant or
 * cross-thread overlap of the scratch (see simulate()), so a future
 * caller sharing a state across threads fails loudly instead of
 * silently corrupting the per-reason stall accounting.
 */
class PipelineState
{
  public:
    /**
     * simd_holds selects the vectorized structural-hazard fast path:
     * unstalled instructions (the vast majority) check and commit
     * their unit holds as one padded-row compare/subtract per
     * pipeline cycle (src/machine/holdvec.hh) instead of walking
     * hold segments cycle-by-cycle. Both settings produce identical
     * stall counts, issue cycles, reasons and normalized keys for
     * every instruction sequence — the flag exists so differential
     * tests can pin either engine; leave it defaulted otherwise.
     */
    explicit PipelineState(const MachineModel &model,
                           bool simd_holds = true);

    /** Forget all history; the pipeline is empty at cycle 0. */
    void reset();

    /**
     * pipeline_stalls (Appendix A): how many stall cycles inst incurs
     * if it enters the pipeline at the in-order issue frontier.
     * Counts both entry stalls and mid-pipeline stalls, exactly as
     * the appendix loop does. Does not modify register/unit history.
     */
    unsigned stalls(const isa::Instruction &inst) const;

    /** As stalls(), but entering at an explicit cycle >= frontier. */
    unsigned stallsAt(uint64_t cycle,
                      const isa::Instruction &inst) const;

    /**
     * As stalls()/stallsAt(), with the instruction pre-resolved by
     * the caller. Hot paths (the timing simulator, the scheduler's
     * candidate scan) resolve each static instruction once and issue
     * by plan, skipping the per-call variant match and register
     * field decoding.
     *
     * A non-null `why` receives one count per stall cycle, tagged
     * with the hazard that blocked that cycle (the Appendix A walk
     * fails exactly one check per non-advancing cycle). Null keeps
     * the fast path untouched — attribution costs nothing when off.
     */
    unsigned stalls(const ResolvedVariant &rv,
                    obs::StallBreakdown *why = nullptr) const;
    unsigned stallsAt(uint64_t cycle, const ResolvedVariant &rv,
                      obs::StallBreakdown *why = nullptr) const;

    struct IssueResult
    {
        uint64_t startCycle;  ///< cycle the instruction entered
        uint64_t doneCycle;   ///< cycle it left the pipeline
        unsigned stalls;      ///< total stall cycles (appendix metric)
    };

    /** Issue inst in order: compute stalls, commit its effects. */
    IssueResult issue(const isa::Instruction &inst);

    /** As issue(), with the instruction pre-resolved by the caller.
     *  A non-null `why` accumulates per-reason stall attribution,
     *  as in stalls(). */
    IssueResult issue(const ResolvedVariant &rv,
                      obs::StallBreakdown *why = nullptr);

    /**
     * Model a fetch bubble (e.g. a taken-branch redirect): the next
     * instruction cannot enter before frontier() + n. Spawn models
     * only the execution pipelines (§3.2), so the scheduler never
     * calls this; the timing simulator does.
     */
    void fetchBubble(unsigned n) { frontierCycle += n; }

    /**
     * Full copy of the hazard history (unit ring + register cycles +
     * frontier), in absolute cycles. restore() on a PipelineState of
     * the same machine model continues exactly where the snapshotted
     * one stood — the sharded simulator uses this to hand a shard's
     * end state to its successor when warmup validation fails.
     */
    struct Snapshot
    {
        std::vector<uint64_t> slotStamp;
        std::vector<int16_t> slotFree;
        std::vector<uint64_t> lastRead, lastWrite, writeAvail;
        uint64_t frontierCycle = 0;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /**
     * Append a translation-invariant encoding of the state that can
     * affect any *future* issue. Two states with equal keys produce
     * identical stall counts, reasons and relative issue cycles for
     * every subsequent instruction sequence, even if their absolute
     * cycle origins differ (all hazard checks compare cycles >= the
     * frontier, so history is rebased to it and cycles that can no
     * longer bind are canonicalized to 0).
     */
    void appendNormalizedKey(std::vector<uint64_t> &out) const;

    /**
     * The same normalized content as appendNormalizedKey(), in a
     * sparse applyable form: the live (non-full-capacity) unit rows
     * rebased to the frontier, and the registers whose hazard values
     * can still bind, as canonicalized rebased triples. This is both
     * the match key and the transported end state of the timing
     * simulator's trace memo — by the invariant above, two states
     * with equal captures time any future stream identically, so a
     * capture taken after a replayed trace can be re-applied wherever
     * the same entry capture recurs.
     */
    struct RebasedPipe
    {
        std::vector<uint64_t> rowAt;    ///< live cycle - frontier
        std::vector<int16_t> rowFree;   ///< rowStride lanes per row
        std::vector<uint32_t> regs;     ///< flat ids, ascending
        std::vector<uint64_t> regVals;  ///< 3 per reg: lr/lw/wa

        /** The canonicalization makes this semantic: equal captures
         *  <=> equal normalized keys <=> same future timing. */
        bool operator==(const RebasedPipe &) const = default;

        void
        clear()
        {
            rowAt.clear();
            rowFree.clear();
            regs.clear();
            regVals.clear();
        }
    };
    void captureRebased(RebasedPipe &out) const;

    /**
     * Jump the state to a previously captured end state: the frontier
     * advances by frontierDelta and the capture's rows/registers are
     * written rebased to the new frontier. Only valid when the
     * current state's captureRebased() equals the one taken at the
     * capture's recording entry — see the trace memo in
     * sim::TimingSim. Rows the frontier moved past and registers that
     * went inert are left untouched; both are canonicalized away by
     * every hazard check and by captureRebased() itself.
     */
    void applyRebased(const RebasedPipe &p, uint64_t frontierDelta);

    /** Cycle at which the next instruction would enter unstalled. */
    uint64_t frontier() const { return frontierCycle; }

    const MachineModel &model() const { return _model; }

    /** True when this state runs the vectorized hold fast path. */
    bool simdHolds() const { return simdHold; }

    /**
     * Padded hold-matrix rows processed by the vectorized fast path
     * since the last flush; flushSimdMetrics() folds the count into
     * the "simd.hold_blocks" obs counter and resets it.
     */
    uint64_t simdHoldBlocks() const { return _simdBlocks; }
    void flushSimdMetrics() const;

  private:
    struct Trace;

    /**
     * Core of Appendix A: walk the resolved instruction through its
     * pipeline cycles from entry_cycle, counting stalls. abs_for[k]
     * receives the absolute cycle at which pipeline cycle k executed
     * (size latency + 1). A non-null `why` gets one count per stall
     * cycle under the failing hazard's StallReason.
     */
    unsigned simulate(uint64_t entry_cycle, const ResolvedVariant &rv,
                      std::vector<uint64_t> &abs_for,
                      obs::StallBreakdown *why) const;

    void commit(const ResolvedVariant &rv,
                const std::vector<uint64_t> &abs_for);

    /** The walk-then-commit path issue() takes when the vectorized
     *  clean check fails (or is disabled). */
    IssueResult issueSlow(const ResolvedVariant &rv,
                          obs::StallBreakdown *why);

    /**
     * Closed-form no-stall precondition over the padded hold
     * matrices: every register hazard check and every per-cycle
     * structural check of the Appendix A walk, evaluated at
     * abs = entry + cycle. Passing guarantees the walk would advance
     * every cycle (zero stalls). Purely a read — unlike the scalar
     * walk it does not lazily re-initialize ring slots, it compares
     * stale slots against the full-capacity row instead.
     */
    bool fastClean(uint64_t entry, const ResolvedVariant &rv) const
    {
        for (unsigned i = 0; i < rv.nReads; ++i) {
            const ResolvedVariant::Read &a = rv.reads[i];
            if (entry + a.cycle < writeAvail[a.reg])
                return false;
        }
        for (unsigned i = 0; i < rv.nWrites; ++i) {
            const ResolvedVariant::Write &a = rv.writes[i];
            if (entry + a.cycle + 1 < lastRead[a.reg] ||
                entry + a.cycle < lastWrite[a.reg])
                return false;
        }
        const Variant &v = *rv.variant;
        const int16_t *req = v.holdMin.data();
        for (unsigned k = 0; k < v.holdRows; ++k, req += rowStride) {
            const uint64_t c = entry + k;
            const unsigned slot = static_cast<unsigned>(c % windowSize);
            const int16_t *row =
                slotStamp[slot] == c
                    ? &slotFree[static_cast<size_t>(slot) * rowStride]
                    : capInit.data();
            if (holdRowBlocked(row, req, rowStride))
                return false;
        }
        return true;
    }

    /**
     * Commit an instruction that fastClean() admitted at `entry`:
     * one row subtract per held cycle plus the register history
     * updates, equivalent to commit() with abs_for[k] = entry + k.
     */
    void commitFast(uint64_t entry, const ResolvedVariant &rv)
    {
        const Variant &v = *rv.variant;
        const int16_t *use = v.holdUse.data();
        for (unsigned k = 0; k < v.holdRows; ++k, use += rowStride) {
            const uint64_t c = entry + k;
            const unsigned slot = static_cast<unsigned>(c % windowSize);
            if (slotStamp[slot] != c)
                initSlot(c, slot);
            holdRowSub(&slotFree[static_cast<size_t>(slot) * rowStride],
                       use, rowStride);
        }
        _simdBlocks += v.holdRows;
        ++_fastIssues;
        for (unsigned i = 0; i < rv.nReads; ++i) {
            const ResolvedVariant::Read &a = rv.reads[i];
            lastRead[a.reg] =
                std::max(lastRead[a.reg], entry + a.cycle + 1);
        }
        for (unsigned i = 0; i < rv.nWrites; ++i) {
            const ResolvedVariant::Write &a = rv.writes[i];
            lastWrite[a.reg] =
                std::max(lastWrite[a.reg], entry + a.cycle + 1);
            writeAvail[a.reg] =
                std::max(writeAvail[a.reg], entry + a.ready + 1);
        }
        frontierCycle = entry;
    }

    /** Free-count row for absolute cycle c (lazy slot reinit). */
    int16_t *rowFor(uint64_t c) const;
    void initSlot(uint64_t c, unsigned slot) const;

    const MachineModel &_model;
    unsigned numUnits;
    unsigned rowStride;   ///< paddedUnits(numUnits) int16 lanes
    bool simdHold;
    std::vector<int16_t> capInit;  ///< unit capacities, slot reinit
                                   ///< (rowStride lanes, pads zero)

    // Ring buffer of per-cycle free unit counts. Slots are stamped
    // with the absolute cycle they represent and re-initialized to
    // full capacity on first touch of a new cycle.
    static constexpr unsigned windowSize = 256;
    mutable std::vector<uint64_t> slotStamp;   // windowSize
    mutable std::vector<int16_t> slotFree;     // windowSize * rowStride

    /** Highest cycle any slot is stamped with (monotone over-
     *  approximation); bounds captureRebased()'s live-row scan to
     *  [frontier, maxStamped] instead of the whole ring. */
    mutable uint64_t maxStamped = 0;

    mutable uint64_t _simdBlocks = 0;  ///< see simdHoldBlocks()
    mutable uint64_t _fastIssues = 0;  ///< commitFast issue count

    // Register history, indexed by RegId::flat(). Values are
    // "absolute cycle + 1" so 0 means "never".
    std::vector<uint64_t> lastRead;
    std::vector<uint64_t> lastWrite;
    std::vector<uint64_t> writeAvail;  // first cycle a read may occur

    // Scratch buffers reused across simulate() calls (performance:
    // one pipeline_stalls evaluation per dynamic instruction).
    // scratchTrace is zeroed once in the constructor; simulate()
    // restores the entries it touched before returning. scratchAbsFor
    // is sized once to maxLatency + 1.
    mutable std::vector<int> scratchTrace;
    mutable std::vector<uint64_t> scratchAbsFor;

    /** Debug-build reentrancy canary for the scratch buffers:
     *  simulate() sets it for its duration and asserts it was clear
     *  on entry. Catches both reentrant use and (best-effort) two
     *  threads sharing one PipelineState. */
    mutable bool scratchBusy = false;

    uint64_t frontierCycle = 0;
};

// The pre-resolved entry points run once per dynamic instruction in
// the timing simulator and once per candidate scan step in the
// scheduler; they are defined inline so the no-stall fast path
// (fastClean + commitFast, a handful of compares and row ops) inlines
// into those loops and only stalled instructions pay for a call into
// the exact Appendix A walk.

inline unsigned
PipelineState::stalls(const ResolvedVariant &rv,
                      obs::StallBreakdown *why) const
{
    if (simdHold && fastClean(frontierCycle, rv))
        return 0;
    return simulate(frontierCycle, rv, scratchAbsFor, why);
}

inline unsigned
PipelineState::stallsAt(uint64_t cycle, const ResolvedVariant &rv,
                        obs::StallBreakdown *why) const
{
    if (simdHold && fastClean(cycle, rv))
        return 0;
    return simulate(cycle, rv, scratchAbsFor, why);
}

inline PipelineState::IssueResult
PipelineState::issue(const ResolvedVariant &rv, obs::StallBreakdown *why)
{
    const uint64_t entry = frontierCycle;
    if (simdHold && fastClean(entry, rv)) {
        commitFast(entry, rv);
        return IssueResult{entry, entry + rv.variant->latency, 0};
    }
    return issueSlow(rv, why);
}

/**
 * Schedule-length evaluation: total cycles a straight-line sequence
 * occupies from an empty pipeline (issue cycle of the last
 * instruction + 1). Used to compare schedules.
 */
uint64_t sequenceCycles(const MachineModel &model,
                        std::span<const isa::Instruction> insts);

/**
 * Issue span of a straight-line sequence: the cycle after the last
 * instruction enters the pipeline, from an empty pipeline. This is
 * the "executes in N cycles" number the paper quotes for the
 * profiling snippet (§4.2) — it excludes the writeback drain.
 */
uint64_t sequenceIssueSpan(const MachineModel &model,
                           std::span<const isa::Instruction> insts);

} // namespace eel::machine

#endif // EEL_MACHINE_PIPELINE_HH
