/**
 * @file
 * Pipeline state tracking and the pipeline_stalls computation of the
 * paper's Appendix A.
 *
 * PipelineState models an in-order superscalar execution pipeline as
 * seen by a straight-line instruction sequence: per-cycle free unit
 * counts (structural hazards), and per-register last-read, last-write
 * and value-available cycles (RAW/WAR/WAW hazards). The key operation
 * is stalls(): "the number of cycles that the next instruction must
 * wait before entering the execution pipeline" (§3.2).
 */

#ifndef EEL_MACHINE_PIPELINE_HH
#define EEL_MACHINE_PIPELINE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/isa/instruction.hh"
#include "src/machine/model.hh"
#include "src/obs/stall.hh"

namespace eel::machine {

/**
 * A timing variant with its register accesses resolved against one
 * concrete instruction: flat register ids (pair accesses expanded),
 * fixed-capacity arrays, no per-use field decoding. Resolving once
 * per *static* instruction and issuing by plan is the timing
 * simulator's fast path — the per-retire variant match plus three
 * RegAccess::reg resolutions were the hottest lookups in the
 * pipeline (one pipeline_stalls evaluation per dynamic instruction).
 */
struct ResolvedVariant
{
    struct Read
    {
        uint16_t reg;    ///< RegId::flat()
        uint8_t cycle;
    };
    struct Write
    {
        uint16_t reg;
        uint8_t cycle;   ///< writeback pipeline cycle
        uint8_t ready;   ///< cycle the value was computed in
    };
    static constexpr unsigned maxAccesses = 12;

    const Variant *variant = nullptr;  ///< null = unresolved slot
    uint8_t nReads = 0;
    uint8_t nWrites = 0;
    Read reads[maxAccesses];
    Write writes[maxAccesses];

    /** Resolve v's register accesses against inst. */
    static ResolvedVariant resolve(const Variant &v,
                                   const isa::Instruction &inst);
    /** Resolve model.variant(inst) against inst. */
    static ResolvedVariant resolve(const MachineModel &model,
                                   const isa::Instruction &inst);
};

/**
 * Not thread-safe: stalls() is logically const but reuses explicit
 * mutable scratch buffers (scratchTrace/scratchAbsFor below); use
 * one PipelineState per thread. Debug builds assert on reentrant or
 * cross-thread overlap of the scratch (see simulate()), so a future
 * caller sharing a state across threads fails loudly instead of
 * silently corrupting the per-reason stall accounting.
 */
class PipelineState
{
  public:
    explicit PipelineState(const MachineModel &model);

    /** Forget all history; the pipeline is empty at cycle 0. */
    void reset();

    /**
     * pipeline_stalls (Appendix A): how many stall cycles inst incurs
     * if it enters the pipeline at the in-order issue frontier.
     * Counts both entry stalls and mid-pipeline stalls, exactly as
     * the appendix loop does. Does not modify register/unit history.
     */
    unsigned stalls(const isa::Instruction &inst) const;

    /** As stalls(), but entering at an explicit cycle >= frontier. */
    unsigned stallsAt(uint64_t cycle,
                      const isa::Instruction &inst) const;

    /**
     * As stalls()/stallsAt(), with the instruction pre-resolved by
     * the caller. Hot paths (the timing simulator, the scheduler's
     * candidate scan) resolve each static instruction once and issue
     * by plan, skipping the per-call variant match and register
     * field decoding.
     *
     * A non-null `why` receives one count per stall cycle, tagged
     * with the hazard that blocked that cycle (the Appendix A walk
     * fails exactly one check per non-advancing cycle). Null keeps
     * the fast path untouched — attribution costs nothing when off.
     */
    unsigned stalls(const ResolvedVariant &rv,
                    obs::StallBreakdown *why = nullptr) const;
    unsigned stallsAt(uint64_t cycle, const ResolvedVariant &rv,
                      obs::StallBreakdown *why = nullptr) const;

    struct IssueResult
    {
        uint64_t startCycle;  ///< cycle the instruction entered
        uint64_t doneCycle;   ///< cycle it left the pipeline
        unsigned stalls;      ///< total stall cycles (appendix metric)
    };

    /** Issue inst in order: compute stalls, commit its effects. */
    IssueResult issue(const isa::Instruction &inst);

    /** As issue(), with the instruction pre-resolved by the caller.
     *  A non-null `why` accumulates per-reason stall attribution,
     *  as in stalls(). */
    IssueResult issue(const ResolvedVariant &rv,
                      obs::StallBreakdown *why = nullptr);

    /**
     * Model a fetch bubble (e.g. a taken-branch redirect): the next
     * instruction cannot enter before frontier() + n. Spawn models
     * only the execution pipelines (§3.2), so the scheduler never
     * calls this; the timing simulator does.
     */
    void fetchBubble(unsigned n) { frontierCycle += n; }

    /**
     * Full copy of the hazard history (unit ring + register cycles +
     * frontier), in absolute cycles. restore() on a PipelineState of
     * the same machine model continues exactly where the snapshotted
     * one stood — the sharded simulator uses this to hand a shard's
     * end state to its successor when warmup validation fails.
     */
    struct Snapshot
    {
        std::vector<uint64_t> slotStamp;
        std::vector<int16_t> slotFree;
        std::vector<uint64_t> lastRead, lastWrite, writeAvail;
        uint64_t frontierCycle = 0;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /**
     * Append a translation-invariant encoding of the state that can
     * affect any *future* issue. Two states with equal keys produce
     * identical stall counts, reasons and relative issue cycles for
     * every subsequent instruction sequence, even if their absolute
     * cycle origins differ (all hazard checks compare cycles >= the
     * frontier, so history is rebased to it and cycles that can no
     * longer bind are canonicalized to 0).
     */
    void appendNormalizedKey(std::vector<uint64_t> &out) const;

    /** Cycle at which the next instruction would enter unstalled. */
    uint64_t frontier() const { return frontierCycle; }

    const MachineModel &model() const { return _model; }

  private:
    struct Trace;

    /**
     * Core of Appendix A: walk the resolved instruction through its
     * pipeline cycles from entry_cycle, counting stalls. abs_for[k]
     * receives the absolute cycle at which pipeline cycle k executed
     * (size latency + 1). A non-null `why` gets one count per stall
     * cycle under the failing hazard's StallReason.
     */
    unsigned simulate(uint64_t entry_cycle, const ResolvedVariant &rv,
                      std::vector<uint64_t> &abs_for,
                      obs::StallBreakdown *why) const;

    void commit(const ResolvedVariant &rv,
                const std::vector<uint64_t> &abs_for);

    /** Free-count row for absolute cycle c (lazy slot reinit). */
    int16_t *rowFor(uint64_t c) const;
    void initSlot(uint64_t c, unsigned slot) const;

    const MachineModel &_model;
    unsigned numUnits;
    std::vector<int16_t> capInit;  ///< unit capacities, slot reinit

    // Ring buffer of per-cycle free unit counts. Slots are stamped
    // with the absolute cycle they represent and re-initialized to
    // full capacity on first touch of a new cycle.
    static constexpr unsigned windowSize = 256;
    mutable std::vector<uint64_t> slotStamp;   // windowSize
    mutable std::vector<int16_t> slotFree;     // windowSize * numUnits

    // Register history, indexed by RegId::flat(). Values are
    // "absolute cycle + 1" so 0 means "never".
    std::vector<uint64_t> lastRead;
    std::vector<uint64_t> lastWrite;
    std::vector<uint64_t> writeAvail;  // first cycle a read may occur

    // Scratch buffers reused across simulate() calls (performance:
    // one pipeline_stalls evaluation per dynamic instruction).
    // scratchTrace is zeroed once in the constructor; simulate()
    // restores the entries it touched before returning. scratchAbsFor
    // is sized once to maxLatency + 1.
    mutable std::vector<int> scratchTrace;
    mutable std::vector<uint64_t> scratchAbsFor;

    /** Debug-build reentrancy canary for the scratch buffers:
     *  simulate() sets it for its duration and asserts it was clear
     *  on entry. Catches both reentrant use and (best-effort) two
     *  threads sharing one PipelineState. */
    mutable bool scratchBusy = false;

    uint64_t frontierCycle = 0;
};

/**
 * Schedule-length evaluation: total cycles a straight-line sequence
 * occupies from an empty pipeline (issue cycle of the last
 * instruction + 1). Used to compare schedules.
 */
uint64_t sequenceCycles(const MachineModel &model,
                        std::span<const isa::Instruction> insts);

/**
 * Issue span of a straight-line sequence: the cycle after the last
 * instruction enters the pipeline, from an empty pipeline. This is
 * the "executes in N cycles" number the paper quotes for the
 * profiling snippet (§4.2) — it excludes the writeback drain.
 */
uint64_t sequenceIssueSpan(const MachineModel &model,
                           std::span<const isa::Instruction> insts);

} // namespace eel::machine

#endif // EEL_MACHINE_PIPELINE_HH
