#include "src/machine/model.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <mutex>

#include "src/machine/holdvec.hh"

#include "src/support/logging.hh"

namespace eel::machine {

namespace {

isa::RegClass
classForFile(const std::string &file_name)
{
    if (file_name == "R") return isa::RegClass::Int;
    if (file_name == "F") return isa::RegClass::Fp;
    if (file_name == "ICC") return isa::RegClass::Icc;
    if (file_name == "FCC") return isa::RegClass::Fcc;
    if (file_name == "Y") return isa::RegClass::Y;
    return isa::RegClass::None;
}

long
fieldValue(const isa::Instruction &inst, sadl::Field f)
{
    switch (f) {
      case sadl::Field::Rs1: return inst.rs1;
      case sadl::Field::Rs2: return inst.rs2;
      case sadl::Field::Rd: return inst.rd;
      case sadl::Field::Iflag: return inst.iflag ? 1 : 0;
      case sadl::Field::CondF: return inst.cond;
      case sadl::Field::Annul: return inst.annul ? 1 : 0;
      case sadl::Field::Simm13: return inst.simm13;
      case sadl::Field::Imm22: return inst.imm22;
      case sadl::Field::Disp: return inst.disp;
      default:
        panic("fieldValue: access through Field::None");
    }
}

uint8_t
fieldRegIndex(const isa::Instruction &inst, sadl::Field f,
              uint8_t const_idx)
{
    switch (f) {
      case sadl::Field::Rs1: return inst.rs1;
      case sadl::Field::Rs2: return inst.rs2;
      case sadl::Field::Rd: return inst.rd;
      case sadl::Field::None: return const_idx;
      default:
        panic("register index through non-register field '%s'",
              sadl::fieldName(f).c_str());
    }
}

} // namespace

isa::RegId
RegAccess::reg(const isa::Instruction &inst) const
{
    uint8_t idx = (cls == isa::RegClass::Icc ||
                   cls == isa::RegClass::Fcc || cls == isa::RegClass::Y)
                      ? 0
                      : fieldRegIndex(inst, field, constIdx);
    return isa::RegId(cls, idx);
}

isa::RegId
RegAccess::pairReg(const isa::Instruction &inst) const
{
    isa::RegId base = reg(inst);
    return isa::RegId(base.cls, base.idx | 1);
}

void
Variant::buildHolds(unsigned num_units)
{
    holds.clear();
    for (unsigned u = 0; u < num_units; ++u) {
        int level = 0;
        unsigned seg_start = 0;
        for (unsigned c = 0; c <= latency; ++c) {
            int delta = 0;
            for (const sadl::UnitEvent &e : release[c])
                if (e.unit == u)
                    delta -= e.num;
            if (c < latency)
                for (const sadl::UnitEvent &e : acquire[c])
                    if (e.unit == u)
                        delta += e.num;
            if (delta == 0)
                continue;
            if (level > 0 && c > seg_start)
                holds.push_back(UnitHold{
                    static_cast<uint16_t>(u),
                    static_cast<uint8_t>(seg_start),
                    static_cast<uint8_t>(c),
                    static_cast<int16_t>(level)});
            level += delta;
            seg_start = c;
        }
        if (level != 0)
            panic("buildHolds: unbalanced unit %u", u);
    }

    // The padded per-cycle matrices the vectorized pipeline fast
    // paths consume (see the member comment in model.hh).
    holdStride = paddedUnits(num_units);
    holdRows = 0;
    for (const UnitHold &h : holds)
        holdRows = std::max(holdRows, static_cast<unsigned>(h.to));
    holdMin.assign(static_cast<size_t>(holdRows) * holdStride,
                   INT16_MIN);
    holdUse.assign(static_cast<size_t>(holdRows) * holdStride, 0);
    for (const UnitHold &h : holds) {
        for (unsigned c = h.from; c < h.to; ++c) {
            size_t at = static_cast<size_t>(c) * holdStride + h.unit;
            holdMin[at] = h.num;
            holdUse[at] = h.num;
        }
    }
}

void
Variant::buildFlat()
{
    auto flatten = [](const std::vector<std::vector<sadl::UnitEvent>>
                          &table,
                      std::vector<sadl::UnitEvent> &flat,
                      std::vector<uint16_t> &off) {
        flat.clear();
        off.clear();
        off.reserve(table.size() + 1);
        for (const auto &events : table) {
            off.push_back(static_cast<uint16_t>(flat.size()));
            flat.insert(flat.end(), events.begin(), events.end());
        }
        off.push_back(static_cast<uint16_t>(flat.size()));
    };
    flatten(acquire, acquireFlat, acquireOff);
    flatten(release, releaseFlat, releaseOff);
}

bool
Variant::matches(const isa::Instruction &inst) const
{
    for (const sadl::VariantCond &c : conds) {
        bool eq = fieldValue(inst, c.field) == c.value;
        if (eq != c.mustEqual)
            return false;
    }
    return true;
}

MachineModel
MachineModel::fromSadl(const std::string &source, std::string name,
                       double clock_mhz)
{
    sadl::Description desc = sadl::analyze(source);

    MachineModel m;
    m._name = std::move(name);
    m._clockMhz = clock_mhz;
    m.byOp.resize(isa::numOps);

    for (const sadl::UnitDecl &u : desc.units) {
        m._unitNames.push_back(u.name);
        m._unitCaps.push_back(u.count);
        if (u.name == "Group")
            m._issueWidth = u.count;
    }
    if (m._unitNames.empty())
        fatal("machine '%s': description declares no units",
              m._name.c_str());

    m._numGroups = desc.numGroups;

    for (const sadl::Timing &t : desc.timings) {
        auto op = isa::opFromName(t.mnemonic);
        if (!op)
            fatal("machine '%s': sem binds unknown mnemonic '%s'",
                  m._name.c_str(), t.mnemonic.c_str());

        Variant v;
        v.conds = t.conds;
        v.group = t.group;
        v.latency = t.latency;
        v.acquire = t.acquire;
        v.release = t.release;
        auto convert = [&](const sadl::RegAccess &a) {
            const std::string &file = desc.regFiles[a.file].name;
            isa::RegClass cls = classForFile(file);
            if (cls == isa::RegClass::None)
                fatal("machine '%s': register file '%s' has no "
                      "architectural mapping", m._name.c_str(),
                      file.c_str());
            return RegAccess{cls, a.field, static_cast<uint8_t>(
                                 a.constIdx), a.pair, a.cycle,
                             a.valueReady};
        };
        for (const sadl::RegAccess &a : t.reads)
            v.reads.push_back(convert(a));
        for (const sadl::RegAccess &a : t.writes)
            v.writes.push_back(convert(a));
        v.buildHolds(static_cast<unsigned>(m._unitCaps.size()));
        v.buildFlat();

        m._maxLatency = std::max(m._maxLatency, v.latency);
        m.byOp[static_cast<unsigned>(*op)].push_back(std::move(v));
    }

    // Every opcode the ISA defines must be described.
    for (unsigned i = 1; i < isa::numOps; ++i) {
        if (m.byOp[i].empty())
            fatal("machine '%s': no sem binding for mnemonic '%s'",
                  m._name.c_str(),
                  std::string(isa::opName(static_cast<isa::Op>(i)))
                      .c_str());
    }
    return m;
}

const Variant &
MachineModel::variant(const isa::Instruction &inst) const
{
    const auto &vars = byOp[static_cast<unsigned>(inst.op)];
    for (const Variant &v : vars)
        if (v.matches(inst))
            return v;
    fatal("machine '%s': no timing variant matches '%s'",
          _name.c_str(), isa::disassemble(inst).c_str());
}

const MachineModel &
MachineModel::builtin(std::string_view name)
{
    static std::mutex mu;
    static std::map<std::string, MachineModel, std::less<>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;

    double mhz;
    unsigned penalty;
    if (name == "hypersparc") {
        mhz = 66.0;
        penalty = 2;
    } else if (name == "supersparc") {
        mhz = 50.0;
        penalty = 2;
    } else if (name == "ultrasparc") {
        // The 9-stage UltraSPARC pays more for every fetch redirect.
        mhz = 167.0;
        penalty = 3;
    } else if (name == "wide8") {
        // Hypothetical 8-way future machine (paper section 1's
        // speculation); deep pipe, UltraSPARC-class redirect cost.
        mhz = 250.0;
        penalty = 3;
    } else {
        fatal("unknown builtin machine '%s'",
              std::string(name).c_str());
    }

    MachineModel m = fromSadl(std::string(builtinSadlSource(name)),
                              std::string(name), mhz);
    m.setBranchPenalty(penalty);
    auto [pos, inserted] = cache.emplace(std::string(name),
                                         std::move(m));
    (void)inserted;
    return pos->second;
}

} // namespace eel::machine
