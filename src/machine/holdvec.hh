/**
 * @file
 * Row primitives for the vectorized hold-segment checks.
 *
 * PipelineState keeps its per-cycle free unit counts in rows padded
 * to a multiple of `holdLanes` int16 lanes, and every Variant carries
 * matching per-pipeline-cycle requirement/occupancy rows
 * (Variant::holdMin/holdUse). That reduces both sides of the
 * structural hazard work — "may this instruction pass cycle k?" and
 * "commit this instruction's usage at cycle k" — to one compare or
 * subtract across a whole row, which the two functions below
 * implement as 128-bit vector ops where available.
 *
 * Three implementations, selected at compile time:
 *   - SSE2 intrinsics (any x86-64 target),
 *   - NEON intrinsics (aarch64),
 *   - a plain scalar loop, used when the build disables the
 *     EEL_SIMD_HOLD option or targets anything else.
 * All three are exact: padding lanes hold INT16_MIN requirements
 * (never block) and zero occupancy (never change), so no tail code
 * and no masking is needed anywhere.
 */

#ifndef EEL_MACHINE_HOLDVEC_HH
#define EEL_MACHINE_HOLDVEC_HH

#include <cstdint>

#if defined(EEL_SIMD_HOLD) && defined(__SSE2__)
#include <emmintrin.h>
#define EEL_HOLDVEC_SSE2 1
#elif defined(EEL_SIMD_HOLD) && defined(__ARM_NEON) && \
    defined(__aarch64__)
#include <arm_neon.h>
#define EEL_HOLDVEC_NEON 1
#endif

namespace eel::machine {

/** Lanes per row block; rows are padded to a multiple of this. */
inline constexpr unsigned holdLanes = 8;

/** numUnits rounded up to a whole number of row blocks. */
constexpr unsigned
paddedUnits(unsigned num_units)
{
    return (num_units + holdLanes - 1) / holdLanes * holdLanes;
}

/** Name of the row implementation compiled in (for reporting). */
constexpr const char *
holdVecImpl()
{
#if defined(EEL_HOLDVEC_SSE2)
    return "sse2";
#elif defined(EEL_HOLDVEC_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** True if any lane i < lanes has row[i] < req[i]. */
inline bool
holdRowBlocked(const int16_t *row, const int16_t *req, unsigned lanes)
{
#if defined(EEL_HOLDVEC_SSE2)
    for (unsigned i = 0; i < lanes; i += holdLanes) {
        __m128i r = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + i));
        __m128i q = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(req + i));
        if (_mm_movemask_epi8(_mm_cmplt_epi16(r, q)))
            return true;
    }
    return false;
#elif defined(EEL_HOLDVEC_NEON)
    for (unsigned i = 0; i < lanes; i += holdLanes) {
        uint16x8_t lt = vcltq_s16(vld1q_s16(row + i),
                                  vld1q_s16(req + i));
        if (vmaxvq_u16(lt))
            return true;
    }
    return false;
#else
    for (unsigned i = 0; i < lanes; ++i)
        if (row[i] < req[i])
            return true;
    return false;
#endif
}

/** row[i] -= use[i] for every lane i < lanes. */
inline void
holdRowSub(int16_t *row, const int16_t *use, unsigned lanes)
{
#if defined(EEL_HOLDVEC_SSE2)
    for (unsigned i = 0; i < lanes; i += holdLanes) {
        __m128i r = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + i));
        __m128i u = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(use + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(row + i),
                         _mm_sub_epi16(r, u));
    }
#elif defined(EEL_HOLDVEC_NEON)
    for (unsigned i = 0; i < lanes; i += holdLanes)
        vst1q_s16(row + i, vsubq_s16(vld1q_s16(row + i),
                                     vld1q_s16(use + i)));
#else
    for (unsigned i = 0; i < lanes; ++i)
        row[i] = static_cast<int16_t>(row[i] - use[i]);
#endif
}

} // namespace eel::machine

#endif // EEL_MACHINE_HOLDVEC_HH
