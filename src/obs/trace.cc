#include "src/obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/log.hh"

namespace eel::obs {

namespace detail {
std::atomic<bool> tracingOn{false};
} // namespace detail

namespace {

struct Event
{
    char phase;        ///< 'X' complete, 'i' instant
    std::string name;
    uint64_t tsNs;
    uint64_t durNs;    ///< 'X' only
    std::string args;  ///< pre-rendered JSON object, may be empty
};

/** One thread's buffered events. Owned by the registry so events
 *  survive the thread (pool workers outlive their batches, but a
 *  trace may be written after a pool is destroyed). */
struct ThreadBuf
{
    int tid;
    std::string name;
    std::vector<Event> events;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local ThreadBuf *tlBuf = nullptr;

ThreadBuf &
myBuf()
{
    if (!tlBuf) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        auto b = std::make_unique<ThreadBuf>();
        b->tid = static_cast<int>(r.bufs.size());
        tlBuf = b.get();
        r.bufs.push_back(std::move(b));
    }
    return *tlBuf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

namespace detail {

uint64_t
traceNowNs()
{
    using namespace std::chrono;
    static const steady_clock::time_point epoch = steady_clock::now();
    return static_cast<uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now() - epoch)
            .count());
}

void
recordComplete(std::string name, uint64_t t0, uint64_t t1)
{
    myBuf().events.push_back(
        Event{'X', std::move(name), t0, t1 - t0, {}});
}

} // namespace detail

void
enableTracing()
{
    detail::traceNowNs();  // pin the epoch before the first span
    detail::tracingOn.store(true, std::memory_order_relaxed);
}

void
resetTrace()
{
    detail::tracingOn.store(false, std::memory_order_relaxed);
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &b : r.bufs)
        b->events.clear();
}

void
instant(const char *name)
{
    if (tracingEnabled())
        myBuf().events.push_back(
            Event{'i', name, detail::traceNowNs(), 0, {}});
}

void
instant(const char *name, std::string args_json)
{
    if (tracingEnabled())
        myBuf().events.push_back(Event{'i', name,
                                       detail::traceNowNs(), 0,
                                       std::move(args_json)});
}

void
recordSpan(std::string name, uint64_t t0Ns, uint64_t t1Ns,
           std::string args_json)
{
    if (!tracingEnabled())
        return;
    if (t1Ns < t0Ns)
        t1Ns = t0Ns;
    myBuf().events.push_back(Event{'X', std::move(name), t0Ns,
                                   t1Ns - t0Ns,
                                   std::move(args_json)});
}

void
setThreadName(std::string name)
{
    // Recorded even when tracing is off: cheap, and a later
    // enableTracing() then still knows the long-lived threads.
    // The log layer shares the tag so trace tracks and log lines
    // agree on who a thread is.
    detail::setLogThreadName(name.c_str());
    myBuf().name = std::move(name);
}

bool
writeTrace(const std::string &path)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        logf(LogLevel::Error, "trace: cannot write %s", path.c_str());
        return false;
    }

    std::fprintf(f, "{\"traceEvents\":[\n");
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                 "\"name\":\"process_name\","
                 "\"args\":{\"name\":\"eelsched\"}}");

    for (const auto &b : r.bufs) {
        std::string tname =
            b->name.empty() ? "thread-" + std::to_string(b->tid)
                            : b->name;
        std::fprintf(f,
                     ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     b->tid, jsonEscape(tname).c_str());

        // Spans are appended at destruction, so a parent lands after
        // its children; sort by start time (longer duration first on
        // ties) to restore the nesting order viewers expect — which
        // also makes ts monotone per tid by construction.
        std::vector<const Event *> evs;
        evs.reserve(b->events.size());
        for (const Event &e : b->events)
            evs.push_back(&e);
        std::stable_sort(evs.begin(), evs.end(),
                         [](const Event *a, const Event *b2) {
                             if (a->tsNs != b2->tsNs)
                                 return a->tsNs < b2->tsNs;
                             return a->durNs > b2->durNs;
                         });
        for (const Event *e : evs) {
            std::fprintf(f,
                         ",\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,"
                         "\"name\":\"%s\",\"ts\":%.3f",
                         e->phase, b->tid,
                         jsonEscape(e->name).c_str(),
                         double(e->tsNs) / 1000.0);
            if (e->phase == 'X')
                std::fprintf(f, ",\"dur\":%.3f",
                             double(e->durNs) / 1000.0);
            if (e->phase == 'i')
                std::fprintf(f, ",\"s\":\"t\"");
            if (!e->args.empty())
                std::fprintf(f, ",\"args\":%s", e->args.c_str());
            std::fprintf(f, "}");
        }
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
    std::fclose(f);
    return true;
}

} // namespace eel::obs
