/**
 * @file
 * Per-request telemetry record for a request-serving pipeline: a
 * wire-propagated trace identity (client-generated 64-bit id plus a
 * sampling flag) and one timestamp interval per processing phase —
 * accept, queue wait, decode/intern, rewrite, simulate, result-cache
 * lookup, reply write. Timestamps are obs::nowNs() ticks taken
 * unconditionally (they feed the latency histograms whether or not
 * tracing is on); when tracing is enabled and the request is sampled
 * (or untagged), emitTrace() turns the record into one parent
 * "svc.request.<op>" span with a child span per phase, all
 * timestamped so viewers nest them by containment on the worker's
 * track and the trace id rides in the span args.
 *
 * The same record renders as JSON for the slow-request flight
 * recorder (the HTTP gateway's /requests/slow).
 */

#ifndef EEL_OBS_TIMELINE_HH
#define EEL_OBS_TIMELINE_HH

#include <cstdint>
#include <string>

namespace eel::obs {

struct RequestTimeline
{
    enum Phase : uint8_t {
        Queue = 0,   ///< admission-queue wait (enqueue -> dequeue)
        Decode,      ///< payload decode + page intern
        Rewrite,     ///< batch rewrite of the asked-for variant
        Sim,         ///< emulation / timing simulation
        CacheLookup, ///< rewrite-/result-cache probe
        Reply,       ///< reply frame write
        kPhases,
    };
    static const char *phaseName(Phase p);

    struct Interval
    {
        uint64_t t0 = 0, t1 = 0;  ///< nowNs() ticks; 0,0 = unused
        bool set() const { return t1 > t0 || t0 != 0; }
        uint64_t ns() const { return t1 > t0 ? t1 - t0 : 0; }
    };

    // Wire-propagated trace context (0 id = untagged request).
    uint64_t traceId = 0;
    bool sampled = false;

    std::string op;       ///< operation name ("submit_xef", ...)
    uint32_t seq = 0;     ///< wire sequence number
    std::string status;   ///< reply status name ("ok", ...)

    uint64_t tsAccept = 0;  ///< request frame fully read
    uint64_t tsDone = 0;    ///< reply written
    Interval phase[kPhases];

    void begin(Phase p);
    void end(Phase p);

    uint64_t totalNs() const
    {
        return tsDone > tsAccept ? tsDone - tsAccept : 0;
    }

    /** Emit the parent request span plus one child span per recorded
     *  phase onto the current thread's trace buffer. Respects the
     *  sampling flag: tagged-but-unsampled requests stay silent.
     *  No-op when tracing is off. */
    void emitTrace() const;

    /** One JSON object (trace id, op, status, total and per-phase
     *  milliseconds) — the flight-recorder entry format. */
    std::string json() const;
};

} // namespace eel::obs

#endif // EEL_OBS_TIMELINE_HH
