#include "src/obs/http.hh"

#include <cctype>
#include <cstdio>

#include "src/obs/histogram.hh"
#include "src/obs/metrics.hh"

namespace eel::obs::http {

namespace {

bool
isTokenChar(char c)
{
    // RFC 7230 tchar, the conservative core.
    return std::isalnum(static_cast<unsigned char>(c)) ||
           c == '-' || c == '_' || c == '.' || c == '!' ||
           c == '#' || c == '$' || c == '%' || c == '&' ||
           c == '\'' || c == '*' || c == '+' || c == '^' ||
           c == '`' || c == '|' || c == '~';
}

const char *
reason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
    }
    return "Unknown";
}

/** Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. The registries
 *  use dotted names; map everything else to '_'. */
std::string
promName(const std::string &name)
{
    std::string out = "eel_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c))
                   ? c
                   : '_';
    return out;
}

} // namespace

ParseResult
parseRequest(const std::string &buf, Request &out, size_t &consumed,
             size_t maxBytes)
{
    size_t end = buf.find("\r\n\r\n");
    if (end == std::string::npos) {
        // A bare request line + blank line ("...\r\n\r\n") is the
        // minimum terminator; without it we either need more bytes
        // or the peer is over budget.
        return buf.size() > maxBytes ? ParseResult::TooLarge
                                     : ParseResult::NeedMore;
    }
    if (end + 4 > maxBytes)
        return ParseResult::TooLarge;
    consumed = end + 4;

    // Request line: METHOD SP TARGET SP VERSION.
    size_t lineEnd = buf.find("\r\n");
    std::string line = buf.substr(0, lineEnd);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
        return ParseResult::Bad;
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out.version = line.substr(sp2 + 1);
    if (out.method.empty() || out.target.empty())
        return ParseResult::Bad;
    for (char c : out.method)
        if (!isTokenChar(c))
            return ParseResult::Bad;
    if (out.target[0] != '/')
        return ParseResult::Bad;
    for (char c : out.target)
        if (std::iscntrl(static_cast<unsigned char>(c)) ||
            c == ' ')
            return ParseResult::Bad;
    if (out.version.rfind("HTTP/", 0) != 0)
        return ParseResult::Bad;

    // Headers: token ":" OWS value.
    size_t at = lineEnd + 2;
    out.headers.clear();
    while (at < end) {
        size_t eol = buf.find("\r\n", at);
        std::string h = buf.substr(at, eol - at);
        at = eol + 2;
        size_t colon = h.find(':');
        if (colon == std::string::npos || colon == 0)
            return ParseResult::Bad;
        std::string name = h.substr(0, colon);
        for (char c : name)
            if (!isTokenChar(c))
                return ParseResult::Bad;
        size_t v0 = colon + 1;
        while (v0 < h.size() && (h[v0] == ' ' || h[v0] == '\t'))
            ++v0;
        size_t v1 = h.size();
        while (v1 > v0 &&
               (h[v1 - 1] == ' ' || h[v1 - 1] == '\t'))
            --v1;
        out.headers.emplace_back(std::move(name),
                                 h.substr(v0, v1 - v0));
    }
    return ParseResult::Ok;
}

std::string
response(int status, const std::string &contentType,
         const std::string &body)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  status, reason(status), contentType.c_str(),
                  body.size());
    return head + body;
}

std::string
prometheusText(const std::string &extra)
{
    std::string out = extra;
    char buf[192];

    for (const auto &[name, value] : metricsSnapshot()) {
        // MaxGauges and counters alike render as untyped samples
        // unless we carry kinds through the snapshot; counters keep
        // the conventional _total suffix via their dotted names
        // staying intact. Declare everything a gauge: monotone
        // counters scraped as gauges still graph correctly, and the
        // registry doesn't expose reset semantics anyway.
        std::string pn = promName(name);
        std::snprintf(buf, sizeof buf,
                      "# TYPE %s gauge\n%s %llu\n", pn.c_str(),
                      pn.c_str(),
                      static_cast<unsigned long long>(value));
        out += buf;
    }

    for (const HistogramSnapshot &h : histogramsSnapshot()) {
        // Ticks are per-histogram units (the service records
        // microseconds); Prometheus convention is base seconds.
        const double scale = h.unit == "us"    ? 1e-6
                             : h.unit == "ns" ? 1e-9
                             : h.unit == "ms" ? 1e-3
                                              : 1.0;
        std::string pn = promName(h.name) + "_seconds";
        std::snprintf(buf, sizeof buf, "# TYPE %s histogram\n",
                      pn.c_str());
        out += buf;
        uint64_t cum = 0;
        for (unsigned k = 0; k < h.counts.size(); ++k) {
            if (h.counts[k] == 0)
                continue;  // sparse: only boundaries that hold mass
            cum += h.counts[k];
            std::snprintf(
                buf, sizeof buf, "%s_bucket{le=\"%.9g\"} %llu\n",
                pn.c_str(),
                double(Histogram::slotUpperBound(k)) * scale,
                static_cast<unsigned long long>(cum));
            out += buf;
        }
        std::snprintf(buf, sizeof buf,
                      "%s_bucket{le=\"+Inf\"} %llu\n"
                      "%s_sum %.9g\n"
                      "%s_count %llu\n",
                      pn.c_str(),
                      static_cast<unsigned long long>(h.count),
                      pn.c_str(), double(h.sum) * scale, pn.c_str(),
                      static_cast<unsigned long long>(h.count));
        out += buf;
    }
    return out;
}

} // namespace eel::obs::http
