#include "src/obs/timeline.hh"

#include <cstdio>

#include "src/obs/trace.hh"

namespace eel::obs {

const char *
RequestTimeline::phaseName(Phase p)
{
    switch (p) {
      case Queue: return "queue";
      case Decode: return "decode";
      case Rewrite: return "rewrite";
      case Sim: return "sim";
      case CacheLookup: return "rescache";
      case Reply: return "reply";
      case kPhases: break;
    }
    return "?";
}

void
RequestTimeline::begin(Phase p)
{
    phase[p].t0 = nowNs();
}

void
RequestTimeline::end(Phase p)
{
    phase[p].t1 = nowNs();
}

void
RequestTimeline::emitTrace() const
{
    if (!tracingEnabled())
        return;
    // A tagged request opts in per the client's sampling flag; an
    // untagged one is the server operator's to trace.
    if (traceId != 0 && !sampled)
        return;
    char args[128];
    std::snprintf(args, sizeof args,
                  "{\"trace_id\":\"%016llx\",\"seq\":%u,"
                  "\"status\":\"%s\"}",
                  static_cast<unsigned long long>(traceId), seq,
                  status.c_str());
    recordSpan("svc.request." + op, tsAccept,
               tsDone > tsAccept ? tsDone : tsAccept, args);
    for (unsigned p = 0; p < kPhases; ++p) {
        if (!phase[p].set())
            continue;
        char pargs[64];
        std::snprintf(pargs, sizeof pargs,
                      "{\"trace_id\":\"%016llx\"}",
                      static_cast<unsigned long long>(traceId));
        recordSpan(std::string("svc.phase.") +
                       phaseName(static_cast<Phase>(p)),
                   phase[p].t0, phase[p].t1, pargs);
    }
}

std::string
RequestTimeline::json() const
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\"trace_id\":\"%016llx\",\"sampled\":%s,"
                  "\"op\":\"%s\",\"seq\":%u,\"status\":\"%s\","
                  "\"start_ns\":%llu,\"total_ms\":%.3f",
                  static_cast<unsigned long long>(traceId),
                  sampled ? "true" : "false", op.c_str(), seq,
                  status.c_str(),
                  static_cast<unsigned long long>(tsAccept),
                  double(totalNs()) / 1e6);
    std::string out = head;
    for (unsigned p = 0; p < kPhases; ++p) {
        if (!phase[p].set())
            continue;
        char buf[64];
        std::snprintf(buf, sizeof buf, ",\"%s_ms\":%.3f",
                      phaseName(static_cast<Phase>(p)),
                      double(phase[p].ns()) / 1e6);
        out += buf;
    }
    out += "}";
    return out;
}

} // namespace eel::obs
