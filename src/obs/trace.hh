/**
 * @file
 * Scoped spans and trace export in the Chrome trace_event format
 * (loadable in Perfetto / chrome://tracing). Disabled by default and
 * zero-cost when off: a Span construction is one relaxed atomic load
 * and every recording call checks the same flag before touching any
 * state. When enabled (--trace on the benches), events buffer into
 * per-thread vectors — no locking on the record path beyond one-time
 * thread registration — and writeTrace() merges them, sorted by
 * timestamp per thread, into a single JSON file.
 *
 * Timestamps come from steady_clock relative to a process-global
 * epoch, so spans from every thread (pool workers included) share
 * one timeline.
 */

#ifndef EEL_OBS_TRACE_HH
#define EEL_OBS_TRACE_HH

#include <atomic>
#include <string>

namespace eel::obs {

namespace detail {
extern std::atomic<bool> tracingOn;
uint64_t traceNowNs();
void recordComplete(std::string name, uint64_t t0, uint64_t t1);
} // namespace detail

/** Nanoseconds since the process-global trace epoch. Usable whether
 *  or not tracing is on (request timelines timestamp with this so
 *  histograms work untraced, and spans line up when traced). */
inline uint64_t
nowNs()
{
    return detail::traceNowNs();
}

/** Is span/instant recording active? */
inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/** Turn recording on (benches: --trace). */
void enableTracing();
/** Turn recording off and drop everything buffered (tests). */
void resetTrace();

/**
 * RAII span: records a complete ("X") event covering construction
 * to destruction on the current thread. Inert when tracing is off.
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (tracingEnabled()) {
            _name = name;
            _t0 = detail::traceNowNs();
            _active = true;
        }
    }
    explicit Span(std::string name)
    {
        if (tracingEnabled()) {
            _name = std::move(name);
            _t0 = detail::traceNowNs();
            _active = true;
        }
    }
    ~Span()
    {
        if (_active)
            detail::recordComplete(std::move(_name), _t0,
                                   detail::traceNowNs());
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string _name;
    uint64_t _t0 = 0;
    bool _active = false;
};

/** Record an instant ("i") event, optionally with a pre-rendered
 *  JSON object as its args. No-op when tracing is off. */
void instant(const char *name);
void instant(const char *name, std::string args_json);

/**
 * Record a complete ("X") span with explicit nowNs()-relative
 * endpoints onto the current thread's buffer, optionally with a
 * pre-rendered JSON object as its args. Lets request timelines emit
 * spans for phases that already happened (e.g. queue wait measured
 * from another thread's enqueue timestamp) — viewers nest them into
 * the enclosing request span by time containment. No-op when
 * tracing is off.
 */
void recordSpan(std::string name, uint64_t t0Ns, uint64_t t1Ns,
                std::string args_json = {});

/** Name the current thread in the exported trace ("main",
 *  "pool-worker-3", ...). Unnamed threads get "thread-<tid>". */
void setThreadName(std::string name);

/**
 * Write everything recorded so far as Chrome trace_event JSON.
 * Events are sorted by timestamp within each thread. Returns false
 * (after logging) if the file cannot be written. Call only when no
 * thread is concurrently recording (i.e. after the measured work).
 */
bool writeTrace(const std::string &path);

} // namespace eel::obs

#endif // EEL_OBS_TRACE_HH
