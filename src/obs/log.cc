#include "src/obs/log.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace eel::obs {

namespace {

constexpr int kUnset = -1;
std::atomic<int> gLevel{kUnset};

int
parseEnvLevel()
{
    const char *e = std::getenv("EEL_LOG");
    if (!e || !*e)
        return static_cast<int>(LogLevel::Info);
    if (!std::strcmp(e, "debug"))
        return static_cast<int>(LogLevel::Debug);
    if (!std::strcmp(e, "info"))
        return static_cast<int>(LogLevel::Info);
    if (!std::strcmp(e, "warn"))
        return static_cast<int>(LogLevel::Warn);
    if (!std::strcmp(e, "error"))
        return static_cast<int>(LogLevel::Error);
    if (!std::strcmp(e, "silent") || !std::strcmp(e, "off"))
        return static_cast<int>(LogLevel::Silent);
    std::fprintf(stderr,
                 "warn: EEL_LOG='%s' not recognized (want "
                 "debug|info|warn|error|silent); using info\n", e);
    return static_cast<int>(LogLevel::Info);
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    int v = gLevel.load(std::memory_order_relaxed);
    if (v == kUnset) {
        v = parseEnvLevel();
        // A racing first call parses the same env: both store the
        // same value, so the exchange needs no retry loop.
        gLevel.store(v, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
reloadLogLevelFromEnv()
{
    gLevel.store(parseEnvLevel(), std::memory_order_relaxed);
}

namespace {

/** Per-thread log tag. The first thread to log is almost always the
 *  process main thread; later unnamed threads get a small ordinal so
 *  two interleaved connections stay distinguishable even before
 *  anyone names them. */
struct ThreadTag
{
    char name[64];

    ThreadTag()
    {
        static std::atomic<unsigned> next{0};
        unsigned n = next.fetch_add(1, std::memory_order_relaxed);
        if (n == 0)
            std::snprintf(name, sizeof name, "main");
        else
            std::snprintf(name, sizeof name, "t%u", n);
    }
};

thread_local ThreadTag gTag;

} // namespace

const char *
logThreadName()
{
    return gTag.name;
}

namespace detail {

void
setLogThreadName(const char *name)
{
    std::snprintf(gTag.name, sizeof gTag.name, "%s", name);
}

} // namespace detail

void
logf(LogLevel level, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    char buf[4096];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    // Wall-clock stamp at millisecond resolution: enough to order a
    // daemon's interleaved per-connection lines, cheap to render.
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    struct tm tm;
    localtime_r(&ts.tv_sec, &tm);
    std::fprintf(stderr, "%02d:%02d:%02d.%03ld %-5s [%s] %s\n",
                 tm.tm_hour, tm.tm_min, tm.tm_sec,
                 ts.tv_nsec / 1000000, prefix(level),
                 logThreadName(), buf);
}

} // namespace eel::obs
