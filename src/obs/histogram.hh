/**
 * @file
 * Log-bucketed HDR-style latency histograms with exact lifetime
 * counts and a time-windowed ring, built on the same per-thread
 * shard discipline as the metrics registry: a record() is one
 * thread_local load plus two relaxed RMWs, never a lock, so request
 * hot paths can record every operation instead of sampling.
 *
 * Bucketing: values (histogram "ticks"; the service records
 * microseconds) below 32 get their own bucket; above that each
 * power-of-two range is split into 32 sub-buckets, so any recorded
 * value is reproduced to within ~3.1% by its bucket bounds while the
 * whole 0 .. ~67s range fits in kSlots counters. That is the classic
 * HDR trade: percentiles with bounded relative error and no a-priori
 * knowledge of the distribution, at fixed memory.
 *
 * Windows: alongside the lifetime counts, each shard keeps a ring of
 * kWindows buckets of kWindowSeconds each, stamped with their epoch.
 * A recording thread lazily recycles the ring slot when its epoch is
 * stale (single writer per shard, so no CAS); a reader merges only
 * slots whose epoch falls inside the asked-for horizon, which yields
 * "last minute" percentiles next to lifetime ones. Window merges are
 * exact except at the instant a slot is being recycled, where a
 * concurrent reader can see a partially cleared (never corrupt)
 * window — lifetime counts are always exact.
 */

#ifndef EEL_OBS_HISTOGRAM_HH
#define EEL_OBS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eel::obs {

class Histogram
{
  public:
    /** Registers (or reuses) the named histogram. `unit` is
     *  documentation carried into snapshots ("us" for the service's
     *  latency histograms). */
    Histogram(const char *name, const char *unit = "us");

    /** Record one value (in this histogram's ticks); values above
     *  kMaxValue clamp into the top bucket. */
    void record(uint64_t value);

    static constexpr unsigned maxHistograms = 32;

    // --- bucket geometry (shared by snapshots and exporters) ------
    static constexpr unsigned kSubBits = 5;  ///< 32 sub-buckets
    static constexpr unsigned kSub = 1u << kSubBits;
    /** Highest distinguishable tick (~67s in microseconds). */
    static constexpr uint64_t kMaxValue = (1ull << 26) - 1;
    static constexpr unsigned kSlots = (26 - (kSubBits - 1)) * kSub;

    static constexpr unsigned kWindows = 8;
    static constexpr unsigned kWindowSeconds = 10;

    static unsigned slotFor(uint64_t value);
    /** Inclusive value bounds reproduced by slot i. */
    static uint64_t slotLowerBound(unsigned slot);
    static uint64_t slotUpperBound(unsigned slot);

  private:
    uint32_t id;
};

/** Merged counts for one histogram (lifetime or windowed). */
struct HistogramSnapshot
{
    std::string name;
    std::string unit;
    uint64_t count = 0;  ///< total recorded values
    uint64_t sum = 0;    ///< sum of recorded ticks (clamped)
    std::vector<uint64_t> counts;  ///< kSlots dense slot counts

    /** Value at quantile p in [0,1]: the upper bound of the bucket
     *  where the cumulative count first reaches ceil(p * count) — a
     *  conservative (>= actual) estimate within the bucket's ~3.1%
     *  relative error. 0 when empty. */
    uint64_t percentile(double p) const;

    /** Merge another snapshot's counts in (same geometry). */
    void merge(const HistogramSnapshot &o);
};

/** Lifetime snapshots of every registered histogram, in
 *  registration order. Exact. */
std::vector<HistogramSnapshot> histogramsSnapshot();

/**
 * Windowed snapshots: counts recorded in the ring windows covering
 * roughly the last `lastSeconds` seconds (rounded up to whole
 * kWindowSeconds windows, capped at the ring span). The current
 * partially-filled window is included.
 */
std::vector<HistogramSnapshot> histogramsWindow(unsigned lastSeconds);

/** Zero every shard, lifetime and windows (tests, bench setup).
 *  Call only while no other thread is mid-record. */
void resetHistograms();

namespace detail {
/** Shift the histogram window clock forward (tests only): makes
 *  previously current windows stale without sleeping. */
void advanceHistogramClockForTest(int64_t seconds);
} // namespace detail

} // namespace eel::obs

#endif // EEL_OBS_HISTOGRAM_HH
