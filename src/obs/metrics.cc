#include "src/obs/metrics.hh"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

#include "src/obs/log.hh"

namespace eel::obs {

namespace {

/** One thread's slot array. Owned by the registry (threads die;
 *  their counts must not). */
struct Shard
{
    std::atomic<uint64_t> v[Metric::maxMetrics] = {};
};

struct Registry
{
    std::mutex mu;
    std::vector<std::string> names;
    std::vector<MetricKind> kinds;
    std::vector<std::unique_ptr<Shard>> shards;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local Shard *tlShard = nullptr;

Shard &
myShard()
{
    if (!tlShard) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(std::make_unique<Shard>());
        tlShard = r.shards.back().get();
    }
    return *tlShard;
}

} // namespace

Metric::Metric(const char *name, MetricKind kind)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (uint32_t i = 0; i < r.names.size(); ++i) {
        if (r.names[i] == name) {
            id = i;
            return;
        }
    }
    if (r.names.size() >= maxMetrics) {
        // Out of slots: alias the last metric rather than crash a
        // measurement run; loud so the cap gets raised.
        logf(LogLevel::Error,
             "metrics: out of slots registering '%s'", name);
        id = maxMetrics - 1;
        return;
    }
    id = static_cast<uint32_t>(r.names.size());
    r.names.emplace_back(name);
    r.kinds.push_back(kind);
}

void
Metric::add(uint64_t n)
{
    myShard().v[id].fetch_add(n, std::memory_order_relaxed);
}

void
Metric::observe(uint64_t v)
{
    std::atomic<uint64_t> &slot = myShard().v[id];
    // The shard is only ever written by its owning thread, so a
    // read-check-store (no CAS) cannot lose a concurrent update.
    if (v > slot.load(std::memory_order_relaxed))
        slot.store(v, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>>
metricsSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(r.names.size());
    for (uint32_t i = 0; i < r.names.size(); ++i) {
        uint64_t acc = 0;
        for (const auto &s : r.shards) {
            uint64_t v = s->v[i].load(std::memory_order_relaxed);
            if (r.kinds[i] == MetricKind::Counter)
                acc += v;
            else
                acc = std::max(acc, v);
        }
        out.emplace_back(r.names[i], acc);
    }
    return out;
}

std::string
metricsJson(const std::string &indent)
{
    auto snap = metricsSnapshot();
    std::string out = "{";
    char buf[128];
    for (size_t i = 0; i < snap.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s\n%s  \"%s\": %llu",
                      i ? "," : "", indent.c_str(),
                      snap[i].first.c_str(),
                      static_cast<unsigned long long>(snap[i].second));
        out += buf;
    }
    if (!snap.empty())
        out += "\n" + indent;
    out += "}";
    return out;
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &s : r.shards)
        for (auto &slot : s->v)
            slot.store(0, std::memory_order_relaxed);
}

} // namespace eel::obs
