/**
 * @file
 * Lock-free metrics registry: named counters and max-gauges that hot
 * paths bump without synchronization. Each thread owns a shard of
 * relaxed atomics (one slot per registered metric); snapshot() merges
 * the shards — counters by sum, gauges by max — so report sites
 * never contend and a reader still gets exact totals.
 *
 * Intended for cold-ish paths (a steal, a page intern, a decode-memo
 * probe): an update is one thread_local load plus one relaxed RMW.
 * Registration (the Metric constructor) takes a mutex, so declare
 * metrics as function-local statics at the report site.
 */

#ifndef EEL_OBS_METRICS_HH
#define EEL_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eel::obs {

enum class MetricKind : uint8_t {
    Counter,   ///< shards merge by sum
    MaxGauge,  ///< shards merge by max
};

class Metric
{
  public:
    /** Registers (or reuses) the named metric. At most
     *  `maxMetrics` distinct names may be registered. */
    Metric(const char *name, MetricKind kind);

    /** Counter: add n to this thread's shard. */
    void add(uint64_t n = 1);
    /** MaxGauge: raise this thread's shard to at least v. */
    void observe(uint64_t v);

    static constexpr unsigned maxMetrics = 64;

  private:
    uint32_t id;
};

/** Merged (name, value) pairs in registration order. */
std::vector<std::pair<std::string, uint64_t>> metricsSnapshot();

/**
 * The snapshot rendered as a JSON object, one "name": value per
 * line, each line prefixed by `indent`. Empty registry renders as
 * an empty object. Serialized into the `metrics` section of
 * BENCH_pipeline.json.
 */
std::string metricsJson(const std::string &indent);

/** Zero every shard (tests and bench setup). Call only while no
 *  other thread is mid-update. */
void resetMetrics();

} // namespace eel::obs

#endif // EEL_OBS_METRICS_HH
