/**
 * @file
 * Scheduler slot-fill audit: for every empty issue slot a schedule
 * leaves behind (stall cycles at a pick, or a nop in a delay slot),
 * record why no instrumentation instruction could fill it. This
 * turns the paper's §4.1 "basic blocks are too short to hide the
 * overhead" explanation into a measured number: NoReadyInst means
 * the block genuinely ran out of instrumentation, Dependence and
 * ResourceConflict mean work existed but could not start, and the
 * LivenessMask/SpeculationGate reasons are the superblock
 * scheduler's cross-block hoist constraints.
 *
 * The accumulator is a set of relaxed atomics because routines are
 * scheduled in parallel on the pool; sums are deterministic (each
 * routine's contribution is, and addition commutes) even though the
 * interleaving is not.
 */

#ifndef EEL_OBS_SLOTFILL_HH
#define EEL_OBS_SLOTFILL_HH

#include <atomic>
#include <cstdint>

namespace eel::obs {

enum class SlotFillReason : uint8_t {
    NoReadyInst = 0,   ///< no unscheduled instrumentation left
    Dependence,        ///< instrumentation exists but waits on a dep
    ResourceConflict,  ///< ready instrumentation blocked on a unit
    LivenessMask,      ///< hoist clobbers a side exit's live-ins
    SpeculationGate,   ///< hoist barred: unspeculatable or exit too hot
};

inline constexpr unsigned numSlotFillReasons = 5;

inline const char *
slotFillReasonName(SlotFillReason r)
{
    switch (r) {
      case SlotFillReason::NoReadyInst: return "no_ready_inst";
      case SlotFillReason::Dependence: return "dependence";
      case SlotFillReason::ResourceConflict: return "resource_conflict";
      case SlotFillReason::LivenessMask: return "liveness_mask";
      case SlotFillReason::SpeculationGate: return "speculation_gate";
    }
    return "?";
}

/** Plain copyable snapshot of an audit. */
struct SlotFillCounts
{
    uint64_t slots[numSlotFillReasons] = {};

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t s : slots)
            t += s;
        return t;
    }

    SlotFillCounts &
    operator+=(const SlotFillCounts &o)
    {
        for (unsigned i = 0; i < numSlotFillReasons; ++i)
            slots[i] += o.slots[i];
        return *this;
    }

    bool operator==(const SlotFillCounts &o) const = default;
};

/** Thread-safe accumulator threaded through SchedOptions (null =
 *  auditing off, zero cost beyond one pointer test per stalled
 *  pick). */
class SlotFillAudit
{
  public:
    void
    add(SlotFillReason r, uint64_t n = 1)
    {
        slots[static_cast<unsigned>(r)].fetch_add(
            n, std::memory_order_relaxed);
    }

    SlotFillCounts
    snapshot() const
    {
        SlotFillCounts c;
        for (unsigned i = 0; i < numSlotFillReasons; ++i)
            c.slots[i] = slots[i].load(std::memory_order_relaxed);
        return c;
    }

  private:
    std::atomic<uint64_t> slots[numSlotFillReasons] = {};
};

} // namespace eel::obs

#endif // EEL_OBS_SLOTFILL_HH
