/**
 * @file
 * Leveled logging with an environment override: EEL_LOG=debug (or
 * info/warn/error/silent) sets the threshold below which messages
 * are dropped. support/logging.hh's inform()/warn() are thin shims
 * over logf(Info)/logf(Warn), so every existing status line gains
 * the filter for free; new code calls logf() directly.
 *
 * Deliberately dependency-free (no src/support include) so the obs
 * library sits below everything else in the link order.
 */

#ifndef EEL_OBS_LOG_HH
#define EEL_OBS_LOG_HH

namespace eel::obs {

enum class LogLevel : int {
    Debug = 0,
    Info,
    Warn,
    Error,
    Silent,  ///< EEL_LOG=silent: nothing at all
};

/** Current threshold; first call reads EEL_LOG (default Info). */
LogLevel logLevel();

/** Override the threshold programmatically (tests, --verbose). */
void setLogLevel(LogLevel level);

/** Re-read EEL_LOG, discarding any override (tests). */
void reloadLogLevelFromEnv();

inline bool
logEnabled(LogLevel level)
{
    return level >= logLevel() && logLevel() != LogLevel::Silent;
}

/** printf-style message to stderr, prefixed by its level, dropped
 *  when below the threshold. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace eel::obs

#endif // EEL_OBS_LOG_HH
