/**
 * @file
 * Leveled logging with an environment override: EEL_LOG=debug (or
 * info/warn/error/silent) sets the threshold below which messages
 * are dropped. support/logging.hh's inform()/warn() are thin shims
 * over logf(Info)/logf(Warn), so every existing status line gains
 * the filter for free; new code calls logf() directly.
 *
 * Deliberately dependency-free (no src/support include) so the obs
 * library sits below everything else in the link order.
 */

#ifndef EEL_OBS_LOG_HH
#define EEL_OBS_LOG_HH

namespace eel::obs {

enum class LogLevel : int {
    Debug = 0,
    Info,
    Warn,
    Error,
    Silent,  ///< EEL_LOG=silent: nothing at all
};

/** Current threshold; first call reads EEL_LOG (default Info). */
LogLevel logLevel();

/** Override the threshold programmatically (tests, --verbose). */
void setLogLevel(LogLevel level);

/** Re-read EEL_LOG, discarding any override (tests). */
void reloadLogLevelFromEnv();

inline bool
logEnabled(LogLevel level)
{
    return level >= logLevel() && logLevel() != LogLevel::Silent;
}

/** printf-style message to stderr, prefixed by a wall-clock
 *  timestamp, the level, and the calling thread's name, dropped when
 *  below the threshold:
 *      14:02:11.123 info  [pool-worker-2] message
 *  A daemon's interleaved per-connection logs are unreadable without
 *  the stamp and the thread tag; setThreadName() (trace.hh) names
 *  the thread on both the trace and the log side at once. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** The calling thread's log/trace name: the name set by
 *  setThreadName(), or "main" for the first thread seen and "t<N>"
 *  for later unnamed ones. */
const char *logThreadName();

namespace detail {
/** Called by setThreadName() to keep the log tag in sync. */
void setLogThreadName(const char *name);
} // namespace detail

} // namespace eel::obs

#endif // EEL_OBS_LOG_HH
