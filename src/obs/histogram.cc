#include "src/obs/histogram.hh"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

#include "src/obs/log.hh"

namespace eel::obs {

namespace {

/** Window epoch clock: steady seconds / kWindowSeconds, plus a test
 *  offset so window-staleness paths are testable without sleeping. */
std::atomic<int64_t> gClockOffsetSec{0};

uint64_t
currentEpoch()
{
    using namespace std::chrono;
    static const steady_clock::time_point t0 = steady_clock::now();
    int64_t sec =
        duration_cast<seconds>(steady_clock::now() - t0).count() +
        gClockOffsetSec.load(std::memory_order_relaxed);
    return static_cast<uint64_t>(sec) / Histogram::kWindowSeconds;
}

/** One window of one histogram in one shard. Written only by the
 *  owning thread; epoch gates what readers merge. */
struct Window
{
    std::atomic<uint64_t> epoch{~0ull};
    std::atomic<uint32_t> counts[Histogram::kSlots] = {};
};

/** One histogram's slots in one shard, allocated on the owning
 *  thread's first record of that histogram. */
struct HistShard
{
    std::atomic<uint64_t> counts[Histogram::kSlots] = {};
    std::atomic<uint64_t> sum{0};
    Window windows[Histogram::kWindows];
};

/** One thread's shard. Owned by the registry (threads die; their
 *  counts must not). */
struct Shard
{
    std::unique_ptr<HistShard> hists[Histogram::maxHistograms];
};

struct Registry
{
    std::mutex mu;
    std::vector<std::string> names;
    std::vector<std::string> units;
    std::vector<std::unique_ptr<Shard>> shards;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local Shard *tlShard = nullptr;

Shard &
myShard()
{
    if (!tlShard) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(std::make_unique<Shard>());
        tlShard = r.shards.back().get();
    }
    return *tlShard;
}

HistShard &
myHistShard(uint32_t id)
{
    Shard &s = myShard();
    if (!s.hists[id]) {
        // Allocation is thread-local state, but the pointer slot is
        // read by snapshotters: publish it under the registry lock.
        auto h = std::make_unique<HistShard>();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        s.hists[id] = std::move(h);
    }
    return *s.hists[id];
}

std::vector<HistogramSnapshot>
snapshotImpl(bool windowed, unsigned lastSeconds)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<HistogramSnapshot> out(r.names.size());
    const uint64_t now = currentEpoch();
    // Whole windows covering the horizon, current partial included.
    uint64_t span =
        (lastSeconds + Histogram::kWindowSeconds - 1) /
        Histogram::kWindowSeconds;
    if (span == 0)
        span = 1;
    if (span > Histogram::kWindows)
        span = Histogram::kWindows;
    const uint64_t oldest = now >= span - 1 ? now - (span - 1) : 0;

    for (uint32_t i = 0; i < r.names.size(); ++i) {
        HistogramSnapshot &snap = out[i];
        snap.name = r.names[i];
        snap.unit = r.units[i];
        snap.counts.assign(Histogram::kSlots, 0);
        for (const auto &s : r.shards) {
            const HistShard *h = s->hists[i].get();
            if (!h)
                continue;
            if (!windowed) {
                for (unsigned k = 0; k < Histogram::kSlots; ++k)
                    snap.counts[k] +=
                        h->counts[k].load(std::memory_order_relaxed);
                snap.sum +=
                    h->sum.load(std::memory_order_relaxed);
                continue;
            }
            for (const Window &w : h->windows) {
                uint64_t e =
                    w.epoch.load(std::memory_order_acquire);
                if (e < oldest || e > now)
                    continue;
                for (unsigned k = 0; k < Histogram::kSlots; ++k)
                    snap.counts[k] += w.counts[k].load(
                        std::memory_order_relaxed);
            }
        }
        for (unsigned k = 0; k < Histogram::kSlots; ++k) {
            snap.count += snap.counts[k];
            if (windowed)
                // Window rings don't carry sums; midpoint estimate.
                snap.sum += snap.counts[k] *
                            ((Histogram::slotLowerBound(k) +
                              Histogram::slotUpperBound(k)) /
                             2);
        }
    }
    return out;
}

} // namespace

Histogram::Histogram(const char *name, const char *unit)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (uint32_t i = 0; i < r.names.size(); ++i) {
        if (r.names[i] == name) {
            id = i;
            return;
        }
    }
    if (r.names.size() >= maxHistograms) {
        // Out of slots: alias the last histogram rather than crash a
        // serving process; loud so the cap gets raised.
        logf(LogLevel::Error,
             "histogram: out of slots registering '%s'", name);
        id = maxHistograms - 1;
        return;
    }
    id = static_cast<uint32_t>(r.names.size());
    r.names.emplace_back(name);
    r.units.emplace_back(unit);
}

unsigned
Histogram::slotFor(uint64_t value)
{
    if (value > kMaxValue)
        value = kMaxValue;
    if (value < kSub)
        return static_cast<unsigned>(value);
    unsigned msb = 63 - static_cast<unsigned>(
                            __builtin_clzll(value));
    return (msb - (kSubBits - 1)) * kSub +
           static_cast<unsigned>((value >> (msb - kSubBits)) &
                                 (kSub - 1));
}

uint64_t
Histogram::slotLowerBound(unsigned slot)
{
    if (slot < kSub)
        return slot;
    unsigned msb = slot / kSub + (kSubBits - 1);
    uint64_t sub = slot % kSub;
    return (uint64_t(kSub) + sub) << (msb - kSubBits);
}

uint64_t
Histogram::slotUpperBound(unsigned slot)
{
    if (slot < kSub)
        return slot;
    unsigned msb = slot / kSub + (kSubBits - 1);
    return slotLowerBound(slot) +
           ((1ull << (msb - kSubBits)) - 1);
}

void
Histogram::record(uint64_t value)
{
    if (value > kMaxValue)
        value = kMaxValue;
    const unsigned slot = slotFor(value);
    HistShard &h = myHistShard(id);
    h.counts[slot].fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);

    const uint64_t epoch = currentEpoch();
    Window &w = h.windows[epoch % kWindows];
    if (w.epoch.load(std::memory_order_relaxed) != epoch) {
        // Single writer per shard: recycle the stale slot in place.
        for (auto &c : w.counts)
            c.store(0, std::memory_order_relaxed);
        w.epoch.store(epoch, std::memory_order_release);
    }
    w.counts[slot].fetch_add(1, std::memory_order_relaxed);
}

uint64_t
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0;
    if (p < 0)
        p = 0;
    if (p > 1)
        p = 1;
    uint64_t target =
        static_cast<uint64_t>(p * double(count) + 0.9999999);
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (unsigned k = 0; k < counts.size(); ++k) {
        seen += counts[k];
        if (seen >= target)
            return Histogram::slotUpperBound(k);
    }
    return Histogram::slotUpperBound(
        static_cast<unsigned>(counts.size()) - 1);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &o)
{
    if (counts.size() < o.counts.size())
        counts.resize(o.counts.size(), 0);
    for (size_t k = 0; k < o.counts.size(); ++k)
        counts[k] += o.counts[k];
    count += o.count;
    sum += o.sum;
}

std::vector<HistogramSnapshot>
histogramsSnapshot()
{
    return snapshotImpl(false, 0);
}

std::vector<HistogramSnapshot>
histogramsWindow(unsigned lastSeconds)
{
    return snapshotImpl(true, lastSeconds);
}

void
resetHistograms()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &s : r.shards) {
        for (auto &hp : s->hists) {
            HistShard *h = hp.get();
            if (!h)
                continue;
            for (auto &c : h->counts)
                c.store(0, std::memory_order_relaxed);
            h->sum.store(0, std::memory_order_relaxed);
            for (Window &w : h->windows) {
                for (auto &c : w.counts)
                    c.store(0, std::memory_order_relaxed);
                w.epoch.store(~0ull, std::memory_order_relaxed);
            }
        }
    }
}

namespace detail {

void
advanceHistogramClockForTest(int64_t seconds)
{
    gClockOffsetSec.fetch_add(seconds, std::memory_order_relaxed);
}

} // namespace detail

} // namespace eel::obs
