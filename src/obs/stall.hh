/**
 * @file
 * Stall attribution: every stall cycle the pipeline model charges is
 * tagged with the hazard that caused it. machine::PipelineState fills
 * the dependence/resource reasons from the Appendix A walk (each
 * non-advancing cycle fails exactly one hazard check); the timing
 * simulator adds the two fetch-side effects the Spawn models omit
 * (taken-branch redirects and icache misses). The invariant callers
 * rely on — and the benches assert — is that a run's breakdown sums
 * exactly to its total stall cycles.
 *
 * Header-only and dependency-free so the hot pipeline loop can fill
 * a breakdown through a raw uint64_t array without pulling in any of
 * the tracing machinery.
 */

#ifndef EEL_OBS_STALL_HH
#define EEL_OBS_STALL_HH

#include <cstdint>

namespace eel::obs {

enum class StallReason : uint8_t {
    RawDep = 0,      ///< read waits on a producing value (RAW)
    WarWawDep,       ///< write ordered behind a read/write (WAR/WAW)
    Resource,        ///< functional unit hold (structural hazard)
    ICacheMiss,      ///< fetch bubble on an instruction cache miss
    BranchRedirect,  ///< fetch bubble on a control-flow discontinuity
};

inline constexpr unsigned numStallReasons = 5;

inline const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::RawDep: return "raw_dep";
      case StallReason::WarWawDep: return "war_waw_dep";
      case StallReason::Resource: return "resource";
      case StallReason::ICacheMiss: return "icache_miss";
      case StallReason::BranchRedirect: return "branch_redirect";
    }
    return "?";
}

/** Per-reason stall-cycle histogram. Plain counters: one breakdown
 *  per simulator/thread, merged explicitly (and deterministically,
 *  in shard order) by the owner. */
struct StallBreakdown
{
    uint64_t cycles[numStallReasons] = {};

    void
    add(StallReason r, uint64_t n = 1)
    {
        cycles[static_cast<unsigned>(r)] += n;
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : cycles)
            t += c;
        return t;
    }

    StallBreakdown &
    operator+=(const StallBreakdown &o)
    {
        for (unsigned i = 0; i < numStallReasons; ++i)
            cycles[i] += o.cycles[i];
        return *this;
    }

    /** Per-reason counts are monotone within one simulator, so a
     *  warmup prefix subtracts exactly (sharded boundary
     *  correction). */
    StallBreakdown &
    operator-=(const StallBreakdown &o)
    {
        for (unsigned i = 0; i < numStallReasons; ++i)
            cycles[i] -= o.cycles[i];
        return *this;
    }

    bool operator==(const StallBreakdown &o) const = default;
};

} // namespace eel::obs

#endif // EEL_OBS_STALL_HH
