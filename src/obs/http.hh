/**
 * @file
 * Minimal HTTP/1.1 machinery for the telemetry gateway: a strict,
 * bounded request parser (string level — sockets stay in the service
 * layer, so every reject path is unit-testable without a peer), a
 * response builder, and the Prometheus text-exposition renderer over
 * the obs metrics and histogram registries.
 *
 * Deliberately tiny: GET-only routing is the caller's job, there is
 * no keep-alive (responses carry "Connection: close"), no chunked
 * transfer, no body on requests. A request is the request line plus
 * headers terminated by CRLFCRLF, capped at maxBytes — anything
 * malformed or oversized parses to a clean error classification, not
 * a crash, which is what the gateway's fuzz tests pin.
 */

#ifndef EEL_OBS_HTTP_HH
#define EEL_OBS_HTTP_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eel::obs::http {

struct Request
{
    std::string method;   ///< "GET"
    std::string target;   ///< "/metrics" (query string kept verbatim)
    std::string version;  ///< "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;

    const std::string *
    header(const std::string &name) const
    {
        for (const auto &[k, v] : headers)
            if (k == name)
                return &v;
        return nullptr;
    }
};

enum class ParseResult {
    Ok,        ///< one complete request parsed
    NeedMore,  ///< no CRLFCRLF yet; read more bytes
    Bad,       ///< malformed request line or header
    TooLarge,  ///< header block exceeds maxBytes
};

/** Default header-block cap (request line + headers). */
constexpr size_t kMaxRequestBytes = 16 * 1024;

/**
 * Parse one request from the front of `buf`. On Ok, `consumed` is
 * the byte count of the parsed request (line + headers + blank
 * line). NeedMore is returned only while buf is within the cap — a
 * buffer past `maxBytes` without a terminator is TooLarge, so a
 * caller can stop reading from a peer that streams garbage.
 */
ParseResult parseRequest(const std::string &buf, Request &out,
                         size_t &consumed,
                         size_t maxBytes = kMaxRequestBytes);

/** A full HTTP/1.1 response with Content-Length and
 *  "Connection: close". `status` picks the canonical reason
 *  phrase (200, 400, 404, 405, 431, 500). */
std::string response(int status, const std::string &contentType,
                     const std::string &body);

/**
 * The obs registries in Prometheus text exposition format
 * (version 0.0.4): every counter/max-gauge metric as
 * `eel_<name>` (dots to underscores, counters suffixed _total) and
 * every histogram as a native Prometheus histogram in seconds
 * (`_bucket{le=...}` at the slot upper bounds that hold counts,
 * `_sum`, `_count`). `extra` lines (already exposition-formatted)
 * are prepended — the service contributes its request counters
 * there.
 */
std::string prometheusText(const std::string &extra = {});

} // namespace eel::obs::http

#endif // EEL_OBS_HTTP_HH
