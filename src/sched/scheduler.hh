/**
 * @file
 * EEL's local instruction scheduler (paper §4): a two-pass list
 * scheduler over one basic block. The first pass walks backward
 * computing each instruction's dependence-chain length to the end of
 * the block; the second walks forward picking, among the
 * instructions whose predecessors are all scheduled, the one that
 * (1) needs the fewest stalls before it can start execution (as
 * computed by pipeline_stalls), breaking ties by (2) the greater
 * distance from the end of the block, then (3) original program
 * order — "under the assumption that the instructions were
 * previously scheduled".
 *
 * Control transfer instructions are pinned to the end of the block;
 * the scheduler additionally fills the branch delay slot with the
 * latest scheduled instruction that may legally move past the CTI.
 */

#ifndef EEL_SCHED_SCHEDULER_HH
#define EEL_SCHED_SCHEDULER_HH

#include "src/machine/pipeline.hh"
#include "src/obs/slotfill.hh"
#include "src/sched/depgraph.hh"
#include "src/sched/inst_ref.hh"

namespace eel::sched {

/**
 * True if inst may move from before the CTI into its delay slot
 * (shared by the local scheduler and the superblock scheduler's
 * delay-slot refill).
 */
bool legalInDelaySlot(const isa::Instruction &inst,
                      const isa::Instruction &cti);

struct SchedOptions
{
    AliasPolicy alias = AliasPolicy::SeparateInstrumentation;

    /** Heuristic ablation switches (bench/ablation_priority). */
    enum class Priority : uint8_t {
        Full,           ///< stalls, then distance, then original order
        StallsOnly,     ///< stalls, then original order
        DistanceOnly,   ///< distance, then original order
        OriginalOrder,  ///< no reordering at all
    };
    Priority priority = Priority::Full;

    /** Move a legal instruction into the branch delay slot. */
    bool fillDelaySlot = true;

    /**
     * When nonzero, ties after the stall comparison are broken by a
     * seeded random key instead of distance/program order. The
     * oracle "compiler" pass uses this to explore several candidate
     * schedules per block and keep the best — a stand-in for the
     * stronger global schedulers in the Sun compilers that EEL's
     * simple one-pass heuristic cannot match (paper §4.2).
     */
    uint64_t tieJitterSeed = 0;

    /**
     * Optional slot-fill audit: whenever the picked instruction
     * still stalls (empty issue slots the schedule could not cover),
     * record why no instrumentation instruction could fill them.
     * Thread-safe sink (relaxed atomics); null = no audit, and the
     * pick loop is unchanged. The audit only observes — schedules
     * are bit-identical with it on or off.
     */
    obs::SlotFillAudit *audit = nullptr;
};

/**
 * Classify why the empty issue slots in front of a stalled pick
 * could not be filled by an instrumentation instruction. `instrLeft`
 * is the number of unscheduled instrumentation instructions in the
 * region, `ready` the current ready list, `rvs` the region's
 * resolved variants (parallel to `region`). Shared by the list and
 * superblock schedulers.
 */
obs::SlotFillReason
classifyUnfilledSlot(const machine::PipelineState &state,
                     std::span<const InstRef> region,
                     std::span<const machine::ResolvedVariant> rvs,
                     std::span<const uint32_t> ready,
                     unsigned instrLeft);

class ListScheduler
{
  public:
    ListScheduler(const machine::MachineModel &model,
                  SchedOptions opts = {})
        : model(model), opts(opts)
    {}

    /**
     * Schedule one basic block. The block may end with a CTI
     * followed by its delay-slot instruction; both original and
     * instrumentation instructions are scheduled together. The
     * result contains exactly the input instructions, reordered
     * (plus a nop only if a CTI has no legal delay-slot filler).
     */
    InstSeq scheduleBlock(const InstSeq &block) const;

    /**
     * Schedule a straight-line region with no CTI. Exposed for
     * tests and for scheduling instrumentation-internal regions.
     */
    std::vector<uint32_t>
    scheduleRegion(std::span<const InstRef> region) const;

    /**
     * As above, with a dependence graph the caller already built for
     * this region. scheduleBlock uses this to construct the graph
     * once and share it with delay-slot filling.
     */
    std::vector<uint32_t>
    scheduleRegion(std::span<const InstRef> region,
                   const DepGraph &graph) const;

    const SchedOptions &options() const { return opts; }

  private:
    const machine::MachineModel &model;
    SchedOptions opts;
};

} // namespace eel::sched

#endif // EEL_SCHED_SCHEDULER_HH
