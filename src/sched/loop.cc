#include "src/sched/loop.hh"

#include <map>

namespace eel::sched {

namespace {

/** Successors of a block, in (taken, fall) order. */
inline void
eachSucc(const edit::Block &b, auto &&fn)
{
    if (b.takenSucc >= 0)
        fn(static_cast<uint32_t>(b.takenSucc));
    if (b.fallSucc >= 0)
        fn(static_cast<uint32_t>(b.fallSucc));
}

} // namespace

LoopAnalyzer::LoopAnalyzer(const edit::Routine &r) : r_(r)
{
    const size_t n = r.blocks.size();
    rpoNum_.assign(n, -1);
    idom_.assign(n, -1);
    irreducible_.assign(n, 0);
    if (n == 0)
        return;

    uint32_t entry = 0;
    for (const edit::Block &b : r.blocks)
        if (b.startAddr == r.entry)
            entry = b.id;

    // Iterative DFS from the entry: preorder/postorder stamps drive
    // the retreating-edge test, the postorder (reversed) drives the
    // dominator iteration.
    std::vector<int> pre(n, -1), post(n, -1);
    std::vector<uint32_t> postorder;
    postorder.reserve(n);
    {
        // True depth-first traversal: descend into one successor at
        // a time so the pre/post stamps form properly nested
        // intervals (ancestor iff the interval contains the
        // descendant's — the retreating-edge test depends on it).
        std::vector<std::vector<uint32_t>> succs(n);
        for (const edit::Block &blk : r.blocks)
            eachSucc(blk, [&](uint32_t s) {
                succs[blk.id].push_back(s);
            });
        int clock = 0;
        std::vector<std::pair<uint32_t, size_t>> stack;
        stack.emplace_back(entry, 0);
        pre[entry] = clock++;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < succs[b].size()) {
                uint32_t s = succs[b][next++];
                if (pre[s] < 0) {
                    pre[s] = clock++;
                    stack.emplace_back(s, 0);
                }
            } else {
                post[b] = clock++;
                postorder.push_back(b);
                stack.pop_back();
            }
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoNum_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy dominator iteration over the RPO.
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoNum_[a] > rpoNum_[b])
                a = idom_[a];
            while (rpoNum_[b] > rpoNum_[a])
                b = idom_[b];
        }
        return a;
    };
    idom_[entry] = static_cast<int>(entry);  // self, fixed below
    for (bool changed = true; changed;) {
        changed = false;
        for (uint32_t b : rpo_) {
            if (b == entry)
                continue;
            int nd = -1;
            for (uint32_t p : r.blocks[b].preds) {
                if (rpoNum_[p] < 0 || idom_[p] < 0)
                    continue;  // unreachable / unprocessed
                nd = nd < 0 ? static_cast<int>(p)
                            : intersect(nd, static_cast<int>(p));
            }
            if (nd >= 0 && idom_[b] != nd) {
                idom_[b] = nd;
                changed = true;
            }
        }
    }
    idom_[entry] = -1;

    // Backward closure from `from`, stopping at `stop`. For a back
    // edge whose sink dominates its source this is the natural loop
    // body: every backward path hits the header, so the walk cannot
    // escape. For an irreducible retreating edge it CAN escape —
    // `stop` does not dominate `from`, so predecessor chains run all
    // the way to the entry — hence the walk is restricted to blocks
    // forward-reachable from `stop` (`within`), which pins it to the
    // offending cycle instead of poisoning everything upstream.
    auto closure = [&](uint32_t from, uint32_t stop,
                       const std::vector<uint8_t> *within) {
        std::vector<uint32_t> body{stop};
        std::vector<uint8_t> in(n, 0);
        in[stop] = 1;
        std::vector<uint32_t> work;
        if (from != stop) {
            in[from] = 1;
            body.push_back(from);
            work.push_back(from);
        }
        while (!work.empty()) {
            uint32_t b = work.back();
            work.pop_back();
            for (uint32_t p : r.blocks[b].preds) {
                if (rpoNum_[p] < 0 || in[p] ||
                    (within && !(*within)[p]))
                    continue;
                in[p] = 1;
                body.push_back(p);
                work.push_back(p);
            }
        }
        std::sort(body.begin(), body.end());
        return body;
    };

    // Forward reachability from `h`, for restricting the irreducible
    // closure above.
    auto reachableFrom = [&](uint32_t h) {
        std::vector<uint8_t> seen(n, 0);
        seen[h] = 1;
        std::vector<uint32_t> work{h};
        while (!work.empty()) {
            uint32_t b = work.back();
            work.pop_back();
            eachSucc(r.blocks[b], [&](uint32_t s) {
                if (!seen[s]) {
                    seen[s] = 1;
                    work.push_back(s);
                }
            });
        }
        return seen;
    };

    // Classify every retreating edge: a dominated sink makes a
    // natural loop, anything else poisons its cycle as irreducible.
    std::map<uint32_t, size_t> byHeader;
    for (uint32_t t : rpo_) {
        eachSucc(r.blocks[t], [&](uint32_t h) {
            bool retreating = pre[h] <= pre[t] && post[h] >= post[t];
            if (!retreating)
                return;
            if (dominates(h, t)) {
                auto [it, fresh] =
                    byHeader.try_emplace(h, loops_.size());
                if (fresh) {
                    Loop l;
                    l.header = h;
                    l.blocks = closure(t, h, nullptr);
                    l.latches.push_back(t);
                    loops_.push_back(std::move(l));
                } else {
                    Loop &l = loops_[it->second];
                    std::vector<uint32_t> more =
                        closure(t, h, nullptr);
                    std::vector<uint32_t> merged;
                    std::set_union(l.blocks.begin(), l.blocks.end(),
                                   more.begin(), more.end(),
                                   std::back_inserter(merged));
                    l.blocks = std::move(merged);
                    l.latches.push_back(t);
                }
            } else {
                std::vector<uint8_t> within = reachableFrom(h);
                for (uint32_t b : closure(t, h, &within))
                    if (!irreducible_[b]) {
                        irreducible_[b] = 1;
                        ++irreducibleBlocks_;
                    }
            }
        });
    }

    // A loop overlapping an irreducible region has no reliable body;
    // drop it rather than transform half a cycle.
    std::erase_if(loops_, [&](const Loop &l) {
        for (uint32_t b : l.blocks)
            if (irreducible_[b])
                return true;
        return false;
    });

    // Nest by strict body containment; the smallest container is the
    // immediate parent.
    for (size_t i = 0; i < loops_.size(); ++i) {
        for (size_t j = 0; j < loops_.size(); ++j) {
            if (i == j ||
                loops_[j].blocks.size() <= loops_[i].blocks.size())
                continue;
            if (!std::includes(loops_[j].blocks.begin(),
                               loops_[j].blocks.end(),
                               loops_[i].blocks.begin(),
                               loops_[i].blocks.end()))
                continue;
            loops_[j].innermost = false;
            if (loops_[i].parent < 0 ||
                loops_[j].blocks.size() <
                    loops_[loops_[i].parent].blocks.size())
                loops_[i].parent = static_cast<int>(j);
        }
    }
    for (Loop &l : loops_) {
        l.depth = 1;
        for (int p = l.parent; p >= 0; p = loops_[p].parent)
            ++l.depth;
        std::sort(l.latches.begin(), l.latches.end());
        for (uint32_t b : l.blocks)
            eachSucc(r.blocks[b], [&](uint32_t s) {
                if (!l.contains(s))
                    l.exits.emplace_back(b, s);
            });
    }
}

bool
LoopAnalyzer::dominates(uint32_t a, uint32_t b) const
{
    if (rpoNum_[a] < 0 || rpoNum_[b] < 0)
        return false;
    int cur = static_cast<int>(b);
    while (cur >= 0) {
        if (cur == static_cast<int>(a))
            return true;
        cur = idom_[cur];
    }
    return false;
}

int
LoopAnalyzer::immediateDominator(uint32_t block) const
{
    return idom_[block];
}

std::vector<LoopAnalyzer::HotLoop>
LoopAnalyzer::hotLoops(const edit::RoutineEdgeCounts &counts,
                       uint64_t minCount) const
{
    std::vector<HotLoop> hot;
    for (size_t li = 0; li < loops_.size(); ++li) {
        const Loop &l = loops_[li];
        HotLoop h;
        h.loop = li;
        for (uint32_t t : l.latches) {
            const edit::BlockEdgeCounts &bc = counts[t];
            if (r_.blocks[t].takenSucc ==
                static_cast<int>(l.header))
                h.backedgeCount += bc.taken;
            if (r_.blocks[t].fallSucc == static_cast<int>(l.header))
                h.backedgeCount += bc.fall;
        }
        for (uint32_t p : r_.blocks[l.header].preds) {
            if (l.contains(p) || rpoNum_[p] < 0)
                continue;
            const edit::BlockEdgeCounts &bc = counts[p];
            if (r_.blocks[p].takenSucc ==
                static_cast<int>(l.header))
                h.entryCount += bc.taken;
            if (r_.blocks[p].fallSucc == static_cast<int>(l.header))
                h.entryCount += bc.fall;
        }
        if (h.backedgeCount < minCount)
            continue;
        h.avgTrip =
            h.entryCount
                ? static_cast<double>(h.backedgeCount +
                                      h.entryCount) /
                      static_cast<double>(h.entryCount)
                : static_cast<double>(h.backedgeCount);
        hot.push_back(h);
    }
    std::sort(hot.begin(), hot.end(),
              [&](const HotLoop &a, const HotLoop &b) {
                  if (a.backedgeCount != b.backedgeCount)
                      return a.backedgeCount > b.backedgeCount;
                  return loops_[a.loop].header <
                         loops_[b.loop].header;
              });
    return hot;
}

} // namespace eel::sched
