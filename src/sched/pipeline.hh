/**
 * @file
 * Modulo scheduling across the backedge — the cyclic extension of the
 * local (§3) and superblock tiers. The unit of work is a hot
 * innermost loop whose whole body is one block (the shape the loop
 * analyzer's hot-loop selection yields on the generated workloads);
 * the scheduler overlaps consecutive iterations by *rotation*:
 *
 *   prologue:  S1(1)                          (at the old header addr)
 *   kernel:    S0(i)  S1(i+1)  cti  delay     (backedge -> kernel)
 *
 * S1 is a dependence-legal set of body instructions hoisted from the
 * *next* iteration into the current kernel, so loop-carried stalls —
 * an instrumentation counter's load-use chain, a register recurrence
 * — drain while the previous iteration finishes. The rotated stream
 * is the original stream plus exactly one extra S1 execution after
 * the final backedge falls through, so S1 admits only
 * speculation-legal instructions (sched::speculatable) whose written
 * registers are dead into the loop exit (after the editor's
 * never-observed scratch masking): bit-identity is preserved by
 * construction, the same argument the superblock's side-exit
 * speculation already rests on.
 *
 * The iterative search: compute MII = max(resource bound from the
 * SADL machine model's reservation holds, recurrence bound from the
 * cross-iteration dependence graph), then try rotations of shrinking
 * size, measuring each candidate kernel's achieved II as its
 * steady-state issue rate through machine::PipelineState with the
 * per-backedge fetch redirect in the measurement loop (a load placed
 * just before the branch drains its latency during the redirect
 * bubble; a constant "+penalty" could not rank that). When no
 * rotation meets MII + redirect + slack, fall back to
 * unroll-and-schedule: two body copies in one block (the first
 * copy's backedge inverted to branch to the exit) scheduled as a
 * superblock, halving the per-iteration redirect and doubling the
 * acyclic window. The cheapest candidate per original iteration
 * wins.
 *
 * For loops of <= ~12 instructions an exhaustive branch-and-bound
 * search (every legal rotation x every topological order x every
 * delay-slot fill, pruned by the MII lower bound and an order
 * budget, with an explicit modulo reservation table rejecting
 * over-subscribed candidates early) yields the *optimal* II under
 * the same steady-state metric. It is both the ablation baseline
 * (bench/ablation_ii_gap) and a ctest oracle (optimal_ii_crosscheck:
 * heuristic II <= optimal II + 1, and both schedules bit-identical
 * to the unscheduled loop).
 */

#ifndef EEL_SCHED_PIPELINE_HH
#define EEL_SCHED_PIPELINE_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "src/eel/cfg.hh"
#include "src/sched/depgraph.hh"
#include "src/sched/scheduler.hh"
#include "src/sched/superblock.hh"

namespace eel::sched {

struct PipelineOptions
{
    /** Loops with fewer backedge executions are left alone. */
    uint64_t minCount = 50;
    /**
     * Minimum fraction of the loop block's exits that take the
     * backedge. A loop that mostly exits immediately pays the
     * prologue/rotation for nothing.
     */
    double minBackedgeProb = 0.6;
    /** Bodies above this size never pipeline (search cost). */
    unsigned maxBodyInsts = 48;
    /**
     * A rotation achieving II <= MII + iiSlack is accepted without
     * trying the unroll fallback.
     */
    unsigned iiSlack = 1;
    /** Allow the unroll-and-schedule fallback (2x code growth for
     *  the loop block). */
    bool allowUnroll = true;
    /**
     * Use the exhaustive branch-and-bound kernel instead of the
     * heuristic one whenever the body is small enough
     * (optimal_ii_crosscheck runs the whole editor this way).
     */
    bool oracle = false;
    /** Exhaustive search applies to bodies of at most this many
     *  instructions (CTI + delay excluded). */
    unsigned oracleMaxInsts = 12;
    /** Cap on complete schedules the exhaustive search evaluates. */
    uint64_t oracleOrderBudget = 200000;
};

/** One loop the analyzer accepted for modulo scheduling. */
struct PipelineLoop
{
    uint32_t block = 0;        ///< the single-block loop's id
    uint64_t execCount = 0;    ///< body executions (profile)
    double backedgeProb = 0.0; ///< taken fraction of the loop branch
};

/**
 * Hot, safely-pipelinable loops of one routine: innermost reducible
 * natural loops (sched::LoopAnalyzer) whose body is a single block
 * ending in a plain conditional branch back to itself, with exactly
 * one exit edge. Multi-block and multi-exit loops are rejected here
 * and keep their local/superblock schedules.
 */
std::vector<PipelineLoop>
findPipelineLoops(const edit::Routine &r,
                  const edit::RoutineEdgeCounts &counts,
                  const PipelineOptions &opts);

/**
 * Lower bounds on the initiation interval, in cycles (redirect
 * excluded). Fractional: the steady state overlaps consecutive
 * iterations in the issue stream, so a 7-instruction body on a
 * 2-wide machine is bounded by 3.5 cycles per iteration, not
 * ceil(7/2) = 4 — rounding up here would let the exhaustive search
 * stop above the true optimum.
 *
 * resMII is CERTIFIED against the measured steady-state metric
 * (stalling only lengthens unit holds, and issue slots are capacity
 * like any other). recMII is an ESTIMATE: it charges each dependence
 * edge the entry separation the pipeline's hazard checks imply, but
 * an operand read past entry stalls mid-pipeline without pushing the
 * issue frontier, so real kernels can measure below it. It steers
 * the heuristic's effort (when to try the unroll fallback); only
 * resMII may prune the exhaustive search.
 */
struct LoopBounds
{
    double resMII = 1; ///< resource bound (certified lower bound)
    double recMII = 1; ///< recurrence bound (heuristic estimate)
    double mii = 1;    ///< max of the two
};

/**
 * MII of a loop body `code` = [body..., cti, delay]. The resource
 * bound divides each functional unit's total hold-cycles per
 * iteration by its capacity (and the body size by the issue width);
 * the recurrence bound is the maximal cycle ratio weight/distance
 * over the dependence cycles of the body — binary-searched with a
 * positive-cycle (Bellman-Ford) feasibility test over the
 * distance-0 edges of the body's dependence graph plus the
 * distance-1 edges a doubled body exposes. Edge weights are the
 * entry separations PipelineState enforces (resolved-variant
 * register access cycles), not the scheduler's conservative
 * latencies — the bound must hold under the same metric the search
 * measures.
 */
LoopBounds loopBounds(const InstSeq &code,
                      const machine::MachineModel &model,
                      AliasPolicy alias);

enum class LoopKind : uint8_t {
    Plain,  ///< local schedule only — rotation/unroll did not pay
    Rotate, ///< software-pipelined: prologue + rotated kernel
    Unroll, ///< unroll-and-schedule fallback (2 copies, one block)
};

/** A scheduled loop, ready for the editor to emit. */
struct LoopSchedule
{
    LoopKind kind = LoopKind::Plain;
    /** Rotate only: S1(1), executed once at the old header address
     *  before falling into the kernel. */
    InstSeq prologue;
    /** The loop block's code: rotated kernel (backedge re-targeted
     *  to this block by the editor), plain scheduled block, or the
     *  two-copy unrolled sequence (its first copy's branch already
     *  inverted to the exit's old address). */
    InstSeq kernel;
    unsigned rotated = 0; ///< |S1|
    LoopBounds bounds;
    /** Steady-state pipeline cycles per original iteration of the
     *  chosen kernel, INCLUDING the per-backedge fetch redirect (the
     *  unroll fallback amortizes one redirect over two iterations —
     *  that amortization is the number's whole point). Always >= the
     *  MII bounds, which exclude the redirect. */
    double achievedII = 0.0;
    /** Best cost over the plain + rotated kernels considered (same
     *  redirect-inclusive metric), even if the unroll fallback won
     *  on total cost: what the optimality crosscheck compares
     *  against the exhaustive search. */
    double bestKernelII = 0.0;
};

/**
 * Schedule one pipelinable loop block. `code` is the block's full
 * sequence (instrumentation prepended) ending [cti, delay];
 * `exitLive` is the live-in set of the exit target already masked by
 * the editor's never-observed scratch set; `exitProb` the fraction
 * of executions leaving the loop; `exitOldAddr` the exit target's
 * old leader address (for the unroll fallback's inverted branch).
 */
LoopSchedule scheduleLoop(const InstSeq &code,
                          const std::bitset<32> &exitLive,
                          double exitProb, uint32_t exitOldAddr,
                          const machine::MachineModel &model,
                          const SchedOptions &opts,
                          const SuperblockOptions &sb_opts,
                          const PipelineOptions &popts);

/** Result of the exhaustive optimal search. */
struct OptimalII
{
    bool applicable = false; ///< body small enough to search
    bool capped = false;     ///< order budget exhausted (upper bound)
    double ii = 0.0;         ///< optimal steady-state II found
    unsigned rotated = 0;    ///< |S1| of the optimal kernel
    uint64_t ordersTried = 0;
    InstSeq prologue;
    InstSeq kernel;
};

/**
 * Branch-and-bound optimal kernel for a small loop: minimizes the
 * same steady-state II metric scheduleLoop reports, over every legal
 * rotation subset, every topological order of the kernel dependence
 * graph, and every delay-slot fill. Early-exits when the MII lower
 * bound is reached.
 */
OptimalII optimalLoopII(const InstSeq &code,
                        const std::bitset<32> &exitLive,
                        const machine::MachineModel &model,
                        const SchedOptions &opts,
                        const SuperblockOptions &sb_opts,
                        const PipelineOptions &popts);

/**
 * Steady-state issue cycles per repetition of `kernel` through
 * machine::PipelineState (24-repetition average after 8 warm-up
 * repetitions; the window is divisible by every small period a
 * bounded-history pipeline can settle into, so the average is exact
 * for such periodic schedules). `bubble` front-end dead cycles are
 * charged after every repetition — pass the machine's branch penalty
 * to measure a loop body ending in its taken backedge, 0 for the
 * pure pipeline rate the MII bounds are stated against.
 */
double steadyStateII(const machine::MachineModel &model,
                     const InstSeq &kernel, unsigned bubble = 0);

} // namespace eel::sched

#endif // EEL_SCHED_PIPELINE_HH
