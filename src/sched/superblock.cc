#include "src/sched/superblock.hh"

#include <algorithm>
#include <numeric>
#include <random>

#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::sched {

using edit::Block;
using edit::BlockEdgeCounts;
using edit::Routine;

namespace {

/** Can the trace be extended through b's taken edge? The branch gets
 *  inverted in the hot copy, so it must be a plain conditional
 *  branch: inversion flips cond bit 3 (e<->ne, l<->ge, ...), which
 *  is undefined for always/never, and an annulled branch executes
 *  its delay slot conditionally — inverting would flip which path
 *  runs it. */
bool
invertible(const isa::Instruction &cti)
{
    if (!cti.isBranch() || cti.annul)
        return false;
    return cti.cond != isa::cond::a && cti.cond != isa::cond::n;
}

/** Can the trace be extended through b's fall-through edge? */
bool
growsThroughFall(const Block &b)
{
    if (!b.hasCti)
        return true;
    const isa::Instruction &cti = b.cti();
    // Conditional (or never-) branches and calls fall through;
    // indirect calls do too, but the callee returns to an address
    // the editor pins, so treat their fall edge as unextendable to
    // keep the return target a real leader.
    if (cti.isBranch())
        return cti.fallsThrough() || cti.isNeverBranch();
    if (cti.op == isa::Op::Call)
        return b.fallSucc >= 0;
    return false;
}

} // namespace

std::vector<Trace>
formTraces(const Routine &r, const edit::RoutineEdgeCounts &counts,
           const SuperblockOptions &opts)
{
    std::vector<Trace> out;
    if (r.blocks.size() < 2 || counts.size() != r.blocks.size())
        return out;

    int entry = -1;
    size_t routine_insts = 0;
    for (const Block &b : r.blocks) {
        if (b.startAddr == r.entry)
            entry = static_cast<int>(b.id);
        routine_insts += b.insts.size();
    }
    const uint64_t budget = static_cast<uint64_t>(
        opts.growthBudget * static_cast<double>(routine_insts));

    // Hottest blocks seed first; ties go to the lower id so the
    // result is deterministic.
    std::vector<uint32_t> seeds(r.blocks.size());
    std::iota(seeds.begin(), seeds.end(), 0);
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](uint32_t a, uint32_t b) {
                         return counts[a].exec > counts[b].exec;
                     });

    std::vector<bool> taken_by_trace(r.blocks.size(), false);
    uint64_t growth_used = 0;

    for (uint32_t seed : seeds) {
        if (taken_by_trace[seed] || counts[seed].exec < opts.minCount)
            continue;

        Trace t;
        t.blocks.push_back(seed);
        t.viaTaken.push_back(0);
        t.dupFrom = 1;  // sentinel: no duplication yet
        bool duplicating = false;
        uint64_t trace_growth = 0;

        uint32_t cur = seed;
        for (;;) {
            const Block &b = r.blocks[cur];
            const BlockEdgeCounts &c = counts[b.id];

            // Candidate extensions, hottest first.
            struct Cand
            {
                int succ;
                uint64_t count;
                bool via_taken;
            };
            Cand cands[2];
            int n_cands = 0;
            bool fall_ok = b.fallSucc >= 0 && growsThroughFall(b);
            bool taken_ok = b.takenSucc >= 0 && b.hasCti &&
                            invertible(b.cti());
            if (b.takenSucc == b.fallSucc) {
                // Degenerate branch-to-next: the side "exit" would
                // target the block we grow into, whose hot-interior
                // address no longer exists. Stop here.
                fall_ok = taken_ok = false;
            }
            if (fall_ok)
                cands[n_cands++] = Cand{b.fallSucc, c.fall, false};
            if (taken_ok)
                cands[n_cands++] = Cand{b.takenSucc, c.taken, true};
            if (n_cands == 2 && cands[1].count > cands[0].count)
                std::swap(cands[0], cands[1]);

            uint64_t outflow = c.fall + c.taken;
            int grew = -1;
            for (int i = 0; i < n_cands && grew < 0; ++i) {
                const Cand &cd = cands[i];
                uint32_t s = static_cast<uint32_t>(cd.succ);
                if (cd.count < opts.minCount)
                    continue;
                if (static_cast<double>(cd.count) <
                    opts.threshold * static_cast<double>(outflow))
                    continue;
                if (static_cast<double>(cd.count) <
                    opts.threshold *
                        static_cast<double>(counts[s].exec))
                    continue;
                if (taken_by_trace[s] ||
                    s == static_cast<uint32_t>(entry))
                    continue;
                if (std::find(t.blocks.begin(), t.blocks.end(), s) !=
                    t.blocks.end())
                    continue;  // no cycles: back edges end the trace

                // Side entrance: every position after the first one
                // with an off-trace predecessor needs a cold copy
                // (its hot copy is reachable only through the trace,
                // and its hot predecessor exists twice).
                bool dup_here =
                    duplicating || r.blocks[s].preds.size() > 1;
                // Duplication splits the successor's executions
                // between the hot and cold copies; the cold copy
                // pays a relink jump on its fall path every time it
                // runs. That recurring toll is only worth paying
                // when the trace keeps nearly all of the flow.
                if (dup_here &&
                    static_cast<double>(cd.count) <
                        opts.dupThreshold *
                            static_cast<double>(counts[s].exec))
                    continue;
                uint64_t cost = 0;
                if (dup_here)
                    cost = r.blocks[s].insts.size() + 2;  // +stub
                if (growth_used + trace_growth + cost > budget)
                    continue;

                if (dup_here && !duplicating) {
                    duplicating = true;
                    t.dupFrom = t.blocks.size();
                }
                trace_growth += cost;
                t.blocks.push_back(s);
                t.viaTaken.push_back(cd.via_taken ? 1 : 0);
                grew = static_cast<int>(s);
            }
            if (grew < 0)
                break;
            cur = static_cast<uint32_t>(grew);
        }

        if (t.blocks.size() < 2)
            continue;
        if (!duplicating)
            t.dupFrom = t.blocks.size();
        for (uint32_t id : t.blocks)
            taken_by_trace[id] = true;
        growth_used += trace_growth;
        out.push_back(std::move(t));
    }
    return out;
}

/**
 * May this instruction execute speculatively — above a side exit it
 * was never guarded by? Rules (see file header): no control flow, no
 * stores (memory must be exit-consistent), no barriers, no cc/Y/fp
 * results (the branch reads cc; fp liveness is unknown), no
 * possibly-trapping ops (div by zero, traps), and loads only when a
 * memory tag proves the address valid.
 */
bool
speculatable(const InstRef &ref, const SuperblockOptions &opts)
{
    const isa::Instruction &in = ref.inst;
    if (in.isCti() || in.isBarrier() || in.isStore())
        return false;
    if (in.op == isa::Op::Ticc || in.op == isa::Op::Udiv ||
        in.op == isa::Op::Sdiv)
        return false;
    if (in.isLoad() &&
        !(opts.speculateSafeLoads && ref.isInstrumentation &&
          ref.memTag >= 0))
        return false;
    for (const auto &d : in.defs()) {
        if (!d.reg.tracked())
            continue;
        if (d.reg.cls != isa::RegClass::Int)
            return false;
    }
    return true;
}

InstSeq
scheduleSuperblock(const std::vector<SbSegment> &segments,
                   const machine::MachineModel &model,
                   const SchedOptions &opts,
                   const SuperblockOptions &sb_opts,
                   SuperblockStats *stats)
{
    // Concatenate the trace into one program-order sequence; the
    // dependence graph over it has only forward edges, so readiness
    // subsumes every data constraint on cross-segment motion.
    InstSeq seq;
    std::vector<uint32_t> home;      // segment of each instruction
    std::vector<uint8_t> pinned;     // cti or delay slot: placed at
                                     // its segment close, never picked
    std::vector<int> cti_at(segments.size(), -1);  // global cti index
    for (size_t k = 0; k < segments.size(); ++k) {
        const SbSegment &s = segments[k];
        // A non-annulled real delay instruction executes on both
        // paths wherever it sits relative to the branch, so it may
        // join the schedulable pool like the local scheduler's
        // region — the delay slot is then refilled at the segment's
        // close. A nop stays pinned (the close deletes it when a
        // filler displaces it; freeing it would emit it in the body
        // as junk), as does an annulled delay (the fall path skips
        // it) or one whose registers conflict with its CTI.
        bool free_delay = false;
        if (s.ctiPos >= 0 &&
            static_cast<size_t>(s.ctiPos) + 2 == s.insts.size() &&
            s.insts[s.ctiPos + 1].inst.op != isa::Op::Nop) {
            const isa::Instruction &ci = s.insts[s.ctiPos].inst;
            free_delay = !ci.annul &&
                         legalInDelaySlot(
                             s.insts[s.ctiPos + 1].inst, ci);
        }
        for (size_t i = 0; i < s.insts.size(); ++i) {
            bool pin = s.ctiPos >= 0 &&
                       i >= static_cast<size_t>(s.ctiPos);
            if (free_delay &&
                i == static_cast<size_t>(s.ctiPos) + 1)
                pin = false;
            if (i == static_cast<size_t>(s.ctiPos))
                cti_at[k] = static_cast<int>(seq.size());
            seq.push_back(s.insts[i]);
            home.push_back(static_cast<uint32_t>(k));
            pinned.push_back(pin ? 1 : 0);
        }
        if (s.ctiPos >= 0 &&
            s.insts.size() != static_cast<size_t>(s.ctiPos) + 2)
            panic("superblock: segment CTI not second-to-last");
    }
    const size_t n = seq.size();
    if (n == 0)
        return seq;

    if (opts.priority == SchedOptions::Priority::OriginalOrder)
        return seq;

    DepGraph graph(seq, model, opts.alias);
    std::vector<int> dist = graph.distanceToEnd();

    // Same packed tie key as the local scheduler: greater dependence
    // distance first, then original program order (which also favors
    // a segment's own instructions over speculative ones on ties).
    std::vector<uint64_t> key(n);
    if (opts.tieJitterSeed) {
        std::mt19937_64 rng(opts.tieJitterSeed);
        for (uint64_t &k : key)
            k = rng();
    } else {
        for (uint32_t i = 0; i < n; ++i) {
            switch (opts.priority) {
              case SchedOptions::Priority::Full:
              case SchedOptions::Priority::DistanceOnly:
                key[i] = (uint64_t(uint32_t(INT32_MAX - dist[i]))
                          << 32) |
                         i;
                break;
              default:
                key[i] = i;
                break;
            }
        }
    }
    const bool useStalls =
        opts.priority != SchedOptions::Priority::DistanceOnly;

    // legal[i]: the lowest segment i may occupy without breaking a
    // side exit, walking boundaries backward from its home. A Free
    // boundary costs nothing; a CondExit admits only
    // speculation-legal instructions that clobber nothing live into
    // the side exit; a Rigid boundary stops everything.
    // earliest[i] additionally stops at exits taken too often
    // (maxSpecExitProb): hoisting past those is legal but wasted
    // work on a path taken half the time. Body picks use earliest;
    // delay-slot fills — neutral on the exit path, they displace a
    // nop at worst — use legal.
    std::vector<uint32_t> legal(n), earliest(n);
    // Why the backward boundary walk stopped (slot-fill audit):
    // 1 = a liveness mask (the side exit's live-in set), 2 = a
    // speculation gate (non-speculatable inst or a rigid boundary).
    std::vector<uint8_t> gateCause(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t e = home[i];
        if (!pinned[i]) {
            bool spec = speculatable(seq[i], sb_opts);
            std::bitset<32> writes;
            for (const auto &d : seq[i].inst.defs())
                if (d.reg.tracked() &&
                    d.reg.cls == isa::RegClass::Int)
                    writes.set(d.reg.idx);
            while (e > 0) {
                const SbSegment &below = segments[e - 1];
                if (below.boundary == BoundaryKind::Rigid) {
                    gateCause[i] = 2;
                    break;
                }
                if (below.boundary == BoundaryKind::CondExit) {
                    if (!spec) {
                        gateCause[i] = 2;
                        break;
                    }
                    if ((writes & below.exitLive).any()) {
                        gateCause[i] = 1;
                        break;
                    }
                }
                --e;
            }
        }
        legal[i] = e;
        uint32_t ep = home[i];
        while (ep > e) {
            const SbSegment &below = segments[ep - 1];
            if (below.boundary == BoundaryKind::CondExit &&
                below.exitProb > sb_opts.maxSpecExitProb)
                break;
            --ep;
        }
        earliest[i] = ep;
    }

    std::vector<machine::ResolvedVariant> rvs;
    if (useStalls) {
        rvs.reserve(n);
        for (const InstRef &r : seq)
            rvs.push_back(
                machine::ResolvedVariant::resolve(model, r.inst));
    }

    // cexBefore[k]: CondExit boundaries among segments [0, k). An
    // instruction picked into segment k from home h executes wasted
    // work on every side exit in between, so such "risky" hoists must
    // buy a strictly better stall count — filling a cycle that would
    // have been a bubble anyway costs the exit paths nothing, while a
    // hoist that merely ties displaces real work and delays the exit
    // branch itself. Motion across Free boundaries carries no risk.
    std::vector<uint32_t> cexBefore(segments.size() + 1, 0);
    for (size_t k = 0; k < segments.size(); ++k)
        cexBefore[k + 1] =
            cexBefore[k] +
            (segments[k].boundary == BoundaryKind::CondExit ? 1 : 0);

    std::vector<unsigned> preds(n);
    std::vector<bool> done(n, false);
    std::vector<uint32_t> ready;
    for (uint32_t i = 0; i < n; ++i) {
        preds[i] = graph.numPreds(i);
        if (preds[i] == 0)
            ready.push_back(i);
    }
    // Unscheduled non-pinned instructions per home segment: a
    // segment closes only when its own body has fully drained
    // (instructions never sink below their home segment — on a side
    // exit they must already have executed).
    std::vector<size_t> mandatory(segments.size(), 0);
    for (uint32_t i = 0; i < n; ++i)
        if (!pinned[i])
            ++mandatory[home[i]];

    machine::PipelineState state(model);
    InstSeq out;
    out.reserve(n);

    // Unscheduled non-pinned instrumentation, for the audit's "no
    // candidate left" case.
    unsigned instrLeft = 0;
    if (opts.audit)
        for (uint32_t i = 0; i < n; ++i)
            instrLeft += !pinned[i] && seq[i].isInstrumentation;

    auto schedule = [&](uint32_t i) {
        if (useStalls)
            state.issue(rvs[i]);
        done[i] = true;
        if (!pinned[i]) {
            --mandatory[home[i]];
            if (opts.audit && seq[i].isInstrumentation)
                --instrLeft;
        }
        for (uint32_t e : graph.succs(i)) {
            uint32_t j = graph.edges()[e].to;
            if (!done[j] && --preds[j] == 0)
                ready.push_back(j);
        }
    };
    auto dropReady = [&](uint32_t i) {
        for (size_t p = 0; p < ready.size(); ++p) {
            if (ready[p] == i) {
                ready[p] = ready.back();
                ready.pop_back();
                return;
            }
        }
    };

    // Audit classification for one empty slot while draining segment
    // k. Gated candidates (earliest > k) attribute to the boundary
    // that holds them back: the exit-probability gate and rigid/
    // non-speculatable stops are SpeculationGate, a live-in clobber
    // is LivenessMask. `stallClassify` selects the stall-character
    // split for ready candidates (body picks); the delay-slot nop
    // path passes false — there the blocker was delay-slot legality,
    // a dependence on the CTI.
    auto auditReason = [&](size_t k, bool stallClassify) {
        if (instrLeft == 0)
            return obs::SlotFillReason::NoReadyInst;
        int cand = -1;
        unsigned cand_stalls = 0;
        bool gatedLive = false, gatedSpec = false;
        for (uint32_t r : ready) {
            if (pinned[r] || !seq[r].isInstrumentation)
                continue;
            if (earliest[r] > k) {
                if (legal[r] > k && gateCause[r] == 1)
                    gatedLive = true;
                else
                    gatedSpec = true;
                continue;
            }
            unsigned s = (stallClassify && useStalls)
                             ? state.stalls(rvs[r])
                             : 0;
            if (cand < 0 || s < cand_stalls) {
                cand = static_cast<int>(r);
                cand_stalls = s;
            }
        }
        if (cand >= 0) {
            if (!stallClassify || !useStalls)
                return obs::SlotFillReason::Dependence;
            obs::StallBreakdown bd;
            state.stalls(rvs[cand], &bd);
            uint64_t res =
                bd.cycles[unsigned(obs::StallReason::Resource)];
            uint64_t dep =
                bd.cycles[unsigned(obs::StallReason::RawDep)] +
                bd.cycles[unsigned(obs::StallReason::WarWawDep)];
            return res >= dep ? obs::SlotFillReason::ResourceConflict
                              : obs::SlotFillReason::Dependence;
        }
        if (gatedLive)
            return obs::SlotFillReason::LivenessMask;
        if (gatedSpec)
            return obs::SlotFillReason::SpeculationGate;
        return obs::SlotFillReason::Dependence;
    };

    // (instruction, position in `out`) pairs emitted by the current
    // segment's drain, in schedule order — the delay-slot fallback
    // scans them backward like the local scheduler scans its block.
    std::vector<std::pair<uint32_t, size_t>> seg_out;

    for (size_t k = 0; k < segments.size(); ++k) {
        seg_out.clear();
        while (mandatory[k] > 0) {
            // Pick among ready instructions allowed in segment k;
            // the pool mixes segment k's own with legal speculative
            // ones from later segments, competing on stalls.
            int best = -1;
            size_t best_pos = 0;
            unsigned best_stalls = 0;
            unsigned best_risk = 0;
            for (size_t p = 0; p < ready.size(); ++p) {
                uint32_t cand = ready[p];
                if (pinned[cand] || earliest[cand] > k)
                    continue;
                unsigned s =
                    useStalls ? state.stalls(rvs[cand]) : 0;
                unsigned risk =
                    cexBefore[home[cand]] > cexBefore[k] ? 1 : 0;
                if (best < 0 || s < best_stalls ||
                    (s == best_stalls &&
                     (risk < best_risk ||
                      (risk == best_risk &&
                       key[cand] < key[best])))) {
                    best = static_cast<int>(cand);
                    best_stalls = s;
                    best_risk = risk;
                    best_pos = p;
                }
            }
            if (best < 0)
                panic("superblock: no ready instruction for "
                      "segment %zu", k);
            if (opts.audit && useStalls && best_stalls > 0)
                opts.audit->add(
                    auditReason(k, true),
                    uint64_t(best_stalls) * model.issueWidth());
            if (stats && home[best] > k)
                ++stats->hoisted;
            ready[best_pos] = ready.back();
            ready.pop_back();
            seg_out.emplace_back(static_cast<uint32_t>(best),
                                 out.size());
            out.push_back(seq[best]);
            schedule(static_cast<uint32_t>(best));
        }

        if (cti_at[k] < 0)
            continue;  // free-flowing segment: no CTI to place
        uint32_t c = static_cast<uint32_t>(cti_at[k]);
        uint32_t d = c + 1;
        if (preds[c] != 0)
            panic("superblock: CTI of segment %zu not ready", k);
        dropReady(c);
        out.push_back(seq[c]);
        schedule(c);

        // Delay slot. A freed delay instruction (unpinned above) has
        // already drained into the body; refill the slot it vacated
        // with (a) the latest instruction of this segment's own
        // schedule with no dependence on anything after it, moved
        // past the CTI exactly as the local scheduler moves its
        // trailing instruction — its work is needed on both paths,
        // so the slot is never wasted — or, failing that, (b) the
        // best ready candidate from a later segment: useful on the
        // fall path, wasted (but harmless: it must clear the side
        // exit, legal <= k) when the exit is taken. A pinned nop may
        // be displaced (and deleted) the same two ways. Only when
        // all of that fails does a freed slot cost a fresh nop.
        const isa::Instruction &cti = seq[c].inst;
        bool delay_freed = !pinned[d];
        bool may_fill =
            opts.fillDelaySlot && !cti.annul &&
            (delay_freed || seq[d].inst.op == isa::Op::Nop);
        int fill = -1;
        if (may_fill) {
            for (size_t pos = seg_out.size(); pos-- > 0;) {
                uint32_t idx = seg_out[pos].first;
                if (!legalInDelaySlot(seq[idx].inst, cti))
                    continue;
                bool clean = true;
                for (size_t later = pos + 1;
                     later < seg_out.size(); ++later) {
                    if (graph.hasEdge(idx, seg_out[later].first)) {
                        clean = false;
                        break;
                    }
                }
                if (!clean)
                    continue;
                InstRef moved = out[seg_out[pos].second];
                out.erase(out.begin() +
                          static_cast<ptrdiff_t>(seg_out[pos].second));
                out.push_back(moved);
                fill = static_cast<int>(idx);
                break;
            }
        }
        if (fill < 0 && may_fill) {
            size_t fill_pos = 0;
            unsigned fill_stalls = 0;
            for (size_t p = 0; p < ready.size(); ++p) {
                uint32_t cand = ready[p];
                if (pinned[cand] || legal[cand] > k)
                    continue;
                if (!legalInDelaySlot(seq[cand].inst, cti))
                    continue;
                unsigned s =
                    useStalls ? state.stalls(rvs[cand]) : 0;
                if (fill < 0 || s < fill_stalls ||
                    (s == fill_stalls &&
                     key[cand] < key[fill])) {
                    fill = static_cast<int>(cand);
                    fill_stalls = s;
                    fill_pos = p;
                }
            }
            if (fill >= 0) {
                ready[fill_pos] = ready.back();
                ready.pop_back();
                out.push_back(seq[fill]);
                schedule(static_cast<uint32_t>(fill));
            }
        }
        if (fill >= 0) {
            if (stats)
                ++stats->delaysFilled;
            if (!delay_freed) {
                // The displaced nop is consumed, not emitted.
                if (preds[d] != 0)
                    panic("superblock: delay nop has "
                          "predecessors");
                dropReady(d);
                schedule(d);
            }
        } else {
            if (delay_freed) {
                if (opts.audit)
                    opts.audit->add(auditReason(k, false));
                InstRef nop;
                nop.inst = isa::build::nop();
                nop.isInstrumentation = true;
                out.push_back(nop);
            } else {
                if (preds[d] != 0)
                    panic("superblock: delay slot of segment %zu "
                          "not ready", k);
                dropReady(d);
                out.push_back(seq[d]);
                schedule(d);
            }
        }
    }

    for (size_t k = 0; k < segments.size(); ++k)
        if (mandatory[k])
            panic("superblock: segment %zu left %zu instructions "
                  "unscheduled", k, mandatory[k]);
    return out;
}

TraceGrowth
accountGrowth(const edit::Routine &r,
              const edit::RoutineEdgeCounts &counts,
              const std::vector<Trace> &traces)
{
    TraceGrowth g;
    std::vector<int> traceOf(r.blocks.size(), -1);
    for (size_t t = 0; t < traces.size(); ++t)
        for (uint32_t id : traces[t].blocks)
            traceOf[id] = static_cast<int>(t);

    // Count of arrivals at trace position p along the trace itself
    // (the edge from the previous member). Everything else reaching
    // the block is a side entrance and lands on the cold copy.
    auto onTraceInflow = [&](const Trace &t, size_t p) -> uint64_t {
        if (p == 0)
            return 0;
        uint32_t prev = t.blocks[p - 1];
        uint32_t id = t.blocks[p];
        const edit::BlockEdgeCounts &pc = counts[prev];
        uint64_t in = 0;
        if (r.blocks[prev].takenSucc == static_cast<int>(id))
            in += pc.taken;
        if (r.blocks[prev].fallSucc == static_cast<int>(id))
            in += pc.fall;
        return in;
    };

    // Duplicated tail copies and their relink stubs. Each block is
    // charged once, even when several relink paths re-enter a block
    // some earlier range already duplicated — charging it per visit
    // double-counts both the static copy and every execution of it.
    std::vector<uint8_t> dupCounted(r.blocks.size(), 0);
    for (const Trace &t : traces) {
        for (size_t p = t.dupFrom; p < t.blocks.size(); ++p) {
            uint32_t id = t.blocks[p];
            if (dupCounted[id])
                continue;
            dupCounted[id] = 1;
            const edit::Block &b = r.blocks[id];
            g.dupInsts += b.insts.size();
            const edit::BlockEdgeCounts &bc = counts[id];
            uint64_t hotIn = onTraceInflow(t, p);
            uint64_t coldExec =
                bc.exec > hotIn ? bc.exec - hotIn : 0;
            bool nextIsFall =
                p + 1 < t.blocks.size() &&
                b.fallSucc == static_cast<int>(t.blocks[p + 1]);
            if (b.fallSucc >= 0 && !nextIsFall) {
                g.stubInsts += 2;
                if (bc.exec)
                    g.dynExtra += 2 * (bc.fall * coldExec / bc.exec);
            }
        }

        // The hot copy's bottom relink stub (mirrors the editor's
        // falls_next test): paid by hot-path executions that fall
        // out of the trace.
        bool contiguous = true;
        for (size_t p = 1; p < t.blocks.size(); ++p)
            if (t.viaTaken[p] || t.blocks[p] != t.blocks[p - 1] + 1)
                contiguous = false;
        size_t lastPos = t.blocks.size() - 1;
        const edit::Block &last = r.blocks[t.blocks.back()];
        bool fallsNext =
            contiguous &&
            last.fallSucc ==
                static_cast<int>(t.blocks.back()) + 1 &&
            (traceOf[last.fallSucc] < 0 ||
             traces[traceOf[last.fallSucc]].blocks.front() ==
                 static_cast<uint32_t>(last.fallSucc));
        if (last.fallSucc >= 0 && !fallsNext) {
            g.stubInsts += 2;
            const edit::BlockEdgeCounts &lc = counts[t.blocks.back()];
            uint64_t hotExec = lc.exec;
            if (lastPos >= t.dupFrom)
                hotExec = std::min<uint64_t>(
                    hotExec, onTraceInflow(t, lastPos));
            if (lc.exec)
                g.dynExtra += 2 * (lc.fall * hotExec / lc.exec);
        }
    }

    // Off-trace blocks whose fall-through successor moved into a
    // trace as a non-head member: the editor relinks them through a
    // stub, paid on every fall.
    for (const edit::Block &b : r.blocks) {
        if (traceOf[b.id] >= 0 || b.fallSucc < 0)
            continue;
        if (traceOf[b.fallSucc] >= 0 &&
            traces[traceOf[b.fallSucc]].blocks.front() !=
                static_cast<uint32_t>(b.fallSucc)) {
            g.stubInsts += 2;
            g.dynExtra += 2 * counts[b.id].fall;
        }
    }
    return g;
}

} // namespace eel::sched
