/**
 * @file
 * Natural-loop analysis over the editor's routine CFG — the front end
 * of the modulo scheduler (src/sched/pipeline.hh). The analyzer
 * computes dominators (Cooper-Harvey-Kennedy over a reverse
 * postorder), discovers natural loops from dominator back edges
 * (merging loops that share a header), nests them by body
 * containment, and rejects irreducible regions: a retreating DFS
 * edge whose sink does not dominate its source has no unique loop
 * header, so every block on its cycle is excluded from loop
 * transformations. Hot-loop selection ranks loops by the backedge
 * counts qpt's Ball-Larus profiler reconstructs.
 */

#ifndef EEL_SCHED_LOOP_HH
#define EEL_SCHED_LOOP_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/eel/cfg.hh"

namespace eel::sched {

/** One natural loop: all blocks that can reach a latch without
 *  leaving through the header. Loops sharing a header are merged. */
struct Loop
{
    uint32_t header = 0;
    /** Member block ids, ascending, header included. */
    std::vector<uint32_t> blocks;
    /** Backedge sources (blocks with an edge to the header). */
    std::vector<uint32_t> latches;
    /** (member block, off-loop successor) pairs, one per exit edge. */
    std::vector<std::pair<uint32_t, uint32_t>> exits;
    /** Index of the innermost strictly-containing loop, or -1. */
    int parent = -1;
    /** Nesting depth: 1 for outermost. */
    unsigned depth = 1;
    /** No other loop is strictly contained in this one. */
    bool innermost = true;

    bool contains(uint32_t id) const
    {
        return std::binary_search(blocks.begin(), blocks.end(), id);
    }
};

class LoopAnalyzer
{
  public:
    explicit LoopAnalyzer(const edit::Routine &r);

    const std::vector<Loop> &loops() const { return loops_; }

    /** False if any retreating edge lacks a dominating header. */
    bool reducible() const { return irreducibleBlocks_ == 0; }
    /** Block sits on a cycle with no unique header. Such blocks are
     *  never reported as loop members. */
    bool inIrreducibleRegion(uint32_t block) const
    {
        return irreducible_[block] != 0;
    }
    bool reachable(uint32_t block) const
    {
        return rpoNum_[block] >= 0;
    }
    /** a dominates b (reflexive). False if either is unreachable. */
    bool dominates(uint32_t a, uint32_t b) const;
    /** Immediate dominator block id, -1 for the entry block and for
     *  unreachable blocks. */
    int immediateDominator(uint32_t block) const;

    /** One loop ranked by profile heat. */
    struct HotLoop
    {
        size_t loop = 0;            ///< index into loops()
        uint64_t backedgeCount = 0; ///< total latch->header count
        uint64_t entryCount = 0;    ///< total entry-edge count
        double avgTrip = 0.0;       ///< iterations per entry
    };
    /**
     * Loops whose backedges ran at least `minCount` times, hottest
     * first (ties broken by header id, so the order is deterministic).
     */
    std::vector<HotLoop> hotLoops(const edit::RoutineEdgeCounts &counts,
                                  uint64_t minCount = 1) const;

  private:
    const edit::Routine &r_;
    std::vector<Loop> loops_;
    std::vector<int> rpoNum_;       ///< -1 = unreachable
    std::vector<uint32_t> rpo_;     ///< block ids in reverse postorder
    std::vector<int> idom_;         ///< by block id, -1 for entry
    std::vector<uint8_t> irreducible_;
    uint32_t irreducibleBlocks_ = 0;
};

} // namespace eel::sched

#endif // EEL_SCHED_LOOP_HH
