#include "src/sched/scheduler.hh"

#include <algorithm>
#include <random>

#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::sched {

namespace {

/** True if inst may move from before the CTI into its delay slot. */
bool
legalInDelaySlot(const isa::Instruction &inst, const isa::Instruction &cti)
{
    if (inst.isCti())
        return false;
    // The delay instruction executes after the CTI reads its sources
    // and writes its results. Moving inst past the CTI is illegal if
    // the CTI reads anything inst writes (RAW), or inst touches
    // anything the CTI writes (it would observe/clobber the new
    // value: WAR/WAW in reverse).
    auto writes = inst.defs();
    auto reads = inst.uses();
    for (const auto &cu : cti.uses())
        for (const auto &d : writes)
            if (cu.reg.tracked() && cu.reg == d.reg)
                return false;
    for (const auto &cd : cti.defs()) {
        if (!cd.reg.tracked())
            continue;
        for (const auto &d : writes)
            if (cd.reg == d.reg)
                return false;
        for (const auto &u : reads)
            if (cd.reg == u.reg)
                return false;
    }
    return true;
}

} // namespace

std::vector<uint32_t>
ListScheduler::scheduleRegion(std::span<const InstRef> region) const
{
    const size_t n = region.size();
    std::vector<uint32_t> order;
    order.reserve(n);
    if (opts.priority == SchedOptions::Priority::OriginalOrder) {
        for (uint32_t i = 0; i < n; ++i)
            order.push_back(i);
        return order;
    }

    DepGraph graph(region, model, opts.alias);
    std::vector<int> dist = graph.distanceToEnd();

    // Optional jittered tie-breaking (see SchedOptions).
    std::vector<uint64_t> jitter;
    if (opts.tieJitterSeed) {
        std::mt19937_64 rng(opts.tieJitterSeed);
        jitter.resize(n);
        for (uint64_t &j : jitter)
            j = rng();
    }

    std::vector<unsigned> preds(n);
    std::vector<bool> done(n, false);
    std::vector<uint32_t> ready;
    for (uint32_t i = 0; i < n; ++i) {
        preds[i] = graph.numPreds(i);
        if (preds[i] == 0)
            ready.push_back(i);
    }

    machine::PipelineState state(model);

    while (order.size() < n) {
        if (ready.empty())
            panic("scheduler: dependence graph has a cycle");

        uint32_t best = ready[0];
        unsigned best_stalls = 0;
        bool first = true;
        for (uint32_t cand : ready) {
            unsigned s = state.stalls(region[cand].inst);
            if (first) {
                best = cand;
                best_stalls = s;
                first = false;
                continue;
            }
            bool better = false;
            if (!jitter.empty()) {
                better = s != best_stalls ? s < best_stalls
                                          : jitter[cand] < jitter[best];
                if (better) {
                    best = cand;
                    best_stalls = s;
                }
                continue;
            }
            switch (opts.priority) {
              case SchedOptions::Priority::Full:
                if (s != best_stalls)
                    better = s < best_stalls;
                else if (dist[cand] != dist[best])
                    better = dist[cand] > dist[best];
                else
                    better = cand < best;
                break;
              case SchedOptions::Priority::StallsOnly:
                if (s != best_stalls)
                    better = s < best_stalls;
                else
                    better = cand < best;
                break;
              case SchedOptions::Priority::DistanceOnly:
                if (dist[cand] != dist[best])
                    better = dist[cand] > dist[best];
                else
                    better = cand < best;
                break;
              case SchedOptions::Priority::OriginalOrder:
                better = cand < best;
                break;
            }
            if (better) {
                best = cand;
                best_stalls = s;
            }
        }

        state.issue(region[best].inst);
        done[best] = true;
        order.push_back(best);
        ready.erase(std::find(ready.begin(), ready.end(), best));
        for (uint32_t e : graph.succs(best)) {
            uint32_t j = graph.edges()[e].to;
            if (!done[j] && --preds[j] == 0)
                ready.push_back(j);
        }
    }
    return order;
}

InstSeq
ListScheduler::scheduleBlock(const InstSeq &block) const
{
    if (block.empty())
        return block;
    if (opts.priority == SchedOptions::Priority::OriginalOrder)
        return block;

    // Locate the terminating CTI and its delay slot. A well-formed
    // block has the CTI second-to-last with the delay instruction
    // last; any CTI elsewhere is a malformed block.
    size_t cti_idx = block.size();
    for (size_t i = 0; i < block.size(); ++i) {
        if (block[i].inst.isCti()) {
            if (i + 2 != block.size() && i + 1 != block.size())
                panic("scheduleBlock: CTI not at block end");
            cti_idx = i;
            break;
        }
    }

    InstSeq region;
    const InstRef *cti = nullptr;
    const InstRef *delay = nullptr;
    bool delay_pinned = false;
    if (cti_idx < block.size()) {
        region.assign(block.begin(), block.begin() + cti_idx);
        cti = &block[cti_idx];
        if (cti_idx + 1 < block.size()) {
            delay = &block[cti_idx + 1];
            // An annulled branch executes its delay slot
            // conditionally; leave it alone.
            delay_pinned = cti->inst.annul;
            if (!delay_pinned)
                region.push_back(*delay);
        }
        // A block ending in a bare CTI (builder output before delay
        // filling) gets a delay slot synthesized below.
    } else {
        region = block;
    }

    std::vector<uint32_t> order = scheduleRegion(region);

    InstSeq sched;
    sched.reserve(block.size() + 1);
    for (uint32_t idx : order)
        sched.push_back(region[idx]);

    if (!cti)
        return sched;

    if (delay_pinned) {
        sched.push_back(*cti);
        sched.push_back(*delay);
        return sched;
    }

    // Pick the delay-slot filler: the latest scheduled instruction
    // with no dependence on anything scheduled after it and none on
    // the CTI itself.
    DepGraph graph(region, model, opts.alias);
    int filler = -1;
    if (opts.fillDelaySlot) {
        for (size_t pos = sched.size(); pos-- > 0;) {
            uint32_t idx = order[pos];
            if (!legalInDelaySlot(region[idx].inst, cti->inst))
                continue;
            bool clean = true;
            for (size_t later = pos + 1; later < sched.size();
                 ++later) {
                if (graph.hasEdge(idx, order[later])) {
                    clean = false;
                    break;
                }
            }
            if (clean) {
                filler = static_cast<int>(pos);
                break;
            }
        }
    }

    InstSeq out;
    out.reserve(block.size() + 1);
    for (size_t pos = 0; pos < sched.size(); ++pos)
        if (static_cast<int>(pos) != filler)
            out.push_back(sched[pos]);
    out.push_back(*cti);
    if (filler >= 0) {
        out.push_back(sched[filler]);
    } else {
        InstRef nop;
        nop.inst = isa::build::nop();
        nop.isInstrumentation = true;
        out.push_back(nop);
    }
    return out;
}

} // namespace eel::sched
