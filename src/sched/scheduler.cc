#include "src/sched/scheduler.hh"

#include <algorithm>
#include <random>

#include "src/isa/builder.hh"
#include "src/support/logging.hh"

namespace eel::sched {

bool
legalInDelaySlot(const isa::Instruction &inst, const isa::Instruction &cti)
{
    if (inst.isCti())
        return false;
    // The delay instruction executes after the CTI reads its sources
    // and writes its results. Moving inst past the CTI is illegal if
    // the CTI reads anything inst writes (RAW), or inst touches
    // anything the CTI writes (it would observe/clobber the new
    // value: WAR/WAW in reverse).
    auto writes = inst.defs();
    auto reads = inst.uses();
    for (const auto &cu : cti.uses())
        for (const auto &d : writes)
            if (cu.reg.tracked() && cu.reg == d.reg)
                return false;
    for (const auto &cd : cti.defs()) {
        if (!cd.reg.tracked())
            continue;
        for (const auto &d : writes)
            if (cd.reg == d.reg)
                return false;
        for (const auto &u : reads)
            if (cd.reg == u.reg)
                return false;
    }
    return true;
}

obs::SlotFillReason
classifyUnfilledSlot(const machine::PipelineState &state,
                     std::span<const InstRef> region,
                     std::span<const machine::ResolvedVariant> rvs,
                     std::span<const uint32_t> ready,
                     unsigned instrLeft)
{
    if (instrLeft == 0)
        return obs::SlotFillReason::NoReadyInst;

    // Best (fewest-stalls) ready instrumentation candidate; ties
    // resolve to the first in ready-list order — the audit only
    // needs the stall character, not the scheduler's exact pick.
    int cand = -1;
    unsigned cand_stalls = 0;
    for (uint32_t r : ready) {
        if (!region[r].isInstrumentation)
            continue;
        unsigned s = state.stalls(rvs[r]);
        if (cand < 0 || s < cand_stalls) {
            cand = static_cast<int>(r);
            cand_stalls = s;
        }
    }
    // Instrumentation exists but none of it is ready: its
    // predecessors are unscheduled, i.e. a dependence holds it back.
    if (cand < 0)
        return obs::SlotFillReason::Dependence;

    // A ready candidate that itself stalls: attribute by what its
    // stall cycles are made of.
    obs::StallBreakdown bd;
    state.stalls(rvs[cand], &bd);
    uint64_t res = bd.cycles[unsigned(obs::StallReason::Resource)];
    uint64_t dep =
        bd.cycles[unsigned(obs::StallReason::RawDep)] +
        bd.cycles[unsigned(obs::StallReason::WarWawDep)];
    return res >= dep ? obs::SlotFillReason::ResourceConflict
                      : obs::SlotFillReason::Dependence;
}

std::vector<uint32_t>
ListScheduler::scheduleRegion(std::span<const InstRef> region) const
{
    if (opts.priority == SchedOptions::Priority::OriginalOrder) {
        std::vector<uint32_t> order(region.size());
        for (uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        return order;
    }
    DepGraph graph(region, model, opts.alias);
    return scheduleRegion(region, graph);
}

std::vector<uint32_t>
ListScheduler::scheduleRegion(std::span<const InstRef> region,
                              const DepGraph &graph) const
{
    const size_t n = region.size();
    std::vector<uint32_t> order;
    order.reserve(n);
    if (opts.priority == SchedOptions::Priority::OriginalOrder) {
        for (uint32_t i = 0; i < n; ++i)
            order.push_back(i);
        return order;
    }

    std::vector<int> dist = graph.distanceToEnd();

    // Per-node tie key: one 64-bit compare replaces the cascaded
    // distance/original-order comparisons of the candidate loop.
    // Smaller key wins. With jittered tie-breaking the key is the
    // seeded random draw instead (see SchedOptions).
    std::vector<uint64_t> key(n);
    if (opts.tieJitterSeed) {
        std::mt19937_64 rng(opts.tieJitterSeed);
        for (uint64_t &k : key)
            k = rng();
    } else {
        for (uint32_t i = 0; i < n; ++i) {
            switch (opts.priority) {
              case SchedOptions::Priority::Full:
              case SchedOptions::Priority::DistanceOnly:
                // Greater distance first, then original order.
                key[i] = (uint64_t(uint32_t(INT32_MAX - dist[i]))
                          << 32) |
                         i;
                break;
              default:
                key[i] = i;
                break;
            }
        }
    }

    // DistanceOnly ignores the stall count entirely, so skip the
    // pipeline simulation; the pick is a pure key comparison.
    const bool useStalls =
        opts.priority != SchedOptions::Priority::DistanceOnly;

    // Resolve each instruction's timing once up front; the candidate
    // scan below evaluates pipeline_stalls for every ready
    // instruction per pick (O(block^2) evaluations per block).
    std::vector<machine::ResolvedVariant> rvs;
    if (useStalls) {
        rvs.reserve(n);
        for (const InstRef &r : region)
            rvs.push_back(
                machine::ResolvedVariant::resolve(model, r.inst));
    }

    std::vector<unsigned> preds(n);
    std::vector<bool> done(n, false);
    std::vector<uint32_t> ready;
    for (uint32_t i = 0; i < n; ++i) {
        preds[i] = graph.numPreds(i);
        if (preds[i] == 0)
            ready.push_back(i);
    }

    // Unscheduled instrumentation instructions, for the slot-fill
    // audit's "nothing left to fill with" case.
    unsigned instrLeft = 0;
    if (opts.audit)
        for (const InstRef &r : region)
            instrLeft += r.isInstrumentation;

    machine::PipelineState state(model);

    while (order.size() < n) {
        if (ready.empty())
            panic("scheduler: dependence graph has a cycle");

        // The pick is a strict total order (keys embed the node
        // index), so it does not depend on the ready list's order
        // and swap-pop removal below stays deterministic.
        size_t best_pos = 0;
        uint32_t best = ready[0];
        unsigned best_stalls = useStalls ? state.stalls(rvs[best]) : 0;
        for (size_t p = 1; p < ready.size(); ++p) {
            uint32_t cand = ready[p];
            if (useStalls) {
                unsigned s = state.stalls(rvs[cand]);
                if (s < best_stalls ||
                    (s == best_stalls && key[cand] < key[best])) {
                    best = cand;
                    best_stalls = s;
                    best_pos = p;
                }
            } else if (key[cand] < key[best]) {
                best = cand;
                best_pos = p;
            }
        }

        // Audit: the pick still stalls, i.e. best_stalls cycles of
        // empty issue slots precede it. Record why instrumentation
        // could not cover them. Read-only — the schedule is
        // unaffected.
        if (opts.audit && useStalls && best_stalls > 0) {
            obs::SlotFillReason why = classifyUnfilledSlot(
                state, region, rvs, ready, instrLeft);
            opts.audit->add(why,
                            uint64_t(best_stalls) * model.issueWidth());
        }

        if (useStalls)
            state.issue(rvs[best]);
        done[best] = true;
        if (opts.audit && region[best].isInstrumentation)
            --instrLeft;
        order.push_back(best);
        ready[best_pos] = ready.back();
        ready.pop_back();
        for (uint32_t e : graph.succs(best)) {
            uint32_t j = graph.edges()[e].to;
            if (!done[j] && --preds[j] == 0)
                ready.push_back(j);
        }
    }
    return order;
}

InstSeq
ListScheduler::scheduleBlock(const InstSeq &block) const
{
    if (block.empty())
        return block;
    if (opts.priority == SchedOptions::Priority::OriginalOrder)
        return block;

    // Locate the terminating CTI and its delay slot. A well-formed
    // block has the CTI second-to-last with the delay instruction
    // last; any CTI elsewhere is a malformed block.
    size_t cti_idx = block.size();
    for (size_t i = 0; i < block.size(); ++i) {
        if (block[i].inst.isCti()) {
            if (i + 2 != block.size() && i + 1 != block.size())
                panic("scheduleBlock: CTI not at block end");
            cti_idx = i;
            break;
        }
    }

    InstSeq region;
    const InstRef *cti = nullptr;
    const InstRef *delay = nullptr;
    bool delay_pinned = false;
    if (cti_idx < block.size()) {
        region.assign(block.begin(), block.begin() + cti_idx);
        cti = &block[cti_idx];
        if (cti_idx + 1 < block.size()) {
            delay = &block[cti_idx + 1];
            // An annulled branch executes its delay slot
            // conditionally; leave it alone.
            delay_pinned = cti->inst.annul;
            if (!delay_pinned)
                region.push_back(*delay);
        }
        // A block ending in a bare CTI (builder output before delay
        // filling) gets a delay slot synthesized below.
    } else {
        region = block;
    }

    // One dependence graph serves both the region scheduling and the
    // delay-slot legality scan below.
    DepGraph graph(region, model, opts.alias);
    std::vector<uint32_t> order = scheduleRegion(region, graph);

    InstSeq sched;
    sched.reserve(block.size() + 1);
    for (uint32_t idx : order)
        sched.push_back(region[idx]);

    if (!cti)
        return sched;

    if (delay_pinned) {
        sched.push_back(*cti);
        sched.push_back(*delay);
        return sched;
    }

    // Pick the delay-slot filler: the latest scheduled instruction
    // with no dependence on anything scheduled after it and none on
    // the CTI itself.
    int filler = -1;
    if (opts.fillDelaySlot) {
        for (size_t pos = sched.size(); pos-- > 0;) {
            uint32_t idx = order[pos];
            if (!legalInDelaySlot(region[idx].inst, cti->inst))
                continue;
            bool clean = true;
            for (size_t later = pos + 1; later < sched.size();
                 ++later) {
                if (graph.hasEdge(idx, order[later])) {
                    clean = false;
                    break;
                }
            }
            if (clean) {
                filler = static_cast<int>(pos);
                break;
            }
        }
    }

    InstSeq out;
    out.reserve(block.size() + 1);
    for (size_t pos = 0; pos < sched.size(); ++pos)
        if (static_cast<int>(pos) != filler)
            out.push_back(sched[pos]);
    out.push_back(*cti);
    if (filler >= 0) {
        out.push_back(sched[filler]);
    } else {
        // A synthesized delay-slot nop is an empty slot the schedule
        // could not fill: audit it. Distinguish "no instrumentation
        // at all" from "instrumentation exists but is dependence-
        // bound" (either on later instructions or on the CTI itself).
        if (opts.audit) {
            bool anyInstr = false;
            for (const InstRef &r : region)
                anyInstr = anyInstr || r.isInstrumentation;
            opts.audit->add(anyInstr
                                ? obs::SlotFillReason::Dependence
                                : obs::SlotFillReason::NoReadyInst);
        }
        InstRef nop;
        nop.inst = isa::build::nop();
        nop.isInstrumentation = true;
        out.push_back(nop);
    }
    return out;
}

} // namespace eel::sched
