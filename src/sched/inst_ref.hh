/**
 * @file
 * InstRef: an instruction being edited/scheduled, with the metadata
 * EEL attaches — origin address, whether it is instrumentation, and
 * (for generated workloads) an oracle memory-disambiguation tag.
 */

#ifndef EEL_SCHED_INST_REF_HH
#define EEL_SCHED_INST_REF_HH

#include <cstdint>
#include <vector>

#include "src/isa/instruction.hh"

namespace eel::sched {

struct InstRef
{
    isa::Instruction inst;
    uint32_t origAddr = 0;        ///< address in the input executable
    bool isInstrumentation = false;

    /**
     * Oracle memory tag, set by the workload generator: memory
     * operations with different tags, or with the same tag and
     * provably different offsets, never alias. -1 = unknown. EEL's
     * own conservative scheduling ignores these (it cannot know
     * them); the "oracle compiler" pre-scheduler uses them to mimic
     * an optimizing compiler's alias analysis.
     */
    int32_t memTag = -1;
    int64_t memOff = 0;
};

using InstSeq = std::vector<InstRef>;

} // namespace eel::sched

#endif // EEL_SCHED_INST_REF_HH
