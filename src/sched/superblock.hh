/**
 * @file
 * Profile-guided superblock scheduling — the cross-block extension of
 * the paper's strictly local scheduler (§3-4). Two pieces:
 *
 *  1. Trace formation: grow superblocks along the hottest
 *     fall-through/branch edges of each routine's CFG, using the
 *     edge counts qpt's Ball-Larus profiler reconstructs. Growth
 *     along a taken edge inverts the branch so the hot path becomes
 *     fall-through. A trace is made side-entrance-free by tail
 *     duplication: the suffix starting at the first block with an
 *     off-trace predecessor is duplicated, the hot copy reachable
 *     only through the trace and the cold copy keeping the old
 *     leader address for every side entrance. The duplicated suffix
 *     IS the compensation code for the side entrances the hot copy
 *     no longer admits. Duplication (plus the jump stubs relinking
 *     cold fall-throughs) is bounded by a per-routine code-growth
 *     budget.
 *
 *  2. Cross-block list scheduling: one dependence graph spans the
 *     whole superblock and the two-pass list scheduler drains it
 *     segment by segment with a shared pipeline state. Instructions
 *     may be hoisted above earlier side exits only when speculation
 *     is legal: never stores, CTIs, barriers, cc/Y/fp writers, or
 *     possibly-faulting loads (instrumentation counter loads carry a
 *     memory tag proving a valid address and may move), and never an
 *     instruction whose written registers are live into the side
 *     exit's target (eel::Liveness). Dependence edges always point
 *     forward in program order, so graph readiness enforces data
 *     correctness across segments for free.
 */

#ifndef EEL_SCHED_SUPERBLOCK_HH
#define EEL_SCHED_SUPERBLOCK_HH

#include <bitset>
#include <vector>

#include "src/eel/cfg.hh"
#include "src/sched/scheduler.hh"

namespace eel::sched {

struct SuperblockOptions
{
    /**
     * An edge extends the trace only if it carries at least this
     * fraction of both its source's outflow and its sink's inflow
     * (mutual-most-likely, which also bounds how much count a tail
     * duplication splits). 0.5 means "at least as hot as the
     * alternative": even a 50/50 branch extends the trace through
     * its fall edge, which keeps the hot path physically contiguous
     * and costs nothing when the exit is taken — the exit branch
     * existed anyway. bench/ablation_trace_threshold sweeps this.
     */
    double threshold = 0.5;
    /** Absolute floor: colder edges never extend a trace. */
    uint64_t minCount = 50;
    /**
     * Stricter bar for growth that forces tail duplication: the
     * edge must carry at least this fraction of the successor's
     * executions. The cold copy's executions all pay a relink jump,
     * so a dup behind a lukewarm branch (e.g. 50/50) costs more on
     * the off-trace path than cross-block overlap recovers on the
     * hot one. Growth into single-predecessor blocks is free and
     * only needs `threshold`.
     */
    double dupThreshold = 0.75;
    /**
     * Per-routine budget on duplicated instructions plus relink
     * stubs, as a fraction of the routine's original instruction
     * count. Growth past this truncates the trace.
     */
    double growthBudget = 0.15;
    /**
     * Allow hoisting loads whose InstRef::memTag proves a valid
     * address (instrumentation counters) above side exits. Plain
     * loads never speculate — they could fault.
     */
    bool speculateSafeLoads = true;
    /**
     * Hoisting an instruction above a side exit executes it for
     * nothing every time the exit is taken — and steals a filler the
     * instruction's home segment may have needed. That trade only
     * pays when the exit is rarely taken, so body hoists are blocked
     * across exits with taken probability above this. Delay-slot
     * fills are exempt: the slot executes on both paths regardless,
     * so a filler displaces a nop at worst.
     */
    double maxSpecExitProb = 0.4;
};

/** One formed trace within a routine. */
struct Trace
{
    /** Member block ids, head first, in hot-path order. */
    std::vector<uint32_t> blocks;
    /** viaTaken[p]: the edge blocks[p-1] -> blocks[p] was the taken
     *  edge (the branch must be inverted in the hot copy).
     *  viaTaken[0] is always false. */
    std::vector<uint8_t> viaTaken;
    /**
     * Index of the first tail-duplicated position: blocks[dupFrom..]
     * had side entrances (or follow a block that did) and get a cold
     * copy at their old leader address. == blocks.size() when the
     * trace is naturally side-entrance-free.
     */
    size_t dupFrom = 0;
};

/**
 * Form traces over one routine from its edge profile. Every returned
 * trace has >= 2 blocks and each block appears in at most one trace;
 * the routine's entry block only ever appears as a trace head.
 */
std::vector<Trace> formTraces(const edit::Routine &r,
                              const edit::RoutineEdgeCounts &counts,
                              const SuperblockOptions &opts);

/** What instructions may do across the boundary after a segment. */
enum class BoundaryKind : uint8_t {
    /** Plain fall-through (no CTI, or branch-never): straight-line
     *  code, only dependence edges constrain motion. */
    Free,
    /** Conditional branch with an off-trace taken target: only
     *  speculation-legal instructions cross, checked against the
     *  side exit's live-in set. */
    CondExit,
    /** Call, return, indirect jump, unconditional branch: nothing
     *  crosses. */
    Rigid,
};

/** One trace member, ready for cross-block scheduling. */
struct SbSegment
{
    /** [body..., cti, delay] in program order (instrumentation
     *  already prepended), or body only when the block has no CTI. */
    InstSeq insts;
    int ctiPos = -1;  ///< index of the CTI in insts, -1 if none
    /** Boundary between this segment and the next (ignored for the
     *  last segment). */
    BoundaryKind boundary = BoundaryKind::Rigid;
    /** Registers live into the side exit's target (CondExit only). */
    std::bitset<32> exitLive;
    /** Fraction of this block's executions that leave through the
     *  side exit (CondExit only; from the edge profile). */
    double exitProb = 0.0;
};

/**
 * May this instruction execute speculatively — above a side exit (or,
 * for the modulo scheduler, past the loop backedge) it was never
 * guarded by? No CTIs, stores, barriers, cc/Y/fp writers or
 * possibly-trapping ops; loads only when an instrumentation memory
 * tag proves the address valid (and opts.speculateSafeLoads allows).
 */
bool speculatable(const InstRef &ref, const SuperblockOptions &opts);

/**
 * Static code growth of a routine's formed traces, deduplicated: a
 * block's cold tail-duplicate copy is counted once even when several
 * dup ranges or relink paths re-enter it, and the dynamic column
 * weighs each duplicated block / relink stub by the executions that
 * actually pay it (cold-side entries for dup copies, relinked
 * fall-throughs for stubs).
 */
struct TraceGrowth
{
    uint64_t dupInsts = 0;    ///< instructions tail-duplicated (static)
    uint64_t stubInsts = 0;   ///< relink stub instructions (static)
    uint64_t dynExtra = 0;    ///< extra dynamic instructions executed
};
TraceGrowth accountGrowth(const edit::Routine &r,
                          const edit::RoutineEdgeCounts &counts,
                          const std::vector<Trace> &traces);

/** Optional counters for tests and benches. */
struct SuperblockStats
{
    uint64_t hoisted = 0;       ///< insts moved above >= 1 side exit
    uint64_t delaysFilled = 0;  ///< nop delay slots refilled
};

/**
 * Schedule one superblock. Returns the full hot-path sequence with
 * every segment's CTI and delay slot in place. A nop delay slot may
 * be replaced by a legal instruction pulled from a later segment
 * (the nop is deleted, so the result can be shorter); a real delay
 * instruction under a non-annulling CTI may migrate into the body —
 * it executes on both paths either way — with the vacated slot
 * refilled the same way, or by a fresh nop when nothing fits.
 */
InstSeq scheduleSuperblock(const std::vector<SbSegment> &segments,
                           const machine::MachineModel &model,
                           const SchedOptions &opts,
                           const SuperblockOptions &sb_opts,
                           SuperblockStats *stats = nullptr);

} // namespace eel::sched

#endif // EEL_SCHED_SUPERBLOCK_HH
