#include "src/sched/pipeline.hh"

#include <algorithm>
#include <limits>

#include "src/isa/builder.hh"
#include "src/machine/pipeline.hh"
#include "src/sched/loop.hh"

namespace eel::sched {

namespace {

/**
 * Steady-state cycles per repetition of `kernel`, optionally
 * charging `bubble` front-end cycles per repetition (the timing
 * simulator's taken-branch redirect, which the pure pipeline model
 * never sees).
 */
double
steadyState(const machine::MachineModel &model, const InstSeq &kernel,
            unsigned bubble)
{
    if (kernel.empty())
        return 0.0;
    machine::PipelineState state(model);
    std::vector<machine::ResolvedVariant> rvs;
    rvs.reserve(kernel.size());
    for (const InstRef &r : kernel)
        rvs.push_back(
            machine::ResolvedVariant::resolve(model, r.inst));
    // The measurement window is divisible by every small period a
    // bounded-history pipeline can settle into (1,2,3,4,6,8,12,24),
    // so the average is exact for any such periodic schedule.
    constexpr unsigned warm = 8, meas = 24;
    uint64_t mark = 0;
    for (unsigned rep = 0; rep < warm + meas; ++rep) {
        if (rep == warm)
            mark = state.frontier();
        for (const machine::ResolvedVariant &rv : rvs)
            state.issue(rv);
        if (bubble)
            state.fetchBubble(bubble);
    }
    return static_cast<double>(state.frontier() - mark) / meas;
}

/**
 * May body instruction `j` rotate into the previous kernel (execute
 * with iteration i-1's S0, before iteration i-1's branch)? Three
 * gates:
 *  - speculation legality: the rotated stream runs it once more
 *    than the original (after the final backedge falls through);
 *  - its written registers must be dead into the loop exit (the
 *    caller already masked the editor's never-observed scratch);
 *  - it swaps order with the previous iteration's CTI and delay
 *    slot, so no dependence may point from either to it. The
 *    three-instruction graph reuses the scheduler's exact
 *    dependence/alias semantics for the pair checks.
 */
bool
rotatable(const InstSeq &code, uint32_t j,
          const std::bitset<32> &exitLive,
          const SuperblockOptions &sb_opts,
          const machine::MachineModel &model, AliasPolicy alias)
{
    const InstRef &p = code[j];
    if (!speculatable(p, sb_opts))
        return false;
    for (const auto &d : p.inst.defs())
        if (d.reg.tracked() && d.reg.cls == isa::RegClass::Int &&
            exitLive.test(d.reg.idx))
            return false;
    InstSeq tri{code[code.size() - 2], code[code.size() - 1], p};
    DepGraph g3(tri, model, alias);
    return !g3.hasEdge(0, 2) && !g3.hasEdge(1, 2);
}

/**
 * Largest rotation set the greedy scan admits, in body order. An
 * instruction joins only if nothing staying behind it (an earlier
 * body instruction left in S0) feeds it — checked on direct edges,
 * which covers transitive chains inductively: any intermediate
 * either blocked its own admission or blocks this one.
 */
std::vector<uint32_t>
greedyRotation(const InstSeq &code, const DepGraph &graph,
               const std::bitset<32> &exitLive,
               const SuperblockOptions &sb_opts,
               const machine::MachineModel &model, AliasPolicy alias)
{
    std::vector<uint32_t> set;
    std::vector<uint8_t> in(code.size(), 0);
    for (uint32_t j = 0; j + 2 < code.size(); ++j) {
        if (!rotatable(code, j, exitLive, sb_opts, model, alias))
            continue;
        bool blocked = false;
        for (uint32_t i = 0; i < j && !blocked; ++i)
            blocked = !in[i] && graph.hasEdge(i, j);
        if (blocked)
            continue;
        in[j] = 1;
        set.push_back(j);
    }
    return set;
}

/** Kernel sequence for rotation set `rot`: S0 in body order, then
 *  S1 in body order, then the pinned CTI + delay. */
InstSeq
rotationSequence(const InstSeq &code, std::span<const uint32_t> rot)
{
    std::vector<uint8_t> in(code.size(), 0);
    for (uint32_t p : rot)
        in[p] = 1;
    InstSeq seq;
    seq.reserve(code.size());
    for (uint32_t i = 0; i + 2 < code.size(); ++i)
        if (!in[i])
            seq.push_back(code[i]);
    for (uint32_t p : rot)
        seq.push_back(code[p]);
    seq.push_back(code[code.size() - 2]);
    seq.push_back(code[code.size() - 1]);
    return seq;
}

InstSeq
prologueSequence(const InstSeq &code, std::span<const uint32_t> rot)
{
    InstSeq seq;
    seq.reserve(rot.size());
    for (uint32_t p : rot)
        seq.push_back(code[p]);
    return seq;
}

/**
 * Unroll-and-schedule: two copies of the body in one block. The
 * first copy's backedge is inverted and re-targeted at the exit's
 * old leader address (pass 2 of the editor resolves it like any
 * superblock trace inversion), the second keeps the original
 * backedge to the header. Scheduling the pair as a superblock with a
 * CondExit boundary reuses the existing speculation gates, so the
 * result is bit-identical for any trip count and per-block counters
 * are preserved (each copy carries its own snippet).
 */
InstSeq
unrollTwo(const InstSeq &code, uint32_t exitOldAddr,
          const std::bitset<32> &exitLive, double exitProb,
          const machine::MachineModel &model, const SchedOptions &opts,
          const SuperblockOptions &sb_opts)
{
    const int ctiPos = static_cast<int>(code.size()) - 2;
    std::vector<SbSegment> segs(2);
    segs[0].insts = code;
    InstRef &cti = segs[0].insts[ctiPos];
    cti.inst.cond ^= 8;
    cti.inst.disp = static_cast<int32_t>(
        (static_cast<int64_t>(exitOldAddr) -
         static_cast<int64_t>(cti.origAddr)) / 4);
    segs[0].ctiPos = ctiPos;
    segs[0].boundary = BoundaryKind::CondExit;
    segs[0].exitLive = exitLive;
    segs[0].exitProb = exitProb;
    segs[1].insts = code;
    segs[1].ctiPos = ctiPos;
    return scheduleSuperblock(segs, model, opts, sb_opts);
}

bool
loopShaped(const InstSeq &code)
{
    return code.size() >= 3 && code[code.size() - 2].inst.isCti() &&
           !code[code.size() - 1].inst.isCti();
}

} // namespace

double
steadyStateII(const machine::MachineModel &model, const InstSeq &kernel,
              unsigned bubble)
{
    return steadyState(model, kernel, bubble);
}

std::vector<PipelineLoop>
findPipelineLoops(const edit::Routine &r,
                  const edit::RoutineEdgeCounts &counts,
                  const PipelineOptions &opts)
{
    std::vector<PipelineLoop> out;
    LoopAnalyzer la(r);
    for (const LoopAnalyzer::HotLoop &h :
         la.hotLoops(counts, opts.minCount)) {
        const Loop &l = la.loops()[h.loop];
        // The modulo scheduler handles straight-line bodies with one
        // way out; multi-block and multi-exit loops keep their
        // local/superblock schedules.
        if (!l.innermost || l.blocks.size() != 1 ||
            l.exits.size() != 1)
            continue;
        const edit::Block &b = r.blocks[l.header];
        if (!b.hasCti || b.insts.size() < 3 ||
            b.insts.size() > opts.maxBodyInsts)
            continue;
        const isa::Instruction &ci = b.cti();
        if (!ci.isBranch() || ci.isAlwaysBranch() ||
            ci.isNeverBranch() || ci.annul)
            continue;
        if (b.takenSucc != static_cast<int>(b.id) || b.fallSucc < 0)
            continue;
        const edit::BlockEdgeCounts &bc = counts[b.id];
        uint64_t flow = bc.fall + bc.taken;
        double prob =
            flow ? static_cast<double>(bc.taken) / flow : 0.0;
        if (prob < opts.minBackedgeProb)
            continue;
        out.push_back({b.id, bc.exec, prob});
    }
    return out;
}

LoopBounds
loopBounds(const InstSeq &code, const machine::MachineModel &model,
           AliasPolicy alias)
{
    LoopBounds b;
    const size_t n = code.size();
    if (n == 0)
        return b;

    // Resource bound: a modulo reservation table at initiation
    // interval II has II * capacity slots per unit; one iteration's
    // holds must fit regardless of placement, so the table is
    // feasible only when II >= ceil(usage / capacity). Issue slots
    // are a unit like any other (II * issueWidth of them).
    std::vector<uint64_t> usage(model.numUnits(), 0);
    for (const InstRef &r : code)
        for (const machine::UnitHold &h :
             model.variant(r.inst).holds)
            if (h.num > 0)
                usage[h.unit] += static_cast<uint64_t>(h.num) *
                                 (h.to - h.from);
    double res = static_cast<double>(n) / model.issueWidth();
    for (unsigned u = 0; u < model.numUnits(); ++u) {
        unsigned cap = model.unitCapacity(u);
        if (cap)
            res = std::max(res, static_cast<double>(usage[u]) / cap);
    }
    b.resMII = std::max(1.0, res);

    // Recurrence bound: the smallest II for which no dependence
    // cycle keeps positive slack sum(weight - II * distance).
    // Distance-0 edges come from the body's own graph; distance-1
    // edges from the second copy of a doubled body (a dependence
    // from iteration i landing in iteration i+1).
    //
    // Edge weights are NOT the scheduler's conservative minDist —
    // they are the entry separations PipelineState actually
    // enforces, read off the resolved variants' register access
    // cycles (the same checks fastClean/simulate apply). Anything
    // stronger is unsound against the measured steady-state metric:
    // a store's data register is read late in its pipeline, and
    // memory ordering costs nothing at all in the model, so charging
    // full producer latency there yields a "lower" bound above what
    // legal kernels measurably achieve (and an oracle that
    // early-exits above the true optimum). Weights clamp at 0: every
    // dependent pair issues in stream order, so entry separations
    // are never negative.
    std::vector<machine::ResolvedVariant> rvs;
    rvs.reserve(n);
    for (const InstRef &r : code)
        rvs.push_back(
            machine::ResolvedVariant::resolve(model, r.inst));
    auto pipeSep = [](const machine::ResolvedVariant &p,
                      const machine::ResolvedVariant &c) {
        int sep = 0;
        for (unsigned i = 0; i < c.nReads; ++i)
            for (unsigned j = 0; j < p.nWrites; ++j)
                if (c.reads[i].reg == p.writes[j].reg)     // RAW
                    sep = std::max(
                        sep, static_cast<int>(p.writes[j].ready) +
                                 1 -
                                 static_cast<int>(c.reads[i].cycle));
        for (unsigned i = 0; i < c.nWrites; ++i) {
            for (unsigned j = 0; j < p.nWrites; ++j)
                if (c.writes[i].reg == p.writes[j].reg)    // WAW
                    sep = std::max(
                        sep,
                        static_cast<int>(p.writes[j].cycle) + 1 -
                            static_cast<int>(c.writes[i].cycle));
            for (unsigned j = 0; j < p.nReads; ++j)
                if (c.writes[i].reg == p.reads[j].reg)     // WAR
                    sep = std::max(
                        sep,
                        static_cast<int>(p.reads[j].cycle) -
                            static_cast<int>(c.writes[i].cycle));
        }
        return sep;
    };
    struct CycEdge
    {
        uint32_t from, to;
        int lat, dist;
    };
    std::vector<CycEdge> edges;
    DepGraph g1(code, model, alias);
    for (const DepEdge &e : g1.edges())
        edges.push_back(
            {e.from, e.to, pipeSep(rvs[e.from], rvs[e.to]), 0});
    InstSeq two = code;
    two.insert(two.end(), code.begin(), code.end());
    DepGraph g2(two, model, alias);
    for (const DepEdge &e : g2.edges())
        if (e.from < n && e.to >= n)
            edges.push_back({e.from,
                             static_cast<uint32_t>(e.to - n),
                             pipeSep(rvs[e.from], rvs[e.to - n]),
                             1});

    // Longest-path relaxation; still changing after n passes means a
    // positive cycle, so candidate II `ii` is infeasible. Every
    // cycle crosses the iteration boundary at least once (distance-0
    // edges point forward), so the cycle ratio is finite and the
    // bound itself may be fractional (two iterations of a 5-cycle
    // recurrence per window = 2.5); a ceil here would overshoot the
    // true optimum just like an integer resource bound would.
    auto feasible = [&](double ii) {
        std::vector<double> d(n, 0.0);
        bool changed = true;
        for (size_t pass = 0; pass <= n && changed; ++pass) {
            changed = false;
            for (const CycEdge &e : edges) {
                double w = e.lat - ii * e.dist;
                if (d[e.from] + w > d[e.to] + 1e-9) {
                    d[e.to] = d[e.from] + w;
                    changed = true;
                }
            }
        }
        return !changed;
    };
    double lo = 1.0;
    double hi = 4.0 * model.maxLatency() + static_cast<double>(n) + 2;
    if (feasible(lo)) {
        b.recMII = lo;
    } else {
        for (int it = 0; it < 50; ++it) {
            double mid = 0.5 * (lo + hi);
            (feasible(mid) ? hi : lo) = mid;
        }
        b.recMII = hi;
    }
    b.mii = std::max(b.resMII, b.recMII);
    return b;
}

LoopSchedule
scheduleLoop(const InstSeq &code, const std::bitset<32> &exitLive,
             double exitProb, uint32_t exitOldAddr,
             const machine::MachineModel &model,
             const SchedOptions &opts,
             const SuperblockOptions &sb_opts,
             const PipelineOptions &popts)
{
    LoopSchedule out;
    ListScheduler scheduler(model, opts);
    out.kernel = scheduler.scheduleBlock(code);
    if (!loopShaped(code))
        return out;
    out.bounds = loopBounds(code, model, opts.alias);
    // Every kernel iteration ends in a taken backedge, so candidates
    // are judged with the fetch redirect in the measurement loop —
    // not added as a constant afterwards. The distinction matters:
    // after a redirect the front end restarts into an empty issue
    // window, so a load placed late in the period (next iteration's,
    // rotated across the backedge) drains its latency during the
    // bubble, while the same load at the top of the period stalls its
    // consumers in the open. A constant "+penalty" ranks those two
    // kernels identically; the real loop does not.
    const unsigned bp = model.branchPenalty();
    const double plainII = steadyState(model, out.kernel, bp);
    out.achievedII = plainII;
    out.bestKernelII = plainII;
    double bestCost = plainII;

    if (popts.oracle) {
        OptimalII o = optimalLoopII(code, exitLive, model, opts,
                                    sb_opts, popts);
        if (o.applicable) {
            out.kind = o.rotated ? LoopKind::Rotate
                                 : LoopKind::Plain;
            out.prologue = std::move(o.prologue);
            out.kernel = std::move(o.kernel);
            out.rotated = o.rotated;
            out.achievedII = o.ii;
            out.bestKernelII = o.ii;
            return out;
        }
        // Body too large for the exhaustive search: fall through to
        // the heuristic.
    }

    // Iterative search: largest legal rotation first, shrinking
    // toward none. Each candidate kernel is list-scheduled (the CTI
    // and delay slot stay pinned at the close) and judged by its
    // measured steady-state II.
    DepGraph graph(code, model, opts.alias);
    std::vector<uint32_t> greedy = greedyRotation(
        code, graph, exitLive, sb_opts, model, opts.alias);
    double bestRotII = std::numeric_limits<double>::infinity();
    InstSeq bestKern, bestProl;
    unsigned bestRot = 0;
    for (size_t k = greedy.size(); k >= 1; --k) {
        std::span<const uint32_t> rot(greedy.data(), k);
        InstSeq kern =
            scheduler.scheduleBlock(rotationSequence(code, rot));
        double ii = steadyState(model, kern, bp);
        if (ii < bestRotII - 1e-9) {
            bestRotII = ii;
            bestKern = std::move(kern);
            bestProl = scheduler.scheduleBlock(
                prologueSequence(code, rot));
            bestRot = static_cast<unsigned>(k);
        }
    }
    if (bestRot) {
        out.bestKernelII = std::min(out.bestKernelII, bestRotII);
        if (bestRotII < bestCost - 1e-9) {
            out.kind = LoopKind::Rotate;
            out.kernel = std::move(bestKern);
            out.prologue = std::move(bestProl);
            out.rotated = bestRot;
            out.achievedII = bestRotII;
            bestCost = bestRotII;
        }
    }

    // Rotation could not reach the lower bound (plus slack): fall
    // back to unroll-and-schedule, which halves the per-iteration
    // branch redirect and doubles the acyclic window at 2x growth
    // of this one block.
    bool met = out.achievedII <=
               out.bounds.mii + bp + popts.iiSlack + 1e-9;
    if (!met && popts.allowUnroll && exitProb < 0.5) {
        // The pair takes one redirect per TWO original iterations —
        // the unroll's whole point — so the bubble is charged once
        // per pair repetition and the cost halved.
        InstSeq pair = unrollTwo(code, exitOldAddr, exitLive,
                                 exitProb, model, opts, sb_opts);
        double cost = steadyState(model, pair, bp) / 2.0;
        if (cost < bestCost - 1e-9) {
            out.kind = LoopKind::Unroll;
            out.kernel = std::move(pair);
            out.prologue.clear();
            out.rotated = 0;
            out.achievedII = cost;
        }
    }
    return out;
}

OptimalII
optimalLoopII(const InstSeq &code, const std::bitset<32> &exitLive,
              const machine::MachineModel &model,
              const SchedOptions &opts,
              const SuperblockOptions &sb_opts,
              const PipelineOptions &popts)
{
    OptimalII out;
    if (!loopShaped(code) ||
        code.size() - 2 > popts.oracleMaxInsts)
        return out;
    out.applicable = true;

    const LoopBounds bounds = loopBounds(code, model, opts.alias);
    DepGraph graph(code, model, opts.alias);
    const InstRef &cti = code[code.size() - 2];
    const InstRef &delay = code[code.size() - 1];
    const bool freeDelay = !cti.inst.annul;

    std::vector<uint32_t> elig;
    for (uint32_t j = 0; j + 2 < code.size(); ++j)
        if (rotatable(code, j, exitLive, sb_opts, model,
                      opts.alias))
            elig.push_back(j);
    const size_t esz = std::min<size_t>(elig.size(), 12);

    double bestII = std::numeric_limits<double>::infinity();
    std::vector<uint32_t> bestRot;
    InstSeq bestKernel;
    // Early-exit floor. Only CERTIFIED lower bounds may appear here:
    // pruning on an estimate that overshoots the true optimum makes
    // the "exhaustive" search return a beatable schedule (the
    // crosscheck catches exactly that). Certified under the measured
    // metric: the resource bound (holds only grow when instructions
    // stall), and issue slots + the redirect — a repetition's n
    // entries occupy at least ceil(n/width) cycles, so its last
    // entry trails its first by at least n/width - 1, and the next
    // repetition's first entry trails THAT by the bubble; per
    // repetition the frontier advances >= n/width + penalty - 1.
    // The recurrence bound is NOT certified (mid-pipeline operand
    // stalls do not push the issue frontier), so it guides the
    // heuristic but never prunes here.
    const unsigned bp = model.branchPenalty();
    const double target =
        std::max(bounds.resMII,
                 static_cast<double>(code.size()) /
                         model.issueWidth() +
                     bp - 1) +
        1e-9;

    auto evaluate = [&](const InstSeq &kernel,
                        std::span<const uint32_t> rot) {
        ++out.ordersTried;
        double ii = steadyState(model, kernel, bp);
        if (ii < bestII - 1e-9) {
            bestII = ii;
            bestKernel = kernel;
            bestRot.assign(rot.begin(), rot.end());
        }
    };

    for (uint64_t mask = 0;
         mask < (uint64_t(1) << esz) && bestII > target &&
         out.ordersTried < popts.oracleOrderBudget;
         ++mask) {
        std::vector<uint32_t> rot;
        std::vector<uint8_t> in(code.size(), 0);
        for (size_t bit = 0; bit < esz; ++bit)
            if (mask >> bit & 1) {
                rot.push_back(elig[bit]);
                in[elig[bit]] = 1;
            }
        bool valid = true;
        for (uint32_t p : rot)
            for (uint32_t i = 0; i < p && valid; ++i)
                valid = in[i] || !graph.hasEdge(i, p);
        if (!valid)
            continue;

        // Region to order: S0 ++ S1, plus the delay instruction when
        // the non-annulling CTI frees it (mirroring scheduleBlock).
        InstSeq seq = rotationSequence(code, rot);
        InstSeq region(seq.begin(), seq.end() - 2);
        if (freeDelay)
            region.push_back(delay);
        DepGraph kg(region, model, opts.alias);

        const size_t m = region.size();
        std::vector<unsigned> preds(m);
        std::vector<uint8_t> done(m, 0);
        for (size_t i = 0; i < m; ++i)
            preds[i] = kg.numPreds(i);
        std::vector<uint32_t> order;
        order.reserve(m);

        // Depth-first over every topological order; each complete
        // order is evaluated with and without its tail moved into
        // the delay slot (that covers every fill the heuristic can
        // produce: a clean filler is last in some topological
        // order).
        auto emit = [&]() {
            InstSeq kernel;
            kernel.reserve(m + 2);
            for (uint32_t idx : order)
                kernel.push_back(region[idx]);
            if (freeDelay) {
                uint32_t last = order.back();
                if (legalInDelaySlot(region[last].inst, cti.inst)) {
                    InstSeq filled(kernel.begin(),
                                   kernel.end() - 1);
                    filled.push_back(cti);
                    filled.push_back(region[last]);
                    evaluate(filled, rot);
                }
                kernel.push_back(cti);
                InstRef nop;
                nop.inst = isa::build::nop();
                nop.isInstrumentation = true;
                kernel.push_back(nop);
                evaluate(kernel, rot);
            } else {
                kernel.push_back(cti);
                kernel.push_back(delay);
                evaluate(kernel, rot);
            }
        };

        auto dfs = [&](auto &&self) -> void {
            if (bestII <= target ||
                out.ordersTried >= popts.oracleOrderBudget)
                return;
            if (order.size() == m) {
                emit();
                return;
            }
            for (uint32_t i = 0; i < m; ++i) {
                if (done[i] || preds[i])
                    continue;
                done[i] = 1;
                order.push_back(i);
                for (uint32_t e : kg.succs(i))
                    --preds[kg.edges()[e].to];
                self(self);
                for (uint32_t e : kg.succs(i))
                    ++preds[kg.edges()[e].to];
                order.pop_back();
                done[i] = 0;
            }
        };
        dfs(dfs);
    }

    out.capped = out.ordersTried >= popts.oracleOrderBudget;
    out.ii = bestII;
    out.rotated = static_cast<unsigned>(bestRot.size());
    out.kernel = std::move(bestKernel);
    out.prologue = prologueSequence(code, bestRot);
    return out;
}

} // namespace eel::sched
